//! A complete `anatomy-serve` client session over the wire protocol
//! (`docs/PROTOCOL.md`; operator guide in the README).
//!
//! With `--addr HOST:PORT` it talks to an already-running daemon
//! (e.g. the `serve-daemon` binary). Without it, it stands up an
//! in-process loopback daemon hosting two models so the example is
//! self-contained:
//!
//! ```text
//! cargo run --release --example daemon_client
//! cargo run --release --example daemon_client -- --addr 127.0.0.1:7433
//! ```
//!
//! The session exercises every protocol round trip: version
//! negotiation on connect, model discovery via the stats frame,
//! batched inference on every hosted model, a hot weight reload
//! (self-hosted mode only, where the model spec is known), and a
//! final stats scrape.

use anatomy::daemon::{Client, Daemon, DaemonConfig, ModelConfig};
use anatomy::serve::ServeConfig;
use anatomy::{ConvOpts, GraphBuilder, InferenceSession, ModelSpec};
use std::time::Duration;

fn demo_model(hw: usize, classes: usize, seed: u64) -> ModelSpec {
    GraphBuilder::new()
        .seed(seed)
        .input("data", 3, hw, hw)
        .conv("conv1", ConvOpts::k(16).rs(3).pad(1).bias().relu())
        .max_pool("pool1", 2, 2, 0)
        .conv("conv2", ConvOpts::k(16).rs(3).pad(1).bias().relu())
        .gap("gap")
        .fc("logits", classes)
        .softmax("loss")
        .build()
        .expect("demo topology is valid")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr_arg = args.iter().position(|a| a == "--addr").and_then(|i| args.get(i + 1)).cloned();

    // Self-hosted mode: bring up a loopback daemon with two models.
    let (addr, hosted) = match addr_arg {
        Some(addr) => (addr, None),
        None => {
            let serve = ServeConfig::new(1, 2, 4).with_max_wait(Duration::from_millis(2));
            let daemon = Daemon::bind(
                DaemonConfig::loopback(),
                vec![
                    ModelConfig::new("alpha", demo_model(16, 8, 1), serve.clone())
                        .expect("valid model config"),
                    ModelConfig::new("beta", demo_model(12, 5, 2), serve)
                        .expect("valid model config"),
                ],
            )
            .expect("loopback daemon binds");
            (daemon.local_addr().to_string(), Some(daemon))
        }
    };

    // 1. Connect: Hello / HelloOk version negotiation.
    let mut client = Client::connect(&addr).expect("daemon reachable");
    println!(
        "connected to {addr}: {} (protocol v{})",
        client.server_banner(),
        client.server_version()
    );

    // 2. Discover the hosted models from the stats frame.
    let models = client.models().expect("stats frame parses");
    assert!(!models.is_empty(), "daemon hosts no models");
    for m in &models {
        println!("model '{}': {} f32s/sample, {} classes", m.name, m.sample_elems, m.classes);
    }

    // 3. Infer a 2-sample batch on every model.
    let mut rng = anatomy::tensor::rng::SplitMix64::new(0xc11e47);
    for m in &models {
        let mut batch = vec![0.0f32; 2 * m.sample_elems];
        rng.fill_f32(&mut batch);
        let out = client.infer(&m.name, 2, &batch).expect("inference round trip");
        assert_eq!(out.top1.len(), 2);
        assert_eq!(out.probs.len(), 2 * m.classes);
        println!("'{}' top-1 classes: {:?}", m.name, out.top1);
    }

    // 4. Hot-reload (self-hosted mode, where the spec is known):
    // export a fresh session's weights, publish them over the wire,
    // and check the served outputs now match that session exactly.
    if hosted.is_some() {
        let mut donor =
            InferenceSession::new(demo_model(16, 8, 99), 1, 1).expect("donor session builds");
        let dict = donor.network().state_dict();
        let generation = client.reload("alpha", &dict).expect("reload round trip");
        println!("reloaded 'alpha' to weight generation {generation}");

        let elems = models.iter().find(|m| m.name == "alpha").unwrap().sample_elems;
        let mut image = vec![0.0f32; elems];
        rng.fill_f32(&mut image);
        let served = client.infer("alpha", 1, &image).expect("post-reload inference");
        let direct = donor.run_samples(&image, 1).expect("direct run");
        assert_eq!(served.probs, direct.probs, "post-reload outputs must be bit-identical");
        println!("post-reload outputs match the donor session bit-for-bit");
    }

    // 5. Final stats scrape.
    let stats = client.stats(None).expect("stats round trip");
    let interesting = ["serve_models", "serve_connections_total", "serve_frames_total"];
    for line in stats.lines() {
        if interesting.iter().any(|k| line.starts_with(k))
            || line.starts_with("serve_model_requests_total")
            || line.starts_with("serve_model_weight_generation")
        {
            println!("stats: {line}");
        }
    }

    if let Some(daemon) = hosted {
        daemon.shutdown();
    }
    println!("daemon_client: OK");
}
