//! Multi-client serving through `anatomy::serve::BatchingFrontend`:
//! concurrent client threads each submit single images; the frontend
//! coalesces them into planned minibatches, flushes partial batches at
//! the deadline, and fans batches out over session replicas that share
//! one plan cache (N replicas, one JIT pass).
//!
//! ```sh
//! cargo run --release --example serving_frontend -- \
//!     [--hw 32] [--replicas 2] [--threads 2] [--clients 8] [--requests 32]
//! ```

use anatomy::serve::{BatchingFrontend, ServeConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn arg(key: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let hw = arg("--hw", 32);
    let replicas = arg("--replicas", 2);
    let threads = arg("--threads", 2); // per replica
    let minibatch = arg("--minibatch", 4);
    let clients = arg("--clients", 8);
    let requests = arg("--requests", 32);
    let max_wait = Duration::from_millis(arg("--max-wait-ms", 2) as u64);

    let model = anatomy::topologies::resnet50_model(hw, 1000);
    println!(
        "ResNet-50 @ {hw}x{hw}: {replicas} replica(s) × {threads} thread(s), \
         minibatch {minibatch}, max_wait {max_wait:?}"
    );

    let t0 = std::time::Instant::now();
    let cfg = ServeConfig::new(replicas, threads, minibatch).with_max_wait(max_wait);
    let frontend = BatchingFrontend::new(&model, cfg).expect("model is valid");
    let caches = frontend.cache().combined_stats();
    println!(
        "setup: {:.2?} — {} distinct plans for {} lookups across {replicas} replica(s) \
         (hit rate {:.0}%: one JIT pass serves all replicas)",
        t0.elapsed(),
        caches.plans.entries,
        caches.plans.hits + caches.plans.misses,
        caches.plans.hit_rate() * 100.0,
    );

    // closed-loop clients: each submits one image at a time until the
    // global budget is spent
    let remaining = AtomicUsize::new(requests);
    let sample = frontend.sample_elems();
    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for k in 0..clients {
            let frontend = &frontend;
            let remaining = &remaining;
            scope.spawn(move || {
                let mut rng = anatomy::tensor::rng::SplitMix64::new(0xc11e27 + k as u64);
                let mut image = vec![0.0f32; sample];
                while remaining
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
                    .is_ok()
                {
                    rng.fill_f32(&mut image);
                    let out = frontend.infer(&image).expect("image is sample-sized");
                    assert_eq!(out.top1.len(), 1);
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();

    let stats = frontend.shutdown();
    println!(
        "served {} images from {clients} clients in {:.2}s — {:.1} images/s",
        stats.images,
        secs,
        stats.images as f64 / secs
    );
    println!(
        "{} batches, mean occupancy {:.0}%, {} deadline flushes, \
         latency p50 {:?} / p99 {:?}",
        stats.batches,
        stats.mean_occupancy * 100.0,
        stats.deadline_flushes,
        stats.p50_latency,
        stats.p99_latency,
    );
}
