//! Quickstart: set up one convolution layer (JIT + dryrun), run all
//! three training passes, and validate them against the naive
//! reference loop nests with the paper's artifact norms.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use anatomy::conv::fuse::FuseCtx;
use anatomy::conv::reference::{conv_bwd_ref, conv_fwd_ref, conv_upd_ref};
use anatomy::conv::{ConvLayer, LayerOptions};
use anatomy::parallel::ThreadPool;
use anatomy::tensor::{BlockedActs, BlockedFilter, ConvShape, Kcrs, Nchw, Norms};

fn main() {
    // a ResNet-50 3x3 layer (Table I layer 8) at a small minibatch
    let shape = ConvShape::new(4, 128, 128, 28, 28, 3, 3, 1, 1);
    let threads = anatomy::parallel::hardware_threads().min(8);
    let pool = ThreadPool::new(threads);

    println!("layer: {shape}");
    let t0 = std::time::Instant::now();
    let layer = ConvLayer::new(shape, LayerOptions::new(threads));
    println!(
        "setup (kernel generation + dryrun): {:?} — backend '{}', blocking {}x{}, bwd {:?}, {} dW copies",
        t0.elapsed(),
        layer.backend_name(),
        layer.blocking().rbp,
        layer.blocking().rbq,
        layer.bwd_kind(),
        layer.upd_copies()
    );

    // data in interchange format, converted to the blocked layouts
    let x = Nchw::random(shape.n, shape.c, shape.h, shape.w, 1);
    let w = Kcrs::random(shape.k, shape.c, shape.r, shape.s, 2);
    let gy = Nchw::random(shape.n, shape.k, shape.p(), shape.q(), 3);
    let xb = BlockedActs::from_nchw(&x, shape.pad);
    let wb = BlockedFilter::from_kcrs(&w);
    let gyb = BlockedActs::from_nchw(&gy, layer.dout_pad());

    // forward
    let mut yb = layer.new_output();
    layer.forward(&pool, &xb, &wb, &mut yb, &FuseCtx::default());
    let mut y_ref = Nchw::zeros(shape.n, shape.k, shape.p(), shape.q());
    conv_fwd_ref(&shape, &x, &w, &mut y_ref);
    println!("fwd vs reference: {}", Norms::compare(y_ref.as_slice(), yb.to_nchw().as_slice()));

    // backward (duality)
    let mut gxb = layer.new_input();
    layer.backward(&pool, &gyb, &wb, &mut gxb);
    let mut gx_ref = Nchw::zeros(shape.n, shape.c, shape.h, shape.w);
    conv_bwd_ref(&shape, &gy, &w, &mut gx_ref);
    println!("bwd vs reference: {}", Norms::compare(gx_ref.as_slice(), gxb.to_nchw().as_slice()));

    // weight update
    let mut dwb = layer.new_filter();
    layer.update(&pool, &xb, &gyb, &mut dwb);
    let mut dw_ref = Kcrs::zeros(shape.k, shape.c, shape.r, shape.s);
    conv_upd_ref(&shape, &x, &gy, &mut dw_ref);
    println!("upd vs reference: {}", Norms::compare(dw_ref.as_slice(), dwb.to_kcrs().as_slice()));

    // quick throughput number
    let t0 = std::time::Instant::now();
    let iters = 20;
    for _ in 0..iters {
        layer.forward(&pool, &xb, &wb, &mut yb, &FuseCtx::default());
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!("forward: {:.1} GFLOPS on {threads} threads", shape.flops() as f64 / per / 1e9);
}
