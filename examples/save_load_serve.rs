//! The full train → save → load → serve round trip:
//!
//! 1. build a ResNet-50 (reduced resolution) through the typed
//!    `ModelSpec` API with an explicit weight-init seed,
//! 2. train it for a few SGD steps on synthetic data and calibrate
//!    the BN running statistics (training-mode forwards accumulate
//!    the EMAs the frozen-stats serving path consumes),
//! 3. export the trained parameters (plus BN running statistics) as a
//!    `StateDict` and save them to a versioned binary file,
//! 4. reload the file into a forward-only `InferenceSession` *and* a
//!    batching frontend: the inference executor folds every BN into
//!    its producer convolution, the fused outputs track the unfused
//!    frozen-stats reference, and — because frozen statistics make
//!    bn-graph predictions batch-composition-independent — a lone
//!    sample reproduces its whole-batch bits exactly.
//!
//! ```sh
//! cargo run --release --example save_load_serve -- [--hw 32] [--steps 2] [--out model.anat]
//! ```

use anatomy::gxm::data::SyntheticData;
use anatomy::gxm::Network;
use anatomy::serve::{BatchingFrontend, ServeConfig};
use anatomy::{InferenceSession, StateDict};
use std::time::Duration;

fn arg(key: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let hw = arg("--hw", 32);
    let steps = arg("--steps", 2);
    let minibatch = arg("--minibatch", 2);
    let threads = arg("--threads", anatomy::parallel::hardware_threads().min(4));
    let out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "model.anat".to_string())
    };
    let classes = 10;

    // 1. typed model with an explicit seed
    let model = anatomy::topologies::resnet50_model(hw, classes).with_seed(2024);
    println!("ResNet-50 @ {hw}x{hw}: training {steps} step(s), minibatch {minibatch}");

    // 2. a few training steps
    let mut net = Network::build(&model, minibatch, threads).expect("valid model");
    let mut data = SyntheticData::new(classes, 3, hw, hw, 11);
    for step in 0..steps {
        let labels = data.next_batch(net.input_mut());
        let s = net.train_step(&labels, 0.002, 0.9);
        println!("step {step}: loss {:.4} top-1 {:.2}", s.loss, s.top1);
    }

    // 3. export + save
    // calibrate the BN running statistics to the trained weights:
    // training-mode forwards accumulate the EMAs without SGD, so the
    // frozen-stats serving path normalizes with statistics that
    // describe the weights actually being served
    for _ in 0..10 {
        data.next_batch(net.input_mut());
        net.forward();
    }
    let sd = net.state_dict();
    sd.save(&out).expect("state dict saves");
    let bytes = std::fs::metadata(&out).expect("saved file exists").len();
    println!("saved {} tensors ({} values, {bytes} bytes) to {out}", sd.len(), sd.value_count());

    let (c, h, w) = net.input_dims();
    let probe: Vec<f32> = {
        let mut rng = anatomy::tensor::rng::SplitMix64::new(404);
        let mut v = vec![0.0f32; minibatch * c * h * w];
        rng.fill_f32(&mut v);
        v
    };

    // 4a. reload into a forward-only session — the inference executor
    // folds every BN's frozen statistics into its producer conv
    let reloaded = StateDict::load(&out).expect("state dict loads");
    let mut session = InferenceSession::new(&model, minibatch, threads).expect("valid model");
    session.load_state_dict(&reloaded).expect("dict matches the model");
    let netref = session.network();
    println!(
        "BN fusion: {}/{} bn nodes folded into their convs",
        netref.folded_bn_count(),
        netref.bn_node_count()
    );
    let served = session.run(&probe).expect("probe batch sized to the session");

    // the fused executor tracks the unfused frozen-stats reference
    let mut reference =
        InferenceSession::new_unfused(&model, minibatch, threads).expect("valid model");
    reference.load_state_dict(&reloaded).expect("dict matches the model");
    let want = reference.run(&probe).expect("probe batch sized to the session");
    assert_eq!(served.top1, want.top1, "fused and unfused frozen-stats top-1 must agree");
    let norms = anatomy::tensor::Norms::compare(&want.probs, &served.probs);
    assert!(norms.ok(1e-4), "fused vs unfused frozen-stats reference: {norms}");
    println!("InferenceSession: frozen-stats parity OK (top-1 {:?})", served.top1);

    // 4b. and through the batching frontend: frozen statistics make
    // bn-graph predictions batch-composition-independent, so even the
    // samples of this request served one by one (each padded into its
    // own partial batch) reproduce the whole-batch bits
    let cfg = ServeConfig::new(1, threads, minibatch)
        .with_max_wait(Duration::from_millis(1))
        .with_pinning(false);
    let frontend = BatchingFrontend::with_weights(&model, cfg, &reloaded).expect("valid model");
    let out2 = frontend.infer(&probe).expect("pipeline alive");
    assert_eq!(out2.probs, served.probs, "frontend must serve the same trained weights");
    let sample = c * h * w;
    let lone = frontend.infer(&probe[..sample]).expect("pipeline alive");
    assert_eq!(
        lone.probs,
        served.probs[..frontend.classes()],
        "a lone sample must reproduce its whole-batch bits (frozen stats)"
    );
    frontend.shutdown();
    println!("BatchingFrontend: bit-exact OK (batch-composition-independent)");
    println!("train -> save -> load -> serve round trip complete");
}
