//! The full train → save → load → serve round trip:
//!
//! 1. build a ResNet-50 (reduced resolution) through the typed
//!    `ModelSpec` API with an explicit weight-init seed,
//! 2. train it for a few SGD steps on synthetic data,
//! 3. export the trained parameters (plus BN running statistics) as a
//!    `StateDict` and save them to a versioned binary file,
//! 4. reload the file into a forward-only `InferenceSession` *and* a
//!    batching frontend, and verify the served outputs are
//!    **bit-identical** to the in-memory trained network's forward.
//!
//! ```sh
//! cargo run --release --example save_load_serve -- [--hw 32] [--steps 2] [--out model.anat]
//! ```

use anatomy::gxm::data::SyntheticData;
use anatomy::gxm::Network;
use anatomy::serve::{BatchingFrontend, ServeConfig};
use anatomy::{InferenceSession, StateDict};
use std::time::Duration;

fn arg(key: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let hw = arg("--hw", 32);
    let steps = arg("--steps", 2);
    let minibatch = arg("--minibatch", 2);
    let threads = arg("--threads", anatomy::parallel::hardware_threads().min(4));
    let out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "model.anat".to_string())
    };
    let classes = 10;

    // 1. typed model with an explicit seed
    let model = anatomy::topologies::resnet50_model(hw, classes).with_seed(2024);
    println!("ResNet-50 @ {hw}x{hw}: training {steps} step(s), minibatch {minibatch}");

    // 2. a few training steps
    let mut net = Network::build(&model, minibatch, threads).expect("valid model");
    let mut data = SyntheticData::new(classes, 3, hw, hw, 11);
    for step in 0..steps {
        let labels = data.next_batch(net.input_mut());
        let s = net.train_step(&labels, 0.002, 0.9);
        println!("step {step}: loss {:.4} top-1 {:.2}", s.loss, s.top1);
    }

    // 3. export + save
    let sd = net.state_dict();
    sd.save(&out).expect("state dict saves");
    let bytes = std::fs::metadata(&out).expect("saved file exists").len();
    println!("saved {} tensors ({} values, {bytes} bytes) to {out}", sd.len(), sd.value_count());

    // the trained network's reference forward on one more batch
    let labels = data.next_batch(net.input_mut());
    net.set_labels(&labels);
    net.forward();
    let (c, h, w) = net.input_dims();
    let probe: Vec<f32> = {
        let acts = net.input_mut();
        let mut v = Vec::with_capacity(minibatch * c * h * w);
        for n in 0..minibatch {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        v.push(acts.get(n, ci, hi, wi));
                    }
                }
            }
        }
        v
    };
    let padded = net.probabilities();
    let kpad = padded.len() / minibatch;
    let want: Vec<f32> =
        (0..minibatch).flat_map(|n| padded[n * kpad..n * kpad + classes].to_vec()).collect();

    // 4a. reload into a forward-only session
    let reloaded = StateDict::load(&out).expect("state dict loads");
    let mut session = InferenceSession::new(&model, minibatch, threads).expect("valid model");
    session.load_state_dict(&reloaded).expect("dict matches the model");
    let served = session.run(&probe).expect("probe batch sized to the session");
    assert_eq!(served.probs, want, "served forward must be bit-identical to training");
    println!("InferenceSession: bit-exact OK (top-1 {:?})", served.top1);

    // 4b. and through the batching frontend (whole-batch request, so
    // BN batch statistics match the direct run exactly)
    let cfg = ServeConfig::new(1, threads, minibatch)
        .with_max_wait(Duration::from_millis(1))
        .with_pinning(false);
    let frontend = BatchingFrontend::with_weights(&model, cfg, &reloaded).expect("valid model");
    let out2 = frontend.infer(&probe).expect("pipeline alive");
    assert_eq!(out2.probs, want, "frontend must serve the same trained weights");
    frontend.shutdown();
    println!("BatchingFrontend: bit-exact OK");
    println!("train -> save -> load -> serve round trip complete");
}
