//! The layer benchmark of the paper's artifact (`run_resnet50.sh`):
//! sweep all 20 Table I layers, print GFLOPS and runtime per pass.
//!
//! ```sh
//! cargo run --release --example resnet50_layers -- F   # forward
//! cargo run --release --example resnet50_layers -- B   # backward
//! cargo run --release --example resnet50_layers -- U   # weight update
//! ```

use anatomy::conv::fuse::FuseCtx;
use anatomy::conv::{ConvLayer, LayerOptions};
use anatomy::parallel::ThreadPool;
use anatomy::tensor::{BlockedActs, BlockedFilter};
use anatomy::topologies::resnet50_table1;

fn main() {
    let pass = std::env::args().nth(1).unwrap_or_else(|| "F".into());
    let threads = anatomy::parallel::hardware_threads();
    let minibatch = 8.min(threads);
    let pool = ThreadPool::new(threads);
    let iters = 5;
    println!("# ResNet-50 layers, pass {pass}, minibatch {minibatch}, {threads} threads");
    println!("layer\tGFLOPS\tms");
    for (id, shape) in resnet50_table1(minibatch) {
        let layer = ConvLayer::new(shape, LayerOptions::new(threads));
        let x = BlockedActs::random(shape.n, shape.c, shape.h, shape.w, shape.pad, 1);
        let w = BlockedFilter::random(shape.k, shape.c, shape.r, shape.s, 2);
        let gy = BlockedActs::random(shape.n, shape.k, shape.p(), shape.q(), layer.dout_pad(), 3);
        let mut y = layer.new_output();
        let mut gx = layer.new_input();
        let mut dw = layer.new_filter();
        let mut run = || match pass.as_str() {
            "B" => layer.backward(&pool, &gy, &w, &mut gx),
            "U" => layer.update(&pool, &x, &gy, &mut dw),
            _ => layer.forward(&pool, &x, &w, &mut y, &FuseCtx::default()),
        };
        run(); // warmup (first touch)
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            run();
        }
        let secs = t0.elapsed().as_secs_f64() / iters as f64;
        println!("{id}\t{:8.1}\t{:7.2}", shape.flops() as f64 / secs / 1e9, secs * 1e3);
    }
}
