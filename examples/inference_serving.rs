//! Forward-only serving through the `InferenceSession` facade: build
//! ResNet-50 once through the shared plan cache (one JIT + dryrun per
//! distinct layer shape), then loop `run(batch) -> outputs`.
//!
//! ```sh
//! cargo run --release --example inference_serving -- [--hw 64] [--batches 8]
//! ```

use anatomy::InferenceSession;

fn arg(key: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let hw = arg("--hw", 64);
    let minibatch = arg("--minibatch", 2);
    let batches = arg("--batches", 8);
    let threads = arg("--threads", anatomy::parallel::hardware_threads().min(8));

    let model = anatomy::topologies::resnet50_model(hw, 1000);
    println!("ResNet-50 @ {hw}x{hw}, minibatch {minibatch}, {threads} threads");

    let t0 = std::time::Instant::now();
    let mut session = InferenceSession::new(&model, minibatch, threads).expect("model is valid");
    let stats = session.cache_stats();
    println!(
        "setup: {:.2?} — {} conv nodes planned, {} distinct plans (cache hit rate {:.0}%)",
        t0.elapsed(),
        stats.hits + stats.misses,
        stats.entries,
        stats.hit_rate() * 100.0
    );
    let net = session.network();
    println!(
        "inference memory plan: {} activation slots, {:.1} MiB activations, {} B training state",
        net.activation_slot_count(),
        net.activation_bytes() as f64 / (1024.0 * 1024.0),
        net.training_state_bytes()
    );

    // synthetic traffic: a deterministic batch per request
    let mut rng = anatomy::tensor::rng::SplitMix64::new(42);
    let mut batch = vec![0.0f32; minibatch * 3 * hw * hw];
    let t0 = std::time::Instant::now();
    let mut last_top1 = Vec::new();
    for _ in 0..batches {
        rng.fill_f32(&mut batch);
        let out = session.run(&batch).expect("batch is sized to the session");
        last_top1 = out.top1;
    }
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "served {} images in {:.2}s — {:.1} images/s (last top-1: {:?})",
        batches * minibatch,
        secs,
        (batches * minibatch) as f64 / secs,
        last_top1
    );
}
