//! Train a small residual CNN end-to-end with the GxM graph executor
//! on synthetic class-separable data — the miniature version of the
//! paper's Section III-C experiment. Loss falls and training accuracy
//! climbs within a few dozen steps.
//!
//! ```sh
//! cargo run --release --example train_cnn
//! ```

use anatomy::gxm::data::SyntheticData;
use anatomy::gxm::Network;
use anatomy::{ConvOpts, GraphBuilder};

fn main() {
    let classes = 8;
    // the typed route: a fluent builder with a residual bn join,
    // validated into a ModelSpec before anything allocates
    let model = GraphBuilder::new()
        .input("data", 16, 16, 16)
        .conv("c0", ConvOpts::k(32))
        .bn_relu("b0")
        .conv("c1", ConvOpts::k(32).rs(3).pad(1))
        .bn_relu("b1")
        .conv("c2", ConvOpts::k(32).rs(3).pad(1))
        .bn_join("b2", "b0", true)
        .max_pool("p1", 2, 2, 0)
        .conv("c3", ConvOpts::k(64).bias().relu())
        .gap("g")
        .fc("logits", classes)
        .softmax("loss")
        .build()
        .expect("valid model");
    let threads = anatomy::parallel::hardware_threads().min(8);
    let minibatch = 32;
    let mut net = Network::build(&model, minibatch, threads).expect("buildable model");
    println!("residual CNN: {} parameters, {} threads", net.param_count(), threads);

    let mut data = SyntheticData::new(classes, 16, 16, 16, 42);
    let t0 = std::time::Instant::now();
    for step in 0..60 {
        let labels = data.next_batch(net.input_mut());
        let stats = net.train_step(&labels, 0.05, 0.9);
        if step % 10 == 0 || step == 59 {
            println!("step {step:3}: loss {:.4}  top-1 {:.2}", stats.loss, stats.top1);
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    println!("60 steps in {elapsed:.2}s — {:.1} img/s", 60.0 * minibatch as f64 / elapsed);
}
