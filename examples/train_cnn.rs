//! Train a small residual CNN end-to-end with the GxM graph executor
//! on synthetic class-separable data — the miniature version of the
//! paper's Section III-C experiment. Loss falls and training accuracy
//! climbs within a few dozen steps.
//!
//! ```sh
//! cargo run --release --example train_cnn
//! ```

use anatomy::gxm::data::SyntheticData;
use anatomy::gxm::{parse_topology, Network};

fn main() {
    let classes = 8;
    let topology = format!(
        "input name=data c=16 h=16 w=16\n\
         conv name=c0 bottom=data k=32\n\
         bn name=b0 bottom=c0 relu=1\n\
         conv name=c1 bottom=b0 k=32 r=3 s=3 pad=1\n\
         bn name=b1 bottom=c1 relu=1\n\
         conv name=c2 bottom=b1 k=32 r=3 s=3 pad=1\n\
         bn name=b2 bottom=c2 eltwise=b0 relu=1\n\
         pool name=p1 bottom=b2 kind=max size=2 stride=2\n\
         conv name=c3 bottom=p1 k=64 bias=1 relu=1\n\
         gap name=g bottom=c3\n\
         fc name=logits bottom=g k={classes}\n\
         softmaxloss name=loss bottom=logits\n"
    );
    let nl = parse_topology(&topology).expect("valid topology");
    let threads = anatomy::parallel::hardware_threads().min(8);
    let minibatch = 32;
    let mut net = Network::build(&nl, minibatch, threads);
    println!("residual CNN: {} parameters, {} threads", net.param_count(), threads);

    let mut data = SyntheticData::new(classes, 16, 16, 16, 42);
    let t0 = std::time::Instant::now();
    for step in 0..60 {
        let labels = data.next_batch(net.input_mut());
        let stats = net.train_step(&labels, 0.05, 0.9);
        if step % 10 == 0 || step == 59 {
            println!("step {step:3}: loss {:.4}  top-1 {:.2}", stats.loss, stats.top1);
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    println!("60 steps in {elapsed:.2}s — {:.1} img/s", 60.0 * minibatch as f64 / elapsed);
}
