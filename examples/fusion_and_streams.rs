//! Demonstrate the two headline execution techniques:
//!
//! 1. **layer fusion** (Section II-G): a conv + bias + ReLU + residual
//!    add as one fused stream vs the same computation as separate
//!    bandwidth-bound passes;
//! 2. **kernel streams** (Section II-H): the dryrun's compact RLE
//!    metadata and the branch-free replay vs the branchy loop nest
//!    (our "mkldnn" baseline).
//!
//! ```sh
//! cargo run --release --example fusion_and_streams
//! ```

use anatomy::baselines::{ConvBaseline, MkldnnConv};
use anatomy::conv::fuse::{apply_unfused, FuseCtx, FusedOp};
use anatomy::conv::fwd::FwdPlan;
use anatomy::conv::{blocking, Backend, ConvLayer, LayerOptions};
use anatomy::parallel::ThreadPool;
use anatomy::tensor::{BlockedActs, BlockedFilter, ConvShape};

fn main() {
    let threads = anatomy::parallel::hardware_threads();
    let minibatch = 8.min(threads);
    // Table I layer 9: 1x1 with a residual consumer — the fusion case
    let shape = ConvShape::new(minibatch, 128, 512, 28, 28, 1, 1, 1, 0);
    let pool = ThreadPool::new(threads);

    let x = BlockedActs::random(shape.n, shape.c, shape.h, shape.w, 0, 1);
    let w = BlockedFilter::random(shape.k, shape.c, shape.r, shape.s, 2);
    let residual = BlockedActs::random(shape.n, shape.k, shape.p(), shape.q(), 0, 3);
    let bias: Vec<f32> = (0..shape.k).map(|i| (i % 7) as f32 * 0.01).collect();

    // fused: conv + bias + eltwise + relu in one stream replay
    let fused = ConvLayer::new(shape, LayerOptions::new(threads).with_fuse(FusedOp::EltwiseRelu));
    let ctx = FuseCtx { bias: Some(&bias), eltwise: Some(&residual) };
    let mut y_fused = fused.new_output();
    let time = |f: &mut dyn FnMut()| {
        f();
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            f();
        }
        t0.elapsed().as_secs_f64() / 10.0
    };
    let t_fused = time(&mut || fused.forward(&pool, &x, &w, &mut y_fused, &ctx));

    // unfused: plain conv, then separate eltwise+relu pass over memory
    let plain = ConvLayer::new(shape, LayerOptions::new(threads));
    let mut y_plain = plain.new_output();
    let t_unfused = time(&mut || {
        plain.forward(&pool, &x, &w, &mut y_plain, &FuseCtx::default());
        apply_unfused(FusedOp::EltwiseRelu, &mut y_plain, &ctx);
    });
    println!(
        "conv+residual+ReLU: fused {:.2} ms vs unfused {:.2} ms ({:.2}x)",
        t_fused * 1e3,
        t_unfused * 1e3,
        t_unfused / t_fused
    );

    // streams metadata compactness + replay vs branchy loops
    let b = blocking::choose(&shape);
    let plan = FwdPlan::new(shape, b, threads, Backend::Auto, true, FusedOp::None, None);
    println!(
        "kernel streams: {} variants, {} bytes of metadata for {} microkernel calls/step",
        plan.kernel_variants(),
        plan.stream_bytes(),
        shape.n * shape.kb() * (shape.p() / b.rbp) * (shape.q() / b.rbq),
    );
    let branchy = MkldnnConv::new(shape, threads);
    let mut y2 = plain.new_output();
    let t_replay = time(&mut || plain.forward(&pool, &x, &w, &mut y2, &FuseCtx::default()));
    let t_branchy = time(&mut || branchy.forward(&pool, &x, &w, &mut y2));
    println!("replay {:.2} ms vs branchy loop nest {:.2} ms", t_replay * 1e3, t_branchy * 1e3);
}
