#!/usr/bin/env python3
"""Enforce `// SAFETY:` comments on every `unsafe` block.

Usage: check_safety_comments.py DIR [DIR ...]

Scans every `.rs` file under the given directories. Each `unsafe`
*block* (`unsafe {`, `unsafe impl`-free) must carry a justification: a
comment containing `SAFETY:` either on the same line or within the
preceding few lines (attributes and blank lines in between are
allowed). Declarations that only *introduce* obligations — `unsafe fn`,
`unsafe impl`, `unsafe extern` — are exempt: their contracts live in
doc comments (`# Safety` sections, enforced by rustdoc convention),
not block comments.

Lines inside string literals are not parsed (this is a lexical
checker); in practice the emitter/test code never spells `unsafe {`
inside a string, and a false positive just asks for one more comment.

Exits non-zero listing every unjustified `unsafe` block.
"""

import re
import sys
from pathlib import Path

# an `unsafe` keyword starting a block: next non-space char sequence is
# `{`, possibly with attributes between — but NOT fn/impl/trait/extern
UNSAFE_BLOCK = re.compile(r"\bunsafe\s*\{")
UNSAFE_DECL = re.compile(r"\bunsafe\s+(fn|impl|trait|extern)\b")
SAFETY = re.compile(r"//.*SAFETY:|/\*.*SAFETY:")
# lines that may sit between the SAFETY comment and the block
SKIPPABLE = re.compile(r"^\s*(#\[.*\]\s*)?$|^\s*//")


def line_is_comment(line: str) -> bool:
    return line.lstrip().startswith("//")


def check_file(path: Path) -> list:
    errors = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        if line_is_comment(line):
            continue
        # strip line-comment tails so a commented-out `unsafe {` or a
        # SAFETY comment mentioning one is not flagged
        code = line.split("//", 1)[0]
        if not UNSAFE_BLOCK.search(code):
            continue
        if UNSAFE_DECL.search(code):
            continue
        # justified on the same line?
        if SAFETY.search(line):
            continue
        # look upward through comments, attributes, and blanks
        justified = False
        for j in range(i - 1, max(-1, i - 8), -1):
            prev = lines[j]
            if SAFETY.search(prev):
                justified = True
                break
            if not SKIPPABLE.match(prev):
                break
        if not justified:
            errors.append(f"{path}:{i + 1}: unsafe block without a SAFETY: comment")
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2])
        return 2
    errors = []
    nfiles = 0
    for name in argv[1:]:
        root = Path(name)
        if not root.exists():
            errors.append(f"{name}: not found")
            continue
        for path in sorted(root.rglob("*.rs")):
            nfiles += 1
            errors.extend(check_file(path))
    for e in errors:
        print(e)
    if not errors:
        print(f"ok: {nfiles} files, every unsafe block carries a SAFETY: comment")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
