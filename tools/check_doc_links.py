#!/usr/bin/env python3
"""Check internal markdown links and anchors.

Usage: check_doc_links.py FILE.md [FILE.md ...]

For every markdown link in the given files:

* external links (http/https/mailto) are skipped;
* `#anchor` links must match a heading in the same file;
* `path` / `path#anchor` links must resolve relative to the linking
  file, and when the target is markdown its anchor must match one of
  its headings.

Anchors are derived from headings with GitHub's slug rules: lowercase,
drop everything but word characters, spaces and hyphens, turn spaces
into hyphens, and suffix repeats with -1, -2, ...

Exits non-zero listing every broken link.
"""

import re
import sys
from pathlib import Path

HEADING = re.compile(r"^#{1,6}\s+(.*)$")
# [text](target) — skips images' leading '!' automatically since we
# only care about the (target); ignore targets with spaces (not links)
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_FENCE = re.compile(r"^(```|~~~)")


def slugify(heading: str) -> str:
    heading = re.sub(r"`([^`]*)`", r"\1", heading)  # strip code spans
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path: Path, cache: dict) -> set:
    if path not in cache:
        counts: dict = {}
        anchors = set()
        in_fence = False
        for line in path.read_text(encoding="utf-8").splitlines():
            if CODE_FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING.match(line)
            if not m:
                continue
            slug = slugify(m.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = anchors
    return cache[path]


def check_file(path: Path, cache: dict) -> list:
    errors = []
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            where = f"{path}:{lineno}"
            if target.startswith("#"):
                if target[1:] not in anchors_of(path, cache):
                    errors.append(f"{where}: no heading for anchor '{target}'")
                continue
            rel, _, frag = target.partition("#")
            dest = (path.parent / rel).resolve()
            if not dest.exists():
                errors.append(f"{where}: missing file '{rel}'")
                continue
            if frag:
                if dest.suffix.lower() not in (".md", ".markdown"):
                    continue
                if frag not in anchors_of(dest, cache):
                    errors.append(f"{where}: no heading for '#{frag}' in '{rel}'")
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2])
        return 2
    cache: dict = {}
    errors = []
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{name}: file not found")
            continue
        errors.extend(check_file(path, cache))
    for e in errors:
        print(e)
    if not errors:
        print(f"ok: {len(argv) - 1} files, all internal links resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
