//! Static work partitioning (the paper's Section II-F strategy).
//!
//! Work items (microkernel invocations) are divided among threads once,
//! at dryrun time. The partitioners here are deterministic and balanced:
//! with `total` items over `parts` threads, the first `total % parts`
//! threads get one extra item.

use std::ops::Range;

/// Balanced contiguous split of `0..total` into `parts` ranges;
/// returns the `i`-th range (`i < parts`). Empty ranges are possible
/// when `total < parts`.
#[inline]
pub fn split_even(total: usize, parts: usize, i: usize) -> Range<usize> {
    assert!(i < parts, "part index out of range");
    let base = total / parts;
    let rem = total % parts;
    let start = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    start..(start + len).min(total)
}

/// Split `0..total` into ranges aligned to `block` (except possibly the
/// last): used when work must stay aligned to register-block boundaries.
pub fn split_blocks(total: usize, block: usize, parts: usize, i: usize) -> Range<usize> {
    assert!(block > 0);
    let nblocks = total.div_ceil(block);
    let r = split_even(nblocks, parts, i);
    (r.start * block).min(total)..(r.end * block).min(total)
}

/// A flattened multi-dimensional iteration space split across threads.
///
/// The paper's forward pass has `N × Kb × Pb × Qb` independent work
/// items (Section II-F); threads take a contiguous chunk of the
/// flattened space so the minibatch dimension is split first, then
/// output feature blocks, then spatial blocks — exactly the priority
/// order of the paper ("first minibatch, then output feature maps, then
/// the spatial domains").
#[derive(Clone, Copy, Debug)]
pub struct FlatPartition {
    /// Extents of the (up to) 4 loops, outermost first.
    pub dims: [usize; 4],
}

impl FlatPartition {
    /// Create a partition over the given loop extents (outermost first).
    pub fn new(dims: [usize; 4]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "empty dimension");
        Self { dims }
    }

    /// Total number of work items.
    #[inline]
    pub fn total(&self) -> usize {
        self.dims.iter().product()
    }

    /// The flat index range owned by thread `tid` of `nthreads`.
    #[inline]
    pub fn range(&self, nthreads: usize, tid: usize) -> Range<usize> {
        split_even(self.total(), nthreads, tid)
    }

    /// Decompose a flat index into the 4 loop coordinates.
    #[inline]
    pub fn unflatten(&self, mut idx: usize) -> [usize; 4] {
        debug_assert!(idx < self.total());
        let mut out = [0usize; 4];
        for d in (0..4).rev() {
            out[d] = idx % self.dims[d];
            idx /= self.dims[d];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_even_covers_everything_once() {
        for total in [0usize, 1, 7, 24, 100, 101] {
            for parts in [1usize, 2, 3, 24, 130] {
                let mut covered = vec![0u8; total];
                for i in 0..parts {
                    for j in split_even(total, parts, i) {
                        covered[j] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "total={total} parts={parts}");
            }
        }
    }

    #[test]
    fn split_even_is_balanced() {
        for total in [100usize, 101, 97] {
            for parts in [3usize, 7, 24] {
                let lens: Vec<usize> =
                    (0..parts).map(|i| split_even(total, parts, i).len()).collect();
                let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(mx - mn <= 1, "total={total} parts={parts} lens={lens:?}");
            }
        }
    }

    #[test]
    fn split_blocks_respects_alignment() {
        for i in 0..4 {
            let r = split_blocks(100, 8, 4, i);
            assert_eq!(r.start % 8, 0);
            if r.end != 100 {
                assert_eq!(r.end % 8, 0);
            }
        }
        // union covers everything
        let mut covered = [0u8; 100];
        for i in 0..4 {
            for j in split_blocks(100, 8, 4, i) {
                covered[j] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn flat_partition_unflatten_roundtrip() {
        let p = FlatPartition::new([3, 4, 5, 6]);
        assert_eq!(p.total(), 360);
        let mut seen = std::collections::HashSet::new();
        for idx in 0..p.total() {
            let [a, b, c, d] = p.unflatten(idx);
            assert!(a < 3 && b < 4 && c < 5 && d < 6);
            assert!(seen.insert((a, b, c, d)));
            // flat order: idx == ((a*4 + b)*5 + c)*6 + d
            assert_eq!(((a * 4 + b) * 5 + c) * 6 + d, idx);
        }
    }

    #[test]
    fn flat_partition_thread_ranges_tile_space() {
        let p = FlatPartition::new([2, 8, 4, 4]);
        let mut covered = vec![0u8; p.total()];
        for tid in 0..28 {
            for j in p.range(28, tid) {
                covered[j] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }
}
