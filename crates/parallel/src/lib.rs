//! OpenMP-style threading runtime (substrate for the convolution engines).
//!
//! The paper's kernels run under OpenMP parallel regions: a fixed team of
//! threads with *stable thread ids*, static work partitioning decided at
//! dryrun time, and team-wide barriers (e.g. between the per-thread
//! weight-gradient accumulation and the tree reduction of Section II-J).
//! Work stealing would break the per-thread kernel streams (each thread
//! replays its own pre-recorded offset stream, Section II-H), so instead
//! of rayon this crate implements exactly the OpenMP shape:
//!
//! * [`ThreadPool::run`] executes a closure on every team member,
//!   passing a [`Ctx`] with the thread id; the caller participates as
//!   thread 0, the workers are persistent and pinned to cores,
//! * [`Ctx::barrier`] is a sense-reversing spin barrier usable *inside*
//!   a region,
//! * [`split_even`] / [`split_blocks`] are the static partitioners.
//!
//! Dispatch latency is a few microseconds (spin-then-park workers);
//! in-region barriers are pure spinners, which is the right trade-off
//! for millisecond-scale layer kernels.

mod barrier;
mod partition;
mod pool;

pub use barrier::SpinBarrier;
pub use partition::{split_blocks, split_even, FlatPartition};
pub use pool::{pin_current_thread, Ctx, PoolOptions, ThreadPool};

/// Number of hardware threads available to this process.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}
