//! Persistent worker team with stable thread ids ("OpenMP substitute").
//!
//! `ThreadPool::run(f)` executes `f(ctx)` on every team member. The
//! calling thread participates as thread 0; `nthreads - 1` pinned
//! workers cover ids `1..nthreads`. The closure is passed by reference
//! into the workers — `run` blocks until every member finished, which is
//! what makes the borrow sound (the same reasoning as
//! `std::thread::scope`).
//!
//! Workers spin briefly waiting for the next region and then park, so an
//! idle pool costs nothing while dispatch stays in the microsecond
//! range for back-to-back regions (the benchmark case).

use crate::barrier::SpinBarrier;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Per-thread context handed to the region closure.
#[derive(Clone, Copy)]
pub struct Ctx<'a> {
    /// This thread's stable id in `0..nthreads`.
    pub tid: usize,
    /// Team size.
    pub nthreads: usize,
    barrier: &'a SpinBarrier,
}

impl<'a> Ctx<'a> {
    /// Team-wide barrier (usable repeatedly inside the region).
    #[inline]
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// This thread's balanced chunk of `0..total`.
    #[inline]
    pub fn chunk(&self, total: usize) -> std::ops::Range<usize> {
        crate::partition::split_even(total, self.nthreads, self.tid)
    }
}

/// A region closure: callable with any context lifetime.
type Job = dyn for<'a> Fn(Ctx<'a>) + Sync;

struct Shared {
    /// Incremented by the dispatcher to publish a new region.
    seq: AtomicUsize,
    /// The current region's closure. The `'static` lifetime is a lie
    /// told only for storage; `run` keeps the real closure alive until
    /// every worker passed the `done` barrier.
    job: std::sync::Mutex<Option<&'static Job>>,
    /// Set to request worker shutdown.
    shutdown: AtomicBool,
    /// Completion barrier: team = nthreads (workers + caller).
    done: SpinBarrier,
    /// In-region user barrier.
    region_barrier: SpinBarrier,
    nthreads: usize,
}

/// Construction options for a [`ThreadPool`]: team size plus the
/// naming and core-affinity hints a serving stack uses to keep several
/// replica pools apart.
///
/// The defaults reproduce [`ThreadPool::new`]: workers named
/// `anatomy-worker-<tid>` and pinned (best effort) to cores
/// `1..nthreads`, i.e. a core offset of 0.
#[derive(Clone, Debug)]
pub struct PoolOptions {
    threads: usize,
    name: String,
    core_offset: Option<usize>,
}

impl PoolOptions {
    /// Options for a team of `threads` (>= 1) with default naming and
    /// pinning.
    pub fn new(threads: usize) -> Self {
        Self { threads, name: "anatomy-worker".to_string(), core_offset: Some(0) }
    }

    /// Prefix worker thread names with `name` (worker `tid` becomes
    /// `<name>-<tid>`), so `top -H` / debuggers attribute time to the
    /// right replica.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Pin worker `tid` to core `offset + tid` (best effort). Replica
    /// `r` of a serving stack passes `r * threads_per_replica` so
    /// replicas occupy disjoint cores.
    pub fn with_core_offset(mut self, offset: usize) -> Self {
        self.core_offset = Some(offset);
        self
    }

    /// Disable core pinning entirely (oversubscribed or virtualized
    /// hosts where affinity hurts).
    pub fn without_pinning(mut self) -> Self {
        self.core_offset = None;
        self
    }

    /// The configured team size.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// Persistent OpenMP-style thread team.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Create a team of `nthreads` (>= 1). Workers are pinned to cores
    /// `1..nthreads` (best effort); the caller should run on core 0.
    pub fn new(nthreads: usize) -> Self {
        Self::with_options(PoolOptions::new(nthreads))
    }

    /// Create a team from explicit [`PoolOptions`] (worker naming and
    /// core-affinity hints; serving replicas use this to stay apart).
    pub fn with_options(opts: PoolOptions) -> Self {
        let nthreads = opts.threads;
        assert!(nthreads >= 1, "team must be non-empty");
        let shared = Arc::new(Shared {
            seq: AtomicUsize::new(0),
            job: std::sync::Mutex::new(None),
            shutdown: AtomicBool::new(false),
            done: SpinBarrier::new(nthreads),
            region_barrier: SpinBarrier::new(nthreads),
            nthreads,
        });
        let workers = (1..nthreads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                let pin = opts.core_offset.map(|o| o + tid);
                std::thread::Builder::new()
                    .name(format!("{}-{tid}", opts.name))
                    .spawn(move || worker_loop(tid, shared, pin))
                    .expect("failed to spawn worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Team with one thread per hardware thread.
    pub fn with_all_cores() -> Self {
        Self::new(crate::hardware_threads())
    }

    /// Team size.
    #[inline]
    pub fn nthreads(&self) -> usize {
        self.shared.nthreads
    }

    /// Execute `f(ctx)` on every team member and wait for completion.
    ///
    /// The closure may freely use `ctx.barrier()`; it must not call
    /// `run` on the same pool (no nested regions, as in OpenMP's default).
    pub fn run<F>(&self, f: F)
    where
        F: for<'a> Fn(Ctx<'a>) + Sync,
    {
        let shared = &*self.shared;
        if shared.nthreads == 1 {
            f(Ctx { tid: 0, nthreads: 1, barrier: &shared.region_barrier });
            return;
        }
        {
            let dyn_ref: &(dyn for<'b> Fn(Ctx<'b>) + Sync + '_) = &f;
            // SAFETY: only lifetimes are transmuted. `run` does not
            // return until the `done` barrier below, so the reference
            // stays valid for the whole time workers can observe it.
            let static_ref: &'static Job = unsafe { std::mem::transmute(dyn_ref) };
            *shared.job.lock().unwrap() = Some(static_ref);
        }
        // Publish: release so workers' acquire of `seq` sees the job.
        shared.seq.fetch_add(1, Ordering::Release);
        // Wake any parked workers.
        for h in &self.workers {
            h.thread().unpark();
        }
        // Participate as tid 0.
        f(Ctx { tid: 0, nthreads: shared.nthreads, barrier: &shared.region_barrier });
        // Wait until every worker finished the region.
        shared.done.wait();
        *shared.job.lock().unwrap() = None;
    }

    /// Convenience: statically partition `0..total` and run `f(range, tid)`.
    pub fn for_each_chunk<F>(&self, total: usize, f: F)
    where
        F: Fn(std::ops::Range<usize>, usize) + Sync,
    {
        self.run(|ctx| f(ctx.chunk(total), ctx.tid));
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.seq.fetch_add(1, Ordering::Release);
        for h in &self.workers {
            h.thread().unpark();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(tid: usize, shared: Arc<Shared>, pin: Option<usize>) {
    if let Some(core) = pin {
        pin_current_thread(core);
    }
    let mut last_seq = 0usize;
    loop {
        // Wait for a new region (spin, then park).
        let mut spins = 0u32;
        let seq = loop {
            let s = shared.seq.load(Ordering::Acquire);
            if s != last_seq {
                break s;
            }
            spins += 1;
            if spins < 10_000 {
                std::hint::spin_loop();
            } else {
                std::thread::park_timeout(std::time::Duration::from_millis(1));
            }
        };
        last_seq = seq;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let job = shared.job.lock().unwrap().expect("job published with seq");
        job(Ctx { tid, nthreads: shared.nthreads, barrier: &shared.region_barrier });
        shared.done.wait();
    }
}

/// Pin the calling thread to one core (Linux only, best effort —
/// failures from cgroup restrictions or out-of-range cores are
/// ignored). A serving replica pins its own dispatcher thread to the
/// pool's core-offset so the caller-participates-as-tid-0 convention
/// keeps the whole team on one contiguous core range.
pub fn pin_current_thread(core: usize) {
    // SAFETY: zeroed cpu_set_t is valid; sched_setaffinity only reads it.
    #[cfg(target_os = "linux")]
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_SET(core % libc::CPU_SETSIZE as usize, &mut set);
        // best effort: ignore failures (cgroup restrictions etc.)
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set);
    }
    #[cfg(not(target_os = "linux"))]
    let _ = core;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn all_threads_participate_once() {
        let pool = ThreadPool::new(8);
        let hits = (0..8).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        pool.run(|ctx| {
            hits[ctx.tid].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn many_back_to_back_regions() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.run(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 500 * 4);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let pool = ThreadPool::new(6);
        let data: Vec<u64> = (0..100_000u64).collect();
        let total = AtomicU64::new(0);
        pool.run(|ctx| {
            let r = ctx.chunk(data.len());
            let partial: u64 = data[r].iter().sum();
            total.fetch_add(partial, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 100_000u64 * 99_999 / 2);
    }

    #[test]
    fn in_region_barrier_orders_phases() {
        let pool = ThreadPool::new(5);
        let phase1 = AtomicUsize::new(0);
        let ok = AtomicUsize::new(0);
        pool.run(|ctx| {
            phase1.fetch_add(1, Ordering::Relaxed);
            ctx.barrier();
            if phase1.load(Ordering::Relaxed) == ctx.nthreads {
                ok.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(ok.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn borrows_stack_data_mutably_disjoint() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 4096];
        let chunks: Vec<&mut [usize]> = data.chunks_mut(1024).collect();
        let chunks = std::sync::Mutex::new(chunks);
        pool.run(|ctx| {
            let mut guard = chunks.lock().unwrap();
            let chunk = guard.pop().unwrap();
            drop(guard);
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = ctx.tid * 10_000 + i;
            }
        });
        drop(chunks);
        // every chunk was written by exactly one thread
        let mut tids_seen = std::collections::HashSet::new();
        for c in data.chunks(1024) {
            let tid = c[0] / 10_000;
            assert!(tids_seen.insert(tid));
            for (i, &v) in c.iter().enumerate() {
                assert_eq!(v, tid * 10_000 + i);
            }
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.run(|ctx| {
            assert_eq!(ctx.tid, 0);
            assert_eq!(ctx.nthreads, 1);
            counter.fetch_add(1, Ordering::Relaxed);
            ctx.barrier(); // must not deadlock
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn for_each_chunk_covers_range() {
        let pool = ThreadPool::new(3);
        let covered: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.for_each_chunk(100, |range, _tid| {
            for i in range {
                covered[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(covered.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn named_offset_pool_runs_all_threads() {
        let pool = ThreadPool::with_options(
            PoolOptions::new(3).with_name("replica-1").with_core_offset(3),
        );
        let hits = (0..3).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        pool.run(|ctx| {
            hits[ctx.tid].fetch_add(1, Ordering::Relaxed);
            // worker threads carry the replica name prefix
            if ctx.tid > 0 {
                let name = std::thread::current().name().unwrap_or("").to_string();
                assert!(name.starts_with("replica-1-"), "{name}");
            }
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn unpinned_pool_runs() {
        let pool = ThreadPool::with_options(PoolOptions::new(2).without_pinning());
        let c = AtomicUsize::new(0);
        pool.run(|_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(c.load(Ordering::Relaxed), 2);
        assert_eq!(PoolOptions::new(2).threads(), 2);
    }

    #[test]
    fn pools_can_be_created_and_dropped_repeatedly() {
        for _ in 0..10 {
            let pool = ThreadPool::new(3);
            let c = AtomicUsize::new(0);
            pool.run(|_| {
                c.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(c.load(Ordering::Relaxed), 3);
        }
    }
}
