//! Sense-reversing centralized spin barrier.
//!
//! Used *inside* parallel regions where all team members are running and
//! the expected wait is short (the weight-update reduction, the stream
//! replay epochs). Spinning with a bounded backoff beats parking here:
//! an OS sleep/wake round trip costs more than the entire barrier.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable spin barrier for a fixed team size.
///
/// Unlike `std::sync::Barrier` this never syscalls; all waiters spin
/// with `spin_loop` hints and periodic `yield_now` so oversubscribed
/// runs still make progress.
pub struct SpinBarrier {
    count: AtomicUsize,
    sense: AtomicBool,
    team: usize,
}

impl SpinBarrier {
    /// Barrier for `team` threads (`team >= 1`).
    pub fn new(team: usize) -> Self {
        assert!(team >= 1, "barrier team must be non-empty");
        Self { count: AtomicUsize::new(0), sense: AtomicBool::new(false), team }
    }

    /// Team size this barrier synchronizes.
    #[inline]
    pub fn team(&self) -> usize {
        self.team
    }

    /// Block until all `team` threads have arrived.
    ///
    /// Memory ordering: everything written before `wait` by any thread
    /// is visible to every thread after `wait` (AcqRel on the arrival
    /// counter plus the sense flip).
    pub fn wait(&self) {
        if self.team == 1 {
            // single-threaded teams synchronize trivially but we still
            // need the compiler fence semantics of an atomic op
            self.count.fetch_add(0, Ordering::AcqRel);
            return;
        }
        let my_sense = !self.sense.load(Ordering::Relaxed);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.team {
            // last arrival resets and releases the team
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_barrier_returns() {
        let b = SpinBarrier::new(1);
        for _ in 0..100 {
            b.wait();
        }
    }

    #[test]
    fn phases_are_ordered() {
        // every thread increments a phase counter; after the barrier all
        // threads must observe the full team's phase-1 increments
        const T: usize = 8;
        const ROUNDS: usize = 200;
        let barrier = SpinBarrier::new(T);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..T {
                scope.spawn(|| {
                    for round in 1..=ROUNDS {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        assert_eq!(counter.load(Ordering::Relaxed), T * round);
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_team() {
        SpinBarrier::new(0);
    }
}
