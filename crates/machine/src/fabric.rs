//! α–β interconnect model: the stand-in for Omnipath + Intel MLSL in
//! the multi-node experiments (Fig. 9).
//!
//! The paper's end-to-end runs overlap the weight-gradient allreduce
//! with the remaining backward compute ("the allreduce of the gradient
//! weights in the backward pass is completely overlapped by using
//! MLSL") and set aside a few cores per node to drive the fabric
//! (8 of 72 on KNM, 4 of 56 on SKX). This module models exactly those
//! two mechanisms:
//!
//! * a ring allreduce with per-message latency `alpha` and link
//!   bandwidth `beta`,
//! * an overlap window equal to the backward+update compute time —
//!   only the part of the allreduce that does not fit in the window
//!   shows up as iteration-time overhead.

/// Interconnect parameters.
#[derive(Clone, Copy, Debug)]
pub struct Fabric {
    /// Per-message latency in seconds.
    pub alpha: f64,
    /// Link bandwidth in bytes per second (unidirectional).
    pub beta: f64,
    /// Cores per node set aside to drive the fabric.
    pub comm_cores: usize,
}

impl Fabric {
    /// 100 Gbit/s Omnipath-like fabric as used by the testbeds.
    pub fn omnipath(comm_cores: usize) -> Self {
        Self { alpha: 5e-6, beta: 12.5e9, comm_cores }
    }

    /// Ring-allreduce time for `bytes` over `nodes` nodes.
    ///
    /// Classic cost: `2·(n−1)` steps, each moving `bytes/n` and paying
    /// one latency.
    pub fn allreduce_seconds(&self, nodes: usize, bytes: f64) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let steps = 2 * (nodes - 1);
        steps as f64 * (self.alpha + bytes / nodes as f64 / self.beta)
    }

    /// Iteration-time overhead after overlapping the allreduce with
    /// `overlap_window` seconds of independent compute.
    pub fn exposed_seconds(&self, nodes: usize, bytes: f64, overlap_window: f64) -> f64 {
        (self.allreduce_seconds(nodes, bytes) - overlap_window).max(0.0)
    }

    /// Strong-scaling model: images/second on `nodes` nodes given the
    /// single-node step time (`t_step` seconds for `minibatch` images,
    /// already on the reduced compute-core count) and the gradient size.
    ///
    /// Data parallelism splits the global minibatch; each node computes
    /// a full step on its shard and allreduces `grad_bytes`.
    pub fn strong_scale_imgs_per_s(
        &self,
        nodes: usize,
        t_step: f64,
        minibatch: usize,
        grad_bytes: f64,
    ) -> f64 {
        // overlap window: the backward part of the step (≈ 2/3 of it:
        // bwd + upd of the three passes) on this node
        let window = t_step * 2.0 / 3.0;
        let t_iter = t_step + self.exposed_seconds(nodes, grad_bytes, window);
        nodes as f64 * minibatch as f64 / t_iter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_has_no_comm() {
        let f = Fabric::omnipath(4);
        assert_eq!(f.allreduce_seconds(1, 1e9), 0.0);
    }

    #[test]
    fn allreduce_scales_with_bytes() {
        let f = Fabric::omnipath(4);
        let t1 = f.allreduce_seconds(8, 100e6);
        let t2 = f.allreduce_seconds(8, 200e6);
        assert!(t2 > t1 && t2 < 2.2 * t1);
    }

    #[test]
    fn resnet_gradients_overlap_fully_at_16_nodes() {
        // ResNet-50: ~25.5M parameters = 102 MB of f32 gradients.
        // Single-node step time at ~136 img/s with N=28: ~0.2 s.
        let f = Fabric::omnipath(4);
        let allreduce = f.allreduce_seconds(16, 102e6);
        let window = 0.2 * 2.0 / 3.0;
        assert!(allreduce < window, "allreduce {allreduce}s should hide inside window {window}s");
    }

    #[test]
    fn strong_scaling_efficiency_is_about_90_percent() {
        // With comm cores set aside, t_step grows slightly; the paper
        // reports ≈90% parallel efficiency at 16 nodes.
        let f = Fabric::omnipath(4);
        let t_step = 0.2; // seconds for N=28 on the reduced core count
        let single = f.strong_scale_imgs_per_s(1, t_step, 28, 102e6);
        let sixteen = f.strong_scale_imgs_per_s(16, t_step, 28, 102e6);
        let eff = sixteen / (16.0 * single);
        assert!(eff > 0.85 && eff <= 1.0, "efficiency {eff}");
    }
}
