//! Calibration of the machine this library actually runs on.
//!
//! The bench binaries report measured GFLOPS as a fraction of the
//! *host's* peak, which we establish empirically the same way the paper
//! quotes SGEMM peak and stream triad for its testbeds:
//!
//! * [`measure_peak_gflops`] — a register-resident FMA loop with enough
//!   independent accumulation chains to hide FMA latency, run on every
//!   core of a [`parallel::ThreadPool`];
//! * [`measure_stream_gbs`] — a stream-triad pass over buffers far
//!   larger than LLC.
//!
//! The result is packaged as a [`MachineModel`] so the same roofline
//! code works for SKX, KNM and the host.

use crate::model::MachineModel;
use parallel::ThreadPool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// FMA chains used by the peak loop; 16 covers the latency×ports
/// product of every x86 core this library targets.
const CHAINS: usize = 16;
const PEAK_ITERS: usize = 200_000;

/// One thread's peak measurement: `CHAINS` independent f32×16 FMA
/// chains. Returns achieved GFLOPS on this thread.
fn peak_loop_once() -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: feature checked above.
            return unsafe { peak_loop_avx512() };
        }
    }
    peak_loop_portable()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn peak_loop_avx512() -> f64 {
    use std::arch::x86_64::*;
    let a = _mm512_set1_ps(1.000_000_1);
    let b = _mm512_set1_ps(0.999_999_9);
    let mut acc = [_mm512_set1_ps(1.0); CHAINS];
    let t0 = Instant::now();
    for _ in 0..PEAK_ITERS {
        // 16 independent chains hide the 4-cycle FMA latency on 2 ports
        for v in acc.iter_mut() {
            *v = _mm512_fmadd_ps(a, b, *v);
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    let mut sink = 0.0f32;
    for v in acc {
        sink += _mm512_reduce_add_ps(v);
    }
    std::hint::black_box(sink);
    let flops = (PEAK_ITERS * CHAINS * 16 * 2) as f64;
    flops / dt / 1e9
}

/// Fallback used on non-AVX-512 hosts; may undershoot true peak.
fn peak_loop_portable() -> f64 {
    let mut acc = [[1.0f32; 16]; CHAINS];
    let a = [1.000_000_1f32; 16];
    let b = [0.999_999_9f32; 16];
    let t0 = Instant::now();
    for _ in 0..PEAK_ITERS {
        for chain in &mut acc {
            for l in 0..16 {
                chain[l] = a[l].mul_add(b[l], chain[l]);
            }
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    let sink: f32 = acc.iter().flat_map(|c| c.iter()).sum();
    std::hint::black_box(sink);
    let flops = (PEAK_ITERS * CHAINS * 16 * 2) as f64;
    flops / dt / 1e9
}

/// Measure multi-core f32 FMA peak in GFLOPS using `pool`.
pub fn measure_peak_gflops(pool: &ThreadPool) -> f64 {
    let total_mflops = AtomicU64::new(0);
    let t0 = Instant::now();
    pool.run(|_ctx| {
        let g = peak_loop_once();
        // accumulate per-thread achieved GFLOPS ×1000 to keep integer atomics
        total_mflops.fetch_add((g * 1000.0) as u64, Ordering::Relaxed);
    });
    let _ = t0;
    total_mflops.load(Ordering::Relaxed) as f64 / 1000.0
}

/// Measure stream-triad bandwidth (GB/s) over all cores.
pub fn measure_stream_gbs(pool: &ThreadPool) -> f64 {
    const N: usize = 8 * 1024 * 1024; // 32 MB per array per thread-chunk
    let a = vec![1.0f32; N];
    let b = vec![2.0f32; N];
    let mut c = vec![0.0f32; N];
    // write the triad through raw pointers per disjoint chunk
    let cptr = SendPtr(c.as_mut_ptr());
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        pool.run(|ctx| {
            let r = ctx.chunk(N);
            let cp = cptr; // copy the Send wrapper into the closure
            for i in r {
                // SAFETY: chunks are disjoint per thread.
                unsafe { *cp.0.add(i) = a[i] + 1.5 * b[i] };
            }
        });
    }
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(&c);
    // triad moves 3 arrays per pass
    (reps * 3 * N * 4) as f64 / dt / 1e9
}

#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Build a calibrated model of the host.
///
/// `l2_read/write` are set from the measured peak with SKX-like ratios
/// (they only matter for the host's roofline sanity checks, not for the
/// paper-series predictions, which use the SKX/KNM models).
pub fn host_model(pool: &ThreadPool) -> MachineModel {
    let peak = measure_peak_gflops(pool);
    let cores = pool.nthreads();
    let peak_core = peak / cores as f64;
    let stream = measure_stream_gbs(pool);
    // Describe the datapath of the path `peak_loop_once` actually takes
    // (AVX-512: 2 FMA ports × 16 lanes; otherwise a nominal 128-bit
    // single-port pipe) and back out an effective frequency against
    // exactly those fields. The bench binaries report efficiency as
    // measured/`peak_gflops()`, so this identity must hold on every
    // host: peak_gflops_core() == the peak we just measured.
    #[cfg(target_arch = "x86_64")]
    let avx512 = std::arch::is_x86_feature_detected!("avx512f");
    #[cfg(not(target_arch = "x86_64"))]
    let avx512 = false;
    let (simd_f32, fma_per_cycle) = if avx512 { (16, 2) } else { (4, 1) };
    MachineModel {
        name: "host",
        cores,
        freq_ghz: peak_core / (fma_per_cycle as f64 * simd_f32 as f64 * 2.0),
        simd_f32,
        fma_per_cycle,
        fma_latency: 4,
        l2_read_gbs: peak_core, // SKX-like ratio: ≈1 byte/flop
        l2_write_gbs: peak_core / 2.0,
        mem_bw_gbs: stream,
        shared_llc: true,
        int16_speedup: if is_x86_feature_detected_vnni() { 2.0 } else { 1.0 },
    }
}

/// Whether the host can run the VNNI int16 kernels.
pub fn is_x86_feature_detected_vnni() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512vnni")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_loop_produces_positive_gflops() {
        let g = peak_loop_once();
        assert!(g > 1.0, "implausible peak {g}");
    }

    #[test]
    fn host_model_is_consistent() {
        let pool = ThreadPool::new(2);
        let m = host_model(&pool);
        assert_eq!(m.cores, 2);
        assert!(m.peak_gflops() > 1.0);
        assert!(m.mem_bw_gbs > 0.5);
        // effective frequency, not nameplate: under `cargo test` the
        // calibration loop runs unoptimized, so only sanity bounds hold
        // (positive, finite, below any plausible core clock)
        assert!(m.freq_ghz.is_finite() && m.freq_ghz > 0.0 && m.freq_ghz < 15.0);
    }
}
