//! Machine models and rooflines (paper Section III).
//!
//! The paper evaluates on two testbeds we do not have: dual-socket
//! Skylake-SP 8180 ("SKX") and Knights Mill 7295 ("KNM"). This crate
//! captures their published parameters (core counts, frequencies, SIMD
//! width, per-core L2 bandwidths, peaks — all quoted in Section III)
//! and exposes:
//!
//! * [`MachineModel`] — the constants plus derived peaks,
//! * [`roofline`] — per-core attainable GFLOPS given L2 operational
//!   intensities, used to regenerate the paper's efficiency analysis
//!   (e.g. why 1×1 layers reach ≈55% on KNM but ≈70% on SKX),
//! * [`traffic`] — a documented, simplified L2 traffic model for the
//!   blocked direct convolution,
//! * [`predict`] — per-layer/per-pass efficiency predictions combining
//!   the above with the pass-specific overheads of Sections II-I/II-J,
//! * [`host`] — calibration of the machine we actually run on
//!   (measured FMA peak and stream bandwidth),
//! * [`fabric`] — the α–β interconnect model standing in for
//!   Omnipath/MLSL in the multi-node experiments (Fig. 9).

pub mod fabric;
pub mod host;
pub mod model;
pub mod predict;
pub mod roofline;
pub mod traffic;

pub use fabric::Fabric;
pub use model::MachineModel;
pub use predict::{predicted_efficiency, predicted_int16_speedup, Pass};
pub use roofline::attainable_gflops_core;
pub use traffic::{forward_traffic, forward_traffic_with, register_blocking, ConvTraffic};
