//! Per-layer efficiency prediction for the paper's testbeds.
//!
//! We do not own an SKX 8180 or a KNM 7295, so the figures that the
//! paper measured there are regenerated from a model with two parts:
//!
//! 1. **Calibrated kernel-class efficiencies** — the paper states where
//!    each layer class lands (Section III-A/B): on SKX 3×3 layers reach
//!    ≈80% of peak, 1×1 ≈70%, reuse-starved early layers ≈55%; on KNM
//!    3×3 ≈72.5%, 1×1 ≈55% (L2-bandwidth bound per the roofline), early
//!    ≈50%. These constants are *taken from the paper's text* and are
//!    the documented calibration of this model.
//! 2. **Analytic pass overheads** — the backward stride-2 write
//!    expansion (Section III-A), the weight-update reduction traffic
//!    (computed with the Section II-J bandwidth model: T partial weight
//!    copies reduced through the LLC on SKX but through memory on KNM)
//!    and KNM's upfront dO transpose for 4FMA (Section III-B), and the
//!    int16 speedup limiters of Section II-K.
//!
//! Everything is pure arithmetic on [`MachineModel`] constants, so the
//! bench binaries can print the "paper-shaped" series next to the
//! measured host series.

use crate::model::MachineModel;
use crate::roofline::attainable_gflops_core;
use crate::traffic::forward_traffic;
use tensor::{ConvShape, VLEN};

/// Which pass of the layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Forward propagation (Algorithm 3).
    Forward,
    /// Backward propagation by duality (Section II-I).
    Backward,
    /// Weight gradient update (Algorithm 9).
    Update,
}

/// Layer classes the paper's evaluation distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerClass {
    /// Very low input-channel reuse: first conv / layers 2-3 of Table I.
    ReuseStarved,
    /// 1×1 convolutions.
    OneByOne,
    /// Spatial filters (3×3, 7×7 …) — highest register reuse.
    Spatial,
}

/// Classify a layer the way Section III-A discusses them.
pub fn classify(shape: &ConvShape) -> LayerClass {
    if shape.c < 2 * VLEN {
        // first conv: C=3
        return LayerClass::ReuseStarved;
    }
    if shape.r == 1 && shape.s == 1 {
        if shape.cb() <= 4 && shape.p() * shape.q() >= 56 * 56 {
            // Table I layers 2-3: few input FMs + large spatial writes
            LayerClass::ReuseStarved
        } else {
            LayerClass::OneByOne
        }
    } else {
        LayerClass::Spatial
    }
}

/// The calibrated forward kernel efficiency for a class on a machine
/// (constants quoted from the paper, see module docs).
pub fn class_efficiency(m: &MachineModel, class: LayerClass) -> f64 {
    let knm = !m.shared_llc;
    match (class, knm) {
        (LayerClass::Spatial, false) => 0.80,
        (LayerClass::OneByOne, false) => 0.70,
        (LayerClass::ReuseStarved, false) => 0.55,
        (LayerClass::Spatial, true) => 0.725,
        (LayerClass::OneByOne, true) => 0.55,
        (LayerClass::ReuseStarved, true) => 0.50,
    }
}

/// Predicted fraction of machine peak for one layer and pass.
pub fn predicted_efficiency(m: &MachineModel, shape: &ConvShape, pass: Pass) -> f64 {
    let base = class_efficiency(m, classify(shape));
    // The roofline can only cap the calibrated class number further
    // (e.g. pathological shapes an engine user might feed in).
    let t = forward_traffic(m, shape);
    let roof = attainable_gflops_core(m, t.oi_read(), t.oi_write()) / m.peak_gflops_core();
    let fwd = base.min(roof.max(0.05));
    match pass {
        Pass::Forward => fwd,
        Pass::Backward => {
            if shape.stride > 1 {
                // dI is stride² larger than dO: higher write bandwidth
                // demand degrades these layers (Section III-A).
                fwd * 0.72
            } else {
                fwd * 0.97
            }
        }
        Pass::Update => update_efficiency(m, shape, fwd),
    }
}

/// Weight-update efficiency from the Section II-J bandwidth model.
///
/// Per-thread weight-gradient copies must be sum-reduced; with `T`
/// threads that moves `(T+1) × |dW|` bytes. On SKX the shared LLC
/// absorbs this (modelled as 3× stream bandwidth); KNM has no shared
/// LLC, so the copies round-trip MCDRAM at stream bandwidth, and KNM
/// additionally pays an upfront memory-bound transpose of dO to feed
/// the 4FMA instruction (Section III-B).
fn update_efficiency(m: &MachineModel, shape: &ConvShape, fwd_eff: f64) -> f64 {
    // the update kernel itself runs below the forward kernel: dO drives
    // the reduction dimension, so output-register reuse is limited
    // (paper: "10%-15% lower" on SKX before reduction costs).
    let kernel_eff = fwd_eff * 0.85;
    let flops = shape.flops() as f64;
    let t_compute = flops / (kernel_eff * m.peak_gflops() * 1e9);

    let threads = m.cores as f64;
    let w_bytes = (shape.k * shape.c * shape.r * shape.s * 4) as f64;
    let reduce_bytes = (threads + 1.0) * w_bytes;
    let reduce_bw = if m.shared_llc { 3.0 * m.mem_bw_gbs } else { m.mem_bw_gbs } * 1e9;
    let t_reduce = reduce_bytes / reduce_bw;

    let t_transpose = if m.shared_llc {
        0.0
    } else {
        // read + write of the full dO tensor through memory
        let do_bytes = (shape.n * shape.k * shape.p() * shape.q() * 4) as f64;
        2.0 * do_bytes / (m.mem_bw_gbs * 1e9)
    };

    kernel_eff * t_compute / (t_compute + t_reduce + t_transpose)
}

/// Predicted int16/fp32 speedup on a 2×-int16 machine (Section II-K).
///
/// Three limiters keep it below 2×: (1) outputs stay 32-bit, so output
/// traffic does not shrink; (2) the accumulation chain must be split to
/// avoid overflow, costing register reuse (modelled as a 15% compute
/// overhead); (3) the update pass reduces 32-bit partial copies.
pub fn predicted_int16_speedup(m: &MachineModel, shape: &ConvShape, pass: Pass) -> f64 {
    if m.int16_speedup < 2.0 {
        return 1.0;
    }
    let t = forward_traffic(m, shape);
    let out_bytes = t.l2_write;
    let in_bytes = (t.l2_read - out_bytes).max(0.0);
    // share of time spent on (unshrinkable) 32-bit output movement
    let out_share = out_bytes / (in_bytes + out_bytes);
    let chain_loss = 0.15;
    let base = 2.0 / (1.0 + chain_loss + out_share);
    match pass {
        Pass::Forward => base,
        Pass::Backward => base * 0.97,
        Pass::Update => {
            // the 32-bit partial-copy reduction is unshrinkable extra
            // traffic, sized against the layer's minimal DRAM footprint
            let threads = m.cores as f64;
            let w_bytes = (shape.k * shape.c * shape.r * shape.s * 4) as f64;
            let red_share = ((threads + 1.0) * w_bytes / t.dram).min(0.55);
            2.0 / (1.0 + chain_loss + out_share + red_share)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(id: usize) -> ConvShape {
        // a few Table I layers (N=28)
        match id {
            1 => ConvShape::new(28, 3, 64, 224, 224, 7, 7, 2, 3),
            2 => ConvShape::new(28, 64, 256, 56, 56, 1, 1, 1, 0),
            4 => ConvShape::new(28, 64, 64, 56, 56, 3, 3, 1, 1),
            5 => ConvShape::new(28, 256, 64, 56, 56, 1, 1, 1, 0),
            13 => ConvShape::new(28, 256, 256, 14, 14, 3, 3, 1, 1),
            16 => ConvShape::new(28, 1024, 2048, 14, 14, 1, 1, 2, 0),
            19 => ConvShape::new(28, 512, 2048, 7, 7, 1, 1, 1, 0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn classes_match_paper_discussion() {
        assert_eq!(classify(&layer(1)), LayerClass::ReuseStarved);
        assert_eq!(classify(&layer(2)), LayerClass::ReuseStarved); // layers 2-3 at ~55%
        assert_eq!(classify(&layer(4)), LayerClass::Spatial);
        assert_eq!(classify(&layer(5)), LayerClass::OneByOne);
    }

    #[test]
    fn skx_forward_matches_paper_bands() {
        let skx = MachineModel::skx();
        let e3 = predicted_efficiency(&skx, &layer(4), Pass::Forward);
        let e1 = predicted_efficiency(&skx, &layer(19), Pass::Forward);
        let e2 = predicted_efficiency(&skx, &layer(2), Pass::Forward);
        assert!((e3 - 0.80).abs() < 0.05, "3x3 {e3}");
        assert!((e1 - 0.70).abs() < 0.05, "1x1 {e1}");
        assert!((e2 - 0.55).abs() < 0.05, "layer2 {e2}");
    }

    #[test]
    fn knm_one_by_one_is_lower_than_skx() {
        let (skx, knm) = (MachineModel::skx(), MachineModel::knm());
        let s = predicted_efficiency(&skx, &layer(5), Pass::Forward);
        let k = predicted_efficiency(&knm, &layer(5).with_minibatch(70), Pass::Forward);
        assert!(k < s, "KNM {k} vs SKX {s}");
        assert!((k - 0.55).abs() < 0.06);
    }

    #[test]
    fn backward_stride2_degrades() {
        let skx = MachineModel::skx();
        let f = predicted_efficiency(&skx, &layer(16), Pass::Forward);
        let b = predicted_efficiency(&skx, &layer(16), Pass::Backward);
        assert!(b < 0.85 * f, "bwd {b} vs fwd {f}");
    }

    #[test]
    fn update_on_knm_spans_paper_range() {
        let knm = MachineModel::knm();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for id in [4, 5, 13, 16, 19] {
            let e = predicted_efficiency(&knm, &layer(id).with_minibatch(70), Pass::Update);
            lo = lo.min(e);
            hi = hi.max(e);
        }
        // paper: "in the range of 20%-55%"
        assert!(lo > 0.10 && lo < 0.45, "lo={lo}");
        assert!(hi > 0.40 && hi < 0.62, "hi={hi}");
    }

    #[test]
    fn update_on_skx_is_10_to_15_points_lower() {
        let skx = MachineModel::skx();
        let f = predicted_efficiency(&skx, &layer(4), Pass::Forward);
        let u = predicted_efficiency(&skx, &layer(4), Pass::Update);
        assert!(f - u > 0.08 && f - u < 0.20, "fwd {f} upd {u}");
    }

    #[test]
    fn int16_speedups_match_paper_averages() {
        let knm = MachineModel::knm();
        let ids = [2usize, 4, 5, 13, 16, 19];
        let avg = |pass| {
            ids.iter()
                .map(|&i| predicted_int16_speedup(&knm, &layer(i).with_minibatch(70), pass))
                .sum::<f64>()
                / ids.len() as f64
        };
        let (f, b, u) = (avg(Pass::Forward), avg(Pass::Backward), avg(Pass::Update));
        assert!((f - 1.63).abs() < 0.15, "fwd speedup {f}");
        assert!((b - 1.58).abs() < 0.15, "bwd speedup {b}");
        assert!((u - 1.30).abs() < 0.20, "upd speedup {u}");
        assert!(u < b && b <= f);
    }

    #[test]
    fn skx_has_no_int16_speedup() {
        let skx = MachineModel::skx();
        assert_eq!(predicted_int16_speedup(&skx, &layer(4), Pass::Forward), 1.0);
    }
}
