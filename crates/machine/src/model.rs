//! Hardware parameter sets.
//!
//! Every number in [`MachineModel::skx`] and [`MachineModel::knm`] is
//! quoted from Section III of the paper (or directly derivable from a
//! quoted number, e.g. per-core peak = socket SGEMM peak / cores).

/// Parameters of one CPU (a socket for SKX, the whole chip for KNM).
#[derive(Clone, Debug, PartialEq)]
pub struct MachineModel {
    /// Human-readable name used in benchmark output.
    pub name: &'static str,
    /// Physical cores participating in compute.
    pub cores: usize,
    /// Sustained AVX frequency in GHz under full FMA load.
    pub freq_ghz: f64,
    /// f32 lanes per SIMD register (16 for AVX-512).
    pub simd_f32: usize,
    /// FMA results per cycle per core (2 FMA ports on SKX; KNM's
    /// 4-way-chained 4FMA retires the equivalent of 4).
    pub fma_per_cycle: usize,
    /// FMA latency in cycles — the accumulation-chain depth the register
    /// blocking must cover (Section II-B).
    pub fma_latency: usize,
    /// Per-core L2→core read bandwidth, GB/s (Section III-B).
    pub l2_read_gbs: f64,
    /// Per-core core→L2 write bandwidth, GB/s (Section III-B).
    pub l2_write_gbs: f64,
    /// Socket/chip stream-triad bandwidth, GB/s (Section III).
    pub mem_bw_gbs: f64,
    /// Whether a shared last-level cache absorbs reductions
    /// (true for SKX; false for KNM — Section III-B explains the weight
    /// update gap with exactly this).
    pub shared_llc: bool,
    /// int16 FMA throughput multiplier over f32 (2× on KNM's 4VNNIW,
    /// Section II-K; 1× where no such instruction exists).
    pub int16_speedup: f64,
}

impl MachineModel {
    /// Skylake-SP: one Intel Xeon Platinum 8180 socket (28 cores).
    ///
    /// Quoted: 3.8 TFLOPS SGEMM/socket, 105 GB/s stream triad, per-core
    /// 147 GB/s L2 read / 74 GB/s L2 write, 147 GFLOPS/core peak.
    pub fn skx() -> Self {
        Self {
            name: "SKX",
            cores: 28,
            freq_ghz: 2.3,
            simd_f32: 16,
            fma_per_cycle: 2,
            fma_latency: 4,
            l2_read_gbs: 147.0,
            l2_write_gbs: 74.0,
            mem_bw_gbs: 105.0,
            shared_llc: true,
            int16_speedup: 1.0,
        }
    }

    /// Knights Mill: Intel Xeon Phi 7295 (72 cores).
    ///
    /// Quoted: 11.5 TFLOPS SGEMM, ≈470 GB/s stream triad (MCDRAM),
    /// per-core 54.4 GB/s L2 read / 27 GB/s L2 write, 192 GFLOPS/core
    /// peak via the 4FMA instruction; 2× int16 throughput via 4VNNIW.
    pub fn knm() -> Self {
        Self {
            name: "KNM",
            cores: 72,
            freq_ghz: 1.5,
            simd_f32: 16,
            fma_per_cycle: 4,
            fma_latency: 6,
            l2_read_gbs: 54.4,
            l2_write_gbs: 27.0,
            mem_bw_gbs: 470.0,
            shared_llc: false,
            int16_speedup: 2.0,
        }
    }

    /// Per-core f32 peak in GFLOPS: `freq × fma/cycle × lanes × 2`.
    #[inline]
    pub fn peak_gflops_core(&self) -> f64 {
        self.freq_ghz * self.fma_per_cycle as f64 * self.simd_f32 as f64 * 2.0
    }

    /// Whole-model f32 peak in GFLOPS.
    #[inline]
    pub fn peak_gflops(&self) -> f64 {
        self.peak_gflops_core() * self.cores as f64
    }

    /// Independent accumulation chains required to hide FMA latency —
    /// the lower bound on `RBP × RBQ` (Section II-B / II-D).
    #[inline]
    pub fn min_accum_chains(&self) -> usize {
        self.fma_per_cycle * self.fma_latency
    }

    /// A copy restricted to `cores` cores (e.g. when some cores are set
    /// aside to drive the fabric, as in Fig. 9's multi-node runs).
    pub fn with_cores(&self, cores: usize) -> Self {
        let mut m = self.clone();
        m.cores = cores;
        m
    }

    /// A stable 64-bit fingerprint of every field — the machine half of
    /// an autotuning-cache key (`(shape, fingerprint, level)`), so
    /// tuning results measured on one machine model are never replayed
    /// on a different one. FNV-1a over the field bytes; equal models
    /// always fingerprint equally (f64 fields hash by bit pattern,
    /// consistent with `PartialEq` — models never hold NaN).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.name.as_bytes());
        eat(&(self.cores as u64).to_le_bytes());
        eat(&self.freq_ghz.to_bits().to_le_bytes());
        eat(&(self.simd_f32 as u64).to_le_bytes());
        eat(&(self.fma_per_cycle as u64).to_le_bytes());
        eat(&(self.fma_latency as u64).to_le_bytes());
        eat(&self.l2_read_gbs.to_bits().to_le_bytes());
        eat(&self.l2_write_gbs.to_bits().to_le_bytes());
        eat(&self.mem_bw_gbs.to_bits().to_le_bytes());
        eat(&[u8::from(self.shared_llc)]);
        eat(&self.int16_speedup.to_bits().to_le_bytes());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skx_peak_matches_paper() {
        let m = MachineModel::skx();
        // 2.3 GHz × 2 × 16 × 2 = 147.2 GFLOPS/core (paper: 147)
        assert!((m.peak_gflops_core() - 147.2).abs() < 0.5);
        // socket: ≈ 4.1 TFLOPS raw; paper measures 3.8 TFLOPS SGEMM
        assert!(m.peak_gflops() > 3800.0 && m.peak_gflops() < 4300.0);
    }

    #[test]
    fn knm_peak_matches_paper() {
        let m = MachineModel::knm();
        // 1.5 GHz × 4 × 16 × 2 = 192 GFLOPS/core (paper: 192)
        assert!((m.peak_gflops_core() - 192.0).abs() < 0.5);
        // chip: 13.8 TFLOPS raw; paper measures 11.5 TFLOPS SGEMM
        assert!(m.peak_gflops() > 11500.0 && m.peak_gflops() < 14000.0);
    }

    #[test]
    fn accumulation_chain_requirements() {
        assert_eq!(MachineModel::skx().min_accum_chains(), 8);
        assert_eq!(MachineModel::knm().min_accum_chains(), 24);
    }

    #[test]
    fn with_cores_scales_peak() {
        let m = MachineModel::skx().with_cores(14);
        assert!((m.peak_gflops() - 14.0 * 147.2).abs() < 1.0);
    }

    #[test]
    fn fingerprint_is_stable_and_field_sensitive() {
        let a = MachineModel::skx();
        assert_eq!(a.fingerprint(), MachineModel::skx().fingerprint());
        assert_ne!(a.fingerprint(), MachineModel::knm().fingerprint());
        assert_ne!(a.fingerprint(), a.with_cores(14).fingerprint());
        let mut b = a.clone();
        b.l2_read_gbs += 1.0;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
