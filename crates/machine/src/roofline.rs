//! Per-core roofline (paper Section III-B).
//!
//! The paper explains the efficiency gap between SKX and KNM on 1×1
//! layers with per-core rooflines built from the quoted L2 read/write
//! bandwidths and core peaks. This module is that calculation.

use crate::model::MachineModel;

/// Attainable per-core GFLOPS for a kernel with the given L2
/// operational intensities (flops per byte read from / written to L2).
///
/// `oi_read`/`oi_write` of `f64::INFINITY` mean "no traffic of that
/// kind" and leave the respective roof unconstrained.
pub fn attainable_gflops_core(m: &MachineModel, oi_read: f64, oi_write: f64) -> f64 {
    let peak = m.peak_gflops_core();
    let read_roof = oi_read * m.l2_read_gbs;
    let write_roof = oi_write * m.l2_write_gbs;
    peak.min(read_roof).min(write_roof)
}

/// The operational intensity (vs. L2 reads) at which a kernel stops
/// being read-bandwidth bound on this machine — the roofline "ridge".
pub fn ridge_oi_read(m: &MachineModel) -> f64 {
    m.peak_gflops_core() / m.l2_read_gbs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_oi_is_compute_bound() {
        let skx = MachineModel::skx();
        let g = attainable_gflops_core(&skx, 100.0, 100.0);
        assert!((g - skx.peak_gflops_core()).abs() < 1e-9);
    }

    #[test]
    fn low_oi_is_bandwidth_bound() {
        let knm = MachineModel::knm();
        let g = attainable_gflops_core(&knm, 1.0, f64::INFINITY);
        assert!((g - knm.l2_read_gbs).abs() < 1e-9);
    }

    #[test]
    fn knm_ridge_is_higher_than_skx() {
        // KNM needs ~3.5 flops/byte to leave the L2-bound regime; SKX
        // only ~1.0 — this asymmetry is the paper's Section III-B story.
        let knm_ridge = ridge_oi_read(&MachineModel::knm());
        let skx_ridge = ridge_oi_read(&MachineModel::skx());
        assert!(knm_ridge > 3.0 && knm_ridge < 4.0, "{knm_ridge}");
        assert!(skx_ridge < 1.5, "{skx_ridge}");
        assert!(knm_ridge > 2.0 * skx_ridge);
    }

    #[test]
    fn write_roof_can_dominate() {
        let knm = MachineModel::knm();
        let g = attainable_gflops_core(&knm, 100.0, 0.5);
        assert!((g - 0.5 * knm.l2_write_gbs).abs() < 1e-9);
    }
}
