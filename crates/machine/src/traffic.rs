//! Simplified L2/DRAM traffic model for the blocked direct convolution.
//!
//! The model mirrors the microkernel structure of Section II-D:
//! an invocation computes an `RBP × RBQ` tile of output pixel vectors
//! for one output-channel block, streaming the input tile and the
//! weight panels while keeping accumulators in registers. Assumptions
//! (documented, deliberately simple):
//!
//! * the input tile is read from L2 once per (invocation, cb) step —
//!   it is too large for L1 in general;
//! * weight panels are L1-resident within an invocation when the whole
//!   per-tile weight working set (`C×VLEN×R×S×4` bytes) fits in L1,
//!   otherwise they stream from L2;
//! * outputs are read+written to L2 once per cb step for `R,S > 1`
//!   (Algorithm 2's loop order) and once per tile for `1×1` layers
//!   (where the cb loop is pulled inside, Section II-C);
//! * strided (stride ≥ 2) input reads waste a factor `stride` of each
//!   cache line in the W dimension.
//!
//! The absolute numbers are approximate; what the model is used for is
//! (a) ranking weight-update parallelization strategies (Section II-J)
//! and (b) locating layers on the roofline (Section III-B).

use crate::model::MachineModel;
use tensor::{ConvShape, VLEN};

/// L1 data cache size assumed by the residency checks (bytes).
pub const L1_BYTES: usize = 32 * 1024;

/// Estimated per-layer traffic of one forward pass.
#[derive(Clone, Copy, Debug)]
pub struct ConvTraffic {
    /// Bytes read from L2 by the cores.
    pub l2_read: f64,
    /// Bytes written towards L2 by the cores.
    pub l2_write: f64,
    /// Minimum DRAM traffic (every tensor touched once).
    pub dram: f64,
    /// FLOP count of the pass.
    pub flops: f64,
}

impl ConvTraffic {
    /// Operational intensity against L2 reads (flops/byte).
    #[inline]
    pub fn oi_read(&self) -> f64 {
        if self.l2_read == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.l2_read
        }
    }

    /// Operational intensity against L2 writes (flops/byte).
    #[inline]
    pub fn oi_write(&self) -> f64 {
        if self.l2_write == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.l2_write
        }
    }

    /// Operational intensity against DRAM (flops/byte).
    #[inline]
    pub fn oi_dram(&self) -> f64 {
        if self.dram == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.dram
        }
    }
}

/// Accumulator register budget assumed by the blocking rule (zmm0..27;
/// zmm28..31 hold weights — the same constant as `conv::blocking::MAX_ACC`).
pub const MAX_ACC_REGS: usize = 28;

/// The canonical register-blocking rule, shared between the traffic
/// model and the engine's `conv::blocking::choose` (which calls this
/// with its `MIN_CHAINS` constant — a cross-crate consistency test
/// pins the two to the same result):
///
/// * `RBQ` = `Q` when it fits the register budget, else the largest
///   divisor of `Q` ≤ [`MAX_ACC_REGS`]; if every divisor is smaller
///   than `need_chains`, take [`MAX_ACC_REGS`] and accept a remainder
///   tile rather than a tiny register block;
/// * `RBP` grows while `RBP × RBQ` is below `need_chains`, bounded by
///   `P` and the register budget.
pub fn register_blocking(need_chains: usize, p: usize, q: usize) -> (usize, usize) {
    let rbq = if q <= MAX_ACC_REGS {
        q
    } else {
        let mut best = 0;
        for cand in (1..=MAX_ACC_REGS).rev() {
            if q.is_multiple_of(cand) {
                best = cand;
                break;
            }
        }
        if best >= need_chains {
            best
        } else {
            // accept a remainder tile rather than a tiny register block
            MAX_ACC_REGS
        }
    };
    let mut rbp = 1;
    while rbp * rbq < need_chains && rbp < p && (rbp + 1) * rbq <= MAX_ACC_REGS {
        rbp += 1;
    }
    (rbp, rbq)
}

/// Register blocking the traffic model assumes for `shape` on `m`
/// (the [`register_blocking`] rule at the machine's accumulation-chain
/// requirement).
pub fn model_register_blocking(m: &MachineModel, shape: &ConvShape) -> (usize, usize) {
    register_blocking(m.min_accum_chains(), shape.p(), shape.q())
}

/// Traffic estimate for one forward pass of `shape` on machine `m`,
/// at the blocking the engine would choose itself.
pub fn forward_traffic(m: &MachineModel, shape: &ConvShape) -> ConvTraffic {
    let (rbp, rbq) = model_register_blocking(m, shape);
    let cb_inner = if shape.r == 1 && shape.s == 1 { shape.cb() } else { 1 };
    forward_traffic_with(m, shape, rbp, rbq, cb_inner)
}

/// Traffic estimate for one forward pass of `shape` at an *explicit*
/// register blocking — the autotuner's scoring primitive: it lets the
/// model rank arbitrary `(rbp, rbq, cb_inner)` candidates instead of
/// only the one [`model_register_blocking`] would pick. Remainder
/// tiles (when `rbp`/`rbq` do not divide `P`/`Q`) are counted as full
/// tiles, matching the engine's remainder-variant generation.
///
/// `cb_inner` is the number of input-channel blocks reduced inside one
/// kernel call: outputs are read + written once per `Cb / cb_inner`
/// outer reduction step (Section II-C's 1×1 optimization generalized).
pub fn forward_traffic_with(
    m: &MachineModel,
    shape: &ConvShape,
    rbp: usize,
    rbq: usize,
    cb_inner: usize,
) -> ConvTraffic {
    let _ = m; // the traffic counts are machine-independent today
    let (p, q) = (shape.p(), shape.q());
    let (cb, kb) = (shape.cb(), shape.kb());
    let tiles = (shape.n * kb * p.div_ceil(rbp) * q.div_ceil(rbq)) as f64;
    let f32b = 4.0;
    let one_by_one = shape.r == 1 && shape.s == 1;

    // input tile per (invocation, cb): the strided footprint. For
    // strided 1×1 layers only every stride-th pixel vector is used but
    // whole lines are transferred, hence the `rbq * stride` width.
    let in_rows = (rbp - 1) * shape.stride + shape.r;
    let in_cols = if one_by_one && shape.stride > 1 {
        (rbq * shape.stride).min(shape.w + 2 * shape.pad)
    } else {
        (rbq - 1) * shape.stride + shape.s
    };
    let in_tile_bytes = (in_rows * in_cols * VLEN) as f64 * f32b;

    // weight working set for a full-C tile
    let w_set = shape.c * VLEN * shape.r * shape.s * 4;
    let weights_l1_resident = w_set <= L1_BYTES;
    let w_bytes_per_tile = if weights_l1_resident {
        // charged once per (n, kb) pass, amortized over the spatial tiles
        (w_set as f64) / ((p.div_ceil(rbp) * q.div_ceil(rbq)) as f64)
    } else {
        w_set as f64
    };

    // output tile bytes (read + write): once per outer reduction step
    let out_tile = (rbp * rbq * VLEN) as f64 * f32b;
    let out_passes = cb.div_ceil(cb_inner.clamp(1, cb)) as f64;

    let l2_read = tiles * (cb as f64 * in_tile_bytes + w_bytes_per_tile + out_passes * out_tile);
    let l2_write = tiles * out_passes * out_tile;
    let dram = shape.min_bytes_f32() as f64;
    ConvTraffic { l2_read, l2_write, dram, flops: shape.flops() as f64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MachineModel;

    fn skx() -> MachineModel {
        MachineModel::skx()
    }

    #[test]
    fn blocking_covers_fma_latency() {
        let m = skx();
        for shape in [
            ConvShape::new(28, 64, 64, 56, 56, 3, 3, 1, 1),
            ConvShape::new(28, 512, 512, 7, 7, 3, 3, 1, 1),
            ConvShape::new(28, 1024, 2048, 14, 14, 1, 1, 2, 0),
        ] {
            let (rbp, rbq) = model_register_blocking(&m, &shape);
            assert!(
                rbp * rbq >= m.min_accum_chains().min(shape.p() * shape.q()),
                "{shape}: rbp={rbp} rbq={rbq}"
            );
            assert!(rbq <= shape.q());
        }
    }

    #[test]
    fn three_by_three_has_higher_oi_than_one_by_one() {
        let m = skx();
        // layer 4 (3x3) vs layer 5 (1x1) of Table I
        let t3 = forward_traffic(&m, &ConvShape::new(28, 64, 64, 56, 56, 3, 3, 1, 1));
        let t1 = forward_traffic(&m, &ConvShape::new(28, 256, 64, 56, 56, 1, 1, 1, 0));
        assert!(
            t3.oi_read() > t1.oi_read(),
            "3x3 OI {} should exceed 1x1 OI {}",
            t3.oi_read(),
            t1.oi_read()
        );
    }

    #[test]
    fn flops_match_shape() {
        let m = skx();
        let s = ConvShape::new(28, 64, 64, 56, 56, 3, 3, 1, 1);
        let t = forward_traffic(&m, &s);
        assert_eq!(t.flops, s.flops() as f64);
    }

    #[test]
    fn dram_is_minimal_footprint() {
        let m = skx();
        let s = ConvShape::new(28, 256, 512, 56, 56, 1, 1, 2, 0);
        let t = forward_traffic(&m, &s);
        assert_eq!(t.dram, s.min_bytes_f32() as f64);
        assert!(t.l2_read >= t.dram * 0.5, "L2 traffic should not be wildly below DRAM floor");
    }
}
