//! The "blas" baseline: the same blocked direct-convolution loops as
//! the libxsmm variant, but every small multiply goes through the
//! *generic blocked GEMM* — the stand-in for calling MKL SGEMM on tiny
//! operands. The fixed blocking/dispatch overhead per call is the
//! effect [LIBXSMM, SC'16] quantified and this baseline reproduces.

use crate::xsmm_loops::run_gemm_loops;
use crate::ConvBaseline;
use parallel::ThreadPool;
use smallgemm::big_gemm;
use tensor::{BlockedActs, BlockedFilter, ConvShape, VLEN};

/// Blocked loops + generic GEMM calls.
pub struct BlasConv {
    shape: ConvShape,
}

impl BlasConv {
    /// New baseline for a shape.
    pub fn new(shape: ConvShape) -> Self {
        Self { shape }
    }
}

impl ConvBaseline for BlasConv {
    fn name(&self) -> &'static str {
        "blas"
    }

    fn forward(
        &self,
        pool: &ThreadPool,
        input: &BlockedActs,
        weights: &BlockedFilter,
        output: &mut BlockedActs,
    ) {
        let q = self.shape.q();
        let lda = self.shape.stride * VLEN;
        run_gemm_loops(&self.shape, pool, input, weights, output, |a, b, c| {
            // a generic GEMM has no strided-A fast path: pack first,
            // exactly like a BLAS call would internally
            let mut a_pack = [0.0f32; 28 * VLEN];
            let apack = &mut a_pack[..q.min(28) * VLEN];
            // SAFETY: `a` spans q pixels at stride `lda` per the loop
            // nest's contract.
            unsafe {
                if q <= 28 {
                    for i in 0..q {
                        std::ptr::copy_nonoverlapping(
                            a.add(i * lda),
                            apack.as_mut_ptr().add(i * VLEN),
                            VLEN,
                        );
                    }
                    let cs = std::slice::from_raw_parts_mut(c, q * VLEN);
                    let bs = std::slice::from_raw_parts(b, VLEN * VLEN);
                    big_gemm(q, VLEN, VLEN, apack, VLEN, bs, VLEN, 1.0, cs, VLEN);
                } else {
                    // wide rows: heap-pack (rare in the benchmarks)
                    let mut heap = vec![0.0f32; q * VLEN];
                    for i in 0..q {
                        std::ptr::copy_nonoverlapping(
                            a.add(i * lda),
                            heap.as_mut_ptr().add(i * VLEN),
                            VLEN,
                        );
                    }
                    let cs = std::slice::from_raw_parts_mut(c, q * VLEN);
                    let bs = std::slice::from_raw_parts(b, VLEN * VLEN);
                    big_gemm(q, VLEN, VLEN, &heap, VLEN, bs, VLEN, 1.0, cs, VLEN);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_problem;
    use conv::reference::conv_fwd_ref;
    use tensor::{Nchw, Norms};

    #[test]
    fn wide_row_layer_matches_reference() {
        // Q = 32 exercises the heap-packing path
        let shape = ConvShape::new(1, 16, 16, 32, 32, 3, 3, 1, 1);
        let pool = ThreadPool::new(4);
        let (x, w, xb, wb, mut yb) = random_problem(&shape);
        BlasConv::new(shape).forward(&pool, &xb, &wb, &mut yb);
        let mut y_ref = Nchw::zeros(shape.n, shape.k, shape.p(), shape.q());
        conv_fwd_ref(&shape, &x, &w, &mut y_ref);
        let n = Norms::compare(BlockedActs::from_nchw(&y_ref, 0).as_slice(), yb.as_slice());
        assert!(n.ok(1e-4), "{n}");
    }
}
