//! The im2col + GEMM baseline (the approach popularized by Caffe).
//!
//! For every sample the input is flattened into a `[C·R·S][P·Q]`
//! column matrix and multiplied by the `[K][C·R·S]` filter matrix with
//! one large GEMM. The two downsides the paper calls out are visible
//! directly in the code: the column buffer ("memory footprint
//! overhead") and the flatten/scatter passes ("memory bandwidth
//! dependency in a computationally expensive operation").

use crate::ConvBaseline;
use parallel::ThreadPool;
use smallgemm::big_gemm;
use tensor::{BlockedActs, BlockedFilter, ConvShape, VLEN};

/// im2col + GEMM forward convolution.
pub struct Im2colConv {
    shape: ConvShape,
}

impl Im2colConv {
    /// New baseline for a shape.
    pub fn new(shape: ConvShape) -> Self {
        Self { shape }
    }
}

impl ConvBaseline for Im2colConv {
    fn name(&self) -> &'static str {
        "im2col"
    }

    fn forward(
        &self,
        pool: &ThreadPool,
        input: &BlockedActs,
        weights: &BlockedFilter,
        output: &mut BlockedActs,
    ) {
        let sh = &self.shape;
        let (p, q) = (sh.p(), sh.q());
        let (crs, pq) = (sh.c * sh.r * sh.s, p * q);

        // flatten the filter to [K][C·R·S] (row-major A matrix)
        let mut a = vec![0.0f32; sh.k * crs];
        for k in 0..sh.k {
            for c in 0..sh.c {
                for r in 0..sh.r {
                    for s in 0..sh.s {
                        a[k * crs + (c * sh.r + r) * sh.s + s] = weights.get(k, c, r, s);
                    }
                }
            }
        }

        let out_ptr = SendMut(output.as_mut_ptr());
        let out_row = q * VLEN;
        let out_kb = p * out_row;
        let out_n = sh.kb() * out_kb;
        pool.run(|ctx| {
            // per-thread column buffer + GEMM result
            let mut col = vec![0.0f32; crs * pq];
            let mut res = vec![0.0f32; sh.k * pq];
            for n in ctx.chunk(sh.n) {
                // im2col: gather every input patch into a column
                for c in 0..sh.c {
                    for r in 0..sh.r {
                        for s in 0..sh.s {
                            let row = (c * sh.r + r) * sh.s + s;
                            for oj in 0..p {
                                let ij = oj * sh.stride + r; // physical (pad included)
                                let base = input.pix_offset_logical(
                                    n,
                                    c / VLEN,
                                    ij as isize - sh.pad as isize,
                                    -(sh.pad as isize),
                                );
                                for oi in 0..q {
                                    let ii = oi * sh.stride + s;
                                    col[row * pq + oj * q + oi] =
                                        input.as_slice()[base + ii * VLEN + c % VLEN];
                                }
                            }
                        }
                    }
                }
                // one large GEMM: [K][CRS] × [CRS][PQ]
                big_gemm(sh.k, pq, crs, &a, crs, &col, pq, 0.0, &mut res, pq);
                // scatter back to the blocked layout
                for k in 0..sh.k {
                    for oj in 0..p {
                        for oi in 0..q {
                            let off = n * out_n
                                + (k / VLEN) * out_kb
                                + oj * out_row
                                + oi * VLEN
                                + k % VLEN;
                            // SAFETY: disjoint n per thread.
                            unsafe { *out_ptr.get().add(off) = res[k * pq + oj * q + oi] };
                        }
                    }
                }
            }
        });
    }
}

#[derive(Clone, Copy)]
struct SendMut(*mut f32);
unsafe impl Send for SendMut {}
unsafe impl Sync for SendMut {}
impl SendMut {
    #[inline]
    fn get(&self) -> *mut f32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_problem;
    use conv::reference::conv_fwd_ref;
    use tensor::{Nchw, Norms};

    #[test]
    fn matches_reference_on_padded_strided_layer() {
        let shape = ConvShape::new(2, 16, 16, 9, 9, 3, 3, 2, 1);
        let pool = ThreadPool::new(3);
        let (x, w, xb, wb, mut yb) = random_problem(&shape);
        Im2colConv::new(shape).forward(&pool, &xb, &wb, &mut yb);
        let mut y_ref = Nchw::zeros(shape.n, shape.k, shape.p(), shape.q());
        conv_fwd_ref(&shape, &x, &w, &mut y_ref);
        let n = Norms::compare(BlockedActs::from_nchw(&y_ref, 0).as_slice(), yb.as_slice());
        assert!(n.ok(1e-4), "{n}");
    }
}
