//! The "autovec" baseline: the small GEMM spelled out as three nested
//! scalar loops, leaving vectorization entirely to the compiler — the
//! slowest series in Figures 4/6 (up to 16× behind the JIT kernels in
//! the paper).
//!
//! The loops are written the natural way a framework developer would
//! write them (pixel → channel → lane); the strided `A` access and the
//! accumulation into memory (no register tiling, no load/store
//! hoisting) are what keeps the compiler from reaching more than a
//! fraction of peak even when it does vectorize the innermost loop.

use crate::xsmm_loops::run_gemm_loops;
use crate::ConvBaseline;
use parallel::ThreadPool;
use tensor::{BlockedActs, BlockedFilter, ConvShape, VLEN};

/// Blocked loops + compiler-vectorized inner triple loop.
pub struct AutovecConv {
    shape: ConvShape,
}

impl AutovecConv {
    /// New baseline for a shape.
    pub fn new(shape: ConvShape) -> Self {
        Self { shape }
    }
}

impl ConvBaseline for AutovecConv {
    fn name(&self) -> &'static str {
        "autovec"
    }

    fn forward(
        &self,
        pool: &ThreadPool,
        input: &BlockedActs,
        weights: &BlockedFilter,
        output: &mut BlockedActs,
    ) {
        let q = self.shape.q();
        let lda = self.shape.stride * VLEN;
        run_gemm_loops(&self.shape, pool, input, weights, output, |a, b, c| {
            // SAFETY: extents per the loop nest's contract.
            unsafe {
                for pix in 0..q {
                    let arow = a.add(pix * lda);
                    let crow = c.add(pix * VLEN);
                    for ch in 0..VLEN {
                        let x = *arow.add(ch);
                        let brow = b.add(ch * VLEN);
                        for lane in 0..VLEN {
                            *crow.add(lane) += x * *brow.add(lane);
                        }
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_problem;
    use conv::reference::conv_fwd_ref;
    use tensor::{Nchw, Norms};

    #[test]
    fn matches_reference() {
        let shape = ConvShape::new(2, 16, 32, 8, 8, 3, 3, 1, 1);
        let pool = ThreadPool::new(2);
        let (x, w, xb, wb, mut yb) = random_problem(&shape);
        AutovecConv::new(shape).forward(&pool, &xb, &wb, &mut yb);
        let mut y_ref = Nchw::zeros(shape.n, shape.k, shape.p(), shape.q());
        conv_fwd_ref(&shape, &x, &w, &mut y_ref);
        let n = Norms::compare(BlockedActs::from_nchw(&y_ref, 0).as_slice(), yb.as_slice());
        assert!(n.ok(1e-4), "{n}");
    }
}
