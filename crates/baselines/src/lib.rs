//! Baseline convolution implementations from the paper's evaluation
//! (Section III): every series in Figures 4 and 6 besides "this work".
//!
//! | name        | paper description                                       |
//! |-------------|---------------------------------------------------------|
//! | `im2col`    | flatten input, one large GEMM (the Caffe approach)      |
//! | `libxsmm`   | blocked direct-conv loops + dispatched small GEMM       |
//! | `blas`      | same loops, but a generic blocked GEMM per small call   |
//! | `autovec`   | same loops with the small GEMM spelled out as three     |
//! |             | nested loops, relying on compiler autovectorization     |
//! | `mkldnn`    | direct convolution with the same microkernels as the    |
//! |             | optimized engine, but *without* kernel streams, fusion  |
//! |             | or two-level prefetch (index math + branches at runtime)|
//!
//! All baselines compute identical results (tested against the naive
//! reference) — they differ only in how the work reaches the FPUs.

pub mod autovec;
pub mod blas_loops;
pub mod im2col;
pub mod mkldnn_like;
pub mod xsmm_loops;

pub use autovec::AutovecConv;
pub use blas_loops::BlasConv;
pub use im2col::Im2colConv;
pub use mkldnn_like::MkldnnConv;
pub use xsmm_loops::XsmmConv;

use parallel::ThreadPool;
use tensor::{BlockedActs, BlockedFilter, ConvShape, Kcrs, Nchw};

/// Common interface so the benchmark harness can sweep implementations.
pub trait ConvBaseline {
    /// Implementation name as it appears in the figures.
    fn name(&self) -> &'static str;
    /// Run one forward pass (each baseline uses its natural layout
    /// internally; inputs/outputs are the shared blocked tensors).
    fn forward(
        &self,
        pool: &ThreadPool,
        input: &BlockedActs,
        weights: &BlockedFilter,
        output: &mut BlockedActs,
    );
}

/// Build every baseline for a shape (used by benches and tests).
pub fn all_baselines(shape: ConvShape, threads: usize) -> Vec<Box<dyn ConvBaseline + Sync>> {
    vec![
        Box::new(Im2colConv::new(shape)),
        Box::new(XsmmConv::new(shape)),
        Box::new(BlasConv::new(shape)),
        Box::new(AutovecConv::new(shape)),
        Box::new(MkldnnConv::new(shape, threads)),
    ]
}

/// Shared test helper: random problem in both layouts.
pub fn random_problem(shape: &ConvShape) -> (Nchw, Kcrs, BlockedActs, BlockedFilter, BlockedActs) {
    let x = Nchw::random(shape.n, shape.c, shape.h, shape.w, 11);
    let w = Kcrs::random(shape.k, shape.c, shape.r, shape.s, 12);
    let xb = BlockedActs::from_nchw(&x, shape.pad);
    let wb = BlockedFilter::from_kcrs(&w);
    let yb = BlockedActs::zeros(shape.n, shape.k, shape.p(), shape.q(), 0);
    (x, w, xb, wb, yb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv::reference::conv_fwd_ref;
    use tensor::Norms;

    #[test]
    fn every_baseline_matches_reference() {
        for shape in [
            ConvShape::new(2, 32, 32, 8, 8, 3, 3, 1, 1),
            ConvShape::new(2, 32, 48, 8, 8, 1, 1, 1, 0),
            ConvShape::new(1, 32, 32, 8, 8, 1, 1, 2, 0),
            ConvShape::new(1, 16, 16, 10, 10, 3, 3, 2, 1),
            ConvShape::new(1, 3, 32, 20, 20, 7, 7, 2, 3),
        ] {
            let pool = ThreadPool::new(4);
            let (x, w, xb, wb, mut yb) = random_problem(&shape);
            let mut y_ref = Nchw::zeros(shape.n, shape.k, shape.p(), shape.q());
            conv_fwd_ref(&shape, &x, &w, &mut y_ref);
            let y_ref_b = BlockedActs::from_nchw(&y_ref, 0);
            for b in all_baselines(shape, 4) {
                yb.zero();
                b.forward(&pool, &xb, &wb, &mut yb);
                let n = Norms::compare(y_ref_b.as_slice(), yb.as_slice());
                assert!(n.ok(1e-3), "{} on {shape}: {n}", b.name());
            }
        }
    }
}
