//! The "libxsmm" baseline: properly blocked direct-convolution loops
//! with a *dispatched small GEMM* as the innermost microkernel
//! (the paper's second-fastest baseline).
//!
//! Per `(n, kb, oj)` row the inner loops run
//! `C[Q×VLEN] += A[Q×VLEN] · B[VLEN×VLEN]` over `(cb, r, s)` — unlike
//! the specialized convolution kernel this cannot hoist output
//! loads/stores across the `R×S` sequence nor share weight panels
//! across pixel rows, which is exactly the gap Figures 4/6 measure.

use crate::ConvBaseline;
use parallel::{FlatPartition, ThreadPool};
use smallgemm::SmallGemm;
use tensor::{BlockedActs, BlockedFilter, ConvShape, VLEN};

/// Blocked loops + dispatched small GEMM.
pub struct XsmmConv {
    shape: ConvShape,
    gemm: SmallGemm,
}

impl XsmmConv {
    /// Dispatch the small GEMM once (the `libxsmm_dispatch` analogue).
    pub fn new(shape: ConvShape) -> Self {
        // A: Q input pixels × VLEN channels (lda strides over pixels)
        let gemm = SmallGemm::new(shape.q(), VLEN, VLEN, shape.stride * VLEN, VLEN, VLEN, true);
        Self { shape, gemm }
    }
}

impl ConvBaseline for XsmmConv {
    fn name(&self) -> &'static str {
        "libxsmm"
    }

    fn forward(
        &self,
        pool: &ThreadPool,
        input: &BlockedActs,
        weights: &BlockedFilter,
        output: &mut BlockedActs,
    ) {
        run_gemm_loops(&self.shape, pool, input, weights, output, |a, b, c| {
            // SAFETY: forwarded contract from run_gemm_loops.
            unsafe { self.gemm.run_ptr(a, b, c) }
        });
    }
}

/// Shared loop nest for the three GEMM-flavoured baselines; the closure
/// is the innermost `C[Q×16] += A[Q×16]·B[16×16]` multiply.
pub(crate) fn run_gemm_loops<F>(
    shape: &ConvShape,
    pool: &ThreadPool,
    input: &BlockedActs,
    weights: &BlockedFilter,
    output: &mut BlockedActs,
    small_gemm: F,
) where
    F: Fn(*const f32, *const f32, *mut f32) + Sync,
{
    output.zero();
    let (p, _q) = (shape.p(), shape.q());
    let part = FlatPartition::new([shape.n, shape.kb(), p, 1]);
    let in_ptr = SendConst(input.as_ptr());
    let wt_ptr = SendConst(weights.as_ptr());
    let out_ptr = SendMut(output.as_mut_ptr());
    let in_row = input.stride_h();
    let in_cb = input.stride_cb();
    let in_n = input.stride_n();
    let out_row = output.stride_h();
    let out_kb = output.stride_cb();
    let out_n = output.stride_n();
    pool.run(|ctx| {
        for item in part.range(ctx.nthreads, ctx.tid) {
            let [n, kb, oj, _] = part.unflatten(item);
            let c_off = n * out_n + kb * out_kb + oj * out_row;
            for cb in 0..shape.cb() {
                for r in 0..shape.r {
                    for s in 0..shape.s {
                        // physical input coords (padding materialized)
                        let a_off =
                            n * in_n + cb * in_cb + (oj * shape.stride + r) * in_row + s * VLEN;
                        let b_off = weights.panel_offset(kb, cb, r, s);
                        // SAFETY: offsets in-bounds; output rows disjoint
                        // per work item.
                        unsafe {
                            small_gemm(
                                in_ptr.get().add(a_off),
                                wt_ptr.get().add(b_off),
                                out_ptr.get().add(c_off),
                            )
                        };
                    }
                }
            }
        }
    });
}

#[derive(Clone, Copy)]
pub(crate) struct SendConst(pub(crate) *const f32);
unsafe impl Send for SendConst {}
unsafe impl Sync for SendConst {}
impl SendConst {
    #[inline]
    pub(crate) fn get(&self) -> *const f32 {
        self.0
    }
}

#[derive(Clone, Copy)]
pub(crate) struct SendMut(pub(crate) *mut f32);
unsafe impl Send for SendMut {}
unsafe impl Sync for SendMut {}
impl SendMut {
    #[inline]
    pub(crate) fn get(&self) -> *mut f32 {
        self.0
    }
}

/// Re-exported wrappers for sibling modules.
pub(crate) use SendConst as SendConst2;
pub(crate) use SendMut as SendMut2;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_problem;
    use conv::reference::conv_fwd_ref;
    use tensor::{Nchw, Norms};

    #[test]
    fn strided_layer_matches_reference() {
        let shape = ConvShape::new(1, 32, 16, 8, 8, 3, 3, 2, 1);
        let pool = ThreadPool::new(2);
        let (x, w, xb, wb, mut yb) = random_problem(&shape);
        XsmmConv::new(shape).forward(&pool, &xb, &wb, &mut yb);
        let mut y_ref = Nchw::zeros(shape.n, shape.k, shape.p(), shape.q());
        conv_fwd_ref(&shape, &x, &w, &mut y_ref);
        let n = Norms::compare(BlockedActs::from_nchw(&y_ref, 0).as_slice(), yb.as_slice());
        assert!(n.ok(1e-4), "{n}");
    }
}
