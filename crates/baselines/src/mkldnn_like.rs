//! The "MKL-DNN" stand-in: the same specialized convolution
//! microkernels as the optimized engine, *without* kernel streams,
//! layer fusion or the two-level cross-invocation prefetch.
//!
//! The paper states MKL-DNN v0.12 is "a productization of core ideas
//! presented here" minus exactly those extras, and measures it within
//! ±20% of "this work". This baseline models that delta: every loop
//! iteration recomputes tile offsets and branches on tile geometry at
//! runtime (the "complicated, branchy logic" Section II-H eliminates),
//! and the prefetch arguments point at the *current* sub-tensors.

use crate::ConvBaseline;
use conv::backend::{Backend, FwdKernel};
use conv::blocking;
use microkernel::KernelShape;
use parallel::{FlatPartition, ThreadPool};
use std::collections::HashMap;
use tensor::{BlockedActs, BlockedFilter, ConvShape, VLEN};

/// Direct convolution without streams/fusion/cross-invocation prefetch.
pub struct MkldnnConv {
    shape: ConvShape,
    kernels: Vec<FwdKernel>,
    variants: HashMap<(usize, usize, bool), usize>,
    rbp: usize,
    rbq: usize,
    cb_inner: usize,
}

impl MkldnnConv {
    /// Generate the kernel variants (same generator as the engine).
    pub fn new(shape: ConvShape, _threads: usize) -> Self {
        let b = blocking::choose(&shape);
        let in_row = (shape.w + 2 * shape.pad) * VLEN;
        let in_cb = (shape.h + 2 * shape.pad) * in_row;
        let (p, q) = (shape.p(), shape.q());
        let mut kernels = Vec::new();
        let mut variants = HashMap::new();
        let mut rows_set = vec![b.rbp.min(p)];
        if p % b.rbp != 0 {
            rows_set.push(p % b.rbp);
        }
        let mut cols_set = vec![b.rbq.min(q)];
        if q % b.rbq != 0 {
            cols_set.push(q % b.rbq);
        }
        for &rows in &rows_set {
            for &cols in &cols_set {
                for init in [true, false] {
                    if !init && shape.cb() == b.cb_inner {
                        continue; // single reduction step: only init form
                    }
                    variants.entry((rows, cols, init)).or_insert_with(|| {
                        kernels.push(FwdKernel::new(
                            KernelShape {
                                rbp: rows,
                                rbq: cols,
                                r: shape.r,
                                s: shape.s,
                                stride: shape.stride,
                                cb_inner: b.cb_inner,
                                in_row_stride: in_row,
                                in_cb_stride: in_cb,
                                out_row_stride: q * VLEN,
                                out_col_stride: VLEN,
                                init_zero: init,
                                prefetch: false, // no cross-invocation prefetch
                            },
                            Backend::Auto,
                        ));
                        kernels.len() - 1
                    });
                }
            }
        }
        Self { shape, kernels, variants, rbp: b.rbp, rbq: b.rbq, cb_inner: b.cb_inner }
    }
}

impl ConvBaseline for MkldnnConv {
    fn name(&self) -> &'static str {
        "mkldnn"
    }

    fn forward(
        &self,
        pool: &ThreadPool,
        input: &BlockedActs,
        weights: &BlockedFilter,
        output: &mut BlockedActs,
    ) {
        let sh = &self.shape;
        let (p, q) = (sh.p(), sh.q());
        let (tp, tq) = (p.div_ceil(self.rbp), q.div_ceil(self.rbq));
        let cb_steps = sh.cb() / self.cb_inner;
        let part = FlatPartition::new([sh.n, sh.kb(), tp, tq]);
        let in_ptr = crate::xsmm_loops::SendConst2(input.as_ptr());
        let wt_ptr = crate::xsmm_loops::SendConst2(weights.as_ptr());
        let out_ptr = crate::xsmm_loops::SendMut2(output.as_mut_ptr());
        let in_row = input.stride_h();
        let in_cb = input.stride_cb();
        let in_n = input.stride_n();
        let out_row = output.stride_h();
        let out_kb = output.stride_cb();
        let out_n = output.stride_n();
        let wt_cb = sh.r * sh.s * VLEN * VLEN;
        let wt_kb = sh.cb() * wt_cb;
        pool.run(|ctx| {
            for item in part.range(ctx.nthreads, ctx.tid) {
                // the branchy per-iteration logic streams would remove:
                let [n, kb, tj, ti] = part.unflatten(item);
                let rows = self.rbp.min(p - tj * self.rbp);
                let cols = self.rbq.min(q - ti * self.rbq);
                let (oj, oi) = (tj * self.rbp, ti * self.rbq);
                let out_off = n * out_n + kb * out_kb + oj * out_row + oi * VLEN;
                for cbs in 0..cb_steps {
                    let var = self.variants[&(rows, cols, cbs == 0)];
                    let cb0 = cbs * self.cb_inner;
                    let in_off = n * in_n
                        + cb0 * in_cb
                        + (oj * sh.stride) * in_row
                        + (oi * sh.stride) * VLEN;
                    let wt_off = kb * wt_kb + cb0 * wt_cb;
                    // SAFETY: offsets in-bounds; disjoint output tiles.
                    unsafe {
                        let ip = in_ptr.get().add(in_off);
                        let wp = wt_ptr.get().add(wt_off);
                        let op = out_ptr.get().add(out_off);
                        self.kernels[var].call(ip, wp, op, ip, wp, op);
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_problem;
    use conv::reference::conv_fwd_ref;
    use tensor::{Nchw, Norms};

    #[test]
    fn matches_reference_on_deep_1x1() {
        let shape = ConvShape::new(2, 64, 32, 8, 8, 1, 1, 1, 0);
        let pool = ThreadPool::new(3);
        let (x, w, xb, wb, mut yb) = random_problem(&shape);
        MkldnnConv::new(shape, 3).forward(&pool, &xb, &wb, &mut yb);
        let mut y_ref = Nchw::zeros(shape.n, shape.k, shape.p(), shape.q());
        conv_fwd_ref(&shape, &x, &w, &mut y_ref);
        let n = Norms::compare(BlockedActs::from_nchw(&y_ref, 0).as_slice(), yb.as_slice());
        assert!(n.ok(1e-4), "{n}");
    }
}
