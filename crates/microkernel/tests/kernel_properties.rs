//! Property-based tests: the dispatched (vector) kernels agree with
//! the scalar kernels over randomized shapes, strides and data — the
//! statistical version of the paper artifact's per-kernel validation.

use microkernel::{select_fwd, select_upd, KernelShape, UpdShape};
use proptest::prelude::*;
use tensor::rng::SplitMix64;
use tensor::{Norms, VLEN};

fn fwd_shape(rbp: usize, rbq: usize, r: usize, s: usize, stride: usize, cbi: usize) -> KernelShape {
    let in_cols = (rbq - 1) * stride + s + 2;
    let in_rows = (rbp - 1) * stride + r + 1;
    KernelShape {
        rbp,
        rbq,
        r,
        s,
        stride,
        cb_inner: cbi,
        in_row_stride: in_cols * VLEN,
        in_cb_stride: in_rows * in_cols * VLEN + 32,
        out_row_stride: (rbq + 1) * VLEN,
        out_col_stride: VLEN,
        init_zero: false,
        prefetch: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fwd_vector_equals_scalar(
        rbp in 1usize..3,
        rbq in 1usize..15,
        r in 1usize..4,
        s in 1usize..4,
        stride in 1usize..3,
        cbi in 1usize..3,
        init_zero in any::<bool>(),
        seed in 0u64..10_000,
    ) {
        prop_assume!(rbp * rbq <= 28);
        let mut sh = fwd_shape(rbp, rbq, r, s, stride, cbi);
        sh.init_zero = init_zero;
        let in_rows = (rbp - 1) * stride + r + 1;
        let in_len = cbi * sh.in_cb_stride + in_rows * sh.in_row_stride;
        let wt_len = cbi * r * s * VLEN * VLEN;
        let out_len = rbp * sh.out_row_stride + rbq * VLEN + VLEN;
        let mut rng = SplitMix64::new(seed);
        let mut inp = vec![0.0f32; in_len];
        let mut wt = vec![0.0f32; wt_len];
        let mut out0 = vec![0.0f32; out_len];
        rng.fill_f32(&mut inp);
        rng.fill_f32(&mut wt);
        rng.fill_f32(&mut out0);

        let mut a = out0.clone();
        let mut b = out0.clone();
        // SAFETY: buffers sized by the shape's extents above.
        unsafe {
            microkernel::fwd::fwd_scalar(
                &sh, inp.as_ptr(), wt.as_ptr(), a.as_mut_ptr(),
                std::ptr::null(), std::ptr::null(), std::ptr::null(),
            );
            select_fwd(&sh)(
                &sh, inp.as_ptr(), wt.as_ptr(), b.as_mut_ptr(),
                std::ptr::null(), std::ptr::null(), std::ptr::null(),
            );
        }
        let n = Norms::compare(&a, &b);
        prop_assert!(n.ok(1e-5), "{sh:?}: {n}");
    }

    #[test]
    fn upd_vector_equals_scalar(
        bp in 1usize..6,
        bq in 1usize..10,
        stride in 1usize..3,
        seed in 0u64..10_000,
    ) {
        let sh = UpdShape {
            bp,
            bq,
            stride,
            in_row_stride: (bq * stride + 2) * VLEN,
            do_row_stride: (bq + 1) * VLEN,
            prefetch: false,
        };
        let in_len = bp * stride * sh.in_row_stride + bq * stride * VLEN + VLEN;
        let do_len = bp * sh.do_row_stride + bq * VLEN + VLEN;
        let mut rng = SplitMix64::new(seed);
        let mut inp = vec![0.0f32; in_len];
        let mut dout = vec![0.0f32; do_len];
        let mut dw0 = vec![0.0f32; 256];
        rng.fill_f32(&mut inp);
        rng.fill_f32(&mut dout);
        rng.fill_f32(&mut dw0);
        let mut a = dw0.clone();
        let mut b = dw0.clone();
        // SAFETY: buffers sized by the shape's extents above.
        unsafe {
            microkernel::upd::upd_scalar(
                &sh, inp.as_ptr(), dout.as_ptr(), a.as_mut_ptr(),
                std::ptr::null(), std::ptr::null(), std::ptr::null(),
            );
            select_upd(&sh)(
                &sh, inp.as_ptr(), dout.as_ptr(), b.as_mut_ptr(),
                std::ptr::null(), std::ptr::null(), std::ptr::null(),
            );
        }
        let n = Norms::compare(&a, &b);
        prop_assert!(n.ok(1e-5), "{sh:?}: {n}");
    }
}
