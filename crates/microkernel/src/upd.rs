//! Weight-gradient microkernel (Algorithm 9 / Section II-J).
//!
//! One invocation accumulates a single `VLEN × VLEN` panel of `dW` for
//! one filter tap `(r, s)`, sweeping a `BP × BQ` block of output
//! pixels. The register blocking is over the *input channel* dimension:
//! `VLEN` accumulators (one per `c` row of the panel) expose `VLEN`
//! independent FMA chains — exactly the paper's "register blocking up
//! to a factor of VLEN".

use crate::shape::UpdShape;
use tensor::VLEN;

/// Weight-update microkernel ABI: input (pre-offset to tap `(r,s)`),
/// output gradient, dW panel, plus the three prefetch pointers.
pub type UpdFn = unsafe fn(
    sh: &UpdShape,
    inp: *const f32,
    dout: *const f32,
    dw: *mut f32,
    pf_in: *const f32,
    pf_do: *const f32,
    pf_dw: *const f32,
);

/// Select the best available update kernel for `sh`.
pub fn select_upd(sh: &UpdShape) -> UpdFn {
    sh.validate();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return upd_avx512;
        }
    }
    upd_scalar
}

/// Portable scalar update kernel.
///
/// # Safety
/// `inp` and `dout` must stay in bounds for every offset `sh` describes
/// (validated via [`UpdShape::validate`]); `dw` must cover one
/// `VLEN x VLEN` panel and not alias the inputs. Prefetch pointers may
/// be null.
pub unsafe fn upd_scalar(
    sh: &UpdShape,
    inp: *const f32,
    dout: *const f32,
    dw: *mut f32,
    _pf_in: *const f32,
    _pf_do: *const f32,
    _pf_dw: *const f32,
) {
    let mut acc = [[0.0f32; VLEN]; VLEN];
    for (c, row) in acc.iter_mut().enumerate() {
        let base = dw.add(c * VLEN);
        for (v, x) in row.iter_mut().enumerate() {
            *x = *base.add(v);
        }
    }
    for p in 0..sh.bp {
        for q in 0..sh.bq {
            let g = dout.add(sh.do_off(p, q));
            let x = inp.add(sh.in_off(p, q));
            for (c, row) in acc.iter_mut().enumerate() {
                let xi = *x.add(c);
                for (v, a) in row.iter_mut().enumerate() {
                    *a += xi * *g.add(v);
                }
            }
        }
    }
    for (c, row) in acc.iter().enumerate() {
        let base = dw.add(c * VLEN);
        for (v, x) in row.iter().enumerate() {
            *base.add(v) = *x;
        }
    }
}

/// AVX-512 update kernel: 16 zmm accumulators hold the dW panel.
///
/// # Safety
/// Same contract as [`upd_scalar`], plus the CPU must support AVX-512F
/// and the prefetch pointers must be valid to prefetch (any readable
/// or null address).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
pub unsafe fn upd_avx512(
    sh: &UpdShape,
    inp: *const f32,
    dout: *const f32,
    dw: *mut f32,
    pf_in: *const f32,
    pf_do: *const f32,
    pf_dw: *const f32,
) {
    use std::arch::x86_64::*;
    let mut acc = [_mm512_setzero_ps(); VLEN];
    for (c, a) in acc.iter_mut().enumerate() {
        *a = _mm512_loadu_ps(dw.add(c * VLEN));
    }
    if sh.prefetch && !pf_in.is_null() {
        for row in 0..sh.bp.min(8) {
            _mm_prefetch::<_MM_HINT_T1>(pf_in.add(row * sh.stride * sh.in_row_stride) as *const i8);
            _mm_prefetch::<_MM_HINT_T1>(pf_do.add(row * sh.do_row_stride) as *const i8);
        }
        for c in 0..VLEN {
            _mm_prefetch::<_MM_HINT_T0>(pf_dw.add(c * VLEN) as *const i8);
        }
    }
    for p in 0..sh.bp {
        let grow = dout.add(sh.do_off(p, 0));
        let xrow = inp.add(sh.in_off(p, 0));
        for q in 0..sh.bq {
            let g = _mm512_loadu_ps(grow.add(q * VLEN));
            let x = xrow.add(q * sh.stride * VLEN);
            // 16 independent chains: one per input channel
            for (c, a) in acc.iter_mut().enumerate() {
                *a = _mm512_fmadd_ps(_mm512_set1_ps(*x.add(c)), g, *a);
            }
        }
    }
    for (c, a) in acc.iter().enumerate() {
        _mm512_storeu_ps(dw.add(c * VLEN), *a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::rng::SplitMix64;

    fn check(sh: &UpdShape) {
        sh.validate();
        let in_len = sh.bp * sh.stride * sh.in_row_stride + sh.bq * sh.stride * VLEN + VLEN;
        let do_len = sh.bp * sh.do_row_stride + sh.bq * VLEN + VLEN;
        let mut rng = SplitMix64::new(7);
        let mut inp = vec![0.0f32; in_len];
        let mut dout = vec![0.0f32; do_len];
        let mut dw0 = vec![0.0f32; VLEN * VLEN];
        rng.fill_f32(&mut inp);
        rng.fill_f32(&mut dout);
        rng.fill_f32(&mut dw0);

        // reference
        let mut expect = dw0.clone();
        for p in 0..sh.bp {
            for q in 0..sh.bq {
                for c in 0..VLEN {
                    let x = inp[sh.in_off(p, q) + c];
                    for v in 0..VLEN {
                        expect[c * VLEN + v] += x * dout[sh.do_off(p, q) + v];
                    }
                }
            }
        }

        let mut dw_s = dw0.clone();
        // SAFETY: buffers sized by the shape's extents above.
        unsafe {
            upd_scalar(
                sh,
                inp.as_ptr(),
                dout.as_ptr(),
                dw_s.as_mut_ptr(),
                std::ptr::null(),
                std::ptr::null(),
                std::ptr::null(),
            )
        };
        let n = tensor::Norms::compare(&expect, &dw_s);
        assert!(n.ok(1e-5), "scalar {sh:?}: {n}");

        let k = select_upd(sh);
        let mut dw_v = dw0.clone();
        // SAFETY: same buffers as the scalar call above.
        unsafe {
            k(
                sh,
                inp.as_ptr(),
                dout.as_ptr(),
                dw_v.as_mut_ptr(),
                inp.as_ptr(),
                dout.as_ptr(),
                dw_v.as_mut_ptr(),
            )
        };
        let n = tensor::Norms::compare(&expect, &dw_v);
        assert!(n.ok(1e-5), "dispatched {sh:?}: {n}");
    }

    fn base(bp: usize, bq: usize, stride: usize) -> UpdShape {
        UpdShape {
            bp,
            bq,
            stride,
            in_row_stride: (bq * stride + 3) * VLEN,
            do_row_stride: (bq + 1) * VLEN,
            prefetch: false,
        }
    }

    #[test]
    fn panel_accumulation_matches_reference() {
        for (bp, bq) in [(1, 1), (1, 14), (4, 7), (7, 7), (14, 14)] {
            for stride in [1, 2] {
                check(&base(bp, bq, stride));
            }
        }
    }

    #[test]
    fn prefetch_variant_is_harmless() {
        let mut sh = base(4, 14, 1);
        sh.prefetch = true;
        check(&sh);
    }

    #[test]
    fn repeated_invocations_accumulate() {
        // dW accumulates across invocations (the n / spatial-block loops)
        let sh = base(2, 4, 1);
        let in_len = sh.bp * sh.stride * sh.in_row_stride + sh.bq * sh.stride * VLEN + VLEN;
        let do_len = sh.bp * sh.do_row_stride + sh.bq * VLEN + VLEN;
        let inp = vec![1.0f32; in_len];
        let dout = vec![1.0f32; do_len];
        let mut dw = vec![0.0f32; 256];
        let k = select_upd(&sh);
        for _ in 0..3 {
            // SAFETY: buffers sized by the shape's extents above.
            unsafe {
                k(
                    &sh,
                    inp.as_ptr(),
                    dout.as_ptr(),
                    dw.as_mut_ptr(),
                    std::ptr::null(),
                    std::ptr::null(),
                    std::ptr::null(),
                )
            };
        }
        // every element = 3 invocations × bp·bq pixels × 1·1
        for &x in &dw {
            assert_eq!(x, (3 * sh.bp * sh.bq) as f32);
        }
    }
}
