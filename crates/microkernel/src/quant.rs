//! Reduced-precision int16 → int32 microkernel (Section II-K).
//!
//! The kernel follows the same structure as the f32 forward kernel but
//! consumes channel *pairs*: one 32-bit broadcast carries two adjacent
//! int16 input channels, one 512-bit weight load carries the
//! pair-interleaved weights (see `tensor::vnni`), and `vpdpwssd`
//! multiplies the pairs and accumulates into int32 lanes — the AVX-512
//! VNNI equivalent of Knights Mill's `4VNNIW`.
//!
//! The paper restricts the FMA accumulation-chain length to avoid
//! overflowing the int32 accumulators; [`KernelShape::cb_inner`] plays
//! that role here — the engine bounds how many channel blocks one
//! invocation reduces and spills to memory in between, which is one of
//! the three reasons int16 stays below 2× (Section III-B).

use crate::shape::KernelShape;
use tensor::VLEN;

/// Quantized microkernel ABI (mirrors [`crate::FwdFn`] with int types).
pub type QuantFn = unsafe fn(
    sh: &KernelShape,
    inp: *const i16,
    wt: *const i16,
    out: *mut i32,
    pf_in: *const i16,
    pf_wt: *const i16,
    pf_out: *const i32,
);

/// Select the best available quantized kernel for `sh`.
///
/// Preference: AVX-512 VNNI (`vpdpwssd`), then plain AVX-512
/// (`vpmaddwd` + `vpaddd`, the pre-VNNI sequence), then scalar.
pub fn select_quant(sh: &KernelShape) -> QuantFn {
    sh.validate();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512vnni") {
            if let Some(k) = lookup_vnni(sh.rbp, sh.rbq) {
                return k;
            }
        }
        if std::arch::is_x86_feature_detected!("avx512bw") {
            if let Some(k) = lookup_madd(sh.rbp, sh.rbq) {
                return k;
            }
        }
    }
    quant_scalar
}

/// Portable scalar kernel: processes channel pairs exactly like the
/// vector kernels, so results are bit-identical across backends.
///
/// # Safety
/// `inp`, `wt` and `out` must point to buffers that stay in bounds for
/// every offset `sh` describes (validated via [`KernelShape::validate`]);
/// `out` must not alias the inputs. Prefetch pointers may be null.
pub unsafe fn quant_scalar(
    sh: &KernelShape,
    inp: *const i16,
    wt: *const i16,
    out: *mut i32,
    _pf_in: *const i16,
    _pf_wt: *const i16,
    _pf_out: *const i32,
) {
    let mut acc = [[0i32; VLEN]; 28];
    if !sh.init_zero {
        for p in 0..sh.rbp {
            for q in 0..sh.rbq {
                let o = out.add(sh.out_off(p, q));
                for v in 0..VLEN {
                    acc[p * sh.rbq + q][v] = *o.add(v);
                }
            }
        }
    }
    for cb in 0..sh.cb_inner {
        for r in 0..sh.r {
            for s in 0..sh.s {
                // pair-interleaved weight panel: [c/2][k][2]
                let wbase = wt.add(sh.wt_off(cb, r, s));
                for cp in 0..VLEN / 2 {
                    for p in 0..sh.rbp {
                        for q in 0..sh.rbq {
                            let ioff = sh.in_off(cb, r, s, p, q) + 2 * cp;
                            let x0 = *inp.add(ioff) as i32;
                            let x1 = *inp.add(ioff + 1) as i32;
                            let t = &mut acc[p * sh.rbq + q];
                            for v in 0..VLEN {
                                let w0 = *wbase.add((cp * VLEN + v) * 2) as i32;
                                let w1 = *wbase.add((cp * VLEN + v) * 2 + 1) as i32;
                                t[v] = t[v].wrapping_add(x0 * w0 + x1 * w1);
                            }
                        }
                    }
                }
            }
        }
    }
    for p in 0..sh.rbp {
        for q in 0..sh.rbq {
            let o = out.add(sh.out_off(p, q));
            for v in 0..VLEN {
                *o.add(v) = acc[p * sh.rbq + q][v];
            }
        }
    }
}

/// AVX-512 VNNI kernel: `vpdpwssd` with a 32-bit embedded broadcast.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512vnni,avx512bw")]
unsafe fn quant_vnni<const RBP: usize, const RBQ: usize>(
    sh: &KernelShape,
    inp: *const i16,
    wt: *const i16,
    out: *mut i32,
    pf_in: *const i16,
    pf_wt: *const i16,
    pf_out: *const i32,
) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm512_setzero_si512(); RBQ]; RBP];
    if !sh.init_zero {
        for p in 0..RBP {
            for q in 0..RBQ {
                acc[p][q] = _mm512_loadu_si512(out.add(sh.out_off(p, q)) as *const _);
            }
        }
    }
    if sh.prefetch && !pf_in.is_null() {
        let in_rows = (RBP - 1) * sh.stride + sh.r;
        for row in 0..in_rows {
            _mm_prefetch::<_MM_HINT_T1>(pf_in.add(row * sh.in_row_stride) as *const i8);
        }
        _mm_prefetch::<_MM_HINT_T1>(pf_wt as *const i8);
        for p in 0..RBP {
            _mm_prefetch::<_MM_HINT_T0>(pf_out.add(sh.out_off(p, 0)) as *const i8);
        }
    }
    for cb in 0..sh.cb_inner {
        for r in 0..sh.r {
            for s in 0..sh.s {
                let wbase = wt.add(sh.wt_off(cb, r, s));
                for cp in 0..VLEN / 2 {
                    // one 512-bit load: 16 k-lanes × one i16 channel pair
                    let w = _mm512_loadu_si512(wbase.add(cp * VLEN * 2) as *const _);
                    for p in 0..RBP {
                        let ibase = inp.add(sh.in_off(cb, r, s, p, 0) + 2 * cp);
                        for q in 0..RBQ {
                            let pair = *(ibase.add(q * sh.stride * VLEN) as *const i32);
                            let b = _mm512_set1_epi32(pair);
                            acc[p][q] = _mm512_dpwssd_epi32(acc[p][q], b, w);
                        }
                    }
                }
            }
        }
    }
    for p in 0..RBP {
        for q in 0..RBQ {
            _mm512_storeu_si512(out.add(sh.out_off(p, q)) as *mut _, acc[p][q]);
        }
    }
}

/// Pre-VNNI AVX-512 kernel: `vpmaddwd` (pairwise i16 multiply-add into
/// i32) followed by `vpaddd` — two instructions where VNNI needs one,
/// i.e. no throughput gain over f32, matching pre-KNM silicon.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512bw")]
unsafe fn quant_madd<const RBP: usize, const RBQ: usize>(
    sh: &KernelShape,
    inp: *const i16,
    wt: *const i16,
    out: *mut i32,
    _pf_in: *const i16,
    _pf_wt: *const i16,
    _pf_out: *const i32,
) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm512_setzero_si512(); RBQ]; RBP];
    if !sh.init_zero {
        for p in 0..RBP {
            for q in 0..RBQ {
                acc[p][q] = _mm512_loadu_si512(out.add(sh.out_off(p, q)) as *const _);
            }
        }
    }
    for cb in 0..sh.cb_inner {
        for r in 0..sh.r {
            for s in 0..sh.s {
                let wbase = wt.add(sh.wt_off(cb, r, s));
                for cp in 0..VLEN / 2 {
                    let w = _mm512_loadu_si512(wbase.add(cp * VLEN * 2) as *const _);
                    for p in 0..RBP {
                        let ibase = inp.add(sh.in_off(cb, r, s, p, 0) + 2 * cp);
                        for q in 0..RBQ {
                            let pair = *(ibase.add(q * sh.stride * VLEN) as *const i32);
                            let b = _mm512_set1_epi32(pair);
                            let prod = _mm512_madd_epi16(b, w);
                            acc[p][q] = _mm512_add_epi32(acc[p][q], prod);
                        }
                    }
                }
            }
        }
    }
    for p in 0..RBP {
        for q in 0..RBQ {
            _mm512_storeu_si512(out.add(sh.out_off(p, q)) as *mut _, acc[p][q]);
        }
    }
}

/// Dispatch table shared by both int16 kernel families.
#[cfg(target_arch = "x86_64")]
macro_rules! quant_dispatch {
    ($kern:ident, $rbp:expr, $rbq:expr) => {
        match ($rbp, $rbq) {
            (1, 1) => Some($kern::<1, 1> as QuantFn),
            (1, 2) => Some($kern::<1, 2> as QuantFn),
            (1, 3) => Some($kern::<1, 3> as QuantFn),
            (1, 4) => Some($kern::<1, 4> as QuantFn),
            (1, 5) => Some($kern::<1, 5> as QuantFn),
            (1, 6) => Some($kern::<1, 6> as QuantFn),
            (1, 7) => Some($kern::<1, 7> as QuantFn),
            (1, 8) => Some($kern::<1, 8> as QuantFn),
            (1, 9) => Some($kern::<1, 9> as QuantFn),
            (1, 10) => Some($kern::<1, 10> as QuantFn),
            (1, 11) => Some($kern::<1, 11> as QuantFn),
            (1, 12) => Some($kern::<1, 12> as QuantFn),
            (1, 13) => Some($kern::<1, 13> as QuantFn),
            (1, 14) => Some($kern::<1, 14> as QuantFn),
            (1, 16) => Some($kern::<1, 16> as QuantFn),
            (1, 28) => Some($kern::<1, 28> as QuantFn),
            (2, 7) => Some($kern::<2, 7> as QuantFn),
            (2, 14) => Some($kern::<2, 14> as QuantFn),
            (4, 7) => Some($kern::<4, 7> as QuantFn),
            _ => None,
        }
    };
}

#[cfg(target_arch = "x86_64")]
fn lookup_vnni(rbp: usize, rbq: usize) -> Option<QuantFn> {
    quant_dispatch!(quant_vnni, rbp, rbq)
}

#[cfg(target_arch = "x86_64")]
fn lookup_madd(rbp: usize, rbq: usize) -> Option<QuantFn> {
    quant_dispatch!(quant_madd, rbp, rbq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::rng::SplitMix64;

    fn check(sh: &KernelShape) {
        sh.validate();
        let in_rows = (sh.rbp - 1) * sh.stride + sh.r + 1;
        let in_len = sh.cb_inner * sh.in_cb_stride.max(in_rows * sh.in_row_stride)
            + in_rows * sh.in_row_stride;
        let wt_len = sh.cb_inner * sh.r * sh.s * VLEN * VLEN;
        let out_len = sh.rbp * sh.out_row_stride + sh.rbq * sh.out_col_stride + VLEN;
        let mut rng = SplitMix64::new(123);
        let mut inp = vec![0i16; in_len];
        let mut wt = vec![0i16; wt_len];
        let mut out0 = vec![0i32; out_len];
        rng.fill_i16(&mut inp);
        rng.fill_i16(&mut wt);
        for x in out0.iter_mut() {
            *x = rng.next_i16() as i32;
        }

        // reference: pairs in natural channel order, weights interleaved
        let mut expect = out0.clone();
        for p in 0..sh.rbp {
            for q in 0..sh.rbq {
                let o = sh.out_off(p, q);
                if sh.init_zero {
                    expect[o..o + VLEN].fill(0);
                }
                for cb in 0..sh.cb_inner {
                    for r in 0..sh.r {
                        for s in 0..sh.s {
                            let wb = sh.wt_off(cb, r, s);
                            for c in 0..VLEN {
                                let x = inp[sh.in_off(cb, r, s, p, q) + c] as i32;
                                let (cp, parity) = (c / 2, c % 2);
                                for v in 0..VLEN {
                                    let w = wt[wb + (cp * VLEN + v) * 2 + parity] as i32;
                                    expect[o + v] += x * w;
                                }
                            }
                        }
                    }
                }
            }
        }

        let mut out_s = out0.clone();
        // SAFETY: buffers sized by the shape's extents above.
        unsafe {
            quant_scalar(
                sh,
                inp.as_ptr(),
                wt.as_ptr(),
                out_s.as_mut_ptr(),
                std::ptr::null(),
                std::ptr::null(),
                std::ptr::null(),
            )
        };
        assert_eq!(expect, out_s, "scalar mismatch {sh:?}");

        let k = select_quant(sh);
        let mut out_v = out0.clone();
        // SAFETY: same buffers as the scalar call above.
        unsafe {
            k(
                sh,
                inp.as_ptr(),
                wt.as_ptr(),
                out_v.as_mut_ptr(),
                inp.as_ptr(),
                wt.as_ptr(),
                out_v.as_mut_ptr(),
            )
        };
        assert_eq!(expect, out_v, "dispatched mismatch {sh:?}");
    }

    fn base(rbp: usize, rbq: usize, r: usize, s: usize, stride: usize, cbi: usize) -> KernelShape {
        let in_cols = (rbq - 1) * stride + s + 2;
        let in_rows = (rbp - 1) * stride + r + 1;
        KernelShape {
            rbp,
            rbq,
            r,
            s,
            stride,
            cb_inner: cbi,
            in_row_stride: in_cols * VLEN,
            in_cb_stride: in_rows * in_cols * VLEN + 64,
            out_row_stride: (rbq + 2) * VLEN,
            out_col_stride: VLEN,
            init_zero: false,
            prefetch: false,
        }
    }

    #[test]
    fn vnni_kernel_is_exact() {
        for (rbp, rbq) in [(1, 1), (1, 14), (2, 7), (4, 7)] {
            for (r, s, stride) in [(1, 1, 1), (3, 3, 1), (1, 1, 2)] {
                check(&base(rbp, rbq, r, s, stride, 1));
            }
        }
    }

    #[test]
    fn cb_inner_restricted_chain() {
        // cb_inner models the restricted accumulation chain: results
        // must stay exact for any split
        check(&base(1, 8, 1, 1, 1, 1));
        check(&base(1, 8, 1, 1, 1, 2));
        check(&base(1, 8, 1, 1, 1, 4));
    }

    #[test]
    fn init_zero_quant() {
        let mut sh = base(1, 7, 3, 3, 1, 1);
        sh.init_zero = true;
        check(&sh);
    }

    #[test]
    fn dispatch_uses_vnni_when_available() {
        if crate::has_vnni() {
            let sh = base(1, 14, 1, 1, 1, 1);
            let k = select_quant(&sh);
            assert!(
                !std::ptr::fn_addr_eq(k, quant_scalar as QuantFn),
                "should pick a vector kernel"
            );
        }
    }
}
