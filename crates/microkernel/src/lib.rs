//! Portable convolution microkernel family.
//!
//! This crate is the *intrinsics* implementation of the microkernels of
//! Section II-D: where the paper (and our `jit` crate) generates x86
//! machine code at runtime, this crate reaches the same specialization
//! through monomorphization — a family of kernels is compiled ahead of
//! time over const-generic register-blocking factors, and "generation"
//! selects the right instance from a dispatch table at layer-setup
//! time. The two backends share:
//!
//! * [`KernelShape`] / [`UpdShape`] — the complete descriptor of one
//!   microkernel (register blocking, strides, inner channel-block
//!   count, prefetch behaviour),
//! * the six-pointer ABI of Section II-E: three compute pointers plus
//!   three prefetch pointers for the *next* invocation's sub-tensors.
//!
//! Kernels:
//! * [`fwd`] — forward/backward f32 microkernel (backward reuses it via
//!   the duality transform of Section II-I),
//! * [`upd`] — weight-gradient microkernel (one `VLEN×VLEN` dW panel
//!   per invocation, Section II-J),
//! * [`quant`] — int16→int32 kernels with VNNI pairing (Section II-K).

// Kernel bodies index fixed-size accumulator tiles by (p, q, lane)
// coordinates to mirror the register blocking; iterator rewrites would
// obscure the addressing the paper reasons about.
#![allow(clippy::needless_range_loop)]

pub mod fwd;
pub mod quant;
pub mod shape;
pub mod upd;

pub use fwd::{select_fwd, FwdFn};
pub use quant::{select_quant, QuantFn};
pub use shape::{Extents, KernelShape, UpdShape};
pub use upd::{select_upd, UpdFn};

/// True when the host can run the AVX-512 f32 kernels.
pub fn has_avx512() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the host can run the VNNI int16 kernels natively.
pub fn has_vnni() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512vnni")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}
