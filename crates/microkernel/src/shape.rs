//! Microkernel descriptors — the "arguments" of kernel generation.
//!
//! A descriptor captures everything a generated kernel bakes into its
//! instruction stream: register blocking factors, tensor strides (in
//! *elements*), the number of input-channel blocks reduced inside one
//! invocation, and whether accumulators start from zero or from the
//! output tensor. Both the intrinsics backend (this crate) and the JIT
//! backend (`jit` crate) consume the same descriptors, so an engine can
//! switch backends without touching its loop structure.

use tensor::VLEN;

/// Descriptor of a forward (and, via duality, backward) microkernel.
///
/// One invocation computes an `RBP × RBQ` tile of output pixel vectors
/// for a single output-channel block, reducing over `cb_inner` input
/// channel blocks and the full `R × S` filter window:
///
/// ```text
/// for cb in 0..cb_inner:
///   for (r, s) in R × S:
///     for c in 0..VLEN:
///       w = W[cb][r][s][c][·]                (one vector load)
///       for (p, q) in RBP × RBQ:
///         O[p][q][·] += broadcast(I[cb][p·stride + r][q·stride + s][c]) · w
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KernelShape {
    /// Register-blocking rows (output spatial H direction).
    pub rbp: usize,
    /// Register-blocking columns (output spatial W direction).
    pub rbq: usize,
    /// Filter height.
    pub r: usize,
    /// Filter width.
    pub s: usize,
    /// Input spatial stride.
    pub stride: usize,
    /// Input-channel blocks reduced inside the kernel (≥ 1). 1×1 layers
    /// pull the whole `Cb` loop inside (Section II-C); spatial layers
    /// keep it outside (`cb_inner == 1`).
    pub cb_inner: usize,
    /// Elements between consecutive input rows (`Wp · VLEN`).
    pub in_row_stride: usize,
    /// Elements between input channel blocks (`Hp · Wp · VLEN`).
    pub in_cb_stride: usize,
    /// Elements between consecutive output rows.
    pub out_row_stride: usize,
    /// Elements between consecutive output pixels (normally `VLEN`;
    /// the backward 1×1 duality writes strided pixels).
    pub out_col_stride: usize,
    /// Zero-initialize accumulators instead of loading the output tile
    /// (used for the first `cb` pass when the output is not pre-zeroed).
    pub init_zero: bool,
    /// Issue software prefetches for the three prefetch pointers.
    pub prefetch: bool,
}

impl KernelShape {
    /// Accumulator registers required — must stay within the register
    /// budget (32 zmm minus weights/broadcast scratch).
    pub fn accumulators(&self) -> usize {
        self.rbp * self.rbq
    }

    /// FLOPs of one invocation.
    pub fn flops(&self) -> u64 {
        2 * (self.cb_inner * VLEN * VLEN * self.rbp * self.rbq * self.r * self.s) as u64
    }

    /// Element offset of the input pixel feeding output pixel `(p, q)`
    /// at filter tap `(r, s)` and channel block `cb`.
    #[inline]
    pub fn in_off(&self, cb: usize, r: usize, s: usize, p: usize, q: usize) -> usize {
        cb * self.in_cb_stride
            + (p * self.stride + r) * self.in_row_stride
            + (q * self.stride + s) * VLEN
    }

    /// Element offset of the weight panel `(cb, r, s)` (layout
    /// `[cb][r][s][c][k]`, one `VLEN×VLEN` panel per tap).
    #[inline]
    pub fn wt_off(&self, cb: usize, r: usize, s: usize) -> usize {
        ((cb * self.r + r) * self.s + s) * VLEN * VLEN
    }

    /// Element offset of output pixel `(p, q)`.
    #[inline]
    pub fn out_off(&self, p: usize, q: usize) -> usize {
        p * self.out_row_stride + q * self.out_col_stride
    }

    /// Extents (in elements) of the three tensors one invocation may
    /// touch — see [`Extents`]. The input extent covers every embedded
    /// broadcast *and* every software prefetch the assemblers emit:
    /// the deepest access is channel block `cb_inner - 1`, input row
    /// `(rbp-1)·stride + r - 1`, input column `(rbq-1)·stride + s - 1`,
    /// channel `VLEN - 1`.
    pub fn extents(&self) -> Extents {
        let rows = (self.rbp - 1) * self.stride + self.r - 1;
        let cols = (self.rbq - 1) * self.stride + self.s;
        Extents {
            input: (self.cb_inner - 1) * self.in_cb_stride
                + rows * self.in_row_stride
                + cols * VLEN,
            weights: self.cb_inner * self.r * self.s * VLEN * VLEN,
            output: (self.rbp - 1) * self.out_row_stride
                + (self.rbq - 1) * self.out_col_stride
                + VLEN,
        }
    }

    /// Element offsets of the `rbp × rbq` output-tile vectors — the
    /// exact set of vectors one invocation stores (each exactly once).
    /// Writes anywhere else would corrupt physical output padding,
    /// which padded fused plans require to stay zero.
    pub fn out_tile_offsets(&self) -> Vec<usize> {
        let mut offs = Vec::with_capacity(self.rbp * self.rbq);
        for p in 0..self.rbp {
            for q in 0..self.rbq {
                offs.push(self.out_off(p, q));
            }
        }
        offs
    }

    /// Validate invariants that both backends rely on.
    pub fn validate(&self) {
        assert!(self.rbp >= 1 && self.rbq >= 1, "empty register block");
        assert!(self.accumulators() <= 28, "register blocking exceeds the zmm budget");
        assert!(self.r >= 1 && self.s >= 1 && self.stride >= 1);
        assert!(self.cb_inner >= 1);
        assert!(self.in_row_stride >= VLEN && self.out_row_stride >= VLEN);
        assert!(self.out_col_stride >= VLEN);
        if self.cb_inner > 1 {
            assert!(self.in_cb_stride > 0, "cb_inner > 1 requires a channel-block stride");
        }
    }
}

/// Tensor extents (in *elements*) that one kernel invocation may
/// touch, counted from each of the three compute base pointers.
///
/// These are the contracts a generated kernel is verified against
/// (`kver`): every displacement the instruction stream can produce —
/// across all loop-counter values, prefetches included — must fall
/// inside `[0, extent)` of its tensor. They are *tight*: the last
/// element of each extent is reachable by some access of the kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extents {
    /// Input-activation elements reachable from the input pointer.
    pub input: usize,
    /// Weight (or dO, for the update kernel) elements reachable from
    /// the second pointer.
    pub weights: usize,
    /// Output (or dW) elements reachable from the third pointer.
    pub output: usize,
}

/// Descriptor of a weight-gradient microkernel (Section II-J).
///
/// One invocation accumulates a single `VLEN×VLEN` panel `dW[·][·]` of
/// one filter tap, sweeping a `BP × BQ` block of output pixels:
///
/// ```text
/// for (p, q) in BP × BQ:
///   g = dO[p][q][·]                          (one vector load)
///   for c in 0..VLEN:
///     dW[c][·] += broadcast(I[p·stride + r][q·stride + s][c]) · g
/// ```
///
/// The input pointer is passed pre-offset to tap `(r, s)`, so the shape
/// only needs strides.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct UpdShape {
    /// Spatial blocking rows (output H direction).
    pub bp: usize,
    /// Spatial blocking columns (output W direction).
    pub bq: usize,
    /// Input spatial stride.
    pub stride: usize,
    /// Elements between consecutive input rows.
    pub in_row_stride: usize,
    /// Elements between consecutive dO rows.
    pub do_row_stride: usize,
    /// Issue software prefetches.
    pub prefetch: bool,
}

impl UpdShape {
    /// FLOPs of one invocation.
    pub fn flops(&self) -> u64 {
        2 * (self.bp * self.bq * VLEN * VLEN) as u64
    }

    /// Element offset of the input pixel for output pixel `(p, q)`.
    #[inline]
    pub fn in_off(&self, p: usize, q: usize) -> usize {
        p * self.stride * self.in_row_stride + q * self.stride * VLEN
    }

    /// Element offset of the dO pixel `(p, q)`.
    #[inline]
    pub fn do_off(&self, p: usize, q: usize) -> usize {
        p * self.do_row_stride + q * VLEN
    }

    /// Extents (in elements) of the three tensors one invocation may
    /// touch: input broadcasts up to row `(bp-1)·stride`, column
    /// `(bq-1)·stride·VLEN + VLEN - 1`; dO vectors up to pixel
    /// `(bp-1, bq-1)`; one `VLEN × VLEN` dW panel.
    pub fn extents(&self) -> Extents {
        Extents {
            input: (self.bp - 1) * self.stride * self.in_row_stride
                + (self.bq - 1) * self.stride * VLEN
                + VLEN,
            weights: (self.bp - 1) * self.do_row_stride + (self.bq - 1) * VLEN + VLEN,
            output: VLEN * VLEN,
        }
    }

    /// Element offsets of the `VLEN` dW-panel vectors one invocation
    /// loads and stores (each exactly once).
    pub fn out_tile_offsets(&self) -> Vec<usize> {
        (0..VLEN).map(|c| c * VLEN).collect()
    }

    /// Validate invariants.
    pub fn validate(&self) {
        assert!(self.bp >= 1 && self.bq >= 1, "empty spatial block");
        assert!(self.stride >= 1);
        assert!(self.in_row_stride >= VLEN && self.do_row_stride >= VLEN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> KernelShape {
        KernelShape {
            rbp: 2,
            rbq: 14,
            r: 3,
            s: 3,
            stride: 1,
            cb_inner: 1,
            in_row_stride: 58 * VLEN,
            in_cb_stride: 58 * 58 * VLEN,
            out_row_stride: 56 * VLEN,
            out_col_stride: VLEN,
            init_zero: false,
            prefetch: false,
        }
    }

    #[test]
    fn offsets_are_consistent() {
        let k = shape();
        k.validate();
        assert_eq!(k.in_off(0, 0, 0, 0, 0), 0);
        assert_eq!(k.in_off(0, 1, 0, 0, 0), k.in_row_stride);
        assert_eq!(k.in_off(0, 0, 1, 0, 1), 2 * VLEN);
        #[allow(clippy::identity_op)] // keep the (r * S + s) shape visible
        let rs = 1 * 3 + 2;
        assert_eq!(k.wt_off(0, 1, 2), rs * 256);
        assert_eq!(k.out_off(1, 3), 56 * VLEN + 3 * VLEN);
        assert_eq!(k.accumulators(), 28);
        assert_eq!(k.flops(), 2 * 256 * 28 * 9);
    }

    #[test]
    #[should_panic(expected = "zmm budget")]
    fn rejects_oversized_register_block() {
        let mut k = shape();
        k.rbp = 4;
        k.rbq = 14;
        k.validate();
    }

    #[test]
    fn strided_kernel_offsets() {
        let mut k = shape();
        k.stride = 2;
        k.r = 1;
        k.s = 1;
        assert_eq!(k.in_off(0, 0, 0, 0, 1), 2 * VLEN);
        assert_eq!(k.in_off(0, 0, 0, 1, 0), 2 * k.in_row_stride);
    }

    #[test]
    fn extents_cover_the_deepest_access() {
        let k = shape();
        let e = k.extents();
        // deepest broadcast: cb = 0, tap (2, 2), pixel (1, 13), c = 15
        assert_eq!(e.input, k.in_off(k.cb_inner - 1, 2, 2, 1, 13) + VLEN);
        // one weight block of r·s panels: the last panel plus itself
        assert_eq!(e.weights, k.wt_off(k.cb_inner - 1, 2, 2) + VLEN * VLEN);
        // last output vector
        assert_eq!(e.output, k.out_off(1, 13) + VLEN);
        // every tile offset is inside the output extent
        let tiles = k.out_tile_offsets();
        assert_eq!(tiles.len(), k.accumulators());
        assert!(tiles.iter().all(|&t| t + VLEN <= e.output));
    }

    #[test]
    fn extents_scale_with_cb_inner_and_stride() {
        let mut k = shape();
        k.cb_inner = 4;
        assert_eq!(k.extents().input, 3 * k.in_cb_stride + shape().extents().input);
        assert_eq!(k.extents().weights, 4 * k.r * k.s * VLEN * VLEN);
        let mut k = shape();
        k.stride = 2;
        let e = k.extents();
        assert_eq!(e.input, ((k.rbp - 1) * 2 + 3 - 1) * k.in_row_stride + (13 * 2 + 3) * VLEN);
    }

    #[test]
    fn upd_extents_cover_the_deepest_access() {
        let u = UpdShape {
            bp: 4,
            bq: 14,
            stride: 2,
            in_row_stride: 30 * VLEN,
            do_row_stride: 14 * VLEN,
            prefetch: false,
        };
        let e = u.extents();
        assert_eq!(e.input, u.in_off(3, 13) + VLEN);
        assert_eq!(e.weights, u.do_off(3, 13) + VLEN);
        assert_eq!(e.output, VLEN * VLEN);
        assert_eq!(u.out_tile_offsets(), (0..VLEN).map(|c| c * VLEN).collect::<Vec<_>>());
    }

    #[test]
    fn upd_shape_offsets() {
        let u = UpdShape {
            bp: 4,
            bq: 14,
            stride: 2,
            in_row_stride: 30 * VLEN,
            do_row_stride: 14 * VLEN,
            prefetch: false,
        };
        u.validate();
        assert_eq!(u.in_off(1, 1), 2 * 30 * VLEN + 2 * VLEN);
        assert_eq!(u.do_off(1, 1), 14 * VLEN + VLEN);
        assert_eq!(u.flops(), 2 * 4 * 14 * 256);
    }
}
