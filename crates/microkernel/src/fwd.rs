//! Forward-propagation microkernel (Section II-D).
//!
//! The kernel body follows the paper's recipe exactly: load one vector
//! of weights (`VLEN` output channels for one input channel), then
//! broadcast `RBQ × RBP` input pixels against it with FMAs, keeping the
//! whole output tile in accumulator registers; output loads/stores are
//! hoisted outside the `R,S` (and optionally `Cb`) reduction loops.
//!
//! Specialization over the register-blocking factors happens through
//! const generics: `fwd_avx512::<RBP, RBQ>` compiles to the same
//! straight-line FMA block the JIT emits. [`select_fwd`] is the
//! dispatch table — the monomorphized analogue of kernel generation.

use crate::shape::KernelShape;
use tensor::VLEN;

/// The microkernel ABI (shared with the JIT backend): three compute
/// pointers and three prefetch pointers (Section II-E).
pub type FwdFn = unsafe fn(
    sh: &KernelShape,
    inp: *const f32,
    wt: *const f32,
    out: *mut f32,
    pf_in: *const f32,
    pf_wt: *const f32,
    pf_out: *const f32,
);

/// Select the best available kernel instance for `sh`.
///
/// Preference order: AVX-512 monomorphized instance (when the host has
/// AVX-512 and the blocking factors are in the compiled family), then
/// the portable scalar kernel.
pub fn select_fwd(sh: &KernelShape) -> FwdFn {
    sh.validate();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            if let Some(k) = lookup_avx512(sh.rbp, sh.rbq) {
                return k;
            }
        }
    }
    fwd_scalar
}

/// Portable scalar kernel: correct for every shape; the fallback when
/// no vector instance exists.
///
/// # Safety
/// `inp`, `wt` and `out` must point to buffers that stay in bounds for
/// every offset `sh` describes (validated via [`KernelShape::validate`]);
/// `out` must not alias the inputs. Prefetch pointers may be null.
pub unsafe fn fwd_scalar(
    sh: &KernelShape,
    inp: *const f32,
    wt: *const f32,
    out: *mut f32,
    _pf_in: *const f32,
    _pf_wt: *const f32,
    _pf_out: *const f32,
) {
    // accumulate in a stack tile to mirror the register blocking
    let mut acc = [[0.0f32; VLEN]; 28];
    let tiles = sh.rbp * sh.rbq;
    if !sh.init_zero {
        for p in 0..sh.rbp {
            for q in 0..sh.rbq {
                let o = out.add(sh.out_off(p, q));
                for v in 0..VLEN {
                    acc[p * sh.rbq + q][v] = *o.add(v);
                }
            }
        }
    }
    for cb in 0..sh.cb_inner {
        for r in 0..sh.r {
            for s in 0..sh.s {
                let wbase = wt.add(sh.wt_off(cb, r, s));
                for c in 0..VLEN {
                    let wrow = wbase.add(c * VLEN);
                    for p in 0..sh.rbp {
                        for q in 0..sh.rbq {
                            let x = *inp.add(sh.in_off(cb, r, s, p, q) + c);
                            let t = &mut acc[p * sh.rbq + q];
                            for v in 0..VLEN {
                                t[v] += x * *wrow.add(v);
                            }
                        }
                    }
                }
            }
        }
    }
    let _ = tiles;
    for p in 0..sh.rbp {
        for q in 0..sh.rbq {
            let o = out.add(sh.out_off(p, q));
            for v in 0..VLEN {
                *o.add(v) = acc[p * sh.rbq + q][v];
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn fwd_avx512<const RBP: usize, const RBQ: usize>(
    sh: &KernelShape,
    inp: *const f32,
    wt: *const f32,
    out: *mut f32,
    pf_in: *const f32,
    pf_wt: *const f32,
    pf_out: *const f32,
) {
    use std::arch::x86_64::*;
    debug_assert_eq!((sh.rbp, sh.rbq), (RBP, RBQ));

    let mut acc = [[_mm512_setzero_ps(); RBQ]; RBP];
    if !sh.init_zero {
        for p in 0..RBP {
            for q in 0..RBQ {
                acc[p][q] = _mm512_loadu_ps(out.add(sh.out_off(p, q)));
            }
        }
    }

    // Two-level prefetch (Section II-E): L2 prefetches for the next
    // invocation's input rows and weight panel, L1 prefetches for its
    // output tile. All pointers describe *future* sub-tensors; issuing
    // them up front overlaps the misses with this invocation's FMAs.
    if sh.prefetch && !pf_in.is_null() {
        let in_rows = (RBP - 1) * sh.stride + sh.r;
        for row in 0..in_rows {
            _mm_prefetch::<_MM_HINT_T1>(pf_in.add(row * sh.in_row_stride) as *const i8);
        }
        let wt_lines = (sh.r * sh.s * VLEN * VLEN / 16).min(16);
        for l in 0..wt_lines {
            _mm_prefetch::<_MM_HINT_T1>(pf_wt.add(l * 16) as *const i8);
        }
        for p in 0..RBP {
            _mm_prefetch::<_MM_HINT_T0>(pf_out.add(sh.out_off(p, 0)) as *const i8);
        }
    }

    for cb in 0..sh.cb_inner {
        for r in 0..sh.r {
            for s in 0..sh.s {
                let wbase = wt.add(sh.wt_off(cb, r, s));
                for c in 0..VLEN {
                    let w = _mm512_loadu_ps(wbase.add(c * VLEN));
                    for p in 0..RBP {
                        let ibase = inp.add(sh.in_off(cb, r, s, p, 0) + c);
                        for q in 0..RBQ {
                            let b = _mm512_set1_ps(*ibase.add(q * sh.stride * VLEN));
                            acc[p][q] = _mm512_fmadd_ps(b, w, acc[p][q]);
                        }
                    }
                }
            }
        }
    }

    for p in 0..RBP {
        for q in 0..RBQ {
            _mm512_storeu_ps(out.add(sh.out_off(p, q)), acc[p][q]);
        }
    }
}

/// Dispatch table over the compiled (RBP, RBQ) family. The family
/// covers the blockings any sane engine chooses: wide single rows
/// (RBQ ≤ 28), double rows up to 14 wide, and tall-narrow variants for
/// 7-pixel layers.
#[cfg(target_arch = "x86_64")]
fn lookup_avx512(rbp: usize, rbq: usize) -> Option<FwdFn> {
    macro_rules! table {
        ($(($p:literal, $q:literal)),+ $(,)?) => {
            match (rbp, rbq) {
                $( ($p, $q) => Some(fwd_avx512::<$p, $q> as FwdFn), )+
                _ => None,
            }
        };
    }
    // keep one row per RBP group so gaps in the family are visible
    #[rustfmt::skip]
    let f = table!(
        (1, 1), (1, 2), (1, 3), (1, 4), (1, 5), (1, 6), (1, 7), (1, 8), (1, 9), (1, 10),
        (1, 11), (1, 12), (1, 13), (1, 14), (1, 15), (1, 16), (1, 17), (1, 18), (1, 19),
        (1, 20), (1, 21), (1, 22), (1, 23), (1, 24), (1, 25), (1, 26), (1, 27), (1, 28),
        (2, 1), (2, 2), (2, 3), (2, 4), (2, 5), (2, 6), (2, 7), (2, 8), (2, 9), (2, 10),
        (2, 11), (2, 12), (2, 13), (2, 14),
        (3, 1), (3, 2), (3, 3), (3, 4), (3, 5), (3, 6), (3, 7),
        (4, 1), (4, 2), (4, 3), (4, 4), (4, 5), (4, 6), (4, 7),
    );
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::rng::SplitMix64;

    /// Build a miniature problem around one kernel invocation and check
    /// it against the naive formula.
    fn check(sh: &KernelShape) {
        sh.validate();
        let in_rows = (sh.rbp - 1) * sh.stride + sh.r + 1;
        let in_len = sh.cb_inner * sh.in_cb_stride.max(in_rows * sh.in_row_stride)
            + in_rows * sh.in_row_stride;
        let wt_len = sh.cb_inner * sh.r * sh.s * VLEN * VLEN;
        let out_len = sh.rbp * sh.out_row_stride + sh.rbq * sh.out_col_stride + VLEN;
        let mut rng = SplitMix64::new(42);
        let mut inp = vec![0.0f32; in_len];
        let mut wt = vec![0.0f32; wt_len];
        let mut out0 = vec![0.0f32; out_len];
        rng.fill_f32(&mut inp);
        rng.fill_f32(&mut wt);
        rng.fill_f32(&mut out0);

        // reference
        let mut expect = out0.clone();
        for p in 0..sh.rbp {
            for q in 0..sh.rbq {
                let mut acc = [0.0f32; VLEN];
                if !sh.init_zero {
                    acc.copy_from_slice(&out0[sh.out_off(p, q)..sh.out_off(p, q) + VLEN]);
                }
                for cb in 0..sh.cb_inner {
                    for r in 0..sh.r {
                        for s in 0..sh.s {
                            for c in 0..VLEN {
                                let x = inp[sh.in_off(cb, r, s, p, q) + c];
                                let woff = sh.wt_off(cb, r, s) + c * VLEN;
                                for v in 0..VLEN {
                                    acc[v] += x * wt[woff + v];
                                }
                            }
                        }
                    }
                }
                expect[sh.out_off(p, q)..sh.out_off(p, q) + VLEN].copy_from_slice(&acc);
            }
        }

        // scalar kernel
        let mut out_s = out0.clone();
        // SAFETY: buffers sized by the shape's extents above.
        unsafe {
            fwd_scalar(
                sh,
                inp.as_ptr(),
                wt.as_ptr(),
                out_s.as_mut_ptr(),
                std::ptr::null(),
                std::ptr::null(),
                std::ptr::null(),
            )
        };
        let n = tensor::Norms::compare(&expect, &out_s);
        assert!(n.ok(1e-5), "scalar {sh:?}: {n}");

        // dispatched kernel (AVX-512 when available)
        let mut out_v = out0.clone();
        let k = select_fwd(sh);
        // SAFETY: same buffers as the scalar call above.
        unsafe {
            k(
                sh,
                inp.as_ptr(),
                wt.as_ptr(),
                out_v.as_mut_ptr(),
                inp.as_ptr(),
                wt.as_ptr(),
                out_v.as_mut_ptr(),
            )
        };
        let n = tensor::Norms::compare(&expect, &out_v);
        assert!(n.ok(1e-5), "dispatched {sh:?}: {n}");
    }

    fn base(rbp: usize, rbq: usize, r: usize, s: usize, stride: usize, cbi: usize) -> KernelShape {
        let in_cols = (rbq - 1) * stride + s + 2;
        let in_rows = (rbp - 1) * stride + r + 1;
        KernelShape {
            rbp,
            rbq,
            r,
            s,
            stride,
            cb_inner: cbi,
            in_row_stride: in_cols * VLEN,
            in_cb_stride: in_rows * in_cols * VLEN + 64,
            out_row_stride: (rbq + 2) * VLEN,
            out_col_stride: VLEN,
            init_zero: false,
            prefetch: false,
        }
    }

    #[test]
    fn kernel_matrix_of_shapes() {
        for (rbp, rbq) in [(1, 1), (1, 7), (1, 14), (1, 28), (2, 7), (2, 14), (4, 7)] {
            for (r, s, stride) in [(1, 1, 1), (3, 3, 1), (1, 1, 2), (3, 3, 2), (7, 7, 2)] {
                check(&base(rbp, rbq, r, s, stride, 1));
            }
        }
    }

    #[test]
    fn cb_inner_reduction() {
        for cbi in [1usize, 2, 4] {
            check(&base(1, 14, 1, 1, 1, cbi));
        }
    }

    #[test]
    fn init_zero_overwrites_output() {
        let mut sh = base(1, 8, 3, 3, 1, 1);
        sh.init_zero = true;
        check(&sh);
    }

    #[test]
    fn strided_output_columns() {
        // bwd 1x1 duality: write every second output pixel
        let mut sh = base(1, 6, 1, 1, 1, 1);
        sh.out_col_stride = 2 * VLEN;
        sh.out_row_stride = 16 * VLEN;
        check(&sh);
    }

    #[test]
    fn prefetch_variant_is_harmless() {
        let mut sh = base(2, 14, 3, 3, 1, 1);
        sh.prefetch = true;
        check(&sh);
    }

    #[test]
    fn dispatch_prefers_vector_kernel() {
        if crate::has_avx512() {
            let sh = base(1, 14, 3, 3, 1, 1);
            let f = select_fwd(&sh);
            assert!(
                !std::ptr::fn_addr_eq(f, fwd_scalar as FwdFn),
                "should not fall back to scalar"
            );
        }
    }
}
