//! Decoder for the exact x86-64 encoding subset `jit::emit` produces.
//!
//! This is deliberately *not* a general x86 decoder: it accepts the
//! one EVEX form the emitter writes (512-bit, `mod = 10` base + disp32
//! memory operands, no SIB, no masking, W = 0) plus the handful of
//! legacy instructions of the loop scaffolding and prefetch plan.
//! Anything else — including well-formed x86 the emitter never
//! generates — is a [`Violation::Decode`], so a tampered or corrupted
//! stream cannot hide behind decoder generality.

use crate::Violation;

/// One decoded instruction of the kernel subset.
///
/// Register fields are full 5-bit zmm numbers (EVEX `R'R`/`V'` bits
/// folded in); `base` is a 4-bit GPR number; `disp` is the byte
/// displacement of the `mod = 10` memory form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inst {
    /// 512-bit vector load: `vmovups`/`vmovdqu32 zmm, [base + disp]`.
    VecLoad {
        /// Destination zmm register.
        dst: u8,
        /// Base GPR of the memory operand.
        base: u8,
        /// Byte displacement.
        disp: i32,
    },
    /// 512-bit vector store: `vmovups`/`vmovdqu32 [base + disp], zmm`.
    VecStore {
        /// Source zmm register.
        src: u8,
        /// Base GPR of the memory operand.
        base: u8,
        /// Byte displacement.
        disp: i32,
    },
    /// Embedded-broadcast multiply-accumulate: `vfmadd231ps` (f32) or
    /// `vpdpwssd` (int16 pairs), `acc += mul · bcast([base + disp])`.
    FmaBcst {
        /// Accumulator zmm (destination).
        acc: u8,
        /// Multiplier zmm (weights).
        mul: u8,
        /// Base GPR of the broadcast memory operand.
        base: u8,
        /// Byte displacement.
        disp: i32,
    },
    /// `vbroadcastss zmm, dword [base + disp]`.
    Broadcast {
        /// Destination zmm register.
        dst: u8,
        /// Base GPR of the memory operand.
        base: u8,
        /// Byte displacement.
        disp: i32,
    },
    /// Zeroing idiom `vpxord zmm, zmm, zmm` (all operands equal).
    Zero {
        /// The zmm register being cleared.
        reg: u8,
    },
    /// `prefetcht0`/`prefetcht1 [base + disp]`.
    Prefetch {
        /// Base GPR of the prefetched address.
        base: u8,
        /// Byte displacement.
        disp: i32,
    },
    /// `mov r64, imm32` (sign-extended).
    MovImm {
        /// Destination GPR.
        dst: u8,
        /// Immediate value.
        imm: i32,
    },
    /// `add r64, imm32`.
    AddImm {
        /// Destination GPR.
        dst: u8,
        /// Immediate value.
        imm: i32,
    },
    /// `dec r64`.
    Dec {
        /// Destination GPR.
        dst: u8,
    },
    /// `jnz rel32`, with the branch target resolved to an absolute
    /// byte offset into the code stream.
    Jnz {
        /// Absolute byte offset of the branch target.
        target: i64,
    },
    /// `vzeroupper` — the mandatory ABI epilogue before `ret`.
    Vzeroupper,
    /// `ret`.
    Ret,
}

/// Decode `code` linearly into `(byte offset, instruction)` pairs.
///
/// Every byte must belong to exactly one instruction of the subset and
/// the stream must end exactly at an instruction boundary; a partial
/// final instruction is [`Violation::Truncated`], an unrecognized
/// encoding is [`Violation::Decode`].
pub fn decode_all(code: &[u8]) -> Result<Vec<(usize, Inst)>, Violation> {
    let mut out = Vec::with_capacity(code.len() / 8);
    let mut at = 0usize;
    while at < code.len() {
        let (inst, len) = decode_one(code, at)?;
        out.push((at, inst));
        at += len;
    }
    Ok(out)
}

/// Fetch `n` bytes at `at`, or report truncation of the instruction
/// starting at `at`.
fn need(code: &[u8], at: usize, n: usize) -> Result<&[u8], Violation> {
    code.get(at..at + n).ok_or(Violation::Truncated { at })
}

/// Read a little-endian disp32/imm32.
fn imm32(bytes: &[u8]) -> i32 {
    i32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

/// Decode one instruction at `at`, returning it and its length.
fn decode_one(code: &[u8], at: usize) -> Result<(Inst, usize), Violation> {
    let op0 = code[at];
    match op0 {
        0x62 => decode_evex(code, at),
        0xC3 => Ok((Inst::Ret, 1)),
        0xC5 => {
            let b = need(code, at, 3)?;
            if b[1] == 0xF8 && b[2] == 0x77 {
                Ok((Inst::Vzeroupper, 3))
            } else {
                Err(Violation::Decode { at, byte: b[1] })
            }
        }
        0x0F => {
            let b = need(code, at, 2)?;
            match b[1] {
                0x18 => decode_prefetch(code, at, at + 2, 0),
                0x85 => {
                    let b = need(code, at, 6)?;
                    let rel = imm32(&b[2..6]);
                    Ok((Inst::Jnz { target: (at + 6) as i64 + rel as i64 }, 6))
                }
                other => Err(Violation::Decode { at, byte: other }),
            }
        }
        0x41 => {
            let b = need(code, at, 3)?;
            if b[1] == 0x0F && b[2] == 0x18 {
                decode_prefetch(code, at, at + 3, 8)
            } else {
                Err(Violation::Decode { at, byte: b[1] })
            }
        }
        0x48 | 0x49 => decode_rex_legacy(code, at, op0 & 1),
        other => Err(Violation::Decode { at, byte: other }),
    }
}

/// `prefetcht0/t1 [base + disp32]`: modrm (+ disp32) at `pos`, base
/// extension `ext` (8 when a REX.B prefix was seen).
fn decode_prefetch(
    code: &[u8],
    at: usize,
    pos: usize,
    ext: u8,
) -> Result<(Inst, usize), Violation> {
    let b = need(code, pos, 5)?;
    let modrm = b[0];
    let hint = (modrm >> 3) & 7;
    // mod = 10, hint t0 (/1) or t1 (/2), no SIB (rm ≠ 100)
    if modrm >> 6 != 0b10 || !(hint == 1 || hint == 2) || modrm & 7 == 4 {
        return Err(Violation::Decode { at, byte: modrm });
    }
    let base = (modrm & 7) | ext;
    Ok((Inst::Prefetch { base, disp: imm32(&b[1..5]) }, pos + 5 - at))
}

/// The REX.W-prefixed legacy scaffolding: `mov r64, imm32`,
/// `add r64, imm32`, `dec r64`.
fn decode_rex_legacy(code: &[u8], at: usize, rex_b: u8) -> Result<(Inst, usize), Violation> {
    let b = need(code, at, 3)?;
    let opcode = b[1];
    let modrm = b[2];
    if modrm >> 6 != 0b11 {
        return Err(Violation::Decode { at, byte: modrm });
    }
    let slash = (modrm >> 3) & 7;
    let reg = (modrm & 7) | (rex_b << 3);
    match opcode {
        0xC7 | 0x81 => {
            if slash != 0 {
                return Err(Violation::Decode { at, byte: modrm });
            }
            let b = need(code, at, 7)?;
            let imm = imm32(&b[3..7]);
            let inst = if opcode == 0xC7 {
                Inst::MovImm { dst: reg, imm }
            } else {
                Inst::AddImm { dst: reg, imm }
            };
            Ok((inst, 7))
        }
        0xFF if slash == 1 => Ok((Inst::Dec { dst: reg }, 3)),
        other => Err(Violation::Decode { at, byte: other }),
    }
}

/// Decode the one EVEX form the emitter writes.
fn decode_evex(code: &[u8], at: usize) -> Result<(Inst, usize), Violation> {
    let b = need(code, at, 6)?;
    let (p0, p1, p2, opcode, modrm) = (b[1], b[2], b[3], b[4], b[5]);
    let map = p0 & 0b111;
    // p0 bit3 reserved-zero; p1: W = 0, bit2 set; p2: L'L = 512-bit,
    // no masking (aaa = 0), no zeroing (z = 0)
    if p0 & 0b1000 != 0
        || p1 & 0x80 != 0
        || p1 & 0b100 == 0
        || p2 & 0b111 != 0
        || p2 & 0x80 != 0
        || (p2 >> 5) & 0b11 != 0b10
    {
        return Err(Violation::Decode { at, byte: p1 });
    }
    let pp = p1 & 0b11;
    let bcst = p2 & 0x10 != 0;
    let vvvv = ((!(p1 >> 3)) & 0xF) | ((((p2 >> 3) & 1) ^ 1) << 4);
    let reg = ((modrm >> 3) & 7) | ((((p0 >> 7) & 1) ^ 1) << 3) | ((((p0 >> 4) & 1) ^ 1) << 4);
    match modrm >> 6 {
        0b10 => {
            // memory form: no index register (X = 1), no SIB
            if p0 & 0x40 == 0 || modrm & 7 == 4 {
                return Err(Violation::Decode { at, byte: modrm });
            }
            let base = (modrm & 7) | ((((p0 >> 5) & 1) ^ 1) << 3);
            let b = need(code, at, 10)?;
            let disp = imm32(&b[6..10]);
            let inst = match (map, pp, opcode, bcst) {
                // vmovups / vmovdqu32 load
                (0b001, 0b00, 0x10, false) | (0b001, 0b10, 0x6F, false) if vvvv == 0 => {
                    Inst::VecLoad { dst: reg, base, disp }
                }
                // vmovups / vmovdqu32 store
                (0b001, 0b00, 0x11, false) | (0b001, 0b10, 0x7F, false) if vvvv == 0 => {
                    Inst::VecStore { src: reg, base, disp }
                }
                // vfmadd231ps / vpdpwssd with embedded broadcast
                (0b010, 0b01, 0xB8, true) | (0b010, 0b01, 0x52, true) => {
                    Inst::FmaBcst { acc: reg, mul: vvvv, base, disp }
                }
                (0b010, 0b01, 0x18, false) if vvvv == 0 => Inst::Broadcast { dst: reg, base, disp },
                _ => return Err(Violation::Decode { at, byte: opcode }),
            };
            Ok((inst, 10))
        }
        0b11 => {
            let rm = (modrm & 7) | ((((p0 >> 5) & 1) ^ 1) << 3) | ((((p0 >> 6) & 1) ^ 1) << 4);
            match (map, pp, opcode, bcst) {
                // vpxord zmm, zmm, zmm — only the zeroing idiom
                (0b001, 0b01, 0xEF, false) if reg == vvvv && vvvv == rm => {
                    Ok((Inst::Zero { reg }, 6))
                }
                _ => Err(Violation::Decode { at, byte: opcode }),
            }
        }
        _ => Err(Violation::Decode { at, byte: modrm }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte sequences taken from the emitter's own ground-truth tests
    /// (cross-checked against GNU `as` + objdump there).
    #[test]
    fn decodes_the_ground_truth_encodings() {
        // vfmadd231ps (%rdi){1to16}, %zmm31, %zmm0
        let code = [0x62, 0xF2, 0x05, 0x50, 0xB8, 0x87, 0, 0, 0, 0];
        assert_eq!(
            decode_all(&code).unwrap(),
            vec![(0, Inst::FmaBcst { acc: 0, mul: 31, base: 7, disp: 0 })]
        );
        // vfmadd231ps 0x12345(%r9){1to16}, %zmm2, %zmm27
        let code = [0x62, 0x42, 0x6D, 0x58, 0xB8, 0x99, 0x45, 0x23, 0x01, 0x00];
        assert_eq!(
            decode_all(&code).unwrap(),
            vec![(0, Inst::FmaBcst { acc: 27, mul: 2, base: 9, disp: 0x12345 })]
        );
        // vmovups 0x40(%rsi), %zmm28
        let code = [0x62, 0x61, 0x7C, 0x48, 0x10, 0xA6, 0x40, 0, 0, 0];
        assert_eq!(
            decode_all(&code).unwrap(),
            vec![(0, Inst::VecLoad { dst: 28, base: 6, disp: 0x40 })]
        );
        // vmovups %zmm5, 0x80(%rdx)
        let code = [0x62, 0xF1, 0x7C, 0x48, 0x11, 0xAA, 0x80, 0, 0, 0];
        assert_eq!(
            decode_all(&code).unwrap(),
            vec![(0, Inst::VecStore { src: 5, base: 2, disp: 0x80 })]
        );
        // vpxord %zmm3, %zmm3, %zmm3
        let code = [0x62, 0xF1, 0x65, 0x48, 0xEF, 0xDB];
        assert_eq!(decode_all(&code).unwrap(), vec![(0, Inst::Zero { reg: 3 })]);
        // vpdpwssd (%rcx){1to16}, %zmm29, %zmm2
        let code = [0x62, 0xF2, 0x15, 0x50, 0x52, 0x91, 0, 0, 0, 0];
        assert_eq!(
            decode_all(&code).unwrap(),
            vec![(0, Inst::FmaBcst { acc: 2, mul: 29, base: 1, disp: 0 })]
        );
        // vmovdqu32 0x100(%r8), %zmm1
        let code = [0x62, 0xD1, 0x7E, 0x48, 0x6F, 0x88, 0, 1, 0, 0];
        assert_eq!(
            decode_all(&code).unwrap(),
            vec![(0, Inst::VecLoad { dst: 1, base: 8, disp: 0x100 })]
        );
        // prefetcht0 0x40(%rcx) and prefetcht1 0x80(%r8)
        let code = [0x0F, 0x18, 0x89, 0x40, 0, 0, 0];
        assert_eq!(decode_all(&code).unwrap(), vec![(0, Inst::Prefetch { base: 1, disp: 0x40 })]);
        let code = [0x41, 0x0F, 0x18, 0x90, 0x80, 0, 0, 0];
        assert_eq!(decode_all(&code).unwrap(), vec![(0, Inst::Prefetch { base: 8, disp: 0x80 })]);
        // vbroadcastss 0x10(%rdi), %zmm30
        let code = [0x62, 0x62, 0x7D, 0x48, 0x18, 0xB7, 0x10, 0, 0, 0];
        assert_eq!(
            decode_all(&code).unwrap(),
            vec![(0, Inst::Broadcast { dst: 30, base: 7, disp: 0x10 })]
        );
    }

    #[test]
    fn decodes_the_loop_scaffolding() {
        // mov r10, 5; dec r10; jnz -9; ret
        let code = [
            0x49, 0xC7, 0xC2, 5, 0, 0, 0, 0x49, 0xFF, 0xCA, 0x0F, 0x85, 0xF7, 0xFF, 0xFF, 0xFF,
            0xC3,
        ];
        assert_eq!(
            decode_all(&code).unwrap(),
            vec![
                (0, Inst::MovImm { dst: 10, imm: 5 }),
                (7, Inst::Dec { dst: 10 }),
                (10, Inst::Jnz { target: 7 }),
                (16, Inst::Ret),
            ]
        );
        // add rdi, 0x1000; add r8, -64; vzeroupper
        let code = [
            0x48, 0x81, 0xC7, 0x00, 0x10, 0, 0, 0x49, 0x81, 0xC0, 0xC0, 0xFF, 0xFF, 0xFF, 0xC5,
            0xF8, 0x77,
        ];
        assert_eq!(
            decode_all(&code).unwrap(),
            vec![
                (0, Inst::AddImm { dst: 7, imm: 0x1000 }),
                (7, Inst::AddImm { dst: 8, imm: -64 }),
                (14, Inst::Vzeroupper),
            ]
        );
    }

    #[test]
    fn rejects_foreign_bytes_and_truncation() {
        // NOP is valid x86 but not part of the kernel subset
        assert_eq!(decode_all(&[0x90]), Err(Violation::Decode { at: 0, byte: 0x90 }));
        // the probe stub `mov eax, 42` is not kernel code either
        assert_eq!(
            decode_all(&[0xB8, 42, 0, 0, 0, 0xC3]),
            Err(Violation::Decode { at: 0, byte: 0xB8 })
        );
        // a truncated EVEX instruction
        let full = [0x62, 0xF1, 0x7C, 0x48, 0x11, 0xAA, 0x80, 0, 0, 0];
        for cut in 1..full.len() {
            assert_eq!(decode_all(&full[..cut]), Err(Violation::Truncated { at: 0 }));
        }
        // an x87 escape behind the 0F prefix
        assert_eq!(decode_all(&[0x0F, 0xAE, 0, 0]), Err(Violation::Decode { at: 0, byte: 0xAE }));
        // vpxord with distinct operands is not the zeroing idiom
        let code = [0x62, 0xF1, 0x65, 0x48, 0xEF, 0xDA]; // vpxord zmm3, zmm3, zmm2
        assert_eq!(decode_all(&code), Err(Violation::Decode { at: 0, byte: 0xEF }));
        // rsp-based memory operand would need a SIB byte
        let code = [0x62, 0xF1, 0x7C, 0x48, 0x11, 0xAC, 0x80, 0, 0, 0];
        assert_eq!(decode_all(&code), Err(Violation::Decode { at: 0, byte: 0xAC }));
    }
}
