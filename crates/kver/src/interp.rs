//! The abstract interpreter: a concrete walk of the decoded stream.
//!
//! GPRs carry a tiny abstract value — `Ptr(tensor, offset)` for the
//! six argument pointers (offsets advance through `add r64, imm32`),
//! `Imm` for loop counters, `Unknown` otherwise. zmm registers carry a
//! role (`Acc`/`Vec`) plus initialization state. The channel-block
//! back-edge is executed *concretely*: `mov r10, N; … dec; jnz` runs
//! all `N` iterations, so "every displacement across all loop-counter
//! values" is checked literally, not approximated. A step budget turns
//! tampered trip counts into [`Violation::Runaway`] instead of a hang.

use crate::decode::Inst;
use crate::{ClassCfg, Report, Tensor, Violation};

/// Interpreter step budget. The largest realistic kernels (deep-1×1
/// loops, full-row update sweeps) execute well under 10⁵ steps; the
/// budget only exists to bound tampered counters.
const MAX_STEPS: usize = 16_000_000;

/// GPR numbers the kernels may touch: the six System-V pointer
/// arguments (rdi rsi rdx rcx r8 r9) plus r10/r11 scratch.
const SANCTIONED: [u8; 8] = [1, 2, 6, 7, 8, 9, 10, 11];

#[derive(Clone, Copy, PartialEq)]
enum GprVal {
    /// One of the six tensor pointers, displaced by `off` bytes.
    Ptr(Tensor, i64),
    /// A known immediate (loop counter).
    Imm(i64),
    /// Anything else.
    Unknown,
}

#[derive(Clone, Copy, PartialEq)]
enum ZState {
    Uninit,
    /// Initialized accumulator (zeroed or loaded from the output).
    Acc,
    /// Initialized weight-stream vector.
    Vec,
}

/// Resolve the extent (bytes) governing `t`: prefetch pointers share
/// their compute counterpart's tensor extent.
fn extent_of(cfg: &ClassCfg, t: Tensor) -> usize {
    match t {
        Tensor::In | Tensor::PfIn => cfg.extents[0],
        Tensor::Wt | Tensor::PfWt => cfg.extents[1],
        Tensor::Out | Tensor::PfOut => cfg.extents[2],
    }
}

/// Check one resolved access against its tensor extent and alignment.
fn bounds(
    cfg: &ClassCfg,
    at: usize,
    t: Tensor,
    off: i64,
    size: u32,
    align: u32,
) -> Result<(), Violation> {
    let extent = extent_of(cfg, t);
    if off < 0 || off + size as i64 > extent as i64 {
        return Err(Violation::OutOfBounds { at, tensor: t, offset: off, size, extent });
    }
    if align > 1 && off % align as i64 != 0 {
        return Err(Violation::Misaligned { at, tensor: t, offset: off, align });
    }
    Ok(())
}

struct Machine {
    gpr: [GprVal; 16],
    zmm: [ZState; 32],
    /// Result of the last flag-setting instruction (`add`/`dec` on a
    /// known immediate), if concrete.
    flags: Option<i64>,
    /// Byte offsets of output vector stores, in execution order.
    writes: Vec<i64>,
    steps: usize,
}

impl Machine {
    fn new() -> Self {
        let mut gpr = [GprVal::Unknown; 16];
        gpr[7] = GprVal::Ptr(Tensor::In, 0);
        gpr[6] = GprVal::Ptr(Tensor::Wt, 0);
        gpr[2] = GprVal::Ptr(Tensor::Out, 0);
        gpr[1] = GprVal::Ptr(Tensor::PfIn, 0);
        gpr[8] = GprVal::Ptr(Tensor::PfWt, 0);
        gpr[9] = GprVal::Ptr(Tensor::PfOut, 0);
        Self { gpr, zmm: [ZState::Uninit; 32], flags: None, writes: Vec::new(), steps: 0 }
    }

    /// Resolve a memory-operand base register to `(tensor, offset)`.
    fn base(&self, at: usize, reg: u8) -> Result<(Tensor, i64), Violation> {
        if !SANCTIONED.contains(&reg) {
            return Err(Violation::UnsanctionedGpr { at, reg });
        }
        match self.gpr[reg as usize] {
            GprVal::Ptr(t, off) => Ok((t, off)),
            _ => Err(Violation::NonPointerBase { at, reg }),
        }
    }
}

/// Mark `zmm` as a legal initialized accumulator, or report why not.
fn init_acc(cfg: &ClassCfg, m: &mut Machine, at: usize, zmm: u8) -> Result<(), Violation> {
    if (zmm as usize) >= cfg.nacc {
        return Err(Violation::AccumulatorOutOfBudget { at, zmm, budget: cfg.nacc });
    }
    m.zmm[zmm as usize] = ZState::Acc;
    Ok(())
}

/// Mark `zmm` as a legal weight-stream vector, or report why not.
fn init_vec(cfg: &ClassCfg, m: &mut Machine, at: usize, zmm: u8) -> Result<(), Violation> {
    if zmm < cfg.wt_lo || zmm > cfg.wt_hi {
        return Err(Violation::WeightRegOutOfRange { at, zmm });
    }
    m.zmm[zmm as usize] = ZState::Vec;
    Ok(())
}

/// Execute the decoded stream against `cfg`. Returns the report on a
/// clean run; the first violation otherwise.
pub(crate) fn run(
    insts: &[(usize, Inst)],
    cfg: &ClassCfg,
    code_bytes: usize,
) -> Result<Report, Violation> {
    let mut m = Machine::new();
    let mut ip = 0usize;
    loop {
        let (at, inst) = insts[ip];
        m.steps += 1;
        if m.steps > MAX_STEPS {
            return Err(Violation::Runaway { steps: m.steps });
        }
        match inst {
            Inst::VecLoad { dst, base, disp } => {
                let (t, off) = m.base(at, base)?;
                match t {
                    Tensor::In => return Err(Violation::VectorLoadFromInput { at }),
                    Tensor::Wt => init_vec(cfg, &mut m, at, dst)?,
                    Tensor::Out => init_acc(cfg, &mut m, at, dst)?,
                    _ => return Err(Violation::PrefetchPointerComputeAccess { at, reg: base }),
                }
                bounds(cfg, at, t, off + disp as i64, 64, 64)?;
            }
            Inst::VecStore { src, base, disp } => {
                let (t, off) = m.base(at, base)?;
                match t {
                    Tensor::Out => {}
                    Tensor::In | Tensor::Wt => {
                        return Err(Violation::StoreToReadOnly { at, tensor: t })
                    }
                    _ => return Err(Violation::PrefetchPointerComputeAccess { at, reg: base }),
                }
                if (src as usize) >= cfg.nacc {
                    return Err(Violation::AccumulatorOutOfBudget {
                        at,
                        zmm: src,
                        budget: cfg.nacc,
                    });
                }
                if m.zmm[src as usize] == ZState::Uninit {
                    return Err(Violation::ReadBeforeInit { at, zmm: src });
                }
                let dst = off + disp as i64;
                bounds(cfg, at, t, dst, 64, 64)?;
                m.writes.push(dst);
            }
            Inst::FmaBcst { acc, mul, base, disp } => {
                let (t, off) = m.base(at, base)?;
                match t {
                    Tensor::In => {}
                    Tensor::Wt | Tensor::Out => {
                        return Err(Violation::BroadcastOutsideInput { at, tensor: t })
                    }
                    _ => return Err(Violation::PrefetchPointerComputeAccess { at, reg: base }),
                }
                if (acc as usize) >= cfg.nacc {
                    return Err(Violation::AccumulatorOutOfBudget {
                        at,
                        zmm: acc,
                        budget: cfg.nacc,
                    });
                }
                if m.zmm[acc as usize] == ZState::Uninit {
                    return Err(Violation::ReadBeforeInit { at, zmm: acc });
                }
                match m.zmm[mul as usize] {
                    ZState::Vec => {}
                    ZState::Uninit => return Err(Violation::ReadBeforeInit { at, zmm: mul }),
                    ZState::Acc => return Err(Violation::WeightRegOutOfRange { at, zmm: mul }),
                }
                bounds(cfg, at, t, off + disp as i64, 4, cfg.bcst_align)?;
            }
            Inst::Broadcast { dst, base, disp } => {
                let (t, off) = m.base(at, base)?;
                match t {
                    Tensor::In => {}
                    Tensor::Wt | Tensor::Out => {
                        return Err(Violation::BroadcastOutsideInput { at, tensor: t })
                    }
                    _ => return Err(Violation::PrefetchPointerComputeAccess { at, reg: base }),
                }
                init_vec(cfg, &mut m, at, dst)?;
                bounds(cfg, at, t, off + disp as i64, 4, cfg.bcst_align)?;
            }
            Inst::Zero { reg } => init_acc(cfg, &mut m, at, reg)?,
            Inst::Prefetch { base, disp } => {
                // prefetches are harmless at any alignment but must
                // still point inside their tensor (size-1 access)
                let (t, off) = m.base(at, base)?;
                bounds(cfg, at, t, off + disp as i64, 1, 1)?;
            }
            Inst::MovImm { dst, imm } => {
                if !SANCTIONED.contains(&dst) {
                    return Err(Violation::UnsanctionedGpr { at, reg: dst });
                }
                m.gpr[dst as usize] = GprVal::Imm(imm as i64);
            }
            Inst::AddImm { dst, imm } => {
                if !SANCTIONED.contains(&dst) {
                    return Err(Violation::UnsanctionedGpr { at, reg: dst });
                }
                m.flags = match &mut m.gpr[dst as usize] {
                    GprVal::Ptr(_, off) => {
                        *off += imm as i64;
                        None
                    }
                    GprVal::Imm(v) => {
                        *v += imm as i64;
                        Some(*v)
                    }
                    GprVal::Unknown => None,
                };
            }
            Inst::Dec { dst } => {
                if !SANCTIONED.contains(&dst) {
                    return Err(Violation::UnsanctionedGpr { at, reg: dst });
                }
                match &mut m.gpr[dst as usize] {
                    GprVal::Imm(v) => {
                        *v -= 1;
                        m.flags = Some(*v);
                    }
                    _ => return Err(Violation::UninitLoopCounter { at }),
                }
            }
            Inst::Jnz { target } => {
                let taken = match m.flags {
                    Some(v) => v != 0,
                    None => return Err(Violation::UninitLoopCounter { at }),
                };
                if taken {
                    // check_structure guaranteed target is a boundary
                    let idx = insts
                        .binary_search_by_key(&target, |(o, _)| *o as i64)
                        .expect("branch target validated");
                    ip = idx;
                    continue;
                }
            }
            Inst::Vzeroupper => {}
            Inst::Ret => break,
        }
        ip += 1;
    }

    // the stores must tile the output block exactly: compare the write
    // multiset against the expected (sorted) tile offsets
    let mut writes = m.writes.clone();
    writes.sort_unstable();
    if writes != cfg.tiles {
        let missing = cfg.tiles.iter().filter(|t| !contains(&writes, **t)).count();
        let unexpected = count_unexpected(&writes, &cfg.tiles);
        return Err(Violation::OutputTileMismatch { missing, unexpected });
    }

    Ok(Report {
        instructions: insts.len(),
        steps: m.steps,
        output_writes: m.writes.len(),
        code_bytes,
    })
}

fn contains(sorted: &[i64], v: i64) -> bool {
    sorted.binary_search(&v).is_ok()
}

/// Writes (with multiplicity) that exceed the expected multiset: a
/// two-pointer sorted-walk difference.
fn count_unexpected(writes: &[i64], tiles: &[i64]) -> usize {
    let (mut i, mut j, mut extra) = (0usize, 0usize, 0usize);
    while i < writes.len() {
        if j < tiles.len() && tiles[j] == writes[i] {
            i += 1;
            j += 1;
        } else if j < tiles.len() && tiles[j] < writes[i] {
            j += 1;
        } else {
            extra += 1;
            i += 1;
        }
    }
    extra
}
