//! Static verifier for JIT-emitted convolution kernels.
//!
//! The hottest code in this system is raw machine code assembled at
//! plan time (`jit::assemble_fwd`/`assemble_upd`/`assemble_quant`)
//! and executed through `unsafe` function pointers — no compiler, no
//! assembler, no checker between the emitter and the CPU. This crate
//! closes that gap with a static-analysis pass over the emitted bytes:
//!
//! 1. [`decode`] — a minimal x86-64 decoder covering *exactly* the
//!    encoding subset the emitter produces (EVEX maps 0F/0F38, legacy
//!    prefetch/loop scaffolding, `mod = 10` base + disp32 memory
//!    operands). Anything else is a typed [`Violation`].
//! 2. An abstract interpreter ([`verify`]) that walks the decoded
//!    stream — concretely executing the compact channel-block loop, so
//!    "all loop-counter values" is literal — and checks, against the
//!    [`KernelSpec`] the kernel was generated from:
//!    * **ABI invariants**: `vzeroupper` before every `ret` (the PR 5
//!      SSE-stall bug class), no writes to callee-saved GPRs or the
//!      stack, only the six argument pointers plus `r10`/`r11`
//!      scratch;
//!    * **register discipline**: accumulators within the
//!      `rbp·rbq ≤ 28` budget, weight registers confined to their
//!      class range, no read-before-init;
//!    * **memory bounds**: every load/store/prefetch displacement, at
//!      every loop iteration, lands inside the declared input/weight/
//!      output extents ([`microkernel::Extents`]) with 64-byte
//!      alignment on full-vector accesses, and the output writes tile
//!      the `RBP × RBQ` block *exactly* — no writes into physical
//!      padding, which padded fused plans require to stay zero.
//!
//! Verification needs no executable memory, so it runs on any host —
//! the `verify-kernels` binary sweeps the whole autotuner candidate
//! space through it. In debug and `--features jit/verify` builds,
//! `jit::CodeBuffer::from_kernel` runs this pass on every kernel ever
//! mapped. See DESIGN.md §12 for the abstract domains and the list of
//! properties deliberately *not* checked.

#![deny(missing_docs)]

pub mod decode;
mod interp;

use microkernel::{KernelShape, UpdShape};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use tensor::VLEN;

/// Which kernel class (and generating shape) a byte stream claims to
/// implement — the contract [`verify`] checks the bytes against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelSpec {
    /// f32 forward/backward kernel from [`jit::assemble_fwd`]-style
    /// emission for this [`KernelShape`].
    ///
    /// [`jit::assemble_fwd`]: https://docs.rs/jit
    FwdF32(KernelShape),
    /// f32 weight-gradient kernel for this [`UpdShape`] (pointer roles
    /// `in`/`dO`/`dW`).
    UpdF32(UpdShape),
    /// int16 forward kernel (VNNI path): i16 input/weights, i32
    /// output.
    QuantI16(KernelShape),
}

/// The six tensors a kernel can address, one per ABI pointer argument.
///
/// For [`KernelSpec::UpdF32`] the roles read `In`/`dO`/`dW`, but the
/// extents bookkeeping is identical so the names stay generic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tensor {
    /// Compute input activations (`rdi`).
    In,
    /// Compute weights — dO for the update kernel (`rsi`).
    Wt,
    /// Compute output — dW for the update kernel (`rdx`).
    Out,
    /// Prefetch input pointer (`rcx`).
    PfIn,
    /// Prefetch weight pointer (`r8`).
    PfWt,
    /// Prefetch output pointer (`r9`).
    PfOut,
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tensor::In => "input",
            Tensor::Wt => "weights",
            Tensor::Out => "output",
            Tensor::PfIn => "prefetch-input",
            Tensor::PfWt => "prefetch-weights",
            Tensor::PfOut => "prefetch-output",
        })
    }
}

/// A verification failure. Every variant pins one distinct defect
/// class; the mutation tests in `crates/jit/tests` assert the mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The stream ends in the middle of an instruction.
    Truncated {
        /// Byte offset of the partial instruction.
        at: usize,
    },
    /// A byte sequence outside the emitter's encoding subset.
    Decode {
        /// Byte offset of the unrecognized instruction.
        at: usize,
        /// The offending byte (first unexpected byte of the sequence).
        byte: u8,
    },
    /// A branch that does not target an earlier instruction boundary.
    BadBranch {
        /// Byte offset of the branch instruction.
        at: usize,
        /// The (absolute) byte offset it targets.
        target: i64,
    },
    /// The stream does not end with `ret` (or contains none at all).
    MissingRet,
    /// A `ret` not immediately preceded by `vzeroupper` — the ABI bug
    /// class behind PR 5's ~5× SSE post-op stall.
    MissingVzeroupper {
        /// Byte offset of the offending `ret`.
        at: usize,
    },
    /// An instruction names a GPR outside the sanctioned set (the six
    /// System-V argument registers plus `r10`/`r11` scratch) — e.g. a
    /// callee-saved register or the stack pointer.
    UnsanctionedGpr {
        /// Byte offset of the instruction.
        at: usize,
        /// Hardware GPR number (0-15).
        reg: u8,
    },
    /// A memory access through a register that does not hold a tensor
    /// pointer (an immediate, scratch, or clobbered pointer).
    NonPointerBase {
        /// Byte offset of the access.
        at: usize,
        /// Hardware GPR number used as base.
        reg: u8,
    },
    /// `dec`/`jnz` on a register whose value is not a known counter —
    /// the loop trip count would be unbounded or undefined.
    UninitLoopCounter {
        /// Byte offset of the instruction.
        at: usize,
    },
    /// The concrete walk exceeded the step budget — a runaway loop.
    Runaway {
        /// Steps executed before giving up.
        steps: usize,
    },
    /// An accumulator register at or beyond the kernel's budget
    /// (`rbp·rbq` for forward kernels, `VLEN` for update kernels) —
    /// e.g. an FMA retargeted into the weight-register range.
    AccumulatorOutOfBudget {
        /// Byte offset of the instruction.
        at: usize,
        /// The offending zmm register.
        zmm: u8,
        /// The kernel's accumulator budget.
        budget: usize,
    },
    /// A weight-stream vector register outside the class's range
    /// (`zmm28..31` for forward kernels, `zmm16..31` for update).
    WeightRegOutOfRange {
        /// Byte offset of the instruction.
        at: usize,
        /// The offending zmm register.
        zmm: u8,
    },
    /// A vector register read before anything initialized it.
    ReadBeforeInit {
        /// Byte offset of the reading instruction.
        at: usize,
        /// The uninitialized zmm register.
        zmm: u8,
    },
    /// A vector store through anything but the output pointer.
    StoreToReadOnly {
        /// Byte offset of the store.
        at: usize,
        /// The tensor the store would corrupt.
        tensor: Tensor,
    },
    /// A full-width vector load through the input pointer — kernels
    /// only read input via embedded broadcasts.
    VectorLoadFromInput {
        /// Byte offset of the load.
        at: usize,
    },
    /// An embedded broadcast from a non-input tensor.
    BroadcastOutsideInput {
        /// Byte offset of the instruction.
        at: usize,
        /// The tensor it reads instead.
        tensor: Tensor,
    },
    /// A compute load/store/FMA through one of the three prefetch
    /// pointers (valid only as prefetch addresses).
    PrefetchPointerComputeAccess {
        /// Byte offset of the access.
        at: usize,
        /// Hardware GPR number of the prefetch pointer.
        reg: u8,
    },
    /// An access (at some loop iteration) outside the declared extent
    /// of its tensor.
    OutOfBounds {
        /// Byte offset of the access.
        at: usize,
        /// The tensor accessed.
        tensor: Tensor,
        /// Resolved byte offset from the tensor base.
        offset: i64,
        /// Access size in bytes (1 for prefetches).
        size: u32,
        /// Declared tensor extent in bytes.
        extent: usize,
    },
    /// An access violating its required alignment (64 bytes for
    /// full-vector loads/stores, element-size for broadcasts).
    Misaligned {
        /// Byte offset of the access.
        at: usize,
        /// The tensor accessed.
        tensor: Tensor,
        /// Resolved byte offset from the tensor base.
        offset: i64,
        /// Required alignment in bytes.
        align: u32,
    },
    /// The set of output vectors written does not equal the expected
    /// `RBP × RBQ` tile (each vector exactly once) — writes into
    /// physical padding, skipped pixels, or double stores.
    OutputTileMismatch {
        /// Expected tile vectors never written.
        missing: usize,
        /// Writes (including duplicates) outside the expected set.
        unexpected: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Truncated { at } => {
                write!(f, "instruction stream truncated mid-instruction at byte {at}")
            }
            Violation::Decode { at, byte } => {
                write!(f, "unrecognized encoding at byte {at} (byte {byte:#04x})")
            }
            Violation::BadBranch { at, target } => {
                write!(f, "branch at byte {at} targets {target}, not an earlier boundary")
            }
            Violation::MissingRet => write!(f, "stream does not end with ret"),
            Violation::MissingVzeroupper { at } => {
                write!(f, "ret at byte {at} without preceding vzeroupper")
            }
            Violation::UnsanctionedGpr { at, reg } => {
                write!(f, "unsanctioned GPR r{reg} at byte {at}")
            }
            Violation::NonPointerBase { at, reg } => {
                write!(f, "memory access through non-pointer r{reg} at byte {at}")
            }
            Violation::UninitLoopCounter { at } => {
                write!(f, "loop control without a concrete counter at byte {at}")
            }
            Violation::Runaway { steps } => {
                write!(f, "runaway loop: exceeded {steps} interpreted steps")
            }
            Violation::AccumulatorOutOfBudget { at, zmm, budget } => {
                write!(f, "zmm{zmm} used as accumulator at byte {at} (budget {budget})")
            }
            Violation::WeightRegOutOfRange { at, zmm } => {
                write!(f, "zmm{zmm} used in the weight stream at byte {at}")
            }
            Violation::ReadBeforeInit { at, zmm } => {
                write!(f, "zmm{zmm} read before initialization at byte {at}")
            }
            Violation::StoreToReadOnly { at, tensor } => {
                write!(f, "store into read-only {tensor} tensor at byte {at}")
            }
            Violation::VectorLoadFromInput { at } => {
                write!(f, "full-vector load from the input tensor at byte {at}")
            }
            Violation::BroadcastOutsideInput { at, tensor } => {
                write!(f, "broadcast from {tensor} (not input) at byte {at}")
            }
            Violation::PrefetchPointerComputeAccess { at, reg } => {
                write!(f, "compute access through prefetch pointer r{reg} at byte {at}")
            }
            Violation::OutOfBounds { at, tensor, offset, size, extent } => write!(
                f,
                "{size}-byte access at {tensor}[{offset}] exceeds extent {extent} (byte {at})"
            ),
            Violation::Misaligned { at, tensor, offset, align } => {
                write!(f, "{tensor}[{offset}] not {align}-byte aligned (byte {at})")
            }
            Violation::OutputTileMismatch { missing, unexpected } => write!(
                f,
                "output writes do not tile the block: {missing} missing, {unexpected} unexpected"
            ),
        }
    }
}

impl std::error::Error for Violation {}

/// Summary of one successful verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Report {
    /// Decoded instructions in the stream.
    pub instructions: usize,
    /// Instructions the abstract interpreter executed (loop bodies
    /// count once per iteration).
    pub steps: usize,
    /// Output vectors stored (equals the expected tile size).
    pub output_writes: usize,
    /// Code size in bytes.
    pub code_bytes: usize,
}

/// Process-wide verification counters (observable through
/// `conv::kernel_verify_stats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Kernels verified successfully since process start.
    pub kernels_verified: usize,
    /// Decoded instructions across those kernels.
    pub instructions_checked: usize,
}

static KERNELS: AtomicUsize = AtomicUsize::new(0);
static INSTRUCTIONS: AtomicUsize = AtomicUsize::new(0);

/// Snapshot of the process-wide verification counters.
pub fn stats() -> VerifyStats {
    VerifyStats {
        kernels_verified: KERNELS.load(Ordering::Relaxed),
        instructions_checked: INSTRUCTIONS.load(Ordering::Relaxed),
    }
}

/// Verify that `code` is a well-formed kernel for `spec`.
///
/// Decodes the stream, checks the static ABI structure, then walks it
/// with the abstract interpreter (executing loops concretely). Needs
/// no executable memory. Panics if `spec`'s shape fails its own
/// `validate()` — invalid shapes must be rejected before emission, not
/// handed to the verifier.
pub fn verify(code: &[u8], spec: &KernelSpec) -> Result<Report, Violation> {
    let cfg = ClassCfg::for_spec(spec);
    let insts = decode::decode_all(code)?;
    check_structure(code.len(), &insts)?;
    let report = interp::run(&insts, &cfg, code.len())?;
    KERNELS.fetch_add(1, Ordering::Relaxed);
    INSTRUCTIONS.fetch_add(report.instructions, Ordering::Relaxed);
    Ok(report)
}

/// Static stream structure: ends in `ret`, every `ret` directly
/// preceded by `vzeroupper`, branches target earlier boundaries.
fn check_structure(len: usize, insts: &[(usize, decode::Inst)]) -> Result<(), Violation> {
    use decode::Inst;
    match insts.last() {
        Some((_, Inst::Ret)) => {}
        _ => return Err(Violation::MissingRet),
    }
    for (i, (at, inst)) in insts.iter().enumerate() {
        match inst {
            Inst::Ret => {
                let clean = i > 0 && matches!(insts[i - 1].1, Inst::Vzeroupper);
                if !clean {
                    return Err(Violation::MissingVzeroupper { at: *at });
                }
            }
            Inst::Jnz { target } => {
                let backward = *target >= 0 && (*target as usize) < *at && (*target as usize) < len;
                let boundary = insts.binary_search_by_key(target, |(o, _)| *o as i64).is_ok();
                if !backward || !boundary {
                    return Err(Violation::BadBranch { at: *at, target: *target });
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Internal: per-class configuration shared with the interpreter.
pub(crate) struct ClassCfg {
    pub nacc: usize,
    pub wt_lo: u8,
    pub wt_hi: u8,
    /// Byte extents for In/Wt/Out.
    pub extents: [usize; 3],
    /// Broadcast element alignment (4 for f32, 2 for i16 pairs).
    pub bcst_align: u32,
    /// Expected output-store byte offsets (sorted).
    pub tiles: Vec<i64>,
}

impl ClassCfg {
    fn new(
        nacc: usize,
        wt: (u8, u8),
        extents: [usize; 3],
        bcst_align: u32,
        tiles: Vec<i64>,
    ) -> Self {
        let mut tiles = tiles;
        tiles.sort_unstable();
        Self { nacc, wt_lo: wt.0, wt_hi: wt.1, extents, bcst_align, tiles }
    }

    pub(crate) fn for_spec(spec: &KernelSpec) -> Self {
        match spec {
            KernelSpec::FwdF32(sh) => {
                sh.validate();
                let e = sh.extents();
                Self::new(
                    sh.accumulators(),
                    (28, 31),
                    [e.input * 4, e.weights * 4, e.output * 4],
                    4,
                    sh.out_tile_offsets().iter().map(|&o| (o * 4) as i64).collect(),
                )
            }
            KernelSpec::QuantI16(sh) => {
                sh.validate();
                let e = sh.extents();
                Self::new(
                    sh.accumulators(),
                    (28, 31),
                    [e.input * 2, e.weights * 2, e.output * 4],
                    2,
                    sh.out_tile_offsets().iter().map(|&o| (o * 4) as i64).collect(),
                )
            }
            KernelSpec::UpdF32(sh) => {
                sh.validate();
                let e = sh.extents();
                Self::new(
                    VLEN,
                    (16, 31),
                    [e.input * 4, e.weights * 4, e.output * 4],
                    4,
                    sh.out_tile_offsets().iter().map(|&o| (o * 4) as i64).collect(),
                )
            }
        }
    }
}
