//! Property-based tests: randomly-shaped JIT-generated kernels agree
//! with the scalar oracles (and bit-exactly for the integer kernels).

use jit::{assemble_fwd, assemble_quant, CodeBuffer};
use microkernel::KernelShape;
use proptest::prelude::*;
use tensor::rng::SplitMix64;
use tensor::{Norms, VLEN};

fn shape(rbp: usize, rbq: usize, r: usize, s: usize, stride: usize, cbi: usize) -> KernelShape {
    let in_cols = (rbq - 1) * stride + s + 2;
    let in_rows = (rbp - 1) * stride + r + 1;
    KernelShape {
        rbp,
        rbq,
        r,
        s,
        stride,
        cb_inner: cbi,
        in_row_stride: in_cols * VLEN,
        in_cb_stride: in_rows * in_cols * VLEN + 48,
        out_row_stride: (rbq + 1) * VLEN,
        out_col_stride: VLEN,
        init_zero: false,
        prefetch: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn jit_fwd_equals_scalar(
        rbp in 1usize..3,
        rbq in 1usize..15,
        r in 1usize..4,
        s in 1usize..4,
        stride in 1usize..3,
        cbi in 1usize..9,
        prefetch in any::<bool>(),
        seed in 0u64..10_000,
    ) {
        prop_assume!(rbp * rbq <= 28);
        if !jit::jit_available() {
            return Ok(());
        }
        let mut sh = shape(rbp, rbq, r, s, stride, cbi);
        sh.prefetch = prefetch;
        let in_rows = (rbp - 1) * stride + r + 1;
        let in_len = cbi * sh.in_cb_stride + in_rows * sh.in_row_stride;
        let wt_len = cbi * r * s * 256;
        let out_len = rbp * sh.out_row_stride + rbq * VLEN + VLEN;
        let mut rng = SplitMix64::new(seed);
        let mut inp = vec![0.0f32; in_len];
        let mut wt = vec![0.0f32; wt_len];
        let mut out0 = vec![0.0f32; out_len];
        rng.fill_f32(&mut inp);
        rng.fill_f32(&mut wt);
        rng.fill_f32(&mut out0);
        let mut a = out0.clone();
        let mut b = out0;
        // SAFETY: buffers sized by the shape's extents above; the JIT
        // kernel was statically verified by from_kernel.
        unsafe {
            microkernel::fwd::fwd_scalar(
                &sh, inp.as_ptr(), wt.as_ptr(), a.as_mut_ptr(),
                std::ptr::null(), std::ptr::null(), std::ptr::null(),
            );
            let buf = CodeBuffer::from_kernel(&assemble_fwd(&sh), &jit::KernelSpec::FwdF32(sh)).unwrap();
            (buf.as_f32_kernel())(
                inp.as_ptr(), wt.as_ptr(), b.as_mut_ptr(),
                inp.as_ptr(), wt.as_ptr(), b.as_ptr(),
            );
        }
        let n = Norms::compare(&a, &b);
        prop_assert!(n.ok(1e-5), "{sh:?}: {n}");
    }

    #[test]
    fn jit_quant_bit_exact(
        rbq in 1usize..15,
        r in 1usize..4,
        stride in 1usize..3,
        cbi in 1usize..9,
        seed in 0u64..10_000,
    ) {
        if !jit::jit_available() || !microkernel::has_vnni() {
            return Ok(());
        }
        let sh = shape(1, rbq, r, r, stride, cbi);
        let in_rows = r + 1;
        let in_len = cbi * sh.in_cb_stride + in_rows * sh.in_row_stride;
        let wt_len = cbi * r * r * 256;
        let out_len = sh.out_row_stride + rbq * VLEN + VLEN;
        let mut rng = SplitMix64::new(seed);
        let mut inp = vec![0i16; in_len];
        let mut wt = vec![0i16; wt_len];
        let mut out0 = vec![0i32; out_len];
        rng.fill_i16(&mut inp);
        rng.fill_i16(&mut wt);
        for x in out0.iter_mut() {
            *x = rng.next_i16() as i32;
        }
        let mut a = out0.clone();
        let mut b = out0;
        // SAFETY: buffers sized by the shape's extents above; the JIT
        // kernel was statically verified by from_kernel.
        unsafe {
            microkernel::quant::quant_scalar(
                &sh, inp.as_ptr(), wt.as_ptr(), a.as_mut_ptr(),
                std::ptr::null(), std::ptr::null(), std::ptr::null(),
            );
            let buf =
                CodeBuffer::from_kernel(&assemble_quant(&sh), &jit::KernelSpec::QuantI16(sh)).unwrap();
            (buf.as_i16_kernel())(
                inp.as_ptr(), wt.as_ptr(), b.as_mut_ptr(),
                inp.as_ptr(), wt.as_ptr(), b.as_ptr(),
            );
        }
        prop_assert_eq!(a, b);
    }
}
