//! Mutation tests for the static kernel verifier: take a *real*
//! emitted kernel, corrupt it the way a codegen bug (or memory
//! corruption) would, and assert the verifier rejects it with the
//! expected typed [`kver::Violation`]. Each mutation is located by
//! decoding the pristine stream first, so the tests stay valid as the
//! emitter's instruction schedule evolves.
//!
//! None of this needs executable memory: `kver::verify` works on the
//! raw bytes, so the suite runs on any host.

use jit::{assemble_fwd, assemble_quant, assemble_upd};
use kver::decode::{decode_all, Inst};
use kver::{verify, KernelSpec, Tensor, Violation};
use microkernel::{KernelShape, UpdShape};
use tensor::VLEN;

/// A small forward shape covering every structural feature except the
/// machine loop (`cb_inner = 1` keeps instruction offsets stable under
/// splicing).
fn fwd_shape(cb_inner: usize) -> KernelShape {
    let (rbp, rbq, r, s, stride) = (2usize, 3usize, 3usize, 3usize, 1usize);
    let in_cols = (rbq - 1) * stride + s + 2;
    let in_rows = (rbp - 1) * stride + r + 1;
    KernelShape {
        rbp,
        rbq,
        r,
        s,
        stride,
        cb_inner,
        in_row_stride: in_cols * VLEN,
        in_cb_stride: in_rows * in_cols * VLEN + 48,
        out_row_stride: (rbq + 1) * VLEN,
        out_col_stride: VLEN,
        init_zero: false,
        prefetch: false,
    }
}

fn upd_shape() -> UpdShape {
    UpdShape {
        bp: 4,
        bq: 7,
        stride: 1,
        in_row_stride: 9 * VLEN,
        do_row_stride: 8 * VLEN,
        prefetch: false,
    }
}

/// Assembled kernel + its spec + decoded instruction index.
struct Subject {
    code: Vec<u8>,
    spec: KernelSpec,
    insts: Vec<(usize, Inst)>,
}

fn fwd_subject(cb_inner: usize) -> Subject {
    let sh = fwd_shape(cb_inner);
    let code = assemble_fwd(&sh);
    let spec = KernelSpec::FwdF32(sh);
    verify(&code, &spec).expect("pristine kernel must verify");
    let insts = decode_all(&code).unwrap();
    Subject { code, spec, insts }
}

impl Subject {
    /// Byte offset of the first instruction matching `pred`.
    fn find(&self, pred: impl Fn(&Inst) -> bool) -> usize {
        self.insts.iter().find(|(_, i)| pred(i)).expect("instruction present").0
    }
}

#[test]
fn pristine_kernels_of_all_three_classes_verify() {
    let sh = fwd_shape(4);
    verify(&assemble_fwd(&sh), &KernelSpec::FwdF32(sh)).unwrap();
    verify(&assemble_quant(&sh), &KernelSpec::QuantI16(sh)).unwrap();
    let us = upd_shape();
    verify(&assemble_upd(&us), &KernelSpec::UpdF32(us)).unwrap();
}

#[test]
fn dropped_vzeroupper_is_rejected() {
    let s = fwd_subject(1);
    let at = s.find(|i| matches!(i, Inst::Vzeroupper));
    let mut m = s.code.clone();
    m.drain(at..at + 3); // vzeroupper is the 3-byte C5 F8 77
    assert!(
        matches!(verify(&m, &s.spec), Err(Violation::MissingVzeroupper { .. })),
        "ret without vzeroupper must be a MissingVzeroupper"
    );
}

#[test]
fn out_of_bounds_store_displacement_is_rejected() {
    let s = fwd_subject(1);
    let at = s.find(|i| matches!(i, Inst::VecStore { .. }));
    let mut m = s.code.clone();
    // disp32 lives in bytes 6..10 of the EVEX form; 16 MiB is far
    // outside any declared output extent but still 64-byte aligned
    m[at + 6..at + 10].copy_from_slice(&(1i32 << 24).to_le_bytes());
    assert!(
        matches!(verify(&m, &s.spec), Err(Violation::OutOfBounds { tensor: Tensor::Out, .. })),
        "bumped store disp32 must be an OutOfBounds on the output tensor"
    );
}

#[test]
fn misaligned_store_displacement_is_rejected() {
    let s = fwd_subject(1);
    let at = s.find(|i| matches!(i, Inst::VecStore { disp: 0, .. }));
    let mut m = s.code.clone();
    m[at + 6..at + 10].copy_from_slice(&4i32.to_le_bytes());
    assert!(
        matches!(
            verify(&m, &s.spec),
            Err(Violation::Misaligned { tensor: Tensor::Out, offset: 4, align: 64, .. })
        ),
        "a 4-byte-offset vector store must be a Misaligned"
    );
}

#[test]
fn accumulator_retargeted_into_weight_range_is_rejected() {
    let s = fwd_subject(1);
    let at = s.find(|i| matches!(i, Inst::FmaBcst { acc: 0, .. }));
    let mut m = s.code.clone();
    // acc zmm0 -> zmm28: modrm.reg = 4, EVEX R and R' flip to extended
    m[at + 1] &= !(0x80 | 0x10);
    m[at + 5] = (m[at + 5] & 0b1100_0111) | (4 << 3);
    assert!(
        matches!(verify(&m, &s.spec), Err(Violation::AccumulatorOutOfBudget { zmm: 28, .. })),
        "an FMA accumulating into zmm28 must be an AccumulatorOutOfBudget"
    );
}

#[test]
fn truncated_stream_is_rejected() {
    let s = fwd_subject(1);
    // cutting two bytes removes `ret` and splits `vzeroupper`
    let cut = &s.code[..s.code.len() - 2];
    assert!(matches!(verify(cut, &s.spec), Err(Violation::Truncated { .. })));
    // cutting exactly `ret` leaves whole instructions but no return
    let cut = &s.code[..s.code.len() - 1];
    assert_eq!(verify(cut, &s.spec), Err(Violation::MissingRet));
}

#[test]
fn foreign_bytes_are_rejected() {
    let s = fwd_subject(1);
    let mut m = s.code.clone();
    m[0] = 0x90; // NOP: valid x86, not part of the emitter's subset
    assert_eq!(verify(&m, &s.spec), Err(Violation::Decode { at: 0, byte: 0x90 }));
}

#[test]
fn store_through_readonly_pointer_is_rejected() {
    let s = fwd_subject(1);
    let at = s.find(|i| matches!(i, Inst::VecStore { base: 2, .. }));
    let mut m = s.code.clone();
    // retarget the store base from rdx (output) to rsi (weights)
    m[at + 5] = (m[at + 5] & 0b1111_1000) | 6;
    assert!(
        matches!(verify(&m, &s.spec), Err(Violation::StoreToReadOnly { tensor: Tensor::Wt, .. })),
        "a store through the weights pointer must be a StoreToReadOnly"
    );
}

#[test]
fn duplicated_tile_store_is_rejected() {
    let s = fwd_subject(1);
    // redirect the second output store onto the first store's offset:
    // still in bounds and aligned, but the tile multiset is now wrong
    let stores: Vec<(usize, i32)> = s
        .insts
        .iter()
        .filter_map(|(at, i)| match i {
            Inst::VecStore { disp, .. } => Some((*at, *disp)),
            _ => None,
        })
        .collect();
    assert!(stores.len() >= 2);
    let (at, _) = stores[1];
    let (_, first_disp) = stores[0];
    let mut m = s.code.clone();
    m[at + 6..at + 10].copy_from_slice(&first_disp.to_le_bytes());
    assert_eq!(
        verify(&m, &s.spec),
        Err(Violation::OutputTileMismatch { missing: 1, unexpected: 1 })
    );
}

#[test]
fn retargeted_back_edge_is_rejected() {
    let s = fwd_subject(8); // cb_inner = 8 takes the machine-loop path
    let at = s.find(|i| matches!(i, Inst::Jnz { .. }));
    let mut m = s.code.clone();
    let rel = i32::from_le_bytes([m[at + 2], m[at + 3], m[at + 4], m[at + 5]]);
    m[at + 2..at + 6].copy_from_slice(&(rel + 1).to_le_bytes());
    assert!(
        matches!(verify(&m, &s.spec), Err(Violation::BadBranch { .. })),
        "a back-edge into the middle of an instruction must be a BadBranch"
    );
}

#[test]
fn loop_counter_in_callee_saved_register_is_rejected() {
    let s = fwd_subject(8);
    let at = s.find(|i| matches!(i, Inst::MovImm { dst: 10, .. }));
    let mut m = s.code.clone();
    // mov r10, imm -> mov rbx, imm (drop REX.B, modrm.rm 2 -> 3)
    m[at] = 0x48;
    m[at + 2] = 0xC3;
    assert_eq!(
        verify(&m, &s.spec),
        Err(Violation::UnsanctionedGpr { at, reg: 3 }),
        "writing the callee-saved rbx must be an UnsanctionedGpr"
    );
}

#[test]
fn dec_of_an_unknown_register_is_rejected() {
    let s = fwd_subject(8);
    let at = s.find(|i| matches!(i, Inst::Dec { dst: 10 }));
    let mut m = s.code.clone();
    m[at + 2] = 0xCB; // dec r10 -> dec r11 (scratch, but holds no counter)
    assert_eq!(verify(&m, &s.spec), Err(Violation::UninitLoopCounter { at }));
}

#[test]
fn runaway_trip_count_is_rejected() {
    let s = fwd_subject(8);
    let at = s.find(|i| matches!(i, Inst::MovImm { dst: 10, .. }));
    let mut m = s.code.clone();
    m[at + 3..at + 7].copy_from_slice(&i32::MAX.to_le_bytes());
    // also zero the pointer advances so the spinning loop stays in
    // bounds — otherwise an OutOfBounds fires first
    for (at, inst) in &s.insts {
        if matches!(inst, Inst::AddImm { .. }) {
            m[at + 3..at + 7].copy_from_slice(&0i32.to_le_bytes());
        }
    }
    assert!(
        matches!(verify(&m, &s.spec), Err(Violation::Runaway { .. })),
        "a 2^31 trip count must exhaust the step budget, not hang"
    );
}

#[test]
fn quant_out_of_bounds_input_broadcast_is_rejected() {
    let sh = fwd_shape(2);
    let code = assemble_quant(&sh);
    let spec = KernelSpec::QuantI16(sh);
    verify(&code, &spec).unwrap();
    let insts = decode_all(&code).unwrap();
    let at = insts.iter().find(|(_, i)| matches!(i, Inst::FmaBcst { base: 7, .. })).unwrap().0;
    let mut m = code.clone();
    m[at + 6..at + 10].copy_from_slice(&(1i32 << 24).to_le_bytes());
    assert!(matches!(verify(&m, &spec), Err(Violation::OutOfBounds { tensor: Tensor::In, .. })));
}

#[test]
fn upd_panel_store_out_of_bounds_is_rejected() {
    let us = upd_shape();
    let code = assemble_upd(&us);
    let spec = KernelSpec::UpdF32(us);
    verify(&code, &spec).unwrap();
    let insts = decode_all(&code).unwrap();
    let at = insts.iter().find(|(_, i)| matches!(i, Inst::VecStore { .. })).unwrap().0;
    let mut m = code.clone();
    // one vector past the 16×16 dW panel, still 64-byte aligned
    m[at + 6..at + 10].copy_from_slice(&((VLEN * VLEN * 4) as i32).to_le_bytes());
    assert!(matches!(verify(&m, &spec), Err(Violation::OutOfBounds { tensor: Tensor::Out, .. })));
}
