//! Runtime x86-64 code generation for direct-convolution kernels.
//!
//! This crate is the faithful reproduction of the paper's central
//! mechanism: *"we implemented a runtime just-in-time (JIT) code
//! generator following the ideas presented in \[LIBXSMM\]"* (Section
//! II-D). At layer-setup time a [`microkernel::KernelShape`] is
//! assembled into straight-line AVX-512 machine code in an executable
//! buffer:
//!
//! * accumulators live in `zmm0..zmm27` — the whole `RBP × RBQ` output
//!   tile stays in registers across the `R × S × C` reduction,
//! * weights load into `zmm28..zmm31` with plain vector moves,
//! * every FMA is an EVEX `vfmadd231ps` with an *embedded 32-bit
//!   broadcast memory operand* — the exact "fused memory operand"
//!   instruction sequence the paper discusses (including its ≈15%
//!   µop-split penalty on SKX),
//! * software prefetches (`prefetcht0/t1`) for the three *next
//!   invocation* pointers of the 6-argument ABI are sprinkled through
//!   the FMA stream (Section II-E),
//! * int16 kernels emit `vpdpwssd` (AVX-512 VNNI) — our stand-in for
//!   Knights Mill's `4VNNIW` (Section II-K).
//!
//! The kernels use the System-V calling convention with six pointer
//! arguments (`rdi, rsi, rdx, rcx, r8, r9`) — compute input / weights /
//! output plus the three prefetch pointers, exactly the kernel-streams
//! replay ABI of Algorithm 5.
//!
//! On hosts without AVX-512 (or sandboxes denying executable mappings,
//! see [`jit_available`]) engines fall back to the monomorphized
//! intrinsics kernels in the `microkernel` crate.

pub mod buffer;
pub mod emit;
pub mod fwd;
pub mod quant;
pub mod upd;

pub use buffer::{CodeBuffer, JitError};
pub use fwd::assemble_fwd;
pub use quant::assemble_quant;
pub use upd::assemble_upd;

/// Re-exported verifier spec: callers mapping assembled kernels via
/// [`CodeBuffer::from_kernel`] pass the matching `KernelSpec` variant
/// (`FwdF32` / `UpdF32` / `QuantI16`) wrapping the shape the kernel
/// was assembled from.
pub use kver::KernelSpec;

/// ABI of the generated f32 kernels: `(in, wt, out, pf_in, pf_wt,
/// pf_out)`. For the weight-update kernel the roles are `(in, dO, dW,
/// pf_in, pf_dO, pf_dW)`.
pub type F32Kernel =
    unsafe extern "C" fn(*const f32, *const f32, *mut f32, *const f32, *const f32, *const f32);

/// ABI of the generated int16 kernels.
pub type I16Kernel =
    unsafe extern "C" fn(*const i16, *const i16, *mut i32, *const i16, *const i16, *const i32);

/// Whether this process can map and execute generated code *and* the
/// host has AVX-512 (both are required to use the JIT backend). The
/// probe maps one page, writes a `ret`-immediately stub, and calls it;
/// the result is cached.
pub fn jit_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if !std::arch::is_x86_feature_detected!("avx512f") {
                return false;
            }
            // mov eax, 42; ret
            let stub = [0xB8u8, 42, 0, 0, 0, 0xC3];
            match CodeBuffer::from_code(&stub) {
                Ok(buf) => {
                    // SAFETY: the stub above is a complete nullary function.
                    let f: extern "C" fn() -> i32 = unsafe { std::mem::transmute(buf.as_ptr()) };
                    f() == 42
                }
                Err(_) => false,
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_stable() {
        let a = jit_available();
        let b = jit_available();
        assert_eq!(a, b);
    }
}
