//! x86-64 instruction emitter: exactly the EVEX/legacy encodings the
//! convolution kernels need, nothing more.
//!
//! Every encoder was validated against GNU `as` output (see the
//! `ground_truth_encodings` test). Memory operands always use
//! `mod = 10` (base + disp32) — one form, no SIB, no compressed-disp8
//! corner cases. Base registers are restricted to the argument/scratch
//! registers the kernels use, none of which require a SIB byte.

/// General-purpose registers usable as memory bases / loop counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gpr {
    /// Argument 1: compute input pointer.
    Rdi,
    /// Argument 2: weight pointer.
    Rsi,
    /// Argument 3: output pointer.
    Rdx,
    /// Argument 4: prefetch input pointer.
    Rcx,
    /// Argument 5: prefetch weight pointer.
    R8,
    /// Argument 6: prefetch output pointer.
    R9,
    /// Scratch (loop counter).
    R10,
    /// Scratch.
    R11,
}

impl Gpr {
    /// Hardware register number (0-15).
    #[inline]
    pub fn num(self) -> u8 {
        match self {
            Gpr::Rdi => 7,
            Gpr::Rsi => 6,
            Gpr::Rdx => 2,
            Gpr::Rcx => 1,
            Gpr::R8 => 8,
            Gpr::R9 => 9,
            Gpr::R10 => 10,
            Gpr::R11 => 11,
        }
    }

    #[inline]
    fn low3(self) -> u8 {
        self.num() & 7
    }

    #[inline]
    fn ext(self) -> bool {
        self.num() >= 8
    }
}

/// Prefetch hint levels (modrm.reg values of `0F 18 /r`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchHint {
    /// `prefetcht0` — into L1 (paper's first level, same-invocation data).
    T0,
    /// `prefetcht1` — into L2 (paper's second level, next invocation).
    T1,
}

/// Instruction stream under construction.
#[derive(Default)]
pub struct Emitter {
    buf: Vec<u8>,
}

/// Opcode maps.
const MAP_0F: u8 = 0b001;
const MAP_0F38: u8 = 0b010;

/// Mandatory-prefix field values.
const PP_NONE: u8 = 0b00;
const PP_66: u8 = 0b01;
const PP_F3: u8 = 0b10;

impl Emitter {
    /// Fresh empty stream.
    pub fn new() -> Self {
        Self { buf: Vec::with_capacity(4096) }
    }

    /// Bytes emitted so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and return the code bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    #[inline]
    fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    #[inline]
    fn imm32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// EVEX instruction with a `[base + disp32]` memory operand.
    // The nine operands mirror the EVEX encoding fields one-to-one;
    // bundling them into a struct would only rename them.
    #[allow(clippy::too_many_arguments)]
    fn evex_mem(
        &mut self,
        map: u8,
        pp: u8,
        opcode: u8,
        reg: u8,  // zmm destination (or source for stores)
        vvvv: u8, // second register operand (0 when unused)
        base: Gpr,
        disp: i32,
        bcst: bool,
    ) {
        debug_assert!(reg < 32 && vvvv < 32);
        let p0 = (u8::from(reg & 8 == 0) << 7)
            | (1 << 6) // no index register
            | (u8::from(!base.ext()) << 5)
            | (u8::from(reg & 16 == 0) << 4)
            | map;
        let p1 = ((!vvvv & 0xF) << 3) | (1 << 2) | pp;
        let p2 = (0b10 << 5) | (u8::from(bcst) << 4) | (u8::from(vvvv & 16 == 0) << 3);
        let modrm = (0b10 << 6) | ((reg & 7) << 3) | base.low3();
        self.byte(0x62);
        self.byte(p0);
        self.byte(p1);
        self.byte(p2);
        self.byte(opcode);
        self.byte(modrm);
        self.imm32(disp);
    }

    /// EVEX instruction with register-register operands.
    fn evex_reg(&mut self, map: u8, pp: u8, opcode: u8, reg: u8, vvvv: u8, rm: u8) {
        debug_assert!(reg < 32 && vvvv < 32 && rm < 32);
        let p0 = (u8::from(reg & 8 == 0) << 7)
            | (u8::from(rm & 16 == 0) << 6)
            | (u8::from(rm & 8 == 0) << 5)
            | (u8::from(reg & 16 == 0) << 4)
            | map;
        let p1 = ((!vvvv & 0xF) << 3) | (1 << 2) | pp;
        let p2 = (0b10 << 5) | (u8::from(vvvv & 16 == 0) << 3);
        let modrm = (0b11 << 6) | ((reg & 7) << 3) | (rm & 7);
        self.byte(0x62);
        self.byte(p0);
        self.byte(p1);
        self.byte(p2);
        self.byte(opcode);
        self.byte(modrm);
    }

    /// `vmovups zmm, [base + disp]` — 512-bit load.
    pub fn vmovups_load(&mut self, dst: u8, base: Gpr, disp: i32) {
        self.evex_mem(MAP_0F, PP_NONE, 0x10, dst, 0, base, disp, false);
    }

    /// `vmovups [base + disp], zmm` — 512-bit store.
    pub fn vmovups_store(&mut self, src: u8, base: Gpr, disp: i32) {
        self.evex_mem(MAP_0F, PP_NONE, 0x11, src, 0, base, disp, false);
    }

    /// `vfmadd231ps zmm_dst, zmm_mul, dword [base+disp]{1to16}` —
    /// `dst += mul · broadcast(mem)`. The paper's core instruction.
    pub fn vfmadd231ps_bcst(&mut self, dst: u8, mul: u8, base: Gpr, disp: i32) {
        self.evex_mem(MAP_0F38, PP_66, 0xB8, dst, mul, base, disp, true);
    }

    /// `vbroadcastss zmm, dword [base+disp]`.
    pub fn vbroadcastss(&mut self, dst: u8, base: Gpr, disp: i32) {
        self.evex_mem(MAP_0F38, PP_66, 0x18, dst, 0, base, disp, false);
    }

    /// `vpxord zmm, zmm, zmm` (self) — idiomatic accumulator zeroing.
    pub fn vpxord_self(&mut self, z: u8) {
        self.evex_reg(MAP_0F, PP_66, 0xEF, z, z, z);
    }

    /// `vpdpwssd zmm_dst, zmm_mul, dword [base+disp]{1to16}` — the
    /// AVX-512 VNNI int16-pair dot-product accumulate (4VNNIW stand-in).
    pub fn vpdpwssd_bcst(&mut self, dst: u8, mul: u8, base: Gpr, disp: i32) {
        self.evex_mem(MAP_0F38, PP_66, 0x52, dst, mul, base, disp, true);
    }

    /// `vmovdqu32 zmm, [base+disp]` — 512-bit integer load.
    pub fn vmovdqu32_load(&mut self, dst: u8, base: Gpr, disp: i32) {
        self.evex_mem(MAP_0F, PP_F3, 0x6F, dst, 0, base, disp, false);
    }

    /// `vmovdqu32 [base+disp], zmm` — 512-bit integer store.
    pub fn vmovdqu32_store(&mut self, src: u8, base: Gpr, disp: i32) {
        self.evex_mem(MAP_0F, PP_F3, 0x7F, src, 0, base, disp, false);
    }

    /// `prefetcht0/t1 [base + disp]`.
    pub fn prefetch(&mut self, hint: PrefetchHint, base: Gpr, disp: i32) {
        if base.ext() {
            self.byte(0x41); // REX.B
        }
        self.byte(0x0F);
        self.byte(0x18);
        let reg = match hint {
            PrefetchHint::T0 => 1,
            PrefetchHint::T1 => 2,
        };
        self.byte((0b10 << 6) | (reg << 3) | base.low3());
        self.imm32(disp);
    }

    /// `mov r64, imm32` (sign-extended).
    pub fn mov_imm32(&mut self, dst: Gpr, imm: i32) {
        self.byte(0x48 | u8::from(dst.ext()));
        self.byte(0xC7);
        self.byte((0b11 << 6) | dst.low3());
        self.imm32(imm);
    }

    /// `add r64, imm32`.
    pub fn add_imm32(&mut self, dst: Gpr, imm: i32) {
        self.byte(0x48 | u8::from(dst.ext()));
        self.byte(0x81);
        self.byte((0b11 << 6) | dst.low3());
        self.imm32(imm);
    }

    /// `dec r64`.
    pub fn dec(&mut self, dst: Gpr) {
        self.byte(0x48 | u8::from(dst.ext()));
        self.byte(0xFF);
        self.byte((0b11 << 6) | (1 << 3) | dst.low3());
    }

    /// Current position — use as a branch target for [`Self::jnz_to`].
    pub fn label(&self) -> usize {
        self.buf.len()
    }

    /// `jnz label` (backward branch to a recorded [`Self::label`]).
    pub fn jnz_to(&mut self, label: usize) {
        let rel = label as i64 - (self.buf.len() as i64 + 6);
        self.byte(0x0F);
        self.byte(0x85);
        self.imm32(i32::try_from(rel).expect("loop body too large"));
    }

    /// `vzeroupper` — zero the upper bits of every vector register.
    ///
    /// The System V ABI expects the upper YMM/ZMM state clean at call
    /// boundaries: returning from EVEX code without it puts the core
    /// in a dirty-upper state in which every legacy-SSE instruction
    /// the *caller* executes (all baseline-target Rust float code,
    /// e.g. the fused-operator APPLY loops) pays a transition merge
    /// penalty. One-cycle instruction, mandatory epilogue.
    pub fn vzeroupper(&mut self) {
        self.byte(0xC5);
        self.byte(0xF8);
        self.byte(0x77);
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.byte(0xC3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Encodings cross-checked against GNU `as` + objdump.
    #[test]
    fn ground_truth_encodings() {
        // vfmadd231ps (%rdi){1to16}, %zmm31, %zmm0 with disp32 form:
        // objdump (disp8 form): 62 f2 05 50 b8 07 — our mod=10 variant
        // only changes modrm/disp.
        let mut e = Emitter::new();
        e.vfmadd231ps_bcst(0, 31, Gpr::Rdi, 0);
        assert_eq!(&e.finish(), &[0x62, 0xF2, 0x05, 0x50, 0xB8, 0x87, 0, 0, 0, 0]);

        // vfmadd231ps 0x12345(%r9){1to16},%zmm2,%zmm27
        // objdump: 62 42 6d 58 b8 99 45 23 01 00
        let mut e = Emitter::new();
        e.vfmadd231ps_bcst(27, 2, Gpr::R9, 0x12345);
        assert_eq!(&e.finish(), &[0x62, 0x42, 0x6D, 0x58, 0xB8, 0x99, 0x45, 0x23, 0x01, 0x00]);

        // vmovups 0x40(%rsi),%zmm28 (disp32 form of 62 61 7c 48 10 66 01)
        let mut e = Emitter::new();
        e.vmovups_load(28, Gpr::Rsi, 0x40);
        assert_eq!(&e.finish(), &[0x62, 0x61, 0x7C, 0x48, 0x10, 0xA6, 0x40, 0, 0, 0]);

        // vmovups %zmm5,0x80(%rdx) (disp32 form of 62 f1 7c 48 11 6a 02)
        let mut e = Emitter::new();
        e.vmovups_store(5, Gpr::Rdx, 0x80);
        assert_eq!(&e.finish(), &[0x62, 0xF1, 0x7C, 0x48, 0x11, 0xAA, 0x80, 0, 0, 0]);

        // vpxord %zmm3,%zmm3,%zmm3: 62 f1 65 48 ef db
        let mut e = Emitter::new();
        e.vpxord_self(3);
        assert_eq!(&e.finish(), &[0x62, 0xF1, 0x65, 0x48, 0xEF, 0xDB]);

        // vpdpwssd (%rcx){1to16},%zmm29,%zmm2: 62 f2 15 50 52 11 (disp8)
        let mut e = Emitter::new();
        e.vpdpwssd_bcst(2, 29, Gpr::Rcx, 0);
        assert_eq!(&e.finish(), &[0x62, 0xF2, 0x15, 0x50, 0x52, 0x91, 0, 0, 0, 0]);

        // vmovdqu32 0x100(%r8),%zmm1: 62 d1 7e 48 6f 48 04 (disp8)
        let mut e = Emitter::new();
        e.vmovdqu32_load(1, Gpr::R8, 0x100);
        assert_eq!(&e.finish(), &[0x62, 0xD1, 0x7E, 0x48, 0x6F, 0x88, 0, 1, 0, 0]);

        // prefetcht0 0x40(%rcx): 0f 18 49 40 (disp8) → disp32 form
        let mut e = Emitter::new();
        e.prefetch(PrefetchHint::T0, Gpr::Rcx, 0x40);
        assert_eq!(&e.finish(), &[0x0F, 0x18, 0x89, 0x40, 0, 0, 0]);

        // prefetcht1 0x80(%r8): 41 0f 18 90 80 00 00 00
        let mut e = Emitter::new();
        e.prefetch(PrefetchHint::T1, Gpr::R8, 0x80);
        assert_eq!(&e.finish(), &[0x41, 0x0F, 0x18, 0x90, 0x80, 0, 0, 0]);

        // vbroadcastss 0x10(%rdi),%zmm30: 62 62 7d 48 18 77 04 (disp8)
        let mut e = Emitter::new();
        e.vbroadcastss(30, Gpr::Rdi, 0x10);
        assert_eq!(&e.finish(), &[0x62, 0x62, 0x7D, 0x48, 0x18, 0xB7, 0x10, 0, 0, 0]);
    }

    #[test]
    fn loop_scaffolding_bytes() {
        let mut e = Emitter::new();
        e.mov_imm32(Gpr::R10, 5);
        let top = e.label();
        e.dec(Gpr::R10);
        e.jnz_to(top);
        e.ret();
        let code = e.finish();
        // mov r10, 5: 49 C7 C2 05 00 00 00
        assert_eq!(&code[..7], &[0x49, 0xC7, 0xC2, 5, 0, 0, 0]);
        // dec r10: 49 FF CA
        assert_eq!(&code[7..10], &[0x49, 0xFF, 0xCA]);
        // jnz -9: 0F 85 F7 FF FF FF
        assert_eq!(&code[10..16], &[0x0F, 0x85, 0xF7, 0xFF, 0xFF, 0xFF]);
        assert_eq!(code[16], 0xC3);
    }

    #[test]
    fn add_imm_encodings() {
        let mut e = Emitter::new();
        e.add_imm32(Gpr::Rdi, 0x1000);
        e.add_imm32(Gpr::R8, -64);
        let code = e.finish();
        assert_eq!(&code[..7], &[0x48, 0x81, 0xC7, 0x00, 0x10, 0, 0]);
        assert_eq!(&code[7..], &[0x49, 0x81, 0xC0, 0xC0, 0xFF, 0xFF, 0xFF]);
    }

    /// Execute a tiny emitted kernel end to end: zero zmm0, FMA a
    /// broadcast against a loaded vector, store the result.
    #[test]
    fn emitted_fma_computes() {
        if !crate::jit_available() {
            return;
        }
        let mut e = Emitter::new();
        e.vpxord_self(0);
        e.vmovups_load(31, Gpr::Rsi, 0); // weights
        e.vfmadd231ps_bcst(0, 31, Gpr::Rdi, 4); // broadcast in[1]
        e.vmovups_store(0, Gpr::Rdx, 0);
        e.ret();
        let buf = crate::CodeBuffer::from_code(&e.finish()).unwrap();
        let inp: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let wt: Vec<f32> = (0..16).map(|i| (i + 1) as f32).collect();
        let mut out = vec![0.0f32; 16];
        // SAFETY: the snippet above follows the F32Kernel ABI.
        let f = unsafe { buf.as_f32_kernel() };
        // SAFETY: the snippet touches one vector of each buffer.
        unsafe {
            f(
                inp.as_ptr(),
                wt.as_ptr(),
                out.as_mut_ptr(),
                std::ptr::null(),
                std::ptr::null(),
                std::ptr::null(),
            )
        };
        // out[v] = in[1] * wt[v] = 1.0 * (v+1)
        for (v, &x) in out.iter().enumerate() {
            assert_eq!(x, (v + 1) as f32);
        }
    }
}
