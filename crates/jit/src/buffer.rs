//! Executable code buffers (W^X discipline).
//!
//! Code is assembled into ordinary memory, copied into a fresh
//! anonymous mapping, and the mapping is flipped from read-write to
//! read-execute before the function pointer is handed out — the same
//! life cycle LIBXSMM uses for its generated kernels.

use std::fmt;

/// Errors from the executable-memory layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JitError {
    /// `mmap` refused to create the mapping.
    Map(i32),
    /// `mprotect` refused to make it executable (e.g. a W^X-enforcing
    /// sandbox without PROT_EXEC).
    Protect(i32),
    /// Empty code sequence.
    Empty,
    /// The static verifier rejected the kernel bytes (see
    /// [`CodeBuffer::from_kernel`]) — the code never reached
    /// executable memory.
    Verify(kver::Violation),
}

impl fmt::Display for JitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JitError::Map(e) => write!(f, "mmap failed (errno {e})"),
            JitError::Protect(e) => write!(f, "mprotect failed (errno {e})"),
            JitError::Empty => write!(f, "empty code buffer"),
            JitError::Verify(v) => write!(f, "kernel verification failed: {v}"),
        }
    }
}

impl std::error::Error for JitError {}

/// An executable mapping holding one generated kernel.
pub struct CodeBuffer {
    ptr: *mut u8,
    map_len: usize,
    code_len: usize,
}

// SAFETY: the mapping is immutable (RX) after construction; concurrent
// calls from many threads are the intended use (each thread replays its
// own kernel stream through the same generated code).
unsafe impl Send for CodeBuffer {}
unsafe impl Sync for CodeBuffer {}

impl CodeBuffer {
    /// Map `code` into fresh executable memory.
    pub fn from_code(code: &[u8]) -> Result<Self, JitError> {
        if code.is_empty() {
            return Err(JitError::Empty);
        }
        let page = 4096usize;
        let map_len = code.len().div_ceil(page) * page;
        // SAFETY: standard anonymous-mapping dance; failure paths checked.
        unsafe {
            let ptr = libc::mmap(
                std::ptr::null_mut(),
                map_len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
                -1,
                0,
            );
            if ptr == libc::MAP_FAILED {
                return Err(JitError::Map(*libc::__errno_location()));
            }
            std::ptr::copy_nonoverlapping(code.as_ptr(), ptr as *mut u8, code.len());
            if libc::mprotect(ptr, map_len, libc::PROT_READ | libc::PROT_EXEC) != 0 {
                let errno = *libc::__errno_location();
                libc::munmap(ptr, map_len);
                return Err(JitError::Protect(errno));
            }
            Ok(Self { ptr: ptr as *mut u8, map_len, code_len: code.len() })
        }
    }

    /// Map *kernel* code into executable memory, statically verifying
    /// it against the [`kver::KernelSpec`] it was assembled from.
    ///
    /// In debug builds (and with the `verify` feature in release) the
    /// bytes are decoded and abstract-interpreted first — ABI
    /// structure, register discipline, and memory bounds per the
    /// spec's shape — and a [`kver::Violation`] surfaces as
    /// [`JitError::Verify`] *before* anything becomes executable.
    /// Release builds without the feature skip straight to
    /// [`CodeBuffer::from_code`] (the verifier runs on every kernel in
    /// every test run, which is where it earns its keep).
    ///
    /// Use this for assembled kernels; `from_code` remains the raw
    /// escape hatch for non-kernel stubs (availability probes, tests).
    pub fn from_kernel(code: &[u8], spec: &kver::KernelSpec) -> Result<Self, JitError> {
        if cfg!(any(debug_assertions, feature = "verify")) {
            kver::verify(code, spec).map_err(JitError::Verify)?;
        }
        Self::from_code(code)
    }

    /// Entry point of the generated kernel.
    #[inline]
    pub fn as_ptr(&self) -> *const u8 {
        self.ptr
    }

    /// Generated code size in bytes (useful for code-bloat accounting —
    /// the paper's "combinatorial explosion" discussion).
    #[inline]
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// Reinterpret the entry point as an f32 kernel.
    ///
    /// # Safety
    /// The buffer must actually contain a kernel with the
    /// [`crate::F32Kernel`] ABI.
    #[inline]
    pub unsafe fn as_f32_kernel(&self) -> crate::F32Kernel {
        std::mem::transmute::<*const u8, crate::F32Kernel>(self.ptr)
    }

    /// Reinterpret the entry point as an int16 kernel.
    ///
    /// # Safety
    /// The buffer must actually contain a kernel with the
    /// [`crate::I16Kernel`] ABI.
    #[inline]
    pub unsafe fn as_i16_kernel(&self) -> crate::I16Kernel {
        std::mem::transmute::<*const u8, crate::I16Kernel>(self.ptr)
    }
}

impl Drop for CodeBuffer {
    fn drop(&mut self) {
        // SAFETY: mapping owned exclusively by this buffer.
        unsafe {
            libc::munmap(self.ptr as *mut libc::c_void, self.map_len);
        }
    }
}

impl fmt::Debug for CodeBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CodeBuffer").field("code_len", &self.code_len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_return_stub() {
        // mov eax, 0x1234; ret
        let code = [0xB8u8, 0x34, 0x12, 0, 0, 0xC3];
        let buf = CodeBuffer::from_code(&code).expect("exec memory available");
        // SAFETY: the stub above is a complete nullary function.
        let f: extern "C" fn() -> i32 = unsafe { std::mem::transmute(buf.as_ptr()) };
        assert_eq!(f(), 0x1234);
    }

    #[test]
    fn executes_argument_passing_stub() {
        // mov rax, rdi; add rax, rsi ... keep it simple: lea eax,[rdi+rsi]
        // 48 8d 04 37  lea rax,[rdi+rsi]
        let code = [0x48u8, 0x8D, 0x04, 0x37, 0xC3];
        let buf = CodeBuffer::from_code(&code).unwrap();
        // SAFETY: the stub reads only its two register arguments.
        let f: extern "C" fn(usize, usize) -> usize = unsafe { std::mem::transmute(buf.as_ptr()) };
        assert_eq!(f(40, 2), 42);
        assert_eq!(f(1000, 337), 1337);
    }

    #[test]
    fn rejects_empty_code() {
        assert_eq!(CodeBuffer::from_code(&[]).unwrap_err(), JitError::Empty);
    }

    #[test]
    fn code_spanning_multiple_pages() {
        // 8192 NOPs followed by mov eax, 7; ret
        let mut code = vec![0x90u8; 8192];
        code.extend_from_slice(&[0xB8, 7, 0, 0, 0, 0xC3]);
        let buf = CodeBuffer::from_code(&code).unwrap();
        assert_eq!(buf.code_len(), 8198);
        // SAFETY: NOP sled ending in a complete nullary function.
        let f: extern "C" fn() -> i32 = unsafe { std::mem::transmute(buf.as_ptr()) };
        assert_eq!(f(), 7);
    }
}
