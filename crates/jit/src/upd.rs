//! Weight-gradient kernel assembler (Algorithm 9 / Section II-J).
//!
//! One generated kernel accumulates a `VLEN × VLEN` dW panel over a
//! `BP × BQ` block of output pixels. The panel lives in `zmm0..15`
//! (16 independent FMA chains — "register blocking up to a factor of
//! VLEN"); the dO pixel vector loads into `zmm30`; input channels
//! enter as embedded broadcasts. Rows (`BP`) run in a machine-code
//! loop that advances the input and dO base registers.
//!
//! ABI (see [`crate::F32Kernel`]): `(in @(r,s), dO, dW, pf_in, pf_dO,
//! pf_dW)`.

use crate::emit::{Emitter, Gpr, PrefetchHint};
use microkernel::UpdShape;
use tensor::VLEN;

/// Assemble the machine code of a weight-update microkernel.
pub fn assemble_upd(sh: &UpdShape) -> Vec<u8> {
    sh.validate();
    let mut e = Emitter::new();

    // load the dW panel into zmm0..15
    for c in 0..VLEN {
        e.vmovups_load(c as u8, Gpr::Rdx, elem4(c * VLEN));
    }

    if sh.prefetch {
        for row in 0..sh.bp.min(8) {
            e.prefetch(PrefetchHint::T1, Gpr::Rcx, elem4(row * sh.stride * sh.in_row_stride));
            e.prefetch(PrefetchHint::T1, Gpr::R8, elem4(row * sh.do_row_stride));
        }
        for c in 0..VLEN {
            e.prefetch(PrefetchHint::T0, Gpr::R9, elem4(c * VLEN));
        }
    }

    let looped = sh.bp > 1;
    let label = if looped {
        e.mov_imm32(Gpr::R10, i32::try_from(sh.bp).expect("bp too large"));
        Some(e.label())
    } else {
        None
    };

    // one row of BQ pixels, fully unrolled
    for q in 0..sh.bq {
        e.vmovups_load(30, Gpr::Rsi, elem4(q * VLEN));
        let in_base = q * sh.stride * VLEN;
        for c in 0..VLEN {
            e.vfmadd231ps_bcst(c as u8, 30, Gpr::Rdi, elem4(in_base + c));
        }
    }

    if let Some(label) = label {
        e.add_imm32(Gpr::Rdi, elem4(sh.stride * sh.in_row_stride));
        e.add_imm32(Gpr::Rsi, elem4(sh.do_row_stride));
        e.dec(Gpr::R10);
        e.jnz_to(label);
    }

    // store the panel back
    for c in 0..VLEN {
        e.vmovups_store(c as u8, Gpr::Rdx, elem4(c * VLEN));
    }
    e.vzeroupper();
    e.ret();
    e.finish()
}

fn elem4(elems: usize) -> i32 {
    i32::try_from(elems * 4).expect("displacement exceeds disp32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{jit_available, CodeBuffer};
    use microkernel::upd::upd_scalar;
    use tensor::rng::SplitMix64;

    fn base(bp: usize, bq: usize, stride: usize) -> UpdShape {
        UpdShape {
            bp,
            bq,
            stride,
            in_row_stride: (bq * stride + 3) * VLEN,
            do_row_stride: (bq + 1) * VLEN,
            prefetch: false,
        }
    }

    fn check(sh: &UpdShape) {
        if !jit_available() {
            return;
        }
        let in_len = sh.bp * sh.stride * sh.in_row_stride + sh.bq * sh.stride * VLEN + VLEN;
        let do_len = sh.bp * sh.do_row_stride + sh.bq * VLEN + VLEN;
        let mut rng = SplitMix64::new(77);
        let mut inp = vec![0.0f32; in_len];
        let mut dout = vec![0.0f32; do_len];
        let mut dw0 = vec![0.0f32; VLEN * VLEN];
        rng.fill_f32(&mut inp);
        rng.fill_f32(&mut dout);
        rng.fill_f32(&mut dw0);

        let mut expect = dw0.clone();
        // SAFETY: buffers sized by the shape's extents just above.
        unsafe {
            upd_scalar(
                sh,
                inp.as_ptr(),
                dout.as_ptr(),
                expect.as_mut_ptr(),
                std::ptr::null(),
                std::ptr::null(),
                std::ptr::null(),
            )
        };

        let buf =
            CodeBuffer::from_kernel(&assemble_upd(sh), &kver::KernelSpec::UpdF32(*sh)).unwrap();
        // SAFETY: the buffer holds a just-assembled F32Kernel.
        let f = unsafe { buf.as_f32_kernel() };
        let mut dw_j = dw0.clone();
        // SAFETY: same buffers as the scalar oracle call above.
        unsafe {
            f(
                inp.as_ptr(),
                dout.as_ptr(),
                dw_j.as_mut_ptr(),
                inp.as_ptr(),
                dout.as_ptr(),
                dw_j.as_ptr(),
            )
        };
        let n = tensor::Norms::compare(&expect, &dw_j);
        assert!(n.ok(1e-5), "jit upd {sh:?}: {n}");
    }

    #[test]
    fn jit_upd_matrix() {
        for (bp, bq) in [(1, 1), (1, 14), (4, 7), (7, 7), (14, 14), (28, 28)] {
            for stride in [1, 2] {
                check(&base(bp, bq, stride));
            }
        }
    }

    #[test]
    fn jit_upd_with_prefetch() {
        let mut sh = base(7, 14, 1);
        sh.prefetch = true;
        check(&sh);
    }

    #[test]
    fn jit_upd_accumulates_across_calls() {
        if !jit_available() {
            return;
        }
        let sh = base(2, 3, 1);
        let in_len = sh.bp * sh.stride * sh.in_row_stride + sh.bq * sh.stride * VLEN + VLEN;
        let do_len = sh.bp * sh.do_row_stride + sh.bq * VLEN + VLEN;
        let inp = vec![1.0f32; in_len];
        let dout = vec![1.0f32; do_len];
        let mut dw = vec![0.0f32; 256];
        let buf =
            CodeBuffer::from_kernel(&assemble_upd(&sh), &kver::KernelSpec::UpdF32(sh)).unwrap();
        // SAFETY: the buffer holds a just-assembled F32Kernel.
        let f = unsafe { buf.as_f32_kernel() };
        for _ in 0..5 {
            // SAFETY: buffers sized by the shape's extents above.
            unsafe {
                f(
                    inp.as_ptr(),
                    dout.as_ptr(),
                    dw.as_mut_ptr(),
                    std::ptr::null(),
                    std::ptr::null(),
                    std::ptr::null(),
                )
            };
        }
        for &x in &dw {
            assert_eq!(x, (5 * sh.bp * sh.bq) as f32);
        }
    }
}
