//! Int16 kernel assembler (Section II-K).
//!
//! Identical structure to the f32 forward assembler, with the datatype
//! changes of the reduced-precision path:
//!
//! * the channel loop runs over `VLEN/2` *pairs*; one 32-bit embedded
//!   broadcast feeds two adjacent input channels,
//! * weights load pair-interleaved panels with `vmovdqu32`,
//! * `vpdpwssd` (AVX-512 VNNI) multiplies the int16 pairs and
//!   accumulates int32 — our 4VNNIW stand-in,
//! * accumulators are int32 and the output stores remain 512-bit —
//!   which is why output traffic does not shrink (Section III-B).

use crate::emit::{Emitter, Gpr, PrefetchHint};
use microkernel::KernelShape;
use tensor::VLEN;

const UNROLL_CB_LIMIT: usize = 4;
const WT_REGS: [u8; 4] = [28, 29, 30, 31];

/// Assemble the machine code of an int16 forward microkernel.
///
/// Returned bytes follow the [`crate::I16Kernel`] ABI. Requires
/// AVX-512 VNNI at execution time.
pub fn assemble_quant(sh: &KernelShape) -> Vec<u8> {
    sh.validate();
    let mut e = Emitter::new();

    for p in 0..sh.rbp {
        for q in 0..sh.rbq {
            let acc = (p * sh.rbq + q) as u8;
            if sh.init_zero {
                e.vpxord_self(acc);
            } else {
                e.vmovdqu32_load(acc, Gpr::Rdx, elem_i32(sh.out_off(p, q)));
            }
        }
    }

    if sh.prefetch {
        let in_rows = (sh.rbp - 1) * sh.stride + sh.r;
        for row in 0..in_rows {
            e.prefetch(PrefetchHint::T1, Gpr::Rcx, elem_i16(row * sh.in_row_stride));
        }
        let wt_bytes = sh.r * sh.s * VLEN * VLEN * 2;
        for line in 0..wt_bytes.div_ceil(64).min(16) {
            e.prefetch(PrefetchHint::T1, Gpr::R8, (line * 64) as i32);
        }
        for p in 0..sh.rbp {
            e.prefetch(PrefetchHint::T0, Gpr::R9, elem_i32(sh.out_off(p, 0)));
        }
    }

    let unrolled = sh.cb_inner <= UNROLL_CB_LIMIT;
    let (cb_count, loop_label) = if unrolled {
        (sh.cb_inner, None)
    } else {
        e.mov_imm32(Gpr::R10, i32::try_from(sh.cb_inner).expect("cb_inner too large"));
        (1, Some(e.label()))
    };

    for cb in 0..cb_count {
        for r in 0..sh.r {
            for s in 0..sh.s {
                let wt_panel = sh.wt_off(cb, r, s);
                for cp in 0..VLEN / 2 {
                    let wreg = WT_REGS[cp % WT_REGS.len()];
                    e.vmovdqu32_load(wreg, Gpr::Rsi, elem_i16(wt_panel + cp * VLEN * 2));
                    for p in 0..sh.rbp {
                        let base = sh.in_off(cb, r, s, p, 0) + 2 * cp;
                        for q in 0..sh.rbq {
                            let acc = (p * sh.rbq + q) as u8;
                            e.vpdpwssd_bcst(
                                acc,
                                wreg,
                                Gpr::Rdi,
                                elem_i16(base + q * sh.stride * VLEN),
                            );
                        }
                    }
                }
            }
        }
    }

    if let Some(label) = loop_label {
        e.add_imm32(Gpr::Rdi, elem_i16(sh.in_cb_stride));
        e.add_imm32(Gpr::Rsi, elem_i16(sh.r * sh.s * VLEN * VLEN));
        e.dec(Gpr::R10);
        e.jnz_to(label);
    }

    for p in 0..sh.rbp {
        for q in 0..sh.rbq {
            let acc = (p * sh.rbq + q) as u8;
            e.vmovdqu32_store(acc, Gpr::Rdx, elem_i32(sh.out_off(p, q)));
        }
    }
    e.vzeroupper();
    e.ret();
    e.finish()
}

/// i16 element offset → byte displacement.
fn elem_i16(elems: usize) -> i32 {
    i32::try_from(elems * 2).expect("displacement exceeds disp32")
}

/// i32 element offset → byte displacement.
fn elem_i32(elems: usize) -> i32 {
    i32::try_from(elems * 4).expect("displacement exceeds disp32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{jit_available, CodeBuffer};
    use microkernel::quant::quant_scalar;
    use tensor::rng::SplitMix64;

    fn vnni_ready() -> bool {
        // microkernel::has_vnni is target_arch-gated, so this compiles
        // (and is simply false) off x86_64
        jit_available() && microkernel::has_vnni()
    }

    fn base(rbp: usize, rbq: usize, r: usize, s: usize, stride: usize, cbi: usize) -> KernelShape {
        let in_cols = (rbq - 1) * stride + s + 2;
        let in_rows = (rbp - 1) * stride + r + 1;
        KernelShape {
            rbp,
            rbq,
            r,
            s,
            stride,
            cb_inner: cbi,
            in_row_stride: in_cols * VLEN,
            in_cb_stride: in_rows * in_cols * VLEN + 64,
            out_row_stride: (rbq + 2) * VLEN,
            out_col_stride: VLEN,
            init_zero: false,
            prefetch: false,
        }
    }

    fn check(sh: &KernelShape) {
        if !vnni_ready() {
            return;
        }
        let in_rows = (sh.rbp - 1) * sh.stride + sh.r + 1;
        let in_len = sh.cb_inner * sh.in_cb_stride.max(in_rows * sh.in_row_stride)
            + in_rows * sh.in_row_stride;
        let wt_len = sh.cb_inner * sh.r * sh.s * VLEN * VLEN;
        let out_len = sh.rbp * sh.out_row_stride + sh.rbq * sh.out_col_stride + VLEN;
        let mut rng = SplitMix64::new(5);
        let mut inp = vec![0i16; in_len];
        let mut wt = vec![0i16; wt_len];
        let mut out0 = vec![0i32; out_len];
        rng.fill_i16(&mut inp);
        rng.fill_i16(&mut wt);
        for x in out0.iter_mut() {
            *x = rng.next_i16() as i32;
        }

        let mut expect = out0.clone();
        // SAFETY: buffers sized by the shape's extents just above.
        unsafe {
            quant_scalar(
                sh,
                inp.as_ptr(),
                wt.as_ptr(),
                expect.as_mut_ptr(),
                std::ptr::null(),
                std::ptr::null(),
                std::ptr::null(),
            )
        };

        let buf =
            CodeBuffer::from_kernel(&assemble_quant(sh), &kver::KernelSpec::QuantI16(*sh)).unwrap();
        // SAFETY: the buffer holds a just-assembled I16Kernel.
        let f = unsafe { buf.as_i16_kernel() };
        let mut out_j = out0.clone();
        // SAFETY: same buffers as the scalar oracle call above.
        unsafe {
            f(
                inp.as_ptr(),
                wt.as_ptr(),
                out_j.as_mut_ptr(),
                inp.as_ptr(),
                wt.as_ptr(),
                out_j.as_ptr(),
            )
        };
        // integer kernels must agree bit-exactly with the scalar oracle
        assert_eq!(expect, out_j, "jit quant {sh:?}");
    }

    #[test]
    fn jit_quant_matrix() {
        for (rbp, rbq) in [(1, 1), (1, 14), (2, 7), (4, 7)] {
            for (r, s, stride) in [(1, 1, 1), (3, 3, 1), (1, 1, 2)] {
                check(&base(rbp, rbq, r, s, stride, 1));
            }
        }
    }

    #[test]
    fn jit_quant_cb_loop() {
        for cbi in [2usize, 8, 32] {
            check(&base(1, 8, 1, 1, 1, cbi));
        }
    }

    #[test]
    fn jit_quant_init_zero_and_prefetch() {
        let mut sh = base(1, 7, 3, 3, 1, 1);
        sh.init_zero = true;
        check(&sh);
        let mut sh = base(2, 14, 1, 1, 1, 2);
        sh.prefetch = true;
        check(&sh);
    }
}
