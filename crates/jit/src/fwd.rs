//! Forward-kernel assembler (Section II-D).
//!
//! Emits the exact instruction recipe the paper describes: *"a) loading
//! a full vector-register with output channel weights from W … and b)
//! loop over RBQ pixels of the input activation, broadcasting those and
//! multiplying them with the loaded weights"* — as straight-line EVEX
//! code with the output tile held in `zmm0..27` across the whole
//! `Cb_inner × R × S × VLEN` reduction (the paper's optimization (a):
//! hoisted output loads/stores), plus `RBP > 1` pixel-row blocking for
//! small-`Q` layers (optimization (b)).
//!
//! Large `cb_inner` reductions (deep 1×1 layers) emit a compact
//! machine-code loop over channel blocks instead of unrolling, keeping
//! kernels in the tens-of-KB range the instruction cache tolerates.

use crate::emit::{Emitter, Gpr, PrefetchHint};
use microkernel::KernelShape;
use tensor::VLEN;

/// Channel-block count up to which the reduction is fully unrolled.
const UNROLL_CB_LIMIT: usize = 4;

/// Weight registers cycled by the c-loop (zmm28..31).
const WT_REGS: [u8; 4] = [28, 29, 30, 31];

/// Assemble the machine code of a forward microkernel for `sh`.
///
/// The returned bytes follow the [`crate::F32Kernel`] ABI. Feed them to
/// [`crate::CodeBuffer::from_code`].
pub fn assemble_fwd(sh: &KernelShape) -> Vec<u8> {
    sh.validate();
    let mut e = Emitter::new();
    let nacc = sh.rbp * sh.rbq;

    // --- accumulator init: load output tile or zero it -------------
    for p in 0..sh.rbp {
        for q in 0..sh.rbq {
            let acc = (p * sh.rbq + q) as u8;
            if sh.init_zero {
                e.vpxord_self(acc);
            } else {
                e.vmovups_load(acc, Gpr::Rdx, elem4(sh.out_off(p, q)));
            }
        }
    }

    // --- prefetch plan (Section II-E): L2 for next input/weights, --
    // --- L1 for next output tile ------------------------------------
    let mut prefetches: Vec<(PrefetchHint, Gpr, i32)> = Vec::new();
    if sh.prefetch {
        let in_rows = (sh.rbp - 1) * sh.stride + sh.r;
        let row_bytes = ((sh.rbq - 1) * sh.stride + sh.s) * VLEN * 4;
        for row in 0..in_rows {
            for line in 0..row_bytes.div_ceil(64).min(16) {
                prefetches.push((
                    PrefetchHint::T1,
                    Gpr::Rcx,
                    elem4(row * sh.in_row_stride) + (line * 64) as i32,
                ));
            }
        }
        let wt_bytes = sh.r * sh.s * VLEN * VLEN * 4;
        for line in 0..wt_bytes.div_ceil(64).min(24) {
            prefetches.push((PrefetchHint::T1, Gpr::R8, (line * 64) as i32));
        }
        for p in 0..sh.rbp {
            for q in 0..sh.rbq {
                prefetches.push((PrefetchHint::T0, Gpr::R9, elem4(sh.out_off(p, q))));
            }
        }
    }
    let total_fmas = sh.cb_inner.clamp(1, UNROLL_CB_LIMIT) * sh.r * sh.s * VLEN;
    let pf_interval = (total_fmas / prefetches.len().max(1)).max(1);
    let mut pf_iter = prefetches.into_iter();
    let mut fma_groups = 0usize;

    // --- reduction body ---------------------------------------------
    let unrolled = sh.cb_inner <= UNROLL_CB_LIMIT;
    let (cb_count, loop_label) = if unrolled {
        (sh.cb_inner, None)
    } else {
        // machine-code loop: emit all prefetches up front — sprinkling
        // them into the body would re-issue them every iteration
        for (hint, basereg, disp) in pf_iter.by_ref() {
            e.prefetch(hint, basereg, disp);
        }
        e.mov_imm32(Gpr::R10, i32::try_from(sh.cb_inner).expect("cb_inner too large"));
        (1, Some(e.label()))
    };

    for cb in 0..cb_count {
        for r in 0..sh.r {
            for s in 0..sh.s {
                let wt_panel = sh.wt_off(cb, r, s);
                for c in 0..VLEN {
                    let wreg = WT_REGS[c % WT_REGS.len()];
                    e.vmovups_load(wreg, Gpr::Rsi, elem4(wt_panel + c * VLEN));
                    for p in 0..sh.rbp {
                        let base = sh.in_off(cb, r, s, p, 0) + c;
                        for q in 0..sh.rbq {
                            let acc = (p * sh.rbq + q) as u8;
                            e.vfmadd231ps_bcst(
                                acc,
                                wreg,
                                Gpr::Rdi,
                                elem4(base + q * sh.stride * VLEN),
                            );
                        }
                    }
                    // sprinkle prefetches through the FMA stream
                    fma_groups += 1;
                    if fma_groups.is_multiple_of(pf_interval) {
                        if let Some((hint, basereg, disp)) = pf_iter.next() {
                            e.prefetch(hint, basereg, disp);
                        }
                    }
                }
            }
        }
    }

    if let Some(label) = loop_label {
        // advance input and weight base pointers to the next channel
        // block, then loop
        e.add_imm32(Gpr::Rdi, elem4(sh.in_cb_stride));
        e.add_imm32(Gpr::Rsi, elem4(sh.r * sh.s * VLEN * VLEN));
        e.dec(Gpr::R10);
        e.jnz_to(label);
    }

    // drain any remaining prefetches before the stores
    for (hint, basereg, disp) in pf_iter {
        e.prefetch(hint, basereg, disp);
    }

    // --- store the output tile ---------------------------------------
    for p in 0..sh.rbp {
        for q in 0..sh.rbq {
            let acc = (p * sh.rbq + q) as u8;
            e.vmovups_store(acc, Gpr::Rdx, elem4(sh.out_off(p, q)));
        }
    }
    e.vzeroupper();
    e.ret();
    debug_assert!(nacc <= 28);
    e.finish()
}

/// f32 element offset → byte displacement (with overflow check).
fn elem4(elems: usize) -> i32 {
    i32::try_from(elems * 4).expect("displacement exceeds disp32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{jit_available, CodeBuffer};
    use microkernel::fwd::fwd_scalar;
    use tensor::rng::SplitMix64;

    fn base(rbp: usize, rbq: usize, r: usize, s: usize, stride: usize, cbi: usize) -> KernelShape {
        let in_cols = (rbq - 1) * stride + s + 2;
        let in_rows = (rbp - 1) * stride + r + 1;
        KernelShape {
            rbp,
            rbq,
            r,
            s,
            stride,
            cb_inner: cbi,
            in_row_stride: in_cols * VLEN,
            in_cb_stride: in_rows * in_cols * VLEN + 64,
            out_row_stride: (rbq + 2) * VLEN,
            out_col_stride: VLEN,
            init_zero: false,
            prefetch: false,
        }
    }

    fn check(sh: &KernelShape) {
        if !jit_available() {
            return;
        }
        let in_rows = (sh.rbp - 1) * sh.stride + sh.r + 1;
        let in_len = sh.cb_inner * sh.in_cb_stride.max(in_rows * sh.in_row_stride)
            + in_rows * sh.in_row_stride;
        let wt_len = sh.cb_inner * sh.r * sh.s * VLEN * VLEN;
        let out_len = sh.rbp * sh.out_row_stride + sh.rbq * sh.out_col_stride + VLEN;
        let mut rng = SplitMix64::new(31);
        let mut inp = vec![0.0f32; in_len];
        let mut wt = vec![0.0f32; wt_len];
        let mut out0 = vec![0.0f32; out_len];
        rng.fill_f32(&mut inp);
        rng.fill_f32(&mut wt);
        rng.fill_f32(&mut out0);

        let mut expect = out0.clone();
        // SAFETY: buffers sized by the shape's extents just above.
        unsafe {
            fwd_scalar(
                sh,
                inp.as_ptr(),
                wt.as_ptr(),
                expect.as_mut_ptr(),
                std::ptr::null(),
                std::ptr::null(),
                std::ptr::null(),
            )
        };

        let code = assemble_fwd(sh);
        let buf = CodeBuffer::from_kernel(&code, &kver::KernelSpec::FwdF32(*sh)).unwrap();
        // SAFETY: the buffer holds a just-assembled F32Kernel.
        let f = unsafe { buf.as_f32_kernel() };
        let mut out_j = out0.clone();
        // SAFETY: same buffers as the scalar oracle call above.
        unsafe {
            f(
                inp.as_ptr(),
                wt.as_ptr(),
                out_j.as_mut_ptr(),
                inp.as_ptr(),
                wt.as_ptr(),
                out_j.as_ptr(),
            )
        };
        let n = tensor::Norms::compare(&expect, &out_j);
        assert!(n.ok(1e-5), "jit {sh:?}: {n}");
    }

    #[test]
    fn jit_matrix_of_shapes() {
        for (rbp, rbq) in [(1, 1), (1, 7), (1, 14), (1, 28), (2, 14), (4, 7)] {
            for (r, s, stride) in [(1, 1, 1), (3, 3, 1), (1, 1, 2), (3, 3, 2), (7, 7, 2)] {
                check(&base(rbp, rbq, r, s, stride, 1));
            }
        }
    }

    #[test]
    fn jit_cb_unrolled_and_looped() {
        // 2 and 4 unroll; 8 and 32 take the machine-code loop path
        for cbi in [1usize, 2, 4, 8, 32] {
            check(&base(1, 14, 1, 1, 1, cbi));
        }
    }

    #[test]
    fn jit_init_zero() {
        let mut sh = base(1, 12, 3, 3, 1, 1);
        sh.init_zero = true;
        check(&sh);
    }

    #[test]
    fn jit_with_prefetch() {
        let mut sh = base(2, 14, 3, 3, 1, 1);
        sh.prefetch = true;
        check(&sh);
        let mut sh = base(1, 28, 1, 1, 1, 4);
        sh.prefetch = true;
        check(&sh);
    }

    #[test]
    fn jit_strided_output() {
        let mut sh = base(1, 6, 1, 1, 1, 1);
        sh.out_col_stride = 2 * VLEN;
        sh.out_row_stride = 16 * VLEN;
        check(&sh);
    }

    #[test]
    fn code_size_stays_reasonable() {
        // a deep 1x1 kernel must emit a loop, not half a megabyte
        let sh = base(1, 28, 1, 1, 1, 128);
        let code = assemble_fwd(&sh);
        assert!(code.len() < 64 * 1024, "code too large: {} bytes", code.len());
    }
}
