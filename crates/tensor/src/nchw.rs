//! Plain (unblocked) tensors: `NCHW` activations and `KCRS` filters.
//!
//! These are the formats of Algorithm 1/6/8 in the paper — the naive
//! reference loop nests operate directly on them. They also serve as the
//! interchange format: the blocked layouts convert from/to these.

use crate::align::AVec;
use crate::rng::SplitMix64;

/// A dense `[N][C][H][W]` f32 activation tensor (no padding).
#[derive(Clone, Debug)]
pub struct Nchw {
    pub n: usize,
    pub c: usize,
    pub h: usize,
    pub w: usize,
    data: AVec<f32>,
}

impl Nchw {
    /// Zero-initialized tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self { n, c, h, w, data: AVec::zeroed(n * c * h * w) }
    }

    /// Deterministically pseudo-random tensor.
    pub fn random(n: usize, c: usize, h: usize, w: usize, seed: u64) -> Self {
        let mut t = Self::zeros(n, c, h, w);
        SplitMix64::new(seed).fill_f32(t.data.as_mut_slice());
        t
    }

    /// Flat index of `[n][c][h][w]`.
    #[inline]
    pub fn idx(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.idx(n, c, h, w)]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let i = self.idx(n, c, h, w);
        &mut self.data[i]
    }

    /// Backing storage (row-major `[N][C][H][W]`).
    pub fn as_slice(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Mutable backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data.as_mut_slice()
    }

    /// Set all elements to zero.
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }
}

/// A dense `[K][C][R][S]` f32 filter tensor.
#[derive(Clone, Debug)]
pub struct Kcrs {
    pub k: usize,
    pub c: usize,
    pub r: usize,
    pub s: usize,
    data: AVec<f32>,
}

impl Kcrs {
    /// Zero-initialized filter.
    pub fn zeros(k: usize, c: usize, r: usize, s: usize) -> Self {
        Self { k, c, r, s, data: AVec::zeroed(k * c * r * s) }
    }

    /// Deterministically pseudo-random filter.
    pub fn random(k: usize, c: usize, r: usize, s: usize, seed: u64) -> Self {
        let mut t = Self::zeros(k, c, r, s);
        SplitMix64::new(seed).fill_f32(t.data.as_mut_slice());
        t
    }

    /// Flat index of `[k][c][r][s]`.
    #[inline]
    pub fn idx(&self, k: usize, c: usize, r: usize, s: usize) -> usize {
        debug_assert!(k < self.k && c < self.c && r < self.r && s < self.s);
        ((k * self.c + c) * self.r + r) * self.s + s
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, k: usize, c: usize, r: usize, s: usize) -> f32 {
        self.data[self.idx(k, c, r, s)]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, k: usize, c: usize, r: usize, s: usize) -> &mut f32 {
        let i = self.idx(k, c, r, s);
        &mut self.data[i]
    }

    /// Backing storage (row-major `[K][C][R][S]`).
    pub fn as_slice(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Mutable backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data.as_mut_slice()
    }

    /// Set all elements to zero.
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    /// The paper's backward-duality transform (Section II-I scenario 1):
    /// `W'[c][k][r'][s'] = W[k][c][R−1−r'][S−1−s']` — feature-map
    /// dimensions transposed, spatial dimensions flipped.
    pub fn transpose_flip(&self) -> Kcrs {
        let mut out = Kcrs::zeros(self.c, self.k, self.r, self.s);
        for k in 0..self.k {
            for c in 0..self.c {
                for r in 0..self.r {
                    for s in 0..self.s {
                        *out.at_mut(c, k, self.r - 1 - r, self.s - 1 - s) = self.at(k, c, r, s);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nchw_indexing_is_row_major() {
        let mut t = Nchw::zeros(2, 3, 4, 5);
        *t.at_mut(1, 2, 3, 4) = 9.0;
        assert_eq!(t.as_slice()[2 * 3 * 4 * 5 - 1], 9.0);
        assert_eq!(t.at(1, 2, 3, 4), 9.0);
        assert_eq!(t.at(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn kcrs_indexing_is_row_major() {
        let mut t = Kcrs::zeros(2, 2, 3, 3);
        *t.at_mut(1, 1, 2, 2) = 5.0;
        assert_eq!(t.as_slice()[2 * 2 * 3 * 3 - 1], 5.0);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Nchw::random(1, 2, 3, 4, 99);
        let b = Nchw::random(1, 2, 3, 4, 99);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn transpose_flip_roundtrip() {
        let w = Kcrs::random(4, 6, 3, 3, 5);
        let t = w.transpose_flip();
        assert_eq!((t.k, t.c, t.r, t.s), (6, 4, 3, 3));
        // applying the transform twice restores the original
        let tt = t.transpose_flip();
        assert_eq!(tt.as_slice(), w.as_slice());
        // spot-check the definition
        assert_eq!(t.at(2, 3, 0, 1), w.at(3, 2, 2, 1));
    }

    #[test]
    fn transpose_flip_1x1_is_pure_transpose() {
        let w = Kcrs::random(8, 4, 1, 1, 11);
        let t = w.transpose_flip();
        for k in 0..8 {
            for c in 0..4 {
                assert_eq!(t.at(c, k, 0, 0), w.at(k, c, 0, 0));
            }
        }
    }
}
