//! Cache-line / vector-register aligned heap buffers.
//!
//! AVX-512 loads and stores are fastest when 64-byte aligned, and the
//! JIT-generated kernels use aligned moves for filter blocks. `AVec<T>`
//! is a fixed-capacity, 64-byte aligned buffer: it deliberately does
//! *not* grow, because every tensor in this library has a size fully
//! determined by its layout at construction time.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut, Index, IndexMut};

/// Alignment (bytes) of all tensor buffers: one cache line / one zmm.
pub const ALIGNMENT: usize = 64;

/// A 64-byte aligned, zero-initialized, fixed-length heap buffer.
pub struct AVec<T: Copy> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: AVec owns its buffer exclusively; `T: Copy` rules out interior
// mutability and drop side effects, so moving a reference across threads
// is sound exactly as for `Vec<T>`.
unsafe impl<T: Copy + Send> Send for AVec<T> {}
unsafe impl<T: Copy + Sync> Sync for AVec<T> {}

impl<T: Copy> AVec<T> {
    /// Allocate a zeroed buffer holding `len` elements of `T`.
    ///
    /// All-zero bytes must be a valid `T`; this holds for the numeric
    /// types (`f32`, `i16`, `i32`) this crate instantiates.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self { ptr: std::ptr::NonNull::dangling().as_ptr(), len: 0 };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0, T is a numeric type).
        let ptr = unsafe { alloc_zeroed(layout) } as *mut T;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        Self { ptr, len }
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<T>(), ALIGNMENT)
            .expect("tensor allocation too large")
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw const pointer to the first element.
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr
    }

    /// Raw mutable pointer to the first element.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr
    }

    /// Set every element to `v`.
    pub fn fill(&mut self, v: T) {
        self.as_mut_slice().fill(v);
    }

    /// View as immutable slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr/len describe an owned, initialized allocation.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// View as mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: ptr/len describe an owned, initialized allocation.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl<T: Copy> Drop for AVec<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated in `zeroed` with the same layout.
            unsafe { dealloc(self.ptr as *mut u8, Self::layout(self.len)) };
        }
    }
}

impl<T: Copy> Clone for AVec<T> {
    fn clone(&self) -> Self {
        let mut out = Self::zeroed(self.len);
        out.as_mut_slice().copy_from_slice(self.as_slice());
        out
    }
}

impl<T: Copy> Deref for AVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> DerefMut for AVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy> Index<usize> for AVec<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.as_slice()[i]
    }
}

impl<T: Copy> IndexMut<usize> for AVec<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.as_mut_slice()[i]
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for AVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AVec").field("len", &self.len).field("align", &ALIGNMENT).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_aligned_and_zero() {
        let v: AVec<f32> = AVec::zeroed(1037);
        assert_eq!(v.as_ptr() as usize % ALIGNMENT, 0);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.len(), 1037);
    }

    #[test]
    fn empty_buffer() {
        let v: AVec<f32> = AVec::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[f32]);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut v: AVec<i16> = AVec::zeroed(64);
        for i in 0..64 {
            v[i] = i as i16 - 32;
        }
        for i in 0..64 {
            assert_eq!(v[i], i as i16 - 32);
        }
    }

    #[test]
    fn clone_is_deep() {
        let mut a: AVec<f32> = AVec::zeroed(16);
        a[3] = 7.0;
        let b = a.clone();
        a[3] = 9.0;
        assert_eq!(b[3], 7.0);
        assert_eq!(a[3], 9.0);
        assert_eq!(b.as_ptr() as usize % ALIGNMENT, 0);
    }

    #[test]
    fn fill_sets_all() {
        let mut v: AVec<f32> = AVec::zeroed(100);
        v.fill(2.5);
        assert!(v.iter().all(|&x| x == 2.5));
    }

    #[test]
    fn many_allocations_stay_aligned() {
        for len in [1usize, 5, 15, 16, 17, 255, 4096] {
            let v: AVec<f32> = AVec::zeroed(len);
            assert_eq!(v.as_ptr() as usize % ALIGNMENT, 0, "len={len}");
        }
    }
}
