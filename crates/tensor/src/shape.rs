//! Convolution problem shapes and derived quantities.
//!
//! Terminology follows Section II of the paper: the input activation
//! tensor has dimensions `N × C × H × W`, the output `N × K × P × Q`,
//! and the filter `K × C × R × S`. The input spatial domain may be
//! accessed with a `stride`, and may carry a physical zero `pad` (the
//! paper's loop nests assume in-bounds accesses, i.e. padding is
//! materialized in the layout — see DESIGN.md §6.4).

/// SIMD vector length in f32 lanes (AVX-512: 16). All blocked layouts in
/// this library use this single block size; see DESIGN.md §6.3.
pub const VLEN: usize = 16;

/// A complete convolution problem description.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Minibatch size.
    pub n: usize,
    /// Input feature maps.
    pub c: usize,
    /// Output feature maps.
    pub k: usize,
    /// Input spatial height (unpadded).
    pub h: usize,
    /// Input spatial width (unpadded).
    pub w: usize,
    /// Filter spatial height.
    pub r: usize,
    /// Filter spatial width.
    pub s: usize,
    /// Spatial stride (same in both dimensions, as in the paper).
    pub stride: usize,
    /// Physical zero-padding on each spatial border of the input.
    pub pad: usize,
}

impl ConvShape {
    /// Construct and validate a shape.
    ///
    /// # Panics
    /// Panics when the output spatial extent would be empty or the
    /// parameters are degenerate (zero dims, zero stride).
    // (N, C, K, H, W, R, S, stride, pad) is the paper's canonical
    // parameter order; keeping it beats a builder here.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        c: usize,
        k: usize,
        h: usize,
        w: usize,
        r: usize,
        s: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert!(n > 0 && c > 0 && k > 0, "empty feature dims");
        assert!(h > 0 && w > 0 && r > 0 && s > 0, "empty spatial dims");
        assert!(stride > 0, "stride must be positive");
        assert!(h + 2 * pad >= r && w + 2 * pad >= s, "filter larger than padded input");
        let sh = Self { n, c, k, h, w, r, s, stride, pad };
        assert!(sh.p() > 0 && sh.q() > 0, "empty output");
        sh
    }

    /// Output spatial height `P = (H + 2·pad − R)/stride + 1`.
    #[inline]
    pub fn p(&self) -> usize {
        (self.h + 2 * self.pad - self.r) / self.stride + 1
    }

    /// Output spatial width `Q = (W + 2·pad − S)/stride + 1`.
    #[inline]
    pub fn q(&self) -> usize {
        (self.w + 2 * self.pad - self.s) / self.stride + 1
    }

    /// Input feature-map blocks `Cb = ⌈C/VLEN⌉`.
    #[inline]
    pub fn cb(&self) -> usize {
        self.c.div_ceil(VLEN)
    }

    /// Output feature-map blocks `Kb = ⌈K/VLEN⌉`.
    #[inline]
    pub fn kb(&self) -> usize {
        self.k.div_ceil(VLEN)
    }

    /// Multiply–add count of one forward pass, counted as 2 ops each
    /// (the convention of the paper's GFLOPS plots).
    ///
    /// Uses the *logical* channel counts (`C`, `K`), not the padded
    /// ones, matching how the paper computes GFLOPS for layer 1.
    #[inline]
    pub fn flops(&self) -> u64 {
        2 * self.n as u64
            * self.c as u64
            * self.k as u64
            * self.p() as u64
            * self.q() as u64
            * self.r as u64
            * self.s as u64
    }

    /// Bytes touched by a minimal single pass over all three f32 tensors
    /// (each element once). Used by the roofline model for operational
    /// intensity; real traffic is higher without blocking.
    pub fn min_bytes_f32(&self) -> u64 {
        let input = self.n * self.c * (self.h + 2 * self.pad) * (self.w + 2 * self.pad);
        let output = self.n * self.k * self.p() * self.q();
        let weights = self.k * self.c * self.r * self.s;
        4 * (input as u64 + output as u64 + weights as u64)
    }

    /// The same layer with a different minibatch size.
    pub fn with_minibatch(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// True when the backward pass can reuse the forward kernels through
    /// the stride-1 weight-transpose duality (Section II-I scenario 1).
    #[inline]
    pub fn duality_stride1(&self) -> bool {
        self.stride == 1
    }

    /// True when the backward pass can reuse the forward kernels through
    /// the 1×1 duality (Section II-I scenario 2).
    #[inline]
    pub fn duality_1x1(&self) -> bool {
        self.r == 1 && self.s == 1
    }
}

impl std::fmt::Display for ConvShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N{} C{} K{} H{} W{} R{} S{} str{} pad{} -> P{} Q{}",
            self.n,
            self.c,
            self.k,
            self.h,
            self.w,
            self.r,
            self.s,
            self.stride,
            self.pad,
            self.p(),
            self.q()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_3x3_layer_shape() {
        // Table I layer 4: C=64 K=64 H=W=56 R=S=3 stride 1 (pad 1).
        let s = ConvShape::new(28, 64, 64, 56, 56, 3, 3, 1, 1);
        assert_eq!(s.p(), 56);
        assert_eq!(s.q(), 56);
        assert_eq!(s.cb(), 4);
        assert_eq!(s.kb(), 4);
    }

    #[test]
    fn resnet_1x1_stride2_shape() {
        // Table I layer 6: C=256 K=512 H=W=56 R=S=1 stride 2.
        let s = ConvShape::new(28, 256, 512, 56, 56, 1, 1, 2, 0);
        assert_eq!(s.p(), 28);
        assert_eq!(s.q(), 28);
    }

    #[test]
    fn first_conv_7x7() {
        // Table I layer 1: C=3 K=64 H=W=224 R=S=7 stride 2 (pad 3).
        let s = ConvShape::new(28, 3, 64, 224, 224, 7, 7, 2, 3);
        assert_eq!(s.p(), 112);
        assert_eq!(s.q(), 112);
        assert_eq!(s.cb(), 1); // 3 channels padded into one block
    }

    #[test]
    fn flops_formula() {
        let s = ConvShape::new(1, 16, 16, 4, 4, 1, 1, 1, 0);
        // 2*1*16*16*4*4*1*1 = 8192
        assert_eq!(s.flops(), 8192);
    }

    #[test]
    #[should_panic(expected = "filter larger")]
    fn rejects_filter_larger_than_input() {
        ConvShape::new(1, 16, 16, 2, 2, 5, 5, 1, 0);
    }

    #[test]
    fn duality_flags() {
        assert!(ConvShape::new(1, 16, 16, 8, 8, 3, 3, 1, 1).duality_stride1());
        assert!(ConvShape::new(1, 16, 16, 8, 8, 1, 1, 2, 0).duality_1x1());
        let s = ConvShape::new(1, 16, 16, 8, 8, 3, 3, 2, 1);
        assert!(!s.duality_stride1() && !s.duality_1x1());
    }
}
