//! Vectorization-friendly blocked tensor layouts (Section II-B).
//!
//! * [`BlockedActs`]: activations as `[N][Cb][Hp][Wp][VLEN]` where
//!   `Cb = ⌈C/VLEN⌉` and `Hp/Wp` include the physical zero padding.
//!   The feature-map vector is the innermost, fast-running dimension, so
//!   the microkernel's FMA reads/writes full SIMD vectors with unit
//!   stride.
//! * [`BlockedFilter`]: filters as `[Kb][Cb][R][S][c][k]` with `c`/`k`
//!   the intra-block input/output channel. One aligned vector load at
//!   `(kb,cb,r,s,c,·)` yields the weights connecting input channel `c`
//!   to all `VLEN` output channels of block `kb` — the "load weights,
//!   broadcast input pixel, FMA" recipe of Section II-D.
//!
//! Channel counts that are not multiples of `VLEN` are zero-padded to a
//! full block (exact: padded lanes contribute `0 · w = 0`).

use crate::align::AVec;
use crate::nchw::{Kcrs, Nchw};
use crate::rng::SplitMix64;
use crate::shape::VLEN;

/// Blocked activation tensor `[N][Cb][Hp][Wp][VLEN]` (f32).
#[derive(Clone, Debug)]
pub struct BlockedActs {
    /// Minibatch size.
    pub n: usize,
    /// Logical channel count (≤ `cb * VLEN`).
    pub c: usize,
    /// Channel blocks.
    pub cb: usize,
    /// Logical spatial height (without padding).
    pub h: usize,
    /// Logical spatial width (without padding).
    pub w: usize,
    /// Physical zero padding on each border.
    pub pad: usize,
    data: AVec<f32>,
}

impl BlockedActs {
    /// Zero tensor with `c` logical channels and `pad` physical padding.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize, pad: usize) -> Self {
        let cb = c.div_ceil(VLEN);
        let (hp, wp) = (h + 2 * pad, w + 2 * pad);
        Self { n, c, cb, h, w, pad, data: AVec::zeroed(n * cb * hp * wp * VLEN) }
    }

    /// Deterministically pseudo-random interior; the padding border and
    /// the channel-padding lanes stay zero (required for correctness).
    pub fn random(n: usize, c: usize, h: usize, w: usize, pad: usize, seed: u64) -> Self {
        let mut t = Self::zeros(n, c, h, w, pad);
        let mut rng = SplitMix64::new(seed);
        for n_ in 0..n {
            for c_ in 0..c {
                for h_ in 0..h {
                    for w_ in 0..w {
                        t.set(n_, c_, h_, w_, rng.next_f32());
                    }
                }
            }
        }
        t
    }

    /// Padded height.
    #[inline]
    pub fn hp(&self) -> usize {
        self.h + 2 * self.pad
    }

    /// Padded width.
    #[inline]
    pub fn wp(&self) -> usize {
        self.w + 2 * self.pad
    }

    /// Element stride between consecutive padded rows.
    #[inline]
    pub fn stride_h(&self) -> usize {
        self.wp() * VLEN
    }

    /// Element stride between channel blocks.
    #[inline]
    pub fn stride_cb(&self) -> usize {
        self.hp() * self.stride_h()
    }

    /// Element stride between minibatch samples.
    #[inline]
    pub fn stride_n(&self) -> usize {
        self.cb * self.stride_cb()
    }

    /// Flat element offset of the pixel vector at *physical* coordinates
    /// (`hp ∈ [0, Hp)`, `wp ∈ [0, Wp)`).
    #[inline]
    pub fn pix_offset(&self, n: usize, cb: usize, hp: usize, wp: usize) -> usize {
        debug_assert!(n < self.n && cb < self.cb && hp < self.hp() && wp < self.wp());
        ((n * self.cb + cb) * self.hp() + hp) * self.stride_h() + wp * VLEN
    }

    /// Flat element offset of the pixel vector at *logical* coordinates
    /// (`h ∈ [−pad, H+pad)` as an isize, likewise `w`). Callers in the
    /// convolution engines pass `ij + r − pad`-style coordinates here.
    #[inline]
    pub fn pix_offset_logical(&self, n: usize, cb: usize, h: isize, w: isize) -> usize {
        let hp = h + self.pad as isize;
        let wp = w + self.pad as isize;
        debug_assert!(hp >= 0 && (hp as usize) < self.hp(), "h={h} out of padded range");
        debug_assert!(wp >= 0 && (wp as usize) < self.wp(), "w={w} out of padded range");
        ((n * self.cb + cb) * self.hp() + hp as usize) * self.stride_h() + wp as usize * VLEN
    }

    /// Read one element by logical channel / logical spatial coords.
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        let off = self.pix_offset_logical(n, c / VLEN, h as isize, w as isize) + c % VLEN;
        self.data[off]
    }

    /// Write one element by logical channel / logical spatial coords.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let off = self.pix_offset_logical(n, c / VLEN, h as isize, w as isize) + c % VLEN;
        self.data[off] = v;
    }

    /// Raw pointer to element 0 (padding corner of sample 0, block 0).
    #[inline]
    pub fn as_ptr(&self) -> *const f32 {
        self.data.as_ptr()
    }

    /// Raw mutable pointer to element 0.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut f32 {
        self.data.as_mut_ptr()
    }

    /// Backing storage.
    pub fn as_slice(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Mutable backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data.as_mut_slice()
    }

    /// Zero every element (interior and padding).
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Import from `NCHW`, adding physical padding and channel padding.
    pub fn from_nchw(src: &Nchw, pad: usize) -> Self {
        let mut out = Self::zeros(src.n, src.c, src.h, src.w, pad);
        for n in 0..src.n {
            for c in 0..src.c {
                for h in 0..src.h {
                    for w in 0..src.w {
                        out.set(n, c, h, w, src.at(n, c, h, w));
                    }
                }
            }
        }
        out
    }

    /// Export the logical interior to `NCHW` (drops padding lanes/border).
    pub fn to_nchw(&self) -> Nchw {
        let mut out = Nchw::zeros(self.n, self.c, self.h, self.w);
        for n in 0..self.n {
            for c in 0..self.c {
                for h in 0..self.h {
                    for w in 0..self.w {
                        *out.at_mut(n, c, h, w) = self.get(n, c, h, w);
                    }
                }
            }
        }
        out
    }
}

/// Blocked filter tensor `[Kb][Cb][R][S][c][k]` (f32).
#[derive(Clone, Debug)]
pub struct BlockedFilter {
    /// Logical output channels.
    pub k: usize,
    /// Logical input channels.
    pub c: usize,
    /// Output channel blocks.
    pub kb: usize,
    /// Input channel blocks.
    pub cb: usize,
    /// Filter height.
    pub r: usize,
    /// Filter width.
    pub s: usize,
    data: AVec<f32>,
}

impl BlockedFilter {
    /// Zero filter.
    pub fn zeros(k: usize, c: usize, r: usize, s: usize) -> Self {
        let (kb, cb) = (k.div_ceil(VLEN), c.div_ceil(VLEN));
        Self { k, c, kb, cb, r, s, data: AVec::zeroed(kb * cb * r * s * VLEN * VLEN) }
    }

    /// Deterministically pseudo-random filter (padded lanes stay zero).
    pub fn random(k: usize, c: usize, r: usize, s: usize, seed: u64) -> Self {
        let mut t = Self::zeros(k, c, r, s);
        let mut rng = SplitMix64::new(seed);
        for k_ in 0..k {
            for c_ in 0..c {
                for r_ in 0..r {
                    for s_ in 0..s {
                        t.set(k_, c_, r_, s_, rng.next_f32());
                    }
                }
            }
        }
        t
    }

    /// Element stride between `(r, s)` taps: one `c × k` panel.
    #[inline]
    pub fn stride_s(&self) -> usize {
        VLEN * VLEN
    }

    /// Element stride between input-channel blocks.
    #[inline]
    pub fn stride_cb(&self) -> usize {
        self.r * self.s * self.stride_s()
    }

    /// Element stride between output-channel blocks.
    #[inline]
    pub fn stride_kb(&self) -> usize {
        self.cb * self.stride_cb()
    }

    /// Flat element offset of the `c×k` panel at `(kb, cb, r, s)`.
    #[inline]
    pub fn panel_offset(&self, kb: usize, cb: usize, r: usize, s: usize) -> usize {
        debug_assert!(kb < self.kb && cb < self.cb && r < self.r && s < self.s);
        ((kb * self.cb + cb) * self.r + r) * self.s * self.stride_s() + s * self.stride_s()
    }

    /// Read one element by logical channels.
    #[inline]
    pub fn get(&self, k: usize, c: usize, r: usize, s: usize) -> f32 {
        let off = self.panel_offset(k / VLEN, c / VLEN, r, s) + (c % VLEN) * VLEN + k % VLEN;
        self.data[off]
    }

    /// Write one element by logical channels.
    #[inline]
    pub fn set(&mut self, k: usize, c: usize, r: usize, s: usize, v: f32) {
        let off = self.panel_offset(k / VLEN, c / VLEN, r, s) + (c % VLEN) * VLEN + k % VLEN;
        self.data[off] = v;
    }

    /// Raw pointer to element 0.
    #[inline]
    pub fn as_ptr(&self) -> *const f32 {
        self.data.as_ptr()
    }

    /// Raw mutable pointer to element 0.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut f32 {
        self.data.as_mut_ptr()
    }

    /// Backing storage.
    pub fn as_slice(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Mutable backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data.as_mut_slice()
    }

    /// Zero every element.
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Import from `KCRS` with channel padding.
    pub fn from_kcrs(src: &Kcrs) -> Self {
        let mut out = Self::zeros(src.k, src.c, src.r, src.s);
        for k in 0..src.k {
            for c in 0..src.c {
                for r in 0..src.r {
                    for s in 0..src.s {
                        out.set(k, c, r, s, src.at(k, c, r, s));
                    }
                }
            }
        }
        out
    }

    /// Export to `KCRS` (drops channel-padding lanes).
    pub fn to_kcrs(&self) -> Kcrs {
        let mut out = Kcrs::zeros(self.k, self.c, self.r, self.s);
        for k in 0..self.k {
            for c in 0..self.c {
                for r in 0..self.r {
                    for s in 0..self.s {
                        *out.at_mut(k, c, r, s) = self.get(k, c, r, s);
                    }
                }
            }
        }
        out
    }

    /// The backward-duality filter (Section II-I): feature-map blocks
    /// transposed and spatial taps flipped, produced directly in blocked
    /// form. `out.get(c, k, r, s) == self.get(k, c, R−1−r, S−1−s)`.
    ///
    /// This is a layer-setup-time transformation (it happens once per
    /// layer, like the JIT), so clarity beats speed here.
    pub fn transpose_flip(&self) -> BlockedFilter {
        let mut out = BlockedFilter::zeros(self.c, self.k, self.r, self.s);
        for k in 0..self.k {
            for c in 0..self.c {
                for r in 0..self.r {
                    for s in 0..self.s {
                        out.set(c, k, self.r - 1 - r, self.s - 1 - s, self.get(k, c, r, s));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acts_roundtrip_nchw() {
        let src = Nchw::random(2, 19, 5, 7, 3); // 19 channels: pads to 2 blocks
        let blk = BlockedActs::from_nchw(&src, 2);
        assert_eq!(blk.cb, 2);
        assert_eq!(blk.hp(), 9);
        let back = blk.to_nchw();
        assert_eq!(back.as_slice(), src.as_slice());
    }

    #[test]
    fn acts_padding_border_is_zero() {
        let src = Nchw::random(1, 16, 4, 4, 3);
        let blk = BlockedActs::from_nchw(&src, 1);
        // physical row 0 and column 0 are padding
        for wp in 0..blk.wp() {
            let off = blk.pix_offset_logical(0, 0, -1, wp as isize - 1);
            for v in 0..VLEN {
                assert_eq!(blk.as_slice()[off + v], 0.0);
            }
        }
    }

    #[test]
    fn acts_channel_padding_lanes_are_zero() {
        let src = Nchw::random(1, 3, 2, 2, 3);
        let blk = BlockedActs::from_nchw(&src, 0);
        for h in 0..2 {
            for w in 0..2 {
                let off = blk.pix_offset_logical(0, 0, h, w);
                for lane in 3..VLEN {
                    assert_eq!(blk.as_slice()[off + lane], 0.0);
                }
            }
        }
    }

    #[test]
    fn acts_strides_consistent() {
        let blk = BlockedActs::zeros(2, 32, 8, 8, 1);
        assert_eq!(blk.stride_h(), blk.wp() * VLEN);
        assert_eq!(blk.stride_cb(), blk.hp() * blk.stride_h());
        assert_eq!(blk.stride_n(), blk.cb * blk.stride_cb());
        assert_eq!(
            blk.pix_offset_logical(1, 1, 0, 0),
            blk.stride_n() + blk.stride_cb() + blk.pad * blk.stride_h() + blk.pad * VLEN
        );
    }

    #[test]
    fn filter_roundtrip_kcrs() {
        let src = Kcrs::random(35, 19, 3, 3, 17);
        let blk = BlockedFilter::from_kcrs(&src);
        assert_eq!((blk.kb, blk.cb), (3, 2));
        let back = blk.to_kcrs();
        assert_eq!(back.as_slice(), src.as_slice());
    }

    #[test]
    fn filter_panel_layout_is_ck() {
        // inside a panel, c is the row and k the column
        let mut f = BlockedFilter::zeros(16, 16, 1, 1);
        f.set(5, 7, 0, 0, 3.0);
        assert_eq!(f.as_slice()[7 * VLEN + 5], 3.0);
    }

    #[test]
    fn filter_transpose_flip_matches_kcrs_path() {
        let src = Kcrs::random(32, 16, 3, 3, 23);
        let blk = BlockedFilter::from_kcrs(&src);
        let a = blk.transpose_flip().to_kcrs();
        let b = src.transpose_flip();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn get_set_roundtrip_random_positions() {
        let mut blk = BlockedActs::zeros(2, 40, 6, 6, 1);
        blk.set(1, 39, 5, 0, 4.5);
        assert_eq!(blk.get(1, 39, 5, 0), 4.5);
        assert_eq!(blk.get(1, 38, 5, 0), 0.0);
    }
}
