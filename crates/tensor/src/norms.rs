//! Comparison norms for validating optimized kernels against the
//! reference loop nests.
//!
//! The paper's artifact (Section V-E) validates every JIT kernel against
//! a simple loop nest "using several norms (Linf of absolute error, L2
//! of absolute error, Linf of relative error, L2 of relative error)" —
//! this module is that validator.

/// The four norms of the paper's artifact plus the max-magnitude of the
/// reference, which contextualizes absolute errors.
#[derive(Clone, Copy, Debug, Default)]
pub struct Norms {
    /// max |ref − test|
    pub linf_abs: f64,
    /// sqrt(Σ (ref − test)²)
    pub l2_abs: f64,
    /// max |ref − test| / |ref| over elements with |ref| > tiny
    pub linf_rel: f64,
    /// sqrt(Σ (ref − test)²) / sqrt(Σ ref²)
    pub l2_rel: f64,
    /// max |ref|
    pub ref_max: f64,
}

impl Norms {
    /// Compute all norms between a reference and a test slice.
    ///
    /// # Panics
    /// Panics when the slices have different lengths.
    pub fn compare(reference: &[f32], test: &[f32]) -> Self {
        assert_eq!(reference.len(), test.len(), "norm: length mismatch");
        let tiny = 1e-30f64;
        let mut n = Norms::default();
        let mut sq_err = 0.0f64;
        let mut sq_ref = 0.0f64;
        for (&r, &t) in reference.iter().zip(test.iter()) {
            let (r, t) = (r as f64, t as f64);
            let e = (r - t).abs();
            n.linf_abs = n.linf_abs.max(e);
            n.ref_max = n.ref_max.max(r.abs());
            sq_err += (r - t) * (r - t);
            sq_ref += r * r;
            if r.abs() > tiny {
                n.linf_rel = n.linf_rel.max(e / r.abs());
            }
        }
        n.l2_abs = sq_err.sqrt();
        n.l2_rel = if sq_ref > 0.0 { (sq_err / sq_ref).sqrt() } else { n.l2_abs };
        n
    }

    /// Compare int32 buffers (used by the quantized kernels, which must
    /// match the reference bit-exactly).
    pub fn compare_i32(reference: &[i32], test: &[i32]) -> Self {
        assert_eq!(reference.len(), test.len(), "norm: length mismatch");
        let mut n = Norms::default();
        let mut sq_err = 0.0f64;
        let mut sq_ref = 0.0f64;
        for (&r, &t) in reference.iter().zip(test.iter()) {
            let (r, t) = (r as f64, t as f64);
            let e = (r - t).abs();
            n.linf_abs = n.linf_abs.max(e);
            n.ref_max = n.ref_max.max(r.abs());
            sq_err += (r - t) * (r - t);
            sq_ref += r * r;
            if r != 0.0 {
                n.linf_rel = n.linf_rel.max(e / r.abs());
            }
        }
        n.l2_abs = sq_err.sqrt();
        n.l2_rel = if sq_ref > 0.0 { (sq_err / sq_ref).sqrt() } else { n.l2_abs };
        n
    }

    /// Accept when the relative L2 error is below `tol` — the criterion
    /// used by all kernel correctness tests. For f32 direct convolutions
    /// against an f32 reference, reordering-induced error stays well
    /// below 1e-4 for the problem sizes in this repo.
    pub fn ok(&self, tol: f64) -> bool {
        self.l2_rel <= tol && self.linf_abs.is_finite()
    }
}

impl std::fmt::Display for Norms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Linf-abs {:.3e}  L2-abs {:.3e}  Linf-rel {:.3e}  L2-rel {:.3e}",
            self.linf_abs, self.l2_abs, self.linf_rel, self.l2_rel
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_slices_have_zero_norms() {
        let a = [1.0f32, -2.0, 3.5, 0.0];
        let n = Norms::compare(&a, &a);
        assert_eq!(n.linf_abs, 0.0);
        assert_eq!(n.l2_abs, 0.0);
        assert_eq!(n.linf_rel, 0.0);
        assert_eq!(n.l2_rel, 0.0);
        assert!(n.ok(1e-12));
    }

    #[test]
    fn single_element_error() {
        let r = [2.0f32, 4.0];
        let t = [2.0f32, 5.0];
        let n = Norms::compare(&r, &t);
        assert_eq!(n.linf_abs, 1.0);
        assert!((n.linf_rel - 0.25).abs() < 1e-12);
        assert!((n.l2_abs - 1.0).abs() < 1e-12);
        assert!((n.l2_rel - 1.0 / 20.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn zero_reference_counts_absolute() {
        let r = [0.0f32; 4];
        let t = [1e-3f32; 4];
        let n = Norms::compare(&r, &t);
        assert!(n.l2_rel > 0.0);
        assert!(!n.ok(1e-6));
    }

    #[test]
    fn i32_exact_comparison() {
        let r = [1i32, -5, 100000];
        let n = Norms::compare_i32(&r, &r);
        assert!(n.ok(0.0));
        let t = [1i32, -5, 100001];
        let n = Norms::compare_i32(&r, &t);
        assert!(!n.ok(0.0));
        assert_eq!(n.linf_abs, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_length_mismatch() {
        Norms::compare(&[1.0], &[1.0, 2.0]);
    }
}
