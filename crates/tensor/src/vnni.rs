//! Reduced-precision (int16) tensor layouts for the quantized kernels
//! (Section II-K).
//!
//! Knights Mill's `4VNNIW` (and AVX-512 VNNI's `vpdpwssd`) multiply
//! *pairs* of adjacent int16 values held in one 32-bit lane and
//! accumulate into int32. To feed that instruction with plain loads and
//! 32-bit broadcasts:
//!
//! * activations keep the natural channel order `[N][Cb][Hp][Wp][VLEN]`
//!   of i16 — a 32-bit broadcast at an even channel offset carries the
//!   channel pair `(c, c+1)`;
//! * filters interleave the channel pair innermost:
//!   `[Kb][Cb][R][S][c/2][k][2]`, so one 512-bit load yields, for every
//!   output lane `k`, the pair `(w[c][k], w[c+1][k])` packed into a
//!   32-bit lane;
//! * outputs accumulate in int32 `[N][Kb][P][Q][VLEN]` — this is why
//!   the paper's int16 kernels move the same number of output bytes as
//!   fp32 and cannot reach a 2× speedup.

use crate::align::AVec;
use crate::rng::SplitMix64;
use crate::shape::VLEN;

/// Largest magnitude representable in the symmetric int8 quantization
/// range. Values are carried in i16 VNNI containers but saturate at
/// `±127` — the symmetric choice avoids the `-128` asymmetry so a
/// quantized value can always be negated without overflow.
pub const I8_QMAX: f32 = 127.0;

/// Round-to-nearest-even quantization saturating at the symmetric i8
/// edges `[-127, 127]`. NaN inputs quantize to 0 (Rust's saturating
/// float→int cast), so a degenerate scale can never poison the tensor.
#[inline]
pub fn rne_sat_i8(v: f32) -> i16 {
    v.round_ties_even().clamp(-I8_QMAX, I8_QMAX) as i16
}

/// Blocked int16 activations `[N][Cb][Hp][Wp][VLEN]`.
#[derive(Clone, Debug)]
pub struct VnniActs {
    pub n: usize,
    pub c: usize,
    pub cb: usize,
    pub h: usize,
    pub w: usize,
    pub pad: usize,
    data: AVec<i16>,
}

impl VnniActs {
    /// Zero tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize, pad: usize) -> Self {
        let cb = c.div_ceil(VLEN);
        let (hp, wp) = (h + 2 * pad, w + 2 * pad);
        Self { n, c, cb, h, w, pad, data: AVec::zeroed(n * cb * hp * wp * VLEN) }
    }

    /// Deterministic small random interior (range safe for long i32
    /// accumulation chains); padding stays zero.
    pub fn random(n: usize, c: usize, h: usize, w: usize, pad: usize, seed: u64) -> Self {
        let mut t = Self::zeros(n, c, h, w, pad);
        let mut rng = SplitMix64::new(seed);
        for n_ in 0..n {
            for c_ in 0..c {
                for h_ in 0..h {
                    for w_ in 0..w {
                        t.set(n_, c_, h_, w_, rng.next_i16());
                    }
                }
            }
        }
        t
    }

    /// Padded height.
    #[inline]
    pub fn hp(&self) -> usize {
        self.h + 2 * self.pad
    }

    /// Padded width.
    #[inline]
    pub fn wp(&self) -> usize {
        self.w + 2 * self.pad
    }

    /// Element stride between padded rows.
    #[inline]
    pub fn stride_h(&self) -> usize {
        self.wp() * VLEN
    }

    /// Element stride between channel blocks.
    #[inline]
    pub fn stride_cb(&self) -> usize {
        self.hp() * self.stride_h()
    }

    /// Element stride between samples.
    #[inline]
    pub fn stride_n(&self) -> usize {
        self.cb * self.stride_cb()
    }

    /// Flat offset of a pixel vector by logical coordinates.
    #[inline]
    pub fn pix_offset_logical(&self, n: usize, cb: usize, h: isize, w: isize) -> usize {
        let hp = h + self.pad as isize;
        let wp = w + self.pad as isize;
        debug_assert!(hp >= 0 && (hp as usize) < self.hp());
        debug_assert!(wp >= 0 && (wp as usize) < self.wp());
        ((n * self.cb + cb) * self.hp() + hp as usize) * self.stride_h() + wp as usize * VLEN
    }

    /// Read an element by logical channel and spatial coords.
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> i16 {
        self.data[self.pix_offset_logical(n, c / VLEN, h as isize, w as isize) + c % VLEN]
    }

    /// Write an element by logical channel and spatial coords.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: i16) {
        let off = self.pix_offset_logical(n, c / VLEN, h as isize, w as isize) + c % VLEN;
        self.data[off] = v;
    }

    /// Quantize a f32 blocked tensor with the given scale
    /// (`q = round(x / scale)`, saturating).
    pub fn quantize(src: &crate::BlockedActs, scale: f32) -> Self {
        let mut out = Self::zeros(src.n, src.c, src.h, src.w, src.pad);
        let inv = 1.0 / scale;
        for (d, s) in out.data.as_mut_slice().iter_mut().zip(src.as_slice()) {
            *d = (s * inv).round().clamp(i16::MIN as f32, i16::MAX as f32) as i16;
        }
        out
    }

    /// Per-channel int8-range quantization into this tensor (which acts
    /// as a reusable scratch buffer: the executor quantizes every conv
    /// input into one geometry-keyed scratch instead of reallocating).
    ///
    /// `q[c] = rne_sat_i8(x[c] · inv_scale[c])` — round-to-nearest-even,
    /// saturating at `±127`. `inv_scale` must cover the padded channel
    /// count (`cb · VLEN`). Geometry (incl. physical padding) must match
    /// `src` exactly; the zero padding quantizes to exact zeros, so a
    /// sample's quantized image is independent of its batch neighbours.
    pub fn quantize_per_channel_into(&mut self, src: &crate::BlockedActs, inv_scale: &[f32]) {
        assert_eq!(
            (self.n, self.cb, self.h, self.w, self.pad),
            (src.n, src.cb, src.h, src.w, src.pad),
            "quantize scratch geometry mismatch"
        );
        assert!(inv_scale.len() >= self.cb * VLEN, "inv_scale shorter than padded channels");
        let chunk = self.stride_cb();
        let cb_total = self.cb;
        for (ci, (dst, s)) in
            self.data.as_mut_slice().chunks_mut(chunk).zip(src.as_slice().chunks(chunk)).enumerate()
        {
            let inv = &inv_scale[(ci % cb_total) * VLEN..(ci % cb_total) * VLEN + VLEN];
            for (i, (d, x)) in dst.iter_mut().zip(s).enumerate() {
                *d = rne_sat_i8(x * inv[i % VLEN]);
            }
        }
    }

    /// Raw pointer.
    #[inline]
    pub fn as_ptr(&self) -> *const i16 {
        self.data.as_ptr()
    }

    /// Backing storage.
    pub fn as_slice(&self) -> &[i16] {
        self.data.as_slice()
    }

    /// Mutable backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [i16] {
        self.data.as_mut_slice()
    }
}

/// VNNI-interleaved int16 filter `[Kb][Cb][R][S][c/2][k][2]`.
#[derive(Clone, Debug)]
pub struct VnniFilter {
    pub k: usize,
    pub c: usize,
    pub kb: usize,
    pub cb: usize,
    pub r: usize,
    pub s: usize,
    data: AVec<i16>,
}

impl VnniFilter {
    /// Zero filter.
    pub fn zeros(k: usize, c: usize, r: usize, s: usize) -> Self {
        let (kb, cb) = (k.div_ceil(VLEN), c.div_ceil(VLEN));
        Self { k, c, kb, cb, r, s, data: AVec::zeroed(kb * cb * r * s * VLEN * VLEN) }
    }

    /// Deterministic small random filter.
    pub fn random(k: usize, c: usize, r: usize, s: usize, seed: u64) -> Self {
        let mut t = Self::zeros(k, c, r, s);
        let mut rng = SplitMix64::new(seed);
        for k_ in 0..k {
            for c_ in 0..c {
                for r_ in 0..r {
                    for s_ in 0..s {
                        t.set(k_, c_, r_, s_, rng.next_i16());
                    }
                }
            }
        }
        t
    }

    /// Element stride between `(r, s)` taps: one interleaved panel.
    #[inline]
    pub fn stride_s(&self) -> usize {
        VLEN * VLEN
    }

    /// Flat offset of the pair-interleaved panel at `(kb, cb, r, s)`.
    #[inline]
    pub fn panel_offset(&self, kb: usize, cb: usize, r: usize, s: usize) -> usize {
        debug_assert!(kb < self.kb && cb < self.cb && r < self.r && s < self.s);
        (((kb * self.cb + cb) * self.r + r) * self.s + s) * self.stride_s()
    }

    /// Read element by logical channels: pair-interleaved addressing.
    #[inline]
    pub fn get(&self, k: usize, c: usize, r: usize, s: usize) -> i16 {
        let base = self.panel_offset(k / VLEN, c / VLEN, r, s);
        let (cp, parity) = ((c % VLEN) / 2, c % 2);
        self.data[base + (cp * VLEN + k % VLEN) * 2 + parity]
    }

    /// Write element by logical channels.
    #[inline]
    pub fn set(&mut self, k: usize, c: usize, r: usize, s: usize, v: i16) {
        let base = self.panel_offset(k / VLEN, c / VLEN, r, s);
        let (cp, parity) = ((c % VLEN) / 2, c % 2);
        let off = base + (cp * VLEN + k % VLEN) * 2 + parity;
        self.data[off] = v;
    }

    /// Symmetric per-output-channel quantization with the per-input-
    /// channel activation scales folded into the weights.
    ///
    /// The effective weight is `w'[k,c] = w[k,c] · act_scale[c]`; each
    /// output channel gets `scale[k] = amax_c,r,s |w'[k]| / 127` (1.0
    /// for an all-zero channel, so downstream requantization never
    /// divides by zero or produces NaN) and `q = rne_sat_i8(w'/scale[k])`.
    /// Because the activation scales are folded in here, `scale[k]` is
    /// exactly the requantization multiplier that converts the int32
    /// accumulator back to f32. The returned vector covers the padded
    /// channel count (`kb · VLEN`, pad lanes 1.0).
    pub fn quantize_per_k(src: &crate::BlockedFilter, act_scale: &[f32]) -> (Self, Vec<f32>) {
        assert!(act_scale.len() >= src.c, "act_scale shorter than input channels");
        let mut out = Self::zeros(src.k, src.c, src.r, src.s);
        let mut mult = vec![1.0f32; out.kb * VLEN];
        for (k, mult_k) in mult.iter_mut().enumerate().take(src.k) {
            let mut amax = 0.0f32;
            for (c, &sx) in act_scale.iter().enumerate().take(src.c) {
                for r in 0..src.r {
                    for s in 0..src.s {
                        amax = amax.max((src.get(k, c, r, s) * sx).abs());
                    }
                }
            }
            let scale = if amax > 0.0 { amax / I8_QMAX } else { 1.0 };
            *mult_k = scale;
            let inv = 1.0 / scale;
            for (c, &sx) in act_scale.iter().enumerate().take(src.c) {
                for r in 0..src.r {
                    for s in 0..src.s {
                        out.set(k, c, r, s, rne_sat_i8(src.get(k, c, r, s) * sx * inv));
                    }
                }
            }
        }
        (out, mult)
    }

    /// Quantize a f32 blocked filter with the given scale.
    pub fn quantize(src: &crate::BlockedFilter, scale: f32) -> Self {
        let mut out = Self::zeros(src.k, src.c, src.r, src.s);
        let inv = 1.0 / scale;
        for k in 0..src.k {
            for c in 0..src.c {
                for r in 0..src.r {
                    for s in 0..src.s {
                        let q = (src.get(k, c, r, s) * inv)
                            .round()
                            .clamp(i16::MIN as f32, i16::MAX as f32)
                            as i16;
                        out.set(k, c, r, s, q);
                    }
                }
            }
        }
        out
    }

    /// Raw pointer.
    #[inline]
    pub fn as_ptr(&self) -> *const i16 {
        self.data.as_ptr()
    }

    /// Backing storage.
    pub fn as_slice(&self) -> &[i16] {
        self.data.as_slice()
    }
}

/// Blocked int32 tensor `[N][Kb][P][Q][VLEN]` — the accumulator/output
/// side of the quantized kernels.
#[derive(Clone, Debug)]
pub struct BlockedI32 {
    pub n: usize,
    pub k: usize,
    pub kb: usize,
    pub h: usize,
    pub w: usize,
    data: AVec<i32>,
}

impl BlockedI32 {
    /// Zero tensor (outputs carry no physical padding).
    pub fn zeros(n: usize, k: usize, h: usize, w: usize) -> Self {
        let kb = k.div_ceil(VLEN);
        Self { n, k, kb, h, w, data: AVec::zeroed(n * kb * h * w * VLEN) }
    }

    /// Element stride between rows.
    #[inline]
    pub fn stride_h(&self) -> usize {
        self.w * VLEN
    }

    /// Element stride between channel blocks.
    #[inline]
    pub fn stride_kb(&self) -> usize {
        self.h * self.stride_h()
    }

    /// Element stride between samples.
    #[inline]
    pub fn stride_n(&self) -> usize {
        self.kb * self.stride_kb()
    }

    /// Flat offset of a pixel vector.
    #[inline]
    pub fn pix_offset(&self, n: usize, kb: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && kb < self.kb && h < self.h && w < self.w);
        ((n * self.kb + kb) * self.h + h) * self.stride_h() + w * VLEN
    }

    /// Read element by logical channel.
    #[inline]
    pub fn get(&self, n: usize, k: usize, h: usize, w: usize) -> i32 {
        self.data[self.pix_offset(n, k / VLEN, h, w) + k % VLEN]
    }

    /// Write element by logical channel.
    #[inline]
    pub fn set(&mut self, n: usize, k: usize, h: usize, w: usize, v: i32) {
        let off = self.pix_offset(n, k / VLEN, h, w) + k % VLEN;
        self.data[off] = v;
    }

    /// Zero all elements.
    pub fn zero(&mut self) {
        self.data.fill(0);
    }

    /// Dequantize into a f32 blocked tensor with combined scale
    /// `x = q · scale` (where `scale = in_scale · w_scale`).
    pub fn dequantize(&self, scale: f32) -> crate::BlockedActs {
        let mut out = crate::BlockedActs::zeros(self.n, self.k, self.h, self.w, 0);
        for (d, s) in out.as_mut_slice().iter_mut().zip(self.data.as_slice()) {
            *d = *s as f32 * scale;
        }
        out
    }

    /// Raw mutable pointer.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut i32 {
        self.data.as_mut_ptr()
    }

    /// Raw const pointer.
    #[inline]
    pub fn as_ptr(&self) -> *const i32 {
        self.data.as_ptr()
    }

    /// Backing storage.
    pub fn as_slice(&self) -> &[i32] {
        self.data.as_slice()
    }

    /// Mutable backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [i32] {
        self.data.as_mut_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acts_pairing_is_natural_order() {
        // channels are stored in natural order: a 32-bit broadcast at an
        // even lane reads channels (c, c+1)
        let mut a = VnniActs::zeros(1, 16, 1, 1, 0);
        for c in 0..16 {
            a.set(0, c, 0, 0, c as i16);
        }
        let s = a.as_slice();
        for (c, &v) in s.iter().enumerate().take(16) {
            assert_eq!(v, c as i16);
        }
    }

    #[test]
    fn filter_pair_interleave() {
        let mut f = VnniFilter::zeros(16, 16, 1, 1);
        f.set(3, 4, 0, 0, 40); // even channel of pair 2
        f.set(3, 5, 0, 0, 50); // odd channel of pair 2
        let s = f.as_slice();
        // pair cp=2, k=3: offset (2*16+3)*2 = 70, parity 0/1
        assert_eq!(s[70], 40);
        assert_eq!(s[71], 50);
    }

    #[test]
    fn filter_get_set_roundtrip() {
        let mut f = VnniFilter::zeros(32, 48, 3, 3);
        f.set(17, 33, 2, 1, -7);
        assert_eq!(f.get(17, 33, 2, 1), -7);
        assert_eq!(f.get(17, 32, 2, 1), 0);
    }

    #[test]
    fn quantize_dequantize_roundtrip() {
        let src = crate::BlockedActs::random(1, 16, 4, 4, 0, 3);
        let q = VnniActs::quantize(&src, 1.0 / 256.0);
        for c in 0..16 {
            for h in 0..4 {
                for w in 0..4 {
                    let x = src.get(0, c, h, w);
                    let back = q.get(0, c, h, w) as f32 / 256.0;
                    assert!((x - back).abs() <= 0.5 / 256.0 + 1e-6);
                }
            }
        }
    }

    #[test]
    fn rne_sat_rounds_to_even_and_saturates() {
        assert_eq!(rne_sat_i8(0.5), 0);
        assert_eq!(rne_sat_i8(1.5), 2);
        assert_eq!(rne_sat_i8(2.5), 2);
        assert_eq!(rne_sat_i8(-0.5), 0);
        assert_eq!(rne_sat_i8(-1.5), -2);
        assert_eq!(rne_sat_i8(1000.0), 127);
        assert_eq!(rne_sat_i8(-1000.0), -127);
        assert_eq!(rne_sat_i8(f32::NAN), 0);
        assert_eq!(rne_sat_i8(f32::INFINITY), 127);
    }

    #[test]
    fn per_channel_quantize_respects_scales_and_padding() {
        let mut src = crate::BlockedActs::zeros(1, 32, 3, 3, 1);
        src.set(0, 0, 1, 1, 0.5);
        src.set(0, 17, 0, 2, -0.25);
        let mut inv = vec![1.0f32; 32];
        inv[0] = 100.0; // scale 0.01
        inv[17] = 8.0;
        let mut q = VnniActs::zeros(1, 32, 3, 3, 1);
        q.quantize_per_channel_into(&src, &inv);
        assert_eq!(q.get(0, 0, 1, 1), 50);
        assert_eq!(q.get(0, 17, 0, 2), -2);
        // physical padding must stay exactly zero
        let off = q.pix_offset_logical(0, 0, -1, -1);
        for v in 0..VLEN {
            assert_eq!(q.as_slice()[off + v], 0);
        }
    }

    #[test]
    fn filter_per_k_quantization_is_symmetric_and_safe() {
        let mut w = crate::BlockedFilter::zeros(32, 16, 1, 1);
        for c in 0..16 {
            w.set(0, c, 0, 0, 0.1 * (c as f32 + 1.0));
            // channel 1 stays all-zero (degenerate)
        }
        let act_scale = vec![0.5f32; 16];
        let (q, mult) = VnniFilter::quantize_per_k(&w, &act_scale);
        assert_eq!(mult.len(), 32);
        // amax of k=0 lands exactly on ±127
        assert_eq!(q.get(0, 15, 0, 0), 127);
        // degenerate all-zero output channel: safe scale, zero weights
        assert_eq!(mult[1], 1.0);
        assert!(mult.iter().all(|m| m.is_finite() && *m > 0.0));
        assert_eq!(q.get(1, 3, 0, 0), 0);
        // round trip within half a step
        for (c, &sx) in act_scale.iter().enumerate() {
            let back = q.get(0, c, 0, 0) as f32 * mult[0] / sx;
            let err = (back - w.get(0, c, 0, 0)).abs();
            assert!(err <= 0.5 * mult[0] / sx + 1e-6, "c={c} err={err}");
        }
    }

    #[test]
    fn i32_out_roundtrip() {
        let mut o = BlockedI32::zeros(2, 32, 3, 3);
        o.set(1, 31, 2, 2, -12345);
        assert_eq!(o.get(1, 31, 2, 2), -12345);
        let f = o.dequantize(0.5);
        assert_eq!(f.get(1, 31, 2, 2), -6172.5);
    }
}
