//! Tiny deterministic RNG for tensor fills.
//!
//! Kernel correctness tests and the layer benchmark auto-generate their
//! input data (paper artifact §V-B5). A self-contained xoshiro-style
//! generator keeps this crate dependency-free and the fills reproducible
//! across runs and platforms.

/// SplitMix64 — used to seed and as a simple standalone stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f32 in `[-0.5, 0.5)` — the value range used by the layer
    /// tests; small magnitudes keep f32 accumulation error low.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        // 24 mantissa bits -> uniform in [0,1), then center.
        let bits = (self.next_u64() >> 40) as u32;
        bits as f32 * (1.0 / (1 << 24) as f32) - 0.5
    }

    /// Uniform i16 in `[-64, 63]`, safe for long i32 accumulation chains.
    #[inline]
    pub fn next_i16(&mut self) -> i16 {
        ((self.next_u64() & 0x7F) as i16) - 64
    }

    /// Fill a f32 slice.
    pub fn fill_f32(&mut self, dst: &mut [f32]) {
        for v in dst {
            *v = self.next_f32();
        }
    }

    /// Fill an i16 slice.
    pub fn fill_i16(&mut self, dst: &mut [i16]) {
        for v in dst {
            *v = self.next_i16();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f32_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((-0.5..0.5).contains(&x), "{x}");
        }
    }

    #[test]
    fn i16_range() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = r.next_i16();
            assert!((-64..=63).contains(&x), "{x}");
        }
    }

    #[test]
    fn f32_mean_near_zero() {
        let mut r = SplitMix64::new(13);
        let n = 100_000;
        let mean: f32 = (0..n).map(|_| r.next_f32()).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.01, "mean={mean}");
    }
}
