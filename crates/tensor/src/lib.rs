//! Blocked tensor layouts for high-performance direct convolutions.
//!
//! This crate implements the data layouts from Section II-B of
//! *Anatomy of High-Performance Deep Learning Convolutions on SIMD
//! Architectures* (Georganas et al., SC'18):
//!
//! * activations are stored as `[N][C/VLEN][H][W][VLEN]` so that the
//!   innermost, fast-running dimension is a full SIMD vector of feature
//!   maps ("NCHWc" in oneDNN parlance),
//! * filters are stored as `[K/VLEN][C/VLEN][R][S][VLEN_c][VLEN_k]`
//!   ("KCRSck"), putting an output-feature-map vector innermost so a
//!   single aligned vector load yields the weights of `VLEN` output
//!   channels for one input channel,
//! * reduced-precision (int16) tensors use the VNNI pairing layout
//!   `[N][C/VLEN][H][W][VLEN/2][2]` / `[K/VLEN][C/VLEN][R][S][VLEN_c/2][VLEN_k][2]`
//!   so that one 32-bit broadcast carries two adjacent input channels
//!   (Section II-K).
//!
//! The crate also provides plain `NCHW`/`KCRS` tensors (used as the
//! reference implementation's format), conversions in both directions,
//! physical spatial padding, zero channel-padding up to `VLEN`, and the
//! comparison norms used by the paper's artifact (L∞/L2, absolute and
//! relative).

pub mod align;
pub mod blocked;
pub mod nchw;
pub mod norms;
pub mod rng;
pub mod shape;
pub mod vnni;

pub use align::AVec;
pub use blocked::{BlockedActs, BlockedFilter};
pub use nchw::{Kcrs, Nchw};
pub use norms::Norms;
pub use shape::{ConvShape, VLEN};
pub use vnni::{VnniActs, VnniFilter};

/// Round `x` up to the next multiple of `m` (`m > 0`).
#[inline]
pub const fn round_up(x: usize, m: usize) -> usize {
    x.div_ceil(m) * m
}

/// Number of `VLEN` blocks needed to cover `c` channels.
#[inline]
pub const fn blocks(c: usize) -> usize {
    c.div_ceil(VLEN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_up_basic() {
        assert_eq!(round_up(0, 16), 0);
        assert_eq!(round_up(1, 16), 16);
        assert_eq!(round_up(16, 16), 16);
        assert_eq!(round_up(17, 16), 32);
        assert_eq!(round_up(3, 16), 16);
    }

    #[test]
    fn blocks_basic() {
        assert_eq!(blocks(3), 1);
        assert_eq!(blocks(16), 1);
        assert_eq!(blocks(64), 4);
        assert_eq!(blocks(2048), 128);
    }
}
