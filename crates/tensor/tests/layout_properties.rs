//! Property-based tests on the blocked tensor layouts: conversion
//! round-trips, padding invariants, and offset arithmetic over random
//! geometries.

use proptest::prelude::*;
use tensor::{BlockedActs, BlockedFilter, Kcrs, Nchw, VnniActs, VnniFilter, VLEN};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nchw_blocked_roundtrip(
        n in 1usize..4,
        c in 1usize..40,
        h in 1usize..10,
        w in 1usize..10,
        pad in 0usize..3,
        seed in 0u64..1000,
    ) {
        let src = Nchw::random(n, c, h, w, seed);
        let blk = BlockedActs::from_nchw(&src, pad);
        prop_assert_eq!(blk.cb, c.div_ceil(VLEN));
        let back = blk.to_nchw();
        prop_assert_eq!(back.as_slice().to_vec(), src.as_slice().to_vec());
    }

    #[test]
    fn blocked_padding_border_is_always_zero(
        n in 1usize..3,
        c in 1usize..33,
        h in 1usize..8,
        w in 1usize..8,
        pad in 1usize..4,
        seed in 0u64..1000,
    ) {
        let src = Nchw::random(n, c, h, w, seed);
        let blk = BlockedActs::from_nchw(&src, pad);
        // walk the full physical extent; anything outside the logical
        // interior must be zero
        for n_ in 0..n {
            for cb in 0..blk.cb {
                for hp in 0..blk.hp() {
                    for wp in 0..blk.wp() {
                        let interior = hp >= pad && hp < pad + h && wp >= pad && wp < pad + w;
                        if !interior {
                            let off = ((n_ * blk.cb + cb) * blk.hp() + hp) * blk.stride_h()
                                + wp * VLEN;
                            for v in 0..VLEN {
                                prop_assert_eq!(blk.as_slice()[off + v], 0.0);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn filter_roundtrip_and_double_transpose(
        k in 1usize..40,
        c in 1usize..40,
        r in 1usize..4,
        s in 1usize..4,
        seed in 0u64..1000,
    ) {
        let src = Kcrs::random(k, c, r, s, seed);
        let blk = BlockedFilter::from_kcrs(&src);
        prop_assert_eq!(blk.to_kcrs().as_slice().to_vec(), src.as_slice().to_vec());
        // transpose_flip is an involution
        let twice = blk.transpose_flip().transpose_flip();
        prop_assert_eq!(twice.as_slice().to_vec(), blk.as_slice().to_vec());
        // and matches the plain-layout transform
        prop_assert_eq!(
            blk.transpose_flip().to_kcrs().as_slice().to_vec(),
            src.transpose_flip().as_slice().to_vec()
        );
    }

    #[test]
    fn vnni_pairing_reads_back(
        k in 1usize..33,
        c in 1usize..33,
        r in 1usize..3,
        s in 1usize..3,
        seed in 0u64..1000,
    ) {
        let f = VnniFilter::random(k, c, r, s, seed);
        // get after set round-trips through the pair interleave
        for (kk, cc) in [(0usize, 0usize), (k - 1, c - 1), (k / 2, c / 2)] {
            let v = f.get(kk, cc, r - 1, s - 1);
            prop_assert!((-64..=63).contains(&v));
        }
        let a = VnniActs::random(1, c, 3, 3, 1, seed);
        for cc in 0..c {
            let _ = a.get(0, cc, 0, 0); // in-bounds for every channel
        }
    }

    #[test]
    fn offsets_monotone_in_each_coordinate(
        n in 1usize..3,
        cb in 1usize..4,
        h in 2usize..8,
        w in 2usize..8,
        pad in 0usize..3,
    ) {
        let t = BlockedActs::zeros(n, cb * VLEN, h, w, pad);
        let base = t.pix_offset_logical(0, 0, 0, 0);
        prop_assert!(t.pix_offset_logical(0, 0, 1, 0) == base + t.stride_h());
        prop_assert!(t.pix_offset_logical(0, 0, 0, 1) == base + VLEN);
        if cb > 1 {
            prop_assert!(t.pix_offset_logical(0, 1, 0, 0) == base + t.stride_cb());
        }
        if n > 1 {
            prop_assert!(t.pix_offset_logical(1, 0, 0, 0) == base + t.stride_n());
        }
    }
}
