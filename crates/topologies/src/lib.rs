//! Network topologies of the paper's evaluation: ResNet-50 (Table I)
//! and Inception-v3 (Section III's secondary workload).
//!
//! Two views of each network:
//! * the **kernel view** — the distinct convolution layer shapes used
//!   by the per-layer benchmarks (Figures 4–8),
//! * the **graph view** — a validated [`gxm::ModelSpec`] for
//!   end-to-end training (Figure 9), with `*_topology` string shims
//!   kept for the pre-typed text API.

pub mod inception;
pub mod resnet;

pub use inception::{
    inception_v3_layers, inception_v3_model, inception_v3_model_sized, inception_v3_topology,
    inception_v3_topology_sized,
};
pub use resnet::{resnet50_model, resnet50_table1, resnet50_topology, TableRow};
