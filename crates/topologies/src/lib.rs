//! Network topologies of the paper's evaluation: ResNet-50 (Table I)
//! and Inception-v3 (Section III's secondary workload).
//!
//! Two views of each network:
//! * the **kernel view** — the distinct convolution layer shapes used
//!   by the per-layer benchmarks (Figures 4–8),
//! * the **graph view** — a full GxM topology text for end-to-end
//!   training (Figure 9).

pub mod inception;
pub mod resnet;

pub use inception::{inception_v3_layers, inception_v3_topology, inception_v3_topology_sized};
pub use resnet::{resnet50_table1, resnet50_topology, TableRow};
