//! Inception-v3 ("GoogleNet v3" in the paper's run scripts): the
//! distinct convolution shapes for the kernel-average experiments and
//! a trainable graph with real Inception mixed blocks.

use conv::ConvShape;

/// The distinct convolution shapes of Inception-v3 (299×299 input),
/// `(c, k, hw_in, r, s, stride, pad)`. Asymmetric 1×7/7×1 factorized
/// convolutions appear as their two halves.
pub const INCEPTION_V3_CONVS: [(usize, usize, usize, usize, usize, usize, usize); 24] = [
    // stem
    (32, 32, 149, 3, 3, 1, 0),
    (32, 64, 147, 3, 3, 1, 1),
    (64, 80, 73, 1, 1, 1, 0),
    (80, 192, 73, 3, 3, 1, 0),
    // 35×35 mixed blocks
    (192, 64, 35, 1, 1, 1, 0),
    (192, 48, 35, 1, 1, 1, 0),
    (48, 64, 35, 5, 5, 1, 2),
    (64, 96, 35, 3, 3, 1, 1),
    (96, 96, 35, 3, 3, 1, 1),
    (288, 384, 35, 3, 3, 2, 0),
    // 17×17 mixed blocks (1×7 / 7×1 factorization)
    (288, 128, 17, 1, 1, 1, 0),
    (128, 128, 17, 1, 7, 1, 0),
    (128, 192, 17, 7, 1, 1, 0),
    (768, 192, 17, 1, 1, 1, 0),
    (192, 192, 17, 7, 1, 1, 0),
    (192, 192, 17, 1, 7, 1, 0),
    (192, 320, 17, 3, 3, 2, 0),
    // 8×8 mixed blocks
    (1280, 320, 8, 1, 1, 1, 0),
    (1280, 384, 8, 1, 1, 1, 0),
    (384, 384, 8, 1, 3, 1, 0),
    (384, 384, 8, 3, 1, 1, 0),
    (1280, 448, 8, 1, 1, 1, 0),
    (448, 384, 8, 3, 3, 1, 1),
    (2048, 192, 8, 1, 1, 1, 0),
];

/// Inception-v3 conv shapes for a minibatch. The first stem conv
/// (3→32, stride 2) is omitted like the paper omits C=3 layers from
/// the Inception averages (its Fig. 8 x-axis also starts at layer 2).
pub fn inception_v3_layers(minibatch: usize) -> Vec<(usize, ConvShape)> {
    INCEPTION_V3_CONVS
        .iter()
        .enumerate()
        .map(|(i, &(c, k, hw, r, s, stride, pad))| {
            // asymmetric filters would need asymmetric padding to
            // preserve spatial extent; ConvShape has a single pad, so
            // the factorized taps run unpadded ("valid") — same FLOP
            // structure, slightly smaller outputs.
            (i + 2, ConvShape::new(minibatch, c, k, hw, hw, r, s, stride, pad))
        })
        .collect()
}

/// A trainable Inception-style graph: stem + one 35×35 mixed block
/// (four branches with filter concat) + reduction + head. Full v3
/// repeats these block patterns; one of each exercises every operator
/// class (concat, avg-pool branch, factorized convs).
pub fn inception_v3_topology(classes: usize) -> String {
    inception_v3_topology_sized(147, classes)
}

/// As [`inception_v3_topology`] with a configurable input resolution
/// (tests and inference benchmarks run the same graph at reduced
/// spatial extents; `input_hw` must survive the three stride-2 stages,
/// so ≥ 31 keeps every block non-degenerate).
pub fn inception_v3_topology_sized(input_hw: usize, classes: usize) -> String {
    let mut t = String::new();
    t.push_str(&format!("input name=data c=3 h={input_hw} w={input_hw}\n"));
    // stem (shortened: v3's 299→147 double-stride stem collapsed)
    t.push_str("conv name=stem1 bottom=data k=32 r=3 s=3 stride=2 pad=1\n");
    t.push_str("bn name=stem1bn bottom=stem1 relu=1\n");
    t.push_str("conv name=stem2 bottom=stem1bn k=64 r=3 s=3 pad=1\n");
    t.push_str("bn name=stem2bn bottom=stem2 relu=1\n");
    t.push_str("pool name=stempool bottom=stem2bn kind=max size=3 stride=2 pad=1\n");
    t.push_str("conv name=stem3 bottom=stempool k=192 r=3 s=3 pad=1\n");
    t.push_str("bn name=stem3bn bottom=stem3 relu=1\n");
    t.push_str("pool name=pool2 bottom=stem3bn kind=max size=3 stride=2 pad=1\n");
    // mixed block (35×35-style): 1x1 / 5x5 / double-3x3 / pool branches
    t.push_str("conv name=b1x1 bottom=pool2 k=64\n");
    t.push_str("bn name=b1x1bn bottom=b1x1 relu=1\n");
    t.push_str("conv name=b5red bottom=pool2 k=48\n");
    t.push_str("bn name=b5redbn bottom=b5red relu=1\n");
    t.push_str("conv name=b5 bottom=b5redbn k=64 r=5 s=5 pad=2\n");
    t.push_str("bn name=b5bn bottom=b5 relu=1\n");
    t.push_str("conv name=b3red bottom=pool2 k=64\n");
    t.push_str("bn name=b3redbn bottom=b3red relu=1\n");
    t.push_str("conv name=b3a bottom=b3redbn k=96 r=3 s=3 pad=1\n");
    t.push_str("bn name=b3abn bottom=b3a relu=1\n");
    t.push_str("conv name=b3b bottom=b3abn k=96 r=3 s=3 pad=1\n");
    t.push_str("bn name=b3bbn bottom=b3b relu=1\n");
    t.push_str("pool name=bpool bottom=pool2 kind=avg size=3 stride=1 pad=1\n");
    t.push_str("conv name=bpoolproj bottom=bpool k=32\n");
    t.push_str("bn name=bpoolprojbn bottom=bpoolproj relu=1\n");
    t.push_str("concat name=mixed1 bottom=b1x1bn,b5bn,b3bbn,bpoolprojbn\n");
    // head
    t.push_str("conv name=head bottom=mixed1 k=256\n");
    t.push_str("bn name=headbn bottom=head relu=1\n");
    t.push_str("gap name=gpool bottom=headbn\n");
    t.push_str(&format!("fc name=logits bottom=gpool k={classes}\n"));
    t.push_str("softmaxloss name=loss bottom=logits\n");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_inventory_is_consistent() {
        let layers = inception_v3_layers(28);
        assert_eq!(layers.len(), 24);
        for (id, s) in &layers {
            assert!(s.p() > 0 && s.q() > 0, "layer {id}: {s}");
        }
    }

    #[test]
    fn includes_factorized_convolutions() {
        let layers = inception_v3_layers(1);
        assert!(layers.iter().any(|(_, s)| s.r == 1 && s.s == 7));
        assert!(layers.iter().any(|(_, s)| s.r == 7 && s.s == 1));
    }

    #[test]
    fn topology_parses_and_has_concat() {
        let nl = gxm::parse_topology(&inception_v3_topology(1000)).expect("valid");
        assert!(nl.iter().any(|n| matches!(n, gxm::NodeSpec::Concat { .. })));
        // the mixed block concatenates 64+64+96+32 = 256 channels
    }

    #[test]
    fn sized_topology_matches_default_at_147() {
        assert_eq!(inception_v3_topology(10), inception_v3_topology_sized(147, 10));
        // a reduced-resolution instance still parses
        let nl = gxm::parse_topology(&inception_v3_topology_sized(63, 10)).expect("valid");
        assert!(nl.iter().any(|n| matches!(n, gxm::NodeSpec::Concat { .. })));
    }
}
