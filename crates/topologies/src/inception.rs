//! Inception-v3 ("GoogleNet v3" in the paper's run scripts): the
//! distinct convolution shapes for the kernel-average experiments and
//! a trainable graph with real Inception mixed blocks.

use conv::ConvShape;

/// The distinct convolution shapes of Inception-v3 (299×299 input),
/// `(c, k, hw_in, r, s, stride, pad)`. Asymmetric 1×7/7×1 factorized
/// convolutions appear as their two halves.
pub const INCEPTION_V3_CONVS: [(usize, usize, usize, usize, usize, usize, usize); 24] = [
    // stem
    (32, 32, 149, 3, 3, 1, 0),
    (32, 64, 147, 3, 3, 1, 1),
    (64, 80, 73, 1, 1, 1, 0),
    (80, 192, 73, 3, 3, 1, 0),
    // 35×35 mixed blocks
    (192, 64, 35, 1, 1, 1, 0),
    (192, 48, 35, 1, 1, 1, 0),
    (48, 64, 35, 5, 5, 1, 2),
    (64, 96, 35, 3, 3, 1, 1),
    (96, 96, 35, 3, 3, 1, 1),
    (288, 384, 35, 3, 3, 2, 0),
    // 17×17 mixed blocks (1×7 / 7×1 factorization)
    (288, 128, 17, 1, 1, 1, 0),
    (128, 128, 17, 1, 7, 1, 0),
    (128, 192, 17, 7, 1, 1, 0),
    (768, 192, 17, 1, 1, 1, 0),
    (192, 192, 17, 7, 1, 1, 0),
    (192, 192, 17, 1, 7, 1, 0),
    (192, 320, 17, 3, 3, 2, 0),
    // 8×8 mixed blocks
    (1280, 320, 8, 1, 1, 1, 0),
    (1280, 384, 8, 1, 1, 1, 0),
    (384, 384, 8, 1, 3, 1, 0),
    (384, 384, 8, 3, 1, 1, 0),
    (1280, 448, 8, 1, 1, 1, 0),
    (448, 384, 8, 3, 3, 1, 1),
    (2048, 192, 8, 1, 1, 1, 0),
];

/// Inception-v3 conv shapes for a minibatch. The first stem conv
/// (3→32, stride 2) is omitted like the paper omits C=3 layers from
/// the Inception averages (its Fig. 8 x-axis also starts at layer 2).
pub fn inception_v3_layers(minibatch: usize) -> Vec<(usize, ConvShape)> {
    INCEPTION_V3_CONVS
        .iter()
        .enumerate()
        .map(|(i, &(c, k, hw, r, s, stride, pad))| {
            // asymmetric filters would need asymmetric padding to
            // preserve spatial extent; ConvShape has a single pad, so
            // the factorized taps run unpadded ("valid") — same FLOP
            // structure, slightly smaller outputs.
            (i + 2, ConvShape::new(minibatch, c, k, hw, hw, r, s, stride, pad))
        })
        .collect()
}

/// A trainable Inception-style graph: stem + one 35×35 mixed block
/// (four branches with filter concat) + reduction + head. Full v3
/// repeats these block patterns; one of each exercises every operator
/// class (concat, avg-pool branch, factorized convs).
pub fn inception_v3_model(classes: usize) -> gxm::ModelSpec {
    inception_v3_model_sized(147, classes)
}

/// As [`inception_v3_model`] with a configurable input resolution
/// (tests and inference benchmarks run the same graph at reduced
/// spatial extents; `input_hw` must survive the three stride-2 stages,
/// so ≥ 31 keeps every block non-degenerate). The four mixed-block
/// branches fan out from `pool2` via [`gxm::GraphBuilder::from`] and
/// rejoin through `concat`.
pub fn inception_v3_model_sized(input_hw: usize, classes: usize) -> gxm::ModelSpec {
    use gxm::ConvOpts;
    gxm::GraphBuilder::new()
        .input("data", 3, input_hw, input_hw)
        // stem (shortened: v3's 299→147 double-stride stem collapsed)
        .conv("stem1", ConvOpts::k(32).rs(3).stride(2).pad(1))
        .bn_relu("stem1bn")
        .conv("stem2", ConvOpts::k(64).rs(3).pad(1))
        .bn_relu("stem2bn")
        .max_pool("stempool", 3, 2, 1)
        .conv("stem3", ConvOpts::k(192).rs(3).pad(1))
        .bn_relu("stem3bn")
        .max_pool("pool2", 3, 2, 1)
        // mixed block (35×35-style): 1x1 / 5x5 / double-3x3 / pool
        .conv("b1x1", ConvOpts::k(64))
        .bn_relu("b1x1bn")
        .from("pool2")
        .conv("b5red", ConvOpts::k(48))
        .bn_relu("b5redbn")
        .conv("b5", ConvOpts::k(64).rs(5).pad(2))
        .bn_relu("b5bn")
        .from("pool2")
        .conv("b3red", ConvOpts::k(64))
        .bn_relu("b3redbn")
        .conv("b3a", ConvOpts::k(96).rs(3).pad(1))
        .bn_relu("b3abn")
        .conv("b3b", ConvOpts::k(96).rs(3).pad(1))
        .bn_relu("b3bbn")
        .from("pool2")
        .avg_pool("bpool", 3, 1, 1)
        .conv("bpoolproj", ConvOpts::k(32))
        .bn_relu("bpoolprojbn")
        .concat("mixed1", &["b1x1bn", "b5bn", "b3bbn", "bpoolprojbn"])
        // head
        .conv("head", ConvOpts::k(256))
        .bn_relu("headbn")
        .gap("gpool")
        .fc("logits", classes)
        .softmax("loss")
        .build()
        .expect("inception graph is valid by construction")
}

/// String shim for the pre-typed API: [`inception_v3_model`] as text.
pub fn inception_v3_topology(classes: usize) -> String {
    inception_v3_model(classes).to_text()
}

/// String shim for the pre-typed API: [`inception_v3_model_sized`] as
/// text.
pub fn inception_v3_topology_sized(input_hw: usize, classes: usize) -> String {
    inception_v3_model_sized(input_hw, classes).to_text()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_inventory_is_consistent() {
        let layers = inception_v3_layers(28);
        assert_eq!(layers.len(), 24);
        for (id, s) in &layers {
            assert!(s.p() > 0 && s.q() > 0, "layer {id}: {s}");
        }
    }

    #[test]
    fn includes_factorized_convolutions() {
        let layers = inception_v3_layers(1);
        assert!(layers.iter().any(|(_, s)| s.r == 1 && s.s == 7));
        assert!(layers.iter().any(|(_, s)| s.r == 7 && s.s == 1));
    }

    #[test]
    fn topology_parses_and_has_concat() {
        let spec = gxm::ModelSpec::parse(&inception_v3_topology(1000)).expect("valid");
        assert!(spec.nodes().iter().any(|n| matches!(n, gxm::NodeSpec::Concat { .. })));
        // the mixed block concatenates 64+64+96+32 = 256 channels
        let mix = spec.nodes().iter().position(|n| n.name() == "mixed1").unwrap();
        assert_eq!(spec.shapes()[mix].0, 256);
        // and the text shim round-trips to the same spec
        assert_eq!(spec, inception_v3_model(1000));
    }

    #[test]
    fn sized_topology_matches_default_at_147() {
        assert_eq!(inception_v3_topology(10), inception_v3_topology_sized(147, 10));
        // a reduced-resolution instance still parses
        let spec = gxm::ModelSpec::parse(&inception_v3_topology_sized(63, 10)).expect("valid");
        assert!(spec.nodes().iter().any(|n| matches!(n, gxm::NodeSpec::Concat { .. })));
    }
}
