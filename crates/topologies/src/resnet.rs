//! ResNet-50: Table I layer inventory and the full training graph.

use conv::ConvShape;

/// One row of the paper's Table I.
#[derive(Clone, Copy, Debug)]
pub struct TableRow {
    /// Layer id (1–20, as used on the x-axes of Figures 4–8).
    pub id: usize,
    /// Input feature maps.
    pub c: usize,
    /// Output feature maps.
    pub k: usize,
    /// Input spatial extent (H = W).
    pub hw: usize,
    /// Filter extent (R = S).
    pub rs: usize,
    /// Stride.
    pub stride: usize,
}

/// Table I verbatim (20 distinct ResNet-50 convolution shapes).
pub const TABLE_I: [TableRow; 20] = [
    TableRow { id: 1, c: 3, k: 64, hw: 224, rs: 7, stride: 2 },
    TableRow { id: 2, c: 64, k: 256, hw: 56, rs: 1, stride: 1 },
    TableRow { id: 3, c: 64, k: 64, hw: 56, rs: 1, stride: 1 },
    TableRow { id: 4, c: 64, k: 64, hw: 56, rs: 3, stride: 1 },
    TableRow { id: 5, c: 256, k: 64, hw: 56, rs: 1, stride: 1 },
    TableRow { id: 6, c: 256, k: 512, hw: 56, rs: 1, stride: 2 },
    TableRow { id: 7, c: 256, k: 128, hw: 56, rs: 1, stride: 2 },
    TableRow { id: 8, c: 128, k: 128, hw: 28, rs: 3, stride: 1 },
    TableRow { id: 9, c: 128, k: 512, hw: 28, rs: 1, stride: 1 },
    TableRow { id: 10, c: 512, k: 128, hw: 28, rs: 1, stride: 1 },
    TableRow { id: 11, c: 512, k: 1024, hw: 28, rs: 1, stride: 2 },
    TableRow { id: 12, c: 512, k: 256, hw: 28, rs: 1, stride: 2 },
    TableRow { id: 13, c: 256, k: 256, hw: 14, rs: 3, stride: 1 },
    TableRow { id: 14, c: 256, k: 1024, hw: 14, rs: 1, stride: 1 },
    TableRow { id: 15, c: 1024, k: 256, hw: 14, rs: 1, stride: 1 },
    TableRow { id: 16, c: 1024, k: 2048, hw: 14, rs: 1, stride: 2 },
    TableRow { id: 17, c: 1024, k: 512, hw: 14, rs: 1, stride: 2 },
    TableRow { id: 18, c: 512, k: 512, hw: 7, rs: 3, stride: 1 },
    TableRow { id: 19, c: 512, k: 2048, hw: 7, rs: 1, stride: 1 },
    TableRow { id: 20, c: 2048, k: 512, hw: 7, rs: 1, stride: 1 },
];

/// The 20 Table I shapes as full [`ConvShape`]s for a minibatch
/// (the paper uses N=28 on SKX, N=70 on KNM). Spatial filters get
/// their canonical "same" padding (`rs/2`).
pub fn resnet50_table1(minibatch: usize) -> Vec<(usize, ConvShape)> {
    TABLE_I
        .iter()
        .map(|r| {
            (r.id, ConvShape::new(minibatch, r.c, r.k, r.hw, r.hw, r.rs, r.rs, r.stride, r.rs / 2))
        })
        .collect()
}

/// The full ResNet-50 v1 training graph as a validated
/// [`gxm::ModelSpec`] (conv → bn[+relu], bottleneck blocks with
/// projection shortcuts, stride on the first 1×1 of each downsampling
/// block, exactly the variant whose shapes populate Table I) —
/// assembled through the typed [`gxm::GraphBuilder`], residual joins
/// via `bn_join`.
pub fn resnet50_model(input_hw: usize, classes: usize) -> gxm::ModelSpec {
    let mut g = gxm::GraphBuilder::new()
        .input("data", 3, input_hw, input_hw)
        .conv("conv1", gxm::ConvOpts::k(64).rs(7).stride(2).pad(3))
        .bn_relu("bn1")
        .max_pool("pool1", 3, 2, 1);

    let stages: [(usize, usize, usize); 4] =
        [(64, 256, 3), (128, 512, 4), (256, 1024, 6), (512, 2048, 3)];
    let mut bottom = "pool1".to_string();
    for (si, (mid, out, blocks)) in stages.iter().enumerate() {
        for b in 0..*blocks {
            let name = format!("res{}{}", si + 2, (b'a' + b as u8) as char);
            let stride = if si > 0 && b == 0 { 2 } else { 1 };
            // projection shortcut on the first block of each stage
            let shortcut = if b == 0 {
                g = g
                    .from(&bottom)
                    .conv(&format!("{name}_sc"), gxm::ConvOpts::k(*out).stride(stride))
                    .bn(&format!("{name}_scbn"));
                format!("{name}_scbn")
            } else {
                bottom.clone()
            };
            g = g
                .from(&bottom)
                .conv(&format!("{name}_1"), gxm::ConvOpts::k(*mid).stride(stride))
                .bn_relu(&format!("{name}_1bn"))
                .conv(&format!("{name}_2"), gxm::ConvOpts::k(*mid).rs(3).pad(1))
                .bn_relu(&format!("{name}_2bn"))
                .conv(&format!("{name}_3"), gxm::ConvOpts::k(*out))
                .bn_join(&format!("{name}_3bn"), &shortcut, true);
            bottom = format!("{name}_3bn");
        }
    }
    g.gap("pool5")
        .fc("logits", classes)
        .softmax("loss")
        .build()
        .expect("resnet50 graph is valid by construction")
}

/// String shim for the pre-typed API: [`resnet50_model`] emitted as
/// canonical GxM topology text.
pub fn resnet50_topology(input_hw: usize, classes: usize) -> String {
    resnet50_model(input_hw, classes).to_text()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_output_shapes() {
        for (id, s) in resnet50_table1(28) {
            // padded "same" spatial: P = HW/stride for every layer
            let expect = s.h.div_ceil(s.stride);
            assert_eq!(s.p(), expect, "layer {id}: {s}");
            assert_eq!(s.n, 28);
        }
    }

    #[test]
    fn table_has_20_unique_layers() {
        let rows = resnet50_table1(1);
        assert_eq!(rows.len(), 20);
        let mut seen = std::collections::HashSet::new();
        for (_, s) in rows {
            assert!(seen.insert(format!("{s}")));
        }
    }

    #[test]
    fn total_flops_is_resnet_scale() {
        // fwd flops of a full minibatch-1 pass over the *distinct*
        // layers: ResNet-50 fwd is ~4 GFLOP with repeats; the distinct
        // shapes alone are within the same order of magnitude
        let total: u64 = resnet50_table1(1).iter().map(|(_, s)| s.flops()).sum();
        assert!(total > 1_000_000_000 && total < 10_000_000_000, "{total}");
    }

    #[test]
    fn model_round_trips_through_text() {
        let model = resnet50_model(224, 1000);
        let reparsed = gxm::ModelSpec::parse(&resnet50_topology(224, 1000)).unwrap();
        assert_eq!(model, reparsed, "string shim must emit the same graph");
    }

    #[test]
    fn topology_text_parses_and_covers_table() {
        let text = resnet50_topology(224, 1000);
        let spec = gxm::ModelSpec::parse(&text).expect("valid topology");
        let nl = spec.nodes();
        // 1 stem conv + 16 blocks × 3 convs + 4 shortcut convs = 53
        let convs = nl.iter().filter(|n| matches!(n, gxm::NodeSpec::Conv { .. })).count();
        assert_eq!(convs, 53);
        // distinct conv shapes in the graph == Table I rows
        let mut shapes = std::collections::HashSet::new();
        let mut dims: std::collections::HashMap<String, (usize, usize)> = Default::default();
        let mut chans: std::collections::HashMap<String, usize> = Default::default();
        for n in nl {
            match n {
                gxm::NodeSpec::Input { name, c, h, .. } => {
                    dims.insert(name.clone(), (*h, *h));
                    chans.insert(name.clone(), *c);
                }
                gxm::NodeSpec::Conv { name, bottom, k, r, stride, pad, .. } => {
                    let (h, _) = dims[bottom];
                    let c = chans[bottom];
                    shapes.insert((c, *k, h, *r, *stride));
                    let oh = (h + 2 * pad - r) / stride + 1;
                    dims.insert(name.clone(), (oh, oh));
                    chans.insert(name.clone(), *k);
                }
                gxm::NodeSpec::Bn { name, bottom, .. } => {
                    dims.insert(name.clone(), dims[bottom]);
                    chans.insert(name.clone(), chans[bottom]);
                }
                gxm::NodeSpec::Pool { name, bottom, size, stride, pad, .. } => {
                    let (h, _) = dims[bottom];
                    let oh = (h + 2 * pad - size) / stride + 1;
                    dims.insert(name.clone(), (oh, oh));
                    chans.insert(name.clone(), chans[bottom]);
                }
                _ => {}
            }
        }
        let table: std::collections::HashSet<(usize, usize, usize, usize, usize)> =
            TABLE_I.iter().map(|r| (r.c, r.k, r.hw, r.rs, r.stride)).collect();
        assert_eq!(shapes, table, "graph conv shapes must equal Table I");
    }
}
