//! Layer-plan cache: setup once per *distinct* layer, replay forever.
//!
//! The paper's setup/replay split (Section II-H) makes a fully planned
//! [`ConvLayer`] a natural unit of reuse: everything the setup phase
//! produces — JIT code buffers, dryrun offset streams, the backward
//! duality plan, the weight-update strategy — depends only on the
//! normalized `(ConvShape, LayerOptions)` pair. ResNet-50 instantiates
//! 53 convolution nodes over ~20 distinct shapes; building the graph
//! through a [`PlanCache`] performs one JIT + dryrun per distinct
//! shape and hands every repeat an `Arc` to the shared plan (the
//! handle-based primitive model of cuDNN).
//!
//! The cache is explicit and shareable (clone it, it is one cache):
//! a serving process keeps one `PlanCache` next to its `ThreadPool`
//! and builds every network through it. A second, process-wide cache
//! below this one dedupes individual kernel code buffers across
//! *different* layer shapes (see [`crate::backend::kernel_cache_stats`]).

use crate::backend::Backend;
use crate::fuse::FusedOp;
use crate::layer::{ConvLayer, LayerOptions, Precision};
use crate::tune::{TuneLevel, TuneStore};
use machine::MachineModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use tensor::ConvShape;

/// Normalized cache key: every input of the layer-setup pipeline that
/// can change the generated plan.
#[derive(Clone, Debug, PartialEq)]
struct LayerKey {
    shape: ConvShape,
    threads: usize,
    backend: Backend,
    prefetch: bool,
    fuse: FusedOp,
    /// Resolved physical input padding (the `None` default resolves to
    /// `shape.pad`, so explicit-default and implicit requests unify).
    input_pad: usize,
    /// Requested dO padding (`None` = duality-optimal; resolving it
    /// would need the bwd plan, so the request itself is the key).
    dout_pad: Option<usize>,
    /// Physical output padding of the forward plan. Folded-BN
    /// inference plans write padded outputs; keying on it keeps them
    /// from ever colliding with the pad-0 training plans of the same
    /// shape.
    out_pad: usize,
    machine: MachineModel,
    /// Tuning level: a `Measured`-tuned plan and the heuristic plan of
    /// the same shape are different plans and must not collide.
    tune: TuneLevel,
    /// Numeric execution mode: an int8 plan (f32 plans + quant plan)
    /// and the plain f32 plan of the same shape must not collide.
    precision: Precision,
    /// Accumulation-chain bound of the int8 plan. Normalized to 0 at
    /// `F32` (where it is ignored), so chain-length variants of f32
    /// requests unify while int8 variants stay distinct.
    chain_limit: usize,
}

impl Eq for LayerKey {}

// MachineModel carries f64 fields, so Hash cannot be derived; hashing
// the bit patterns is consistent with the derived PartialEq above
// (equal floats in a model hash equally; models never hold NaN).
impl std::hash::Hash for LayerKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.shape.hash(state);
        self.threads.hash(state);
        self.backend.hash(state);
        self.prefetch.hash(state);
        self.fuse.hash(state);
        self.input_pad.hash(state);
        self.dout_pad.hash(state);
        self.out_pad.hash(state);
        self.tune.hash(state);
        self.precision.hash(state);
        self.chain_limit.hash(state);
        let m = &self.machine;
        m.name.hash(state);
        m.cores.hash(state);
        m.freq_ghz.to_bits().hash(state);
        m.simd_f32.hash(state);
        m.fma_per_cycle.hash(state);
        m.fma_latency.hash(state);
        m.l2_read_gbs.to_bits().hash(state);
        m.l2_write_gbs.to_bits().hash(state);
        m.mem_bw_gbs.to_bits().hash(state);
        m.shared_llc.hash(state);
        m.int16_speedup.to_bits().hash(state);
    }
}

impl LayerKey {
    fn new(shape: &ConvShape, opts: &LayerOptions) -> Self {
        Self {
            shape: *shape,
            threads: opts.threads,
            backend: opts.backend,
            prefetch: opts.prefetch,
            fuse: opts.fuse,
            input_pad: opts.input_pad.unwrap_or(shape.pad),
            dout_pad: opts.dout_pad,
            out_pad: opts.out_pad,
            machine: opts.machine.clone(),
            tune: opts.tune,
            precision: opts.precision,
            chain_limit: if opts.precision == Precision::Int8 { opts.chain_limit } else { 0 },
        }
    }
}

/// Hit/miss counters of one [`FusedOp`] flavour (an element of
/// [`PlanCacheStats::per_op`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct FusedOpCacheStats {
    /// Lookups for plans with this fused op served from the cache.
    pub hits: usize,
    /// Lookups for plans with this fused op that ran the setup
    /// pipeline.
    pub misses: usize,
}

/// Snapshot of a cache's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanCacheStats {
    /// Lookups served by an existing plan (no JIT, no dryrun).
    pub hits: usize,
    /// Lookups that ran the full setup pipeline.
    pub misses: usize,
    /// Distinct plans currently held.
    pub entries: usize,
    /// Hits/misses broken out per requested [`FusedOp`], indexed by
    /// [`FusedOp::index`] (i.e. parallel to [`FusedOp::ALL`]) — makes
    /// the cache behaviour of folded-BN inference plans observable
    /// next to the plain training plans.
    pub per_op: [FusedOpCacheStats; FusedOp::ALL.len()],
    /// Plans built with an autotuned blocking (`Model` or `Measured`
    /// outcome).
    pub tuned_plans: usize,
    /// Plans built with the heuristic blocking.
    pub heuristic_plans: usize,
    /// Tuning searches run through this cache's [`TuneStore`] (store
    /// hits and disk-loaded winners don't count).
    pub tune_runs: usize,
    /// Candidate micro-bench measurements performed (0 when every
    /// winner came from the on-disk tuning cache).
    pub tune_micro_runs: usize,
    /// Total wall-clock spent tuning, in milliseconds.
    pub tune_time_ms: f64,
    /// Plans built at [`Precision::F32`].
    pub f32_plans: usize,
    /// Plans built at [`Precision::Int8`] (f32 plans + a fused
    /// quantized forward plan).
    pub int8_plans: usize,
}

impl PlanCacheStats {
    /// Fraction of lookups served from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counters recorded for one fused-op flavour.
    pub fn for_op(&self, op: FusedOp) -> FusedOpCacheStats {
        self.per_op[op.index()]
    }
}

/// One-call health snapshot of *both* cache tiers the serving path
/// relies on: this plan cache (whole-layer plans) and the process-wide
/// kernel code cache below it (individual JIT/select'd code buffers,
/// shared across different layer shapes).
#[derive(Clone, Copy, Debug, Default)]
pub struct CombinedCacheStats {
    /// Whole-layer plan cache counters (per [`PlanCache`] instance).
    pub plans: PlanCacheStats,
    /// Process-wide kernel code cache counters
    /// ([`crate::backend::kernel_cache_stats`]).
    pub kernels: crate::backend::KernelCacheStats,
}

/// One hit + one miss counter per [`FusedOp`] variant.
#[derive(Default)]
struct PerOpCounters {
    hits: [AtomicUsize; FusedOp::ALL.len()],
    misses: [AtomicUsize; FusedOp::ALL.len()],
}

struct Inner {
    plans: Mutex<HashMap<LayerKey, Arc<ConvLayer>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    per_op: PerOpCounters,
    tune_store: TuneStore,
    tuned_plans: AtomicUsize,
    heuristic_plans: AtomicUsize,
    f32_plans: AtomicUsize,
    int8_plans: AtomicUsize,
}

/// A shareable cache of fully planned convolution layers.
///
/// Cloning the handle shares the cache (graph executors, inference
/// sessions and benchmarks can all feed one instance).
#[derive(Clone)]
pub struct PlanCache {
    inner: Arc<Inner>,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                plans: Mutex::new(HashMap::new()),
                hits: AtomicUsize::new(0),
                misses: AtomicUsize::new(0),
                per_op: PerOpCounters::default(),
                tune_store: TuneStore::new(),
                tuned_plans: AtomicUsize::new(0),
                heuristic_plans: AtomicUsize::new(0),
                f32_plans: AtomicUsize::new(0),
                int8_plans: AtomicUsize::new(0),
            }),
        }
    }

    /// Return the plan for `(shape, opts)`, running the setup pipeline
    /// (blocking choice, kernel generation, dryrun) only on a miss.
    ///
    /// The build happens under the cache lock so concurrent requests
    /// for the same key JIT once; plan setup is a cold path by design
    /// (the paper's "setup once, replay many times").
    pub fn get_or_build(&self, shape: ConvShape, opts: LayerOptions) -> Arc<ConvLayer> {
        let key = LayerKey::new(&shape, &opts);
        let op = opts.fuse.index();
        let mut plans = self.inner.plans.lock().unwrap();
        if let Some(plan) = plans.get(&key) {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            self.inner.per_op.hits[op].fetch_add(1, Ordering::Relaxed);
            return Arc::clone(plan);
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        self.inner.per_op.misses[op].fetch_add(1, Ordering::Relaxed);
        let mut opts = opts;
        if opts.tune != TuneLevel::Heuristic && opts.tune_store.is_none() {
            // route tuning through the cache's shared store, so every
            // (shape, machine, level) tunes at most once per cache —
            // replicas and repeated builds replay the memoized winner
            opts.tune_store = Some(self.inner.tune_store.clone());
        }
        let plan = Arc::new(ConvLayer::new(shape, opts));
        match plan.precision() {
            Precision::F32 => &self.inner.f32_plans,
            Precision::Int8 => &self.inner.int8_plans,
        }
        .fetch_add(1, Ordering::Relaxed);
        match plan.tune_outcome().level {
            TuneLevel::Heuristic => &self.inner.heuristic_plans,
            _ => &self.inner.tuned_plans,
        }
        .fetch_add(1, Ordering::Relaxed);
        plans.insert(key, Arc::clone(&plan));
        plan
    }

    /// The cache's shared memo of tuning winners.
    pub fn tune_store(&self) -> &TuneStore {
        &self.inner.tune_store
    }

    /// Load an on-disk tuning cache (see [`TuneStore::load`]) into the
    /// shared store: subsequent tuned builds replay the winners with
    /// zero micro-bench runs. Returns the number of entries read.
    ///
    /// # Errors
    /// Any I/O error from the read; `InvalidData` for malformed files.
    pub fn load_tuning(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        self.inner.tune_store.load(path)
    }

    /// Persist the tuning winners to disk (see [`TuneStore::save`]).
    /// Returns the number of entries written.
    ///
    /// # Errors
    /// Any I/O error from the write.
    pub fn save_tuning(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        self.inner.tune_store.save(path)
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> usize {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Lookups that built a new plan so far.
    pub fn misses(&self) -> usize {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Distinct plans currently held.
    pub fn len(&self) -> usize {
        self.inner.plans.lock().unwrap().len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        let mut per_op = [FusedOpCacheStats::default(); FusedOp::ALL.len()];
        for (i, s) in per_op.iter_mut().enumerate() {
            s.hits = self.inner.per_op.hits[i].load(Ordering::Relaxed);
            s.misses = self.inner.per_op.misses[i].load(Ordering::Relaxed);
        }
        PlanCacheStats {
            hits: self.hits(),
            misses: self.misses(),
            entries: self.len(),
            per_op,
            tuned_plans: self.inner.tuned_plans.load(Ordering::Relaxed),
            heuristic_plans: self.inner.heuristic_plans.load(Ordering::Relaxed),
            tune_runs: self.inner.tune_store.tune_runs(),
            tune_micro_runs: self.inner.tune_store.micro_bench_runs(),
            tune_time_ms: self.inner.tune_store.tune_time_ms(),
            f32_plans: self.inner.f32_plans.load(Ordering::Relaxed),
            int8_plans: self.inner.int8_plans.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of this plan cache *and* the process-wide kernel code
    /// cache in one call — what a serving stats endpoint reports.
    pub fn combined_stats(&self) -> CombinedCacheStats {
        CombinedCacheStats { plans: self.stats(), kernels: crate::backend::kernel_cache_stats() }
    }

    /// Drop every cached plan (counters keep accumulating).
    pub fn clear(&self) {
        self.inner.plans.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_shape() -> ConvShape {
        ConvShape::new(1, 16, 16, 6, 6, 3, 3, 1, 1)
    }

    #[test]
    fn hit_returns_the_same_plan() {
        let cache = PlanCache::new();
        let a = cache.get_or_build(small_shape(), LayerOptions::new(2));
        let b = cache.get_or_build(small_shape(), LayerOptions::new(2));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_options_are_distinct_entries() {
        let cache = PlanCache::new();
        let _ = cache.get_or_build(small_shape(), LayerOptions::new(2));
        let _ = cache.get_or_build(small_shape(), LayerOptions::new(4));
        let _ = cache.get_or_build(small_shape(), LayerOptions::new(2).with_fuse(FusedOp::Relu));
        let _ = cache.get_or_build(small_shape(), LayerOptions::new(2).with_prefetch(false));
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn default_padding_normalizes_to_explicit() {
        let cache = PlanCache::new();
        let shape = small_shape();
        let a = cache.get_or_build(shape, LayerOptions::new(2));
        // explicitly requesting the conv's own pad is the same plan
        let b = cache.get_or_build(shape, LayerOptions::new(2).with_input_pad(shape.pad));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn out_pad_is_part_of_the_key() {
        // a folded inference plan (fused, padded output) must never be
        // handed to a caller asking for the plain training plan
        let cache = PlanCache::new();
        let a = cache.get_or_build(small_shape(), LayerOptions::new(2));
        let b = cache.get_or_build(small_shape(), LayerOptions::new(2).with_out_pad(1));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
        // and the padded request is itself cacheable
        let c = cache.get_or_build(small_shape(), LayerOptions::new(2).with_out_pad(1));
        assert!(Arc::ptr_eq(&b, &c));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn stats_break_out_hits_and_misses_per_fused_op() {
        let cache = PlanCache::new();
        let _ = cache.get_or_build(small_shape(), LayerOptions::new(2));
        let _ = cache.get_or_build(small_shape(), LayerOptions::new(2));
        let fused = LayerOptions::new(2).with_fuse(FusedOp::BiasEltwiseRelu);
        let _ = cache.get_or_build(small_shape(), fused.clone());
        let _ = cache.get_or_build(small_shape(), fused.clone());
        let _ = cache.get_or_build(small_shape(), fused);
        let stats = cache.stats();
        assert_eq!(stats.for_op(FusedOp::None).misses, 1);
        assert_eq!(stats.for_op(FusedOp::None).hits, 1);
        assert_eq!(stats.for_op(FusedOp::BiasEltwiseRelu).misses, 1);
        assert_eq!(stats.for_op(FusedOp::BiasEltwiseRelu).hits, 2);
        assert_eq!(stats.for_op(FusedOp::Relu).hits + stats.for_op(FusedOp::Relu).misses, 0);
        // the per-op table partitions the totals exactly
        let (h, m) = stats.per_op.iter().fold((0, 0), |(h, m), s| (h + s.hits, m + s.misses));
        assert_eq!((h, m), (stats.hits, stats.misses));
    }

    #[test]
    fn combined_stats_reflect_both_tiers() {
        let cache = PlanCache::new();
        let _ = cache.get_or_build(small_shape(), LayerOptions::new(2));
        let combined = cache.combined_stats();
        assert_eq!(combined.plans.misses, cache.misses());
        // building a plan touches the process-wide kernel code cache
        assert!(combined.kernels.hits + combined.kernels.misses > 0);
    }

    #[test]
    fn tune_level_is_part_of_the_key() {
        let cache = PlanCache::new();
        let a = cache.get_or_build(small_shape(), LayerOptions::new(2));
        let b = cache.get_or_build(small_shape(), LayerOptions::new(2).with_tune(TuneLevel::Model));
        assert!(!Arc::ptr_eq(&a, &b), "tuned and heuristic plans must not collide");
        assert_eq!(cache.misses(), 2);
        let stats = cache.stats();
        assert_eq!(stats.heuristic_plans, 1);
        assert_eq!(stats.tuned_plans, 1);
        assert_eq!(stats.tune_runs, 1);
    }

    #[test]
    fn same_shape_and_machine_tunes_exactly_once() {
        let cache = PlanCache::new();
        let model = LayerOptions::new(2).with_tune(TuneLevel::Model);
        // fused variants are distinct *plans* but the same tuning key:
        // the blocking search must run once for all of them
        let a = cache.get_or_build(small_shape(), model.clone());
        let b = cache.get_or_build(small_shape(), model.clone().with_fuse(FusedOp::Relu));
        let c = cache.get_or_build(small_shape(), model.clone().with_fuse(FusedOp::BiasRelu));
        let _ = cache.get_or_build(small_shape(), model); // pure hit
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.stats().tune_runs, 1, "one search for one (shape, machine, level)");
        assert_eq!(a.blocking(), b.blocking());
        assert_eq!(b.blocking(), c.blocking());
    }

    #[test]
    fn tuning_survives_a_save_load_round_trip_with_zero_micro_runs() {
        let cache = PlanCache::new();
        let _ = cache.get_or_build(small_shape(), LayerOptions::new(2).with_tune(TuneLevel::Model));
        let dir = std::env::temp_dir().join("anatomy-tune-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("tunes-{}.bin", std::process::id()));
        assert_eq!(cache.save_tuning(&path).unwrap(), 1);

        // a fresh cache (a daemon restart) replays the winner from disk
        let restarted = PlanCache::new();
        assert_eq!(restarted.load_tuning(&path).unwrap(), 1);
        let plan =
            restarted.get_or_build(small_shape(), LayerOptions::new(2).with_tune(TuneLevel::Model));
        let stats = restarted.stats();
        assert_eq!(stats.tune_runs, 0, "restart must not re-tune");
        assert_eq!(stats.tune_micro_runs, 0, "restart must not micro-bench");
        assert_eq!(stats.tuned_plans, 1);
        assert!(plan.tune_outcome().predicted_gflops > 0.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn precision_and_chain_limit_are_part_of_the_key() {
        let cache = PlanCache::new();
        let f32_plan = cache.get_or_build(small_shape(), LayerOptions::new(2));
        let int8 = LayerOptions::new(2).with_precision(Precision::Int8);
        let int8_plan = cache.get_or_build(small_shape(), int8.clone());
        assert!(!Arc::ptr_eq(&f32_plan, &int8_plan), "int8 must not collide with f32");
        assert!(int8_plan.quant_plan().is_some());
        assert!(f32_plan.quant_plan().is_none());
        // chain-length variants of the int8 plan are distinct plans
        let short = cache.get_or_build(small_shape(), int8.clone().with_chain_limit(1));
        assert!(!Arc::ptr_eq(&int8_plan, &short), "chain-limit variants must not collide");
        // ...but chain limit is ignored (normalized) for f32 requests
        let f32_chain = cache.get_or_build(small_shape(), LayerOptions::new(2).with_chain_limit(1));
        assert!(Arc::ptr_eq(&f32_plan, &f32_chain), "chain limit is an int8-only knob");
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 1);
        let stats = cache.stats();
        assert_eq!(stats.f32_plans, 1);
        assert_eq!(stats.int8_plans, 2);
        assert_eq!(stats.f32_plans + stats.int8_plans, stats.misses);
    }

    #[test]
    fn clones_share_one_cache() {
        let cache = PlanCache::new();
        let other = cache.clone();
        let _ = cache.get_or_build(small_shape(), LayerOptions::new(2));
        let _ = other.get_or_build(small_shape(), LayerOptions::new(2));
        assert_eq!(cache.hits(), 1);
        assert_eq!(other.misses(), 1);
        cache.clear();
        assert!(other.is_empty());
    }
}
