//! The public layer handle: setup once, execute many times.
//!
//! `ConvLayer::new` runs the full setup pipeline of the paper — kernel
//! generation (JIT), dryrun (kernel streams), backward-duality
//! planning, and the weight-update strategy decision — and the three
//! pass methods replay the plans. This is the object the GxM graph
//! executor, the benchmarks and the examples all build on.

use crate::backend::Backend;
use crate::blocking::Blocking;
use crate::bwd::{BwdKind, BwdPlan};
use crate::fuse::{FuseCtx, FusedOp};
use crate::fwd::FwdPlan;
use crate::quant::{QuantFwdPlan, QuantOptions, DEFAULT_CHAIN_LIMIT};
use crate::tune::{self, TuneLevel, TuneOutcome, TuneStore};
use crate::upd::UpdPlan;
use machine::MachineModel;
use parallel::ThreadPool;
use std::sync::Arc;
use tensor::{BlockedActs, BlockedFilter, ConvShape, VnniActs, VnniFilter};

/// Numeric execution mode of a planned layer (and, through the graph
/// executor, of a whole served model).
///
/// `Int8` layers carry an additional [`QuantFwdPlan`] beside the f32
/// plans: activations are quantized per input channel to the symmetric
/// int8 range, convolved by the int16/VNNI kernels, and requantized in
/// the fused APPLY step (see DESIGN.md §11). The f32 plans remain —
/// executors fall back to them for nodes whose activation scales are
/// unknown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Plain f32 execution.
    #[default]
    F32,
    /// Quantized int8-range execution with f32 fallback.
    Int8,
}

impl Precision {
    /// Parse a precision name as accepted by `--precision`.
    ///
    /// # Errors
    /// A message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "f32" | "fp32" | "float" => Ok(Precision::F32),
            "int8" | "i8" | "quant" => Ok(Precision::Int8),
            other => Err(format!("unknown precision '{other}' (expected f32|int8)")),
        }
    }

    /// Read `ANATOMY_PRECISION` from the environment; `None` when the
    /// variable is unset or invalid.
    pub fn from_env() -> Option<Self> {
        std::env::var("ANATOMY_PRECISION").ok().and_then(|v| Self::parse(&v).ok())
    }

    /// Stable lowercase name (`f32` / `int8`).
    pub fn name(&self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }
}

/// Configuration of a layer's engines.
#[derive(Clone)]
pub struct LayerOptions {
    /// Thread-team size the plans are dryrun for.
    pub threads: usize,
    /// Kernel backend.
    pub backend: Backend,
    /// Emit software prefetches (Section II-E).
    pub prefetch: bool,
    /// Operator fused after the forward convolution (Section II-G).
    pub fuse: FusedOp,
    /// Machine model driving the weight-update strategy choice
    /// (Section II-J). Defaults to the SKX model.
    pub machine: MachineModel,
    /// Physical padding of the input tensor (defaults to the conv's
    /// own pad; graph executors may share a larger buffer).
    pub input_pad: Option<usize>,
    /// Physical padding of the gradient-output tensor passed to
    /// `backward`/`update` (defaults to the duality-optimal padding).
    pub dout_pad: Option<usize>,
    /// Physical padding of the *output* tensor the forward pass writes
    /// (graph executors set this when a fused convolution produces
    /// directly into a blob a later padded convolution consumes).
    pub out_pad: usize,
    /// How hard the planner searches for the blocking (Section II-B's
    /// rule of thumb vs. the autotuner of `crate::tune`).
    pub tune: TuneLevel,
    /// Shared memo of tuning winners; `PlanCache` attaches its own so
    /// replicas and repeated builds never re-tune the same key.
    pub tune_store: Option<TuneStore>,
    /// The thread pool `TuneLevel::Measured` micro-benches on. Must
    /// match `threads`; without it, `Measured` degrades to `Model`.
    pub pool: Option<Arc<ThreadPool>>,
    /// Numeric execution mode: `Int8` builds a [`QuantFwdPlan`]
    /// (sharing this layer's blocking, paddings and fused op) beside
    /// the f32 plans.
    pub precision: Precision,
    /// Accumulation-chain bound of the int8 plan, in channel blocks
    /// (the paper's int16 overflow guard). Ignored at `F32`.
    pub chain_limit: usize,
}

impl std::fmt::Debug for LayerOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayerOptions")
            .field("threads", &self.threads)
            .field("backend", &self.backend)
            .field("prefetch", &self.prefetch)
            .field("fuse", &self.fuse)
            .field("machine", &self.machine.name)
            .field("input_pad", &self.input_pad)
            .field("dout_pad", &self.dout_pad)
            .field("out_pad", &self.out_pad)
            .field("tune", &self.tune)
            .field("tune_store", &self.tune_store.is_some())
            .field("pool", &self.pool.is_some())
            .field("precision", &self.precision)
            .field("chain_limit", &self.chain_limit)
            .finish()
    }
}

impl LayerOptions {
    /// Defaults for a given team size.
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            backend: Backend::Auto,
            prefetch: true,
            fuse: FusedOp::None,
            machine: MachineModel::skx(),
            input_pad: None,
            dout_pad: None,
            out_pad: 0,
            tune: TuneLevel::default(),
            tune_store: None,
            pool: None,
            precision: Precision::default(),
            chain_limit: DEFAULT_CHAIN_LIMIT,
        }
    }

    /// Set the physical output padding (for fused writes into padded
    /// consumer blobs).
    pub fn with_out_pad(mut self, pad: usize) -> Self {
        self.out_pad = pad;
        self
    }

    /// Set the gradient-output padding (graph executors pass 0).
    pub fn with_dout_pad(mut self, pad: usize) -> Self {
        self.dout_pad = Some(pad);
        self
    }

    /// Set the physical input padding (for shared activation buffers).
    pub fn with_input_pad(mut self, pad: usize) -> Self {
        self.input_pad = Some(pad);
        self
    }

    /// Set the fused operator.
    pub fn with_fuse(mut self, fuse: FusedOp) -> Self {
        self.fuse = fuse;
        self
    }

    /// Set the backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Enable/disable prefetching.
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Set the tuning level.
    pub fn with_tune(mut self, tune: TuneLevel) -> Self {
        self.tune = tune;
        self
    }

    /// Attach a shared tuning-winner store.
    pub fn with_tune_store(mut self, store: TuneStore) -> Self {
        self.tune_store = Some(store);
        self
    }

    /// Attach the pool `Measured` tuning micro-benches on.
    pub fn with_pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Set the machine model (hosts calibrate one via `machine::host`).
    pub fn with_machine(mut self, machine: MachineModel) -> Self {
        self.machine = machine;
        self
    }

    /// Set the numeric execution mode.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Set the int8 accumulation-chain bound (channel blocks).
    pub fn with_chain_limit(mut self, chain_limit: usize) -> Self {
        assert!(chain_limit >= 1, "chain limit must be at least one channel block");
        self.chain_limit = chain_limit;
        self
    }
}

/// A fully planned convolution layer (fwd + bwd + upd).
pub struct ConvLayer {
    shape: ConvShape,
    opts: LayerOptions,
    blocking: Blocking,
    tune_outcome: TuneOutcome,
    fwd: FwdPlan,
    bwd: BwdPlan,
    upd: UpdPlan,
    quant: Option<QuantFwdPlan>,
}

impl ConvLayer {
    /// Full setup: blocking choice (heuristic or autotuned, per
    /// `opts.tune`), kernel generation, dryrun.
    pub fn new(shape: ConvShape, opts: LayerOptions) -> Self {
        let outcome = tune::resolve(&shape, &opts);
        let b = outcome.blocking;
        let input_pad = opts.input_pad.unwrap_or(shape.pad);
        let fwd = FwdPlan::with_pads(
            shape,
            b,
            opts.threads,
            opts.backend,
            opts.prefetch,
            opts.fuse,
            None,
            input_pad,
            opts.out_pad,
        );
        let bwd =
            BwdPlan::with_input_pad(shape, opts.threads, opts.backend, opts.prefetch, input_pad);
        let dout_pad = opts.dout_pad.unwrap_or_else(|| bwd.dout_pad());
        let upd = UpdPlan::with_input_pad(
            shape,
            b,
            opts.threads,
            opts.backend,
            opts.prefetch,
            &opts.machine,
            dout_pad,
            input_pad,
        );
        let quant = (opts.precision == Precision::Int8).then(|| {
            // the requantizing APPLY must visit every output tile, so a
            // fusion-free layer still records applies: Bias with an
            // all-zero vector degenerates to the pure requant.
            let qfuse = match opts.fuse {
                FusedOp::None => FusedOp::Bias,
                f => f,
            };
            QuantFwdPlan::new(
                shape,
                &QuantOptions::new(opts.threads)
                    .with_backend(opts.backend)
                    .with_prefetch(opts.prefetch)
                    .with_chain_limit(opts.chain_limit)
                    .with_blocking(b)
                    .with_input_pad(input_pad)
                    .with_fuse(qfuse)
                    .with_out_pad(opts.out_pad),
            )
        });
        Self { shape, opts, blocking: b, tune_outcome: outcome, fwd, bwd, upd, quant }
    }

    /// Physical padding the plans expect on the input tensor.
    pub fn input_pad(&self) -> usize {
        self.opts.input_pad.unwrap_or(self.shape.pad)
    }

    /// The layer's shape.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// The blocking in effect.
    pub fn blocking(&self) -> &Blocking {
        &self.blocking
    }

    /// How the blocking was chosen (level, predicted/measured GFLOPS,
    /// candidates ranked, tuning wall-clock).
    pub fn tune_outcome(&self) -> &TuneOutcome {
        &self.tune_outcome
    }

    /// Backward strategy chosen (Section II-I scenario).
    pub fn bwd_kind(&self) -> BwdKind {
        self.bwd.kind()
    }

    /// Weight-update copies chosen by the Section II-J model.
    pub fn upd_copies(&self) -> usize {
        self.upd.copies()
    }

    /// Kernel backend the forward plan resolved to.
    pub fn backend_name(&self) -> &'static str {
        self.fwd.backend_name()
    }

    /// Physical padding expected on gradient-output tensors (the
    /// duality-optimal value unless overridden in the options).
    pub fn dout_pad(&self) -> usize {
        self.opts.dout_pad.unwrap_or_else(|| self.bwd.dout_pad())
    }

    /// Allocate a correctly-padded input tensor.
    pub fn new_input(&self) -> BlockedActs {
        BlockedActs::zeros(self.shape.n, self.shape.c, self.shape.h, self.shape.w, self.input_pad())
    }

    /// Allocate an output tensor (with the configured output padding).
    pub fn new_output(&self) -> BlockedActs {
        BlockedActs::zeros(
            self.shape.n,
            self.shape.k,
            self.shape.p(),
            self.shape.q(),
            self.opts.out_pad,
        )
    }

    /// Allocate a gradient-output tensor with the duality padding.
    pub fn new_dout(&self) -> BlockedActs {
        BlockedActs::zeros(
            self.shape.n,
            self.shape.k,
            self.shape.p(),
            self.shape.q(),
            self.dout_pad(),
        )
    }

    /// Allocate a filter tensor.
    pub fn new_filter(&self) -> BlockedFilter {
        BlockedFilter::zeros(self.shape.k, self.shape.c, self.shape.r, self.shape.s)
    }

    /// The quantized forward plan (layers built at `Precision::Int8`).
    pub fn quant_plan(&self) -> Option<&QuantFwdPlan> {
        self.quant.as_ref()
    }

    /// The numeric execution mode this layer was planned for.
    pub fn precision(&self) -> Precision {
        self.opts.precision
    }

    /// Quantized forward propagation: int16 conv + requantizing fused
    /// APPLY (see [`QuantFwdPlan::run_fused`]). The layer must have
    /// been built at [`Precision::Int8`]. When the layer's fused op is
    /// `None`, the quant plan runs `Bias` — pass an all-zero bias.
    pub fn forward_quant(
        &self,
        pool: &ThreadPool,
        input: &VnniActs,
        weights: &VnniFilter,
        output: &mut BlockedActs,
        mult: &[f32],
        ctx: &FuseCtx<'_>,
    ) {
        let plan = self.quant.as_ref().expect("layer was not planned at Precision::Int8");
        plan.run_fused(pool, input, weights, output, mult, ctx);
    }

    /// Forward propagation (with the configured fusion).
    pub fn forward(
        &self,
        pool: &ThreadPool,
        input: &BlockedActs,
        weights: &BlockedFilter,
        output: &mut BlockedActs,
        ctx: &FuseCtx<'_>,
    ) {
        self.fwd.run(pool, input, weights, output, ctx);
    }

    /// Backward propagation: `dinput = conv_bwd(dout, weights)`.
    pub fn backward(
        &self,
        pool: &ThreadPool,
        dout: &BlockedActs,
        weights: &BlockedFilter,
        dinput: &mut BlockedActs,
    ) {
        self.bwd.run(pool, dout, weights, dinput);
    }

    /// Weight-gradient update: `dweights = conv_upd(input, dout)`.
    pub fn update(
        &self,
        pool: &ThreadPool,
        input: &BlockedActs,
        dout: &BlockedActs,
        dweights: &mut BlockedFilter,
    ) {
        self.upd.run(pool, input, dout, dweights);
    }

    /// The configured options.
    pub fn options(&self) -> &LayerOptions {
        &self.opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{conv_bwd_ref, conv_fwd_ref, conv_upd_ref};
    use tensor::{Kcrs, Nchw, Norms};

    /// Complete training-step consistency: fwd, bwd and upd of one
    /// layer against the naive references.
    #[test]
    fn full_layer_training_step() {
        let shape = ConvShape::new(2, 32, 48, 10, 10, 3, 3, 1, 1);
        let threads = 4;
        let pool = ThreadPool::new(threads);
        let layer = ConvLayer::new(shape, LayerOptions::new(threads));

        let x = Nchw::random(2, 32, 10, 10, 1);
        let w = Kcrs::random(48, 32, 3, 3, 2);
        let gy = Nchw::random(2, 48, shape.p(), shape.q(), 3);

        let xb = BlockedActs::from_nchw(&x, shape.pad);
        let wb = BlockedFilter::from_kcrs(&w);
        let gyb = BlockedActs::from_nchw(&gy, layer.dout_pad());

        let mut yb = layer.new_output();
        layer.forward(&pool, &xb, &wb, &mut yb, &FuseCtx::default());
        let mut y_ref = Nchw::zeros(2, 48, shape.p(), shape.q());
        conv_fwd_ref(&shape, &x, &w, &mut y_ref);
        assert!(Norms::compare(y_ref.as_slice(), yb.to_nchw().as_slice()).ok(1e-4));

        let mut gxb = layer.new_input();
        layer.backward(&pool, &gyb, &wb, &mut gxb);
        let mut gx_ref = Nchw::zeros(2, 32, 10, 10);
        conv_bwd_ref(&shape, &gy, &w, &mut gx_ref);
        assert!(Norms::compare(gx_ref.as_slice(), gxb.to_nchw().as_slice()).ok(1e-4));

        let mut dwb = layer.new_filter();
        layer.update(&pool, &xb, &gyb, &mut dwb);
        let mut dw_ref = Kcrs::zeros(48, 32, 3, 3);
        conv_upd_ref(&shape, &x, &gy, &mut dw_ref);
        assert!(Norms::compare(dw_ref.as_slice(), dwb.to_kcrs().as_slice()).ok(1e-3));
    }

    #[test]
    fn layer_reports_its_decisions() {
        let shape = ConvShape::new(2, 64, 64, 14, 14, 1, 1, 1, 0);
        let layer = ConvLayer::new(shape, LayerOptions::new(2));
        assert_eq!(layer.bwd_kind(), BwdKind::DualStride1);
        assert!(layer.upd_copies() >= 1);
        assert!(["jit", "intrinsics", "scalar"].contains(&layer.backend_name()));
        assert_eq!(layer.dout_pad(), 0);
    }

    #[test]
    fn fused_layer_end_to_end() {
        let shape = ConvShape::new(1, 16, 16, 8, 8, 3, 3, 1, 1);
        let pool = ThreadPool::new(2);
        let layer = ConvLayer::new(shape, LayerOptions::new(2).with_fuse(FusedOp::BiasRelu));
        let x = Nchw::random(1, 16, 8, 8, 4);
        let w = Kcrs::random(16, 16, 3, 3, 5);
        let xb = BlockedActs::from_nchw(&x, 1);
        let wb = BlockedFilter::from_kcrs(&w);
        let bias: Vec<f32> = (0..16).map(|i| 0.1 * i as f32 - 0.5).collect();
        let mut yb = layer.new_output();
        layer.forward(&pool, &xb, &wb, &mut yb, &FuseCtx { bias: Some(&bias), eltwise: None });

        let mut y_ref = Nchw::zeros(1, 16, 8, 8);
        conv_fwd_ref(&shape, &x, &w, &mut y_ref);
        for (k, &bk) in bias.iter().enumerate() {
            for h in 0..8 {
                for wd in 0..8 {
                    let v = (y_ref.at(0, k, h, wd) + bk).max(0.0);
                    *y_ref.at_mut(0, k, h, wd) = v;
                }
            }
        }
        assert!(Norms::compare(y_ref.as_slice(), yb.to_nchw().as_slice()).ok(1e-4));
    }
}
