//! Backward propagation (Section II-I).
//!
//! Three paths, chosen at setup:
//!
//! 1. **stride = 1 duality**: transform the weights
//!    (`W'[c][k][r'][s'] = W[k][c][R−1−r'][S−1−s']`) and run the
//!    *forward* engine on the dual shape — dO (physically padded by
//!    `R−1−pad`) plays the input, dI the output. This is the paper's
//!    headline trick for halving the number of code generators.
//! 2. **R = S = 1 duality**: dI is only written at stride-multiple
//!    pixels; the forward engine runs on the dual 1×1 shape with a
//!    *strided output geometry* (`out_col_stride = stride·VLEN`) into
//!    a pre-zeroed dI.
//! 3. **generic fallback** (strided spatial filters): Algorithm 7 —
//!    a loop nest of small GEMMs (`M = Q`, `K = N = VLEN`) against the
//!    transposed/flipped weight panels, parallelized over `(n, cb)` so
//!    dI accumulation never races.

use crate::blocking;
use crate::fuse::{FuseCtx, FusedOp};
use crate::fwd::{FwdPlan, OutGeom, SendConstPtr, SendMutPtr};
use crate::Backend;
use parallel::{FlatPartition, ThreadPool};
use smallgemm::SmallGemm;
use std::sync::Mutex;
use tensor::{BlockedActs, BlockedFilter, ConvShape, VLEN};

/// Which backward strategy a layer uses (observable for tests/benches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BwdKind {
    /// Forward engine on the transposed/flipped weights (stride 1).
    DualStride1,
    /// Forward engine with strided output writes (1×1, any stride).
    Dual1x1,
    /// Algorithm 7 small-GEMM loop nest.
    GemmFallback,
}

/// Planned backward pass.
pub struct BwdPlan {
    shape: ConvShape,
    kind: BwdKind,
    /// Forward plan on the dual shape (duality paths).
    dual: Option<FwdPlan>,
    /// GEMM handle for the fallback path.
    gemm: Option<SmallGemm>,
    nthreads: usize,
    /// Physical padding of the dI tensor the plan writes.
    input_pad: usize,
    /// Reusable dO re-padding buffer for callers whose gradient tensor
    /// does not carry [`Self::dout_pad`] physical padding. Held by the
    /// plan so steady-state `run` calls stop allocating; taken out of
    /// the mutex for the duration of a call, so concurrent runs of a
    /// shared plan fall back to a fresh allocation instead of blocking.
    repad_scratch: Mutex<Option<BlockedActs>>,
}

impl BwdPlan {
    /// Choose the strategy and dryrun the dual plan.
    pub fn new(shape: ConvShape, nthreads: usize, backend: Backend, prefetch: bool) -> Self {
        Self::with_input_pad(shape, nthreads, backend, prefetch, shape.pad)
    }

    /// As [`BwdPlan::new`] but writing dI into a tensor carrying
    /// `input_pad ≥ shape.pad` physical padding.
    pub fn with_input_pad(
        shape: ConvShape,
        nthreads: usize,
        backend: Backend,
        prefetch: bool,
        input_pad: usize,
    ) -> Self {
        // the transpose-flip duality needs per-dimension dual padding
        // (r−1−pad_h, s−1−pad_w); with a single symmetric pad it is
        // only available for square filters — asymmetric (1×7 / 7×1)
        // Inception factorizations take the Algorithm 7 fallback
        let kind = if shape.r == 1 && shape.s == 1 {
            if shape.stride == 1 {
                BwdKind::DualStride1
            } else {
                BwdKind::Dual1x1
            }
        } else if shape.stride == 1 && shape.r == shape.s && shape.r > shape.pad {
            BwdKind::DualStride1
        } else {
            BwdKind::GemmFallback
        };
        match kind {
            BwdKind::DualStride1 => {
                assert!(shape.r > shape.pad, "pad larger than filter");
                let dual_pad = shape.r - 1 - shape.pad;
                let dual = ConvShape::new(
                    shape.n,
                    shape.k,
                    shape.c,
                    shape.p(),
                    shape.q(),
                    shape.r,
                    shape.s,
                    1,
                    dual_pad,
                );
                debug_assert_eq!(dual.p(), shape.h);
                debug_assert_eq!(dual.q(), shape.w);
                // dI is written into the (padded) input-geometry tensor
                let out_geom = di_geom(&shape, input_pad);
                let b = blocking::choose(&dual);
                let plan = FwdPlan::new(
                    dual,
                    b,
                    nthreads,
                    backend,
                    prefetch,
                    FusedOp::None,
                    Some(out_geom),
                );
                Self {
                    shape,
                    kind,
                    dual: Some(plan),
                    gemm: None,
                    nthreads,
                    input_pad,
                    repad_scratch: Mutex::new(None),
                }
            }
            BwdKind::Dual1x1 => {
                assert_eq!(shape.pad, 0, "1x1 layers carry no padding");
                let dual =
                    ConvShape::new(shape.n, shape.k, shape.c, shape.p(), shape.q(), 1, 1, 1, 0);
                // strided writes into dI: pixel (oj, oi) of the dual
                // output lands at dI[stride*oj][stride*oi]
                let di_row = (shape.w + 2 * input_pad) * VLEN;
                let di_cb = (shape.h + 2 * input_pad) * di_row;
                let out_geom = OutGeom {
                    row_stride: shape.stride * di_row,
                    col_stride: shape.stride * VLEN,
                    kb_stride: di_cb,
                    n_stride: shape.cb() * di_cb,
                    base: input_pad * (di_row + VLEN),
                };
                let b = blocking::choose(&dual);
                let plan = FwdPlan::new(
                    dual,
                    b,
                    nthreads,
                    backend,
                    prefetch,
                    FusedOp::None,
                    Some(out_geom),
                );
                Self {
                    shape,
                    kind,
                    dual: Some(plan),
                    gemm: None,
                    nthreads,
                    input_pad,
                    repad_scratch: Mutex::new(None),
                }
            }
            BwdKind::GemmFallback => {
                // C[Q×VLEN] += A[Q×VLEN] · B[VLEN×VLEN]; C rows are
                // dI pixels strided by stride·VLEN
                let gemm =
                    SmallGemm::new(shape.q(), VLEN, VLEN, VLEN, VLEN, shape.stride * VLEN, true);
                Self {
                    shape,
                    kind,
                    dual: None,
                    gemm: Some(gemm),
                    nthreads,
                    input_pad,
                    repad_scratch: Mutex::new(None),
                }
            }
        }
    }

    /// Strategy in effect.
    pub fn kind(&self) -> BwdKind {
        self.kind
    }

    /// Physical padding the dual path needs on the dO tensor (callers
    /// allocating gradient buffers with this padding avoid a copy).
    pub fn dout_pad(&self) -> usize {
        match self.kind {
            BwdKind::DualStride1 => self.shape.r - 1 - self.shape.pad,
            _ => 0,
        }
    }

    /// Execute: `dinput = conv_bwd(dout, weights)`.
    ///
    /// `dout` must carry at least [`Self::dout_pad`] physical padding
    /// (a padded scratch copy is made otherwise). `dinput` must have
    /// the layer's input geometry (same `pad` as the forward input).
    pub fn run(
        &self,
        pool: &ThreadPool,
        dout: &BlockedActs,
        weights: &BlockedFilter,
        dinput: &mut BlockedActs,
    ) {
        assert_eq!(pool.nthreads(), self.nthreads);
        let sh = &self.shape;
        assert_eq!((dout.n, dout.c, dout.h, dout.w), (sh.n, sh.k, sh.p(), sh.q()), "dout mismatch");
        assert_eq!(
            (dinput.n, dinput.c, dinput.h, dinput.w, dinput.pad),
            (sh.n, sh.c, sh.h, sh.w, self.input_pad),
            "dinput mismatch"
        );
        // every path needs dout at exactly `dout_pad()` physical
        // padding (0 for the non-DualStride1 kinds); mismatched
        // callers go through the plan's reusable re-padding buffer
        let need = self.dout_pad();
        let scratch = (dout.pad != need).then(|| self.repad_to_scratch(pool, dout, need));
        let src = scratch.as_ref().unwrap_or(dout);
        match self.kind {
            BwdKind::DualStride1 => {
                let wt = weights.transpose_flip();
                // SAFETY: dual plan geometry matches these tensors.
                unsafe {
                    self.dual.as_ref().unwrap().run_raw(
                        pool,
                        src.as_ptr(),
                        wt.as_ptr(),
                        dinput.as_mut_ptr(),
                        &FuseCtx::default(),
                    )
                };
            }
            BwdKind::Dual1x1 => {
                let wt = weights.transpose_flip();
                dinput.zero();
                // SAFETY: strided out-geom targets dinput's interior.
                unsafe {
                    self.dual.as_ref().unwrap().run_raw(
                        pool,
                        src.as_ptr(),
                        wt.as_ptr(),
                        dinput.as_mut_ptr(),
                        &FuseCtx::default(),
                    )
                };
            }
            BwdKind::GemmFallback => {
                self.run_gemm(pool, src, weights, dinput);
            }
        }
        if let Some(buf) = scratch {
            *self.repad_scratch.lock().unwrap() = Some(buf);
        }
    }

    /// Copy `src` into the plan's re-padding buffer (allocating it on
    /// first use or when a concurrent run holds it) and return it.
    fn repad_to_scratch(&self, pool: &ThreadPool, src: &BlockedActs, pad: usize) -> BlockedActs {
        let taken = self.repad_scratch.lock().unwrap().take();
        let mut dst = match taken {
            Some(b) if (b.n, b.c, b.h, b.w, b.pad) == (src.n, src.c, src.h, src.w, pad) => b,
            _ => BlockedActs::zeros(src.n, src.c, src.h, src.w, pad),
        };
        repad_into(pool, src, &mut dst);
        dst
    }

    /// Algorithm 7: backward with small GEMM calls.
    fn run_gemm(
        &self,
        pool: &ThreadPool,
        dout: &BlockedActs,
        weights: &BlockedFilter,
        dinput: &mut BlockedActs,
    ) {
        let sh = self.shape;
        let wt = weights.transpose_flip(); // W'[cb][kb][·][·][c'][k']
        dinput.zero();
        let gemm = self.gemm.as_ref().unwrap();
        let p_dim = sh.p();
        let part = FlatPartition::new([sh.n, sh.cb(), 1, 1]);
        let di = SendMutPtr(dinput.as_mut_ptr());
        let go = SendConstPtr(dout.as_ptr());
        let wt_ref = &wt;
        let di_row = dinput.stride_h();
        let di_cb = dinput.stride_cb();
        let di_n = dinput.stride_n();
        let di_base = (self.input_pad - sh.pad) * (di_row + VLEN);
        let do_row = dout.stride_h();
        let do_kb = dout.stride_cb();
        let do_n = dout.stride_n();
        pool.run(move |ctx| {
            for item in part.range(ctx.nthreads, ctx.tid) {
                let [n, cb, _, _] = part.unflatten(item);
                for kb in 0..sh.kb() {
                    for oj in 0..p_dim {
                        let ij = sh.stride * oj; // physical dI row base
                        for r in 0..sh.r {
                            for s in 0..sh.s {
                                // A: dO row (Q × VLEN)
                                let a_off = n * do_n + kb * do_kb + oj * do_row;
                                // B: W' panel, Alg 7 line 10 indexing
                                let b_off = wt_ref.panel_offset(cb, kb, sh.r - 1 - r, sh.s - 1 - s);
                                // C: dI pixels [ij + r][s + stride·oi]
                                let c_off =
                                    di_base + n * di_n + cb * di_cb + (ij + r) * di_row + s * VLEN;
                                // SAFETY: offsets in-bounds by construction;
                                // (n, cb) ownership keeps C writes disjoint.
                                unsafe {
                                    gemm.run_ptr(
                                        go.get().add(a_off),
                                        wt_ref.as_ptr().add(b_off),
                                        di.get().add(c_off),
                                    )
                                };
                            }
                        }
                    }
                }
            }
        });
        // Gradients written into the physical padding border are
        // gradients w.r.t. zero-padding — discard them to keep the
        // border invariant (border == 0) for downstream consumers.
        zero_border(dinput);
    }
}

/// dI output geometry: the (padded) input tensor of the layer.
fn di_geom(shape: &ConvShape, input_pad: usize) -> OutGeom {
    let row = (shape.w + 2 * input_pad) * VLEN;
    let cb = (shape.h + 2 * input_pad) * row;
    OutGeom {
        row_stride: row,
        col_stride: VLEN,
        kb_stride: cb,
        n_stride: shape.cb() * cb,
        base: input_pad * row + input_pad * VLEN,
    }
}

/// Copy `src`'s logical interior into `dst`, which carries different
/// physical padding. Only interior rows are written, so a zero border
/// stays zero across reuses of the same destination buffer.
pub(crate) fn repad_into(pool: &ThreadPool, src: &BlockedActs, dst: &mut BlockedActs) {
    assert_eq!((dst.n, dst.c, dst.h, dst.w), (src.n, src.c, src.h, src.w), "repad geometry");
    let pad = dst.pad;
    let rows_total = src.n * src.cb * src.h;
    let dptr = SendMutPtr(dst.as_mut_ptr());
    let wp_new = src.w + 2 * pad;
    let hp_new = src.h + 2 * pad;
    pool.run(|ctx| {
        for row in ctx.chunk(rows_total) {
            let (ncb, h) = (row / src.h, row % src.h);
            let (n, cb) = (ncb / src.cb, ncb % src.cb);
            let s_off = src.pix_offset_logical(n, cb, h as isize, 0);
            let d_off = ((n * src.cb + cb) * hp_new + h + pad) * wp_new * VLEN + pad * VLEN;
            // SAFETY: disjoint destination rows per iteration.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    src.as_ptr().add(s_off),
                    dptr.get().add(d_off),
                    src.w * VLEN,
                );
            }
        }
    });
}

/// Zero the physical padding border of a tensor.
fn zero_border(t: &mut BlockedActs) {
    if t.pad == 0 {
        return;
    }
    let (pad, w, cb_count, n_count) = (t.pad, t.w, t.cb, t.n);
    let (hp, wp) = (t.hp(), t.wp());
    let (row, cbs) = (t.stride_h(), t.stride_cb());
    let data = t.as_mut_slice();
    for n in 0..n_count {
        for cb in 0..cb_count {
            let base = (n * cb_count + cb) * cbs;
            for h in 0..hp {
                if h < pad || h >= hp - pad {
                    data[base + h * row..base + (h + 1) * row].fill(0.0);
                } else {
                    data[base + h * row..base + h * row + pad * VLEN].fill(0.0);
                    let right = base + h * row + (pad + w) * VLEN;
                    data[right..right + (wp - w - pad) * VLEN].fill(0.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::conv_bwd_ref;
    use tensor::{Kcrs, Nchw, Norms};

    fn run_case(shape: ConvShape, threads: usize) -> BwdKind {
        let pool = ThreadPool::new(threads);
        let plan = BwdPlan::new(shape, threads, Backend::Auto, false);

        let gy = Nchw::random(shape.n, shape.k, shape.p(), shape.q(), 3);
        let w = Kcrs::random(shape.k, shape.c, shape.r, shape.s, 4);
        let gyb = BlockedActs::from_nchw(&gy, plan.dout_pad());
        let wb = BlockedFilter::from_kcrs(&w);
        let mut gxb = BlockedActs::zeros(shape.n, shape.c, shape.h, shape.w, shape.pad);
        plan.run(&pool, &gyb, &wb, &mut gxb);

        let mut gx_ref = Nchw::zeros(shape.n, shape.c, shape.h, shape.w);
        conv_bwd_ref(&shape, &gy, &w, &mut gx_ref);
        let n = Norms::compare(gx_ref.as_slice(), gxb.to_nchw().as_slice());
        assert!(n.ok(1e-4), "{shape}: {n}");
        plan.kind()
    }

    #[test]
    fn stride1_3x3_uses_duality() {
        let k = run_case(ConvShape::new(2, 32, 32, 8, 8, 3, 3, 1, 1), 4);
        assert_eq!(k, BwdKind::DualStride1);
    }

    #[test]
    fn stride1_1x1_uses_duality() {
        let k = run_case(ConvShape::new(2, 32, 48, 8, 8, 1, 1, 1, 0), 4);
        assert_eq!(k, BwdKind::DualStride1);
    }

    #[test]
    fn stride1_7x7_pad3() {
        let k = run_case(ConvShape::new(1, 16, 16, 12, 12, 7, 7, 1, 3), 2);
        assert_eq!(k, BwdKind::DualStride1);
    }

    #[test]
    fn strided_1x1_uses_strided_writes() {
        let k = run_case(ConvShape::new(2, 32, 48, 8, 8, 1, 1, 2, 0), 3);
        assert_eq!(k, BwdKind::Dual1x1);
        // odd input extent: last row/col receives no gradient
        let k = run_case(ConvShape::new(1, 16, 16, 9, 9, 1, 1, 2, 0), 2);
        assert_eq!(k, BwdKind::Dual1x1);
    }

    #[test]
    fn strided_spatial_uses_gemm_fallback() {
        let k = run_case(ConvShape::new(1, 16, 32, 10, 10, 3, 3, 2, 1), 4);
        assert_eq!(k, BwdKind::GemmFallback);
        // the 7x7/stride-2 first conv (small version)
        let k = run_case(ConvShape::new(1, 3, 16, 20, 20, 7, 7, 2, 3), 2);
        assert_eq!(k, BwdKind::GemmFallback);
    }

    #[test]
    fn dout_without_padding_takes_copy_path() {
        let shape = ConvShape::new(1, 16, 16, 8, 8, 3, 3, 1, 1);
        let pool = ThreadPool::new(2);
        let plan = BwdPlan::new(shape, 2, Backend::Auto, false);
        assert_eq!(plan.dout_pad(), 1); // R−1−pad = 3−1−1
        let gy = Nchw::random(1, 16, 8, 8, 3);
        let w = Kcrs::random(16, 16, 3, 3, 4);
        let gyb = BlockedActs::from_nchw(&gy, 0); // *no* padding
        let wb = BlockedFilter::from_kcrs(&w);
        let mut gxb = BlockedActs::zeros(1, 16, 8, 8, 1);
        plan.run(&pool, &gyb, &wb, &mut gxb);
        let mut gx_ref = Nchw::zeros(1, 16, 8, 8);
        conv_bwd_ref(&shape, &gy, &w, &mut gx_ref);
        let n = Norms::compare(gx_ref.as_slice(), gxb.to_nchw().as_slice());
        assert!(n.ok(1e-4), "{n}");
    }

    #[test]
    fn repad_scratch_is_reused_across_calls() {
        let shape = ConvShape::new(1, 16, 16, 8, 8, 3, 3, 1, 1);
        let pool = ThreadPool::new(2);
        let plan = BwdPlan::new(shape, 2, Backend::Auto, false);
        assert!(plan.dout_pad() > 0);
        let gy = Nchw::random(1, 16, 8, 8, 3);
        let w = Kcrs::random(16, 16, 3, 3, 4);
        let gyb = BlockedActs::from_nchw(&gy, 0); // forces the repad path
        let wb = BlockedFilter::from_kcrs(&w);
        let mut gxb = BlockedActs::zeros(1, 16, 8, 8, 1);
        plan.run(&pool, &gyb, &wb, &mut gxb);
        let first = plan.repad_scratch.lock().unwrap().as_ref().map(|b| b.as_ptr()).unwrap();
        let out1 = gxb.as_slice().to_vec();
        plan.run(&pool, &gyb, &wb, &mut gxb);
        let second = plan.repad_scratch.lock().unwrap().as_ref().map(|b| b.as_ptr()).unwrap();
        assert_eq!(first, second, "steady-state backward must reuse the plan's buffer");
        assert_eq!(out1, gxb.as_slice(), "reused scratch must not change results");
    }

    #[test]
    fn border_stays_zero_after_gemm_fallback() {
        let shape = ConvShape::new(1, 16, 16, 10, 10, 3, 3, 2, 1);
        let pool = ThreadPool::new(2);
        let plan = BwdPlan::new(shape, 2, Backend::Auto, false);
        let gy = Nchw::random(1, 16, shape.p(), shape.q(), 3);
        let w = Kcrs::random(16, 16, 3, 3, 4);
        let gyb = BlockedActs::from_nchw(&gy, 0);
        let wb = BlockedFilter::from_kcrs(&w);
        let mut gxb = BlockedActs::zeros(1, 16, 10, 10, 1);
        plan.run(&pool, &gyb, &wb, &mut gxb);
        for wcol in 0..gxb.wp() {
            let off = gxb.pix_offset_logical(0, 0, -1, wcol as isize - 1);
            for v in 0..VLEN {
                assert_eq!(gxb.as_slice()[off + v], 0.0);
            }
        }
    }
}
