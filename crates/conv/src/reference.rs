//! Naive reference loop nests (Algorithms 1, 6 and 8 of the paper).
//!
//! These operate on plain `NCHW`/`KCRS` tensors and define correctness
//! for every optimized engine — the same role the "simple loop nest as
//! reference code" plays in the paper's artifact (Section V-E).

use tensor::{ConvShape, Kcrs, Nchw};

/// Algorithm 1: naive forward propagation. `out` is overwritten.
pub fn conv_fwd_ref(shape: &ConvShape, input: &Nchw, weights: &Kcrs, out: &mut Nchw) {
    assert_eq!((input.n, input.c, input.h, input.w), (shape.n, shape.c, shape.h, shape.w));
    assert_eq!((weights.k, weights.c, weights.r, weights.s), (shape.k, shape.c, shape.r, shape.s));
    let (p_dim, q_dim) = (shape.p(), shape.q());
    assert_eq!((out.n, out.c, out.h, out.w), (shape.n, shape.k, p_dim, q_dim));
    out.zero();
    for n in 0..shape.n {
        for k in 0..shape.k {
            for c in 0..shape.c {
                for oj in 0..p_dim {
                    for oi in 0..q_dim {
                        let mut acc = out.at(n, k, oj, oi);
                        for r in 0..shape.r {
                            for s in 0..shape.s {
                                let ij = (shape.stride * oj + r) as isize - shape.pad as isize;
                                let ii = (shape.stride * oi + s) as isize - shape.pad as isize;
                                if ij >= 0
                                    && (ij as usize) < shape.h
                                    && ii >= 0
                                    && (ii as usize) < shape.w
                                {
                                    acc += input.at(n, c, ij as usize, ii as usize)
                                        * weights.at(k, c, r, s);
                                }
                            }
                        }
                        *out.at_mut(n, k, oj, oi) = acc;
                    }
                }
            }
        }
    }
}

/// Algorithm 6: naive backward propagation. `dinput` is overwritten.
pub fn conv_bwd_ref(shape: &ConvShape, dout: &Nchw, weights: &Kcrs, dinput: &mut Nchw) {
    let (p_dim, q_dim) = (shape.p(), shape.q());
    assert_eq!((dout.n, dout.c, dout.h, dout.w), (shape.n, shape.k, p_dim, q_dim));
    assert_eq!((dinput.n, dinput.c, dinput.h, dinput.w), (shape.n, shape.c, shape.h, shape.w));
    dinput.zero();
    for n in 0..shape.n {
        for k in 0..shape.k {
            for c in 0..shape.c {
                for oj in 0..p_dim {
                    for oi in 0..q_dim {
                        let g = dout.at(n, k, oj, oi);
                        for r in 0..shape.r {
                            for s in 0..shape.s {
                                let ij = (shape.stride * oj + r) as isize - shape.pad as isize;
                                let ii = (shape.stride * oi + s) as isize - shape.pad as isize;
                                if ij >= 0
                                    && (ij as usize) < shape.h
                                    && ii >= 0
                                    && (ii as usize) < shape.w
                                {
                                    *dinput.at_mut(n, c, ij as usize, ii as usize) +=
                                        g * weights.at(k, c, r, s);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Algorithm 8: naive weight-gradient update. `dweights` is overwritten.
pub fn conv_upd_ref(shape: &ConvShape, input: &Nchw, dout: &Nchw, dweights: &mut Kcrs) {
    let (p_dim, q_dim) = (shape.p(), shape.q());
    assert_eq!((input.n, input.c, input.h, input.w), (shape.n, shape.c, shape.h, shape.w));
    assert_eq!((dout.n, dout.c, dout.h, dout.w), (shape.n, shape.k, p_dim, q_dim));
    assert_eq!(
        (dweights.k, dweights.c, dweights.r, dweights.s),
        (shape.k, shape.c, shape.r, shape.s)
    );
    dweights.zero();
    for n in 0..shape.n {
        for k in 0..shape.k {
            for c in 0..shape.c {
                for oj in 0..p_dim {
                    for oi in 0..q_dim {
                        let g = dout.at(n, k, oj, oi);
                        for r in 0..shape.r {
                            for s in 0..shape.s {
                                let ij = (shape.stride * oj + r) as isize - shape.pad as isize;
                                let ii = (shape.stride * oi + s) as isize - shape.pad as isize;
                                if ij >= 0
                                    && (ij as usize) < shape.h
                                    && ii >= 0
                                    && (ii as usize) < shape.w
                                {
                                    *dweights.at_mut(k, c, r, s) +=
                                        input.at(n, c, ij as usize, ii as usize) * g;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fwd_identity_filter_passes_input_through() {
        // 1x1 filter with W[k][c] = 1 iff k == c copies the input
        let shape = ConvShape::new(1, 4, 4, 5, 5, 1, 1, 1, 0);
        let input = Nchw::random(1, 4, 5, 5, 1);
        let mut w = Kcrs::zeros(4, 4, 1, 1);
        for k in 0..4 {
            *w.at_mut(k, k, 0, 0) = 1.0;
        }
        let mut out = Nchw::zeros(1, 4, 5, 5);
        conv_fwd_ref(&shape, &input, &w, &mut out);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn fwd_padding_keeps_output_size() {
        let shape = ConvShape::new(1, 1, 1, 4, 4, 3, 3, 1, 1);
        let mut input = Nchw::zeros(1, 1, 4, 4);
        *input.at_mut(0, 0, 0, 0) = 1.0;
        let mut w = Kcrs::zeros(1, 1, 3, 3);
        *w.at_mut(0, 0, 1, 1) = 2.0; // center tap
        let mut out = Nchw::zeros(1, 1, 4, 4);
        conv_fwd_ref(&shape, &input, &w, &mut out);
        assert_eq!(out.at(0, 0, 0, 0), 2.0);
        assert_eq!(out.at(0, 0, 1, 1), 0.0);
    }

    #[test]
    fn bwd_is_adjoint_of_fwd() {
        // <conv(x), gy> == <x, conv_bwd(gy)> — the defining property
        let shape = ConvShape::new(2, 3, 5, 6, 6, 3, 3, 1, 1);
        let x = Nchw::random(2, 3, 6, 6, 11);
        let w = Kcrs::random(5, 3, 3, 3, 12);
        let gy = Nchw::random(2, 5, shape.p(), shape.q(), 13);
        let mut y = Nchw::zeros(2, 5, shape.p(), shape.q());
        conv_fwd_ref(&shape, &x, &w, &mut y);
        let mut gx = Nchw::zeros(2, 3, 6, 6);
        conv_bwd_ref(&shape, &gy, &w, &mut gx);
        let dot_y: f64 =
            y.as_slice().iter().zip(gy.as_slice()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let dot_x: f64 =
            x.as_slice().iter().zip(gx.as_slice()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        assert!((dot_y - dot_x).abs() < 1e-3 * dot_y.abs().max(1.0), "{dot_y} vs {dot_x}");
    }

    #[test]
    fn upd_matches_finite_difference_structure() {
        // d/dw <conv(x; w), gy> = upd(x, gy): check one coordinate
        let shape = ConvShape::new(1, 2, 2, 4, 4, 3, 3, 1, 1);
        let x = Nchw::random(1, 2, 4, 4, 21);
        let gy = Nchw::random(1, 2, 4, 4, 22);
        let mut dw = Kcrs::zeros(2, 2, 3, 3);
        conv_upd_ref(&shape, &x, &gy, &mut dw);

        let mut w = Kcrs::zeros(2, 2, 3, 3);
        let eps = 1e-2f32;
        *w.at_mut(1, 0, 2, 1) = eps;
        let mut y = Nchw::zeros(1, 2, 4, 4);
        conv_fwd_ref(&shape, &x, &w, &mut y);
        let loss: f64 =
            y.as_slice().iter().zip(gy.as_slice()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        // loss is linear in w: loss = eps * dw[1][0][2][1]
        let grad = loss / eps as f64;
        assert!((grad - dw.at(1, 0, 2, 1) as f64).abs() < 1e-3, "{grad} vs {}", dw.at(1, 0, 2, 1));
    }

    #[test]
    fn strided_shapes_are_consistent() {
        let shape = ConvShape::new(1, 2, 3, 8, 8, 3, 3, 2, 1);
        assert_eq!(shape.p(), 4);
        let x = Nchw::random(1, 2, 8, 8, 5);
        let w = Kcrs::random(3, 2, 3, 3, 6);
        let mut y = Nchw::zeros(1, 3, 4, 4);
        conv_fwd_ref(&shape, &x, &w, &mut y);
        // spot check one output element against manual computation
        let (oj, oi, k) = (1usize, 2usize, 2usize);
        let mut acc = 0.0f32;
        for c in 0..2 {
            for r in 0..3 {
                for s in 0..3 {
                    let ij = 2 * oj + r;
                    let ii = 2 * oi + s;
                    if ij >= 1 && ij - 1 < 8 && ii >= 1 && ii - 1 < 8 {
                        acc += x.at(0, c, ij - 1, ii - 1) * w.at(k, c, r, s);
                    }
                }
            }
        }
        assert!((y.at(0, k, oj, oi) - acc).abs() < 1e-5);
    }
}
