//! Plan-time autotuning of the blocking choice (DESIGN.md §10).
//!
//! The paper's performance hinges on picking the right register/cache
//! blocking per layer; [`crate::blocking::choose`] encodes the rule of
//! thumb, and this module escalates beyond it:
//!
//! * [`TuneLevel::Heuristic`] — the fixed rule, zero tuning cost (the
//!   default);
//! * [`TuneLevel::Model`] — enumerate every legal [`Blocking`]
//!   candidate for the shape ([`candidates`]) and rank them with the
//!   machine's L2 traffic model + per-core roofline
//!   ([`predicted_gflops_core`]);
//! * [`TuneLevel::Measured`] — micro-bench the model's top-k
//!   candidates once on the layer's real [`ThreadPool`] (warmup run
//!   first, so the process-wide kernel cache is warm and the timed
//!   iterations replay pure streams), keep the empirical winner. The
//!   heuristic blocking is always in the measured set, so a tuned
//!   plan can never lose to the heuristic by more than timing noise.
//!
//! Tuning is deterministic-safe: when no pool is attached to the
//! [`LayerOptions`], when the pool's team size differs from the plan's
//! thread count, or when the shape is too small to time stably,
//! `Measured` silently degrades to `Model` — CI boxes never pick
//! noise-driven losers.
//!
//! Results are deduplicated through a [`TuneStore`] keyed by
//! `(ConvShape, machine fingerprint, level)` — every [`PlanCache`]
//! (see [`crate::cache`]) owns one, so replicas and repeated builds
//! never re-tune — and persist across processes via a versioned
//! on-disk file ([`TuneStore::save`]/[`TuneStore::load`]): a daemon
//! restart with the tuning cache on disk performs zero micro-bench
//! runs.
//!
//! [`PlanCache`]: crate::cache::PlanCache

use crate::blocking::{self, Blocking, MAX_ACC, MIN_CHAINS};
use crate::fuse::{FuseCtx, FusedOp};
use crate::fwd::FwdPlan;
use crate::layer::LayerOptions;
use machine::MachineModel;
use parallel::ThreadPool;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tensor::{BlockedActs, BlockedFilter, ConvShape};

/// How hard the planner works to pick a layer's [`Blocking`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TuneLevel {
    /// The fixed [`crate::blocking::choose`] rule — no search.
    #[default]
    Heuristic,
    /// Enumerate all legal candidates, rank by predicted GFLOPS
    /// (traffic model + roofline), keep the best-predicted.
    Model,
    /// Rank as `Model`, then micro-bench the top-k (plus the
    /// heuristic) once on the layer's pool and keep the winner.
    Measured,
}

impl TuneLevel {
    /// Parse a level name (`heuristic`/`off`/`none`/`0`, `model`,
    /// `measured`), case-insensitively.
    ///
    /// # Errors
    /// The unrecognized input, for the caller's error message.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "heuristic" | "off" | "none" | "0" => Ok(Self::Heuristic),
            "model" => Ok(Self::Model),
            "measured" => Ok(Self::Measured),
            other => Err(format!("unknown tune level '{other}' (want off|model|measured)")),
        }
    }

    /// The level named by the `ANATOMY_TUNE` environment variable, if
    /// set to a recognized value.
    pub fn from_env() -> Option<Self> {
        std::env::var("ANATOMY_TUNE").ok().and_then(|v| Self::parse(&v).ok())
    }

    /// Stable lowercase name (the `ANATOMY_TUNE` / `--tune` spelling).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Heuristic => "heuristic",
            Self::Model => "model",
            Self::Measured => "measured",
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Self::Heuristic => 0,
            Self::Model => 1,
            Self::Measured => 2,
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(Self::Heuristic),
            1 => Some(Self::Model),
            2 => Some(Self::Measured),
            _ => None,
        }
    }
}

/// What the tuner decided for one layer, and how it got there.
#[derive(Clone, Copy, Debug)]
pub struct TuneOutcome {
    /// The level that actually produced the blocking (a `Measured`
    /// request that could not be timed stably reports `Model` here).
    pub level: TuneLevel,
    /// The winning blocking the plans were built with.
    pub blocking: Blocking,
    /// Model-predicted whole-team GFLOPS of the winner (per-core
    /// roofline × thread count) — recorded for every plan, heuristic
    /// included, so predicted-vs-measured error is always reportable.
    pub predicted_gflops: f64,
    /// Micro-benched whole-team GFLOPS of the winner (`Measured` only).
    pub measured_gflops: Option<f64>,
    /// Number of candidates the search ranked (0 for `Heuristic`).
    pub candidates: usize,
    /// Wall-clock the tuning decision cost, in milliseconds (≈0 on a
    /// [`TuneStore`] hit).
    pub tune_ms: f64,
}

/// Every legal [`Blocking`] candidate for `shape`:
///
/// * `rbq` ∈ divisors of `Q` up to [`MAX_ACC`], plus the
///   remainder-tile option `rbq = MAX_ACC` when `Q > MAX_ACC`;
/// * `rbp` ∈ `1..=P` under the register budget `rbp × rbq ≤ MAX_ACC`;
/// * candidates must cover [`MIN_CHAINS`] accumulation chains whenever
///   the plane allows it (smaller planes keep their best effort);
/// * `cb_inner` ∈ {1, `Cb`} for 1×1 layers (Section II-C's pulled-in
///   reduction), {1} otherwise;
/// * the weight-update blocking rides along from its own working-set
///   sweep (`upd_bq` is always the full row `Q` — the update kernels
///   sweep complete rows by construction).
pub fn candidates(shape: &ConvShape) -> Vec<Blocking> {
    let (p, q) = (shape.p(), shape.q());
    let upd_bq = q;
    let upd_bp = blocking::choose_upd_bp(p, q);
    let mut rbqs: Vec<usize> = (1..=q.min(MAX_ACC)).filter(|c| q.is_multiple_of(*c)).collect();
    if q > MAX_ACC && !rbqs.contains(&MAX_ACC) {
        rbqs.push(MAX_ACC);
    }
    let cb_inners: Vec<usize> =
        if shape.r == 1 && shape.s == 1 && shape.cb() > 1 { vec![1, shape.cb()] } else { vec![1] };
    let mut out = Vec::new();
    for &rbq in &rbqs {
        for rbp in 1..=p.min(MAX_ACC / rbq) {
            for &cb_inner in &cb_inners {
                out.push(Blocking { rbp, rbq, cb_inner, upd_bp, upd_bq });
            }
        }
    }
    // keep only candidates that cover the FMA latency — unless the
    // whole plane is too small, in which case keep the best coverage
    // the plane allows
    let max_chains = out.iter().map(|b| b.rbp * b.rbq).max().unwrap_or(1);
    let need = MIN_CHAINS.min(max_chains);
    out.retain(|b| b.rbp * b.rbq >= need);
    out
}

/// Model-predicted per-core GFLOPS of running `shape` at blocking `b`
/// on machine `m`: L2 traffic of the explicit candidate
/// ([`machine::forward_traffic_with`]) pushed through the per-core
/// roofline — the autotuner's ranking formula.
pub fn predicted_gflops_core(m: &MachineModel, shape: &ConvShape, b: &Blocking) -> f64 {
    let t = machine::forward_traffic_with(m, shape, b.rbp, b.rbq, b.cb_inner);
    machine::attainable_gflops_core(m, t.oi_read(), t.oi_write())
}

/// All candidates for `shape`, ranked best-predicted first. Ties break
/// deterministically towards exact tiling (no remainder tiles), more
/// accumulation chains, then wider `rbq` — so equal-scoring candidates
/// rank the same on every run and every machine.
pub fn rank(m: &MachineModel, shape: &ConvShape) -> Vec<(Blocking, f64)> {
    let (p, q) = (shape.p(), shape.q());
    let mut ranked: Vec<(Blocking, f64)> =
        candidates(shape).into_iter().map(|b| (b, predicted_gflops_core(m, shape, &b))).collect();
    ranked.sort_by(|(a, ga), (b, gb)| {
        gb.total_cmp(ga)
            .then_with(|| {
                let ar = usize::from(p.is_multiple_of(a.rbp) && q.is_multiple_of(a.rbq));
                let br = usize::from(p.is_multiple_of(b.rbp) && q.is_multiple_of(b.rbq));
                br.cmp(&ar)
            })
            .then_with(|| (b.rbp * b.rbq).cmp(&(a.rbp * a.rbq)))
            .then_with(|| b.rbq.cmp(&a.rbq))
            .then_with(|| b.cb_inner.cmp(&a.cb_inner))
    });
    ranked
}

/// Candidates timed by `Measured` after the model ranking.
const TOP_K: usize = 4;
/// Untimed warmup replays per candidate (also JITs + warms the
/// process-wide kernel cache before the clock starts).
const TUNE_WARMUP: usize = 1;
/// Timed replays per candidate — a fixed budget, so tuning cost is
/// bounded and identical across runs.
const TUNE_ITERS: usize = 4;
/// A warmup replay faster than this cannot be timed stably at the
/// fixed budget; `Measured` falls back to the model ranking.
const MIN_STABLE_SECS: f64 = 20e-6;
/// How much faster a measured candidate must be to displace the
/// heuristic — ties and within-noise wins go to the known-good rule,
/// so `Measured` never trades the heuristic for a same-speed blocking.
const MEASURED_MARGIN: f64 = 1.05;

/// Micro-bench `cands` on `pool` and return whole-team GFLOPS per
/// candidate, or `None` when measurement would be unstable.
fn micro_bench(
    shape: &ConvShape,
    opts: &LayerOptions,
    pool: &ThreadPool,
    cands: &[Blocking],
) -> Option<Vec<(Blocking, f64)>> {
    if pool.nthreads() != opts.threads {
        return None;
    }
    let input_pad = opts.input_pad.unwrap_or(shape.pad);
    let input = BlockedActs::zeros(shape.n, shape.c, shape.h, shape.w, input_pad);
    let weights = BlockedFilter::zeros(shape.k, shape.c, shape.r, shape.s);
    let mut output = BlockedActs::zeros(shape.n, shape.k, shape.p(), shape.q(), 0);
    let ctx = FuseCtx::default();
    let flops = shape.flops() as f64;
    // the candidate plans are built with the layer's own backend and
    // thread count; fusion is irrelevant to the blocking choice, so
    // the probe plans stay unfused and share one set of tensors
    let plans: Vec<FwdPlan> = cands
        .iter()
        .map(|&b| {
            FwdPlan::with_pads(
                *shape,
                b,
                opts.threads,
                opts.backend,
                opts.prefetch,
                FusedOp::None,
                None,
                input_pad,
                0,
            )
        })
        .collect();
    // warmup pass: JITs + warms the process-wide kernel cache so the
    // timed rounds below replay pure streams
    for plan in &plans {
        for _ in 0..TUNE_WARMUP {
            let t0 = Instant::now();
            plan.run(pool, &input, &weights, &mut output, &ctx);
            if t0.elapsed().as_secs_f64() < MIN_STABLE_SECS {
                // too fast to time at the fixed budget — noise would
                // pick the winner; let the model decide instead
                return None;
            }
        }
    }
    // timed rounds are interleaved across candidates (round-robin, not
    // back-to-back) so clock drift — frequency ramping, a neighbor
    // stealing the socket mid-tune — hits every candidate equally
    // instead of penalizing whoever happens to be measured last; the
    // per-candidate minimum over rounds then discards the noise spikes
    let mut best = vec![f64::INFINITY; plans.len()];
    for _ in 0..TUNE_ITERS {
        for (secs, plan) in best.iter_mut().zip(&plans) {
            let t0 = Instant::now();
            plan.run(pool, &input, &weights, &mut output, &ctx);
            *secs = secs.min(t0.elapsed().as_secs_f64());
        }
    }
    Some(cands.iter().zip(best).map(|(&b, secs)| (b, flops / secs / 1e9)).collect())
}

/// The heuristic outcome (always available, never searches).
fn heuristic_outcome(shape: &ConvShape, opts: &LayerOptions) -> TuneOutcome {
    let b = blocking::choose(shape);
    TuneOutcome {
        level: TuneLevel::Heuristic,
        blocking: b,
        predicted_gflops: predicted_gflops_core(&opts.machine, shape, &b) * opts.threads as f64,
        measured_gflops: None,
        candidates: 0,
        tune_ms: 0.0,
    }
}

/// One full tuning run at `opts.tune` (no store consulted). Returns
/// the outcome and the number of micro-bench candidate runs performed.
fn tune_once(shape: &ConvShape, opts: &LayerOptions) -> (TuneOutcome, usize) {
    let t0 = Instant::now();
    let ranked = rank(&opts.machine, shape);
    let n_cand = ranked.len();
    debug_assert!(!ranked.is_empty(), "candidate space is never empty");
    let threads = opts.threads as f64;
    let model_winner = ranked[0].0;
    let model_outcome = |tune_ms: f64| TuneOutcome {
        level: TuneLevel::Model,
        blocking: model_winner,
        predicted_gflops: ranked[0].1 * threads,
        measured_gflops: None,
        candidates: n_cand,
        tune_ms,
    };
    if opts.tune != TuneLevel::Measured {
        return (model_outcome(t0.elapsed().as_secs_f64() * 1e3), 0);
    }
    let mut topk: Vec<Blocking> = ranked.iter().take(TOP_K).map(|(b, _)| *b).collect();
    let h = blocking::choose(shape);
    if !topk.contains(&h) {
        // the heuristic always competes: a measured winner is then
        // never slower than the heuristic beyond timing noise
        topk.push(h);
    }
    let measured = opts.pool.as_deref().and_then(|pool| micro_bench(shape, opts, pool, &topk));
    match measured {
        None => (model_outcome(t0.elapsed().as_secs_f64() * 1e3), 0),
        Some(results) => {
            let micro_runs = results.len();
            let &(best, best_gf) = results
                .iter()
                .max_by(|(_, a), (_, b)| a.total_cmp(b))
                .expect("top-k is never empty");
            // a candidate must beat the heuristic by a real margin to
            // displace it: within-noise "wins" keep the known rule, so
            // a measured plan is never slower than the heuristic
            // beyond timing noise
            let h_gf = results.iter().find(|(b, _)| *b == h).map_or(0.0, |&(_, gf)| gf);
            let (winner, gf) = if best == h || best_gf >= h_gf * MEASURED_MARGIN {
                (best, best_gf)
            } else {
                (h, h_gf)
            };
            let predicted = predicted_gflops_core(&opts.machine, shape, &winner) * threads;
            (
                TuneOutcome {
                    level: TuneLevel::Measured,
                    blocking: winner,
                    predicted_gflops: predicted,
                    measured_gflops: Some(gf),
                    candidates: n_cand,
                    tune_ms: t0.elapsed().as_secs_f64() * 1e3,
                },
                micro_runs,
            )
        }
    }
}

/// Resolve the blocking for a layer being built: the single entry
/// point [`crate::ConvLayer::new`] calls. `Heuristic` is a fast path;
/// `Model`/`Measured` go through the options' [`TuneStore`] when one
/// is attached (the [`crate::cache::PlanCache`] attaches its own), so
/// one `(shape, machine, level)` tunes at most once per store.
pub(crate) fn resolve(shape: &ConvShape, opts: &LayerOptions) -> TuneOutcome {
    if opts.tune == TuneLevel::Heuristic {
        return heuristic_outcome(shape, opts);
    }
    match &opts.tune_store {
        Some(store) => store.resolve(shape, opts),
        None => tune_once(shape, opts).0,
    }
}

/// A persisted tuning decision: the winner for one
/// `(shape, machine fingerprint, level)` key.
#[derive(Clone, Copy, Debug)]
pub struct TuneEntry {
    /// The winning blocking.
    pub blocking: Blocking,
    /// Model-predicted whole-team GFLOPS of the winner.
    pub predicted_gflops: f64,
    /// Micro-benched whole-team GFLOPS (when the winner was measured).
    pub measured_gflops: Option<f64>,
    /// What the original tuning run cost, in milliseconds.
    pub tune_ms: f64,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct TuneKey {
    shape: ConvShape,
    fingerprint: u64,
    level: TuneLevel,
}

#[derive(Default)]
struct StoreInner {
    entries: HashMap<TuneKey, TuneEntry>,
    runs: usize,
    micro_runs: usize,
    tune_ms: f64,
}

/// A shareable memo of tuning winners keyed by
/// `(ConvShape, machine fingerprint, TuneLevel)` — cloning the handle
/// shares the store. Each [`crate::cache::PlanCache`] owns one, and it
/// round-trips to disk (versioned binary, magic `ANATTC\0\x01`) so a
/// process restart replays winners instead of re-measuring.
#[derive(Clone, Default)]
pub struct TuneStore {
    inner: Arc<Mutex<StoreInner>>,
}

/// Magic + version prefix of the on-disk tuning cache.
const TUNE_MAGIC: &[u8; 8] = b"ANATTC\0\x01";
/// Serialized size of one entry (shape 9×u32, fingerprint u64, level
/// u8, blocking 5×u32, predicted f64, has_measured u8, measured f64,
/// tune_ms f64).
const ENTRY_BYTES: usize = 9 * 4 + 8 + 1 + 5 * 4 + 8 + 1 + 8 + 8;

fn bad_data(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

impl TuneStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Winners currently memoized.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Whether no winner has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tuning searches actually run through this store (store hits —
    /// including entries loaded from disk — don't count).
    pub fn tune_runs(&self) -> usize {
        self.inner.lock().unwrap().runs
    }

    /// Candidate micro-bench measurements performed (0 after a restart
    /// that loaded every winner from disk).
    pub fn micro_bench_runs(&self) -> usize {
        self.inner.lock().unwrap().micro_runs
    }

    /// Total wall-clock spent inside tuning searches, in milliseconds.
    pub fn tune_time_ms(&self) -> f64 {
        self.inner.lock().unwrap().tune_ms
    }

    /// The memoized winner for `(shape, fingerprint, level)`, if any.
    pub fn get(&self, shape: &ConvShape, fingerprint: u64, level: TuneLevel) -> Option<TuneEntry> {
        let key = TuneKey { shape: *shape, fingerprint, level };
        self.inner.lock().unwrap().entries.get(&key).copied()
    }

    /// Get-or-tune under the store lock: concurrent requests for the
    /// same key tune once, everyone else replays the memo.
    fn resolve(&self, shape: &ConvShape, opts: &LayerOptions) -> TuneOutcome {
        let key =
            TuneKey { shape: *shape, fingerprint: opts.machine.fingerprint(), level: opts.tune };
        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.entries.get(&key) {
            return TuneOutcome {
                level: if e.measured_gflops.is_some() {
                    TuneLevel::Measured
                } else {
                    TuneLevel::Model
                },
                blocking: e.blocking,
                predicted_gflops: e.predicted_gflops,
                measured_gflops: e.measured_gflops,
                candidates: 0,
                tune_ms: 0.0,
            };
        }
        let (outcome, micro_runs) = tune_once(shape, opts);
        inner.runs += 1;
        inner.micro_runs += micro_runs;
        inner.tune_ms += outcome.tune_ms;
        inner.entries.insert(
            key,
            TuneEntry {
                blocking: outcome.blocking,
                predicted_gflops: outcome.predicted_gflops,
                measured_gflops: outcome.measured_gflops,
                tune_ms: outcome.tune_ms,
            },
        );
        outcome
    }

    /// Serialize every memoized winner (sorted for byte-stable output).
    pub fn to_bytes(&self) -> Vec<u8> {
        let inner = self.inner.lock().unwrap();
        let mut keys: Vec<&TuneKey> = inner.entries.keys().collect();
        keys.sort_by_key(|k| {
            let s = &k.shape;
            (s.n, s.c, s.k, s.h, s.w, s.r, s.s, s.stride, s.pad, k.fingerprint, k.level.as_u8())
        });
        let mut out = Vec::with_capacity(8 + 4 + keys.len() * ENTRY_BYTES);
        out.extend_from_slice(TUNE_MAGIC);
        out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
        for key in keys {
            let e = &inner.entries[key];
            let s = &key.shape;
            for v in [s.n, s.c, s.k, s.h, s.w, s.r, s.s, s.stride, s.pad] {
                out.extend_from_slice(&(v as u32).to_le_bytes());
            }
            out.extend_from_slice(&key.fingerprint.to_le_bytes());
            out.push(key.level.as_u8());
            let b = &e.blocking;
            for v in [b.rbp, b.rbq, b.cb_inner, b.upd_bp, b.upd_bq] {
                out.extend_from_slice(&(v as u32).to_le_bytes());
            }
            out.extend_from_slice(&e.predicted_gflops.to_le_bytes());
            out.push(u8::from(e.measured_gflops.is_some()));
            out.extend_from_slice(&e.measured_gflops.unwrap_or(0.0).to_le_bytes());
            out.extend_from_slice(&e.tune_ms.to_le_bytes());
        }
        out
    }

    /// Merge the winners serialized by [`Self::to_bytes`] into this
    /// store (existing keys keep their in-memory value). Every entry
    /// is validated against the blocking invariants the plans assert
    /// — a corrupted or hostile file is an error, never a panic in a
    /// later plan build. Returns the number of entries read.
    ///
    /// # Errors
    /// [`std::io::ErrorKind::InvalidData`] on bad magic/version,
    /// truncated or oversized payloads, or illegal entries.
    pub fn merge_bytes(&self, bytes: &[u8]) -> std::io::Result<usize> {
        if bytes.len() < 12 {
            return Err(bad_data("tuning cache: shorter than its header"));
        }
        if &bytes[..8] != TUNE_MAGIC {
            return Err(bad_data("tuning cache: bad magic/version (want ANATTC v1)"));
        }
        let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let want = 12 + count * ENTRY_BYTES;
        if bytes.len() != want {
            return Err(bad_data(format!(
                "tuning cache: {} entries need {want} bytes, file has {}",
                count,
                bytes.len()
            )));
        }
        let mut at = 12;
        let u32_at = |at: &mut usize| {
            let v = u32::from_le_bytes(bytes[*at..*at + 4].try_into().unwrap()) as usize;
            *at += 4;
            v
        };
        let mut inner = self.inner.lock().unwrap();
        for _ in 0..count {
            let f = [0; 9].map(|_| u32_at(&mut at));
            let [n, c, k, h, w, r, s, stride, pad] = f;
            if n == 0 || c == 0 || k == 0 || h == 0 || w == 0 || r == 0 || s == 0 || stride == 0 {
                return Err(bad_data("tuning cache: degenerate shape"));
            }
            if h + 2 * pad < r || w + 2 * pad < s {
                return Err(bad_data("tuning cache: filter exceeds padded input"));
            }
            let shape = ConvShape::new(n, c, k, h, w, r, s, stride, pad);
            let fingerprint = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
            at += 8;
            let level = TuneLevel::from_u8(bytes[at])
                .ok_or_else(|| bad_data("tuning cache: unknown tune level"))?;
            at += 1;
            let b = Blocking {
                rbp: u32_at(&mut at),
                rbq: u32_at(&mut at),
                cb_inner: u32_at(&mut at),
                upd_bp: u32_at(&mut at),
                upd_bq: u32_at(&mut at),
            };
            // the invariants the fwd/upd plans assert — reject here so
            // a hostile file cannot crash a later plan build
            let legal = b.rbp >= 1
                && b.rbq >= 1
                && b.rbp * b.rbq <= MAX_ACC
                && b.rbp <= shape.p()
                && b.rbq <= shape.q()
                && b.cb_inner >= 1
                && shape.cb().is_multiple_of(b.cb_inner)
                && (1..=shape.p()).contains(&b.upd_bp)
                && b.upd_bq == shape.q();
            if !legal {
                return Err(bad_data(format!("tuning cache: illegal blocking {b:?} for {shape}")));
            }
            let predicted_gflops = f64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
            at += 8;
            let has_measured = bytes[at];
            at += 1;
            let measured = f64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
            at += 8;
            let tune_ms = f64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
            at += 8;
            if has_measured > 1 || !predicted_gflops.is_finite() || !tune_ms.is_finite() {
                return Err(bad_data("tuning cache: malformed entry payload"));
            }
            let entry = TuneEntry {
                blocking: b,
                predicted_gflops,
                measured_gflops: (has_measured == 1).then_some(measured),
                tune_ms,
            };
            inner.entries.entry(TuneKey { shape, fingerprint, level }).or_insert(entry);
        }
        Ok(count)
    }

    /// Write the store to `path` ([`Self::to_bytes`] format).
    ///
    /// # Errors
    /// Any I/O error from the write.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        let n = self.len();
        std::fs::write(path, self.to_bytes())?;
        Ok(n)
    }

    /// Load `path` into the store (see [`Self::merge_bytes`]).
    ///
    /// # Errors
    /// Any I/O error from the read; `InvalidData` for malformed files.
    pub fn load(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        self.merge_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts_at(level: TuneLevel, threads: usize) -> LayerOptions {
        LayerOptions::new(threads).with_tune(level)
    }

    #[test]
    fn candidates_are_legal_and_include_the_heuristic() {
        for shape in [
            ConvShape::new(2, 64, 64, 56, 56, 3, 3, 1, 1),
            ConvShape::new(2, 256, 64, 56, 56, 1, 1, 1, 0),
            ConvShape::new(1, 512, 512, 7, 7, 3, 3, 1, 1),
            ConvShape::new(1, 64, 64, 100, 100, 3, 3, 1, 1),
            ConvShape::new(1, 32, 32, 3, 3, 3, 3, 1, 1),
        ] {
            let cands = candidates(&shape);
            assert!(!cands.is_empty(), "{shape}");
            let max_chains = cands.iter().map(|b| b.rbp * b.rbq).max().unwrap();
            for b in &cands {
                assert!(b.rbp * b.rbq <= MAX_ACC, "{shape}: {b:?}");
                assert!(b.rbp >= 1 && b.rbp <= shape.p(), "{shape}: {b:?}");
                assert!(b.rbq >= 1 && b.rbq <= shape.q(), "{shape}: {b:?}");
                assert!(b.rbp * b.rbq >= MIN_CHAINS.min(max_chains), "{shape}: {b:?}");
                assert!(shape.cb().is_multiple_of(b.cb_inner), "{shape}: {b:?}");
                assert_eq!(b.upd_bq, shape.q(), "{shape}: {b:?}");
            }
            let h = blocking::choose(&shape);
            assert!(cands.contains(&h), "{shape}: heuristic {h:?} not enumerated");
        }
    }

    #[test]
    fn model_ranking_never_predicts_below_the_heuristic() {
        let m = MachineModel::skx();
        for shape in [
            ConvShape::new(2, 64, 64, 56, 56, 3, 3, 1, 1),
            ConvShape::new(2, 256, 64, 56, 56, 1, 1, 1, 0),
            ConvShape::new(1, 1024, 2048, 14, 14, 1, 1, 2, 0),
        ] {
            let ranked = rank(&m, &shape);
            let h = blocking::choose(&shape);
            let h_pred = predicted_gflops_core(&m, &shape, &h);
            assert!(
                ranked[0].1 >= h_pred - 1e-9,
                "{shape}: model winner {} below heuristic {}",
                ranked[0].1,
                h_pred
            );
            // ranking is sorted
            for w in ranked.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn ranking_is_deterministic() {
        let m = MachineModel::skx();
        let shape = ConvShape::new(2, 64, 64, 28, 28, 3, 3, 1, 1);
        assert_eq!(
            rank(&m, &shape).iter().map(|(b, _)| *b).collect::<Vec<_>>(),
            rank(&m, &shape).iter().map(|(b, _)| *b).collect::<Vec<_>>()
        );
    }

    #[test]
    fn measured_without_a_pool_degrades_to_model() {
        let shape = ConvShape::new(1, 16, 16, 6, 6, 3, 3, 1, 1);
        let opts = opts_at(TuneLevel::Measured, 2);
        let (outcome, micro) = tune_once(&shape, &opts);
        assert_eq!(outcome.level, TuneLevel::Model);
        assert_eq!(micro, 0);
        assert!(outcome.measured_gflops.is_none());
        assert!(outcome.predicted_gflops > 0.0);
    }

    #[test]
    fn measured_with_a_mismatched_pool_degrades_to_model() {
        let shape = ConvShape::new(1, 16, 16, 6, 6, 3, 3, 1, 1);
        let pool = Arc::new(ThreadPool::new(1));
        let opts = opts_at(TuneLevel::Measured, 2).with_pool(pool);
        let (outcome, _) = tune_once(&shape, &opts);
        assert_eq!(outcome.level, TuneLevel::Model);
    }

    #[test]
    fn store_tunes_each_key_once() {
        let store = TuneStore::new();
        let shape = ConvShape::new(1, 16, 16, 6, 6, 3, 3, 1, 1);
        let opts = opts_at(TuneLevel::Model, 2).with_tune_store(store.clone());
        let a = resolve(&shape, &opts);
        let b = resolve(&shape, &opts);
        assert_eq!(store.tune_runs(), 1, "second resolve must hit the memo");
        assert_eq!(a.blocking, b.blocking);
        assert_eq!(b.tune_ms, 0.0, "store hits report zero tune time");
        // a different level is a different key
        let opts_m = opts_at(TuneLevel::Measured, 2).with_tune_store(store.clone());
        let _ = resolve(&shape, &opts_m);
        assert_eq!(store.tune_runs(), 2);
        // a different machine fingerprint is a different key
        let mut opts_knm = opts_at(TuneLevel::Model, 2).with_tune_store(store.clone());
        opts_knm.machine = MachineModel::knm();
        let _ = resolve(&shape, &opts_knm);
        assert_eq!(store.tune_runs(), 3);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn store_round_trips_through_bytes() {
        let store = TuneStore::new();
        let shapes = [
            ConvShape::new(1, 16, 16, 6, 6, 3, 3, 1, 1),
            ConvShape::new(1, 32, 16, 8, 8, 1, 1, 1, 0),
        ];
        for s in &shapes {
            let opts = opts_at(TuneLevel::Model, 2).with_tune_store(store.clone());
            let _ = resolve(s, &opts);
        }
        let bytes = store.to_bytes();
        let restored = TuneStore::new();
        assert_eq!(restored.merge_bytes(&bytes).unwrap(), 2);
        assert_eq!(restored.len(), 2);
        // restored winners replay without any tuning run
        for s in &shapes {
            let opts = opts_at(TuneLevel::Model, 2).with_tune_store(restored.clone());
            let out = resolve(s, &opts);
            let fp = opts.machine.fingerprint();
            assert_eq!(out.blocking, store.get(s, fp, TuneLevel::Model).unwrap().blocking);
        }
        assert_eq!(restored.tune_runs(), 0);
        assert_eq!(restored.micro_bench_runs(), 0);
        // byte-stable output
        assert_eq!(bytes, store.to_bytes());
    }

    #[test]
    fn hostile_tuning_files_are_errors_not_panics() {
        let store = TuneStore::new();
        let opts = opts_at(TuneLevel::Model, 2).with_tune_store(store.clone());
        let _ = resolve(&ConvShape::new(1, 16, 16, 6, 6, 3, 3, 1, 1), &opts);
        let good = store.to_bytes();

        let fresh = || TuneStore::new();
        // truncated header / payload
        assert!(fresh().merge_bytes(&good[..4]).is_err());
        assert!(fresh().merge_bytes(&good[..good.len() - 1]).is_err());
        // bad magic
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(fresh().merge_bytes(&bad).is_err());
        // count larger than the payload
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(fresh().merge_bytes(&bad).is_err());
        // illegal blocking (rbp*rbq blown past the register budget)
        let mut bad = good.clone();
        let rbp_off = 12 + 9 * 4 + 8 + 1;
        bad[rbp_off..rbp_off + 4].copy_from_slice(&1000u32.to_le_bytes());
        assert!(fresh().merge_bytes(&bad).is_err());
        // trailing garbage
        let mut bad = good.clone();
        bad.push(0);
        assert!(fresh().merge_bytes(&bad).is_err());
    }

    #[test]
    fn tune_level_parsing() {
        assert_eq!(TuneLevel::parse("off").unwrap(), TuneLevel::Heuristic);
        assert_eq!(TuneLevel::parse("Model").unwrap(), TuneLevel::Model);
        assert_eq!(TuneLevel::parse("MEASURED").unwrap(), TuneLevel::Measured);
        assert!(TuneLevel::parse("fastest").is_err());
        for level in [TuneLevel::Heuristic, TuneLevel::Model, TuneLevel::Measured] {
            assert_eq!(TuneLevel::parse(level.name()).unwrap(), level);
            assert_eq!(TuneLevel::from_u8(level.as_u8()), Some(level));
        }
    }
}
