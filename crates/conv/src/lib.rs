//! Direct convolution engine — the paper's primary contribution.
//!
//! A [`ConvLayer`] is set up once per layer (the "JIT + dryrun" phase)
//! and then executed many times (the "replay" phase):
//!
//! * **setup** picks register/cache blocking ([`blocking`]), generates
//!   the microkernel variants (JIT machine code when available,
//!   monomorphized intrinsics otherwise — [`backend`]), runs the
//!   *dryrun* that records each thread's exact sequence of kernel
//!   invocations as offset streams with RLE-encoded segments
//!   ([`streams`], Section II-H), and chooses the weight-update
//!   parallelization strategy with the Section II-J bandwidth model
//!   ([`upd`]);
//! * **execution** replays the per-thread streams (Algorithm 5): no
//!   branchy index math, prefetch arguments taken from the next stream
//!   entry, fused operators ([`fuse`]) applied while output sub-tensors
//!   are cache-hot.
//!
//! The backward pass reuses the forward machinery through the duality
//! transforms of Section II-I ([`bwd`]); int16 kernels implement the
//! reduced-precision path of Section II-K ([`quant`]); [`mod@reference`]
//! holds the naive Algorithm 1/6/8 loop nests every engine is tested
//! against. The blocking choice itself can escalate from the Section
//! II-B heuristic to a model-ranked or measured search ([`tune`]).

pub mod backend;
pub mod blocking;
pub mod bwd;
pub mod cache;
pub mod fuse;
pub mod fwd;
pub mod layer;
pub mod quant;
pub mod reference;
pub mod streams;
pub mod tune;
pub mod upd;

pub use backend::{
    kernel_cache_stats, kernel_verify_stats, Backend, FwdKernel, KernelCacheStats, UpdKernel,
};
pub use blocking::Blocking;
pub use cache::{CombinedCacheStats, FusedOpCacheStats, PlanCache, PlanCacheStats};
pub use fuse::FusedOp;
pub use layer::{ConvLayer, LayerOptions, Precision};
pub use quant::{QuantBwdPlan, QuantFwdPlan, QuantOptions, QuantUpdPlan, DEFAULT_CHAIN_LIMIT};
pub use tensor::ConvShape;
pub use tune::{TuneLevel, TuneOutcome, TuneStore};
