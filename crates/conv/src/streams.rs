//! Kernel streams: the dryrun/replay execution framework (Section II-H).
//!
//! During the *dryrun* (layer setup) each thread walks its share of the
//! convolution loop nest and, instead of calling kernels, records
//!
//! * a kernel-variant stream `var[]`,
//! * three offset streams `inp[]`, `wt[]`, `out[]`,
//! * APPLY records for fused operators,
//!
//! run-length encoded into segments (`CONV-STREAK(n)` / `APPLY`) — the
//! compact representation of Figure 2. The *replay* (every execution)
//! is Algorithm 5 verbatim: a flat loop over segments with zero index
//! arithmetic and no conditionals in the hot path, where the prefetch
//! arguments of invocation `i` are the compute offsets of invocation
//! `i + 1`.

use crate::backend::FwdKernel;
use crate::fuse::{apply_tile, apply_tile_requant, ApplyRec, FuseCtx, FusedOp};

/// One RLE segment of a thread's execution (Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Segment {
    /// `n` consecutive convolution microkernel calls.
    ConvStreak(u32),
    /// One fused-operator application (index into the apply stream).
    Apply(u32),
}

/// A single thread's recorded execution.
#[derive(Clone, Debug, Default)]
pub struct Stream {
    /// RLE segments.
    pub segments: Vec<Segment>,
    /// Kernel-variant stream (indexes the plan's kernel table).
    pub var: Vec<u8>,
    /// Input sub-tensor offsets (elements).
    pub inp: Vec<u32>,
    /// Weight sub-tensor offsets (elements).
    pub wt: Vec<u32>,
    /// Output sub-tensor offsets (elements).
    pub out: Vec<u32>,
    /// APPLY records.
    pub applies: Vec<ApplyRec>,
}

impl Stream {
    /// Record one convolution call (RLE: extends the current streak).
    pub fn push_conv(&mut self, var: u8, inp: usize, wt: usize, out: usize) {
        self.var.push(var);
        self.inp.push(u32::try_from(inp).expect("input offset exceeds u32"));
        self.wt.push(u32::try_from(wt).expect("weight offset exceeds u32"));
        self.out.push(u32::try_from(out).expect("output offset exceeds u32"));
        match self.segments.last_mut() {
            Some(Segment::ConvStreak(n)) => *n += 1,
            _ => self.segments.push(Segment::ConvStreak(1)),
        }
    }

    /// Record one fused-operator application.
    pub fn push_apply(&mut self, rec: ApplyRec) {
        let idx = self.applies.len() as u32;
        self.applies.push(rec);
        self.segments.push(Segment::Apply(idx));
    }

    /// Total convolution calls recorded.
    pub fn conv_count(&self) -> usize {
        self.var.len()
    }

    /// Approximate memory footprint of the stream metadata in bytes —
    /// the paper's "compact representation" claim is testable.
    pub fn metadata_bytes(&self) -> usize {
        self.segments.len() * std::mem::size_of::<Segment>()
            + self.var.len()
            + (self.inp.len() + self.wt.len() + self.out.len()) * 4
            + self.applies.len() * std::mem::size_of::<ApplyRec>()
    }

    /// Replay this stream (Algorithm 5).
    ///
    /// # Safety
    /// The base pointers must describe tensors laid out exactly as the
    /// dryrun assumed (same shapes, same padding).
    pub unsafe fn replay(
        &self,
        kernels: &[FwdKernel],
        fused: FusedOp,
        inp: *const f32,
        wt: *const f32,
        out: *mut f32,
        ctx: &FuseCtx<'_>,
    ) {
        let mut i = 0usize;
        let last = self.var.len().saturating_sub(1);
        for seg in &self.segments {
            match *seg {
                Segment::ConvStreak(n) => {
                    for _ in 0..n {
                        // prefetch args = next invocation's sub-tensors
                        let j = if i == last { i } else { i + 1 };
                        let k = &kernels[self.var[i] as usize];
                        k.call(
                            inp.add(self.inp[i] as usize),
                            wt.add(self.wt[i] as usize),
                            out.add(self.out[i] as usize),
                            inp.add(self.inp[j] as usize),
                            wt.add(self.wt[j] as usize),
                            out.add(self.out[j] as usize),
                        );
                        i += 1;
                    }
                }
                Segment::Apply(a) => {
                    apply_tile(fused, &self.applies[a as usize], out, ctx);
                }
            }
        }
        debug_assert_eq!(i, self.var.len(), "segment RLE must cover every call");
    }
}

impl Stream {
    /// Replay with int16 kernels (Section II-K). The int16 path does
    /// not fuse operators, so APPLY segments are rejected.
    ///
    /// # Safety
    /// Same contract as [`Stream::replay`] for the int16/int32 tensors.
    pub unsafe fn replay_quant(
        &self,
        kernels: &[crate::backend::QuantKernel],
        inp: *const i16,
        wt: *const i16,
        out: *mut i32,
    ) {
        let mut i = 0usize;
        let last = self.var.len().saturating_sub(1);
        for seg in &self.segments {
            match *seg {
                Segment::ConvStreak(n) => {
                    for _ in 0..n {
                        let j = if i == last { i } else { i + 1 };
                        let k = &kernels[self.var[i] as usize];
                        k.call(
                            inp.add(self.inp[i] as usize),
                            wt.add(self.wt[i] as usize),
                            out.add(self.out[i] as usize),
                            inp.add(self.inp[j] as usize),
                            wt.add(self.wt[j] as usize),
                            out.add(self.out[j] as usize),
                        );
                        i += 1;
                    }
                }
                Segment::Apply(_) => unreachable!("raw int16 plans are built without fusion"),
            }
        }
    }

    /// Replay with int16 kernels *and* a fused requantizing APPLY: the
    /// kernels write raw int32 accumulators bit-wise into the f32
    /// output tensor's storage (same element size, same strides), and
    /// each APPLY converts its freshly finished tile in place with
    /// [`apply_tile_requant`] — quantized conv, requantization and the
    /// folded post-ops in one cache-hot pass.
    ///
    /// # Safety
    /// Same contract as [`Stream::replay`]; the stream must have been
    /// dryrun with a non-`None` fused op so every output tile carries an
    /// APPLY record (otherwise accumulators would be left unconverted).
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn replay_quant_fused(
        &self,
        kernels: &[crate::backend::QuantKernel],
        fused: FusedOp,
        inp: *const i16,
        wt: *const i16,
        out: *mut f32,
        mult: &[f32],
        ctx: &FuseCtx<'_>,
    ) {
        let acc = out as *mut i32;
        let mut i = 0usize;
        let last = self.var.len().saturating_sub(1);
        for seg in &self.segments {
            match *seg {
                Segment::ConvStreak(n) => {
                    for _ in 0..n {
                        let j = if i == last { i } else { i + 1 };
                        let k = &kernels[self.var[i] as usize];
                        k.call(
                            inp.add(self.inp[i] as usize),
                            wt.add(self.wt[i] as usize),
                            acc.add(self.out[i] as usize),
                            inp.add(self.inp[j] as usize),
                            wt.add(self.wt[j] as usize),
                            acc.add(self.out[j] as usize),
                        );
                        i += 1;
                    }
                }
                Segment::Apply(a) => {
                    apply_tile_requant(fused, &self.applies[a as usize], out, mult, ctx);
                }
            }
        }
        debug_assert_eq!(i, self.var.len(), "segment RLE must cover every call");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_merges_consecutive_convs() {
        let mut s = Stream::default();
        for i in 0..5 {
            s.push_conv(0, i, 0, i);
        }
        s.push_apply(ApplyRec { out_off: 0, kb: 0, rows: 1, cols: 1, row_stride: 16 });
        for i in 5..8 {
            s.push_conv(1, i, 0, i);
        }
        assert_eq!(
            s.segments,
            vec![Segment::ConvStreak(5), Segment::Apply(0), Segment::ConvStreak(3)]
        );
        assert_eq!(s.conv_count(), 8);
    }

    #[test]
    fn metadata_is_compact() {
        // one entry ≈ 13 bytes + segment amortization
        let mut s = Stream::default();
        for i in 0..1000 {
            s.push_conv(0, i, i, i);
        }
        assert!(s.metadata_bytes() < 1000 * 16 + 64, "{}", s.metadata_bytes());
        assert_eq!(s.segments.len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn offset_overflow_is_caught() {
        let mut s = Stream::default();
        s.push_conv(0, u32::MAX as usize + 1, 0, 0);
    }
}
