//! Reduced-precision int16 engine (Section II-K).
//!
//! Mirrors the f32 engines with the datatype changes of the paper's
//! quantized path:
//!
//! * **forward** — the shared dryrun records the identical offset
//!   streams (the int16 layouts are element-parallel to the f32 ones);
//!   kernels are `vpdpwssd`-based; the accumulation chain inside one
//!   kernel invocation is bounded by `chain_limit` channel blocks (the
//!   paper's overflow guard: *"we have to restrict the length of the
//!   FMA accumulation chain"*), which costs extra int32 output traffic
//!   — one of the three reasons int16 stays below 2×;
//! * **backward** — duality exactly as in f32: transposed/flipped
//!   weights re-quantized into the VNNI layout, dO (padded) as input;
//! * **update** — the 4VNNIW-style pixel-pair reduction: dO rows are
//!   transposed into pair-interleaved `[q/2][k][2]` panels and input
//!   rows into channel-major `[c][q]` rows (the paper's *"memory bound
//!   operation \[that\] further degrades the performance"*), then a
//!   16-accumulator `vpdpwssd` kernel sweeps pixel pairs.

use crate::backend::{Backend, QuantKernel};
use crate::blocking::{self, Blocking};
use crate::fuse::{FuseCtx, FusedOp};
use crate::fwd::{dryrun_streams, OutGeom, SendMutPtr};
use crate::streams::Stream;
use microkernel::KernelShape;
use parallel::{split_even, ThreadPool};
use std::collections::HashMap;
use tensor::vnni::BlockedI32;
use tensor::{BlockedActs, BlockedFilter, ConvShape, VnniActs, VnniFilter, VLEN};

/// Default accumulation-chain bound in channel blocks (64 channels).
pub const DEFAULT_CHAIN_LIMIT: usize = 4;

/// Configuration of a quantized plan — the int16 counterpart of
/// [`crate::LayerOptions`], replacing the former positional
/// `bool`/`usize` argument list. Every field participates in the
/// plan-cache key (via `LayerOptions`), so chain-length or padding
/// variants of the same shape never collide.
#[derive(Clone, Debug)]
pub struct QuantOptions {
    /// Thread-team size the plan is dryrun for.
    pub threads: usize,
    /// Kernel backend.
    pub backend: Backend,
    /// Emit software prefetches.
    pub prefetch: bool,
    /// Accumulation-chain bound in channel blocks (the paper's int16
    /// overflow guard); clamped to a divisor of the shape's `Cb`.
    pub chain_limit: usize,
    /// Blocking override (e.g. the autotuner's winner for the f32 plan
    /// of the same shape); `None` chooses the Section II-B heuristic.
    /// `cb_inner` is clamped to `chain_limit` either way.
    pub blocking: Option<Blocking>,
    /// Physical padding of the input tensor (defaults to the conv's
    /// own pad).
    pub input_pad: Option<usize>,
    /// Fused requantizing APPLY. `FusedOp::None` builds a *raw* plan
    /// that leaves int32 accumulators (kernel tests, duality); any
    /// other op builds a fused plan executed through
    /// [`QuantFwdPlan::run_fused`], which dequantizes in the APPLY.
    pub fuse: FusedOp,
    /// Physical padding of the output tensor (fused plans only).
    pub out_pad: usize,
    /// Explicit output geometry (duality callers); overrides `out_pad`.
    pub out_geom: Option<OutGeom>,
}

impl QuantOptions {
    /// Defaults for a given team size.
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            backend: Backend::Auto,
            prefetch: true,
            chain_limit: DEFAULT_CHAIN_LIMIT,
            blocking: None,
            input_pad: None,
            fuse: FusedOp::None,
            out_pad: 0,
            out_geom: None,
        }
    }

    /// Set the kernel backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Enable/disable prefetching.
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Set the accumulation-chain bound.
    pub fn with_chain_limit(mut self, chain_limit: usize) -> Self {
        assert!(chain_limit >= 1, "chain limit must be at least one channel block");
        self.chain_limit = chain_limit;
        self
    }

    /// Reuse a blocking decision (typically the f32 plan's).
    pub fn with_blocking(mut self, blocking: Blocking) -> Self {
        self.blocking = Some(blocking);
        self
    }

    /// Set the physical input padding (shared activation buffers).
    pub fn with_input_pad(mut self, pad: usize) -> Self {
        self.input_pad = Some(pad);
        self
    }

    /// Set the fused requantizing APPLY op.
    pub fn with_fuse(mut self, fuse: FusedOp) -> Self {
        self.fuse = fuse;
        self
    }

    /// Set the physical output padding.
    pub fn with_out_pad(mut self, pad: usize) -> Self {
        self.out_pad = pad;
        self
    }

    /// Set an explicit output geometry (backward-duality wrappers).
    pub fn with_out_geom(mut self, geom: OutGeom) -> Self {
        self.out_geom = Some(geom);
        self
    }
}

/// Planned int16 forward pass.
pub struct QuantFwdPlan {
    shape: ConvShape,
    blocking: Blocking,
    kernels: Vec<QuantKernel>,
    streams: Vec<Stream>,
    nthreads: usize,
    out_geom: OutGeom,
    fused: FusedOp,
    input_pad: usize,
    out_pad: usize,
}

impl QuantFwdPlan {
    /// Dryrun with a bounded accumulation chain.
    pub fn new(shape: ConvShape, opts: &QuantOptions) -> Self {
        let input_pad = opts.input_pad.unwrap_or(shape.pad);
        assert!(input_pad >= shape.pad, "input padding below the conv's pad");
        let out_geom = opts.out_geom.unwrap_or_else(|| OutGeom::padded(&shape, opts.out_pad));
        let mut b = opts.blocking.unwrap_or_else(|| blocking::choose(&shape));
        // the overflow guard: bound the in-register reduction length
        if b.cb_inner > opts.chain_limit {
            // keep it a divisor of Cb so cb_steps stays integral
            let mut ci = opts.chain_limit;
            while !shape.cb().is_multiple_of(ci) {
                ci -= 1;
            }
            b.cb_inner = ci;
        }
        let blocking = b;
        let in_row = (shape.w + 2 * input_pad) * VLEN;
        let in_cb = (shape.h + 2 * input_pad) * in_row;
        let mut kernels: Vec<QuantKernel> = Vec::new();
        let mut variant: HashMap<(usize, usize, bool), u8> = HashMap::new();
        let mut variant_for = |rows: usize, cols: usize, init: bool| -> u8 {
            *variant.entry((rows, cols, init)).or_insert_with(|| {
                let sh = KernelShape {
                    rbp: rows,
                    rbq: cols,
                    r: shape.r,
                    s: shape.s,
                    stride: shape.stride,
                    cb_inner: blocking.cb_inner,
                    in_row_stride: in_row,
                    in_cb_stride: in_cb,
                    out_row_stride: out_geom.row_stride,
                    out_col_stride: out_geom.col_stride,
                    init_zero: init,
                    prefetch: opts.prefetch,
                };
                kernels.push(QuantKernel::cached(sh, opts.backend));
                u8::try_from(kernels.len() - 1).expect("too many kernel variants")
            })
        };
        let streams = dryrun_streams(
            &shape,
            &blocking,
            opts.threads,
            &out_geom,
            opts.fuse,
            input_pad,
            &mut variant_for,
        );
        Self {
            shape,
            blocking,
            kernels,
            streams,
            nthreads: opts.threads,
            out_geom,
            fused: opts.fuse,
            input_pad,
            out_pad: opts.out_pad,
        }
    }

    /// The blocking in effect (chain-clamped) — the legality invariants
    /// of the f32 planner hold here too, and are property-tested.
    pub fn blocking(&self) -> &Blocking {
        &self.blocking
    }

    /// The fused requantizing op (`FusedOp::None` for raw plans).
    pub fn fused(&self) -> FusedOp {
        self.fused
    }

    /// Physical input padding the plan's offsets assume.
    pub fn input_pad(&self) -> usize {
        self.input_pad
    }

    /// Execute `out = conv(input, weights)` in int16→int32 (raw plans
    /// only — fused plans requantize through [`QuantFwdPlan::run_fused`]).
    pub fn run(
        &self,
        pool: &ThreadPool,
        input: &VnniActs,
        weights: &VnniFilter,
        out: &mut BlockedI32,
    ) {
        assert_eq!(pool.nthreads(), self.nthreads);
        assert_eq!(self.fused, FusedOp::None, "fused plans must run through run_fused");
        let sh = &self.shape;
        assert_eq!(
            (input.n, input.c, input.h, input.w, input.pad),
            (sh.n, sh.c, sh.h, sh.w, self.input_pad),
            "input mismatch"
        );
        assert_eq!((weights.k, weights.c), (sh.k, sh.c), "filter mismatch");
        assert_eq!((out.n, out.k, out.h, out.w), (sh.n, sh.k, sh.p(), sh.q()), "output mismatch");
        // SAFETY: geometry validated; disjoint tiles per thread.
        unsafe { self.run_raw(pool, input.as_ptr(), weights.as_ptr(), out.as_mut_ptr()) }
    }

    /// Execute the full quantized chain into an f32 tensor:
    /// int16 conv → int32 accumulators (written bit-wise into the f32
    /// storage) → per-tile requantize `acc · mult[k]` + fused post-ops
    /// (folded-BN bias, residual add, ReLU) in the APPLY step.
    ///
    /// `mult` is the per-output-channel requantization multiplier (the
    /// per-k weight scale with the activation scales folded in, see
    /// `VnniFilter::quantize_per_k`), length ≥ the padded channel
    /// count. The bias in `ctx` stays f32. The output's physical
    /// border (when `out_pad > 0`) is never touched and must already
    /// be zero, exactly like the f32 fused path.
    pub fn run_fused(
        &self,
        pool: &ThreadPool,
        input: &VnniActs,
        weights: &VnniFilter,
        output: &mut BlockedActs,
        mult: &[f32],
        ctx: &FuseCtx<'_>,
    ) {
        assert_eq!(pool.nthreads(), self.nthreads);
        assert_ne!(self.fused, FusedOp::None, "raw plans must run through run");
        let sh = &self.shape;
        assert_eq!(
            (input.n, input.c, input.h, input.w, input.pad),
            (sh.n, sh.c, sh.h, sh.w, self.input_pad),
            "input mismatch"
        );
        assert_eq!((weights.k, weights.c), (sh.k, sh.c), "filter mismatch");
        assert_eq!(
            (output.n, output.c, output.h, output.w, output.pad),
            (sh.n, sh.k, sh.p(), sh.q(), self.out_pad),
            "output mismatch"
        );
        let kpad = sh.k.next_multiple_of(VLEN);
        assert!(mult.len() >= kpad, "mult shorter than the padded channel count");
        if self.fused.needs_bias() {
            assert!(
                ctx.bias.is_some_and(|b| b.len() >= kpad),
                "bias missing or shorter than the padded channel count"
            );
        }
        if self.fused.needs_eltwise() {
            let e = ctx.eltwise.expect("eltwise tensor missing");
            assert_eq!(
                (e.n, e.cb, e.h, e.w, e.pad),
                (output.n, output.cb, output.h, output.w, self.out_pad),
                "eltwise tensor mismatch"
            );
        }
        let streams = &self.streams;
        let kernels = &self.kernels;
        let fused = self.fused;
        let inp = SendPtrI16(input.as_ptr());
        let wt = SendPtrI16(weights.as_ptr());
        let out = SendMutPtr(output.as_mut_ptr());
        pool.run(move |pctx| {
            let s = &streams[pctx.tid];
            // SAFETY: geometry validated above; threads own disjoint
            // tiles, and every tile's APPLY follows its last reduction.
            unsafe {
                s.replay_quant_fused(kernels, fused, inp.get(), wt.get(), out.get(), mult, ctx)
            };
        });
    }

    /// Raw-pointer execution (duality paths).
    ///
    /// # Safety
    /// Tensors must match the dryrun geometry exactly.
    pub unsafe fn run_raw(
        &self,
        pool: &ThreadPool,
        input: *const i16,
        weights: *const i16,
        out: *mut i32,
    ) {
        let streams = &self.streams;
        let kernels = &self.kernels;
        let inp = SendPtrI16(input);
        let wt = SendPtrI16(weights);
        let o = SendPtrI32(out);
        pool.run(move |ctx| {
            // SAFETY: per run_raw's contract.
            unsafe { streams[ctx.tid].replay_quant(kernels, inp.get(), wt.get(), o.get()) };
        });
    }

    /// Output geometry (for the duality wrapper).
    pub fn out_geom(&self) -> &OutGeom {
        &self.out_geom
    }
}

/// Planned int16 backward pass (duality only — the strided-spatial
/// fallback has no int16 counterpart in the paper either).
pub struct QuantBwdPlan {
    shape: ConvShape,
    dual: QuantFwdPlan,
    dual_pad: usize,
}

impl QuantBwdPlan {
    /// Build the dual plan. Panics for strided spatial filters.
    /// The `fuse`/`out_pad` fields of `opts` are ignored (duality plans
    /// are raw int32 producers with their own output geometry).
    pub fn new(shape: ConvShape, opts: &QuantOptions) -> Self {
        let raw = QuantOptions {
            fuse: FusedOp::None,
            out_pad: 0,
            input_pad: None,
            blocking: None,
            ..opts.clone()
        };
        if shape.stride == 1 {
            let dual_pad = shape.r - 1 - shape.pad;
            let dual = ConvShape::new(
                shape.n,
                shape.k,
                shape.c,
                shape.p(),
                shape.q(),
                shape.r,
                shape.s,
                1,
                dual_pad,
            );
            let geom = OutGeom::dense(&dual);
            let plan = QuantFwdPlan::new(dual, &raw.with_out_geom(geom));
            Self { shape, dual: plan, dual_pad }
        } else if shape.r == 1 && shape.s == 1 {
            let dual = ConvShape::new(shape.n, shape.k, shape.c, shape.p(), shape.q(), 1, 1, 1, 0);
            let di_row = shape.w * VLEN;
            let geom = OutGeom {
                row_stride: shape.stride * di_row,
                col_stride: shape.stride * VLEN,
                kb_stride: shape.h * di_row,
                n_stride: shape.cb() * shape.h * di_row,
                base: 0,
            };
            let plan = QuantFwdPlan::new(dual, &raw.with_out_geom(geom));
            Self { shape, dual: plan, dual_pad: 0 }
        } else {
            panic!("int16 backward supports stride-1 or 1x1 layers (as does the paper)")
        }
    }

    /// Physical padding required on the int16 dO tensor.
    pub fn dout_pad(&self) -> usize {
        self.dual_pad
    }

    /// Execute `dinput = conv_bwd(dout, weights)`.
    ///
    /// `weights` is the f32 master (kept in f32 as in mixed-precision
    /// training); it is transposed/flipped and re-quantized here.
    pub fn run(
        &self,
        pool: &ThreadPool,
        dout: &VnniActs,
        weights: &BlockedFilter,
        w_scale: f32,
        dinput: &mut BlockedI32,
    ) {
        let sh = &self.shape;
        assert_eq!((dout.n, dout.c, dout.h, dout.w), (sh.n, sh.k, sh.p(), sh.q()));
        assert_eq!(dout.pad, self.dual_pad, "dout must carry the dual padding");
        assert_eq!((dinput.n, dinput.k, dinput.h, dinput.w), (sh.n, sh.c, sh.h, sh.w));
        let wt = VnniFilter::quantize(&weights.transpose_flip(), w_scale);
        if sh.stride > 1 {
            dinput.zero();
        }
        // SAFETY: dual plan geometry matches.
        unsafe { self.dual.run_raw(pool, dout.as_ptr(), wt.as_ptr(), dinput.as_mut_ptr()) };
    }
}

/// Planned int16 weight-gradient pass (pixel-pair reduction).
pub struct QuantUpdPlan {
    shape: ConvShape,
    nthreads: usize,
}

impl QuantUpdPlan {
    /// Team size the plan expects.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }
}

impl QuantUpdPlan {
    /// Trivial setup (the kernels are shape-independent here).
    pub fn new(shape: ConvShape, nthreads: usize) -> Self {
        Self { shape, nthreads }
    }

    /// Execute `dweights(i32) = conv_upd(input(i16), dout(i16))`.
    ///
    /// Includes the two upfront transposes the paper charges to this
    /// pass: dO rows → pair-interleaved `[q/2][k][2]`, input rows →
    /// channel-major `[c][q]`.
    pub fn run(&self, pool: &ThreadPool, input: &VnniActs, dout: &VnniActs, dweights: &mut [i32]) {
        assert_eq!(pool.nthreads(), self.nthreads);
        let sh = &self.shape;
        assert_eq!((input.n, input.c, input.h, input.w), (sh.n, sh.c, sh.h, sh.w));
        assert_eq!((dout.n, dout.c, dout.h, dout.w), (sh.n, sh.k, sh.p(), sh.q()));
        assert_eq!(dout.pad, 0);
        let wlen = sh.kb() * sh.cb() * sh.r * sh.s * VLEN * VLEN;
        assert_eq!(dweights.len(), wlen, "dweights length mismatch");
        dweights.fill(0);

        let (p_dim, q_dim) = (sh.p(), sh.q());
        let qp = q_dim.div_ceil(2); // pixel pairs per row (odd Q padded)
        let tasks = sh.kb() * sh.cb() * sh.r * sh.s;
        let dw = SendPtrI32(dweights.as_mut_ptr());
        let shv = *sh;
        let in_t = input;
        let do_t = dout;
        pool.run(move |ctx| {
            // thread-local transpose scratch
            let mut dot = vec![0i16; qp * VLEN * 2]; // [q/2][k][2]
            let mut it = vec![0i16; VLEN * qp * 2]; // [c][q] (padded even)
            let my_tasks = split_even(tasks, ctx.nthreads, ctx.tid);
            for task in my_tasks {
                let s_ = task % shv.s;
                let r_ = (task / shv.s) % shv.r;
                let cb = (task / (shv.s * shv.r)) % shv.cb();
                let kb = task / (shv.s * shv.r * shv.cb());
                let panel = task * VLEN * VLEN; // flat [kb][cb][r][s] order
                let mut acc = [[0i32; VLEN]; VLEN];
                for n in 0..shv.n {
                    for pj in 0..p_dim {
                        // transpose dO row pj into pair-interleave
                        let do_base = do_t.pix_offset_logical(n, kb, pj as isize, 0);
                        let dsl = do_t.as_slice();
                        dot.fill(0);
                        for q in 0..q_dim {
                            for k in 0..VLEN {
                                dot[(q / 2) * VLEN * 2 + k * 2 + (q % 2)] =
                                    dsl[do_base + q * VLEN + k];
                            }
                        }
                        // transpose the strided input pixels feeding
                        // this row at tap (r_, s_) into channel-major
                        let isl = in_t.as_slice();
                        it.fill(0);
                        for q in 0..q_dim {
                            let off = in_t.pix_offset_logical(
                                n,
                                cb,
                                (pj * shv.stride + r_) as isize - shv.pad as isize,
                                (q * shv.stride + s_) as isize - shv.pad as isize,
                            );
                            for c in 0..VLEN {
                                it[c * qp * 2 + q] = isl[off + c];
                            }
                        }
                        // pixel-pair dot-product accumulate
                        quant_upd_rows(&mut acc, &it, &dot, qp);
                    }
                }
                // write the finished panel ([c][k] like the f32 layout)
                for (c, row) in acc.iter().enumerate() {
                    for (k, v) in row.iter().enumerate() {
                        // SAFETY: panels are disjoint per task.
                        unsafe { *dw.get().add(panel + c * VLEN + k) += v };
                    }
                }
            }
        });
    }
}

/// Accumulate `acc[c][k] += Σ_pairs dot(it[c][2q..], dot_panel[q][k][..])`.
fn quant_upd_rows(acc: &mut [[i32; VLEN]; VLEN], it: &[i16], dot: &[i16], qp: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512vnni") {
            // SAFETY: feature detected; slices sized by construction.
            unsafe { quant_upd_rows_vnni(acc, it, dot, qp) };
            return;
        }
    }
    quant_upd_rows_scalar(acc, it, dot, qp);
}

fn quant_upd_rows_scalar(acc: &mut [[i32; VLEN]; VLEN], it: &[i16], dot: &[i16], qp: usize) {
    for (c, row) in acc.iter_mut().enumerate() {
        for q in 0..qp {
            let x0 = it[c * qp * 2 + 2 * q] as i32;
            let x1 = it[c * qp * 2 + 2 * q + 1] as i32;
            for (k, v) in row.iter_mut().enumerate() {
                let w0 = dot[q * VLEN * 2 + k * 2] as i32;
                let w1 = dot[q * VLEN * 2 + k * 2 + 1] as i32;
                *v += x0 * w0 + x1 * w1;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512vnni,avx512bw")]
unsafe fn quant_upd_rows_vnni(acc: &mut [[i32; VLEN]; VLEN], it: &[i16], dot: &[i16], qp: usize) {
    use std::arch::x86_64::*;
    let mut vacc = [_mm512_setzero_si512(); VLEN];
    for (c, va) in vacc.iter_mut().enumerate() {
        *va = _mm512_loadu_si512(acc[c].as_ptr() as *const _);
    }
    for q in 0..qp {
        let w = _mm512_loadu_si512(dot.as_ptr().add(q * VLEN * 2) as *const _);
        for (c, va) in vacc.iter_mut().enumerate() {
            let pair = *(it.as_ptr().add(c * qp * 2 + 2 * q) as *const i32);
            *va = _mm512_dpwssd_epi32(*va, _mm512_set1_epi32(pair), w);
        }
    }
    for (c, va) in vacc.iter().enumerate() {
        _mm512_storeu_si512(acc[c].as_mut_ptr() as *mut _, *va);
    }
}

#[derive(Clone, Copy)]
struct SendPtrI16(*const i16);
unsafe impl Send for SendPtrI16 {}
unsafe impl Sync for SendPtrI16 {}
impl SendPtrI16 {
    #[inline]
    fn get(&self) -> *const i16 {
        self.0
    }
}

#[derive(Clone, Copy)]
struct SendPtrI32(*mut i32);
unsafe impl Send for SendPtrI32 {}
unsafe impl Sync for SendPtrI32 {}
impl SendPtrI32 {
    #[inline]
    fn get(&self) -> *mut i32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive int32 reference conv on the vnni tensors.
    fn fwd_ref(sh: &ConvShape, x: &VnniActs, w: &VnniFilter) -> BlockedI32 {
        let mut out = BlockedI32::zeros(sh.n, sh.k, sh.p(), sh.q());
        for n in 0..sh.n {
            for k in 0..sh.k {
                for oj in 0..sh.p() {
                    for oi in 0..sh.q() {
                        let mut acc = 0i32;
                        for c in 0..sh.c {
                            for r in 0..sh.r {
                                for s in 0..sh.s {
                                    let ij = (sh.stride * oj + r) as isize - sh.pad as isize;
                                    let ii = (sh.stride * oi + s) as isize - sh.pad as isize;
                                    if ij >= 0
                                        && (ij as usize) < sh.h
                                        && ii >= 0
                                        && (ii as usize) < sh.w
                                    {
                                        acc += x.get(n, c, ij as usize, ii as usize) as i32
                                            * w.get(k, c, r, s) as i32;
                                    }
                                }
                            }
                        }
                        out.set(n, k, oj, oi, acc);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn quant_fwd_matches_reference_exactly() {
        for (shape, threads) in [
            (ConvShape::new(2, 32, 32, 8, 8, 3, 3, 1, 1), 4),
            (ConvShape::new(1, 64, 32, 8, 8, 1, 1, 1, 0), 3),
            (ConvShape::new(1, 32, 32, 8, 8, 1, 1, 2, 0), 2),
        ] {
            let pool = ThreadPool::new(threads);
            let plan = QuantFwdPlan::new(
                shape,
                &QuantOptions::new(threads).with_prefetch(false).with_chain_limit(2),
            );
            let x = VnniActs::random(shape.n, shape.c, shape.h, shape.w, shape.pad, 3);
            let w = VnniFilter::random(shape.k, shape.c, shape.r, shape.s, 4);
            let mut out = BlockedI32::zeros(shape.n, shape.k, shape.p(), shape.q());
            plan.run(&pool, &x, &w, &mut out);
            let expect = fwd_ref(&shape, &x, &w);
            assert_eq!(expect.as_slice(), out.as_slice(), "{shape}");
        }
    }

    #[test]
    fn fused_requant_matches_raw_plus_manual_apply() {
        let shape = ConvShape::new(2, 32, 32, 8, 8, 3, 3, 1, 1);
        let threads = 3;
        let pool = ThreadPool::new(threads);
        let x = VnniActs::random(shape.n, shape.c, shape.h, shape.w, shape.pad, 3);
        let w = VnniFilter::random(shape.k, shape.c, shape.r, shape.s, 4);
        let mult: Vec<f32> = (0..32).map(|k| 1e-4 * (k + 1) as f32).collect();
        let bias: Vec<f32> = (0..32).map(|k| 0.05 * k as f32 - 0.8).collect();
        let residual = BlockedActs::random(2, 32, 8, 8, 1, 5);

        let raw = QuantFwdPlan::new(shape, &QuantOptions::new(threads).with_prefetch(false));
        let mut acc = BlockedI32::zeros(2, 32, 8, 8);
        raw.run(&pool, &x, &w, &mut acc);

        for fuse in [FusedOp::Bias, FusedOp::BiasRelu, FusedOp::BiasEltwiseRelu] {
            // fused plan writes into a pad-1 padded output blob
            let fused = QuantFwdPlan::new(
                shape,
                &QuantOptions::new(threads).with_prefetch(false).with_fuse(fuse).with_out_pad(1),
            );
            assert_eq!(fused.fused(), fuse);
            let mut out = BlockedActs::zeros(2, 32, 8, 8, 1);
            let ctx =
                FuseCtx { bias: Some(&bias), eltwise: fuse.needs_eltwise().then_some(&residual) };
            fused.run_fused(&pool, &x, &w, &mut out, &mult, &ctx);
            for n in 0..2 {
                for k in 0..32 {
                    for h in 0..8 {
                        for wd in 0..8 {
                            let mut want = acc.get(n, k, h, wd) as f32 * mult[k] + bias[k];
                            if fuse.needs_eltwise() {
                                want += residual.get(n, k, h, wd);
                            }
                            if matches!(fuse, FusedOp::BiasRelu | FusedOp::BiasEltwiseRelu) {
                                want = want.max(0.0);
                            }
                            assert_eq!(out.get(n, k, h, wd), want, "{fuse:?} n={n} k={k}");
                        }
                    }
                }
                // the physical border must still be all zeros
                for kb in 0..out.cb {
                    for wp in 0..out.wp() {
                        let off = out.pix_offset_logical(n, kb, -1, wp as isize - 1);
                        for v in 0..VLEN {
                            assert_eq!(out.as_slice()[off + v], 0.0, "{fuse:?} border");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn chain_limit_does_not_change_results() {
        let shape = ConvShape::new(1, 128, 16, 6, 6, 1, 1, 1, 0);
        let x = VnniActs::random(1, 128, 6, 6, 0, 7);
        let w = VnniFilter::random(16, 128, 1, 1, 8);
        let pool = ThreadPool::new(2);
        let mut results = Vec::new();
        for chain in [1usize, 2, 4, 8] {
            let plan = QuantFwdPlan::new(
                shape,
                &QuantOptions::new(2).with_prefetch(false).with_chain_limit(chain),
            );
            let mut out = BlockedI32::zeros(1, 16, 6, 6);
            plan.run(&pool, &x, &w, &mut out);
            results.push(out.as_slice().to_vec());
        }
        for r in &results[1..] {
            assert_eq!(&results[0], r);
        }
    }

    #[test]
    fn quant_bwd_duality_matches_naive() {
        let shape = ConvShape::new(1, 32, 32, 6, 6, 3, 3, 1, 1);
        let threads = 3;
        let pool = ThreadPool::new(threads);
        let plan = QuantBwdPlan::new(shape, &QuantOptions::new(threads).with_prefetch(false));
        // f32 master weights with integer values so quantization at
        // scale 1.0 is exact
        let wq = VnniFilter::random(32, 32, 3, 3, 9);
        let mut wf = BlockedFilter::zeros(32, 32, 3, 3);
        for k in 0..32 {
            for c in 0..32 {
                for r in 0..3 {
                    for s in 0..3 {
                        wf.set(k, c, r, s, wq.get(k, c, r, s) as f32);
                    }
                }
            }
        }
        let gy = VnniActs::random(1, 32, 6, 6, plan.dout_pad(), 10);
        let mut gx = BlockedI32::zeros(1, 32, 6, 6);
        plan.run(&pool, &gy, &wf, 1.0, &mut gx);

        // naive backward in int arithmetic
        let mut expect = BlockedI32::zeros(1, 32, 6, 6);
        for k in 0..32usize {
            for c in 0..32usize {
                for oj in 0..6usize {
                    for oi in 0..6usize {
                        let g = gy.get(0, k, oj, oi) as i32;
                        for r in 0..3usize {
                            for s in 0..3usize {
                                let ij = (oj + r) as isize - 1;
                                let ii = (oi + s) as isize - 1;
                                if (0..6).contains(&ij) && (0..6).contains(&ii) {
                                    let cur = expect.get(0, c, ij as usize, ii as usize);
                                    expect.set(
                                        0,
                                        c,
                                        ij as usize,
                                        ii as usize,
                                        cur + g * wq.get(k, c, r, s) as i32,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(expect.as_slice(), gx.as_slice());
    }

    #[test]
    fn quant_upd_matches_naive() {
        for shape in [
            ConvShape::new(2, 16, 32, 6, 6, 3, 3, 1, 1),
            ConvShape::new(1, 32, 16, 7, 7, 1, 1, 1, 0), // odd Q
            ConvShape::new(1, 16, 16, 8, 8, 1, 1, 2, 0),
        ] {
            let threads = 3;
            let pool = ThreadPool::new(threads);
            let plan = QuantUpdPlan::new(shape, threads);
            let x = VnniActs::random(shape.n, shape.c, shape.h, shape.w, shape.pad, 11);
            let gy = VnniActs::random(shape.n, shape.k, shape.p(), shape.q(), 0, 12);
            let wlen = shape.kb() * shape.cb() * shape.r * shape.s * 256;
            let mut dw = vec![0i32; wlen];
            plan.run(&pool, &x, &gy, &mut dw);

            // naive: dW[k][c][r][s] += x * gy
            let mut expect = vec![0i32; wlen];
            for n in 0..shape.n {
                for k in 0..shape.k {
                    for c in 0..shape.c {
                        for oj in 0..shape.p() {
                            for oi in 0..shape.q() {
                                let g = gy.get(n, k, oj, oi) as i32;
                                for r in 0..shape.r {
                                    for s in 0..shape.s {
                                        let ij =
                                            (shape.stride * oj + r) as isize - shape.pad as isize;
                                        let ii =
                                            (shape.stride * oi + s) as isize - shape.pad as isize;
                                        if ij >= 0
                                            && (ij as usize) < shape.h
                                            && ii >= 0
                                            && (ii as usize) < shape.w
                                        {
                                            let xv = x.get(n, c, ij as usize, ii as usize) as i32;
                                            let panel = (((k / VLEN) * shape.cb() + c / VLEN)
                                                * shape.r
                                                + r)
                                                * shape.s
                                                + s;
                                            expect[panel * 256 + (c % VLEN) * VLEN + k % VLEN] +=
                                                xv * g;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            assert_eq!(expect, dw, "{shape}");
        }
    }
}
