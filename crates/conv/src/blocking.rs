//! Register- and cache-blocking policy (Sections II-B to II-D).
//!
//! The choices here mirror the paper's rules:
//!
//! * `RBQ` divides `Q` when possible (no remainder kernels needed for
//!   the ResNet/Inception geometries, whose widths are 7·2^k);
//!   otherwise the engine generates a second remainder variant
//!   (Section II-H);
//! * `RBP > 1` when `Q` alone cannot cover the FMA latency — "in case
//!   b) we run two small GEMMs in the same JIT'ed kernel which share
//!   the same weight matrix" (Section II-D);
//! * 1×1 layers pull the whole `Cb` reduction inside the kernel to
//!   recover output register reuse (Section II-C);
//! * the weight-update spatial blocking `BP × BQ` bounds the working
//!   set so input/dO rows stay cache-resident between panel visits
//!   (Section II-J).

use tensor::{ConvShape, VLEN};

/// Minimum independent accumulation chains to hide FMA latency
/// (2 ports × 4 cycles on SKX-class cores).
pub const MIN_CHAINS: usize = 8;

/// Register budget for output-tile accumulators (zmm0..27; zmm28..31
/// hold weights).
pub const MAX_ACC: usize = 28;

/// Blocking decision for one layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blocking {
    /// Register-blocking rows of the forward kernel.
    pub rbp: usize,
    /// Register-blocking columns of the forward kernel.
    pub rbq: usize,
    /// Input-channel blocks reduced inside one forward kernel call.
    pub cb_inner: usize,
    /// Weight-update spatial blocking rows.
    pub upd_bp: usize,
    /// Weight-update spatial blocking columns.
    pub upd_bq: usize,
}

/// Choose the blocking for `shape` (forward geometry `P × Q`).
///
/// The register-blocking rule lives in
/// [`machine::register_blocking`] so the traffic model always scores
/// the blocking the kernel actually runs (a cross-crate consistency
/// test pins the two together).
pub fn choose(shape: &ConvShape) -> Blocking {
    let (p, q) = (shape.p(), shape.q());
    let (rbp, rbq) = machine::register_blocking(MIN_CHAINS, p, q);
    let cb_inner = if shape.r == 1 && shape.s == 1 { shape.cb() } else { 1 };

    // weight update: full rows, with BP bounded so the dO block stays
    // within a fraction of L1 (Section II-J: "block the spatial
    // dimensions depending on the layer characteristics")
    let upd_bq = q;
    let upd_bp = choose_upd_bp(p, q);

    Blocking { rbp, rbq, cb_inner, upd_bp, upd_bq }
}

/// Weight-update spatial BP: sweep every candidate and keep the
/// largest whose dO block (`bp` rows of `q` pixel vectors) stays
/// within half of L1 — the Section II-J working-set bound the paper
/// blocks the spatial dimensions for. (BQ stays the full row: the
/// update kernels sweep complete rows by construction.)
pub(crate) fn choose_upd_bp(p: usize, q: usize) -> usize {
    let do_row_bytes = q * VLEN * 4;
    (1..=p).filter(|bp| bp * do_row_bytes <= 16 * 1024).max().unwrap_or(1)
}

/// Largest `RBQ ≤ MAX_ACC` that divides `Q`, preferring at least
/// `MIN_CHAINS`; falls back to `min(Q, 28)` plus a remainder variant.
#[cfg(test)]
fn choose_rbq(q: usize) -> usize {
    machine::register_blocking(MIN_CHAINS, usize::MAX, q).1
}

impl Blocking {
    /// Number of register tiles covering the `P × Q` output plane,
    /// including remainder tiles.
    pub fn tiles(&self, p: usize, q: usize) -> (usize, usize) {
        (p.div_ceil(self.rbp), q.div_ceil(self.rbq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_geometries_divide_exactly() {
        // Q ∈ {112, 56, 28, 14, 7} all yield divisor blockings
        for (q, expect) in [(112, 28), (56, 28), (28, 28), (14, 14), (7, 7)] {
            assert_eq!(choose_rbq(q), expect, "q={q}");
        }
    }

    #[test]
    fn narrow_layers_get_rbp() {
        // 7x7 output: rbq=7 < 8 chains -> rbp=2
        let b = choose(&ConvShape::new(1, 512, 512, 7, 7, 3, 3, 1, 1));
        assert_eq!(b.rbq, 7);
        assert!(b.rbp >= 2);
        assert!(b.rbp * b.rbq >= MIN_CHAINS);
        assert!(b.rbp * b.rbq <= MAX_ACC);
    }

    #[test]
    fn one_by_one_pulls_in_channel_blocks() {
        let s = ConvShape::new(1, 256, 64, 56, 56, 1, 1, 1, 0);
        let b = choose(&s);
        assert_eq!(b.cb_inner, 16); // 256/16
        let s3 = ConvShape::new(1, 256, 64, 56, 56, 3, 3, 1, 1);
        assert_eq!(choose(&s3).cb_inner, 1);
    }

    #[test]
    fn upd_blocking_bounds_working_set() {
        let b = choose(&ConvShape::new(1, 64, 64, 56, 56, 3, 3, 1, 1));
        assert_eq!(b.upd_bq, 56);
        assert!(b.upd_bp * b.upd_bq * VLEN * 4 <= 20 * 1024);
        // small layers take whole planes
        let b = choose(&ConvShape::new(1, 512, 512, 7, 7, 3, 3, 1, 1));
        assert_eq!((b.upd_bp, b.upd_bq), (7, 7));
    }

    #[test]
    fn non_divisible_q_gets_remainder_blocking() {
        let b = choose(&ConvShape::new(1, 64, 64, 100, 100, 3, 3, 1, 1));
        // Q=100: divisors ≤28 are 25,20,...; 25 ≥ MIN_CHAINS
        assert_eq!(b.rbq, 25);
        let (tp, tq) = b.tiles(100, 100);
        assert_eq!((tp, tq), (100, 4));
    }
}
