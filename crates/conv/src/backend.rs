//! Unified kernel handles over the JIT and intrinsics backends.
//!
//! Engines never call a backend directly: they hold [`FwdKernel`] /
//! [`UpdKernel`] / [`QuantKernel`] handles constructed at layer setup.
//! `Backend::Auto` prefers real runtime code generation (the paper's
//! mechanism) and falls back to the monomorphized intrinsics family,
//! then scalar — so the same engine runs anywhere while using the
//! fastest available implementation.
//!
//! Handles are `Arc`-backed: cloning one shares the generated code
//! buffer instead of re-JITting (the cuDNN-style "handle to a compiled
//! primitive" model). A process-wide code cache keyed by the kernel
//! descriptor dedupes generation across plans — ResNet-50 repeats a
//! handful of kernel shapes dozens of times, so most plans only clone.

use jit::CodeBuffer;
use microkernel::{KernelShape, UpdShape};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Kernel backend selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// JIT when available, else intrinsics, else scalar.
    #[default]
    Auto,
    /// Force runtime code generation (panics if unavailable).
    Jit,
    /// Force the monomorphized intrinsics family.
    Intrinsics,
    /// Force the scalar kernels (correctness baseline).
    Scalar,
}

impl Backend {
    fn resolve(self) -> Backend {
        match self {
            Backend::Auto => {
                if jit::jit_available() {
                    Backend::Jit
                } else {
                    Backend::Intrinsics
                }
            }
            other => other,
        }
    }
}

/// Hit/miss counters of the process-wide kernel code cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelCacheStats {
    /// Handles served by cloning an existing entry.
    pub hits: usize,
    /// Handles that required generation (JIT/select).
    pub misses: usize,
}

impl KernelCacheStats {
    /// Fraction of lookups served from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct KernelCache {
    fwd: Mutex<HashMap<(KernelShape, Backend), FwdKernel>>,
    upd: Mutex<HashMap<(UpdShape, Backend), UpdKernel>>,
    quant: Mutex<HashMap<(KernelShape, Backend), QuantKernel>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

fn kernel_cache() -> &'static KernelCache {
    static CACHE: OnceLock<KernelCache> = OnceLock::new();
    CACHE.get_or_init(|| KernelCache {
        fwd: Mutex::new(HashMap::new()),
        upd: Mutex::new(HashMap::new()),
        quant: Mutex::new(HashMap::new()),
        hits: AtomicUsize::new(0),
        misses: AtomicUsize::new(0),
    })
}

/// Counters of the process-wide kernel code cache (all kernel kinds).
pub fn kernel_cache_stats() -> KernelCacheStats {
    let c = kernel_cache();
    KernelCacheStats {
        hits: c.hits.load(Ordering::Relaxed),
        misses: c.misses.load(Ordering::Relaxed),
    }
}

/// Process-wide static-verifier counters: how many JIT kernels passed
/// verification and how many instructions were checked. Stays at zero
/// in release builds without the `jit/verify` feature (the check is
/// compiled out of [`jit::CodeBuffer::from_kernel`]).
pub fn kernel_verify_stats() -> kver::VerifyStats {
    kver::stats()
}

enum FwdImpl {
    Jit {
        #[allow(dead_code)] // owns the mapping the fn pointer points into
        buf: CodeBuffer,
        f: jit::F32Kernel,
    },
    Portable(microkernel::FwdFn),
    Scalar,
}

/// A ready-to-call forward/backward microkernel. Cloning is cheap: the
/// generated code is shared behind an `Arc`.
#[derive(Clone)]
pub struct FwdKernel {
    shape: KernelShape,
    imp: Arc<FwdImpl>,
}

impl FwdKernel {
    /// Generate/select a kernel for `shape` on `backend`.
    pub fn new(shape: KernelShape, backend: Backend) -> Self {
        shape.validate();
        let imp = match backend.resolve() {
            Backend::Jit => {
                let code = jit::assemble_fwd(&shape);
                let buf = CodeBuffer::from_kernel(&code, &kver::KernelSpec::FwdF32(shape))
                    .expect("verified executable JIT kernel");
                // SAFETY: the buffer holds a kernel with the F32Kernel ABI.
                let f = unsafe { buf.as_f32_kernel() };
                FwdImpl::Jit { buf, f }
            }
            Backend::Intrinsics => FwdImpl::Portable(microkernel::select_fwd(&shape)),
            Backend::Scalar => FwdImpl::Scalar,
            Backend::Auto => unreachable!(),
        };
        Self { shape, imp: Arc::new(imp) }
    }

    /// As [`FwdKernel::new`] but consulting the process-wide code
    /// cache: identical `(shape, resolved backend)` requests share one
    /// generated kernel. Plans use this path so repeated layer shapes
    /// JIT once per process.
    pub fn cached(shape: KernelShape, backend: Backend) -> Self {
        let key = (shape, backend.resolve());
        let cache = kernel_cache();
        let mut map = cache.fwd.lock().unwrap();
        if let Some(k) = map.get(&key) {
            cache.hits.fetch_add(1, Ordering::Relaxed);
            return k.clone();
        }
        cache.misses.fetch_add(1, Ordering::Relaxed);
        let k = Self::new(shape, key.1);
        map.insert(key, k.clone());
        k
    }

    /// The descriptor this kernel was generated for.
    #[inline]
    pub fn shape(&self) -> &KernelShape {
        &self.shape
    }

    /// Which backend the handle resolved to.
    pub fn backend_name(&self) -> &'static str {
        match *self.imp {
            FwdImpl::Jit { .. } => "jit",
            FwdImpl::Portable(_) => "intrinsics",
            FwdImpl::Scalar => "scalar",
        }
    }

    /// Invoke the kernel (Section II-E six-pointer ABI).
    ///
    /// # Safety
    /// The pointers must be valid for the extents implied by the
    /// kernel's [`KernelShape`]; `out` must not alias `inp`/`wt`.
    #[inline]
    pub unsafe fn call(
        &self,
        inp: *const f32,
        wt: *const f32,
        out: *mut f32,
        pf_in: *const f32,
        pf_wt: *const f32,
        pf_out: *const f32,
    ) {
        match &*self.imp {
            FwdImpl::Jit { f, .. } => f(inp, wt, out, pf_in, pf_wt, pf_out),
            FwdImpl::Portable(f) => f(&self.shape, inp, wt, out, pf_in, pf_wt, pf_out),
            FwdImpl::Scalar => {
                microkernel::fwd::fwd_scalar(&self.shape, inp, wt, out, pf_in, pf_wt, pf_out)
            }
        }
    }
}

enum UpdImpl {
    Jit {
        #[allow(dead_code)]
        buf: CodeBuffer,
        f: jit::F32Kernel,
    },
    Portable(microkernel::UpdFn),
    Scalar,
}

/// A ready-to-call weight-gradient microkernel. Cloning shares the
/// generated code behind an `Arc`.
#[derive(Clone)]
pub struct UpdKernel {
    shape: UpdShape,
    imp: Arc<UpdImpl>,
}

impl UpdKernel {
    /// Generate/select an update kernel for `shape` on `backend`.
    pub fn new(shape: UpdShape, backend: Backend) -> Self {
        shape.validate();
        let imp = match backend.resolve() {
            Backend::Jit => {
                let code = jit::assemble_upd(&shape);
                let buf = CodeBuffer::from_kernel(&code, &kver::KernelSpec::UpdF32(shape))
                    .expect("verified executable JIT kernel");
                // SAFETY: the buffer holds a kernel with the F32Kernel ABI.
                let f = unsafe { buf.as_f32_kernel() };
                UpdImpl::Jit { buf, f }
            }
            Backend::Intrinsics => UpdImpl::Portable(microkernel::select_upd(&shape)),
            Backend::Scalar => UpdImpl::Scalar,
            Backend::Auto => unreachable!(),
        };
        Self { shape, imp: Arc::new(imp) }
    }

    /// As [`UpdKernel::new`] but through the process-wide code cache.
    pub fn cached(shape: UpdShape, backend: Backend) -> Self {
        let key = (shape, backend.resolve());
        let cache = kernel_cache();
        let mut map = cache.upd.lock().unwrap();
        if let Some(k) = map.get(&key) {
            cache.hits.fetch_add(1, Ordering::Relaxed);
            return k.clone();
        }
        cache.misses.fetch_add(1, Ordering::Relaxed);
        let k = Self::new(shape, key.1);
        map.insert(key, k.clone());
        k
    }

    /// The descriptor this kernel was generated for.
    #[inline]
    pub fn shape(&self) -> &UpdShape {
        &self.shape
    }

    /// Invoke: `(input@tap, dO, dW_panel, prefetch…)`.
    ///
    /// # Safety
    /// Pointer validity per the [`UpdShape`] extents; `dw` must not
    /// alias the inputs.
    #[inline]
    pub unsafe fn call(
        &self,
        inp: *const f32,
        dout: *const f32,
        dw: *mut f32,
        pf_in: *const f32,
        pf_do: *const f32,
        pf_dw: *const f32,
    ) {
        match &*self.imp {
            UpdImpl::Jit { f, .. } => f(inp, dout, dw, pf_in, pf_do, pf_dw),
            UpdImpl::Portable(f) => f(&self.shape, inp, dout, dw, pf_in, pf_do, pf_dw),
            UpdImpl::Scalar => {
                microkernel::upd::upd_scalar(&self.shape, inp, dout, dw, pf_in, pf_do, pf_dw)
            }
        }
    }
}

enum QuantImpl {
    Jit {
        #[allow(dead_code)]
        buf: CodeBuffer,
        f: jit::I16Kernel,
    },
    Portable(microkernel::QuantFn),
    Scalar,
}

/// A ready-to-call int16 microkernel (Section II-K). Cloning shares
/// the generated code behind an `Arc`.
#[derive(Clone)]
pub struct QuantKernel {
    shape: KernelShape,
    imp: Arc<QuantImpl>,
}

impl QuantKernel {
    /// Generate/select an int16 kernel. The JIT path additionally
    /// requires AVX-512 VNNI on the host.
    pub fn new(shape: KernelShape, backend: Backend) -> Self {
        shape.validate();
        let jit_ok = jit::jit_available() && microkernel::has_vnni();
        let imp = match backend {
            Backend::Jit | Backend::Auto if jit_ok => {
                let code = jit::assemble_quant(&shape);
                let buf = CodeBuffer::from_kernel(&code, &kver::KernelSpec::QuantI16(shape))
                    .expect("verified executable JIT kernel");
                // SAFETY: the buffer holds a kernel with the I16Kernel ABI.
                let f = unsafe { buf.as_i16_kernel() };
                QuantImpl::Jit { buf, f }
            }
            Backend::Jit => panic!("JIT int16 backend requires executable memory + AVX-512 VNNI"),
            Backend::Scalar => QuantImpl::Scalar,
            _ => QuantImpl::Portable(microkernel::select_quant(&shape)),
        };
        Self { shape, imp: Arc::new(imp) }
    }

    /// As [`QuantKernel::new`] but through the process-wide code cache.
    /// Keyed on the *unresolved* backend: int16 resolution depends on
    /// host VNNI support, which is constant for the process lifetime.
    pub fn cached(shape: KernelShape, backend: Backend) -> Self {
        let key = (shape, backend);
        let cache = kernel_cache();
        let mut map = cache.quant.lock().unwrap();
        if let Some(k) = map.get(&key) {
            cache.hits.fetch_add(1, Ordering::Relaxed);
            return k.clone();
        }
        cache.misses.fetch_add(1, Ordering::Relaxed);
        let k = Self::new(shape, backend);
        map.insert(key, k.clone());
        k
    }

    /// The descriptor this kernel was generated for.
    #[inline]
    pub fn shape(&self) -> &KernelShape {
        &self.shape
    }

    /// Invoke on int16 inputs / int32 outputs.
    ///
    /// # Safety
    /// Pointer validity per the [`KernelShape`] extents.
    #[inline]
    pub unsafe fn call(
        &self,
        inp: *const i16,
        wt: *const i16,
        out: *mut i32,
        pf_in: *const i16,
        pf_wt: *const i16,
        pf_out: *const i32,
    ) {
        match &*self.imp {
            QuantImpl::Jit { f, .. } => f(inp, wt, out, pf_in, pf_wt, pf_out),
            QuantImpl::Portable(f) => f(&self.shape, inp, wt, out, pf_in, pf_wt, pf_out),
            QuantImpl::Scalar => {
                microkernel::quant::quant_scalar(&self.shape, inp, wt, out, pf_in, pf_wt, pf_out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::VLEN;

    fn shape() -> KernelShape {
        KernelShape {
            rbp: 1,
            rbq: 8,
            r: 1,
            s: 1,
            stride: 1,
            cb_inner: 1,
            in_row_stride: 16 * VLEN,
            in_cb_stride: 16 * 16 * VLEN,
            out_row_stride: 16 * VLEN,
            out_col_stride: VLEN,
            init_zero: true,
            prefetch: false,
        }
    }

    #[test]
    fn cached_handles_share_generated_code() {
        // a shape no other test uses, so the cache key is private to
        // this test; the global counters are only checked with >=
        // because sibling tests mutate them concurrently
        let mut sh = shape();
        sh.rbq = 7;
        let before = kernel_cache_stats();
        let a = FwdKernel::cached(sh, Backend::Intrinsics);
        let b = FwdKernel::cached(sh, Backend::Intrinsics);
        let after = kernel_cache_stats();
        assert!(Arc::ptr_eq(&a.imp, &b.imp), "cache must hand out the same impl");
        assert!(after.hits > before.hits, "second lookup must hit");
        assert!(after.misses > before.misses, "first lookup must miss");
        assert!(after.hit_rate() > 0.0);
    }

    #[test]
    fn clones_are_cheap_and_identical() {
        let k = FwdKernel::new(shape(), Backend::Scalar);
        let c = k.clone();
        assert!(Arc::ptr_eq(&k.imp, &c.imp));
        assert_eq!(k.backend_name(), c.backend_name());
    }

    #[test]
    fn auto_prefers_jit_when_available() {
        let k = FwdKernel::new(shape(), Backend::Auto);
        if jit::jit_available() {
            assert_eq!(k.backend_name(), "jit");
        } else {
            assert_eq!(k.backend_name(), "intrinsics");
        }
    }

    #[test]
    fn all_backends_agree() {
        let sh = shape();
        let inp: Vec<f32> = (0..sh.in_cb_stride + 256).map(|i| (i % 13) as f32 * 0.25).collect();
        let wt: Vec<f32> = (0..256).map(|i| (i % 7) as f32 * 0.5 - 1.0).collect();
        let run = |backend| {
            let k = FwdKernel::new(sh, backend);
            let mut out = vec![0.0f32; 16 * 16 * VLEN];
            // SAFETY: buffers sized for the shape's extents above.
            unsafe {
                k.call(
                    inp.as_ptr(),
                    wt.as_ptr(),
                    out.as_mut_ptr(),
                    std::ptr::null(),
                    std::ptr::null(),
                    std::ptr::null(),
                )
            };
            out
        };
        let scalar = run(Backend::Scalar);
        let intr = run(Backend::Intrinsics);
        assert!(tensor::Norms::compare(&scalar, &intr).ok(1e-5));
        if jit::jit_available() {
            let j = run(Backend::Jit);
            assert!(tensor::Norms::compare(&scalar, &j).ok(1e-5));
        }
    }
}
