//! Layer fusion (Section II-G).
//!
//! Non-convolution layers (Bias, ReLU, residual Eltwise-add …) are
//! bandwidth bound; applying them to an output sub-tensor *while it is
//! still cache-hot from the convolution* saves a full memory round
//! trip per fused operator. The dryrun records an APPLY entry after a
//! tile's last channel-block reduction (Algorithm 4's
//! `cb == Cb − 1` condition); replay executes [`apply_tile`] right
//! after the CONV streak that produced the tile.

use tensor::{BlockedActs, VLEN};

/// Fusable post-convolution operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum FusedOp {
    /// Plain convolution.
    #[default]
    None,
    /// `out += bias[k]`.
    Bias,
    /// `out = max(out, 0)`.
    Relu,
    /// `out = max(out + bias[k], 0)`.
    BiasRelu,
    /// `out += residual` (ResNet shortcut).
    Eltwise,
    /// `out = max(out + residual, 0)` (ResNet shortcut + activation).
    EltwiseRelu,
    /// `out += bias[k] + residual` (folded batch norm + shortcut).
    BiasEltwise,
    /// `out = max(out + bias[k] + residual, 0)` (folded batch norm +
    /// shortcut + activation — the full bottleneck-block tail).
    BiasEltwiseRelu,
}

impl FusedOp {
    /// Every variant, in discriminant order (stable index for per-op
    /// statistics tables).
    pub const ALL: [FusedOp; 8] = [
        FusedOp::None,
        FusedOp::Bias,
        FusedOp::Relu,
        FusedOp::BiasRelu,
        FusedOp::Eltwise,
        FusedOp::EltwiseRelu,
        FusedOp::BiasEltwise,
        FusedOp::BiasEltwiseRelu,
    ];

    /// Position of this variant in [`FusedOp::ALL`].
    pub fn index(&self) -> usize {
        FusedOp::ALL.iter().position(|o| o == self).expect("every variant is listed")
    }

    /// Whether this op needs a bias vector at execution time.
    pub fn needs_bias(&self) -> bool {
        matches!(
            self,
            FusedOp::Bias | FusedOp::BiasRelu | FusedOp::BiasEltwise | FusedOp::BiasEltwiseRelu
        )
    }

    /// Whether this op needs a residual tensor at execution time.
    pub fn needs_eltwise(&self) -> bool {
        matches!(
            self,
            FusedOp::Eltwise
                | FusedOp::EltwiseRelu
                | FusedOp::BiasEltwise
                | FusedOp::BiasEltwiseRelu
        )
    }
}

/// Runtime arguments of the fused operators.
#[derive(Clone, Copy, Default)]
pub struct FuseCtx<'a> {
    /// Per-output-channel bias, length `K` (padded to blocks).
    pub bias: Option<&'a [f32]>,
    /// Residual tensor with the same geometry as the output.
    pub eltwise: Option<&'a BlockedActs>,
}

/// One recorded APPLY: the tile geometry needed to re-touch an output
/// sub-tensor (offsets are in elements from the output base).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ApplyRec {
    /// Element offset of the tile's first pixel vector.
    pub out_off: u32,
    /// Output channel block (for bias indexing).
    pub kb: u16,
    /// Tile rows.
    pub rows: u8,
    /// Tile columns (pixel vectors per row).
    pub cols: u16,
    /// Element stride between tile rows.
    pub row_stride: u32,
}

/// Apply `op` to one output tile (called from stream replay while the
/// tile is cache-hot).
///
/// The dispatch happens once per tile; each variant's row loop is a
/// tight slice-free pointer walk the compiler auto-vectorizes — the
/// apply must stay far cheaper than the memory round trip it saves.
///
/// # Safety
/// `out` (+ the offsets in `rec`) must be in-bounds for the output
/// tensor; when the op needs eltwise, `ctx.eltwise` must have identical
/// geometry to the output tensor.
// lane loops index the bias splat by (pixel, lane) coordinates like
// the kernel crates; iterator rewrites would obscure the addressing
#[allow(clippy::needless_range_loop)]
pub unsafe fn apply_tile(op: FusedOp, rec: &ApplyRec, out: *mut f32, ctx: &FuseCtx<'_>) {
    if op == FusedOp::None {
        return;
    }
    let cols = rec.cols as usize;
    // the tile's bias block, splatted to a stack vector so every
    // variant's inner loop is a pure (vector-load, op, vector-store)
    // walk the compiler auto-vectorizes
    let mut bias = [0.0f32; VLEN];
    if op.needs_bias() {
        let b = ctx.bias.expect("plan validated the bias").as_ptr().add(rec.kb as usize * VLEN);
        for (v, dst) in bias.iter_mut().enumerate() {
            *dst = *b.add(v);
        }
    }
    let elt = ctx.eltwise.map(|e| e.as_ptr());
    for row in 0..rec.rows as usize {
        let base = rec.out_off as usize + row * rec.row_stride as usize;
        let px = out.add(base);
        match op {
            FusedOp::None => unreachable!("early return above"),
            FusedOp::Relu => {
                for i in 0..cols * VLEN {
                    *px.add(i) = (*px.add(i)).max(0.0);
                }
            }
            FusedOp::Bias => {
                for c in 0..cols {
                    for v in 0..VLEN {
                        *px.add(c * VLEN + v) += bias[v];
                    }
                }
            }
            FusedOp::BiasRelu => {
                for c in 0..cols {
                    for v in 0..VLEN {
                        let p = px.add(c * VLEN + v);
                        *p = (*p + bias[v]).max(0.0);
                    }
                }
            }
            FusedOp::Eltwise => {
                let ex = elt.unwrap_unchecked().add(base);
                for i in 0..cols * VLEN {
                    *px.add(i) += *ex.add(i);
                }
            }
            FusedOp::EltwiseRelu => {
                let ex = elt.unwrap_unchecked().add(base);
                for i in 0..cols * VLEN {
                    *px.add(i) = (*px.add(i) + *ex.add(i)).max(0.0);
                }
            }
            FusedOp::BiasEltwise => {
                let ex = elt.unwrap_unchecked().add(base);
                for c in 0..cols {
                    for v in 0..VLEN {
                        let i = c * VLEN + v;
                        *px.add(i) = (*px.add(i) + bias[v]) + *ex.add(i);
                    }
                }
            }
            FusedOp::BiasEltwiseRelu => {
                let ex = elt.unwrap_unchecked().add(base);
                for c in 0..cols {
                    for v in 0..VLEN {
                        let i = c * VLEN + v;
                        *px.add(i) = ((*px.add(i) + bias[v]) + *ex.add(i)).max(0.0);
                    }
                }
            }
        }
    }
}

/// Requantizing apply for the int8 path: the tile holds raw int32
/// accumulators (written bit-wise into the f32 tensor's storage by the
/// int16 kernels); this converts them in place to
/// `f32 = acc · mult[k]` and then applies `op`'s extras (bias, residual
/// add, ReLU) while the tile is cache-hot — the quantize→conv→requant
/// chain of the paper's low-precision section folded into one APPLY.
///
/// `op == FusedOp::None` still performs the conversion (pure requant).
/// The bias stays f32 (it is the folded-BN bias, added *after*
/// dequantization), and the residual is read as f32 from a tensor with
/// the output's geometry.
///
/// # Safety
/// Same contract as [`apply_tile`]; additionally every element of the
/// tile must hold an int32 accumulator exactly once before this runs
/// (the stream replay guarantees it: the APPLY follows the tile's last
/// channel-block reduction).
#[allow(clippy::needless_range_loop)]
pub unsafe fn apply_tile_requant(
    op: FusedOp,
    rec: &ApplyRec,
    out: *mut f32,
    mult: &[f32],
    ctx: &FuseCtx<'_>,
) {
    let cols = rec.cols as usize;
    let m = mult.as_ptr().add(rec.kb as usize * VLEN);
    let mut bias = [0.0f32; VLEN];
    if op.needs_bias() {
        let b = ctx.bias.expect("plan validated the bias").as_ptr().add(rec.kb as usize * VLEN);
        for (v, dst) in bias.iter_mut().enumerate() {
            *dst = *b.add(v);
        }
    }
    let relu = matches!(
        op,
        FusedOp::Relu | FusedOp::BiasRelu | FusedOp::EltwiseRelu | FusedOp::BiasEltwiseRelu
    );
    let (add_bias, add_elt) = (op.needs_bias(), op.needs_eltwise());
    let elt = ctx.eltwise.map(|e| e.as_ptr());
    for row in 0..rec.rows as usize {
        let base = rec.out_off as usize + row * rec.row_stride as usize;
        let px = out.add(base);
        let acc = px as *const i32;
        // the flag tests are loop-invariant; LLVM unswitches them out
        // of this (load, convert, fma, store) walk
        for c in 0..cols {
            for v in 0..VLEN {
                let i = c * VLEN + v;
                let mut x = *acc.add(i) as f32 * *m.add(v);
                if add_bias {
                    x += bias[v];
                }
                if add_elt {
                    x += *elt.unwrap_unchecked().add(base + i);
                }
                if relu {
                    x = x.max(0.0);
                }
                *px.add(i) = x;
            }
        }
    }
}

/// Reference (unfused) application over a whole tensor — used by tests
/// and by the unfused baselines. When the op needs eltwise, the
/// residual must share the output's *physical* geometry (same padding).
pub fn apply_unfused(op: FusedOp, out: &mut BlockedActs, ctx: &FuseCtx<'_>) {
    let (n, kb_total, h, w) = (out.n, out.cb, out.h, out.w);
    if let Some(e) = ctx.eltwise {
        assert_eq!((e.n, e.cb, e.h, e.w, e.pad), (out.n, out.cb, out.h, out.w, out.pad));
    }
    if op.needs_bias() {
        // apply_tile reads whole VLEN blocks per channel block
        assert!(
            ctx.bias.is_some_and(|b| b.len() >= kb_total * VLEN),
            "bias missing or shorter than the padded channel count"
        );
    }
    for n_ in 0..n {
        for kb in 0..kb_total {
            for h_ in 0..h {
                let rec = ApplyRec {
                    out_off: out.pix_offset_logical(n_, kb, h_ as isize, 0) as u32,
                    kb: kb as u16,
                    rows: 1,
                    cols: w as u16,
                    row_stride: out.stride_h() as u32,
                };
                // SAFETY: offsets computed from the tensor's own layout.
                unsafe { apply_tile(op, &rec, out.as_mut_ptr(), ctx) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negative() {
        let mut out = BlockedActs::random(1, 16, 4, 4, 0, 3);
        let before = out.as_slice().to_vec();
        apply_unfused(FusedOp::Relu, &mut out, &FuseCtx::default());
        for (a, b) in out.as_slice().iter().zip(&before) {
            assert_eq!(*a, b.max(0.0));
        }
    }

    #[test]
    fn bias_adds_per_channel() {
        let mut out = BlockedActs::zeros(1, 32, 2, 2, 0);
        let bias: Vec<f32> = (0..32).map(|k| k as f32).collect();
        apply_unfused(FusedOp::Bias, &mut out, &FuseCtx { bias: Some(&bias), eltwise: None });
        for k in 0..32 {
            assert_eq!(out.get(0, k, 1, 1), k as f32);
        }
    }

    #[test]
    fn eltwise_relu_combines() {
        let mut out = BlockedActs::zeros(1, 16, 2, 2, 0);
        out.set(0, 3, 0, 0, -5.0);
        out.set(0, 4, 0, 0, 1.0);
        let mut res = BlockedActs::zeros(1, 16, 2, 2, 0);
        res.set(0, 3, 0, 0, 2.0);
        res.set(0, 4, 0, 0, 2.0);
        apply_unfused(FusedOp::EltwiseRelu, &mut out, &FuseCtx { bias: None, eltwise: Some(&res) });
        assert_eq!(out.get(0, 3, 0, 0), 0.0); // max(-5+2, 0)
        assert_eq!(out.get(0, 4, 0, 0), 3.0);
    }

    #[test]
    fn bias_eltwise_combines_with_and_without_relu() {
        let bias: Vec<f32> = (0..16).map(|k| 0.5 * k as f32 - 2.0).collect();
        let res = BlockedActs::random(1, 16, 3, 3, 0, 21);
        let base = BlockedActs::random(1, 16, 3, 3, 0, 22);
        for (op, relu) in [(FusedOp::BiasEltwise, false), (FusedOp::BiasEltwiseRelu, true)] {
            assert!(op.needs_bias() && op.needs_eltwise());
            let mut out = base.clone();
            apply_unfused(op, &mut out, &FuseCtx { bias: Some(&bias), eltwise: Some(&res) });
            #[allow(clippy::needless_range_loop)]
            for k in 0..16 {
                for h in 0..3 {
                    for w in 0..3 {
                        let mut want = base.get(0, k, h, w) + bias[k] + res.get(0, k, h, w);
                        if relu {
                            want = want.max(0.0);
                        }
                        assert_eq!(out.get(0, k, h, w), want, "{op:?} k={k} h={h} w={w}");
                    }
                }
            }
        }
    }

    #[test]
    fn all_lists_every_variant_once() {
        for (i, op) in FusedOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn none_is_identity() {
        let mut out = BlockedActs::random(2, 16, 3, 3, 0, 9);
        let before = out.as_slice().to_vec();
        apply_unfused(FusedOp::None, &mut out, &FuseCtx::default());
        assert_eq!(out.as_slice(), &before[..]);
    }
}
