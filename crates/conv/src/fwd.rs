//! Forward-propagation engine (Algorithms 3–5).
//!
//! Setup performs the dryrun: it walks the work-item space
//! `N × Kb × Pb × Qb` (statically partitioned over threads exactly as
//! Section II-F prescribes: minibatch first, then output feature
//! blocks, then spatial tiles), generates every kernel variant the
//! tile geometry needs (main tiles, remainder tiles, first-`cb` /
//! accumulating variants — Section II-H's motivation), and records the
//! per-thread offset streams. Execution replays the streams.
//!
//! The same engine executes the *backward* pass: `bwd` builds a
//! `FwdPlan` for the dual shape (Section II-I) with, where needed, a
//! strided output geometry.

use crate::backend::{Backend, FwdKernel};
use crate::blocking::Blocking;
use crate::fuse::{ApplyRec, FuseCtx, FusedOp};
use crate::streams::Stream;
use microkernel::KernelShape;
use parallel::{FlatPartition, ThreadPool};
use std::collections::HashMap;
use tensor::{BlockedActs, BlockedFilter, ConvShape, VLEN};

/// Output-tensor geometry (element strides) the plan writes through.
/// The default is a dense `[N][Kb][P][Q][VLEN]` tensor; the backward
/// 1×1 duality uses strided variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutGeom {
    /// Elements between output rows.
    pub row_stride: usize,
    /// Elements between output pixels in a row.
    pub col_stride: usize,
    /// Elements between output channel blocks.
    pub kb_stride: usize,
    /// Elements between samples.
    pub n_stride: usize,
    /// Element offset of logical pixel (0, 0) of block 0, sample 0.
    pub base: usize,
}

impl OutGeom {
    /// Dense geometry for the plan's own output shape.
    pub fn dense(shape: &ConvShape) -> Self {
        Self::padded(shape, 0)
    }

    /// Geometry of an output tensor carrying `out_pad` physical zero
    /// padding on every border (`[N][Kb][P+2p][Q+2p][VLEN]`, writes
    /// land on the logical interior). Graph executors use this to let
    /// a fused convolution produce directly into a blob that a later
    /// padded convolution consumes.
    pub fn padded(shape: &ConvShape, out_pad: usize) -> Self {
        let (p, q) = (shape.p() + 2 * out_pad, shape.q() + 2 * out_pad);
        let row_stride = q * VLEN;
        Self {
            row_stride,
            col_stride: VLEN,
            kb_stride: p * q * VLEN,
            n_stride: shape.kb() * p * q * VLEN,
            base: out_pad * row_stride + out_pad * VLEN,
        }
    }
}

/// Enumerate every [`KernelShape`] variant a forward dryrun for
/// `(shape, blocking)` can generate against a dense output and
/// `shape.pad` physical input padding: main tiles, spatial remainder
/// tiles, and the initializing/accumulating `cb`-step variants. The
/// int16 quantized plan draws from the *same* population, so this one
/// enumeration feeds both the `verify-kernels` sweep and the verifier
/// property tests.
pub fn kernel_shape_variants(
    shape: &ConvShape,
    blocking: &Blocking,
    prefetch: bool,
) -> Vec<KernelShape> {
    let out_geom = OutGeom::dense(shape);
    let cb_steps = shape.cb() / blocking.cb_inner;
    assert_eq!(cb_steps * blocking.cb_inner, shape.cb(), "cb_inner must divide Cb");
    let in_row = (shape.w + 2 * shape.pad) * VLEN;
    let in_cb = (shape.h + 2 * shape.pad) * in_row;
    let (p, q) = (shape.p(), shape.q());
    let mut rows_set: Vec<usize> =
        (0..p.div_ceil(blocking.rbp)).map(|tj| (p - tj * blocking.rbp).min(blocking.rbp)).collect();
    rows_set.sort_unstable();
    rows_set.dedup();
    let mut cols_set: Vec<usize> =
        (0..q.div_ceil(blocking.rbq)).map(|ti| (q - ti * blocking.rbq).min(blocking.rbq)).collect();
    cols_set.sort_unstable();
    cols_set.dedup();
    let inits: &[bool] = if cb_steps > 1 { &[true, false] } else { &[true] };
    let mut out = Vec::new();
    for &rows in &rows_set {
        for &cols in &cols_set {
            for &init in inits {
                out.push(KernelShape {
                    rbp: rows,
                    rbq: cols,
                    r: shape.r,
                    s: shape.s,
                    stride: shape.stride,
                    cb_inner: blocking.cb_inner,
                    in_row_stride: in_row,
                    in_cb_stride: in_cb,
                    out_row_stride: out_geom.row_stride,
                    out_col_stride: out_geom.col_stride,
                    init_zero: init,
                    prefetch,
                });
            }
        }
    }
    out
}

/// A fully planned forward (or dual-backward) convolution.
pub struct FwdPlan {
    shape: ConvShape,
    blocking: Blocking,
    kernels: Vec<FwdKernel>,
    streams: Vec<Stream>,
    out_geom: OutGeom,
    fused: FusedOp,
    nthreads: usize,
    /// Minimum physical input padding the plan's offsets assume.
    in_pad: usize,
    /// Physical padding of the output tensor `run` writes (0 unless the
    /// plan was built through [`FwdPlan::with_pads`]).
    out_pad: usize,
}

impl FwdPlan {
    /// Dryrun: build kernels and per-thread streams.
    pub fn new(
        shape: ConvShape,
        blocking: Blocking,
        nthreads: usize,
        backend: Backend,
        prefetch: bool,
        fused: FusedOp,
        out_geom: Option<OutGeom>,
    ) -> Self {
        Self::with_input_pad(
            shape, blocking, nthreads, backend, prefetch, fused, out_geom, shape.pad,
        )
    }

    /// Dryrun against an input tensor carrying `input_pad ≥ shape.pad`
    /// physical padding (graph executors share activation buffers
    /// across consumers with different padding needs).
    #[allow(clippy::too_many_arguments)]
    pub fn with_input_pad(
        shape: ConvShape,
        blocking: Blocking,
        nthreads: usize,
        backend: Backend,
        prefetch: bool,
        fused: FusedOp,
        out_geom: Option<OutGeom>,
        input_pad: usize,
    ) -> Self {
        Self::with_pads(shape, blocking, nthreads, backend, prefetch, fused, out_geom, input_pad, 0)
    }

    /// Full-control dryrun: physical `input_pad` on the input tensor
    /// *and* physical `out_pad` on the output tensor (the fused
    /// inference executor writes folded-BN outputs straight into
    /// padded consumer blobs). An explicit `out_geom` overrides
    /// `out_pad` (the backward-duality callers pass their own strided
    /// geometry and execute through `run_raw`).
    #[allow(clippy::too_many_arguments)]
    pub fn with_pads(
        shape: ConvShape,
        blocking: Blocking,
        nthreads: usize,
        backend: Backend,
        prefetch: bool,
        fused: FusedOp,
        out_geom: Option<OutGeom>,
        input_pad: usize,
        out_pad: usize,
    ) -> Self {
        let out_geom = out_geom.unwrap_or_else(|| OutGeom::padded(&shape, out_pad));
        let cb_steps = shape.cb() / blocking.cb_inner;
        assert_eq!(cb_steps * blocking.cb_inner, shape.cb(), "cb_inner must divide Cb");

        // input geometry (physically padded blocked activations)
        let in_row = (shape.w + 2 * input_pad) * VLEN;
        let in_cb = (shape.h + 2 * input_pad) * in_row;

        let mut kernels: Vec<FwdKernel> = Vec::new();
        let mut variant: HashMap<(usize, usize, bool), u8> = HashMap::new();
        let mut variant_for = |rows: usize, cols: usize, init: bool| -> u8 {
            *variant.entry((rows, cols, init)).or_insert_with(|| {
                let sh = KernelShape {
                    rbp: rows,
                    rbq: cols,
                    r: shape.r,
                    s: shape.s,
                    stride: shape.stride,
                    cb_inner: blocking.cb_inner,
                    in_row_stride: in_row,
                    in_cb_stride: in_cb,
                    out_row_stride: out_geom.row_stride,
                    out_col_stride: out_geom.col_stride,
                    init_zero: init,
                    prefetch,
                };
                kernels.push(FwdKernel::cached(sh, backend));
                u8::try_from(kernels.len() - 1).expect("too many kernel variants")
            })
        };

        let streams = dryrun_streams(
            &shape,
            &blocking,
            nthreads,
            &out_geom,
            fused,
            input_pad,
            &mut variant_for,
        );

        Self {
            shape,
            blocking,
            kernels,
            streams,
            out_geom,
            fused,
            nthreads,
            in_pad: input_pad,
            out_pad,
        }
    }

    /// The convolution shape this plan executes.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// The blocking decision in effect.
    pub fn blocking(&self) -> &Blocking {
        &self.blocking
    }

    /// Kernel variants generated by the dryrun (Section II-H's
    /// combinatorial-explosion bookkeeping, observable for tests).
    pub fn kernel_variants(&self) -> usize {
        self.kernels.len()
    }

    /// Which backend the first kernel resolved to.
    pub fn backend_name(&self) -> &'static str {
        self.kernels.first().map(|k| k.backend_name()).unwrap_or("none")
    }

    /// Total stream metadata bytes across threads.
    pub fn stream_bytes(&self) -> usize {
        self.streams.iter().map(|s| s.metadata_bytes()).sum()
    }

    /// Execute into a dense blocked output tensor.
    pub fn run(
        &self,
        pool: &ThreadPool,
        input: &BlockedActs,
        weights: &BlockedFilter,
        output: &mut BlockedActs,
        ctx: &FuseCtx<'_>,
    ) {
        assert_eq!(pool.nthreads(), self.nthreads, "plan was dryrun for a different team size");
        assert_eq!(
            (input.n, input.c, input.h, input.w),
            (self.shape.n, self.shape.c, self.shape.h, self.shape.w),
            "input tensor mismatch"
        );
        assert_eq!(input.pad, self.in_pad, "plan offsets assume exactly this padding");
        assert_eq!(
            (weights.k, weights.c, weights.r, weights.s),
            (self.shape.k, self.shape.c, self.shape.r, self.shape.s),
            "filter tensor mismatch"
        );
        assert_eq!(
            (output.n, output.c, output.h, output.w, output.pad),
            (self.shape.n, self.shape.k, self.shape.p(), self.shape.q(), self.out_pad),
            "output tensor mismatch"
        );
        if self.fused.needs_bias() {
            // the apply reads whole VLEN blocks, so the bias must cover
            // the padded channel count, not just the logical k
            assert!(
                ctx.bias.is_some_and(|b| b.len() >= self.shape.k.next_multiple_of(VLEN)),
                "bias missing or shorter than the padded channel count"
            );
        }
        if self.fused.needs_eltwise() {
            let e = ctx.eltwise.expect("eltwise tensor missing");
            assert_eq!(
                (e.n, e.cb, e.h, e.w, e.pad),
                (output.n, output.cb, output.h, output.w, self.out_pad),
                "eltwise tensor mismatch"
            );
        }
        // SAFETY: geometry validated above; threads write disjoint tiles.
        unsafe { self.run_raw(pool, input.as_ptr(), weights.as_ptr(), output.as_mut_ptr(), ctx) }
    }

    /// Execute through raw base pointers (used by the backward duality
    /// paths, which write strided outputs).
    ///
    /// # Safety
    /// The pointers must describe tensors with exactly the geometry the
    /// plan was dryrun for; output tiles are disjoint per thread.
    pub unsafe fn run_raw(
        &self,
        pool: &ThreadPool,
        input: *const f32,
        weights: *const f32,
        output: *mut f32,
        ctx: &FuseCtx<'_>,
    ) {
        let streams = &self.streams;
        let kernels = &self.kernels;
        let fused = self.fused;
        let inp = SendConstPtr(input);
        let wt = SendConstPtr(weights);
        let out = SendMutPtr(output);
        pool.run(move |pctx| {
            let s = &streams[pctx.tid];
            // SAFETY: per run_raw's contract.
            unsafe { s.replay(kernels, fused, inp.get(), wt.get(), out.get(), ctx) };
        });
    }

    /// Output geometry the plan writes through.
    pub fn out_geom(&self) -> &OutGeom {
        &self.out_geom
    }

    /// Physical padding `run` expects on the output tensor.
    pub fn out_pad(&self) -> usize {
        self.out_pad
    }
}

/// The dryrun proper (Section II-H): walk Algorithm 4's loop nest for
/// every thread, record offsets and variants instead of calling
/// kernels. Shared between the f32 and the int16 plans — both use the
/// same element offsets because the blocked layouts are parallel.
pub(crate) fn dryrun_streams(
    shape: &ConvShape,
    blocking: &Blocking,
    nthreads: usize,
    out_geom: &OutGeom,
    fused: FusedOp,
    input_pad: usize,
    variant_for: &mut dyn FnMut(usize, usize, bool) -> u8,
) -> Vec<Stream> {
    assert!(input_pad >= shape.pad, "input tensor padding below the conv's pad");
    let (p, q) = (shape.p(), shape.q());
    let (tp, tq) = blocking.tiles(p, q);
    let cb_steps = shape.cb() / blocking.cb_inner;
    let in_row = (shape.w + 2 * input_pad) * VLEN;
    let in_cb = (shape.h + 2 * input_pad) * in_row;
    let in_n = shape.cb() * in_cb;
    // extra physical border beyond what the conv consumes
    let in_base = (input_pad - shape.pad) * (in_row + VLEN);
    let wt_cb = shape.r * shape.s * VLEN * VLEN;
    let wt_kb = shape.cb() * wt_cb;

    let part = FlatPartition::new([shape.n, shape.kb(), tp, tq]);
    let mut streams = Vec::with_capacity(nthreads);
    for tid in 0..nthreads {
        let mut s = Stream::default();
        for item in part.range(nthreads, tid) {
            let [n, kb, tj, ti] = part.unflatten(item);
            let rows = blocking.rbp.min(p - tj * blocking.rbp);
            let cols = blocking.rbq.min(q - ti * blocking.rbq);
            let oj = tj * blocking.rbp;
            let oi = ti * blocking.rbq;
            let out_off = out_geom.base
                + n * out_geom.n_stride
                + kb * out_geom.kb_stride
                + oj * out_geom.row_stride
                + oi * out_geom.col_stride;
            for cbs in 0..cb_steps {
                let cb0 = cbs * blocking.cb_inner;
                let var = variant_for(rows, cols, cbs == 0);
                let in_off = in_base
                    + n * in_n
                    + cb0 * in_cb
                    + (oj * shape.stride) * in_row
                    + (oi * shape.stride) * VLEN;
                let wt_off = kb * wt_kb + cb0 * wt_cb;
                s.push_conv(var, in_off, wt_off, out_off);
            }
            if fused != FusedOp::None {
                s.push_apply(ApplyRec {
                    out_off: u32::try_from(out_off).expect("output offset exceeds u32"),
                    kb: kb as u16,
                    rows: rows as u8,
                    cols: cols as u16,
                    row_stride: out_geom.row_stride as u32,
                });
            }
        }
        streams.push(s);
    }
    streams
}

/// Shareable raw-pointer wrappers. Accessed through methods so that
/// RFC-2229 precise capture moves the whole (Sync) wrapper into the
/// region closure instead of the bare pointer field.
#[derive(Clone, Copy)]
pub(crate) struct SendConstPtr(pub(crate) *const f32);
unsafe impl Send for SendConstPtr {}
unsafe impl Sync for SendConstPtr {}
impl SendConstPtr {
    #[inline]
    pub(crate) fn get(&self) -> *const f32 {
        self.0
    }
}

#[derive(Clone, Copy)]
pub(crate) struct SendMutPtr(pub(crate) *mut f32);
unsafe impl Send for SendMutPtr {}
unsafe impl Sync for SendMutPtr {}
impl SendMutPtr {
    #[inline]
    pub(crate) fn get(&self) -> *mut f32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking;
    use crate::fuse::apply_unfused;
    use crate::reference::conv_fwd_ref;
    use tensor::{Kcrs, Nchw, Norms};

    fn run_case(shape: ConvShape, fused: FusedOp, backend: Backend, threads: usize) {
        let pool = ThreadPool::new(threads);
        let b = blocking::choose(&shape);
        let plan = FwdPlan::new(shape, b, threads, backend, true, fused, None);

        let x = Nchw::random(shape.n, shape.c, shape.h, shape.w, 1);
        let w = Kcrs::random(shape.k, shape.c, shape.r, shape.s, 2);
        let xb = BlockedActs::from_nchw(&x, shape.pad);
        let wb = BlockedFilter::from_kcrs(&w);
        let mut yb = BlockedActs::zeros(shape.n, shape.k, shape.p(), shape.q(), 0);

        let bias: Vec<f32> = (0..shape.k.next_multiple_of(VLEN)).map(|i| i as f32 * 0.01).collect();
        let residual = BlockedActs::random(shape.n, shape.k, shape.p(), shape.q(), 0, 77);
        let ctx = FuseCtx {
            bias: fused.needs_bias().then_some(&bias[..]),
            eltwise: fused.needs_eltwise().then_some(&residual),
        };
        plan.run(&pool, &xb, &wb, &mut yb, &ctx);

        // reference: naive conv + unfused op
        let mut y_ref = Nchw::zeros(shape.n, shape.k, shape.p(), shape.q());
        conv_fwd_ref(&shape, &x, &w, &mut y_ref);
        let mut y_ref_b = BlockedActs::from_nchw(&y_ref, 0);
        apply_unfused(fused, &mut y_ref_b, &ctx);

        let n = Norms::compare(y_ref_b.as_slice(), yb.as_slice());
        assert!(n.ok(1e-4), "{shape} fused={fused:?} backend={backend:?}: {n}");
    }

    #[test]
    fn one_by_one_layers() {
        run_case(ConvShape::new(2, 32, 48, 8, 8, 1, 1, 1, 0), FusedOp::None, Backend::Auto, 4);
        run_case(ConvShape::new(2, 64, 32, 8, 8, 1, 1, 2, 0), FusedOp::None, Backend::Auto, 4);
    }

    #[test]
    fn three_by_three_layers() {
        run_case(ConvShape::new(2, 32, 32, 8, 8, 3, 3, 1, 1), FusedOp::None, Backend::Auto, 4);
        run_case(ConvShape::new(1, 16, 16, 10, 10, 3, 3, 2, 1), FusedOp::None, Backend::Auto, 2);
    }

    #[test]
    fn first_conv_7x7_with_channel_padding() {
        // C=3 is zero-padded into one block
        run_case(ConvShape::new(1, 3, 32, 20, 20, 7, 7, 2, 3), FusedOp::None, Backend::Auto, 3);
    }

    #[test]
    fn fused_operators() {
        let s = ConvShape::new(1, 32, 32, 8, 8, 3, 3, 1, 1);
        for f in [
            FusedOp::Bias,
            FusedOp::Relu,
            FusedOp::BiasRelu,
            FusedOp::Eltwise,
            FusedOp::EltwiseRelu,
        ] {
            run_case(s, f, Backend::Auto, 4);
        }
    }

    #[test]
    fn backends_agree_on_full_layer() {
        let s = ConvShape::new(2, 32, 32, 14, 14, 3, 3, 1, 1);
        run_case(s, FusedOp::None, Backend::Scalar, 2);
        run_case(s, FusedOp::None, Backend::Intrinsics, 2);
        if jit::jit_available() {
            run_case(s, FusedOp::None, Backend::Jit, 2);
        }
    }

    #[test]
    fn remainder_tiles() {
        // Q=10 with rbq from policy (10 ≤ 28 ⇒ rbq=10), P=10; force
        // remainder by overriding blocking
        let shape = ConvShape::new(1, 32, 16, 10, 10, 3, 3, 1, 1);
        let b = Blocking { rbp: 2, rbq: 7, cb_inner: 1, upd_bp: 4, upd_bq: 10 };
        let pool = ThreadPool::new(3);
        let plan = FwdPlan::new(shape, b, 3, Backend::Auto, false, FusedOp::None, None);
        // (main, remainder) × (first-cb init, accumulate) = 4 variants
        assert_eq!(plan.kernel_variants(), 4, "main + remainder variants expected");
        let x = Nchw::random(1, 32, 10, 10, 5);
        let w = Kcrs::random(16, 32, 3, 3, 6);
        let xb = BlockedActs::from_nchw(&x, 1);
        let wb = BlockedFilter::from_kcrs(&w);
        let mut yb = BlockedActs::zeros(1, 16, 10, 10, 0);
        plan.run(&pool, &xb, &wb, &mut yb, &FuseCtx::default());
        let mut y_ref = Nchw::zeros(1, 16, 10, 10);
        conv_fwd_ref(&shape, &x, &w, &mut y_ref);
        let n = Norms::compare(BlockedActs::from_nchw(&y_ref, 0).as_slice(), yb.as_slice());
        assert!(n.ok(1e-4), "{n}");
    }

    #[test]
    fn padded_output_matches_dense_and_keeps_border_zero() {
        // the same conv written into a pad-2 output tensor must hold
        // the dense results on its logical interior and leave the
        // physical border untouched (zero) — the invariant downstream
        // padded consumers rely on
        let shape = ConvShape::new(2, 32, 32, 8, 8, 3, 3, 1, 1);
        let threads = 3;
        let pool = ThreadPool::new(threads);
        let b = blocking::choose(&shape);
        let x = Nchw::random(2, 32, 8, 8, 31);
        let w = Kcrs::random(32, 32, 3, 3, 32);
        let xb = BlockedActs::from_nchw(&x, 1);
        let wb = BlockedFilter::from_kcrs(&w);
        let bias: Vec<f32> = (0..32).map(|i| 0.02 * i as f32 - 0.3).collect();
        let residual = BlockedActs::random(2, 32, 8, 8, 2, 33);

        let dense = FwdPlan::new(shape, b, threads, Backend::Auto, true, FusedOp::None, None);
        let mut y_dense = BlockedActs::zeros(2, 32, 8, 8, 0);
        dense.run(&pool, &xb, &wb, &mut y_dense, &FuseCtx::default());

        for fused in [FusedOp::None, FusedOp::BiasEltwiseRelu] {
            let padded = FwdPlan::with_pads(
                shape,
                b,
                threads,
                Backend::Auto,
                true,
                fused,
                None,
                shape.pad,
                2,
            );
            assert_eq!(padded.out_pad(), 2);
            let mut y_pad = BlockedActs::zeros(2, 32, 8, 8, 2);
            let ctx = FuseCtx {
                bias: fused.needs_bias().then_some(&bias[..]),
                eltwise: fused.needs_eltwise().then_some(&residual),
            };
            padded.run(&pool, &xb, &wb, &mut y_pad, &ctx);
            for n in 0..2 {
                #[allow(clippy::needless_range_loop)]
                for k in 0..32 {
                    for h in 0..8 {
                        for wd in 0..8 {
                            let mut want = y_dense.get(n, k, h, wd);
                            if fused == FusedOp::BiasEltwiseRelu {
                                want = (want + bias[k] + residual.get(n, k, h, wd)).max(0.0);
                            }
                            assert_eq!(y_pad.get(n, k, h, wd), want, "{fused:?} interior");
                        }
                    }
                }
                // the physical border must still be all zeros
                for kb in 0..y_pad.cb {
                    for wp in 0..y_pad.wp() {
                        let off = y_pad.pix_offset_logical(n, kb, -2, wp as isize - 2);
                        for v in 0..VLEN {
                            assert_eq!(y_pad.as_slice()[off + v], 0.0, "{fused:?} border");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let shape = ConvShape::new(3, 32, 32, 8, 8, 3, 3, 1, 1);
        let x = Nchw::random(3, 32, 8, 8, 9);
        let w = Kcrs::random(32, 32, 3, 3, 10);
        let xb = BlockedActs::from_nchw(&x, 1);
        let wb = BlockedFilter::from_kcrs(&w);
        let mut outs = Vec::new();
        for threads in [1usize, 2, 5, 8] {
            let pool = ThreadPool::new(threads);
            let b = blocking::choose(&shape);
            let plan = FwdPlan::new(shape, b, threads, Backend::Auto, false, FusedOp::None, None);
            let mut yb = BlockedActs::zeros(3, 32, 8, 8, 0);
            plan.run(&pool, &xb, &wb, &mut yb, &FuseCtx::default());
            outs.push(yb.as_slice().to_vec());
        }
        for o in &outs[1..] {
            assert_eq!(&outs[0], o, "results must be identical across team sizes");
        }
    }

    #[test]
    fn stream_metadata_is_compact() {
        let shape = ConvShape::new(4, 64, 64, 28, 28, 3, 3, 1, 1);
        let b = blocking::choose(&shape);
        let plan = FwdPlan::new(shape, b, 8, Backend::Intrinsics, true, FusedOp::Relu, None);
        // 4·4·(28/rbp·28/28)·Cb convs; metadata ≈ 13B per conv
        let convs: usize = (0..8).map(|_| 0).len(); // silence clippy
        let _ = convs;
        assert!(plan.stream_bytes() < 512 * 1024, "{} bytes", plan.stream_bytes());
        assert!(plan.kernel_variants() <= 4);
    }
}
