//! Weight-gradient update engine (Algorithms 8–9, Section II-J).
//!
//! The parallelization space is a single knob: the number of partial
//! weight-gradient copies `G`:
//!
//! * `G = 1` — the paper's first extreme: one dW tensor, threads split
//!   the `R × S × Kb × Cb` task space, no reduction, but every thread
//!   re-reads activation tensors;
//! * `G = T` — the paper's second extreme: per-thread copies over the
//!   minibatch split, minimal activation traffic, but a `(T+1)·|dW|`
//!   reduction;
//! * `1 < G < T` — the hybrid family: `G` groups each own a copy and a
//!   minibatch shard; members of a group split the task space.
//!
//! [`choose_copies`] evaluates the paper's bandwidth model over the
//! divisors of `T` at dryrun time ("during the dryrun phase of the
//! weight gradient update propagation we decide on which
//! parallelization strategy to use"). The compute kernel is the
//! `VLEN × VLEN`-panel microkernel of Algorithm 9 with the spatial
//! `BP × BQ` blocking from [`crate::blocking`].

use crate::backend::{Backend, UpdKernel};
use crate::blocking::Blocking;
use crate::fwd::{SendConstPtr, SendMutPtr};
use machine::MachineModel;
use microkernel::UpdShape;
use parallel::{split_even, ThreadPool};
use std::collections::HashMap;
use std::sync::Mutex;
use tensor::{AVec, BlockedActs, BlockedFilter, ConvShape, VLEN};

/// Planned weight-gradient pass.
pub struct UpdPlan {
    shape: ConvShape,
    /// Partial-copy count (`1 ⇒` feature split, `T ⇒` per-thread).
    copies: usize,
    /// Kernel variants keyed by tile rows (main + remainder).
    kernels: Vec<UpdKernel>,
    variant_of_rows: HashMap<usize, usize>,
    bp: usize,
    nthreads: usize,
    /// Physical padding expected on the dO tensor.
    dout_pad: usize,
    /// Physical padding expected on the input tensor.
    input_pad: usize,
    /// Reusable partial-copy buffer (`G·|dW|` floats when `G > 1`),
    /// held by the plan so steady-state `run` calls stop allocating.
    /// Taken out of the mutex for a call's duration; concurrent runs
    /// of a shared plan fall back to a fresh allocation.
    copy_scratch: Mutex<Option<AVec<f32>>>,
}

/// Bandwidth model of Section II-J: approximate bytes moved for a
/// strategy with `g` copies on `t` threads.
pub fn strategy_bytes(shape: &ConvShape, t: usize, g: usize) -> f64 {
    let members = (t / g).max(1);
    // factorize members over (Kb, Cb) as evenly as possible
    let mk = members.min(shape.kb());
    let mc = members.div_ceil(mk).min(shape.cb());
    let in_bytes = (shape.n * shape.c * shape.h * shape.w * 4) as f64;
    let do_bytes = (shape.n * shape.k * shape.p() * shape.q() * 4) as f64;
    let w_bytes = (shape.k * shape.c * shape.r * shape.s * 4) as f64;
    // every member that owns tasks with a given cb re-reads that input
    // slice; dually for kb and dO
    mk as f64 * in_bytes + mc as f64 * do_bytes + (g as f64 + 1.0) * 2.0 * w_bytes
}

/// Pick the copy count minimizing modelled traffic (divisors of `t`),
/// requiring enough tasks to keep group members busy.
pub fn choose_copies(shape: &ConvShape, t: usize, _machine: &MachineModel) -> usize {
    let tasks = shape.kb() * shape.cb() * shape.r * shape.s;
    let mut best = (f64::INFINITY, t);
    for g in 1..=t {
        if !t.is_multiple_of(g) {
            continue;
        }
        let members = t / g;
        if tasks < members {
            continue; // group members would idle
        }
        let bytes = strategy_bytes(shape, t, g);
        if bytes < best.0 {
            best = (bytes, g);
        }
    }
    best.1
}

/// Enumerate every [`UpdShape`] variant an update dryrun for
/// `(shape, blocking)` can generate (unpadded dO, `shape.pad` physical
/// input padding): the main `upd_bp`-row tile and the spatial
/// remainder. Counterpart of [`crate::fwd::kernel_shape_variants`] for
/// the `verify-kernels` sweep and the verifier property tests.
pub fn upd_shape_variants(shape: &ConvShape, blocking: &Blocking, prefetch: bool) -> Vec<UpdShape> {
    let in_row = (shape.w + 2 * shape.pad) * VLEN;
    let do_row = shape.q() * VLEN;
    let p = shape.p();
    let mut rows_needed = vec![blocking.upd_bp.min(p)];
    if !p.is_multiple_of(blocking.upd_bp) {
        rows_needed.push(p % blocking.upd_bp);
    }
    rows_needed.sort_unstable();
    rows_needed.dedup();
    rows_needed
        .into_iter()
        .map(|rows| UpdShape {
            bp: rows,
            bq: shape.q(),
            stride: shape.stride,
            in_row_stride: in_row,
            do_row_stride: do_row,
            prefetch,
        })
        .collect()
}

impl UpdPlan {
    /// Dryrun: choose strategy, generate kernels.
    pub fn new(
        shape: ConvShape,
        blocking: Blocking,
        nthreads: usize,
        backend: Backend,
        prefetch: bool,
        machine: &MachineModel,
        dout_pad: usize,
    ) -> Self {
        Self::with_input_pad(
            shape, blocking, nthreads, backend, prefetch, machine, dout_pad, shape.pad,
        )
    }

    /// As [`UpdPlan::new`] but with the copy count forced (ablations).
    #[allow(clippy::too_many_arguments)]
    pub fn with_forced_copies(
        shape: ConvShape,
        blocking: Blocking,
        nthreads: usize,
        backend: Backend,
        prefetch: bool,
        machine: &MachineModel,
        dout_pad: usize,
        input_pad: usize,
        copies: usize,
    ) -> Self {
        assert!(copies >= 1 && nthreads.is_multiple_of(copies), "copies must divide the team");
        let mut plan = Self::with_input_pad(
            shape, blocking, nthreads, backend, prefetch, machine, dout_pad, input_pad,
        );
        plan.copies = copies;
        plan
    }

    /// As [`UpdPlan::new`] with an input tensor carrying `input_pad`.
    #[allow(clippy::too_many_arguments)]
    pub fn with_input_pad(
        shape: ConvShape,
        blocking: Blocking,
        nthreads: usize,
        backend: Backend,
        prefetch: bool,
        machine: &MachineModel,
        dout_pad: usize,
        input_pad: usize,
    ) -> Self {
        assert!(input_pad >= shape.pad);
        let copies = choose_copies(&shape, nthreads, machine);
        let in_row = (shape.w + 2 * input_pad) * VLEN;
        let do_row = (shape.q() + 2 * dout_pad) * VLEN;
        assert_eq!(blocking.upd_bq, shape.q(), "update kernels sweep full rows");
        let mut kernels = Vec::new();
        let mut variant_of_rows = HashMap::new();
        let p = shape.p();
        let mut rows_needed = vec![blocking.upd_bp.min(p)];
        if !p.is_multiple_of(blocking.upd_bp) {
            rows_needed.push(p % blocking.upd_bp);
        }
        for rows in rows_needed {
            variant_of_rows.entry(rows).or_insert_with(|| {
                kernels.push(UpdKernel::cached(
                    UpdShape {
                        bp: rows,
                        bq: shape.q(),
                        stride: shape.stride,
                        in_row_stride: in_row,
                        do_row_stride: do_row,
                        prefetch,
                    },
                    backend,
                ));
                kernels.len() - 1
            });
        }
        Self {
            shape,
            copies,
            kernels,
            variant_of_rows,
            bp: blocking.upd_bp,
            nthreads,
            dout_pad,
            input_pad,
            copy_scratch: Mutex::new(None),
        }
    }

    /// The chosen number of partial dW copies.
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// Execute: `dweights = conv_upd(input, dout)` (overwrites).
    pub fn run(
        &self,
        pool: &ThreadPool,
        input: &BlockedActs,
        dout: &BlockedActs,
        dweights: &mut BlockedFilter,
    ) {
        assert_eq!(pool.nthreads(), self.nthreads);
        let sh = &self.shape;
        assert_eq!(
            (input.n, input.c, input.h, input.w, input.pad),
            (sh.n, sh.c, sh.h, sh.w, self.input_pad),
            "input mismatch"
        );
        assert_eq!(
            (dout.n, dout.c, dout.h, dout.w, dout.pad),
            (sh.n, sh.k, sh.p(), sh.q(), self.dout_pad),
            "dout mismatch"
        );
        assert_eq!(
            (dweights.k, dweights.c, dweights.r, dweights.s),
            (sh.k, sh.c, sh.r, sh.s),
            "dweights mismatch"
        );
        dweights.zero();

        let g = self.copies;
        let t = self.nthreads;
        let members = t / g;
        let wlen = dweights.as_slice().len();
        // partial copies, reused across calls (re-zeroed in-region
        // below); G == 1 accumulates into dW directly with no scratch
        let slen = if g > 1 { g * wlen } else { 0 };
        let taken = self.copy_scratch.lock().unwrap().take();
        let mut scratch: AVec<f32> = match taken {
            Some(b) if b.len() == slen => b,
            _ => AVec::zeroed(slen),
        };
        let scratch_ptr = SendMutPtr(scratch.as_mut_ptr());
        let dw_ptr = SendMutPtr(dweights.as_mut_ptr());
        let in_ptr = SendConstPtr(input.as_ptr());
        let do_ptr = SendConstPtr(dout.as_ptr());

        let tasks = sh.kb() * sh.cb() * sh.r * sh.s;
        let p = sh.p();
        let tiles = p.div_ceil(self.bp);
        let in_row = input.stride_h();
        let in_cb = input.stride_cb();
        let in_n = input.stride_n();
        let in_base = (self.input_pad - sh.pad) * (in_row + VLEN);
        let do_row = dout.stride_h();
        let do_kb = dout.stride_cb();
        let do_n = dout.stride_n();
        let do_base = self.dout_pad * do_row + self.dout_pad * VLEN;
        let wt_panel = VLEN * VLEN;
        let wt_s = wt_panel;
        let kernels = &self.kernels;
        let variant_of_rows = &self.variant_of_rows;
        let bp = self.bp;
        let shv = *sh;

        pool.run(move |ctx| {
            if g > 1 {
                // zero the (reused) partial copies before accumulating
                let my = ctx.chunk(g * wlen);
                // SAFETY: disjoint per-thread chunks of the scratch.
                unsafe { std::ptr::write_bytes(scratch_ptr.get().add(my.start), 0, my.len()) };
                ctx.barrier();
            }
            let group = ctx.tid / members;
            let member = ctx.tid % members;
            let n_range = split_even(shv.n, g, group);
            let my_tasks = split_even(tasks, members, member);
            let dst = if g > 1 {
                // SAFETY: each group writes its own wlen-sized slice.
                unsafe { scratch_ptr.get().add(group * wlen) }
            } else {
                dw_ptr.get()
            };
            for task in my_tasks {
                // decode (kb, cb, r, s) from the flat task id
                let s_ = task % shv.s;
                let r_ = (task / shv.s) % shv.r;
                let cb = (task / (shv.s * shv.r)) % shv.cb();
                let kb = task / (shv.s * shv.r * shv.cb());
                let panel = ((kb * shv.cb() + cb) * shv.r + r_) * shv.s * wt_s + s_ * wt_panel;
                for n in n_range.clone() {
                    for tj in 0..tiles {
                        let rows = bp.min(p - tj * bp);
                        let var = variant_of_rows[&rows];
                        let p0 = tj * bp;
                        // input base: physical row stride·p0 + r, col s
                        let in_off = in_base
                            + n * in_n
                            + cb * in_cb
                            + (p0 * shv.stride + r_) * in_row
                            + s_ * VLEN;
                        let do_off = do_base + n * do_n + kb * do_kb + p0 * do_row;
                        // prefetch the next tile's sub-tensors
                        let (pf_in, pf_do) = if tj + 1 < tiles {
                            let np0 = (tj + 1) * bp;
                            (
                                in_base
                                    + n * in_n
                                    + cb * in_cb
                                    + (np0 * shv.stride + r_) * in_row
                                    + s_ * VLEN,
                                do_base + n * do_n + kb * do_kb + np0 * do_row,
                            )
                        } else {
                            (in_off, do_off)
                        };
                        // SAFETY: offsets in-bounds; panels disjoint per
                        // task within a group; copies disjoint per group.
                        unsafe {
                            kernels[var].call(
                                in_ptr.get().add(in_off),
                                do_ptr.get().add(do_off),
                                dst.add(panel),
                                in_ptr.get().add(pf_in),
                                do_ptr.get().add(pf_do),
                                dst.add(panel),
                            )
                        };
                    }
                }
            }
            if g > 1 {
                // sum-reduce the partial copies (each thread owns a
                // contiguous 1/T of dW — the paper's final reduction)
                ctx.barrier();
                let my = ctx.chunk(wlen);
                for i in my {
                    let mut acc = 0.0f32;
                    for gg in 0..g {
                        // SAFETY: read-only after the barrier.
                        acc += unsafe { *scratch_ptr.get().add(gg * wlen + i) };
                    }
                    // SAFETY: each thread writes its own chunk.
                    unsafe { *dw_ptr.get().add(i) = acc };
                }
            }
        });
        if g > 1 {
            *self.copy_scratch.lock().unwrap() = Some(scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking;
    use crate::reference::conv_upd_ref;
    use tensor::{Kcrs, Nchw, Norms};

    fn run_case(shape: ConvShape, threads: usize, force_copies: Option<usize>) -> usize {
        let pool = ThreadPool::new(threads);
        let b = blocking::choose(&shape);
        let mut plan =
            UpdPlan::new(shape, b, threads, Backend::Auto, true, &MachineModel::skx(), 0);
        if let Some(g) = force_copies {
            assert_eq!(threads % g, 0);
            plan.copies = g;
        }
        let x = Nchw::random(shape.n, shape.c, shape.h, shape.w, 5);
        let gy = Nchw::random(shape.n, shape.k, shape.p(), shape.q(), 6);
        let xb = BlockedActs::from_nchw(&x, shape.pad);
        let gyb = BlockedActs::from_nchw(&gy, 0);
        let mut dwb = BlockedFilter::zeros(shape.k, shape.c, shape.r, shape.s);
        plan.run(&pool, &xb, &gyb, &mut dwb);

        let mut dw_ref = Kcrs::zeros(shape.k, shape.c, shape.r, shape.s);
        conv_upd_ref(&shape, &x, &gy, &mut dw_ref);
        let n = Norms::compare(dw_ref.as_slice(), dwb.to_kcrs().as_slice());
        assert!(n.ok(1e-3), "{shape} copies={}: {n}", plan.copies());
        plan.copies()
    }

    #[test]
    fn all_strategies_match_reference() {
        let shape = ConvShape::new(4, 32, 32, 8, 8, 3, 3, 1, 1);
        for g in [1usize, 2, 4] {
            run_case(shape, 4, Some(g));
        }
    }

    #[test]
    fn strided_and_one_by_one_layers() {
        run_case(ConvShape::new(2, 32, 48, 8, 8, 1, 1, 1, 0), 3, None);
        run_case(ConvShape::new(2, 32, 32, 8, 8, 1, 1, 2, 0), 2, None);
        run_case(ConvShape::new(2, 16, 16, 10, 10, 3, 3, 2, 1), 4, None);
    }

    #[test]
    fn first_conv_update() {
        run_case(ConvShape::new(1, 3, 16, 20, 20, 7, 7, 2, 3), 2, None);
    }

    #[test]
    fn remainder_row_tiles() {
        // P = 10 with bp that does not divide it
        let shape = ConvShape::new(1, 16, 16, 10, 10, 3, 3, 1, 1);
        let pool = ThreadPool::new(2);
        let mut b = blocking::choose(&shape);
        b.upd_bp = 4; // 10 = 4 + 4 + 2 -> remainder variant
        let plan = UpdPlan::new(shape, b, 2, Backend::Auto, false, &MachineModel::skx(), 0);
        assert_eq!(plan.kernels.len(), 2);
        let x = Nchw::random(1, 16, 10, 10, 5);
        let gy = Nchw::random(1, 16, 10, 10, 6);
        let xb = BlockedActs::from_nchw(&x, 1);
        let gyb = BlockedActs::from_nchw(&gy, 0);
        let mut dwb = BlockedFilter::zeros(16, 16, 3, 3);
        plan.run(&pool, &xb, &gyb, &mut dwb);
        let mut dw_ref = Kcrs::zeros(16, 16, 3, 3);
        conv_upd_ref(&shape, &x, &gy, &mut dw_ref);
        let n = Norms::compare(dw_ref.as_slice(), dwb.to_kcrs().as_slice());
        assert!(n.ok(1e-3), "{n}");
    }

    #[test]
    fn copy_scratch_is_reused_across_calls() {
        let shape = ConvShape::new(4, 32, 32, 8, 8, 3, 3, 1, 1);
        let pool = ThreadPool::new(4);
        let b = blocking::choose(&shape);
        let mut plan = UpdPlan::new(shape, b, 4, Backend::Auto, false, &MachineModel::skx(), 0);
        plan.copies = 4; // force the partial-copy path
        let x = Nchw::random(4, 32, 8, 8, 5);
        let gy = Nchw::random(4, 32, 8, 8, 6);
        let xb = BlockedActs::from_nchw(&x, 1);
        let gyb = BlockedActs::from_nchw(&gy, 0);
        let mut dwb = BlockedFilter::zeros(32, 32, 3, 3);
        plan.run(&pool, &xb, &gyb, &mut dwb);
        let first_ptr = plan.copy_scratch.lock().unwrap().as_ref().map(|s| s.as_ptr()).unwrap();
        let out1 = dwb.as_slice().to_vec();
        plan.run(&pool, &xb, &gyb, &mut dwb);
        let second_ptr = plan.copy_scratch.lock().unwrap().as_ref().map(|s| s.as_ptr()).unwrap();
        assert_eq!(first_ptr, second_ptr, "steady-state update must reuse the plan's buffer");
        assert_eq!(out1, dwb.as_slice(), "re-zeroed scratch must reproduce identical dW");
    }

    #[test]
    fn chooser_prefers_copies_for_small_weights() {
        // tiny dW, large activations: reduction is cheap, re-reads are
        // not -> many copies
        let s = ConvShape::new(64, 64, 64, 56, 56, 3, 3, 1, 1);
        let g = choose_copies(&s, 28, &MachineModel::skx());
        assert!(g >= 14, "expected many copies, got {g}");
    }

    #[test]
    fn chooser_prefers_feature_split_for_huge_weights() {
        // 2048×512 1×1 on tiny spatial: dW dwarfs activations
        let s = ConvShape::new(4, 2048, 512, 7, 7, 1, 1, 1, 0);
        let g = choose_copies(&s, 28, &MachineModel::skx());
        assert!(g <= 4, "expected few copies, got {g}");
    }

    #[test]
    fn results_identical_across_team_sizes() {
        let shape = ConvShape::new(3, 32, 32, 8, 8, 3, 3, 1, 1);
        let x = Nchw::random(3, 32, 8, 8, 7);
        let gy = Nchw::random(3, 32, 8, 8, 8);
        let xb = BlockedActs::from_nchw(&x, 1);
        let gyb = BlockedActs::from_nchw(&gy, 0);
        let mut outs: Vec<Vec<f32>> = Vec::new();
        for threads in [1usize, 2, 6] {
            let pool = ThreadPool::new(threads);
            let b = blocking::choose(&shape);
            let plan =
                UpdPlan::new(shape, b, threads, Backend::Auto, false, &MachineModel::skx(), 0);
            let mut dwb = BlockedFilter::zeros(32, 32, 3, 3);
            plan.run(&pool, &xb, &gyb, &mut dwb);
            outs.push(dwb.as_slice().to_vec());
        }
        // different reduction orders cause ulp-level differences only
        for o in &outs[1..] {
            let n = Norms::compare(&outs[0], o);
            assert!(n.ok(1e-5), "{n}");
        }
    }
}
