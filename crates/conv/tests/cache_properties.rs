//! Property-based cache-coherence tests: a plan served from the
//! [`conv::PlanCache`] (a cache *hit*) must produce bit-identical
//! results to a freshly built `ConvLayer` — across backends, fused
//! operators and all three passes. This is the contract that makes
//! sharing plans between networks safe.

use conv::cache::PlanCache;
use conv::fuse::FuseCtx;
use conv::{Backend, ConvLayer, FusedOp, LayerOptions};
use parallel::ThreadPool;
use proptest::prelude::*;
use tensor::rng::SplitMix64;
use tensor::{BlockedActs, BlockedFilter, ConvShape, VLEN};

fn backend_of(idx: usize) -> Backend {
    match idx {
        0 => Backend::Scalar,
        1 => Backend::Intrinsics,
        _ => {
            if jit::jit_available() {
                Backend::Jit
            } else {
                Backend::Intrinsics
            }
        }
    }
}

fn fuse_of(idx: usize) -> FusedOp {
    [
        FusedOp::None,
        FusedOp::Bias,
        FusedOp::Relu,
        FusedOp::BiasRelu,
        FusedOp::EltwiseRelu,
        FusedOp::BiasEltwise,
        FusedOp::BiasEltwiseRelu,
    ][idx]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cache_hit_layer_is_bit_identical_to_fresh_build(
        n in 1usize..3,
        cb in 1usize..3,
        kb in 1usize..3,
        hw in 4usize..10,
        spatial in any::<bool>(),
        stride in 1usize..3,
        backend_idx in 0usize..3,
        fuse_idx in 0usize..7,
        threads in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let (r, pad) = if spatial { (3, 1) } else { (1, 0) };
        prop_assume!(hw + 2 * pad >= r);
        let shape = ConvShape::new(n, cb * VLEN, kb * VLEN, hw, hw, r, r, stride, pad);
        let backend = backend_of(backend_idx);
        let fuse = fuse_of(fuse_idx);
        let opts = LayerOptions::new(threads).with_backend(backend).with_fuse(fuse);

        let cache = PlanCache::new();
        let _warm = cache.get_or_build(shape, opts.clone());
        let cached = cache.get_or_build(shape, opts.clone()); // the hit
        prop_assert_eq!(cache.hits(), 1);
        let fresh = ConvLayer::new(shape, opts);

        let pool = ThreadPool::new(threads);
        let mut rng = SplitMix64::new(seed);
        let mut x = fresh.new_input();
        rng.fill_f32(x.as_mut_slice());
        let mut w = fresh.new_filter();
        rng.fill_f32(w.as_mut_slice());
        let bias: Vec<f32> = (0..shape.k).map(|i| 0.05 * i as f32 - 0.4).collect();
        let residual = BlockedActs::random(shape.n, shape.k, shape.p(), shape.q(), 0, seed ^ 1);
        let ctx = FuseCtx {
            bias: fuse.needs_bias().then_some(&bias[..]),
            eltwise: fuse.needs_eltwise().then_some(&residual),
        };

        // forward: bit-identical
        let mut y_fresh = fresh.new_output();
        let mut y_cached = cached.new_output();
        fresh.forward(&pool, &x, &w, &mut y_fresh, &ctx);
        cached.forward(&pool, &x, &w, &mut y_cached, &ctx);
        prop_assert_eq!(y_fresh.as_slice(), y_cached.as_slice());

        // backward: bit-identical
        let mut gy = fresh.new_dout();
        rng.fill_f32(gy.as_mut_slice());
        let mut gx_fresh = fresh.new_input();
        let mut gx_cached = cached.new_input();
        fresh.backward(&pool, &gy, &w, &mut gx_fresh);
        cached.backward(&pool, &gy, &w, &mut gx_cached);
        prop_assert_eq!(gx_fresh.as_slice(), gx_cached.as_slice());

        // weight update: bit-identical
        let mut dw_fresh = fresh.new_filter();
        let mut dw_cached = fresh.new_filter();
        fresh.update(&pool, &x, &gy, &mut dw_fresh);
        cached.update(&pool, &x, &gy, &mut dw_cached);
        prop_assert_eq!(dw_fresh.as_slice(), dw_cached.as_slice());
    }
}

/// Two *different* cache handles (clones) hand out the same Arc, and a
/// second cache built from scratch produces a plan that still matches
/// bit-for-bit — determinism of the whole setup pipeline.
#[test]
fn independent_caches_build_identical_plans() {
    let shape = ConvShape::new(2, 32, 32, 8, 8, 3, 3, 1, 1);
    let threads = 3;
    let pool = ThreadPool::new(threads);
    let a = PlanCache::new().get_or_build(shape, LayerOptions::new(threads));
    let b = PlanCache::new().get_or_build(shape, LayerOptions::new(threads));

    let x = BlockedActs::random(2, 32, 8, 8, 1, 5);
    let mut w = BlockedFilter::zeros(32, 32, 3, 3);
    SplitMix64::new(6).fill_f32(w.as_mut_slice());
    let mut ya = a.new_output();
    let mut yb = b.new_output();
    a.forward(&pool, &x, &w, &mut ya, &FuseCtx::default());
    b.forward(&pool, &x, &w, &mut yb, &FuseCtx::default());
    assert_eq!(ya.as_slice(), yb.as_slice());
}
