//! Property test for the fused-operator APPLY primitive: every
//! [`FusedOp`] variant's [`apply_tile`] must agree **bit-for-bit**
//! with a naive scalar reference over randomized tile geometries —
//! arbitrary tile position, rows/cols, channel block and physical
//! output padding. This is the kernel the inference BN-folding pass
//! rides on, so the scalar model is written here from the operator
//! definitions, independent of the production loops.

use conv::fuse::{apply_tile, ApplyRec, FuseCtx};
use conv::FusedOp;
use proptest::prelude::*;
use tensor::rng::SplitMix64;
use tensor::{BlockedActs, VLEN};

/// The scalar model: apply `op` to the element at lane `v` given its
/// current value, the channel bias and the residual element —
/// mirrors the documented semantics of each variant (bias first,
/// residual second, ReLU last).
fn scalar_ref(op: FusedOp, x: f32, bias: f32, elt: f32) -> f32 {
    match op {
        FusedOp::None => x,
        FusedOp::Bias => x + bias,
        FusedOp::Relu => x.max(0.0),
        FusedOp::BiasRelu => (x + bias).max(0.0),
        FusedOp::Eltwise => x + elt,
        FusedOp::EltwiseRelu => (x + elt).max(0.0),
        FusedOp::BiasEltwise => (x + bias) + elt,
        FusedOp::BiasEltwiseRelu => ((x + bias) + elt).max(0.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn apply_tile_matches_scalar_reference(
        op_idx in 0usize..FusedOp::ALL.len(),
        n in 1usize..3,
        kb_total in 1usize..4,
        h in 1usize..9,
        w in 1usize..9,
        pad in 0usize..3,
        // tile anchor + extent, clamped to the tensor below
        kb_pick in 0usize..4,
        row0_pick in 0usize..9,
        col0_pick in 0usize..9,
        rows_pick in 1usize..9,
        cols_pick in 1usize..9,
        seed in 0u64..10_000,
    ) {
        let op = FusedOp::ALL[op_idx];
        let kb = kb_pick % kb_total;
        let row0 = row0_pick % h;
        let col0 = col0_pick % w;
        let rows = rows_pick.min(h - row0);
        let cols = cols_pick.min(w - col0);
        let n_pick = seed as usize % n;

        let mut out = BlockedActs::random(n, kb_total * VLEN, h, w, pad, seed);
        let residual = BlockedActs::random(n, kb_total * VLEN, h, w, pad, seed ^ 0xbeef);
        let mut rng = SplitMix64::new(seed ^ 0x51ab);
        let bias: Vec<f32> = (0..kb_total * VLEN).map(|_| rng.next_f32()).collect();
        let before = out.clone();

        let rec = ApplyRec {
            out_off: out.pix_offset_logical(n_pick, kb, row0 as isize, col0 as isize) as u32,
            kb: kb as u16,
            rows: rows as u8,
            cols: cols as u16,
            row_stride: out.stride_h() as u32,
        };
        let ctx = FuseCtx {
            bias: op.needs_bias().then_some(&bias[..]),
            eltwise: op.needs_eltwise().then_some(&residual),
        };
        // SAFETY: the rec is built from the tensor's own layout and the
        // residual shares its exact physical geometry.
        unsafe { apply_tile(op, &rec, out.as_mut_ptr(), &ctx) };

        // expected tensor: scalar model over the tile's coordinates,
        // everything else (other blocks/samples, the physical padding
        // border) untouched — compared bit-for-bit over the whole
        // backing slice
        let mut expected = before.clone();
        for hi in row0..row0 + rows {
            for wi in col0..col0 + cols {
                for v in 0..VLEN {
                    let c = kb * VLEN + v;
                    let x = before.get(n_pick, c, hi, wi);
                    let want = scalar_ref(op, x, bias[c], residual.get(n_pick, c, hi, wi));
                    expected.set(n_pick, c, hi, wi, want);
                }
            }
        }
        let got: Vec<u32> = out.as_slice().iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = expected.as_slice().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, want, "{:?} tile at n={} kb={} ({},{})x({},{}) pad={}",
            op, n_pick, kb, row0, col0, rows, cols, pad);
    }
}
