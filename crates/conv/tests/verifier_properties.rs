//! Property-based tests of the static kernel verifier against the
//! emitters: every kernel the plan layer can ever request — any legal
//! shape, any autotuner candidate blocking, any spatial remainder
//! variant, prefetch on or off — must verify clean through all three
//! assemblers. None of this needs executable memory, so the sweep runs
//! on hosts without AVX-512 too.
//!
//! The flip side: shapes that fail their own `validate()` must be
//! rejected *before* the verifier (both the emitters and `kver::verify`
//! refuse them by panicking), so the verifier's clean-pass guarantee is
//! never diluted by illegal inputs.

use conv::fwd::kernel_shape_variants;
use conv::tune;
use conv::upd::upd_shape_variants;
use jit::{assemble_fwd, assemble_quant, assemble_upd};
use kver::{verify, KernelSpec};
use microkernel::KernelShape;
use proptest::prelude::*;
use tensor::{ConvShape, VLEN};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All three emitters produce verifier-clean code for every kernel
    /// variant of every autotuner candidate of a random legal layer.
    #[test]
    fn every_candidate_kernel_verifies_clean(
        cb in 1usize..5,
        kb in 1usize..3,
        h in 1usize..40,
        w in 1usize..40,
        spatial in any::<bool>(),
        stride in 1usize..3,
        prefetch in any::<bool>(),
    ) {
        let (r, pad) = if spatial { (3, 1) } else { (1, 0) };
        prop_assume!(h + 2 * pad >= r && w + 2 * pad >= r);
        let shape = ConvShape::new(1, cb * VLEN, kb * VLEN, h, w, r, r, stride, pad);
        for blocking in tune::candidates(&shape) {
            for sh in kernel_shape_variants(&shape, &blocking, prefetch) {
                let fwd = verify(&assemble_fwd(&sh), &KernelSpec::FwdF32(sh));
                prop_assert!(fwd.is_ok(), "fwd {sh:?}: {:?}", fwd.unwrap_err());
                let quant = verify(&assemble_quant(&sh), &KernelSpec::QuantI16(sh));
                prop_assert!(quant.is_ok(), "quant {sh:?}: {:?}", quant.unwrap_err());
            }
            for sh in upd_shape_variants(&shape, &blocking, prefetch) {
                let upd = verify(&assemble_upd(&sh), &KernelSpec::UpdF32(sh));
                prop_assert!(upd.is_ok(), "upd {sh:?}: {:?}", upd.unwrap_err());
            }
        }
    }

    /// Shapes rejected by `KernelShape::validate` never reach the
    /// verifier: both the emitter and `kver::verify` panic on them
    /// rather than producing/judging code for an illegal contract.
    #[test]
    fn invalid_shapes_are_rejected_before_verification(
        rbp in 5usize..10,
        rbq in 6usize..10,
    ) {
        // register budget exceeded: rbp·rbq > 28 accumulators
        prop_assume!(rbp * rbq > 28);
        let sh = KernelShape {
            rbp,
            rbq,
            r: 1,
            s: 1,
            stride: 1,
            cb_inner: 1,
            in_row_stride: (rbq + 2) * VLEN,
            in_cb_stride: (rbp + 2) * (rbq + 2) * VLEN,
            out_row_stride: rbq * VLEN,
            out_col_stride: VLEN,
            init_zero: true,
            prefetch: false,
        };
        prop_assert!(std::panic::catch_unwind(|| sh.validate()).is_err());
        prop_assert!(std::panic::catch_unwind(|| assemble_fwd(&sh)).is_err());
        // some well-formed bytes from a *valid* kernel…
        let good = ConvShape::new(1, VLEN, VLEN, 8, 8, 1, 1, 1, 0);
        let code = assemble_fwd(&kernel_shape_variants(&good, &tune::candidates(&good)[0], false)[0]);
        // …still cannot be verified against an illegal spec
        prop_assert!(
            std::panic::catch_unwind(|| verify(&code, &KernelSpec::FwdF32(sh))).is_err()
        );
    }
}
