//! Property-based contracts of the int8/VNNI quantized path
//! (DESIGN.md §11): the quantize→dequantize round trip is bounded by
//! half a quantization step, the rounding rule is round-to-nearest-even
//! saturating at the symmetric i8 edges, the restricted accumulation
//! chain is exact in int32, and every quantized plan's blocking obeys
//! the same legality invariants `blocking_properties.rs` pins for the
//! f32 engine.

use conv::blocking::{MAX_ACC, MIN_CHAINS};
use conv::quant::{QuantFwdPlan, QuantOptions};
use parallel::ThreadPool;
use proptest::prelude::*;
use tensor::vnni::{rne_sat_i8, BlockedI32, I8_QMAX};
use tensor::{BlockedActs, ConvShape, VnniActs, VnniFilter, VLEN};

/// Same plane-coverage check the f32 blocking properties pin.
fn assert_tiles_cover_plane(rbp: usize, rbq: usize, p: usize, q: usize) {
    let (tp, tq) = (p.div_ceil(rbp), q.div_ceil(rbq));
    assert!((tp - 1) * rbp < p, "rbp={rbp} p={p}");
    assert!((tq - 1) * rbq < q, "rbq={rbq} q={q}");
    assert!(tp * rbp >= p, "rbp={rbp} p={p}");
    assert!(tq * rbq >= q, "rbq={rbq} q={q}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `rne_sat_i8` is round-to-nearest-even saturating at `±127`:
    /// in-range values land within half a step, out-of-range values
    /// pin to the edges, and exact halves round to the even neighbor.
    #[test]
    fn rounding_is_rne_and_saturates_at_the_i8_edges(v in -300.0f32..300.0) {
        let q = rne_sat_i8(v);
        prop_assert!((-127..=127).contains(&q), "{v} -> {q}");
        if v >= I8_QMAX {
            prop_assert_eq!(q, 127, "{}", v);
        } else if v <= -I8_QMAX {
            prop_assert_eq!(q, -127, "{}", v);
        } else {
            prop_assert!((q as f32 - v).abs() <= 0.5, "{} -> {}", v, q);
        }
    }

    /// Ties round to even, symmetrically in sign — the bias-free rule
    /// the requantization step depends on.
    #[test]
    fn ties_round_to_even(k in -126i32..=125) {
        let v = k as f32 + 0.5;
        let q = rne_sat_i8(v);
        prop_assert_eq!(q % 2, 0, "{} -> {}: ties must land on even", v, q);
        prop_assert!((q as f32 - v).abs() <= 0.5, "{} -> {}", v, q);
        let qn = rne_sat_i8(-v);
        prop_assert_eq!(qn, -q, "RNE is symmetric in sign: {} -> {}, {} -> {}", v, q, -v, qn);
    }

    /// Per-channel quantize→dequantize reconstructs every in-range
    /// value within half a quantization step (`s/2`), and values past
    /// the channel's amax saturate to `±127` instead of wrapping.
    #[test]
    fn per_channel_round_trip_is_bounded_by_half_a_step(
        vals in prop::collection::vec(-6.0f32..6.0, VLEN * 4),
        amax in prop::collection::vec(0.25f32..4.0, VLEN),
    ) {
        // one lane-exact channel block, 2×2 plane, no padding: every
        // storage element is a logical element
        let (n, c, h, w) = (1usize, VLEN, 2usize, 2usize);
        let mut x = BlockedActs::zeros(n, c, h, w, 0);
        x.as_mut_slice().copy_from_slice(&vals);
        let scale: Vec<f32> = amax.iter().map(|a| a / I8_QMAX).collect();
        let inv: Vec<f32> = scale.iter().map(|s| 1.0 / s).collect();
        let mut xq = VnniActs::zeros(n, c, h, w, 0);
        xq.quantize_per_channel_into(&x, &inv);
        for ch in 0..c {
            for (hh, ww) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                let v = x.get(0, ch, hh, ww);
                let q = xq.get(0, ch, hh, ww);
                prop_assert!((-127..=127).contains(&q), "ch {ch}: {v} -> {q}");
                if v.abs() <= amax[ch] {
                    let err = (v - q as f32 * scale[ch]).abs();
                    prop_assert!(
                        err <= 0.5 * scale[ch] * 1.001,
                        "ch {}: {} -> {} (step {}): err {}", ch, v, q, scale[ch], err
                    );
                } else {
                    prop_assert_eq!(
                        q, 127 * v.signum() as i16,
                        "ch {}: {} past amax {} must saturate", ch, v, amax[ch]
                    );
                }
            }
        }
    }

    /// The paper's restricted accumulation chain (Section II-K) is a
    /// pure scheduling choice: any chain limit produces bit-identical
    /// int32 accumulators.
    #[test]
    fn chain_limit_is_exact_in_int32(chain in 1usize..=8) {
        let shape = ConvShape::new(1, 128, 16, 6, 6, 1, 1, 1, 0);
        let pool = ThreadPool::new(2);
        let xq = VnniActs::random(1, 128, 6, 6, 0, 3);
        let wq = VnniFilter::random(16, 128, 1, 1, 4);
        let reference = {
            let plan = QuantFwdPlan::new(shape, &QuantOptions::new(2).with_chain_limit(1));
            let mut out = BlockedI32::zeros(1, 16, 6, 6);
            plan.run(&pool, &xq, &wq, &mut out);
            out.as_slice().to_vec()
        };
        let plan = QuantFwdPlan::new(shape, &QuantOptions::new(2).with_chain_limit(chain));
        let mut out = BlockedI32::zeros(1, 16, 6, 6);
        plan.run(&pool, &xq, &wq, &mut out);
        prop_assert_eq!(reference, out.as_slice().to_vec(), "chain={}", chain);
    }
}

proptest! {
    // plan construction JITs kernels and records streams — fewer cases
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every quantized plan's blocking satisfies the legality
    /// invariants the f32 engine pins: register budget, latency
    /// floor, exact plane tiling, `cb_inner` divisibility — for any
    /// chain limit and thread count.
    #[test]
    fn quant_plan_blocking_is_always_legal(
        cb in 1usize..5,
        kb in 1usize..4,
        h in 1usize..40,
        w in 1usize..40,
        spatial in any::<bool>(),
        stride in 1usize..3,
        chain in 1usize..=8,
        threads in 1usize..4,
    ) {
        let (r, pad) = if spatial { (3, 1) } else { (1, 0) };
        prop_assume!(h + 2 * pad >= r && w + 2 * pad >= r);
        let shape = ConvShape::new(1, cb * VLEN, kb * VLEN, h, w, r, r, stride, pad);
        let (p, q) = (shape.p(), shape.q());
        let plan = QuantFwdPlan::new(
            shape,
            &QuantOptions::new(threads).with_chain_limit(chain),
        );
        let b = plan.blocking();

        prop_assert!(b.rbp * b.rbq <= MAX_ACC, "{}: {:?}", shape, b);
        prop_assert!(b.rbp >= 1 && b.rbp <= p, "{}: {:?}", shape, b);
        prop_assert!(b.rbq >= 1 && b.rbq <= q, "{}: {:?}", shape, b);
        if p * q >= MIN_CHAINS {
            prop_assert!(
                b.rbp * b.rbq >= MIN_CHAINS.min(p.min(MAX_ACC / b.rbq) * b.rbq),
                "{}: {:?}", shape, b
            );
        }
        prop_assert!(shape.cb().is_multiple_of(b.cb_inner), "{}: {:?}", shape, b);
        assert_tiles_cover_plane(b.rbp, b.rbq, p, q);
    }
}
