//! Property-based legality tests of the blocking rule and the
//! autotuner's candidate space, plus the cross-crate consistency
//! contract: [`machine::traffic::model_register_blocking`] and
//! [`conv::blocking::choose`] share one register-blocking rule, so the
//! traffic model always scores the blocking the kernels actually run.

use conv::blocking::{choose, MAX_ACC, MIN_CHAINS};
use conv::tune;
use machine::MachineModel;
use proptest::prelude::*;
use tensor::{ConvShape, VLEN};

/// Every P×Q plane must be tiled exactly: full tiles plus (possibly)
/// one remainder row/column of tiles, with no pixel left uncovered and
/// no tile starting outside the plane.
fn assert_tiles_cover_plane(rbp: usize, rbq: usize, p: usize, q: usize) {
    let (tp, tq) = (p.div_ceil(rbp), q.div_ceil(rbq));
    // the last tile still starts inside the plane...
    assert!((tp - 1) * rbp < p, "rbp={rbp} p={p}");
    assert!((tq - 1) * rbq < q, "rbq={rbq} q={q}");
    // ...and the tiling reaches the far edge (remainder tiles included)
    assert!(tp * rbp >= p, "rbp={rbp} p={p}");
    assert!(tq * rbq >= q, "rbq={rbq} q={q}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The heuristic's result is always legal: register budget
    /// respected, FMA latency covered whenever the plane allows it,
    /// plane tiled exactly, `cb_inner` a divisor of `Cb`, update
    /// blocking within bounds.
    #[test]
    fn chosen_blocking_is_always_legal(
        cb in 1usize..6,
        kb in 1usize..4,
        h in 1usize..120,
        w in 1usize..120,
        spatial in any::<bool>(),
        stride in 1usize..3,
    ) {
        let (r, pad) = if spatial { (3, 1) } else { (1, 0) };
        prop_assume!(h + 2 * pad >= r && w + 2 * pad >= r);
        let shape = ConvShape::new(1, cb * VLEN, kb * VLEN, h, w, r, r, stride, pad);
        let (p, q) = (shape.p(), shape.q());
        let b = choose(&shape);

        prop_assert!(b.rbp * b.rbq <= MAX_ACC, "{}: {:?}", shape, b);
        prop_assert!(b.rbp >= 1 && b.rbp <= p, "{}: {:?}", shape, b);
        prop_assert!(b.rbq >= 1 && b.rbq <= q, "{}: {:?}", shape, b);
        // MIN_CHAINS covered when the plane (under the register
        // budget) allows it: the budget caps coverage at MAX_ACC, the
        // plane at p*q
        if p * q >= MIN_CHAINS {
            prop_assert!(
                b.rbp * b.rbq >= MIN_CHAINS.min(p.min(MAX_ACC / b.rbq) * b.rbq),
                "{}: {:?}", shape, b
            );
        }
        prop_assert!(shape.cb().is_multiple_of(b.cb_inner), "{}: {:?}", shape, b);
        prop_assert!(b.upd_bp >= 1 && b.upd_bp <= p, "{}: {:?}", shape, b);
        prop_assert_eq!(b.upd_bq, q, "update kernels sweep full rows");
        assert_tiles_cover_plane(b.rbp, b.rbq, p, q);
    }

    /// Every candidate the autotuner enumerates satisfies the same
    /// legality constraints, and the set always contains the
    /// heuristic's choice (so a tuned plan can never be *less* legal
    /// or lose the baseline).
    #[test]
    fn every_enumerated_candidate_is_legal(
        cb in 1usize..6,
        kb in 1usize..4,
        h in 1usize..80,
        w in 1usize..80,
        spatial in any::<bool>(),
        stride in 1usize..3,
    ) {
        let (r, pad) = if spatial { (3, 1) } else { (1, 0) };
        prop_assume!(h + 2 * pad >= r && w + 2 * pad >= r);
        let shape = ConvShape::new(1, cb * VLEN, kb * VLEN, h, w, r, r, stride, pad);
        let (p, q) = (shape.p(), shape.q());
        let cands = tune::candidates(&shape);
        prop_assert!(!cands.is_empty(), "{}", shape);
        let max_chains = cands.iter().map(|b| b.rbp * b.rbq).max().unwrap();
        for b in &cands {
            prop_assert!(b.rbp * b.rbq <= MAX_ACC, "{}: {:?}", shape, b);
            prop_assert!(b.rbp >= 1 && b.rbp <= p, "{}: {:?}", shape, b);
            prop_assert!(b.rbq >= 1 && b.rbq <= q, "{}: {:?}", shape, b);
            prop_assert!(
                b.rbp * b.rbq >= MIN_CHAINS.min(max_chains),
                "candidate below the latency floor the plane allows: {}: {:?}", shape, b
            );
            prop_assert!(shape.cb().is_multiple_of(b.cb_inner), "{}: {:?}", shape, b);
            prop_assert!(b.upd_bp >= 1 && b.upd_bp <= p, "{}: {:?}", shape, b);
            prop_assert_eq!(b.upd_bq, q, "update kernels sweep full rows");
            assert_tiles_cover_plane(b.rbp, b.rbq, p, q);
        }
        let h_choice = choose(&shape);
        prop_assert!(
            cands.contains(&h_choice),
            "{}: heuristic {:?} missing from candidate space", shape, h_choice
        );
    }

    /// Cross-crate consistency: the traffic model's assumed register
    /// blocking equals the engine's chosen one on SKX (whose
    /// `min_accum_chains` is the engine's `MIN_CHAINS`) — the two
    /// crates can never silently disagree again.
    #[test]
    fn traffic_model_and_engine_agree_on_register_blocking(
        cb in 1usize..4,
        h in 1usize..120,
        w in 1usize..120,
        spatial in any::<bool>(),
        stride in 1usize..3,
    ) {
        let (r, pad) = if spatial { (3, 1) } else { (1, 0) };
        prop_assume!(h + 2 * pad >= r && w + 2 * pad >= r);
        let shape = ConvShape::new(1, cb * VLEN, cb * VLEN, h, w, r, r, stride, pad);
        let skx = MachineModel::skx();
        prop_assert_eq!(skx.min_accum_chains(), MIN_CHAINS);
        let (mrbp, mrbq) = machine::traffic::model_register_blocking(&skx, &shape);
        let b = choose(&shape);
        prop_assert_eq!((mrbp, mrbq), (b.rbp, b.rbq), "{}", shape);
    }
}

/// The paper's concrete geometries, pinned (not random): the traffic
/// model and the engine agree on every ResNet-50 Table I shape.
#[test]
fn table1_shapes_agree_across_crates() {
    let skx = MachineModel::skx();
    for shape in [
        ConvShape::new(1, 64, 64, 56, 56, 3, 3, 1, 1),
        ConvShape::new(1, 64, 256, 56, 56, 1, 1, 1, 0),
        ConvShape::new(1, 256, 128, 56, 56, 1, 1, 2, 0),
        ConvShape::new(1, 128, 128, 28, 28, 3, 3, 1, 1),
        ConvShape::new(1, 256, 256, 14, 14, 3, 3, 1, 1),
        ConvShape::new(1, 512, 512, 7, 7, 3, 3, 1, 1),
        ConvShape::new(1, 1024, 2048, 14, 14, 1, 1, 2, 0),
    ] {
        let b = choose(&shape);
        assert_eq!(
            machine::traffic::model_register_blocking(&skx, &shape),
            (b.rbp, b.rbq),
            "{shape}"
        );
    }
}
