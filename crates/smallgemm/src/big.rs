//! Cache-blocked large GEMM — the stand-in for the MKL SGEMM call used
//! by the paper's "blas" and "im2col" baselines.
//!
//! Deliberately a *generic* GEMM: it blocks for cache and vectorizes,
//! but it cannot exploit convolution-specific structure (output tiles
//! revisited across R×S taps, shared weight panels across pixel rows).
//! That gap is exactly what Figures 4/6 measure.

/// Blocking parameters (bytes-level reasoning: fit an A panel and a B
/// panel in L2, a B sub-panel in L1).
const MC: usize = 64;
const KC: usize = 256;
const NC: usize = 512;

/// `C[M×N] (+)= A[M×K] · B[K×N]`, row-major, contiguous leading dims.
///
/// `beta == 0.0` overwrites C; `beta == 1.0` accumulates.
#[allow(clippy::too_many_arguments)]
pub fn big_gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    assert!(lda >= k && ldb >= n && ldc >= n, "leading dims too small");
    assert!(a.len() >= (m - 1) * lda + k, "A too small");
    assert!(b.len() >= (k - 1) * ldb + n, "B too small");
    assert!(c.len() >= (m - 1) * ldc + n, "C too small");

    if beta == 0.0 {
        for i in 0..m {
            c[i * ldc..i * ldc + n].fill(0.0);
        }
    }

    let mut jc = 0;
    while jc < n {
        let nb = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kb = KC.min(k - pc);
            let mut ic = 0;
            while ic < m {
                let mb = MC.min(m - ic);
                macro_kernel(mb, nb, kb, a, lda, ic, pc, b, ldb, jc, c, ldc);
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Inner macro kernel over one (MC × KC) A block and (KC × NC) B block.
#[allow(clippy::too_many_arguments)]
#[inline]
fn macro_kernel(
    mb: usize,
    nb: usize,
    kb: usize,
    a: &[f32],
    lda: usize,
    ic: usize,
    pc: usize,
    b: &[f32],
    ldb: usize,
    jc: usize,
    c: &mut [f32],
    ldc: usize,
) {
    // 2-row micro kernel: two C rows accumulate in registers per sweep;
    // the j loop autovectorizes (contiguous C and B rows).
    let mut i = 0;
    while i + 2 <= mb {
        let (r0, r1) = (ic + i, ic + i + 1);
        for p in 0..kb {
            let a0 = a[r0 * lda + pc + p];
            let a1 = a[r1 * lda + pc + p];
            let brow = &b[(pc + p) * ldb + jc..(pc + p) * ldb + jc + nb];
            // split the mutable C rows
            let (head, tail) = c.split_at_mut(r1 * ldc + jc);
            let c0 = &mut head[r0 * ldc + jc..r0 * ldc + jc + nb];
            let c1 = &mut tail[..nb];
            for j in 0..nb {
                c0[j] += a0 * brow[j];
                c1[j] += a1 * brow[j];
            }
        }
        i += 2;
    }
    if i < mb {
        let r0 = ic + i;
        for p in 0..kb {
            let a0 = a[r0 * lda + pc + p];
            let brow = &b[(pc + p) * ldb + jc..(pc + p) * ldb + jc + nb];
            let c0 = &mut c[r0 * ldc + jc..r0 * ldc + jc + nb];
            for j in 0..nb {
                c0[j] += a0 * brow[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_ref;

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn check(m: usize, n: usize, k: usize, beta: f32) {
        let a = fill(7, m * k);
        let b = fill(11, k * n);
        let mut c_test = fill(13, m * n);
        let mut c_ref = c_test.clone();
        big_gemm(m, n, k, &a, k, &b, n, beta, &mut c_test, n);
        gemm_ref(m, n, k, &a, k, &b, n, beta, &mut c_ref, n);
        for (i, (x, y)) in c_test.iter().zip(&c_ref).enumerate() {
            assert!(
                (x - y).abs() < 1e-3 * (1.0 + y.abs()),
                "m={m} n={n} k={k} beta={beta} i={i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_reference_small() {
        check(4, 4, 4, 0.0);
        check(4, 4, 4, 1.0);
        check(1, 1, 1, 0.0);
    }

    #[test]
    fn matches_reference_non_divisible_blocks() {
        // sizes straddling the MC/KC/NC block boundaries
        check(65, 513, 257, 0.0);
        check(63, 100, 300, 1.0);
    }

    #[test]
    fn matches_reference_tall_skinny() {
        // conv-like: M = output channels, N = pixels, K = C*R*S
        check(64, 784, 576, 0.0);
    }
}
