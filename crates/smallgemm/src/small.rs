//! Runtime-specialized small GEMM (the LIBXSMM idea, Section II-D).
//!
//! A [`SmallGemm`] is constructed once per (M, N, K, ld, beta) tuple —
//! analogous to a `libxsmm_dispatch` call — and then invoked many
//! times. Specialization happens at construction: the best kernel
//! variant for the host ISA and the shape is selected, with `N == 16`
//! shapes (one AVX-512 register of output channels) getting the
//! broadcast-FMA kernel the paper describes for convolutions.

/// Function signature of a dispatched kernel.
type Kernel = unsafe fn(
    m: usize,
    n: usize,
    k: usize,
    a: *const f32,
    lda: usize,
    b: *const f32,
    ldb: usize,
    c: *mut f32,
    ldc: usize,
);

/// A dispatched small-GEMM handle for `C[M×N] (+)= A[M×K] · B[K×N]`.
#[derive(Clone)]
pub struct SmallGemm {
    m: usize,
    n: usize,
    k: usize,
    lda: usize,
    ldb: usize,
    ldc: usize,
    accumulate: bool,
    kernel: Kernel,
    /// Human-readable name of the selected variant (for logs/tests).
    pub variant: &'static str,
}

impl SmallGemm {
    /// Dispatch a kernel for the given shape.
    ///
    /// `accumulate == true` ⇒ `C += A·B` (beta = 1), else `C = A·B`.
    pub fn new(
        m: usize,
        n: usize,
        k: usize,
        lda: usize,
        ldb: usize,
        ldc: usize,
        accumulate: bool,
    ) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "degenerate GEMM");
        assert!(lda >= k && ldb >= n && ldc >= n, "leading dims too small");
        let (kernel, variant): (Kernel, &'static str) = {
            #[cfg(target_arch = "x86_64")]
            {
                if n == 16 && std::arch::is_x86_feature_detected!("avx512f") {
                    if accumulate {
                        (n16_avx512_acc as Kernel, "avx512-n16-acc")
                    } else {
                        (n16_avx512_set as Kernel, "avx512-n16-set")
                    }
                } else if accumulate {
                    (generic_acc as Kernel, "generic-acc")
                } else {
                    (generic_set as Kernel, "generic-set")
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                if accumulate {
                    (generic_acc as Kernel, "generic-acc")
                } else {
                    (generic_set as Kernel, "generic-set")
                }
            }
        };
        Self { m, n, k, lda, ldb, ldc, accumulate, kernel, variant }
    }

    /// Shape accessors.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.m, self.n, self.k)
    }

    /// Execute on slices (bounds-checked entry point).
    pub fn run(&self, a: &[f32], b: &[f32], c: &mut [f32]) {
        assert!(a.len() >= (self.m - 1) * self.lda + self.k, "A too small");
        assert!(b.len() >= (self.k - 1) * self.ldb + self.n, "B too small");
        assert!(c.len() >= (self.m - 1) * self.ldc + self.n, "C too small");
        // SAFETY: bounds checked above; kernels only touch the described
        // index ranges.
        unsafe { self.run_ptr(a.as_ptr(), b.as_ptr(), c.as_mut_ptr()) }
    }

    /// Execute on raw pointers (the hot path used by the engines).
    ///
    /// # Safety
    /// `a`, `b`, `c` must be valid for the (m,k,lda)/(k,n,ldb)/(m,n,ldc)
    /// index ranges, and `c` must not alias `a`/`b`.
    #[inline]
    pub unsafe fn run_ptr(&self, a: *const f32, b: *const f32, c: *mut f32) {
        (self.kernel)(self.m, self.n, self.k, a, self.lda, b, self.ldb, c, self.ldc)
    }

    /// Whether this handle accumulates into C.
    pub fn accumulates(&self) -> bool {
        self.accumulate
    }
}

/// Generic fallbacks (any N); the optimizer autovectorizes the j loop.
#[allow(clippy::too_many_arguments)]
unsafe fn generic_acc(
    m: usize,
    n: usize,
    k: usize,
    a: *const f32,
    lda: usize,
    b: *const f32,
    ldb: usize,
    c: *mut f32,
    ldc: usize,
) {
    generic_impl::<true>(m, n, k, a, lda, b, ldb, c, ldc)
}

#[allow(clippy::too_many_arguments)]
unsafe fn generic_set(
    m: usize,
    n: usize,
    k: usize,
    a: *const f32,
    lda: usize,
    b: *const f32,
    ldb: usize,
    c: *mut f32,
    ldc: usize,
) {
    generic_impl::<false>(m, n, k, a, lda, b, ldb, c, ldc)
}

#[allow(clippy::too_many_arguments)]
#[inline]
unsafe fn generic_impl<const ACC: bool>(
    m: usize,
    n: usize,
    k: usize,
    a: *const f32,
    lda: usize,
    b: *const f32,
    ldb: usize,
    c: *mut f32,
    ldc: usize,
) {
    for i in 0..m {
        let crow = c.add(i * ldc);
        if !ACC {
            for j in 0..n {
                *crow.add(j) = 0.0;
            }
        }
        for p in 0..k {
            let av = *a.add(i * lda + p);
            let brow = b.add(p * ldb);
            for j in 0..n {
                *crow.add(j) += av * *brow.add(j);
            }
        }
    }
}

/// AVX-512 kernel, N = 16, accumulate: one zmm holds a full C row.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
unsafe fn n16_avx512_acc(
    m: usize,
    _n: usize,
    k: usize,
    a: *const f32,
    lda: usize,
    b: *const f32,
    ldb: usize,
    c: *mut f32,
    ldc: usize,
) {
    n16_avx512_impl::<true>(m, k, a, lda, b, ldb, c, ldc)
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
unsafe fn n16_avx512_set(
    m: usize,
    _n: usize,
    k: usize,
    a: *const f32,
    lda: usize,
    b: *const f32,
    ldb: usize,
    c: *mut f32,
    ldc: usize,
) {
    n16_avx512_impl::<false>(m, k, a, lda, b, ldb, c, ldc)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
// (m, k, a, lda, b, ldb, c, ldc) is the BLAS calling convention.
#[allow(clippy::too_many_arguments)]
unsafe fn n16_avx512_impl<const ACC: bool>(
    m: usize,
    k: usize,
    a: *const f32,
    lda: usize,
    b: *const f32,
    ldb: usize,
    c: *mut f32,
    ldc: usize,
) {
    use std::arch::x86_64::*;
    // process rows of C in pairs to expose two accumulation chains
    let mut i = 0;
    while i + 2 <= m {
        let mut acc0 = if ACC { _mm512_loadu_ps(c.add(i * ldc)) } else { _mm512_setzero_ps() };
        let mut acc1 =
            if ACC { _mm512_loadu_ps(c.add((i + 1) * ldc)) } else { _mm512_setzero_ps() };
        for p in 0..k {
            let brow = _mm512_loadu_ps(b.add(p * ldb));
            acc0 = _mm512_fmadd_ps(_mm512_set1_ps(*a.add(i * lda + p)), brow, acc0);
            acc1 = _mm512_fmadd_ps(_mm512_set1_ps(*a.add((i + 1) * lda + p)), brow, acc1);
        }
        _mm512_storeu_ps(c.add(i * ldc), acc0);
        _mm512_storeu_ps(c.add((i + 1) * ldc), acc1);
        i += 2;
    }
    if i < m {
        let mut acc = if ACC { _mm512_loadu_ps(c.add(i * ldc)) } else { _mm512_setzero_ps() };
        for p in 0..k {
            let brow = _mm512_loadu_ps(b.add(p * ldb));
            acc = _mm512_fmadd_ps(_mm512_set1_ps(*a.add(i * lda + p)), brow, acc);
        }
        _mm512_storeu_ps(c.add(i * ldc), acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_ref;

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn check(m: usize, n: usize, k: usize, accumulate: bool) {
        let a = fill(m as u64 * 31 + k as u64, m * k);
        let b = fill(n as u64 * 17 + 3, k * n);
        let mut c_test = fill(99, m * n);
        let mut c_ref = c_test.clone();
        let g = SmallGemm::new(m, n, k, k, n, n, accumulate);
        g.run(&a, &b, &mut c_test);
        gemm_ref(m, n, k, &a, k, &b, n, if accumulate { 1.0 } else { 0.0 }, &mut c_ref, n);
        for (i, (x, y)) in c_test.iter().zip(&c_ref).enumerate() {
            assert!((x - y).abs() < 1e-4, "m={m} n={n} k={k} acc={accumulate} i={i}: {x} vs {y}");
        }
    }

    #[test]
    fn n16_matches_reference() {
        for m in [1usize, 2, 3, 7, 14, 28] {
            for k in [1usize, 4, 16, 32] {
                check(m, 16, k, true);
                check(m, 16, k, false);
            }
        }
    }

    #[test]
    fn generic_shapes_match_reference() {
        for (m, n, k) in [(3usize, 5usize, 7usize), (16, 8, 16), (2, 24, 4)] {
            check(m, n, k, true);
            check(m, n, k, false);
        }
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn dispatch_picks_avx512_for_n16() {
        if std::arch::is_x86_feature_detected!("avx512f") {
            let g = SmallGemm::new(4, 16, 16, 16, 16, 16, true);
            assert!(g.variant.starts_with("avx512"), "{}", g.variant);
        }
    }
}
