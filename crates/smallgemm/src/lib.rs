//! Small-GEMM library — the LIBXSMM \[14\] substrate.
//!
//! The paper builds its convolution microkernels on the insight that
//! the innermost computation is a sequence of *small* GEMMs whose `M`
//! and `K` are multiples of the machine's vector length (Section II-D),
//! and that statically-tuned BLAS calls lose badly at these sizes. This
//! crate provides:
//!
//! * [`gemm_ref`] — the textbook triple loop (the correctness oracle,
//!   and the "autovec" baseline's inner kernel),
//! * [`SmallGemm`] — a runtime-specialized small GEMM for row-major
//!   `C[M×N] += A[M×K] · B[K×N]` with `N = 16` (one zmm of output
//!   channels): the "load B-row, broadcast A, FMA" pattern,
//! * [`big_gemm`] — a cache-blocked large GEMM standing in for the MKL
//!   SGEMM call of the "blas"/"im2col" baselines.
//!
//! All kernels are f32 and row-major.

mod big;
mod small;

pub use big::big_gemm;
pub use small::SmallGemm;

/// Reference GEMM: `C[M×N] (+)= A[M×K] · B[K×N]`, row-major with leading
/// dimensions. `beta == 0.0` overwrites C, `beta == 1.0` accumulates.
#[allow(clippy::too_many_arguments)]
pub fn gemm_ref(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    assert!(lda >= k && ldb >= n && ldc >= n, "leading dimensions too small");
    assert!(a.len() >= (m - 1) * lda + k, "A too small");
    assert!(b.len() >= (k - 1) * ldb + n, "B too small");
    assert!(c.len() >= (m - 1) * ldc + n, "C too small");
    for i in 0..m {
        for j in 0..n {
            let mut acc = if beta == 0.0 { 0.0 } else { c[i * ldc + j] * beta };
            for p in 0..k {
                acc += a[i * lda + p] * b[p * ldb + j];
            }
            c[i * ldc + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn ref_gemm_identity() {
        // A = I (4x4), C = A*B must equal B
        let mut a = vec![0.0f32; 16];
        for i in 0..4 {
            a[i * 4 + i] = 1.0;
        }
        let b = fill(1, 16);
        let mut c = vec![0.0f32; 16];
        gemm_ref(4, 4, 4, &a, 4, &b, 4, 0.0, &mut c, 4);
        assert_eq!(c, b);
    }

    #[test]
    fn ref_gemm_beta_one_accumulates() {
        let a = fill(2, 8); // 2x4
        let b = fill(3, 12); // 4x3
        let mut c = vec![1.0f32; 6]; // 2x3
        gemm_ref(2, 3, 4, &a, 4, &b, 3, 1.0, &mut c, 3);
        let mut expect = vec![1.0f32; 6];
        for i in 0..2 {
            for j in 0..3 {
                for p in 0..4 {
                    expect[i * 3 + j] += a[i * 4 + p] * b[p * 3 + j];
                }
            }
        }
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn ref_gemm_respects_leading_dims() {
        // embed a 2x2 multiply in larger strided buffers
        let a = vec![1.0, 2.0, 9.0, 3.0, 4.0, 9.0]; // lda=3
        let b = vec![5.0, 6.0, 9.0, 7.0, 8.0, 9.0]; // ldb=3
        let mut c = vec![0.0; 6]; // ldc=3
        gemm_ref(2, 2, 2, &a, 3, &b, 3, 0.0, &mut c, 3);
        assert_eq!(&c[..2], &[19.0, 22.0]);
        assert_eq!(&c[3..5], &[43.0, 50.0]);
        assert_eq!(c[2], 0.0);
    }
}
