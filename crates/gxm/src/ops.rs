//! Non-convolution operators on blocked tensors.
//!
//! These are the bandwidth-bound layers of Section II-G (ReLU, Pooling,
//! Normalization, Bias, …). Where they follow a convolution they are
//! fused into its microkernel stream by the `conv` crate; the
//! standalone versions here serve the graph executor for the remaining
//! placements (pooling, BN, the FC head) and as the unfused reference.
//!
//! All operators run on `[N][Cb][H][W][VLEN]` tensors; channel-padding
//! lanes hold zeros on entry and are kept at zero.

use parallel::ThreadPool;
use smallgemm::big_gemm;
use tensor::{BlockedActs, VLEN};

/// Max pooling forward; records argmax (flat input offsets) for the
/// backward scatter.
pub fn maxpool_fwd(
    pool: &ThreadPool,
    x: &BlockedActs,
    size: usize,
    stride: usize,
    pad: usize,
    y: &mut BlockedActs,
    argmax: &mut Vec<u32>,
) {
    let p = (x.h + 2 * pad - size) / stride + 1;
    let q = (x.w + 2 * pad - size) / stride + 1;
    assert_eq!((y.n, y.c, y.h, y.w), (x.n, x.c, p, q), "maxpool shape");
    argmax.clear();
    argmax.resize(x.n * x.cb * p * q * VLEN, u32::MAX);
    let slots = x.n * x.cb;
    let yptr = SendMut(y.as_mut_ptr());
    let yy: &BlockedActs = y;
    let aptr = SendMutU32(argmax.as_mut_ptr());
    pool.run(|ctx| {
        for slot in ctx.chunk(slots) {
            let (n, cb) = (slot / x.cb, slot % x.cb);
            for oj in 0..p {
                for oi in 0..q {
                    let mut best = [f32::NEG_INFINITY; VLEN];
                    let mut besti = [u32::MAX; VLEN];
                    for r in 0..size {
                        for s in 0..size {
                            let ij = (oj * stride + r) as isize - pad as isize;
                            let ii = (oi * stride + s) as isize - pad as isize;
                            if ij < 0 || ij >= x.h as isize || ii < 0 || ii >= x.w as isize {
                                continue;
                            }
                            let off = x.pix_offset_logical(n, cb, ij, ii);
                            let xs = &x.as_slice()[off..off + VLEN];
                            for v in 0..VLEN {
                                if xs[v] > best[v] {
                                    best[v] = xs[v];
                                    besti[v] = (off + v) as u32;
                                }
                            }
                        }
                    }
                    let yoff = yy.pix_offset_logical(n, cb, oj as isize, oi as isize);
                    let aoff = ((n * x.cb + cb) * p + oj) * q * VLEN + oi * VLEN;
                    for v in 0..VLEN {
                        // SAFETY: disjoint (n, cb) slots per thread.
                        unsafe {
                            *yptr.get().add(yoff + v) = best[v];
                            *aptr.get().add(aoff + v) = besti[v];
                        }
                    }
                }
            }
        }
    });
}

/// Max pooling backward: scatter `dy` to the recorded argmax positions
/// (accumulating into `dx`, which the caller zeroes at step start).
pub fn maxpool_bwd(pool: &ThreadPool, dy: &BlockedActs, argmax: &[u32], dx: &mut BlockedActs) {
    assert_eq!(argmax.len(), dy.n * dy.cb * dy.h * dy.w * VLEN);
    let slots = dy.n * dy.cb;
    let dxp = SendMut(dx.as_mut_ptr());
    pool.run(|ctx| {
        // each thread owns whole (n, cb) slots: the argmax targets of a
        // slot stay within that slot's input block, so writes are
        // disjoint across threads
        for slot in ctx.chunk(slots) {
            let (n, cb) = (slot / dy.cb, slot % dy.cb);
            for oj in 0..dy.h {
                let doff = dy.pix_offset_logical(n, cb, oj as isize, 0);
                let aoff = (slot * dy.h + oj) * dy.w * VLEN;
                for i in 0..dy.w * VLEN {
                    let t = argmax[aoff + i];
                    if t != u32::MAX {
                        // SAFETY: disjoint target blocks per thread.
                        unsafe { *dxp.get().add(t as usize) += dy.as_slice()[doff + i] };
                    }
                }
            }
        }
    });
}

/// Average pooling forward (spatial windows; zero-padded borders count
/// toward the divisor as in Caffe's default).
pub fn avgpool_fwd(
    pool: &ThreadPool,
    x: &BlockedActs,
    size: usize,
    stride: usize,
    pad: usize,
    y: &mut BlockedActs,
) {
    let p = (x.h + 2 * pad - size) / stride + 1;
    let q = (x.w + 2 * pad - size) / stride + 1;
    assert_eq!((y.n, y.c, y.h, y.w), (x.n, x.c, p, q), "avgpool shape");
    let inv = 1.0 / (size * size) as f32;
    let slots = x.n * x.cb;
    let yptr = SendMut(y.as_mut_ptr());
    let yy: &BlockedActs = y;
    pool.run(|ctx| {
        for slot in ctx.chunk(slots) {
            let (n, cb) = (slot / x.cb, slot % x.cb);
            for oj in 0..p {
                for oi in 0..q {
                    let mut acc = [0.0f32; VLEN];
                    for r in 0..size {
                        for s in 0..size {
                            let ij = (oj * stride + r) as isize - pad as isize;
                            let ii = (oi * stride + s) as isize - pad as isize;
                            if ij < 0 || ij >= x.h as isize || ii < 0 || ii >= x.w as isize {
                                continue;
                            }
                            let off = x.pix_offset_logical(n, cb, ij, ii);
                            for v in 0..VLEN {
                                acc[v] += x.as_slice()[off + v];
                            }
                        }
                    }
                    let yoff = yy.pix_offset_logical(n, cb, oj as isize, oi as isize);
                    for v in 0..VLEN {
                        // SAFETY: disjoint slots.
                        unsafe { *yptr.get().add(yoff + v) = acc[v] * inv };
                    }
                }
            }
        }
    });
}

/// Average pooling backward.
pub fn avgpool_bwd(
    pool: &ThreadPool,
    dy: &BlockedActs,
    size: usize,
    stride: usize,
    pad: usize,
    dx: &mut BlockedActs,
) {
    let inv = 1.0 / (size * size) as f32;
    let slots = dy.n * dy.cb;
    let dxp = SendMut(dx.as_mut_ptr());
    let dxx: &BlockedActs = dx;
    pool.run(|ctx| {
        for slot in ctx.chunk(slots) {
            let (n, cb) = (slot / dy.cb, slot % dy.cb);
            for oj in 0..dy.h {
                for oi in 0..dy.w {
                    let g =
                        &dy.as_slice()[dy.pix_offset_logical(n, cb, oj as isize, oi as isize)..];
                    for r in 0..size {
                        for s in 0..size {
                            let ij = (oj * stride + r) as isize - pad as isize;
                            let ii = (oi * stride + s) as isize - pad as isize;
                            if ij < 0 || ij >= dxx.h as isize || ii < 0 || ii >= dxx.w as isize {
                                continue;
                            }
                            let off = dxx.pix_offset_logical(n, cb, ij, ii);
                            for v in 0..VLEN {
                                // SAFETY: disjoint slots.
                                unsafe { *dxp.get().add(off + v) += g[v] * inv };
                            }
                        }
                    }
                }
            }
        }
    });
}

/// Global average pooling to `1×1`.
pub fn gap_fwd(pool: &ThreadPool, x: &BlockedActs, y: &mut BlockedActs) {
    assert_eq!((y.n, y.c, y.h, y.w), (x.n, x.c, 1, 1));
    let inv = 1.0 / (x.h * x.w) as f32;
    let slots = x.n * x.cb;
    let yptr = SendMut(y.as_mut_ptr());
    pool.run(|ctx| {
        for slot in ctx.chunk(slots) {
            let (n, cb) = (slot / x.cb, slot % x.cb);
            let mut acc = [0.0f32; VLEN];
            for h in 0..x.h {
                let off = x.pix_offset_logical(n, cb, h as isize, 0);
                let row = &x.as_slice()[off..off + x.w * VLEN];
                for wv in row.chunks_exact(VLEN) {
                    for v in 0..VLEN {
                        acc[v] += wv[v];
                    }
                }
            }
            for (v, a) in acc.iter().enumerate() {
                // SAFETY: disjoint slots.
                unsafe { *yptr.get().add(slot * VLEN + v) = a * inv };
            }
        }
    });
}

/// Global average pooling backward.
pub fn gap_bwd(pool: &ThreadPool, dy: &BlockedActs, dx: &mut BlockedActs) {
    let inv = 1.0 / (dx.h * dx.w) as f32;
    let slots = dx.n * dx.cb;
    let dxp = SendMut(dx.as_mut_ptr());
    pool.run(|ctx| {
        for slot in ctx.chunk(slots) {
            let (n, cb) = (slot / dx.cb, slot % dx.cb);
            let g = &dy.as_slice()[slot * VLEN..slot * VLEN + VLEN];
            for h in 0..dx.h {
                let off = dx.pix_offset_logical(n, cb, h as isize, 0);
                for w in 0..dx.w {
                    for v in 0..VLEN {
                        // SAFETY: disjoint slots.
                        unsafe { *dxp.get().add(off + w * VLEN + v) += g[v] * inv };
                    }
                }
            }
        }
    });
}

/// Batch-norm state saved by forward for the backward pass.
#[derive(Clone, Debug, Default)]
pub struct BnSaved {
    /// Per-channel batch mean.
    pub mean: Vec<f32>,
    /// Per-channel inverse standard deviation.
    pub istd: Vec<f32>,
    /// Per-channel batch variance (exactly as computed, before the
    /// eps-regularized inverse sqrt — the value running-stat EMAs
    /// consume).
    pub var: Vec<f32>,
}

/// Batch normalization forward (training statistics), optional fused
/// ReLU: `y = relu(gamma·(x−μ)/σ + beta)`.
#[allow(clippy::too_many_arguments)]
pub fn bn_fwd(
    pool: &ThreadPool,
    x: &BlockedActs,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    relu: bool,
    residual: Option<&BlockedActs>,
    y: &mut BlockedActs,
    saved: &mut BnSaved,
) {
    let cpad = x.cb * VLEN;
    assert!(gamma.len() >= cpad && beta.len() >= cpad);
    assert_eq!((y.n, y.c, y.h, y.w), (x.n, x.c, x.h, x.w));
    if let Some(res) = residual {
        assert_eq!((res.n, res.c, res.h, res.w), (x.n, x.c, x.h, x.w));
    }
    saved.mean = vec![0.0; cpad];
    saved.istd = vec![0.0; cpad];
    saved.var = vec![0.0; cpad];
    let m = (x.n * x.h * x.w) as f32;
    // pass 1: per-channel mean/var (parallel over channel blocks)
    let meanp = SendMut(saved.mean.as_mut_ptr());
    let istdp = SendMut(saved.istd.as_mut_ptr());
    let varp = SendMut(saved.var.as_mut_ptr());
    pool.run(|ctx| {
        for cb in ctx.chunk(x.cb) {
            let mut sum = [0.0f64; VLEN];
            let mut sq = [0.0f64; VLEN];
            for n in 0..x.n {
                for h in 0..x.h {
                    let off = x.pix_offset_logical(n, cb, h as isize, 0);
                    for wv in x.as_slice()[off..off + x.w * VLEN].chunks_exact(VLEN) {
                        for v in 0..VLEN {
                            sum[v] += wv[v] as f64;
                            sq[v] += (wv[v] as f64) * (wv[v] as f64);
                        }
                    }
                }
            }
            for v in 0..VLEN {
                let mu = sum[v] / m as f64;
                let var = (sq[v] / m as f64 - mu * mu).max(0.0);
                // SAFETY: disjoint channel blocks.
                unsafe {
                    *meanp.get().add(cb * VLEN + v) = mu as f32;
                    *istdp.get().add(cb * VLEN + v) = 1.0 / (var as f32 + eps).sqrt();
                    *varp.get().add(cb * VLEN + v) = var as f32;
                }
            }
        }
    });
    // pass 2: normalize (+ optional residual add + ReLU)
    let slots = x.n * x.cb;
    let yptr = SendMut(y.as_mut_ptr());
    let mean = &saved.mean;
    let istd = &saved.istd;
    let yy: &BlockedActs = y;
    pool.run(|ctx| {
        for slot in ctx.chunk(slots) {
            let (n, cb) = (slot / x.cb, slot % x.cb);
            for h in 0..x.h {
                let off = x.pix_offset_logical(n, cb, h as isize, 0);
                let yoff = yy.pix_offset_logical(n, cb, h as isize, 0);
                let roff = residual.map(|r| r.pix_offset_logical(n, cb, h as isize, 0));
                for w in 0..x.w {
                    for v in 0..VLEN {
                        let c = cb * VLEN + v;
                        let xv = x.as_slice()[off + w * VLEN + v];
                        let mut yv = gamma[c] * (xv - mean[c]) * istd[c] + beta[c];
                        if let (Some(res), Some(ro)) = (residual, roff) {
                            yv += res.as_slice()[ro + w * VLEN + v];
                        }
                        if relu {
                            yv = yv.max(0.0);
                        }
                        // SAFETY: disjoint slots.
                        unsafe { *yptr.get().add(yoff + w * VLEN + v) = yv };
                    }
                }
            }
        }
    });
}

/// Batch normalization forward with *frozen* statistics (inference
/// semantics): `y = gamma·(x−running_mean)/sqrt(running_var+eps) +
/// beta`, optional residual add and ReLU. No statistic is computed
/// from the live batch, so every sample's output is independent of
/// its co-batched neighbours — the property batch-composition-free
/// serving depends on. Used for the BN nodes the inference fusion
/// pass could *not* fold into their producer convolution.
#[allow(clippy::too_many_arguments)]
pub fn bn_infer_fwd(
    pool: &ThreadPool,
    x: &BlockedActs,
    gamma: &[f32],
    beta: &[f32],
    running_mean: &[f32],
    running_var: &[f32],
    eps: f32,
    relu: bool,
    residual: Option<&BlockedActs>,
    y: &mut BlockedActs,
) {
    let cpad = x.cb * VLEN;
    assert!(gamma.len() >= cpad && beta.len() >= cpad);
    assert!(running_mean.len() >= cpad && running_var.len() >= cpad);
    assert_eq!((y.n, y.c, y.h, y.w), (x.n, x.c, x.h, x.w));
    if let Some(res) = residual {
        assert_eq!((res.n, res.c, res.h, res.w), (x.n, x.c, x.h, x.w));
    }
    // fold the frozen statistics into one affine per channel; padded
    // lanes resolve to scale·0 + 0 = 0 under canonical parameter
    // padding (gamma 1, beta 0, mean 0, var 1)
    let mut scale = vec![0.0f32; cpad];
    let mut shift = vec![0.0f32; cpad];
    for c in 0..cpad {
        scale[c] = gamma[c] / (running_var[c] + eps).sqrt();
        shift[c] = beta[c] - running_mean[c] * scale[c];
    }
    let slots = x.n * x.cb;
    let yptr = SendMut(y.as_mut_ptr());
    let yy: &BlockedActs = y;
    let (scale, shift) = (&scale, &shift);
    pool.run(|ctx| {
        for slot in ctx.chunk(slots) {
            let (n, cb) = (slot / x.cb, slot % x.cb);
            for h in 0..x.h {
                let off = x.pix_offset_logical(n, cb, h as isize, 0);
                let yoff = yy.pix_offset_logical(n, cb, h as isize, 0);
                let roff = residual.map(|r| r.pix_offset_logical(n, cb, h as isize, 0));
                for w in 0..x.w {
                    for v in 0..VLEN {
                        let c = cb * VLEN + v;
                        let xv = x.as_slice()[off + w * VLEN + v];
                        let mut yv = scale[c] * xv + shift[c];
                        if let (Some(res), Some(ro)) = (residual, roff) {
                            yv += res.as_slice()[ro + w * VLEN + v];
                        }
                        if relu {
                            yv = yv.max(0.0);
                        }
                        // SAFETY: disjoint slots.
                        unsafe { *yptr.get().add(yoff + w * VLEN + v) = yv };
                    }
                }
            }
        }
    });
}

/// Batch normalization backward (with the fused-ReLU mask applied to
/// the incoming gradient when `relu` was fused forward).
#[allow(clippy::too_many_arguments)]
pub fn bn_bwd(
    pool: &ThreadPool,
    x: &BlockedActs,
    y: &BlockedActs,
    dy: &BlockedActs,
    gamma: &[f32],
    saved: &BnSaved,
    relu: bool,
    dresidual: Option<&mut BlockedActs>,
    dx: &mut BlockedActs,
    dgamma: &mut [f32],
    dbeta: &mut [f32],
) {
    let cpad = x.cb * VLEN;
    let m = (x.n * x.h * x.w) as f32;
    dgamma[..cpad].fill(0.0);
    dbeta[..cpad].fill(0.0);
    // pass 1: dgamma/dbeta per channel (+ residual gradient fan-out)
    let dgp = SendMut(dgamma.as_mut_ptr());
    let dbp = SendMut(dbeta.as_mut_ptr());
    let dres_ptr = dresidual.map(|d| SendMut(d.as_mut_ptr()));
    pool.run(|ctx| {
        for cb in ctx.chunk(x.cb) {
            let mut dg = [0.0f64; VLEN];
            let mut db = [0.0f64; VLEN];
            for n in 0..x.n {
                for h in 0..x.h {
                    let off = x.pix_offset_logical(n, cb, h as isize, 0);
                    let doff = dy.pix_offset_logical(n, cb, h as isize, 0);
                    let yoff = y.pix_offset_logical(n, cb, h as isize, 0);
                    for w in 0..x.w {
                        for v in 0..VLEN {
                            let c = cb * VLEN + v;
                            let mut g = dy.as_slice()[doff + w * VLEN + v];
                            if relu && y.as_slice()[yoff + w * VLEN + v] <= 0.0 {
                                g = 0.0;
                            }
                            if let Some(dr) = dres_ptr {
                                // the residual branch receives the same
                                // post-ReLU-mask gradient
                                // SAFETY: disjoint channel blocks.
                                unsafe { *dr.get().add(doff + w * VLEN + v) += g };
                            }
                            let xh =
                                (x.as_slice()[off + w * VLEN + v] - saved.mean[c]) * saved.istd[c];
                            dg[v] += (g * xh) as f64;
                            db[v] += g as f64;
                        }
                    }
                }
            }
            for v in 0..VLEN {
                // SAFETY: disjoint channel blocks.
                unsafe {
                    *dgp.get().add(cb * VLEN + v) = dg[v] as f32;
                    *dbp.get().add(cb * VLEN + v) = db[v] as f32;
                }
            }
        }
    });
    // pass 2: dx
    let slots = x.n * x.cb;
    let dxp = SendMut(dx.as_mut_ptr());
    let dgamma = &*dgamma;
    let dbeta = &*dbeta;
    pool.run(|ctx| {
        for slot in ctx.chunk(slots) {
            let (n, cb) = (slot / x.cb, slot % x.cb);
            for h in 0..x.h {
                let xoff = x.pix_offset_logical(n, cb, h as isize, 0);
                let doff = dy.pix_offset_logical(n, cb, h as isize, 0);
                let yoff = y.pix_offset_logical(n, cb, h as isize, 0);
                let dx_off = dx.pix_offset_logical(n, cb, h as isize, 0);
                for w in 0..x.w {
                    for v in 0..VLEN {
                        let c = cb * VLEN + v;
                        let mut g = dy.as_slice()[doff + w * VLEN + v];
                        if relu && y.as_slice()[yoff + w * VLEN + v] <= 0.0 {
                            g = 0.0;
                        }
                        let xh =
                            (x.as_slice()[xoff + w * VLEN + v] - saved.mean[c]) * saved.istd[c];
                        let t = g - dbeta[c] / m - xh * dgamma[c] / m;
                        // SAFETY: disjoint slots.
                        unsafe {
                            *dxp.get().add(dx_off + w * VLEN + v) += gamma[c] * saved.istd[c] * t
                        };
                    }
                }
            }
        }
    });
}

/// Fully connected forward: `y[N][K] = x[N][C] · w[C][K] + b` over the
/// padded channel dimension (padding lanes are zero).
pub fn fc_fwd(_pool: &ThreadPool, x: &BlockedActs, w: &[f32], bias: &[f32], y: &mut BlockedActs) {
    assert_eq!(x.h * x.w, 1, "FC expects 1x1 spatial input");
    let (cpad, kpad) = (x.cb * VLEN, y.cb * VLEN);
    assert_eq!(w.len(), cpad * kpad);
    big_gemm(x.n, kpad, cpad, x.as_slice(), cpad, w, kpad, 0.0, y.as_mut_slice(), kpad);
    for n in 0..y.n {
        for k in 0..kpad {
            y.as_mut_slice()[n * kpad + k] += bias[k];
        }
    }
}

/// Fully connected backward: gradients for input, weights and bias.
#[allow(clippy::too_many_arguments)]
pub fn fc_bwd(
    _pool: &ThreadPool,
    x: &BlockedActs,
    dy: &BlockedActs,
    w: &[f32],
    dx: &mut BlockedActs,
    dw: &mut [f32],
    db: &mut [f32],
) {
    let (cpad, kpad) = (x.cb * VLEN, dy.cb * VLEN);
    // dW[C][K] = xᵀ[C][N] · dY[N][K]
    let mut xt = vec![0.0f32; cpad * x.n];
    for n in 0..x.n {
        for c in 0..cpad {
            xt[c * x.n + n] = x.as_slice()[n * cpad + c];
        }
    }
    big_gemm(cpad, kpad, x.n, &xt, x.n, dy.as_slice(), kpad, 0.0, dw, kpad);
    // db = Σ_n dY
    db[..kpad].fill(0.0);
    for n in 0..x.n {
        for k in 0..kpad {
            db[k] += dy.as_slice()[n * kpad + k];
        }
    }
    // dX[N][C] = dY[N][K] · wᵀ[K][C]
    let mut wt = vec![0.0f32; kpad * cpad];
    for c in 0..cpad {
        for k in 0..kpad {
            wt[k * cpad + c] = w[c * kpad + k];
        }
    }
    let mut dxd = vec![0.0f32; x.n * cpad];
    big_gemm(x.n, cpad, kpad, dy.as_slice(), kpad, &wt, cpad, 0.0, &mut dxd, cpad);
    for (d, s) in dx.as_mut_slice().iter_mut().zip(&dxd) {
        *d += s;
    }
}

/// Softmax + cross-entropy forward. Returns mean loss and top-1
/// accuracy; stores probabilities for the backward pass.
pub fn softmax_loss_fwd(
    logits: &BlockedActs,
    classes: usize,
    labels: &[usize],
    probs: &mut Vec<f32>,
) -> (f32, f32) {
    let kpad = logits.cb * VLEN;
    assert!(classes <= kpad);
    assert_eq!(labels.len(), logits.n);
    probs.clear();
    probs.resize(logits.n * kpad, 0.0);
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    for n in 0..logits.n {
        let row = &logits.as_slice()[n * kpad..n * kpad + kpad];
        let max = row[..classes].iter().cloned().fold(f32::MIN, f32::max);
        let mut denom = 0.0f64;
        for k in 0..classes {
            denom += ((row[k] - max) as f64).exp();
        }
        let mut best = (0usize, f32::MIN);
        for k in 0..classes {
            let p = ((row[k] - max) as f64).exp() / denom;
            probs[n * kpad + k] = p as f32;
            if row[k] > best.1 {
                best = (k, row[k]);
            }
        }
        loss -= (probs[n * kpad + labels[n]].max(1e-12) as f64).ln();
        if best.0 == labels[n] {
            correct += 1;
        }
    }
    ((loss / logits.n as f64) as f32, correct as f32 / logits.n as f32)
}

/// Softmax + cross-entropy backward: `dlogits = (p − onehot)/N`.
pub fn softmax_loss_bwd(
    probs: &[f32],
    classes: usize,
    labels: &[usize],
    dlogits: &mut BlockedActs,
) {
    let kpad = dlogits.cb * VLEN;
    let inv_n = 1.0 / dlogits.n as f32;
    dlogits.zero();
    for n in 0..dlogits.n {
        for k in 0..classes {
            let mut g = probs[n * kpad + k];
            if k == labels[n] {
                g -= 1.0;
            }
            dlogits.as_mut_slice()[n * kpad + k] = g * inv_n;
        }
    }
}

/// `dst += src` (gradient fan-in accumulation of Split nodes).
pub fn accumulate(pool: &ThreadPool, dst: &mut BlockedActs, src: &BlockedActs) {
    assert_eq!(dst.as_slice().len(), src.as_slice().len(), "accumulate shape mismatch");
    let len = dst.as_slice().len();
    let dptr = SendMut(dst.as_mut_ptr());
    pool.run(|ctx| {
        for i in ctx.chunk(len) {
            // SAFETY: disjoint index chunks.
            unsafe { *dptr.get().add(i) += src.as_slice()[i] };
        }
    });
}

/// Channel concatenation forward (all parts share `n/h/w`; channel
/// counts are multiples of `VLEN` in the supported topologies).
pub fn concat_fwd(parts: &[&BlockedActs], y: &mut BlockedActs) {
    let mut cb0 = 0usize;
    for part in parts {
        assert_eq!((part.n, part.h, part.w, part.pad), (y.n, y.h, y.w, 0));
        assert_eq!(part.c % VLEN, 0, "concat parts must be block-aligned");
        for n in 0..y.n {
            for cb in 0..part.cb {
                let src = part.pix_offset_logical(n, cb, 0, 0);
                let dst = y.pix_offset_logical(n, cb0 + cb, 0, 0);
                let len = part.h * part.w * VLEN;
                y.as_mut_slice()[dst..dst + len].copy_from_slice(&part.as_slice()[src..src + len]);
            }
        }
        cb0 += part.cb;
    }
    assert_eq!(cb0, y.cb, "concat channel mismatch");
}

/// Channel concatenation backward: slice `dy` back into the parts.
pub fn concat_bwd(dy: &BlockedActs, parts: &mut [&mut BlockedActs]) {
    let mut cb0 = 0usize;
    for part in parts.iter_mut() {
        for n in 0..dy.n {
            for cb in 0..part.cb {
                let dst = part.pix_offset_logical(n, cb, 0, 0);
                let src = dy.pix_offset_logical(n, cb0 + cb, 0, 0);
                let len = part.h * part.w * VLEN;
                let slice = &dy.as_slice()[src..src + len];
                for (d, s) in part.as_mut_slice()[dst..dst + len].iter_mut().zip(slice) {
                    *d += s;
                }
            }
        }
        cb0 += part.cb;
    }
}

#[derive(Clone, Copy)]
struct SendMut(*mut f32);
unsafe impl Send for SendMut {}
unsafe impl Sync for SendMut {}
impl SendMut {
    #[inline]
    fn get(&self) -> *mut f32 {
        self.0
    }
}

#[derive(Clone, Copy)]
struct SendMutU32(*mut u32);
unsafe impl Send for SendMutU32 {}
unsafe impl Sync for SendMutU32 {}
impl SendMutU32 {
    #[inline]
    fn get(&self) -> *mut u32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_roundtrip() {
        let pool = ThreadPool::new(2);
        let x = BlockedActs::random(1, 16, 6, 6, 0, 1);
        let mut y = BlockedActs::zeros(1, 16, 3, 3, 0);
        let mut am = Vec::new();
        maxpool_fwd(&pool, &x, 2, 2, 0, &mut y, &mut am);
        // every output equals the max of its window
        for c in 0..16 {
            for oj in 0..3 {
                for oi in 0..3 {
                    let want = (0..2)
                        .flat_map(|r| (0..2).map(move |s| (r, s)))
                        .map(|(r, s)| x.get(0, c, oj * 2 + r, oi * 2 + s))
                        .fold(f32::MIN, f32::max);
                    assert_eq!(y.get(0, c, oj, oi), want);
                }
            }
        }
        // bwd scatters each gradient to exactly one input position
        let mut dy = BlockedActs::zeros(1, 16, 3, 3, 0);
        dy.as_mut_slice().fill(1.0);
        let mut dx = BlockedActs::zeros(1, 16, 6, 6, 0);
        maxpool_bwd(&pool, &dy, &am, &mut dx);
        let total: f32 = dx.as_slice().iter().sum();
        assert_eq!(total, (16 * 9) as f32);
    }

    #[test]
    fn gap_is_mean_and_bwd_spreads() {
        let pool = ThreadPool::new(2);
        let mut x = BlockedActs::zeros(1, 16, 2, 2, 0);
        for (i, hw) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)].iter().enumerate() {
            x.set(0, 3, hw.0, hw.1, i as f32);
        }
        let mut y = BlockedActs::zeros(1, 16, 1, 1, 0);
        gap_fwd(&pool, &x, &mut y);
        assert!((y.get(0, 3, 0, 0) - 1.5).abs() < 1e-6);
        let mut dy = BlockedActs::zeros(1, 16, 1, 1, 0);
        dy.set(0, 3, 0, 0, 4.0);
        let mut dx = BlockedActs::zeros(1, 16, 2, 2, 0);
        gap_bwd(&pool, &dy, &mut dx);
        assert_eq!(dx.get(0, 3, 1, 1), 1.0);
    }

    #[test]
    fn bn_normalizes_batch() {
        let pool = ThreadPool::new(2);
        let x = BlockedActs::random(4, 16, 5, 5, 0, 7);
        let gamma = vec![1.0f32; 16];
        let beta = vec![0.0f32; 16];
        let mut y = BlockedActs::zeros(4, 16, 5, 5, 0);
        let mut saved = BnSaved::default();
        bn_fwd(&pool, &x, &gamma, &beta, 1e-5, false, None, &mut y, &mut saved);
        // output channel mean ≈ 0, var ≈ 1
        for c in 0..16 {
            let mut sum = 0.0f64;
            let mut sq = 0.0f64;
            for n in 0..4 {
                for h in 0..5 {
                    for w in 0..5 {
                        let v = y.get(n, c, h, w) as f64;
                        sum += v;
                        sq += v * v;
                    }
                }
            }
            let m = 100.0;
            assert!((sum / m).abs() < 1e-4, "mean {}", sum / m);
            assert!((sq / m - 1.0).abs() < 1e-2, "var {}", sq / m);
        }
    }

    #[test]
    fn bn_bwd_gradient_check() {
        // numerical gradient of loss = Σ y·g w.r.t. one input element
        let pool = ThreadPool::new(1);
        let x = BlockedActs::random(2, 16, 3, 3, 0, 9);
        let g = BlockedActs::random(2, 16, 3, 3, 0, 10);
        let gamma: Vec<f32> = (0..16).map(|i| 1.0 + 0.01 * i as f32).collect();
        let beta = vec![0.1f32; 16];
        let run = |xx: &BlockedActs| -> (f64, BlockedActs, BnSaved) {
            let mut y = BlockedActs::zeros(2, 16, 3, 3, 0);
            let mut saved = BnSaved::default();
            bn_fwd(&pool, xx, &gamma, &beta, 1e-5, false, None, &mut y, &mut saved);
            let loss: f64 =
                y.as_slice().iter().zip(g.as_slice()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
            (loss, y, saved)
        };
        let (_, y, saved) = run(&x);
        let mut dx = BlockedActs::zeros(2, 16, 3, 3, 0);
        let mut dgamma = vec![0.0f32; 16];
        let mut dbeta = vec![0.0f32; 16];
        bn_bwd(&pool, &x, &y, &g, &gamma, &saved, false, None, &mut dx, &mut dgamma, &mut dbeta);
        // finite difference on x[0][5][1][2]
        let eps = 1e-2f32;
        let mut xp = x.clone();
        xp.set(0, 5, 1, 2, x.get(0, 5, 1, 2) + eps);
        let (lp, _, _) = run(&xp);
        let mut xm = x.clone();
        xm.set(0, 5, 1, 2, x.get(0, 5, 1, 2) - eps);
        let (lm, _, _) = run(&xm);
        let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
        let ana = dx.get(0, 5, 1, 2);
        assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()), "num {num} vs ana {ana}");
    }

    #[test]
    fn fc_and_softmax_train_one_step() {
        let pool = ThreadPool::new(1);
        let x = BlockedActs::random(4, 16, 1, 1, 0, 3);
        let mut w = vec![0.0f32; 16 * 16];
        for (i, v) in w.iter_mut().enumerate() {
            *v = ((i % 7) as f32 - 3.0) * 0.05;
        }
        let bias = vec![0.0f32; 16];
        let mut y = BlockedActs::zeros(4, 16, 1, 1, 0);
        fc_fwd(&pool, &x, &w, &bias, &mut y);
        let labels = vec![0usize, 1, 2, 3];
        let mut probs = Vec::new();
        let (loss, _acc) = softmax_loss_fwd(&y, 10, &labels, &mut probs);
        assert!(loss > 0.0);
        let mut dy = BlockedActs::zeros(4, 16, 1, 1, 0);
        softmax_loss_bwd(&probs, 10, &labels, &mut dy);
        let mut dx = BlockedActs::zeros(4, 16, 1, 1, 0);
        let mut dw = vec![0.0f32; 256];
        let mut db = vec![0.0f32; 16];
        fc_bwd(&pool, &x, &dy, &w, &mut dx, &mut dw, &mut db);
        // a gradient step must reduce the loss
        for (wi, g) in w.iter_mut().zip(&dw) {
            *wi -= 0.5 * g;
        }
        fc_fwd(&pool, &x, &w, &bias, &mut y);
        let (loss2, _) = softmax_loss_fwd(&y, 10, &labels, &mut probs);
        assert!(loss2 < loss, "{loss2} !< {loss}");
    }

    #[test]
    fn concat_roundtrip() {
        let a = BlockedActs::random(1, 16, 2, 2, 0, 1);
        let b = BlockedActs::random(1, 32, 2, 2, 0, 2);
        let mut y = BlockedActs::zeros(1, 48, 2, 2, 0);
        concat_fwd(&[&a, &b], &mut y);
        assert_eq!(y.get(0, 3, 1, 1), a.get(0, 3, 1, 1));
        assert_eq!(y.get(0, 16 + 5, 0, 1), b.get(0, 5, 0, 1));
        let mut da = BlockedActs::zeros(1, 16, 2, 2, 0);
        let mut db = BlockedActs::zeros(1, 32, 2, 2, 0);
        concat_bwd(&y, &mut [&mut da, &mut db]);
        assert_eq!(da.as_slice(), a.as_slice());
        assert_eq!(db.as_slice(), b.as_slice());
    }
}
