//! The ETG executor: a trainable network.
//!
//! `Network::build` infers every blob's geometry (including the
//! physical padding each consumer convolution wants), allocates
//! activations/gradients/parameters, and sets up one `ConvLayer` per
//! convolution node (JIT + dryrun). `train_step` then executes the
//! ETG's forward, backward and update schedules and applies SGD with
//! momentum — the full training loop of Section III-C.
//!
//! Split nodes are resolved as aliases: distribution is free forward,
//! and the gradient reduction falls out of the accumulate-into-blob
//! convention every backward operator follows.

use crate::ops;
use crate::pipeline::{compile, Etg, PassKind};
use crate::spec::{NodeSpec, PoolKind};
use conv::{ConvLayer, FusedOp, LayerOptions};
use parallel::ThreadPool;
use tensor::rng::SplitMix64;
use tensor::{BlockedActs, BlockedFilter, VLEN};

/// Activation + gradient pair for one blob.
struct Blob {
    act: BlockedActs,
    grad: BlockedActs,
}

/// Parameter with gradient and momentum (flat f32).
struct Param {
    w: Vec<f32>,
    dw: Vec<f32>,
    vel: Vec<f32>,
}

impl Param {
    fn new(len: usize) -> Self {
        Self { w: vec![0.0; len], dw: vec![0.0; len], vel: vec![0.0; len] }
    }
}

#[allow(dead_code)]
// eltwise indices / dims kept for introspection
// One LayerState exists per network layer and they live in a Vec for
// the network's lifetime; boxing the Conv payload would only add an
// indirection on the training hot path.
#[allow(clippy::large_enum_variant)]
enum LayerState {
    Input,
    Conv {
        layer: Box<ConvLayer>,
        w: BlockedFilter,
        dw: BlockedFilter,
        w_vel: BlockedFilter,
        bias: Option<Param>,
        relu: bool,
        eltwise: Option<usize>,
        /// masked dO scratch (saved for the update pass)
        dout_masked: BlockedActs,
        /// dI scratch (accumulated into the bottom's grad)
        di_scratch: BlockedActs,
    },
    Bn {
        gamma: Param,
        beta: Param,
        saved: ops::BnSaved,
        relu: bool,
        eltwise: Option<usize>,
    },
    Pool {
        kind: PoolKind,
        size: usize,
        stride: usize,
        pad: usize,
        argmax: Vec<u32>,
    },
    Gap,
    Fc {
        w: Param,
        b: Param,
        in_dim: usize,
        out_dim: usize,
    },
    SoftmaxLoss {
        probs: Vec<f32>,
        classes: usize,
    },
    Split,
    Concat,
}

/// Metrics of one training step.
#[derive(Clone, Copy, Debug)]
pub struct StepStats {
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Top-1 accuracy on the minibatch.
    pub top1: f32,
}

/// A compiled, trainable network.
#[allow(dead_code)] // loss_node kept for graph introspection
pub struct Network {
    pool: ThreadPool,
    etg: Etg,
    /// Blob storage per node (None for alias nodes).
    blobs: Vec<Option<Blob>>,
    /// Alias resolution: node → node owning its output blob.
    alias: Vec<usize>,
    layers: Vec<LayerState>,
    /// Index of the input node and the loss node.
    input_node: usize,
    loss_node: usize,
    minibatch: usize,
    /// Class count of the softmax head.
    pub classes: usize,
    labels: Vec<usize>,
}

impl Network {
    /// Compile a topology for a minibatch size and thread count.
    pub fn build(nl: &[NodeSpec], minibatch: usize, threads: usize) -> Self {
        let etg = compile(nl);
        let nodes = &etg.eng.nodes;
        let index: std::collections::HashMap<String, usize> =
            nodes.iter().enumerate().map(|(i, n)| (n.name().to_string(), i)).collect();

        // alias resolution for Split nodes
        let mut alias: Vec<usize> = (0..nodes.len()).collect();
        for (i, n) in nodes.iter().enumerate() {
            if let NodeSpec::Split { bottom, .. } = n {
                alias[i] = alias[index[bottom]];
            }
        }

        // shape inference: (c, h, w) per node
        let mut shapes: Vec<(usize, usize, usize)> = Vec::with_capacity(nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            let dim_of = |name: &str| shapes[alias[index[name]]];
            let sh = match n {
                NodeSpec::Input { c, h, w, .. } => (*c, *h, *w),
                NodeSpec::Conv { bottom, k, r, s, stride, pad, .. } => {
                    let (_, h, w) = dim_of(bottom);
                    ((*k), (h + 2 * pad - r) / stride + 1, (w + 2 * pad - s) / stride + 1)
                }
                NodeSpec::Bn { bottom, .. } => dim_of(bottom),
                NodeSpec::Pool { bottom, size, stride, pad, .. } => {
                    let (c, h, w) = dim_of(bottom);
                    (c, (h + 2 * pad - size) / stride + 1, (w + 2 * pad - size) / stride + 1)
                }
                NodeSpec::GlobalAvgPool { bottom, .. } => {
                    let (c, _, _) = dim_of(bottom);
                    (c, 1, 1)
                }
                NodeSpec::Fc { k, .. } => (*k, 1, 1),
                NodeSpec::SoftmaxLoss { bottom, .. } => dim_of(bottom),
                NodeSpec::Concat { bottoms, .. } => {
                    let (mut c, mut h, mut w) = (0, 0, 0);
                    for b in bottoms {
                        let (cc, hh, ww) = dim_of(b);
                        c += cc;
                        h = hh;
                        w = ww;
                    }
                    (c, h, w)
                }
                NodeSpec::Split { bottom, .. } => dim_of(bottom),
            };
            let _ = i;
            shapes.push(sh);
        }

        // padding inference: blob pad = max pad over conv consumers
        let mut blob_pad = vec![0usize; nodes.len()];
        for n in nodes.iter() {
            if let NodeSpec::Conv { bottom, pad, .. } = n {
                let owner = alias[index[bottom.as_str()]];
                blob_pad[owner] = blob_pad[owner].max(*pad);
            }
        }
        // conv outputs must stay pad-0 (they feed BN/pool/eltwise in the
        // supported topologies); padded consumers read BN/pool outputs
        for (i, n) in nodes.iter().enumerate() {
            if matches!(n, NodeSpec::Conv { .. }) {
                assert_eq!(
                    blob_pad[i],
                    0,
                    "conv '{}' output feeds a padded conv directly; insert a bn node",
                    n.name()
                );
            }
        }

        // allocate blobs + layer state
        let pool = ThreadPool::new(threads);
        let mut rng = SplitMix64::new(0x5eed);
        let mut blobs: Vec<Option<Blob>> = Vec::with_capacity(nodes.len());
        let mut layers: Vec<LayerState> = Vec::with_capacity(nodes.len());
        let mut input_node = usize::MAX;
        let mut loss_node = usize::MAX;
        let mut classes = 0usize;
        for (i, n) in nodes.iter().enumerate() {
            let (c, h, w) = shapes[i];
            let mk_blob = |pad: usize| {
                Some(Blob {
                    act: BlockedActs::zeros(minibatch, c, h, w, pad),
                    grad: BlockedActs::zeros(minibatch, c, h, w, pad),
                })
            };
            let (blob, state) = match n {
                NodeSpec::Input { .. } => {
                    input_node = i;
                    (mk_blob(blob_pad[i]), LayerState::Input)
                }
                NodeSpec::Conv { bottom, k, r, s, stride, pad, bias, relu, eltwise, .. } => {
                    let bi = alias[index[bottom.as_str()]];
                    let (bc, bh, bw) = shapes[bi];
                    let shape =
                        tensor::ConvShape::new(minibatch, bc, *k, bh, bw, *r, *s, *stride, *pad);
                    let fuse = match (bias, relu, eltwise.is_some()) {
                        (true, true, false) => FusedOp::BiasRelu,
                        (true, false, false) => FusedOp::Bias,
                        (false, true, false) => FusedOp::Relu,
                        (false, false, true) => FusedOp::Eltwise,
                        (false, true, true) | (true, true, true) => FusedOp::EltwiseRelu,
                        (true, false, true) => FusedOp::Eltwise,
                        (false, false, false) => FusedOp::None,
                    };
                    let layer = ConvLayer::new(
                        shape,
                        LayerOptions::new(threads)
                            .with_fuse(fuse)
                            .with_input_pad(blob_pad[bi])
                            .with_dout_pad(0),
                    );
                    let mut wt = BlockedFilter::zeros(*k, bc, *r, *s);
                    he_init_filter(&mut wt, &mut rng);
                    let bias_p = bias.then(|| Param::new(k.next_multiple_of(VLEN)));
                    let state = LayerState::Conv {
                        dout_masked: layer.new_output(),
                        di_scratch: layer.new_input(),
                        layer: Box::new(layer),
                        w: wt,
                        dw: BlockedFilter::zeros(*k, bc, *r, *s),
                        w_vel: BlockedFilter::zeros(*k, bc, *r, *s),
                        bias: bias_p,
                        relu: *relu,
                        eltwise: eltwise.as_ref().map(|e| alias[index[e.as_str()]]),
                    };
                    (mk_blob(0), state)
                }
                NodeSpec::Bn { relu, eltwise, .. } => {
                    let cpad = c.next_multiple_of(VLEN);
                    let mut gamma = Param::new(cpad);
                    gamma.w.fill(1.0);
                    let state = LayerState::Bn {
                        gamma,
                        beta: Param::new(cpad),
                        saved: ops::BnSaved::default(),
                        relu: *relu,
                        eltwise: eltwise.as_ref().map(|e| alias[index[e.as_str()]]),
                    };
                    (mk_blob(blob_pad[i]), state)
                }
                NodeSpec::Pool { kind, size, stride, pad, .. } => (
                    mk_blob(blob_pad[i]),
                    LayerState::Pool {
                        kind: *kind,
                        size: *size,
                        stride: *stride,
                        pad: *pad,
                        argmax: Vec::new(),
                    },
                ),
                NodeSpec::GlobalAvgPool { .. } => (mk_blob(0), LayerState::Gap),
                NodeSpec::Fc { bottom, k, .. } => {
                    let (bc, _, _) = shapes[alias[index[bottom.as_str()]]];
                    let (in_dim, out_dim) = (bc.next_multiple_of(VLEN), k.next_multiple_of(VLEN));
                    let mut w = Param::new(in_dim * out_dim);
                    let scale = (2.0 / in_dim as f32).sqrt();
                    for v in w.w.iter_mut() {
                        *v = rng.next_f32() * 2.0 * scale;
                    }
                    (mk_blob(0), LayerState::Fc { w, b: Param::new(out_dim), in_dim, out_dim })
                }
                NodeSpec::SoftmaxLoss { bottom, .. } => {
                    loss_node = i;
                    classes = shapes[alias[index[bottom.as_str()]]].0;
                    (None, LayerState::SoftmaxLoss { probs: Vec::new(), classes })
                }
                NodeSpec::Concat { .. } => (mk_blob(blob_pad[i]), LayerState::Concat),
                NodeSpec::Split { .. } => (None, LayerState::Split),
            };
            blobs.push(blob);
            layers.push(state);
        }
        assert!(input_node != usize::MAX, "topology has no input node");
        assert!(loss_node != usize::MAX, "topology has no softmaxloss node");
        Self {
            pool,
            etg,
            blobs,
            alias,
            layers,
            input_node,
            loss_node,
            minibatch,
            classes,
            labels: Vec::new(),
        }
    }

    /// Number of trainable parameters (logical, without lane padding).
    pub fn param_count(&self) -> usize {
        let mut total = 0usize;
        for (i, l) in self.layers.iter().enumerate() {
            match l {
                LayerState::Conv { w, bias, .. } => {
                    total += w.k * w.c * w.r * w.s;
                    if bias.is_some() {
                        total += w.k;
                    }
                    let _ = i;
                }
                LayerState::Bn { gamma, .. } => total += 2 * gamma.w.len(),
                LayerState::Fc { w, b, .. } => total += w.w.len() + b.w.len(),
                _ => {}
            }
        }
        total
    }

    /// Gradient bytes exchanged per step under data parallelism (the
    /// allreduce payload of Fig. 9).
    pub fn gradient_bytes(&self) -> f64 {
        self.param_count() as f64 * 4.0
    }

    /// Mutable access to the input activation (fill with a batch).
    pub fn input_mut(&mut self) -> &mut BlockedActs {
        let i = self.alias[self.input_node];
        &mut self.blobs[i].as_mut().unwrap().act
    }

    /// One full training step on (already loaded) input + labels.
    pub fn train_step(&mut self, labels: &[usize], lr: f32, momentum: f32) -> StepStats {
        assert_eq!(labels.len(), self.minibatch);
        self.labels = labels.to_vec();
        let stats = self.forward();
        self.backward();
        self.update();
        self.sgd(lr, momentum);
        stats
    }

    /// Forward pass only (inference); returns loss/top-1 against the
    /// last set labels (zeros if never set).
    pub fn forward(&mut self) -> StepStats {
        if self.labels.len() != self.minibatch {
            self.labels = vec![0; self.minibatch];
        }
        let mut out = StepStats { loss: 0.0, top1: 0.0 };
        let fwd = self.etg.fwd.clone();
        for t in &fwd {
            debug_assert_eq!(t.pass, PassKind::Fwd);
            if let Some(s) = self.forward_node(t.node) {
                out = s;
            }
        }
        out
    }

    fn take_blob(&mut self, node: usize) -> Blob {
        self.blobs[self.alias[node]].take().expect("blob taken twice")
    }

    fn put_blob(&mut self, node: usize, b: Blob) {
        self.blobs[self.alias[node]] = Some(b);
    }

    fn bottoms_of(&self, node: usize) -> Vec<usize> {
        let index: Vec<usize> = self.etg.eng.preds[node].clone();
        index
    }

    fn forward_node(&mut self, node: usize) -> Option<StepStats> {
        let spec = self.etg.eng.nodes[node].clone();
        match spec {
            NodeSpec::Input { .. } | NodeSpec::Split { .. } => None,
            NodeSpec::Conv { bottom: _, .. } => {
                let bots = self.bottoms_of(node);
                let bot = self.take_blob(bots[0]);
                let mut own = self.take_blob(node);
                // eltwise residual (if any) is the second bottom
                let res = if bots.len() > 1 && self.alias[bots[1]] != self.alias[bots[0]] {
                    Some(self.take_blob(bots[1]))
                } else {
                    None
                };
                if let LayerState::Conv { layer, w, bias, .. } = &self.layers[node] {
                    let ctx = conv::fuse::FuseCtx {
                        bias: bias.as_ref().map(|b| &b.w[..]),
                        eltwise: res.as_ref().map(|b| &b.act),
                    };
                    layer.forward(&self.pool, &bot.act, w, &mut own.act, &ctx);
                } else {
                    unreachable!()
                }
                if let Some(r) = res {
                    self.put_blob(self.bottoms_of(node)[1], r);
                }
                self.put_blob(self.bottoms_of(node)[0], bot);
                self.put_blob(node, own);
                None
            }
            NodeSpec::Bn { .. } => {
                let bots = self.bottoms_of(node);
                let bot = self.take_blob(bots[0]);
                let mut own = self.take_blob(node);
                let res = if bots.len() > 1 && self.alias[bots[1]] != self.alias[bots[0]] {
                    Some(self.take_blob(bots[1]))
                } else {
                    None
                };
                if let LayerState::Bn { gamma, beta, saved, relu, .. } = &mut self.layers[node] {
                    ops::bn_fwd(
                        &self.pool,
                        &bot.act,
                        &gamma.w,
                        &beta.w,
                        1e-5,
                        *relu,
                        res.as_ref().map(|b| &b.act),
                        &mut own.act,
                        saved,
                    );
                } else {
                    unreachable!()
                }
                if let Some(r) = res {
                    self.put_blob(self.bottoms_of(node)[1], r);
                }
                self.put_blob(self.bottoms_of(node)[0], bot);
                self.put_blob(node, own);
                None
            }
            NodeSpec::Pool { .. } => {
                let bots = self.bottoms_of(node);
                let bot = self.take_blob(bots[0]);
                let mut own = self.take_blob(node);
                if let LayerState::Pool { kind, size, stride, pad, argmax } = &mut self.layers[node]
                {
                    match kind {
                        PoolKind::Max => ops::maxpool_fwd(
                            &self.pool,
                            &bot.act,
                            *size,
                            *stride,
                            *pad,
                            &mut own.act,
                            argmax,
                        ),
                        PoolKind::Avg => ops::avgpool_fwd(
                            &self.pool,
                            &bot.act,
                            *size,
                            *stride,
                            *pad,
                            &mut own.act,
                        ),
                    }
                } else {
                    unreachable!()
                }
                self.put_blob(bots[0], bot);
                self.put_blob(node, own);
                None
            }
            NodeSpec::GlobalAvgPool { .. } => {
                let bots = self.bottoms_of(node);
                let bot = self.take_blob(bots[0]);
                let mut own = self.take_blob(node);
                ops::gap_fwd(&self.pool, &bot.act, &mut own.act);
                self.put_blob(bots[0], bot);
                self.put_blob(node, own);
                None
            }
            NodeSpec::Fc { .. } => {
                let bots = self.bottoms_of(node);
                let bot = self.take_blob(bots[0]);
                let mut own = self.take_blob(node);
                if let LayerState::Fc { w, b, .. } = &self.layers[node] {
                    ops::fc_fwd(&self.pool, &bot.act, &w.w, &b.w, &mut own.act);
                } else {
                    unreachable!()
                }
                self.put_blob(bots[0], bot);
                self.put_blob(node, own);
                None
            }
            NodeSpec::SoftmaxLoss { .. } => {
                let bots = self.bottoms_of(node);
                let bot = self.take_blob(bots[0]);
                let labels = self.labels.clone();
                let stats = if let LayerState::SoftmaxLoss { probs, classes } =
                    &mut self.layers[node]
                {
                    let (loss, top1) = ops::softmax_loss_fwd(&bot.act, *classes, &labels, probs);
                    StepStats { loss, top1 }
                } else {
                    unreachable!()
                };
                self.put_blob(bots[0], bot);
                Some(stats)
            }
            NodeSpec::Concat { .. } => {
                let bots = self.bottoms_of(node);
                let mut own = self.take_blob(node);
                let parts: Vec<Blob> = bots.iter().map(|&b| self.take_blob(b)).collect();
                {
                    let refs: Vec<&BlockedActs> = parts.iter().map(|p| &p.act).collect();
                    ops::concat_fwd(&refs, &mut own.act);
                }
                for (b, p) in bots.iter().zip(parts) {
                    self.put_blob(*b, p);
                }
                self.put_blob(node, own);
                None
            }
        }
    }

    /// Backward pass (zeroes gradients first).
    pub fn backward(&mut self) {
        for b in self.blobs.iter_mut().flatten() {
            b.grad.zero();
        }
        let bwd = self.etg.bwd.clone();
        for t in &bwd {
            self.backward_node(t.node);
        }
    }

    fn backward_node(&mut self, node: usize) {
        let spec = self.etg.eng.nodes[node].clone();
        match spec {
            NodeSpec::Input { .. } | NodeSpec::Split { .. } => {}
            NodeSpec::SoftmaxLoss { .. } => {
                let bots = self.bottoms_of(node);
                let mut bot = self.take_blob(bots[0]);
                let labels = self.labels.clone();
                if let LayerState::SoftmaxLoss { probs, classes } = &self.layers[node] {
                    ops::softmax_loss_bwd(probs, *classes, &labels, &mut bot.grad);
                }
                self.put_blob(bots[0], bot);
            }
            NodeSpec::Fc { .. } => {
                let bots = self.bottoms_of(node);
                let mut bot = self.take_blob(bots[0]);
                let own = self.take_blob(node);
                if let LayerState::Fc { w, b, .. } = &mut self.layers[node] {
                    ops::fc_bwd(
                        &self.pool,
                        &bot.act,
                        &own.grad,
                        &w.w,
                        &mut bot.grad,
                        &mut w.dw,
                        &mut b.dw,
                    );
                }
                self.put_blob(bots[0], bot);
                self.put_blob(node, own);
            }
            NodeSpec::GlobalAvgPool { .. } => {
                let bots = self.bottoms_of(node);
                let mut bot = self.take_blob(bots[0]);
                let own = self.take_blob(node);
                ops::gap_bwd(&self.pool, &own.grad, &mut bot.grad);
                self.put_blob(bots[0], bot);
                self.put_blob(node, own);
            }
            NodeSpec::Pool { .. } => {
                let bots = self.bottoms_of(node);
                let mut bot = self.take_blob(bots[0]);
                let own = self.take_blob(node);
                if let LayerState::Pool { kind, size, stride, pad, argmax } = &self.layers[node] {
                    match kind {
                        PoolKind::Max => {
                            ops::maxpool_bwd(&self.pool, &own.grad, argmax, &mut bot.grad)
                        }
                        PoolKind::Avg => ops::avgpool_bwd(
                            &self.pool,
                            &own.grad,
                            *size,
                            *stride,
                            *pad,
                            &mut bot.grad,
                        ),
                    }
                }
                self.put_blob(bots[0], bot);
                self.put_blob(node, own);
            }
            NodeSpec::Bn { .. } => {
                let bots = self.bottoms_of(node);
                let mut bot = self.take_blob(bots[0]);
                let own = self.take_blob(node);
                let mut res = if bots.len() > 1 && self.alias[bots[1]] != self.alias[bots[0]] {
                    Some(self.take_blob(bots[1]))
                } else {
                    None
                };
                if let LayerState::Bn { gamma, beta, saved, relu, .. } = &mut self.layers[node] {
                    ops::bn_bwd(
                        &self.pool,
                        &bot.act,
                        &own.act,
                        &own.grad,
                        &gamma.w,
                        saved,
                        *relu,
                        res.as_mut().map(|b| &mut b.grad),
                        &mut bot.grad,
                        &mut gamma.dw,
                        &mut beta.dw,
                    );
                }
                if let Some(r) = res {
                    self.put_blob(self.bottoms_of(node)[1], r);
                }
                self.put_blob(self.bottoms_of(node)[0], bot);
                self.put_blob(node, own);
            }
            NodeSpec::Conv { .. } => {
                let bots = self.bottoms_of(node);
                let mut bot = self.take_blob(bots[0]);
                let own = self.take_blob(node);
                let mut res = if bots.len() > 1 && self.alias[bots[1]] != self.alias[bots[0]] {
                    Some(self.take_blob(bots[1]))
                } else {
                    None
                };
                if let LayerState::Conv {
                    layer,
                    w,
                    bias,
                    relu,
                    eltwise,
                    dout_masked,
                    di_scratch,
                    ..
                } = &mut self.layers[node]
                {
                    // mask the incoming gradient through the fused ReLU;
                    // route it to the residual branch as well
                    let has_post = *relu || eltwise.is_some();
                    let g_len = own.grad.as_slice().len();
                    if has_post {
                        for i in 0..g_len {
                            let mut g = own.grad.as_slice()[i];
                            if *relu && own.act.as_slice()[i] <= 0.0 {
                                g = 0.0;
                            }
                            dout_masked.as_mut_slice()[i] = g;
                        }
                        if eltwise.is_some() {
                            if let Some(r) = res.as_mut() {
                                for (d, s) in
                                    r.grad.as_mut_slice().iter_mut().zip(dout_masked.as_slice())
                                {
                                    *d += s;
                                }
                            }
                        }
                    } else {
                        dout_masked.as_mut_slice().copy_from_slice(own.grad.as_slice());
                    }
                    // bias gradient
                    if let Some(bp) = bias.as_mut() {
                        bp.dw.fill(0.0);
                        let kpad = dout_masked.cb * VLEN;
                        let plane = dout_masked.h * dout_masked.w;
                        for n in 0..dout_masked.n {
                            for kb in 0..dout_masked.cb {
                                let base = (n * dout_masked.cb + kb) * plane * VLEN;
                                for px in 0..plane {
                                    for v in 0..VLEN {
                                        bp.dw[kb * VLEN + v] +=
                                            dout_masked.as_slice()[base + px * VLEN + v];
                                    }
                                }
                            }
                        }
                        let _ = kpad;
                    }
                    // dI then accumulate into the bottom's gradient
                    layer.backward(&self.pool, dout_masked, w, di_scratch);
                    ops::accumulate(&self.pool, &mut bot.grad, di_scratch);
                }
                if let Some(r) = res {
                    self.put_blob(self.bottoms_of(node)[1], r);
                }
                self.put_blob(self.bottoms_of(node)[0], bot);
                self.put_blob(node, own);
            }
            NodeSpec::Concat { .. } => {
                let bots = self.bottoms_of(node);
                let own = self.take_blob(node);
                let mut parts: Vec<Blob> = bots.iter().map(|&b| self.take_blob(b)).collect();
                {
                    let mut refs: Vec<&mut BlockedActs> =
                        parts.iter_mut().map(|p| &mut p.grad).collect();
                    ops::concat_bwd(&own.grad, &mut refs);
                }
                for (b, p) in bots.iter().zip(parts) {
                    self.put_blob(*b, p);
                }
                self.put_blob(node, own);
            }
        }
    }

    /// Weight-gradient update pass (the heavy dW computations).
    pub fn update(&mut self) {
        let upd = self.etg.upd.clone();
        for t in &upd {
            if let NodeSpec::Conv { .. } = self.etg.eng.nodes[t.node] {
                let bots = self.bottoms_of(t.node);
                let bot = self.take_blob(bots[0]);
                if let LayerState::Conv { layer, dw, dout_masked, .. } = &mut self.layers[t.node] {
                    layer.update(&self.pool, &bot.act, dout_masked, dw);
                }
                self.put_blob(bots[0], bot);
            }
        }
    }

    /// SGD with momentum over every parameter.
    pub fn sgd(&mut self, lr: f32, momentum: f32) {
        let step = |w: &mut [f32], dw: &[f32], vel: &mut [f32]| {
            for i in 0..w.len() {
                vel[i] = momentum * vel[i] - lr * dw[i];
                w[i] += vel[i];
            }
        };
        for l in self.layers.iter_mut() {
            match l {
                LayerState::Conv { w, dw, w_vel, bias, .. } => {
                    step(w.as_mut_slice(), dw.as_slice(), w_vel.as_mut_slice());
                    if let Some(b) = bias {
                        step(&mut b.w, &b.dw, &mut b.vel);
                    }
                }
                LayerState::Bn { gamma, beta, .. } => {
                    step(&mut gamma.w, &gamma.dw, &mut gamma.vel);
                    step(&mut beta.w, &beta.dw, &mut beta.vel);
                }
                LayerState::Fc { w, b, .. } => {
                    step(&mut w.w, &w.dw, &mut w.vel);
                    step(&mut b.w, &b.dw, &mut b.vel);
                }
                _ => {}
            }
        }
    }

    /// The compiled ETG (inspection/tests).
    pub fn etg(&self) -> &Etg {
        &self.etg
    }
}

/// He-normal-ish filter init (uniform approximation, deterministic).
fn he_init_filter(w: &mut BlockedFilter, rng: &mut SplitMix64) {
    let fan_in = (w.c * w.r * w.s) as f32;
    let scale = (6.0 / fan_in).sqrt();
    for k in 0..w.k {
        for c in 0..w.c {
            for r in 0..w.r {
                for s in 0..w.s {
                    w.set(k, c, r, s, rng.next_f32() * 2.0 * scale);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_topology;

    fn small_cnn() -> Vec<NodeSpec> {
        parse_topology(
            "input name=data c=16 h=16 w=16\n\
             conv name=c1 bottom=data k=32 r=3 s=3 pad=1 bias=1 relu=1\n\
             pool name=p1 bottom=c1 kind=max size=2 stride=2\n\
             conv name=c2 bottom=p1 k=32 bias=1 relu=1\n\
             gap name=g bottom=c2\n\
             fc name=logits bottom=g k=16\n\
             softmaxloss name=loss bottom=logits\n",
        )
        .unwrap()
    }

    #[test]
    fn forward_runs_and_produces_finite_loss() {
        let mut net = Network::build(&small_cnn(), 8, 4);
        // random input
        let mut rng = SplitMix64::new(1);
        rng.fill_f32(net.input_mut().as_mut_slice());
        let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
        net.labels = labels;
        let stats = net.forward();
        assert!(stats.loss.is_finite() && stats.loss > 0.0);
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = Network::build(&small_cnn(), 8, 4);
        let mut rng = SplitMix64::new(2);
        let mut input = vec![0.0f32; net.input_mut().as_slice().len()];
        rng.fill_f32(&mut input);
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for step in 0..30 {
            net.input_mut().as_mut_slice().copy_from_slice(&input);
            let stats = net.train_step(&labels, 0.05, 0.9);
            if step == 0 {
                first = stats.loss;
            }
            last = stats.loss;
            assert!(stats.loss.is_finite(), "step {step}: loss diverged");
        }
        assert!(last < 0.5 * first, "loss did not fall: {first} -> {last}");
    }

    #[test]
    fn residual_bn_network_trains() {
        // mini-ResNet block: conv-bn-relu -> conv-bn(+shortcut, relu)
        let nl = parse_topology(
            "input name=data c=16 h=8 w=8\n\
             conv name=c0 bottom=data k=16\n\
             bn name=b0 bottom=c0 relu=1\n\
             conv name=c1 bottom=b0 k=16 r=3 s=3 pad=1\n\
             bn name=b1 bottom=c1 relu=1\n\
             conv name=c2 bottom=b1 k=16 r=3 s=3 pad=1\n\
             bn name=b2 bottom=c2 eltwise=b0 relu=1\n\
             gap name=g bottom=b2\n\
             fc name=logits bottom=g k=16\n\
             softmaxloss name=loss bottom=logits\n",
        )
        .unwrap();
        let mut net = Network::build(&nl, 4, 3);
        // b0 fans out (c1 + eltwise) -> one split node must appear
        assert!(net.etg().eng.nodes.iter().any(|n| matches!(n, NodeSpec::Split { .. })));
        let mut rng = SplitMix64::new(3);
        let mut input = vec![0.0f32; net.input_mut().as_slice().len()];
        rng.fill_f32(&mut input);
        let labels = vec![0usize, 1, 2, 3];
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for step in 0..40 {
            net.input_mut().as_mut_slice().copy_from_slice(&input);
            let s = net.train_step(&labels, 0.05, 0.9);
            if step == 0 {
                first = s.loss;
            }
            last = s.loss;
        }
        assert!(last < 0.7 * first, "residual net loss did not fall: {first} -> {last}");
    }

    #[test]
    fn param_count_is_sane() {
        let net = Network::build(&small_cnn(), 2, 2);
        // c1: 32*16*9 + 32, c2: 32*32 + 32, fc: 32*16(padded)… > 5k
        assert!(net.param_count() > 5_000, "{}", net.param_count());
    }
}
