//! The ETG executor: a trainable (or forward-only) network.
//!
//! Building a network is split into two phases mirroring the paper's
//! setup/replay discipline:
//!
//! * the **plan phase** (`plan_graph`) compiles the topology to an
//!   ETG, infers every blob's geometry (including the physical padding
//!   each consumer convolution wants) and obtains one planned
//!   `ConvLayer` per convolution node **through a [`PlanCache`]** —
//!   repeated layer shapes JIT + dryrun once and share the plan;
//! * the **allocate phase** materializes parameters and activation
//!   storage for an [`ExecMode`]: `Training` keeps the classic
//!   blob-per-node layout with gradients and momentum, `Inference`
//!   allocates *no* gradient/momentum/scratch state and shares
//!   activation buffers between nodes whose lifetimes do not overlap
//!   (a liveness scan over the forward schedule —
//!   [`crate::pipeline::fwd_last_use`]).
//!
//! `train_step` then executes the ETG's forward, backward and update
//! schedules and applies SGD with momentum — the full training loop of
//! Section III-C; `forward` alone serves inference.
//!
//! Split nodes are resolved as aliases: distribution is free forward,
//! and the gradient reduction falls out of the accumulate-into-blob
//! convention every backward operator follows.

use crate::error::Error;
use crate::model::ModelSpec;
use crate::ops;
use crate::pipeline::{compile, fwd_last_use, Etg, PassKind};
use crate::spec::{NodeSpec, PoolKind};
use crate::state::StateDict;
use conv::{ConvLayer, FusedOp, LayerOptions, PlanCache, Precision};
use parallel::ThreadPool;
use std::collections::HashMap;
use std::sync::Arc;
use tensor::rng::SplitMix64;
use tensor::vnni::I8_QMAX;
use tensor::{BlockedActs, BlockedFilter, VnniActs, VnniFilter, VLEN};

/// Epsilon of every batch-norm node.
const BN_EPS: f32 = 1e-5;

/// Exponential-moving-average factor for the BN running statistics
/// accumulated during training (the usual framework default).
const BN_MOMENTUM: f32 = 0.1;

/// How a network's storage is materialized.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Activations + gradients + momentum: the full training loop.
    #[default]
    Training,
    /// Forward-only serving: no gradient/momentum/scratch allocation,
    /// activation buffers shared via the liveness memory plan.
    Inference,
}

/// Activation (+ gradient, in training mode) storage for one slot.
struct Blob {
    act: BlockedActs,
    grad: Option<BlockedActs>,
}

/// Parameter with (training-only) gradient and momentum (flat f32).
struct Param {
    w: Vec<f32>,
    dw: Vec<f32>,
    vel: Vec<f32>,
}

impl Param {
    fn new(mode: ExecMode, len: usize) -> Self {
        match mode {
            ExecMode::Training => {
                Self { w: vec![0.0; len], dw: vec![0.0; len], vel: vec![0.0; len] }
            }
            ExecMode::Inference => Self { w: vec![0.0; len], dw: Vec::new(), vel: Vec::new() },
        }
    }

    fn training_bytes(&self) -> usize {
        (self.dw.len() + self.vel.len()) * 4
    }
}

/// Training-only state of a convolution node.
struct ConvTrainState {
    dw: BlockedFilter,
    w_vel: BlockedFilter,
    /// masked dO scratch (saved for the update pass)
    dout_masked: BlockedActs,
    /// dI scratch (accumulated into the bottom's grad)
    di_scratch: BlockedActs,
}

/// Inference-only folded-BN state of a convolution node: the weights
/// with `gamma/sqrt(running_var+eps)` folded in and the per-channel
/// bias `beta − gamma·running_mean/sqrt(running_var+eps)`. Re-derived
/// by [`Network::refold`] from the raw conv weights and the target
/// BN's parameters — which stay authoritative, so the state dict is
/// unaffected and a `load_state_dict` transparently refreshes the
/// fold.
struct FoldedConv {
    /// The BN node whose parameters fold into this convolution.
    bn: usize,
    /// Alias-resolved owner of the folded BN's residual blob, if any.
    eltwise: Option<usize>,
    /// Folded weights (raw weights × per-output-channel scale).
    w: BlockedFilter,
    /// Folded per-channel bias, padded to whole SIMD blocks (padding
    /// lanes kept at 0 so the fused apply preserves the zero-lane
    /// invariant).
    bias: Vec<f32>,
}

/// Per-conv-node int8 execution state, re-derived by `requantize` from
/// the current (folded) f32 weights and the input blob's per-channel
/// absolute-maximum estimate. A conv node carries one iff the network
/// runs at [`Precision::Int8`] *and* its input amax is known (derived
/// from BN parameters or measured by calibration) — otherwise the node
/// falls back to its f32 plan, with the quantize-on-entry /
/// requantize-in-APPLY convention keeping every blob between nodes
/// plain f32 (the explicit precision boundary of mixed graphs).
struct QuantState {
    /// int8 weights with the input scales pre-folded per channel.
    wq: VnniFilter,
    /// Per-output-channel requant multiplier (`kb·VLEN` lanes).
    mult: Vec<f32>,
    /// Per-input-channel quantization factor `127/amax` (1.0 for
    /// degenerate all-zero channels — safe, never NaN/inf).
    inv_sx: Vec<f32>,
    /// All-zero bias for plans whose f32 fuse carries no bias source:
    /// the quantized plan still runs a bias-bearing APPLY (the requant
    /// pass must visit every tile), so a neutral vector stands in.
    zero_bias: Option<Vec<f32>>,
}

#[allow(dead_code)]
// eltwise indices / dims kept for introspection
// One LayerState exists per network layer and they live in a Vec for
// the network's lifetime; boxing the Conv payload would only add an
// indirection on the training hot path.
#[allow(clippy::large_enum_variant)]
enum LayerState {
    Input,
    Conv {
        /// Shared plan handle (deduped through the [`PlanCache`]).
        layer: Arc<ConvLayer>,
        w: BlockedFilter,
        bias: Option<Param>,
        relu: bool,
        eltwise: Option<usize>,
        /// `None` in inference mode — the zero-gradient-allocation
        /// invariant the serving path depends on.
        train: Option<ConvTrainState>,
        /// `Some` when the inference fusion pass folded a BN into this
        /// convolution (never in training mode).
        folded: Option<Box<FoldedConv>>,
    },
    Bn {
        gamma: Param,
        beta: Param,
        saved: ops::BnSaved,
        /// EMA of the per-channel batch means seen during training
        /// (persisted through the state dict; groundwork for
        /// frozen-stats inference).
        running_mean: Vec<f32>,
        /// EMA of the per-channel batch variances (initialized to 1).
        running_var: Vec<f32>,
        relu: bool,
        eltwise: Option<usize>,
    },
    Pool {
        kind: PoolKind,
        size: usize,
        stride: usize,
        pad: usize,
        argmax: Vec<u32>,
    },
    Gap,
    Fc {
        w: Param,
        b: Param,
        in_dim: usize,
        out_dim: usize,
    },
    SoftmaxLoss {
        probs: Vec<f32>,
        classes: usize,
    },
    Split,
    Concat,
}

/// Metrics of one training step.
#[derive(Clone, Copy, Debug)]
pub struct StepStats {
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Top-1 accuracy on the minibatch.
    pub top1: f32,
}

/// One `Conv → Bn (→ eltwise-add → ReLU)` subgraph the inference
/// fusion pass rewrites into a single fused convolution: the BN's
/// frozen statistics fold into the conv's weights and a per-channel
/// bias, and the BN's residual add / ReLU ride along in the conv's
/// cache-hot APPLY step.
#[derive(Clone, Copy, Debug)]
struct FoldSpec {
    /// The BN node folded away (its parameters stay authoritative —
    /// the folded weights re-derive from them on every state load).
    bn: usize,
    /// ReLU of the folded BN.
    relu: bool,
    /// Alias-resolved owner of the BN's residual blob, if any.
    eltwise: Option<usize>,
}

/// Output of the plan phase: everything shape-dependent, including
/// the (cached) convolution plans, but **no** tensor storage.
struct GraphPlan {
    etg: Etg,
    /// Alias resolution: node → node owning its output blob (Split
    /// nodes alias their bottom; in inference mode, folded BN nodes
    /// alias their producer convolution).
    alias: Vec<usize>,
    /// Inferred (c, h, w) per node.
    shapes: Vec<(usize, usize, usize)>,
    /// Physical padding of each owner node's output blob (consumer
    /// padding for non-conv producers, the folded BN's consumer
    /// padding for fused convolutions, 0 otherwise).
    opad: Vec<usize>,
    /// One shared plan per convolution node.
    conv_plans: Vec<Option<Arc<ConvLayer>>>,
    /// Fusion rewrite per convolution node (inference mode only).
    fold: Vec<Option<FoldSpec>>,
    /// Numeric execution mode every conv plan was built for.
    precision: Precision,
    input_node: usize,
    loss_node: usize,
    classes: usize,
}

/// Plan phase: compile the topology, infer geometry, decide the
/// inference BN folds, and obtain every convolution plan through
/// `cache` (one JIT + dryrun per *distinct* normalized layer, shared
/// handles for repeats).
#[allow(clippy::too_many_arguments)]
fn plan_graph(
    nl: &[NodeSpec],
    minibatch: usize,
    pool: &Arc<ThreadPool>,
    cache: &PlanCache,
    mode: ExecMode,
    fold_bn: bool,
    tune: conv::TuneLevel,
    precision: Precision,
) -> GraphPlan {
    let threads = pool.nthreads();
    let etg = compile(nl);
    let nodes = &etg.eng.nodes;
    let index: HashMap<String, usize> =
        nodes.iter().enumerate().map(|(i, n)| (n.name().to_string(), i)).collect();

    // alias resolution for Split nodes
    let mut alias: Vec<usize> = (0..nodes.len()).collect();
    for (i, n) in nodes.iter().enumerate() {
        if let NodeSpec::Split { bottom, .. } = n {
            alias[i] = alias[index[bottom]];
        }
    }

    // shape inference: (c, h, w) per node
    let mut shapes: Vec<(usize, usize, usize)> = Vec::with_capacity(nodes.len());
    for n in nodes.iter() {
        let dim_of = |name: &str| shapes[alias[index[name]]];
        let sh = match n {
            NodeSpec::Input { c, h, w, .. } => (*c, *h, *w),
            NodeSpec::Conv { bottom, k, r, s, stride, pad, .. } => {
                let (_, h, w) = dim_of(bottom);
                ((*k), (h + 2 * pad - r) / stride + 1, (w + 2 * pad - s) / stride + 1)
            }
            NodeSpec::Bn { bottom, .. } => dim_of(bottom),
            NodeSpec::Pool { bottom, size, stride, pad, .. } => {
                let (c, h, w) = dim_of(bottom);
                (c, (h + 2 * pad - size) / stride + 1, (w + 2 * pad - size) / stride + 1)
            }
            NodeSpec::GlobalAvgPool { bottom, .. } => {
                let (c, _, _) = dim_of(bottom);
                (c, 1, 1)
            }
            NodeSpec::Fc { k, .. } => (*k, 1, 1),
            NodeSpec::SoftmaxLoss { bottom, .. } => dim_of(bottom),
            NodeSpec::Concat { bottoms, .. } => {
                let (mut c, mut h, mut w) = (0, 0, 0);
                for b in bottoms {
                    let (cc, hh, ww) = dim_of(b);
                    c += cc;
                    h = hh;
                    w = ww;
                }
                (c, h, w)
            }
            NodeSpec::Split { bottom, .. } => dim_of(bottom),
        };
        shapes.push(sh);
    }

    // padding inference: blob pad = max pad over conv consumers
    let mut blob_pad = vec![0usize; nodes.len()];
    for n in nodes.iter() {
        if let NodeSpec::Conv { bottom, pad, .. } = n {
            let owner = alias[index[bottom.as_str()]];
            blob_pad[owner] = blob_pad[owner].max(*pad);
        }
    }
    // conv outputs must stay pad-0 (they feed BN/pool/eltwise in the
    // supported topologies); padded consumers read BN/pool outputs
    for (i, n) in nodes.iter().enumerate() {
        if matches!(n, NodeSpec::Conv { .. }) {
            assert_eq!(
                blob_pad[i],
                0,
                "conv '{}' output feeds a padded conv directly; insert a bn node",
                n.name()
            );
        }
    }

    // physical padding of each node's own output blob: convs, GAP and
    // FC produce pad-0 tensors, the rest inherit the consumer padding
    // (folds below lift a fused conv's pad to its BN's)
    let mut opad: Vec<usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| match n {
            NodeSpec::Conv { .. } | NodeSpec::GlobalAvgPool { .. } | NodeSpec::Fc { .. } => 0,
            _ => blob_pad[i],
        })
        .collect();

    // the inference fusion pass (Section II-G taken to its logical
    // end): a BN whose bottom is a *pure* convolution it exclusively
    // consumes folds into that convolution — frozen stats become
    // folded weights + a per-channel bias, the BN's residual/ReLU ride
    // in the conv's APPLY step, and the BN node aliases the conv's
    // blob (its standalone full-tensor pass disappears). A fan-out
    // conv is never folded: the NL extender routes shared blobs
    // through a Split, so the BN's bottom is then not a Conv node.
    let mut fold: Vec<Option<FoldSpec>> = vec![None; nodes.len()];
    if mode == ExecMode::Inference && fold_bn {
        for (j, n) in nodes.iter().enumerate() {
            let NodeSpec::Bn { bottom, relu, eltwise, .. } = n else { continue };
            let bi = index[bottom.as_str()];
            let NodeSpec::Conv { bias, relu: conv_relu, eltwise: conv_elt, .. } = &nodes[bi] else {
                continue;
            };
            // only a conv with no fused ops of its own can absorb the
            // BN's affine + post-ops
            if *bias || *conv_relu || conv_elt.is_some() {
                continue;
            }
            if let Some(e) = eltwise {
                let ro = alias[index[e.as_str()]];
                // the residual must already exist when the *conv*
                // executes (the fused apply reads it there, earlier
                // than the BN's original schedule slot) and must share
                // the merged blob's physical geometry
                if ro >= bi || opad[ro] != blob_pad[j] {
                    continue;
                }
            }
            fold[bi] = Some(FoldSpec {
                bn: j,
                relu: *relu,
                eltwise: eltwise.as_ref().map(|e| alias[index[e.as_str()]]),
            });
            // re-point the BN — and any Split already aliased to it —
            // at the convolution's blob
            for a in alias.iter_mut() {
                if *a == j {
                    *a = bi;
                }
            }
            // the merged blob carries the BN's consumer padding
            opad[bi] = blob_pad[j];
        }
    }

    // convolution plans through the cache (the JIT + dryrun phase)
    let mut conv_plans: Vec<Option<Arc<ConvLayer>>> = Vec::with_capacity(nodes.len());
    let mut input_node = usize::MAX;
    let mut loss_node = usize::MAX;
    let mut classes = 0usize;
    for (i, n) in nodes.iter().enumerate() {
        let plan = match n {
            NodeSpec::Input { .. } => {
                input_node = i;
                None
            }
            NodeSpec::SoftmaxLoss { bottom, .. } => {
                loss_node = i;
                classes = shapes[alias[index[bottom.as_str()]]].0;
                None
            }
            NodeSpec::Conv { bottom, k, r, s, stride, pad, bias, relu, eltwise, .. } => {
                let bi = alias[index[bottom.as_str()]];
                let (bc, bh, bw) = shapes[bi];
                let shape =
                    tensor::ConvShape::new(minibatch, bc, *k, bh, bw, *r, *s, *stride, *pad);
                let fuse = if let Some(f) = fold[i] {
                    // a folded BN always contributes its bias shift;
                    // its residual add / ReLU complete the variant
                    match (f.relu, f.eltwise.is_some()) {
                        (false, false) => FusedOp::Bias,
                        (true, false) => FusedOp::BiasRelu,
                        (false, true) => FusedOp::BiasEltwise,
                        (true, true) => FusedOp::BiasEltwiseRelu,
                    }
                } else {
                    match (bias, relu, eltwise.is_some()) {
                        (true, false, false) => FusedOp::Bias,
                        (false, true, false) => FusedOp::Relu,
                        (true, true, false) => FusedOp::BiasRelu,
                        (false, false, true) => FusedOp::Eltwise,
                        (false, true, true) => FusedOp::EltwiseRelu,
                        (true, false, true) => FusedOp::BiasEltwise,
                        (true, true, true) => FusedOp::BiasEltwiseRelu,
                        (false, false, false) => FusedOp::None,
                    }
                };
                Some(
                    cache.get_or_build(
                        shape,
                        LayerOptions::new(threads)
                            .with_fuse(fuse)
                            // int8: every conv also plans a fused
                            // quantized forward, so a later calibration
                            // can widen coverage without replanning
                            .with_precision(precision)
                            // the *physical* padding of the input blob
                            // (for a folded producer, the merged blob
                            // carries its BN's consumer padding)
                            .with_input_pad(opad[bi])
                            .with_dout_pad(0)
                            .with_out_pad(opad[i])
                            // autotuning: the cache memoizes winners per
                            // (shape, machine, level), so repeated shapes
                            // search once; Measured micro-benches on the
                            // network's own pool
                            .with_tune(tune)
                            .with_pool(Arc::clone(pool)),
                    ),
                )
            }
            _ => None,
        };
        conv_plans.push(plan);
    }
    assert!(input_node != usize::MAX, "topology has no input node");
    assert!(loss_node != usize::MAX, "topology has no softmaxloss node");
    GraphPlan {
        etg,
        alias,
        shapes,
        opad,
        conv_plans,
        fold,
        precision,
        input_node,
        loss_node,
        classes,
    }
}

impl GraphPlan {
    /// Physical padding of node `i`'s own output blob.
    fn out_pad(&self, i: usize) -> usize {
        self.opad[i]
    }

    /// Whether node `i` owns an activation blob (Splits alias their
    /// bottom, the loss head reads its bottom in place).
    fn owns_blob(&self, i: usize) -> bool {
        !matches!(self.etg.eng.nodes[i], NodeSpec::Split { .. } | NodeSpec::SoftmaxLoss { .. })
    }
}

/// Inference memory plan: walk the forward schedule, hand every
/// blob-owning node a slot, and return a node's slot to the free pool
/// of its geometry once its last consumer has executed — so e.g. the
/// early-stage 56×56 activations of ResNet-50 back many later nodes.
///
/// Reuse is keyed on the exact `(n, c, h, w, pad)` geometry. Every
/// producer fully overwrites its logical interior and nothing writes
/// the physical padding border, so a recycled buffer's border stays
/// zero — the invariant padded convolutions rely on.
///
/// A dying input is released only *after* the current node's output
/// slot is taken, so an operator never reads and writes one buffer.
/// The network-input node's slot is pinned (never recycled): a batch
/// loaded through `input_mut` stays valid across repeated forwards,
/// the same contract training mode provides.
fn assign_slots_inference(plan: &GraphPlan, minibatch: usize) -> (Vec<usize>, Vec<Option<Blob>>) {
    type Geom = (usize, usize, usize, usize, usize);
    let nodes_len = plan.etg.eng.nodes.len();
    let last = fwd_last_use(&plan.etg, &plan.alias);
    let geom_of = |i: usize| -> Geom {
        let (c, h, w) = plan.shapes[i];
        (minibatch, c, h, w, plan.out_pad(i))
    };
    let mut slot_of = vec![usize::MAX; nodes_len];
    let mut slot_geom: Vec<Geom> = Vec::new();
    let mut free: HashMap<Geom, Vec<usize>> = HashMap::new();
    for (pos, t) in plan.etg.fwd.iter().enumerate() {
        let node = t.node;
        if plan.alias[node] != node || !plan.owns_blob(node) {
            // alias nodes and the loss head own no storage; their
            // inputs still die here, so fall through to the release
        } else {
            let geom = geom_of(node);
            let slot = match free.get_mut(&geom).and_then(|v| v.pop()) {
                Some(s) => s,
                None => {
                    slot_geom.push(geom);
                    slot_geom.len() - 1
                }
            };
            slot_of[node] = slot;
        }
        // release every distinct input blob whose last use is here
        // (except the pinned network-input slot)
        let mut dying: Vec<usize> = plan.etg.eng.preds[node]
            .iter()
            .map(|&p| plan.alias[p])
            .filter(|&o| o != plan.input_node && last[o] == pos && slot_of[o] != usize::MAX)
            .collect();
        dying.sort_unstable();
        dying.dedup();
        for o in dying {
            free.entry(geom_of(o)).or_default().push(slot_of[o]);
        }
    }
    let blobs = slot_geom
        .into_iter()
        .map(|(n, c, h, w, pad)| {
            Some(Blob { act: BlockedActs::zeros(n, c, h, w, pad), grad: None })
        })
        .collect();
    (slot_of, blobs)
}

/// A compiled network (trainable or forward-only, per [`ExecMode`]).
#[allow(dead_code)] // loss_node kept for graph introspection
pub struct Network {
    pool: Arc<ThreadPool>,
    etg: Etg,
    mode: ExecMode,
    /// Blob storage per slot. Training mode uses one slot per owner
    /// node; inference mode shares slots between nodes with disjoint
    /// forward lifetimes (the liveness memory plan).
    blobs: Vec<Option<Blob>>,
    /// Owner node → slot index (usize::MAX for blob-less nodes).
    slot_of: Vec<usize>,
    /// Alias resolution: node → node owning its output blob.
    alias: Vec<usize>,
    /// Inferred logical (c, h, w) per node (state-dict geometry).
    shapes: Vec<(usize, usize, usize)>,
    layers: Vec<LayerState>,
    /// Index of the input node and the loss node.
    input_node: usize,
    loss_node: usize,
    /// Logical (c, h, w) of the input node.
    input_dims: (usize, usize, usize),
    minibatch: usize,
    /// Class count of the softmax head.
    pub classes: usize,
    labels: Vec<usize>,
    /// Numeric execution mode the conv plans were built for.
    precision: Precision,
    /// Per-node int8 state (`Some` only for quantizable convs at
    /// [`Precision::Int8`]); rebuilt by `requantize`.
    quant: Vec<Option<QuantState>>,
    /// Per-owner-node input-amax estimate derived from BN parameters
    /// (rebuilt with every `requantize`).
    derived_amax: Vec<Option<Vec<f32>>>,
    /// Per-owner-node measured amax from `calibrate_batch` forwards
    /// (max-accumulated; overrides the derived estimate).
    calibrated_amax: Vec<Option<Vec<f32>>>,
    /// `true` while a calibration forward runs: forces the f32 path so
    /// the recorded maxima describe the unquantized distribution.
    calibrating: bool,
    /// Reusable int16 activation scratch, one per distinct input-blob
    /// geometry `(n, c, h, w, pad)` seen by quantized convs.
    quant_scratch: HashMap<(usize, usize, usize, usize, usize), VnniActs>,
}

impl Network {
    /// Compile a validated [`ModelSpec`] for a minibatch size and
    /// thread count: a private pool, a private plan cache, training
    /// mode.
    ///
    /// Malformed topologies cannot reach this point — every
    /// [`ModelSpec`] constructor validates — so the only failures left
    /// are degenerate runtime parameters ([`Error::BadInput`]).
    pub fn build(spec: &ModelSpec, minibatch: usize, threads: usize) -> Result<Self, Error> {
        if threads == 0 {
            return Err(Error::BadInput("threads must be >= 1".to_string()));
        }
        Self::build_with(
            spec,
            minibatch,
            Arc::new(ThreadPool::new(threads)),
            ExecMode::Training,
            &PlanCache::new(),
        )
    }

    /// Full-control build: a shared thread pool, an execution mode and
    /// a shared [`PlanCache`]. Serving stacks pass one pool + cache to
    /// every network they build so repeated layer shapes JIT once.
    ///
    /// In [`ExecMode::Inference`] the plan phase runs the BN fusion
    /// pass: every `Conv → Bn (→ eltwise-add → ReLU)` subgraph
    /// executes as one fused convolution with the BN's frozen
    /// statistics folded into weights and bias (see
    /// [`Self::folded_bn_count`]); BN nodes that cannot fold still
    /// normalize with frozen running statistics, so bn-graph forwards
    /// are batch-composition-independent either way.
    pub fn build_with(
        spec: &ModelSpec,
        minibatch: usize,
        pool: Arc<ThreadPool>,
        mode: ExecMode,
        cache: &PlanCache,
    ) -> Result<Self, Error> {
        Self::build_with_fold(spec, minibatch, pool, mode, cache, true)
    }

    /// [`Self::build_with`] with the inference BN fusion pass made
    /// explicit: `fold_bn = false` keeps every BN a standalone
    /// frozen-stats pass — the unfused reference the fused executor is
    /// benchmarked and tested against. Ignored in training mode.
    pub fn build_with_fold(
        spec: &ModelSpec,
        minibatch: usize,
        pool: Arc<ThreadPool>,
        mode: ExecMode,
        cache: &PlanCache,
        fold_bn: bool,
    ) -> Result<Self, Error> {
        Self::build_tuned(spec, minibatch, pool, mode, cache, fold_bn, conv::TuneLevel::Heuristic)
    }

    /// [`Self::build_with_fold`] with the plan-time autotuner enabled:
    /// every convolution's blocking is chosen at `tune` level
    /// (see [`conv::TuneLevel`]), with winners memoized in `cache`'s
    /// tuning store — replicas and repeated builds never re-tune, and
    /// [`PlanCache::load_tuning`] lets a restart skip measurement
    /// entirely.
    pub fn build_tuned(
        spec: &ModelSpec,
        minibatch: usize,
        pool: Arc<ThreadPool>,
        mode: ExecMode,
        cache: &PlanCache,
        fold_bn: bool,
        tune: conv::TuneLevel,
    ) -> Result<Self, Error> {
        Self::build_quantized(spec, minibatch, pool, mode, cache, fold_bn, tune, Precision::F32)
    }

    /// [`Self::build_tuned`] with the numeric execution mode made
    /// explicit. At [`Precision::Int8`] (inference mode only) every
    /// convolution plans a fused quantized forward next to its f32
    /// plan; nodes whose input-scale estimate can be derived from BN
    /// parameters execute int8 immediately, the rest fall back to f32
    /// until a [`Self::calibrate_batch`] measurement covers them.
    /// Blobs between nodes stay plain f32 either way — quantization
    /// happens on entry to a conv and requantization inside its fused
    /// APPLY, so mixed-precision graphs need no explicit cast nodes.
    #[allow(clippy::too_many_arguments)]
    pub fn build_quantized(
        spec: &ModelSpec,
        minibatch: usize,
        pool: Arc<ThreadPool>,
        mode: ExecMode,
        cache: &PlanCache,
        fold_bn: bool,
        tune: conv::TuneLevel,
        precision: Precision,
    ) -> Result<Self, Error> {
        if minibatch == 0 {
            return Err(Error::BadInput("minibatch must be >= 1".to_string()));
        }
        if precision == Precision::Int8 && mode != ExecMode::Inference {
            return Err(Error::BadInput("int8 precision requires inference mode".to_string()));
        }
        let plan =
            plan_graph(spec.nodes(), minibatch, &pool, cache, mode, fold_bn, tune, precision);
        Ok(Self::allocate(plan, minibatch, pool, mode, spec.seed()))
    }

    /// Allocate phase: materialize parameters and activation storage
    /// for `mode` over a finished [`GraphPlan`]. `seed` drives the
    /// per-node weight-init streams.
    fn allocate(
        plan: GraphPlan,
        minibatch: usize,
        pool: Arc<ThreadPool>,
        mode: ExecMode,
        seed: u64,
    ) -> Self {
        let nodes_len = plan.etg.eng.nodes.len();
        let index: HashMap<String, usize> =
            plan.etg.eng.nodes.iter().enumerate().map(|(i, n)| (n.name().to_string(), i)).collect();

        // activation storage: one slot per owner node in training,
        // liveness-shared slots in inference
        let (slot_of, blobs) = match mode {
            ExecMode::Training => {
                let mut slot_of = vec![usize::MAX; nodes_len];
                let mut blobs: Vec<Option<Blob>> = Vec::with_capacity(nodes_len);
                for i in 0..nodes_len {
                    if plan.alias[i] == i && plan.owns_blob(i) {
                        let (c, h, w) = plan.shapes[i];
                        let pad = plan.out_pad(i);
                        slot_of[i] = blobs.len();
                        blobs.push(Some(Blob {
                            act: BlockedActs::zeros(minibatch, c, h, w, pad),
                            grad: Some(BlockedActs::zeros(minibatch, c, h, w, pad)),
                        }));
                    }
                }
                (slot_of, blobs)
            }
            ExecMode::Inference => assign_slots_inference(&plan, minibatch),
        };

        // parameters + per-node operator state. Every parameterized
        // node draws from its own RNG stream keyed on (spec seed, node
        // name): training and inference nets built from one spec carry
        // bit-identical initial weights, and a node's init no longer
        // depends on which nodes were constructed before it.
        let mut layers: Vec<LayerState> = Vec::with_capacity(nodes_len);
        for (i, n) in plan.etg.eng.nodes.iter().enumerate() {
            let index_of = |name: &str| index[name];
            let (c, _, _) = plan.shapes[i];
            let state = match n {
                NodeSpec::Input { .. } => LayerState::Input,
                NodeSpec::Conv { bottom, k, r, s, bias, relu, eltwise, .. } => {
                    let layer = Arc::clone(plan.conv_plans[i].as_ref().expect("conv planned"));
                    let bi = plan.alias[index_of(bottom.as_str())];
                    let (bc, _, _) = plan.shapes[bi];
                    let mut wt = BlockedFilter::zeros(*k, bc, *r, *s);
                    he_init_filter(&mut wt, &mut node_rng(seed, n.name()));
                    let bias_p = bias.then(|| Param::new(mode, k.next_multiple_of(VLEN)));
                    let train = (mode == ExecMode::Training).then(|| ConvTrainState {
                        dw: BlockedFilter::zeros(*k, bc, *r, *s),
                        w_vel: BlockedFilter::zeros(*k, bc, *r, *s),
                        dout_masked: layer.new_output(),
                        di_scratch: layer.new_input(),
                    });
                    let folded = plan.fold[i].map(|f| {
                        Box::new(FoldedConv {
                            bn: f.bn,
                            eltwise: f.eltwise,
                            w: BlockedFilter::zeros(*k, bc, *r, *s),
                            bias: vec![0.0; k.next_multiple_of(VLEN)],
                        })
                    });
                    LayerState::Conv {
                        layer,
                        w: wt,
                        bias: bias_p,
                        relu: *relu,
                        eltwise: eltwise.as_ref().map(|e| plan.alias[index_of(e.as_str())]),
                        train,
                        folded,
                    }
                }
                NodeSpec::Bn { relu, eltwise, .. } => {
                    let cpad = c.next_multiple_of(VLEN);
                    let mut gamma = Param::new(mode, cpad);
                    gamma.w.fill(1.0);
                    LayerState::Bn {
                        gamma,
                        beta: Param::new(mode, cpad),
                        saved: ops::BnSaved::default(),
                        running_mean: vec![0.0; cpad],
                        running_var: vec![1.0; cpad],
                        relu: *relu,
                        eltwise: eltwise.as_ref().map(|e| plan.alias[index_of(e.as_str())]),
                    }
                }
                NodeSpec::Pool { kind, size, stride, pad, .. } => LayerState::Pool {
                    kind: *kind,
                    size: *size,
                    stride: *stride,
                    pad: *pad,
                    argmax: Vec::new(),
                },
                NodeSpec::GlobalAvgPool { .. } => LayerState::Gap,
                NodeSpec::Fc { bottom, k, .. } => {
                    let (bc, _, _) = plan.shapes[plan.alias[index_of(bottom.as_str())]];
                    let (in_dim, out_dim) = (bc.next_multiple_of(VLEN), k.next_multiple_of(VLEN));
                    let mut w = Param::new(mode, in_dim * out_dim);
                    let mut rng = node_rng(seed, n.name());
                    let scale = (2.0 / in_dim as f32).sqrt();
                    for v in w.w.iter_mut() {
                        *v = rng.next_f32() * 2.0 * scale;
                    }
                    LayerState::Fc { w, b: Param::new(mode, out_dim), in_dim, out_dim }
                }
                NodeSpec::SoftmaxLoss { .. } => {
                    LayerState::SoftmaxLoss { probs: Vec::new(), classes: plan.classes }
                }
                NodeSpec::Concat { .. } => LayerState::Concat,
                NodeSpec::Split { .. } => LayerState::Split,
            };
            layers.push(state);
        }
        let input_dims = plan.shapes[plan.alias[plan.input_node]];
        let mut net = Self {
            pool,
            etg: plan.etg,
            mode,
            blobs,
            slot_of,
            alias: plan.alias,
            shapes: plan.shapes,
            layers,
            input_node: plan.input_node,
            loss_node: plan.loss_node,
            input_dims,
            minibatch,
            classes: plan.classes,
            labels: Vec::new(),
            precision: plan.precision,
            quant: (0..nodes_len).map(|_| None).collect(),
            derived_amax: vec![None; nodes_len],
            calibrated_amax: vec![None; nodes_len],
            calibrating: false,
            quant_scratch: HashMap::new(),
        };
        // derive the folded weights/biases from the freshly
        // initialized parameters (no-op without folds)
        net.refold();
        net
    }

    /// Re-derive every folded convolution's weights and bias from the
    /// current raw conv weights and BN parameters (frozen running
    /// statistics). Called after allocation and after every
    /// [`Self::load_state_dict`], so the fused plans always execute
    /// the parameters the state dict holds.
    fn refold(&mut self) {
        for i in 0..self.layers.len() {
            let bn = match &self.layers[i] {
                LayerState::Conv { folded: Some(f), .. } => f.bn,
                _ => continue,
            };
            let (gamma, beta, mean, var) = match &self.layers[bn] {
                LayerState::Bn { gamma, beta, running_mean, running_var, .. } => {
                    (gamma.w.clone(), beta.w.clone(), running_mean.clone(), running_var.clone())
                }
                _ => unreachable!("folds target bn nodes"),
            };
            if let LayerState::Conv { w, folded: Some(f), .. } = &mut self.layers[i] {
                let kpad = f.bias.len();
                let mut scale = vec![0.0f32; kpad];
                for k in 0..kpad {
                    scale[k] = gamma[k] / (var[k] + BN_EPS).sqrt();
                    // padding lanes stay exactly 0 (canonical gamma=1,
                    // var=1, beta=mean=0 would give 0 anyway, but the
                    // zero-lane invariant deserves no rounding risk)
                    f.bias[k] = if k < w.k { beta[k] - mean[k] * scale[k] } else { 0.0 };
                }
                // blocked filter layout [Kb][Cb][R][S][c][k]: the
                // output channel of element `idx` is
                // (idx / stride_kb)·VLEN + idx % VLEN
                let stride_kb = w.stride_kb();
                for (idx, dst) in f.w.as_mut_slice().iter_mut().enumerate() {
                    *dst = w.as_slice()[idx] * scale[(idx / stride_kb) * VLEN + idx % VLEN];
                }
            }
        }
        // folded weights feed the int8 quantization — refresh it too
        // (no-op at f32 precision)
        self.requantize();
    }

    /// Derive a per-channel absolute-maximum estimate for every
    /// blob-owning node from the *current* parameters, walking the
    /// (topologically ordered) node list:
    ///
    /// * the network input is assumed normalized to `|x| <= 1`
    ///   (calibration measures the real range when that is wrong);
    /// * a BN output — standalone or folded into its producer conv —
    ///   is bounded by `|beta| + 3·|gamma|` per channel (the frozen
    ///   running statistics normalize the pre-activation to ~N(0,1));
    /// * pooling and global average pooling never increase a maximum;
    /// * concat concatenates channel ranges, a residual add sums them;
    /// * a convolution *without* a folded BN has an unknown output
    ///   range → `None`, and every consumer conv falls back to f32
    ///   until calibration covers it.
    fn derive_amax(&self) -> Vec<Option<Vec<f32>>> {
        let n = self.layers.len();
        let mut amax: Vec<Option<Vec<f32>>> = vec![None; n];
        let bn_bound = |gamma: &[f32], beta: &[f32], cpad: usize| -> Vec<f32> {
            (0..cpad).map(|c| beta[c].abs() + 3.0 * gamma[c].abs()).collect()
        };
        let add_residual = |own: Vec<f32>, res: Option<&Vec<f32>>| -> Option<Vec<f32>> {
            res.map(|r| own.iter().zip(r).map(|(a, b)| a + b).collect())
        };
        for i in 0..n {
            if self.alias[i] != i {
                continue;
            }
            let cpad = self.shapes[i].0.next_multiple_of(VLEN);
            let bottom_owner = || self.alias[self.etg.eng.preds[i][0]];
            amax[i] = match &self.layers[i] {
                LayerState::Input => Some(vec![1.0; cpad]),
                LayerState::Conv { folded: Some(f), .. } => {
                    let bound = match &self.layers[f.bn] {
                        LayerState::Bn { gamma, beta, .. } => bn_bound(&gamma.w, &beta.w, cpad),
                        _ => unreachable!("folds target bn nodes"),
                    };
                    match f.eltwise {
                        Some(ro) => add_residual(bound, amax[ro].as_ref()),
                        None => Some(bound),
                    }
                }
                LayerState::Conv { folded: None, .. } => None,
                LayerState::Bn { gamma, beta, eltwise, .. } => {
                    let bound = bn_bound(&gamma.w, &beta.w, cpad);
                    match eltwise {
                        Some(ro) => add_residual(bound, amax[*ro].as_ref()),
                        None => Some(bound),
                    }
                }
                LayerState::Pool { .. } | LayerState::Gap => amax[bottom_owner()].clone(),
                LayerState::Concat => {
                    let mut cat = Vec::with_capacity(cpad);
                    let mut ok = true;
                    for &b in &self.etg.eng.preds[i] {
                        let o = self.alias[b];
                        match &amax[o] {
                            Some(a) => cat.extend_from_slice(&a[..self.shapes[o].0]),
                            None => ok = false,
                        }
                    }
                    cat.resize(cpad, 0.0);
                    ok.then_some(cat)
                }
                _ => None,
            };
        }
        amax
    }

    /// Rebuild every quantizable conv node's int8 state from the
    /// current folded f32 weights and the effective per-channel input
    /// amax (measured calibration maxima override the derived
    /// estimates). Runs at the end of [`Self::refold`], so allocation,
    /// `load_state_dict` and a hot weight reload all leave the int8
    /// weights consistent with the f32 parameters. No-op at f32.
    fn requantize(&mut self) {
        if self.precision != Precision::Int8 {
            return;
        }
        self.derived_amax = self.derive_amax();
        for i in 0..self.layers.len() {
            let LayerState::Conv { layer, w, bias, folded, .. } = &self.layers[i] else {
                self.quant[i] = None;
                continue;
            };
            let Some(qplan) = layer.quant_plan() else {
                self.quant[i] = None;
                continue;
            };
            let bi = self.alias[self.etg.eng.preds[i][0]];
            let amax = self.calibrated_amax[bi].as_ref().or(self.derived_amax[bi].as_ref());
            let Some(amax) = amax else {
                self.quant[i] = None;
                continue;
            };
            // s_x = amax/127 per input channel; a degenerate (all-zero
            // or non-finite) channel gets the neutral scale 1.0 — its
            // activations are 0 (or garbage no scale could save), and
            // the scheme stays NaN- and divide-free
            let s_x: Vec<f32> = amax
                .iter()
                .map(|&a| if a > 0.0 && a.is_finite() { a / I8_QMAX } else { 1.0 })
                .collect();
            let inv_sx: Vec<f32> = s_x.iter().map(|&s| 1.0 / s).collect();
            let wsrc: &BlockedFilter = match folded {
                Some(f) => &f.w,
                None => w,
            };
            let (wq, mult) = VnniFilter::quantize_per_k(wsrc, &s_x);
            let zero_bias = (qplan.fused().needs_bias() && folded.is_none() && bias.is_none())
                .then(|| vec![0.0f32; wsrc.k.next_multiple_of(VLEN)]);
            self.quant[i] = Some(QuantState { wq, mult, inv_sx, zero_bias });
        }
    }

    /// Run one calibration forward over the currently loaded input
    /// batch: the f32 path executes end to end while the per-channel
    /// absolute maximum of every blob is recorded (max-accumulated
    /// across calls, so several batches sharpen one profile), then the
    /// int8 states are rebuilt against the measured ranges. Only
    /// meaningful — and only allowed — at [`Precision::Int8`].
    pub fn calibrate_batch(&mut self) {
        assert_eq!(self.precision, Precision::Int8, "calibration needs an int8-precision network");
        if self.labels.len() != self.minibatch {
            self.labels = vec![0; self.minibatch];
        }
        self.calibrating = true;
        let fwd = self.etg.fwd.clone();
        for t in &fwd {
            self.forward_node(t.node);
            let owner = self.alias[t.node];
            if self.slot_of[owner] != usize::MAX {
                self.record_amax(owner);
            }
        }
        self.calibrating = false;
        self.requantize();
    }

    /// Max-accumulate the per-channel |activation| maxima of `owner`'s
    /// blob into the calibration profile.
    fn record_amax(&mut self, owner: usize) {
        let blob = &self.blobs[self.slot_of[owner]].as_ref().expect("blob in place").act;
        let cpad = blob.cb * VLEN;
        let entry = self.calibrated_amax[owner].get_or_insert_with(|| vec![0.0; cpad]);
        for n in 0..blob.n {
            for cb in 0..blob.cb {
                for h in 0..blob.h {
                    for w in 0..blob.w {
                        for v in 0..VLEN {
                            let x = blob.get(n, cb * VLEN + v, h, w).abs();
                            if x > entry[cb * VLEN + v] {
                                entry[cb * VLEN + v] = x;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Number of trainable parameters (logical, without lane padding).
    pub fn param_count(&self) -> usize {
        let mut total = 0usize;
        for (i, l) in self.layers.iter().enumerate() {
            match l {
                LayerState::Conv { w, bias, .. } => {
                    total += w.k * w.c * w.r * w.s;
                    if bias.is_some() {
                        total += w.k;
                    }
                    let _ = i;
                }
                LayerState::Bn { gamma, .. } => total += 2 * gamma.w.len(),
                LayerState::Fc { w, b, .. } => total += w.w.len() + b.w.len(),
                _ => {}
            }
        }
        total
    }

    /// Gradient bytes exchanged per step under data parallelism (the
    /// allreduce payload of Fig. 9).
    pub fn gradient_bytes(&self) -> f64 {
        self.param_count() as f64 * 4.0
    }

    /// The mode the network's storage was materialized for.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Number of gradient blobs currently allocated (0 in inference).
    pub fn gradient_blob_count(&self) -> usize {
        self.blobs.iter().flatten().filter(|b| b.grad.is_some()).count()
    }

    /// Bytes of training-only state: gradient blobs, weight gradients,
    /// momentum and backward scratch. Exactly 0 in inference mode.
    pub fn training_state_bytes(&self) -> usize {
        let mut total = 0usize;
        for b in self.blobs.iter().flatten() {
            if let Some(g) = &b.grad {
                total += g.as_slice().len() * 4;
            }
        }
        for l in &self.layers {
            match l {
                LayerState::Conv { bias, train, .. } => {
                    if let Some(t) = train {
                        total += (t.dw.as_slice().len() + t.w_vel.as_slice().len()) * 4;
                        total +=
                            (t.dout_masked.as_slice().len() + t.di_scratch.as_slice().len()) * 4;
                    }
                    if let Some(b) = bias {
                        total += b.training_bytes();
                    }
                }
                LayerState::Bn { gamma, beta, .. } => {
                    total += gamma.training_bytes() + beta.training_bytes();
                }
                LayerState::Fc { w, b, .. } => total += w.training_bytes() + b.training_bytes(),
                _ => {}
            }
        }
        total
    }

    /// Activation slots allocated (inference shares slots between
    /// nodes with disjoint lifetimes, so this is below the node count).
    pub fn activation_slot_count(&self) -> usize {
        self.blobs.len()
    }

    /// Bytes of activation storage across all slots.
    pub fn activation_bytes(&self) -> usize {
        self.blobs.iter().flatten().map(|b| b.act.as_slice().len() * 4).sum()
    }

    /// Softmax probabilities of the last forward pass, one padded row
    /// of `cb·VLEN` lanes per sample (the first [`Self::classes`] of
    /// each row are the real classes). Empty before the first forward.
    pub fn probabilities(&self) -> &[f32] {
        if let LayerState::SoftmaxLoss { probs, .. } = &self.layers[self.loss_node] {
            probs
        } else {
            unreachable!("loss node is a softmax")
        }
    }

    /// Mutable access to the input activation (fill with a batch).
    ///
    /// Valid in both modes: the inference memory plan pins the input
    /// node's slot, so a loaded batch stays intact across repeated
    /// `forward` calls exactly as in training mode.
    pub fn input_mut(&mut self) -> &mut BlockedActs {
        let slot = self.slot_of[self.alias[self.input_node]];
        &mut self.blobs[slot].as_mut().unwrap().act
    }

    /// The minibatch size the network was compiled for.
    pub fn minibatch(&self) -> usize {
        self.minibatch
    }

    /// Logical `(c, h, w)` of the network's input node — together with
    /// [`Self::minibatch`] this is everything a batching front-end
    /// needs to slice client payloads into samples.
    pub fn input_dims(&self) -> (usize, usize, usize) {
        self.input_dims
    }

    /// Load `count` dense NCHW f32 samples into batch positions
    /// `0..count` and zero the rest — the safe way to serve a partial
    /// batch (`count < minibatch`): unused tail positions, SIMD lane
    /// padding and the physical zero border all hold the value the
    /// kernels assume regardless of what the previous batch left
    /// behind.
    ///
    /// `samples` must hold exactly `count × c × h × w` elements with
    /// `count <= minibatch`.
    pub fn load_input_nchw(&mut self, samples: &[f32], count: usize) {
        let (c, h, w) = self.input_dims;
        assert!(count >= 1 && count <= self.minibatch, "count must be in 1..=minibatch");
        assert_eq!(samples.len(), count * c * h * w, "samples must be count × c × h × w NCHW f32");
        let minibatch = self.minibatch;
        let input = self.input_mut();
        // only the unloaded tail needs clearing: positions `0..count`
        // are fully overwritten below, and the lane padding / physical
        // border are zeroed at allocation and never written (the blob
        // is pinned — nothing else touches it). The batch dimension is
        // outermost in the blocked layout, so the tail is one slice.
        if count < minibatch {
            let per_sample = input.as_slice().len() / minibatch;
            input.as_mut_slice()[count * per_sample..].fill(0.0);
        }
        for n in 0..count {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        input.set(n, ci, hi, wi, samples[((n * c + ci) * h + hi) * w + wi]);
                    }
                }
            }
        }
    }

    /// Set the labels the next `forward` scores loss/top-1 against.
    pub fn set_labels(&mut self, labels: &[usize]) {
        assert_eq!(labels.len(), self.minibatch);
        self.labels = labels.to_vec();
    }

    /// One full training step on (already loaded) input + labels.
    pub fn train_step(&mut self, labels: &[usize], lr: f32, momentum: f32) -> StepStats {
        assert_eq!(self.mode, ExecMode::Training, "train_step needs a Training-mode network");
        assert_eq!(labels.len(), self.minibatch);
        self.labels = labels.to_vec();
        let stats = self.forward();
        self.backward();
        self.update();
        self.sgd(lr, momentum);
        stats
    }

    /// Forward pass only (inference); returns loss/top-1 against the
    /// last set labels (zeros if never set).
    pub fn forward(&mut self) -> StepStats {
        if self.labels.len() != self.minibatch {
            self.labels = vec![0; self.minibatch];
        }
        let mut out = StepStats { loss: 0.0, top1: 0.0 };
        let fwd = self.etg.fwd.clone();
        for t in &fwd {
            debug_assert_eq!(t.pass, PassKind::Fwd);
            if let Some(s) = self.forward_node(t.node) {
                out = s;
            }
        }
        out
    }

    fn take_blob(&mut self, node: usize) -> Blob {
        self.blobs[self.slot_of[self.alias[node]]].take().expect("blob taken twice")
    }

    fn put_blob(&mut self, node: usize, b: Blob) {
        self.blobs[self.slot_of[self.alias[node]]] = Some(b);
    }

    fn bottoms_of(&self, node: usize) -> Vec<usize> {
        let index: Vec<usize> = self.etg.eng.preds[node].clone();
        index
    }

    fn forward_node(&mut self, node: usize) -> Option<StepStats> {
        let spec = self.etg.eng.nodes[node].clone();
        match spec {
            NodeSpec::Input { .. } | NodeSpec::Split { .. } => None,
            NodeSpec::Conv { bottom: _, .. } => {
                let bots = self.bottoms_of(node);
                let bot_owner = self.alias[bots[0]];
                let bot = self.take_blob(bots[0]);
                let mut own = self.take_blob(node);
                // eltwise residual: the conv's own second bottom, or —
                // for a folded BN — the BN's residual, read here while
                // the output tile is still cache-hot
                let res_owner = match &self.layers[node] {
                    LayerState::Conv { folded: Some(f), .. } => f.eltwise,
                    _ => (bots.len() > 1).then(|| self.alias[bots[1]]),
                };
                let res_is_bot = res_owner == Some(bot_owner);
                let res = match res_owner {
                    Some(ro) if !res_is_bot => Some((ro, self.take_blob(ro))),
                    _ => None,
                };
                let qs = if self.calibrating { &None } else { &self.quant[node] };
                if let LayerState::Conv { layer, w, bias, folded, .. } = &self.layers[node] {
                    let eltwise =
                        if res_is_bot { Some(&bot.act) } else { res.as_ref().map(|(_, b)| &b.act) };
                    if let Some(qs) = qs {
                        // int8 path: quantize the f32 input blob into
                        // the geometry's int16 scratch, run the fused
                        // quantized plan (conv in int8/int16, requant +
                        // bias/residual/ReLU in the f32 APPLY) — the
                        // output blob is plain f32 again, so consumers
                        // never see a precision boundary
                        let a = &bot.act;
                        let key = (a.n, a.c, a.h, a.w, a.pad);
                        let mut xq = self
                            .quant_scratch
                            .remove(&key)
                            .unwrap_or_else(|| VnniActs::zeros(a.n, a.c, a.h, a.w, a.pad));
                        xq.quantize_per_channel_into(a, &qs.inv_sx);
                        let bias_ref: Option<&[f32]> = match folded {
                            Some(f) => Some(&f.bias),
                            None => bias.as_ref().map(|b| &b.w[..]).or(qs.zero_bias.as_deref()),
                        };
                        let ctx = conv::fuse::FuseCtx { bias: bias_ref, eltwise };
                        layer.forward_quant(&self.pool, &xq, &qs.wq, &mut own.act, &qs.mult, &ctx);
                        self.quant_scratch.insert(key, xq);
                    } else {
                        let (weights, ctx) = match folded {
                            Some(f) => {
                                (&f.w, conv::fuse::FuseCtx { bias: Some(&f.bias[..]), eltwise })
                            }
                            None => (
                                w,
                                conv::fuse::FuseCtx {
                                    bias: bias.as_ref().map(|b| &b.w[..]),
                                    eltwise,
                                },
                            ),
                        };
                        layer.forward(&self.pool, &bot.act, weights, &mut own.act, &ctx);
                    }
                } else {
                    unreachable!()
                }
                if let Some((ro, r)) = res {
                    self.put_blob(ro, r);
                }
                self.put_blob(self.bottoms_of(node)[0], bot);
                self.put_blob(node, own);
                None
            }
            NodeSpec::Bn { .. } => {
                // a BN folded into its producer convolution already
                // executed inside the conv's fused APPLY step — its
                // schedule slot is a no-op (the node aliases the
                // conv's blob)
                if self.alias[node] != node {
                    return None;
                }
                let bots = self.bottoms_of(node);
                let bot = self.take_blob(bots[0]);
                let mut own = self.take_blob(node);
                let res = if bots.len() > 1 && self.alias[bots[1]] != self.alias[bots[0]] {
                    Some(self.take_blob(bots[1]))
                } else {
                    None
                };
                let training = self.mode == ExecMode::Training;
                if let LayerState::Bn {
                    gamma, beta, saved, running_mean, running_var, relu, ..
                } = &mut self.layers[node]
                {
                    if training {
                        ops::bn_fwd(
                            &self.pool,
                            &bot.act,
                            &gamma.w,
                            &beta.w,
                            BN_EPS,
                            *relu,
                            res.as_ref().map(|b| &b.act),
                            &mut own.act,
                            saved,
                        );
                        // accumulate the running statistics every
                        // training-mode forward — the EMAs the
                        // frozen-stats inference paths consume
                        for c in 0..running_mean.len() {
                            running_mean[c] =
                                (1.0 - BN_MOMENTUM) * running_mean[c] + BN_MOMENTUM * saved.mean[c];
                            running_var[c] =
                                (1.0 - BN_MOMENTUM) * running_var[c] + BN_MOMENTUM * saved.var[c];
                        }
                    } else {
                        // inference: frozen running statistics — the
                        // output of each sample no longer depends on
                        // its co-batched neighbours (a BN the fusion
                        // pass could not fold still serves correctly)
                        ops::bn_infer_fwd(
                            &self.pool,
                            &bot.act,
                            &gamma.w,
                            &beta.w,
                            running_mean,
                            running_var,
                            BN_EPS,
                            *relu,
                            res.as_ref().map(|b| &b.act),
                            &mut own.act,
                        );
                    }
                } else {
                    unreachable!()
                }
                if let Some(r) = res {
                    self.put_blob(self.bottoms_of(node)[1], r);
                }
                self.put_blob(self.bottoms_of(node)[0], bot);
                self.put_blob(node, own);
                None
            }
            NodeSpec::Pool { .. } => {
                let bots = self.bottoms_of(node);
                let bot = self.take_blob(bots[0]);
                let mut own = self.take_blob(node);
                if let LayerState::Pool { kind, size, stride, pad, argmax } = &mut self.layers[node]
                {
                    match kind {
                        PoolKind::Max => ops::maxpool_fwd(
                            &self.pool,
                            &bot.act,
                            *size,
                            *stride,
                            *pad,
                            &mut own.act,
                            argmax,
                        ),
                        PoolKind::Avg => ops::avgpool_fwd(
                            &self.pool,
                            &bot.act,
                            *size,
                            *stride,
                            *pad,
                            &mut own.act,
                        ),
                    }
                } else {
                    unreachable!()
                }
                self.put_blob(bots[0], bot);
                self.put_blob(node, own);
                None
            }
            NodeSpec::GlobalAvgPool { .. } => {
                let bots = self.bottoms_of(node);
                let bot = self.take_blob(bots[0]);
                let mut own = self.take_blob(node);
                ops::gap_fwd(&self.pool, &bot.act, &mut own.act);
                self.put_blob(bots[0], bot);
                self.put_blob(node, own);
                None
            }
            NodeSpec::Fc { .. } => {
                let bots = self.bottoms_of(node);
                let bot = self.take_blob(bots[0]);
                let mut own = self.take_blob(node);
                if let LayerState::Fc { w, b, .. } = &self.layers[node] {
                    ops::fc_fwd(&self.pool, &bot.act, &w.w, &b.w, &mut own.act);
                } else {
                    unreachable!()
                }
                self.put_blob(bots[0], bot);
                self.put_blob(node, own);
                None
            }
            NodeSpec::SoftmaxLoss { .. } => {
                let bots = self.bottoms_of(node);
                let bot = self.take_blob(bots[0]);
                let labels = self.labels.clone();
                let stats = if let LayerState::SoftmaxLoss { probs, classes } =
                    &mut self.layers[node]
                {
                    let (loss, top1) = ops::softmax_loss_fwd(&bot.act, *classes, &labels, probs);
                    StepStats { loss, top1 }
                } else {
                    unreachable!()
                };
                self.put_blob(bots[0], bot);
                Some(stats)
            }
            NodeSpec::Concat { .. } => {
                let bots = self.bottoms_of(node);
                let mut own = self.take_blob(node);
                let parts: Vec<Blob> = bots.iter().map(|&b| self.take_blob(b)).collect();
                {
                    let refs: Vec<&BlockedActs> = parts.iter().map(|p| &p.act).collect();
                    ops::concat_fwd(&refs, &mut own.act);
                }
                for (b, p) in bots.iter().zip(parts) {
                    self.put_blob(*b, p);
                }
                self.put_blob(node, own);
                None
            }
        }
    }

    /// Backward pass (zeroes gradients first).
    pub fn backward(&mut self) {
        assert_eq!(self.mode, ExecMode::Training, "backward needs a Training-mode network");
        for b in self.blobs.iter_mut().flatten() {
            b.grad.as_mut().expect("training blobs carry gradients").zero();
        }
        let bwd = self.etg.bwd.clone();
        for t in &bwd {
            self.backward_node(t.node);
        }
    }

    fn backward_node(&mut self, node: usize) {
        let spec = self.etg.eng.nodes[node].clone();
        match spec {
            NodeSpec::Input { .. } | NodeSpec::Split { .. } => {}
            NodeSpec::SoftmaxLoss { .. } => {
                let bots = self.bottoms_of(node);
                let mut bot = self.take_blob(bots[0]);
                let labels = self.labels.clone();
                if let LayerState::SoftmaxLoss { probs, classes } = &self.layers[node] {
                    ops::softmax_loss_bwd(probs, *classes, &labels, bot.grad.as_mut().unwrap());
                }
                self.put_blob(bots[0], bot);
            }
            NodeSpec::Fc { .. } => {
                let bots = self.bottoms_of(node);
                let mut bot = self.take_blob(bots[0]);
                let own = self.take_blob(node);
                if let LayerState::Fc { w, b, .. } = &mut self.layers[node] {
                    ops::fc_bwd(
                        &self.pool,
                        &bot.act,
                        own.grad.as_ref().unwrap(),
                        &w.w,
                        bot.grad.as_mut().unwrap(),
                        &mut w.dw,
                        &mut b.dw,
                    );
                }
                self.put_blob(bots[0], bot);
                self.put_blob(node, own);
            }
            NodeSpec::GlobalAvgPool { .. } => {
                let bots = self.bottoms_of(node);
                let mut bot = self.take_blob(bots[0]);
                let own = self.take_blob(node);
                ops::gap_bwd(&self.pool, own.grad.as_ref().unwrap(), bot.grad.as_mut().unwrap());
                self.put_blob(bots[0], bot);
                self.put_blob(node, own);
            }
            NodeSpec::Pool { .. } => {
                let bots = self.bottoms_of(node);
                let mut bot = self.take_blob(bots[0]);
                let own = self.take_blob(node);
                if let LayerState::Pool { kind, size, stride, pad, argmax } = &self.layers[node] {
                    match kind {
                        PoolKind::Max => ops::maxpool_bwd(
                            &self.pool,
                            own.grad.as_ref().unwrap(),
                            argmax,
                            bot.grad.as_mut().unwrap(),
                        ),
                        PoolKind::Avg => ops::avgpool_bwd(
                            &self.pool,
                            own.grad.as_ref().unwrap(),
                            *size,
                            *stride,
                            *pad,
                            bot.grad.as_mut().unwrap(),
                        ),
                    }
                }
                self.put_blob(bots[0], bot);
                self.put_blob(node, own);
            }
            NodeSpec::Bn { .. } => {
                let bots = self.bottoms_of(node);
                let mut bot = self.take_blob(bots[0]);
                let own = self.take_blob(node);
                let mut res = if bots.len() > 1 && self.alias[bots[1]] != self.alias[bots[0]] {
                    Some(self.take_blob(bots[1]))
                } else {
                    None
                };
                if let LayerState::Bn { gamma, beta, saved, relu, .. } = &mut self.layers[node] {
                    ops::bn_bwd(
                        &self.pool,
                        &bot.act,
                        &own.act,
                        own.grad.as_ref().unwrap(),
                        &gamma.w,
                        saved,
                        *relu,
                        res.as_mut().map(|b| b.grad.as_mut().unwrap()),
                        bot.grad.as_mut().unwrap(),
                        &mut gamma.dw,
                        &mut beta.dw,
                    );
                }
                if let Some(r) = res {
                    self.put_blob(self.bottoms_of(node)[1], r);
                }
                self.put_blob(self.bottoms_of(node)[0], bot);
                self.put_blob(node, own);
            }
            NodeSpec::Conv { .. } => {
                let bots = self.bottoms_of(node);
                let mut bot = self.take_blob(bots[0]);
                let own = self.take_blob(node);
                let mut res = if bots.len() > 1 && self.alias[bots[1]] != self.alias[bots[0]] {
                    Some(self.take_blob(bots[1]))
                } else {
                    None
                };
                if let LayerState::Conv { layer, w, bias, relu, eltwise, train, .. } =
                    &mut self.layers[node]
                {
                    let ts = train.as_mut().expect("backward requires training-mode state");
                    let own_grad = own.grad.as_ref().unwrap();
                    // mask the incoming gradient through the fused ReLU;
                    // route it to the residual branch as well
                    let has_post = *relu || eltwise.is_some();
                    let g_len = own_grad.as_slice().len();
                    if has_post {
                        for i in 0..g_len {
                            let mut g = own_grad.as_slice()[i];
                            if *relu && own.act.as_slice()[i] <= 0.0 {
                                g = 0.0;
                            }
                            ts.dout_masked.as_mut_slice()[i] = g;
                        }
                        if eltwise.is_some() {
                            if let Some(r) = res.as_mut() {
                                for (d, s) in r
                                    .grad
                                    .as_mut()
                                    .unwrap()
                                    .as_mut_slice()
                                    .iter_mut()
                                    .zip(ts.dout_masked.as_slice())
                                {
                                    *d += s;
                                }
                            }
                        }
                    } else {
                        ts.dout_masked.as_mut_slice().copy_from_slice(own_grad.as_slice());
                    }
                    // bias gradient
                    if let Some(bp) = bias.as_mut() {
                        bp.dw.fill(0.0);
                        let dm = &ts.dout_masked;
                        let plane = dm.h * dm.w;
                        for n in 0..dm.n {
                            for kb in 0..dm.cb {
                                let base = (n * dm.cb + kb) * plane * VLEN;
                                for px in 0..plane {
                                    for v in 0..VLEN {
                                        bp.dw[kb * VLEN + v] += dm.as_slice()[base + px * VLEN + v];
                                    }
                                }
                            }
                        }
                    }
                    // dI then accumulate into the bottom's gradient
                    layer.backward(&self.pool, &ts.dout_masked, w, &mut ts.di_scratch);
                    ops::accumulate(&self.pool, bot.grad.as_mut().unwrap(), &ts.di_scratch);
                }
                if let Some(r) = res {
                    self.put_blob(self.bottoms_of(node)[1], r);
                }
                self.put_blob(self.bottoms_of(node)[0], bot);
                self.put_blob(node, own);
            }
            NodeSpec::Concat { .. } => {
                let bots = self.bottoms_of(node);
                let own = self.take_blob(node);
                let mut parts: Vec<Blob> = bots.iter().map(|&b| self.take_blob(b)).collect();
                {
                    let mut refs: Vec<&mut BlockedActs> =
                        parts.iter_mut().map(|p| p.grad.as_mut().unwrap()).collect();
                    ops::concat_bwd(own.grad.as_ref().unwrap(), &mut refs);
                }
                for (b, p) in bots.iter().zip(parts) {
                    self.put_blob(*b, p);
                }
                self.put_blob(node, own);
            }
        }
    }

    /// Weight-gradient update pass (the heavy dW computations).
    pub fn update(&mut self) {
        assert_eq!(self.mode, ExecMode::Training, "update needs a Training-mode network");
        let upd = self.etg.upd.clone();
        for t in &upd {
            if let NodeSpec::Conv { .. } = self.etg.eng.nodes[t.node] {
                let bots = self.bottoms_of(t.node);
                let bot = self.take_blob(bots[0]);
                if let LayerState::Conv { layer, train, .. } = &mut self.layers[t.node] {
                    let ts = train.as_mut().expect("update requires training-mode state");
                    layer.update(&self.pool, &bot.act, &ts.dout_masked, &mut ts.dw);
                }
                self.put_blob(bots[0], bot);
            }
        }
    }

    /// SGD with momentum over every parameter.
    pub fn sgd(&mut self, lr: f32, momentum: f32) {
        assert_eq!(self.mode, ExecMode::Training, "sgd needs a Training-mode network");
        let step = |w: &mut [f32], dw: &[f32], vel: &mut [f32]| {
            for i in 0..w.len() {
                vel[i] = momentum * vel[i] - lr * dw[i];
                w[i] += vel[i];
            }
        };
        for l in self.layers.iter_mut() {
            match l {
                LayerState::Conv { w, bias, train, .. } => {
                    let ts = train.as_mut().expect("sgd requires training-mode state");
                    step(w.as_mut_slice(), ts.dw.as_slice(), ts.w_vel.as_mut_slice());
                    if let Some(b) = bias {
                        step(&mut b.w, &b.dw, &mut b.vel);
                    }
                }
                LayerState::Bn { gamma, beta, .. } => {
                    step(&mut gamma.w, &gamma.dw, &mut gamma.vel);
                    step(&mut beta.w, &beta.dw, &mut beta.vel);
                }
                LayerState::Fc { w, b, .. } => {
                    step(&mut w.w, &w.dw, &mut w.vel);
                    step(&mut b.w, &b.dw, &mut b.vel);
                }
                _ => {}
            }
        }
    }

    /// The compiled ETG (inspection/tests).
    pub fn etg(&self) -> &Etg {
        &self.etg
    }

    /// The exact tensor inventory (name, logical dims) the network
    /// exports/imports — the contract both state-dict directions and
    /// their validation share.
    fn param_inventory(&self) -> Vec<(String, Vec<usize>)> {
        let mut inv = Vec::new();
        for (i, l) in self.layers.iter().enumerate() {
            let name = self.etg.eng.nodes[i].name();
            match l {
                LayerState::Conv { w, bias, .. } => {
                    inv.push((format!("{name}.weight"), vec![w.k, w.c, w.r, w.s]));
                    if bias.is_some() {
                        inv.push((format!("{name}.bias"), vec![w.k]));
                    }
                }
                LayerState::Bn { .. } => {
                    let c = self.shapes[i].0;
                    for t in ["gamma", "beta", "running_mean", "running_var"] {
                        inv.push((format!("{name}.{t}"), vec![c]));
                    }
                }
                LayerState::Fc { .. } => {
                    let c_in = self.shapes[self.alias[self.etg.eng.preds[i][0]]].0;
                    let k_out = self.shapes[i].0;
                    inv.push((format!("{name}.weight"), vec![c_in, k_out]));
                    inv.push((format!("{name}.bias"), vec![k_out]));
                }
                _ => {}
            }
        }
        inv
    }

    /// Export every parameter (and BN running statistic) as a named
    /// [`StateDict`] in dense logical layout. Extraction copies bits
    /// out of the blocked storage without arithmetic, so
    /// [`Self::load_state_dict`] of the result is bit-exact.
    pub fn state_dict(&self) -> StateDict {
        let mut sd = StateDict::new();
        for (i, l) in self.layers.iter().enumerate() {
            let name = self.etg.eng.nodes[i].name();
            match l {
                LayerState::Conv { w, bias, .. } => {
                    let mut data = Vec::with_capacity(w.k * w.c * w.r * w.s);
                    for k in 0..w.k {
                        for c in 0..w.c {
                            for r in 0..w.r {
                                for s in 0..w.s {
                                    data.push(w.get(k, c, r, s));
                                }
                            }
                        }
                    }
                    sd.insert(&format!("{name}.weight"), vec![w.k, w.c, w.r, w.s], data)
                        .expect("export geometry is self-consistent");
                    if let Some(b) = bias {
                        sd.insert(&format!("{name}.bias"), vec![w.k], b.w[..w.k].to_vec())
                            .expect("export geometry is self-consistent");
                    }
                }
                LayerState::Bn { gamma, beta, running_mean, running_var, .. } => {
                    let c = self.shapes[i].0;
                    sd.insert(&format!("{name}.gamma"), vec![c], gamma.w[..c].to_vec())
                        .expect("export geometry is self-consistent");
                    sd.insert(&format!("{name}.beta"), vec![c], beta.w[..c].to_vec())
                        .expect("export geometry is self-consistent");
                    sd.insert(&format!("{name}.running_mean"), vec![c], running_mean[..c].to_vec())
                        .expect("export geometry is self-consistent");
                    sd.insert(&format!("{name}.running_var"), vec![c], running_var[..c].to_vec())
                        .expect("export geometry is self-consistent");
                }
                LayerState::Fc { w, b, out_dim, .. } => {
                    let c_in = self.shapes[self.alias[self.etg.eng.preds[i][0]]].0;
                    let k_out = self.shapes[i].0;
                    let mut data = Vec::with_capacity(c_in * k_out);
                    for c in 0..c_in {
                        data.extend_from_slice(&w.w[c * out_dim..c * out_dim + k_out]);
                    }
                    sd.insert(&format!("{name}.weight"), vec![c_in, k_out], data)
                        .expect("export geometry is self-consistent");
                    sd.insert(&format!("{name}.bias"), vec![k_out], b.w[..k_out].to_vec())
                        .expect("export geometry is self-consistent");
                }
                _ => {}
            }
        }
        sd
    }

    /// Import a [`StateDict`] previously exported from a network of
    /// the same topology (any [`ExecMode`] on either side).
    ///
    /// Strict by design: every expected tensor must be present with
    /// matching dims and no unknown names may remain — and validation
    /// runs *before* any write, so a failed load leaves the network
    /// untouched. Imported buffers are re-canonicalized (SIMD-lane
    /// padding zeroed, BN gamma padding reset to 1) so a reloaded
    /// network is indistinguishable from the one that was saved.
    pub fn load_state_dict(&mut self, sd: &StateDict) -> Result<(), Error> {
        // pass 1: validate the full inventory up front
        let expected = self.param_inventory();
        for (name, dims) in &expected {
            match sd.get(name) {
                None => return Err(Error::StateDict(format!("missing tensor '{name}'"))),
                Some(e) if &e.dims != dims => {
                    return Err(Error::StateDict(format!(
                        "tensor '{name}': dims {:?} do not match the network's {:?}",
                        e.dims, dims
                    )))
                }
                Some(_) => {}
            }
        }
        let known: std::collections::HashSet<&str> =
            expected.iter().map(|(n, _)| n.as_str()).collect();
        if let Some(stranger) = sd.names().find(|n| !known.contains(n)) {
            return Err(Error::StateDict(format!(
                "unexpected tensor '{stranger}' (not a parameter of this network)"
            )));
        }
        // pass 2: write back with canonical padding
        let load_padded = |dst: &mut [f32], src: &[f32], fill: f32| {
            dst.fill(fill);
            dst[..src.len()].copy_from_slice(src);
        };
        for i in 0..self.layers.len() {
            let name = self.etg.eng.nodes[i].name().to_string();
            let fc_cin = match &self.layers[i] {
                LayerState::Fc { .. } => self.shapes[self.alias[self.etg.eng.preds[i][0]]].0,
                _ => 0,
            };
            match &mut self.layers[i] {
                LayerState::Conv { w, bias, .. } => {
                    let e = sd.get(&format!("{name}.weight")).expect("validated");
                    w.as_mut_slice().fill(0.0);
                    let mut it = e.data.iter();
                    for k in 0..w.k {
                        for c in 0..w.c {
                            for r in 0..w.r {
                                for s in 0..w.s {
                                    w.set(k, c, r, s, *it.next().expect("validated dims"));
                                }
                            }
                        }
                    }
                    if let Some(b) = bias {
                        let e = sd.get(&format!("{name}.bias")).expect("validated");
                        load_padded(&mut b.w, &e.data, 0.0);
                    }
                }
                LayerState::Bn { gamma, beta, running_mean, running_var, .. } => {
                    let get = |t: &str| &sd.get(&format!("{name}.{t}")).expect("validated").data;
                    load_padded(&mut gamma.w, get("gamma"), 1.0);
                    load_padded(&mut beta.w, get("beta"), 0.0);
                    load_padded(running_mean, get("running_mean"), 0.0);
                    load_padded(running_var, get("running_var"), 1.0);
                }
                LayerState::Fc { w, b, out_dim, .. } => {
                    let e = sd.get(&format!("{name}.weight")).expect("validated");
                    let k_out = e.dims[1];
                    w.w.fill(0.0);
                    for c in 0..fc_cin {
                        w.w[c * *out_dim..c * *out_dim + k_out]
                            .copy_from_slice(&e.data[c * k_out..(c + 1) * k_out]);
                    }
                    let e = sd.get(&format!("{name}.bias")).expect("validated");
                    load_padded(&mut b.w, &e.data, 0.0);
                }
                _ => {}
            }
        }
        // the imported conv weights / BN parameters invalidate every
        // folded convolution — re-derive (no-op without folds)
        self.refold();
        Ok(())
    }

    /// Number of BN nodes in the compiled graph.
    pub fn bn_node_count(&self) -> usize {
        self.layers.iter().filter(|l| matches!(l, LayerState::Bn { .. })).count()
    }

    /// Number of BN nodes the inference fusion pass folded into their
    /// producer convolution (0 in training mode or with folding
    /// disabled). `folded_bn_count / bn_node_count` is the fused-node
    /// coverage the inference benchmark reports.
    pub fn folded_bn_count(&self) -> usize {
        self.layers.iter().filter(|l| matches!(l, LayerState::Conv { folded: Some(_), .. })).count()
    }

    /// Numeric execution mode the network's conv plans were built for.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of convolution nodes in the compiled graph.
    pub fn conv_node_count(&self) -> usize {
        self.layers.iter().filter(|l| matches!(l, LayerState::Conv { .. })).count()
    }

    /// Number of convolution nodes currently executing the int8 path
    /// (0 at f32 precision). `quantized_conv_count / conv_node_count`
    /// is the int8 coverage the inference benchmark reports; nodes
    /// outside it fall back to their f32 plan.
    pub fn quantized_conv_count(&self) -> usize {
        self.quant.iter().filter(|q| q.is_some()).count()
    }

    /// The BN-derived per-channel input-amax estimate of node `name`'s
    /// output blob (`None` if underivable or at f32 precision).
    pub fn derived_amax_of(&self, name: &str) -> Option<&[f32]> {
        let i = self.node_index(name)?;
        self.derived_amax[self.alias[i]].as_deref()
    }

    /// The calibration-measured per-channel amax of node `name`'s
    /// output blob (`None` before any [`Self::calibrate_batch`]).
    pub fn calibrated_amax_of(&self, name: &str) -> Option<&[f32]> {
        let i = self.node_index(name)?;
        self.calibrated_amax[self.alias[i]].as_deref()
    }

    /// The per-input-channel quantization factors (`127/amax`) conv
    /// node `name` currently quantizes its input with (`None` when the
    /// node runs f32).
    pub fn conv_input_scales(&self, name: &str) -> Option<&[f32]> {
        let i = self.node_index(name)?;
        self.quant[i].as_ref().map(|q| &q.inv_sx[..])
    }

    fn node_index(&self, name: &str) -> Option<usize> {
        self.etg.eng.nodes.iter().position(|n| n.name() == name)
    }
}

/// Derive a node's private weight-init stream from the spec seed and
/// the node's name (FNV-1a over the name, mixed into the seed), so
/// initialization is independent of node construction order.
fn node_rng(seed: u64, name: &str) -> SplitMix64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    SplitMix64::new(seed ^ h)
}

/// He-normal-ish filter init (uniform approximation, deterministic).
fn he_init_filter(w: &mut BlockedFilter, rng: &mut SplitMix64) {
    let fan_in = (w.c * w.r * w.s) as f32;
    let scale = (6.0 / fan_in).sqrt();
    for k in 0..w.k {
        for c in 0..w.c {
            for r in 0..w.r {
                for s in 0..w.s {
                    w.set(k, c, r, s, rng.next_f32() * 2.0 * scale);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_topology;

    fn small_cnn() -> ModelSpec {
        parse_topology(
            "input name=data c=16 h=16 w=16\n\
             conv name=c1 bottom=data k=32 r=3 s=3 pad=1 bias=1 relu=1\n\
             pool name=p1 bottom=c1 kind=max size=2 stride=2\n\
             conv name=c2 bottom=p1 k=32 bias=1 relu=1\n\
             gap name=g bottom=c2\n\
             fc name=logits bottom=g k=16\n\
             softmaxloss name=loss bottom=logits\n",
        )
        .unwrap()
    }

    #[test]
    fn forward_runs_and_produces_finite_loss() {
        let mut net = Network::build(&small_cnn(), 8, 4).unwrap();
        // random input
        let mut rng = SplitMix64::new(1);
        rng.fill_f32(net.input_mut().as_mut_slice());
        let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
        net.labels = labels;
        let stats = net.forward();
        assert!(stats.loss.is_finite() && stats.loss > 0.0);
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = Network::build(&small_cnn(), 8, 4).unwrap();
        let mut rng = SplitMix64::new(2);
        let mut input = vec![0.0f32; net.input_mut().as_slice().len()];
        rng.fill_f32(&mut input);
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for step in 0..30 {
            net.input_mut().as_mut_slice().copy_from_slice(&input);
            let stats = net.train_step(&labels, 0.05, 0.9);
            if step == 0 {
                first = stats.loss;
            }
            last = stats.loss;
            assert!(stats.loss.is_finite(), "step {step}: loss diverged");
        }
        assert!(last < 0.5 * first, "loss did not fall: {first} -> {last}");
    }

    #[test]
    fn residual_bn_network_trains() {
        // mini-ResNet block: conv-bn-relu -> conv-bn(+shortcut, relu)
        let nl = parse_topology(
            "input name=data c=16 h=8 w=8\n\
             conv name=c0 bottom=data k=16\n\
             bn name=b0 bottom=c0 relu=1\n\
             conv name=c1 bottom=b0 k=16 r=3 s=3 pad=1\n\
             bn name=b1 bottom=c1 relu=1\n\
             conv name=c2 bottom=b1 k=16 r=3 s=3 pad=1\n\
             bn name=b2 bottom=c2 eltwise=b0 relu=1\n\
             gap name=g bottom=b2\n\
             fc name=logits bottom=g k=16\n\
             softmaxloss name=loss bottom=logits\n",
        )
        .unwrap();
        let mut net = Network::build(&nl, 4, 3).unwrap();
        // b0 fans out (c1 + eltwise) -> one split node must appear
        assert!(net.etg().eng.nodes.iter().any(|n| matches!(n, NodeSpec::Split { .. })));
        let mut rng = SplitMix64::new(3);
        let mut input = vec![0.0f32; net.input_mut().as_slice().len()];
        rng.fill_f32(&mut input);
        let labels = vec![0usize, 1, 2, 3];
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for step in 0..40 {
            net.input_mut().as_mut_slice().copy_from_slice(&input);
            let s = net.train_step(&labels, 0.05, 0.9);
            if step == 0 {
                first = s.loss;
            }
            last = s.loss;
        }
        assert!(last < 0.7 * first, "residual net loss did not fall: {first} -> {last}");
    }

    #[test]
    fn param_count_is_sane() {
        let net = Network::build(&small_cnn(), 2, 2).unwrap();
        // c1: 32*16*9 + 32, c2: 32*32 + 32, fc: 32*16(padded)… > 5k
        assert!(net.param_count() > 5_000, "{}", net.param_count());
    }

    #[test]
    fn inference_forward_matches_training_exactly() {
        let nl = small_cnn();
        let cache = PlanCache::new();
        let pool = Arc::new(ThreadPool::new(4));
        let mut train =
            Network::build_with(&nl, 8, Arc::clone(&pool), ExecMode::Training, &cache).unwrap();
        let mut infer =
            Network::build_with(&nl, 8, Arc::clone(&pool), ExecMode::Inference, &cache).unwrap();
        let first_build_misses = cache.misses();
        // the second build must not have JIT'd anything new
        assert_eq!(first_build_misses, 2, "two distinct conv layers in the topology");
        assert!(cache.hits() >= 2, "inference build must reuse the training build's plans");

        let mut rng = SplitMix64::new(7);
        let mut input = vec![0.0f32; train.input_mut().as_slice().len()];
        rng.fill_f32(&mut input);
        train.input_mut().as_mut_slice().copy_from_slice(&input);
        infer.input_mut().as_mut_slice().copy_from_slice(&input);
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        train.set_labels(&labels);
        infer.set_labels(&labels);
        let st = train.forward();
        let si = infer.forward();
        assert_eq!(st.loss, si.loss, "losses must agree bit-for-bit");
        assert_eq!(st.top1, si.top1);
        assert_eq!(train.probabilities(), infer.probabilities());
    }

    #[test]
    fn inference_mode_allocates_no_training_state() {
        let nl = small_cnn();
        let infer = Network::build_with(
            &nl,
            4,
            Arc::new(ThreadPool::new(2)),
            ExecMode::Inference,
            &PlanCache::new(),
        )
        .unwrap();
        assert_eq!(infer.mode(), ExecMode::Inference);
        assert_eq!(infer.gradient_blob_count(), 0, "no gradient blobs in inference");
        assert_eq!(infer.training_state_bytes(), 0, "no dW/momentum/scratch in inference");
        let train = Network::build(&nl, 4, 2).unwrap();
        assert!(train.gradient_blob_count() > 0);
        assert!(train.training_state_bytes() > 0);
    }

    #[test]
    fn inference_liveness_plan_shares_slots() {
        // a same-geometry conv chain: only a handful of buffers must
        // stay live at any point of the forward schedule
        let nl = parse_topology(
            "input name=data c=16 h=8 w=8\n\
             conv name=a bottom=data k=16 relu=1\n\
             conv name=b bottom=a k=16 relu=1\n\
             conv name=c bottom=b k=16 relu=1\n\
             conv name=d bottom=c k=16 relu=1\n\
             conv name=e bottom=d k=16 relu=1\n\
             gap name=g bottom=e\n\
             fc name=logits bottom=g k=16\n\
             softmaxloss name=loss bottom=logits\n",
        )
        .unwrap();
        let cache = PlanCache::new();
        let pool = Arc::new(ThreadPool::new(2));
        let train =
            Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Training, &cache).unwrap();
        let infer =
            Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Inference, &cache).unwrap();
        assert!(
            infer.activation_slot_count() < train.activation_slot_count(),
            "liveness plan must share buffers: {} vs {}",
            infer.activation_slot_count(),
            train.activation_slot_count()
        );
        assert!(infer.activation_bytes() < train.activation_bytes());
        // the five 1×1 convs share one normalized shape: one plan
        assert_eq!(cache.misses(), 1, "identical chain convs must share one plan");
    }

    /// The mini-ResNet block every bn-fold feature test uses: a pure
    /// conv → bn chain with a residual join through a split.
    fn residual_bn_spec() -> ModelSpec {
        parse_topology(
            "input name=data c=16 h=8 w=8\n\
             conv name=c0 bottom=data k=16\n\
             bn name=b0 bottom=c0 relu=1\n\
             conv name=c1 bottom=b0 k=16 r=3 s=3 pad=1\n\
             bn name=b1 bottom=c1 relu=1\n\
             conv name=c2 bottom=b1 k=16 r=3 s=3 pad=1\n\
             bn name=b2 bottom=c2 eltwise=b0 relu=1\n\
             gap name=g bottom=b2\n\
             fc name=logits bottom=g k=16\n\
             softmaxloss name=loss bottom=logits\n",
        )
        .unwrap()
    }

    #[test]
    fn inference_folds_bn_into_conv_and_matches_unfused_frozen_reference() {
        // the fused executor (conv + folded BN + residual + ReLU in
        // one APPLY) against the unfused frozen-stats reference
        // forward — same weights, same running statistics, so the two
        // may differ only by fold-rounding
        let nl = residual_bn_spec();
        let cache = PlanCache::new();
        let pool = Arc::new(ThreadPool::new(3));
        // train a few steps so the running statistics are non-trivial
        let mut train =
            Network::build_with(&nl, 4, Arc::clone(&pool), ExecMode::Training, &cache).unwrap();
        let mut rng = SplitMix64::new(11);
        let mut input = vec![0.0f32; train.input_mut().as_slice().len()];
        rng.fill_f32(&mut input);
        let labels = vec![0usize, 1, 2, 3];
        for _ in 0..3 {
            train.input_mut().as_mut_slice().copy_from_slice(&input);
            train.train_step(&labels, 0.05, 0.9);
        }
        let sd = train.state_dict();

        let mut fused =
            Network::build_with(&nl, 4, Arc::clone(&pool), ExecMode::Inference, &cache).unwrap();
        let mut unfused =
            Network::build_with_fold(&nl, 4, Arc::clone(&pool), ExecMode::Inference, &cache, false)
                .unwrap();
        // b0/b1 fold; b2's residual (b0's blob) carries physical pad 1
        // for the 3×3 conv c1 while b2's own output is pad-0, so the
        // geometry gate keeps b2 a standalone frozen-stats pass — the
        // graph exercises folded and unfolded BNs side by side
        assert_eq!(fused.bn_node_count(), 3);
        assert_eq!(fused.folded_bn_count(), 2, "b0 and b1 fold, b2 stays standalone");
        assert_eq!(unfused.folded_bn_count(), 0);
        fused.load_state_dict(&sd).unwrap();
        unfused.load_state_dict(&sd).unwrap();

        fused.set_labels(&labels);
        unfused.set_labels(&labels);
        fused.input_mut().as_mut_slice().copy_from_slice(&input);
        unfused.input_mut().as_mut_slice().copy_from_slice(&input);
        for step in 0..3 {
            let sf = fused.forward();
            let su = unfused.forward();
            assert!(
                (sf.loss - su.loss).abs() <= 1e-4 * su.loss.abs().max(1.0),
                "step {step}: fused loss {} vs unfused {}",
                sf.loss,
                su.loss
            );
            assert_eq!(sf.top1, su.top1, "step {step}");
            let n = tensor::Norms::compare(unfused.probabilities(), fused.probabilities());
            assert!(n.ok(1e-4), "step {step}: fused vs unfused frozen reference: {n}");
        }
    }

    #[test]
    fn residual_join_folds_to_bias_eltwise_relu_when_geometry_matches() {
        // a 1×1 bottleneck chain: every blob is pad-0, so the join BN
        // folds too (the BiasEltwiseRelu variant) and the whole graph
        // runs without a single standalone BN pass
        let nl = parse_topology(
            "input name=data c=16 h=8 w=8\n\
             conv name=c0 bottom=data k=16\n\
             bn name=b0 bottom=c0 relu=1\n\
             conv name=c1 bottom=b0 k=16\n\
             bn name=b1 bottom=c1 relu=1\n\
             conv name=c2 bottom=b1 k=16\n\
             bn name=b2 bottom=c2 eltwise=b0 relu=1\n\
             gap name=g bottom=b2\n\
             fc name=logits bottom=g k=16\n\
             softmaxloss name=loss bottom=logits\n",
        )
        .unwrap();
        let cache = PlanCache::new();
        let pool = Arc::new(ThreadPool::new(2));
        let mut train =
            Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Training, &cache).unwrap();
        let mut rng = SplitMix64::new(29);
        let mut input = vec![0.0f32; train.input_mut().as_slice().len()];
        rng.fill_f32(&mut input);
        for _ in 0..2 {
            train.input_mut().as_mut_slice().copy_from_slice(&input);
            train.train_step(&[0, 1], 0.05, 0.9);
        }
        let sd = train.state_dict();

        let mut fused =
            Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Inference, &cache).unwrap();
        let mut unfused =
            Network::build_with_fold(&nl, 2, Arc::clone(&pool), ExecMode::Inference, &cache, false)
                .unwrap();
        assert_eq!(fused.folded_bn_count(), 3, "all BNs fold, including the residual join");
        // the fused-plan flavour is observable through the cache
        let stats = cache.stats();
        assert!(
            stats.for_op(conv::FusedOp::BiasEltwiseRelu).misses >= 1,
            "the join must have built a BiasEltwiseRelu plan: {stats:?}"
        );
        fused.load_state_dict(&sd).unwrap();
        unfused.load_state_dict(&sd).unwrap();
        fused.input_mut().as_mut_slice().copy_from_slice(&input);
        unfused.input_mut().as_mut_slice().copy_from_slice(&input);
        fused.set_labels(&[0, 1]);
        unfused.set_labels(&[0, 1]);
        let sf = fused.forward();
        let su = unfused.forward();
        assert_eq!(sf.top1, su.top1);
        let n = tensor::Norms::compare(unfused.probabilities(), fused.probabilities());
        assert!(n.ok(1e-4), "fused join vs unfused frozen reference: {n}");
    }

    #[test]
    fn training_forward_is_untouched_by_the_fusion_pass() {
        // training mode keeps batch statistics and standalone BN
        // passes: two training nets (one built alongside an inference
        // net, one alone) agree bit-for-bit
        let nl = residual_bn_spec();
        let cache = PlanCache::new();
        let pool = Arc::new(ThreadPool::new(2));
        let mut a =
            Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Training, &cache).unwrap();
        let _infer =
            Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Inference, &cache).unwrap();
        let mut b =
            Network::build_with(&nl, 2, Arc::clone(&pool), ExecMode::Training, &cache).unwrap();
        assert_eq!(a.folded_bn_count(), 0, "training mode never folds");
        let mut rng = SplitMix64::new(13);
        let mut input = vec![0.0f32; a.input_mut().as_slice().len()];
        rng.fill_f32(&mut input);
        a.input_mut().as_mut_slice().copy_from_slice(&input);
        b.input_mut().as_mut_slice().copy_from_slice(&input);
        let labels = vec![0usize, 1];
        a.set_labels(&labels);
        b.set_labels(&labels);
        let sa = a.forward();
        let sb = b.forward();
        assert_eq!(sa.loss, sb.loss);
        assert_eq!(a.probabilities(), b.probabilities());
    }

    #[test]
    fn bn_graph_inference_is_batch_composition_independent() {
        // the ROADMAP item this PR closes: serving a bn-graph sample
        // must give identical bits whether it shares the batch with
        // zeros or with other live samples
        let nl = residual_bn_spec();
        let cache = PlanCache::new();
        let pool = Arc::new(ThreadPool::new(2));
        let mut infer =
            Network::build_with(&nl, 4, Arc::clone(&pool), ExecMode::Inference, &cache).unwrap();
        let (c, h, w) = infer.input_dims();
        let mut rng = SplitMix64::new(17);
        let mut samples = vec![0.0f32; 4 * c * h * w];
        rng.fill_f32(&mut samples);
        // full batch
        infer.load_input_nchw(&samples, 4);
        infer.forward();
        let kpad = infer.probabilities().len() / 4;
        let full_row0 = infer.probabilities()[..kpad].to_vec();
        // sample 0 alone, rest of the batch zero-padded
        infer.load_input_nchw(&samples[..c * h * w], 1);
        infer.forward();
        let alone_row0 = infer.probabilities()[..kpad].to_vec();
        assert_eq!(full_row0, alone_row0, "frozen stats must decouple co-batched samples");
    }

    #[test]
    #[should_panic(expected = "Training-mode network")]
    fn inference_network_rejects_train_step() {
        let mut infer = Network::build_with(
            &small_cnn(),
            2,
            Arc::new(ThreadPool::new(1)),
            ExecMode::Inference,
            &PlanCache::new(),
        )
        .unwrap();
        infer.train_step(&[0, 1], 0.1, 0.9);
    }

    #[test]
    fn state_dict_round_trips_bit_exact_after_training() {
        let spec = small_cnn();
        let mut net = Network::build(&spec, 4, 2).unwrap();
        let mut rng = SplitMix64::new(21);
        let mut input = vec![0.0f32; net.input_mut().as_slice().len()];
        rng.fill_f32(&mut input);
        let labels = vec![0usize, 1, 2, 3];
        for _ in 0..3 {
            net.input_mut().as_mut_slice().copy_from_slice(&input);
            net.train_step(&labels, 0.05, 0.9);
        }
        let sd = net.state_dict();
        // serialize through the binary format too
        let sd = StateDict::from_bytes(&sd.to_bytes()).unwrap();
        let mut twin = Network::build(&spec.clone().with_seed(999), 4, 2).unwrap();
        twin.load_state_dict(&sd).unwrap();
        net.input_mut().as_mut_slice().copy_from_slice(&input);
        twin.input_mut().as_mut_slice().copy_from_slice(&input);
        net.set_labels(&labels);
        twin.set_labels(&labels);
        let a = net.forward();
        let b = twin.forward();
        assert_eq!(a.loss, b.loss, "reloaded forward must be bit-identical");
        assert_eq!(net.probabilities(), twin.probabilities());
        // and the reloaded network exports the identical dict
        assert_eq!(twin.state_dict(), sd);
    }

    #[test]
    fn load_state_dict_is_strict_and_atomic() {
        let spec = small_cnn();
        let mut net = Network::build(&spec, 2, 1).unwrap();
        let good = net.state_dict();
        // missing tensor
        let mut missing = StateDict::new();
        for (name, e) in good.iter() {
            if name != "c1.weight" {
                missing.insert(name, e.dims.clone(), e.data.clone()).unwrap();
            }
        }
        let e = net.load_state_dict(&missing).unwrap_err();
        assert!(e.to_string().contains("missing tensor 'c1.weight'"), "{e}");
        // unexpected tensor
        let mut extra = good.clone();
        extra.insert("ghost.weight", vec![1], vec![0.0]).unwrap();
        assert!(net.load_state_dict(&extra).is_err());
        // wrong dims — and the failed load must not have clobbered
        // anything (validation precedes writes)
        let mut wrong = good.clone();
        wrong.insert("c1.bias", vec![3], vec![0.0; 3]).unwrap();
        assert!(net.load_state_dict(&wrong).is_err());
        assert_eq!(net.state_dict(), good, "failed loads must leave the network untouched");
    }

    #[test]
    fn bn_running_stats_accumulate_in_training_only() {
        let spec = parse_topology(
            "input name=data c=16 h=8 w=8\n\
             conv name=c0 bottom=data k=16\n\
             bn name=b0 bottom=c0 relu=1\n\
             gap name=g bottom=b0\n\
             fc name=logits bottom=g k=4\n\
             softmaxloss name=loss bottom=logits\n",
        )
        .unwrap();
        let mean_of = |net: &Network| -> Vec<f32> {
            net.state_dict().get("b0.running_mean").unwrap().data.clone()
        };
        let mut train = Network::build(&spec, 2, 1).unwrap();
        let mut rng = SplitMix64::new(5);
        rng.fill_f32(train.input_mut().as_mut_slice());
        assert!(mean_of(&train).iter().all(|&m| m == 0.0), "fresh stats start at 0");
        train.forward();
        let after_one = mean_of(&train);
        assert!(after_one.iter().any(|&m| m != 0.0), "training forward must accumulate");
        train.forward();
        assert_ne!(mean_of(&train), after_one, "EMA keeps moving");
        // inference-mode forwards leave the stats frozen
        let cache = PlanCache::new();
        let pool = Arc::new(ThreadPool::new(1));
        let mut infer = Network::build_with(&spec, 2, pool, ExecMode::Inference, &cache).unwrap();
        rng.fill_f32(infer.input_mut().as_mut_slice());
        infer.forward();
        assert!(mean_of(&infer).iter().all(|&m| m == 0.0), "inference must not accumulate");
    }

    #[test]
    fn seeded_init_is_per_node_not_order_dependent() {
        // two specs sharing node names 'c1'/'logits' but with an extra
        // layer in between: the shared nodes' initial weights must be
        // identical because init streams derive from (seed, name)
        let a = parse_topology(
            "input name=data c=16 h=8 w=8\n\
             conv name=c1 bottom=data k=16\n\
             gap name=g bottom=c1\n\
             fc name=logits bottom=g k=4\n\
             softmaxloss name=loss bottom=logits\n",
        )
        .unwrap()
        .with_seed(7);
        let b = parse_topology(
            "input name=data c=16 h=8 w=8\n\
             conv name=c1 bottom=data k=16\n\
             conv name=extra bottom=c1 k=16\n\
             gap name=g bottom=extra\n\
             fc name=logits bottom=g k=4\n\
             softmaxloss name=loss bottom=logits\n",
        )
        .unwrap()
        .with_seed(7);
        let na = Network::build(&a, 1, 1).unwrap();
        let nb = Network::build(&b, 1, 1).unwrap();
        let wa = na.state_dict();
        let wb = nb.state_dict();
        assert_eq!(wa.get("c1.weight"), wb.get("c1.weight"));
        assert_eq!(wa.get("logits.weight"), wb.get("logits.weight"));
        // a different seed moves the weights
        let c = Network::build(&a.clone().with_seed(8), 1, 1).unwrap();
        assert_ne!(c.state_dict().get("c1.weight"), wa.get("c1.weight"));
    }

    #[test]
    fn degenerate_runtime_params_are_bad_input() {
        assert!(matches!(Network::build(&small_cnn(), 0, 1), Err(Error::BadInput(_))));
        assert!(matches!(Network::build(&small_cnn(), 1, 0), Err(Error::BadInput(_))));
    }

    /// Train `residual_bn_spec` a few steps on a fixed batch and hand
    /// back (state dict, input, labels) — shared by the int8 tests.
    fn trained_residual(
        pool: &Arc<ThreadPool>,
        cache: &PlanCache,
    ) -> (StateDict, Vec<f32>, Vec<usize>) {
        let nl = residual_bn_spec();
        let mut train =
            Network::build_with(&nl, 4, Arc::clone(pool), ExecMode::Training, cache).unwrap();
        let mut rng = SplitMix64::new(41);
        let mut input = vec![0.0f32; train.input_mut().as_slice().len()];
        rng.fill_f32(&mut input);
        let labels = vec![0usize, 1, 2, 3];
        for _ in 0..5 {
            train.input_mut().as_mut_slice().copy_from_slice(&input);
            train.train_step(&labels, 0.05, 0.9);
        }
        (train.state_dict(), input, labels)
    }

    #[test]
    fn int8_inference_quantizes_every_bn_fed_conv_and_tracks_f32() {
        let nl = residual_bn_spec();
        let cache = PlanCache::new();
        let pool = Arc::new(ThreadPool::new(3));
        let (sd, input, labels) = trained_residual(&pool, &cache);

        let mut f32_net =
            Network::build_with(&nl, 4, Arc::clone(&pool), ExecMode::Inference, &cache).unwrap();
        let mut int8 = Network::build_quantized(
            &nl,
            4,
            Arc::clone(&pool),
            ExecMode::Inference,
            &cache,
            true,
            conv::TuneLevel::Heuristic,
            Precision::Int8,
        )
        .unwrap();
        assert_eq!(int8.precision(), Precision::Int8);
        assert_eq!(f32_net.precision(), Precision::F32);
        assert_eq!(f32_net.quantized_conv_count(), 0);
        // c0 reads the (assumed-normalized) input, c1/c2 read
        // folded-BN outputs: every conv derives an input scale
        assert_eq!(int8.conv_node_count(), 3);
        assert_eq!(int8.quantized_conv_count(), 3, "all three convs must run int8");
        f32_net.load_state_dict(&sd).unwrap();
        int8.load_state_dict(&sd).unwrap();
        f32_net.input_mut().as_mut_slice().copy_from_slice(&input);
        int8.input_mut().as_mut_slice().copy_from_slice(&input);
        f32_net.set_labels(&labels);
        int8.set_labels(&labels);
        let sf = f32_net.forward();
        let si = int8.forward();
        assert_eq!(sf.top1, si.top1, "top-1 must survive quantization");
        let n = tensor::Norms::compare(f32_net.probabilities(), int8.probabilities());
        assert!(n.ok(0.05), "int8 probability drift vs f32: {n}");
        // calibration replaces the derived estimates with measured
        // ranges; the net must stay quantized and stay close
        int8.calibrate_batch();
        assert_eq!(int8.quantized_conv_count(), 3);
        let si2 = int8.forward();
        assert_eq!(sf.top1, si2.top1);
        let n2 = tensor::Norms::compare(f32_net.probabilities(), int8.probabilities());
        assert!(n2.ok(0.05), "calibrated int8 drift vs f32: {n2}");
    }

    #[test]
    fn int8_unquantizable_convs_fall_back_to_f32() {
        // small_cnn's c2 reads a pooled *raw conv* output (c1 carries
        // its own bias+relu, no BN) — no derivable range, so c2 must
        // serve f32 until a calibration forward measures it
        let nl = small_cnn();
        let cache = PlanCache::new();
        let pool = Arc::new(ThreadPool::new(2));
        let mut int8 = Network::build_quantized(
            &nl,
            2,
            Arc::clone(&pool),
            ExecMode::Inference,
            &cache,
            true,
            conv::TuneLevel::Heuristic,
            Precision::Int8,
        )
        .unwrap();
        assert_eq!(int8.conv_node_count(), 2);
        assert_eq!(int8.quantized_conv_count(), 1, "only the input-fed conv can derive scales");
        assert!(int8.conv_input_scales("c1").is_some());
        assert!(int8.conv_input_scales("c2").is_none());
        let mut rng = SplitMix64::new(43);
        rng.fill_f32(int8.input_mut().as_mut_slice());
        let s = int8.forward();
        assert!(s.loss.is_finite());
        // a calibration forward measures c2's input range → full
        // coverage without replanning
        int8.calibrate_batch();
        assert_eq!(int8.quantized_conv_count(), 2, "calibration must widen coverage");
        assert!(int8.conv_input_scales("c2").is_some());
        let s2 = int8.forward();
        assert!(s2.loss.is_finite());
    }

    #[test]
    fn calibrated_scales_agree_with_bn_derived_estimates() {
        // the BN-derived bound |beta| + 3·|gamma| models the frozen
        // stats; a measured maximum over an in-distribution batch must
        // land in the same ballpark (below the 3-sigma bound, not
        // orders of magnitude under it)
        let nl = residual_bn_spec();
        let cache = PlanCache::new();
        let pool = Arc::new(ThreadPool::new(2));
        let (sd, input, _) = trained_residual(&pool, &cache);
        let mut int8 = Network::build_quantized(
            &nl,
            4,
            Arc::clone(&pool),
            ExecMode::Inference,
            &cache,
            true,
            conv::TuneLevel::Heuristic,
            Precision::Int8,
        )
        .unwrap();
        int8.load_state_dict(&sd).unwrap();
        int8.input_mut().as_mut_slice().copy_from_slice(&input);
        let derived = int8.derived_amax_of("b0").expect("b0 folds, range derives").to_vec();
        int8.calibrate_batch();
        let measured = int8.calibrated_amax_of("b0").expect("calibration recorded b0").to_vec();
        let dmax = derived.iter().cloned().fold(0.0f32, f32::max);
        let mmax = measured.iter().cloned().fold(0.0f32, f32::max);
        assert!(dmax > 0.0 && mmax > 0.0);
        let ratio = mmax / dmax;
        assert!(
            (0.05..=3.0).contains(&ratio),
            "measured max {mmax} vs derived bound {dmax}: ratio {ratio} out of tolerance"
        );
    }

    #[test]
    fn degenerate_all_zero_channel_yields_safe_scales() {
        // zero gamma+beta on one BN channel drives its activation —
        // and the derived amax — to exactly 0; the quantization scheme
        // must answer with the neutral scale 1.0, never NaN or inf
        let nl = residual_bn_spec();
        let cache = PlanCache::new();
        let pool = Arc::new(ThreadPool::new(2));
        let (sd, input, _) = trained_residual(&pool, &cache);
        let mut dead = StateDict::new();
        for (name, e) in sd.iter() {
            let mut data = e.data.clone();
            if name == "b0.gamma" || name == "b0.beta" {
                data[3] = 0.0;
            }
            dead.insert(name, e.dims.clone(), data).unwrap();
        }
        let mut int8 = Network::build_quantized(
            &nl,
            4,
            Arc::clone(&pool),
            ExecMode::Inference,
            &cache,
            true,
            conv::TuneLevel::Heuristic,
            Precision::Int8,
        )
        .unwrap();
        int8.load_state_dict(&dead).unwrap();
        assert_eq!(int8.derived_amax_of("b0").unwrap()[3], 0.0, "channel 3 is dead");
        let scales = int8.conv_input_scales("c1").expect("c1 still quantizes");
        assert!(scales.iter().all(|s| s.is_finite() && *s > 0.0), "scales must stay safe");
        assert_eq!(scales[3], 1.0, "dead channel gets the neutral scale");
        // and the whole net still forwards to finite probabilities —
        // also after a calibration pass re-measures the dead channel
        int8.input_mut().as_mut_slice().copy_from_slice(&input);
        assert!(int8.forward().loss.is_finite());
        int8.calibrate_batch();
        let scales = int8.conv_input_scales("c1").unwrap();
        assert!(scales.iter().all(|s| s.is_finite() && *s > 0.0));
        assert!(int8.forward().loss.is_finite());
    }

    #[test]
    fn int8_training_is_rejected() {
        let r = Network::build_quantized(
            &small_cnn(),
            2,
            Arc::new(ThreadPool::new(1)),
            ExecMode::Training,
            &PlanCache::new(),
            true,
            conv::TuneLevel::Heuristic,
            Precision::Int8,
        );
        match r {
            Err(e) => assert!(e.to_string().contains("inference mode"), "{e}"),
            Ok(_) => panic!("int8 training build must be rejected"),
        }
    }
}
