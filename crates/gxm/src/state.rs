//! `StateDict` — named-parameter export/import for trained networks.
//!
//! A state dict maps dotted parameter names (`conv1.weight`,
//! `bn1.running_mean`, `logits.bias`, …) to dense logical-layout f32
//! tensors with explicit dimensions. Values are extracted from (and
//! written back into) the executor's SIMD-blocked storage without any
//! arithmetic, so a save → load round trip is bit-exact — the property
//! the train→save→serve pipeline depends on.
//!
//! The on-disk format is a small versioned little-endian binary:
//!
//! ```text
//! magic   8 B   b"ANATSD\0\x01"  (last byte = format version)
//! count   u32
//! entry*  { name_len u32, name utf-8, ndims u32, dims u32*, data f32* }
//! ```
//!
//! Entries are serialized in sorted name order, so equal dicts produce
//! byte-identical files.

use crate::error::Error;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

/// Magic + version prefix of the binary format.
const MAGIC: [u8; 8] = *b"ANATSD\x00\x01";

/// Sanity cap on a deserialized tensor's rank — real entries are at
/// most 4-D ([k, c, r, s]); anything beyond this is a corrupt or
/// hostile file, rejected before any allocation trusts it.
const MAX_DIMS: usize = 16;

/// One named tensor of a [`StateDict`]: logical dims and dense data.
#[derive(Clone, Debug, PartialEq)]
pub struct TensorEntry {
    /// Logical dimensions (e.g. `[k, c, r, s]` for a conv filter).
    pub dims: Vec<usize>,
    /// Dense row-major values, `dims.iter().product()` long.
    pub data: Vec<f32>,
}

/// A named-parameter snapshot of a network (see the
/// [module docs](self) for the format).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StateDict {
    entries: BTreeMap<String, TensorEntry>,
}

impl StateDict {
    /// An empty dict.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a tensor (replacing any same-named entry).
    ///
    /// # Errors
    /// [`Error::StateDict`] when `data.len()` is not the product of
    /// `dims` — the same geometry invariant [`Self::from_bytes`]
    /// enforces on files.
    pub fn insert(&mut self, name: &str, dims: Vec<usize>, data: Vec<f32>) -> Result<(), Error> {
        if dims.iter().product::<usize>() != data.len() {
            return Err(Error::StateDict(format!(
                "tensor '{name}': dims {dims:?} disagree with {} values",
                data.len()
            )));
        }
        self.entries.insert(name.to_string(), TensorEntry { dims, data });
        Ok(())
    }

    /// Look up a tensor by name.
    pub fn get(&self, name: &str) -> Option<&TensorEntry> {
        self.entries.get(name)
    }

    /// Iterate `(name, entry)` in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TensorEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(|k| k.as_str())
    }

    /// Number of tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dict holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total f32 values across all tensors.
    pub fn value_count(&self) -> usize {
        self.entries.values().map(|e| e.data.len()).sum()
    }

    /// Serialize to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload: usize = self
            .entries
            .iter()
            .map(|(n, e)| 8 + n.len() + 4 * e.dims.len() + 4 * e.data.len())
            .sum();
        let mut out = Vec::with_capacity(MAGIC.len() + 4 + payload);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, e) in &self.entries {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(e.dims.len() as u32).to_le_bytes());
            for &d in &e.dims {
                out.extend_from_slice(&(d as u32).to_le_bytes());
            }
            for &v in &e.data {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Deserialize from the versioned binary format, validating magic,
    /// version, entry geometry and trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, Error> {
        let bad = |msg: &str| Error::StateDict(msg.to_string());
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], Error> {
            let end = pos.checked_add(n).filter(|&e| e <= bytes.len()).ok_or_else(|| {
                Error::StateDict(format!("truncated: wanted {n} bytes at offset {pos}"))
            })?;
            let s = &bytes[pos..end];
            pos = end;
            Ok(s)
        };
        let magic = take(8)?;
        if magic[..6] != MAGIC[..6] {
            return Err(bad("not a state-dict file (bad magic)"));
        }
        if magic[6..] != MAGIC[6..] {
            return Err(Error::StateDict(format!(
                "unsupported format version {:?} (this build reads version {:?})",
                &magic[6..],
                &MAGIC[6..]
            )));
        }
        let read_u32 = |b: &[u8]| u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
        let count = read_u32(take(4)?);
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let name_len = read_u32(take(4)?);
            let name = std::str::from_utf8(take(name_len)?)
                .map_err(|_| bad("entry name is not valid utf-8"))?
                .to_string();
            let ndims = read_u32(take(4)?);
            // bound declared geometry before trusting it: ndims caps
            // the up-front allocation, and the element count must not
            // wrap (a crafted product of 2^64 would otherwise read 0
            // bytes and fabricate an entry whose data disagrees with
            // its dims)
            if ndims > MAX_DIMS {
                return Err(Error::StateDict(format!(
                    "entry '{name}': implausible rank {ndims} (max {MAX_DIMS})"
                )));
            }
            let mut dims = Vec::with_capacity(ndims);
            for _ in 0..ndims {
                dims.push(read_u32(take(4)?));
            }
            let len = dims
                .iter()
                .try_fold(1usize, |acc, &d| acc.checked_mul(d))
                .and_then(|n| n.checked_mul(4))
                .ok_or_else(|| {
                    Error::StateDict(format!("entry '{name}': dims {dims:?} overflow"))
                })?;
            let raw = take(len)?;
            let data =
                raw.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
            if entries.insert(name.clone(), TensorEntry { dims, data }).is_some() {
                return Err(Error::StateDict(format!("duplicate entry '{name}'")));
            }
        }
        if pos != bytes.len() {
            return Err(Error::StateDict(format!(
                "{} trailing bytes after the last entry",
                bytes.len() - pos
            )));
        }
        Ok(Self { entries })
    }

    /// Write the dict to `path` (the whole file is the binary format).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Read a dict previously written by [`StateDict::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, Error> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StateDict {
        let mut sd = StateDict::new();
        sd.insert("c1.weight", vec![2, 3], vec![1.0, -2.5, 3.25, 0.0, f32::MIN_POSITIVE, 6.0])
            .unwrap();
        sd.insert("c1.bias", vec![2], vec![0.125, -0.5]).unwrap();
        sd.insert("bn.running_var", vec![3], vec![1.0, 1.0, 2.0]).unwrap();
        sd
    }

    #[test]
    fn bytes_round_trip_bit_exact() {
        let sd = sample();
        let rt = StateDict::from_bytes(&sd.to_bytes()).unwrap();
        assert_eq!(sd, rt);
        // byte-identical re-serialization (sorted order is canonical)
        assert_eq!(sd.to_bytes(), rt.to_bytes());
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let bytes = sample().to_bytes();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(StateDict::from_bytes(&wrong_magic).is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[7] = 9;
        let e = StateDict::from_bytes(&wrong_version).unwrap_err();
        assert!(e.to_string().contains("version"), "{e}");
        assert!(StateDict::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(StateDict::from_bytes(&trailing).is_err());
    }

    #[test]
    fn rejects_hostile_geometry() {
        // entry declaring an absurd rank: rejected before allocation
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one entry
        bytes.extend_from_slice(&1u32.to_le_bytes()); // name_len
        bytes.push(b'x');
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // ndims
        let e = StateDict::from_bytes(&bytes).unwrap_err();
        assert!(e.to_string().contains("implausible rank"), "{e}");

        // dims whose product wraps usize: rejected, not fabricated
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'x');
        bytes.extend_from_slice(&3u32.to_le_bytes()); // ndims = 3
        for d in [1u32 << 30, 1u32 << 30, 16] {
            bytes.extend_from_slice(&d.to_le_bytes());
        }
        let e = StateDict::from_bytes(&bytes).unwrap_err();
        assert!(e.to_string().contains("overflow") || e.to_string().contains("truncated"), "{e}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("anatomy_sd_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.anat");
        let sd = sample();
        sd.save(&path).unwrap();
        assert_eq!(StateDict::load(&path).unwrap(), sd);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn insert_checks_geometry() {
        let e = StateDict::new().insert("x", vec![2, 2], vec![0.0; 3]).unwrap_err();
        assert!(e.to_string().contains("disagree"), "{e}");
    }
}
