//! Topology text parser (the protobuf substitution, DESIGN.md §2).
//!
//! One node per line, `type key=value ...`:
//!
//! ```text
//! input name=data c=3 h=224 w=224
//! conv name=conv1 bottom=data k=64 r=7 s=7 stride=2 pad=3 bias=1 relu=1
//! pool name=pool1 bottom=conv1 kind=max size=3 stride=2 pad=1
//! conv name=c2c bottom=c2b k=256 r=1 s=1 eltwise=short relu=1
//! bn name=bn1 bottom=conv1 relu=1
//! gap name=pool5 bottom=res5c
//! fc name=logits bottom=pool5 k=1000
//! softmaxloss name=loss bottom=logits
//! concat name=mix bottom=a,b,c
//! ```
//!
//! Lines starting with `#` and blank lines are ignored. Unspecified
//! conv fields default to `r=s=1, stride=1, pad=0, bias=0, relu=0`.

use crate::spec::{NodeSpec, PoolKind};
use std::collections::HashMap;

/// Parse a topology description into the Network List.
///
/// # Errors
/// Returns a human-readable message naming the offending line.
pub fn parse_topology(text: &str) -> Result<Vec<NodeSpec>, String> {
    let mut nodes = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let kind = it.next().unwrap();
        let mut kv: HashMap<&str, &str> = HashMap::new();
        for tok in it {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key=value, got '{tok}'", lineno + 1))?;
            kv.insert(k, v);
        }
        let name = |kv: &HashMap<&str, &str>| -> Result<String, String> {
            kv.get("name")
                .map(|s| s.to_string())
                .ok_or_else(|| format!("line {}: missing name", lineno + 1))
        };
        let get_usize =
            |kv: &HashMap<&str, &str>, key: &str, default: Option<usize>| match kv.get(key) {
                Some(v) => {
                    v.parse::<usize>().map_err(|_| format!("line {}: bad {key}='{v}'", lineno + 1))
                }
                None => default.ok_or_else(|| format!("line {}: missing {key}", lineno + 1)),
            };
        let get_bool = |kv: &HashMap<&str, &str>, key: &str| -> bool {
            matches!(kv.get(key), Some(&"1") | Some(&"true"))
        };
        let bottom = |kv: &HashMap<&str, &str>| -> Result<String, String> {
            kv.get("bottom")
                .map(|s| s.to_string())
                .ok_or_else(|| format!("line {}: missing bottom", lineno + 1))
        };
        let node = match kind {
            "input" => NodeSpec::Input {
                name: name(&kv)?,
                c: get_usize(&kv, "c", None)?,
                h: get_usize(&kv, "h", None)?,
                w: get_usize(&kv, "w", None)?,
            },
            "conv" => NodeSpec::Conv {
                name: name(&kv)?,
                bottom: bottom(&kv)?,
                k: get_usize(&kv, "k", None)?,
                r: get_usize(&kv, "r", Some(1))?,
                s: get_usize(&kv, "s", Some(1))?,
                stride: get_usize(&kv, "stride", Some(1))?,
                pad: get_usize(&kv, "pad", Some(0))?,
                bias: get_bool(&kv, "bias"),
                relu: get_bool(&kv, "relu"),
                eltwise: kv.get("eltwise").map(|s| s.to_string()),
            },
            "bn" => NodeSpec::Bn {
                name: name(&kv)?,
                bottom: bottom(&kv)?,
                relu: get_bool(&kv, "relu"),
                eltwise: kv.get("eltwise").map(|s| s.to_string()),
            },
            "pool" => NodeSpec::Pool {
                name: name(&kv)?,
                bottom: bottom(&kv)?,
                kind: match kv.get("kind") {
                    Some(&"max") | None => PoolKind::Max,
                    Some(&"avg") => PoolKind::Avg,
                    Some(other) => {
                        return Err(format!("line {}: bad pool kind '{other}'", lineno + 1))
                    }
                },
                size: get_usize(&kv, "size", None)?,
                stride: get_usize(&kv, "stride", Some(1))?,
                pad: get_usize(&kv, "pad", Some(0))?,
            },
            "gap" => NodeSpec::GlobalAvgPool { name: name(&kv)?, bottom: bottom(&kv)? },
            "fc" => NodeSpec::Fc {
                name: name(&kv)?,
                bottom: bottom(&kv)?,
                k: get_usize(&kv, "k", None)?,
            },
            "softmaxloss" => NodeSpec::SoftmaxLoss { name: name(&kv)?, bottom: bottom(&kv)? },
            "concat" => NodeSpec::Concat {
                name: name(&kv)?,
                bottoms: bottom(&kv)?.split(',').map(|s| s.to_string()).collect(),
            },
            other => return Err(format!("line {}: unknown node type '{other}'", lineno + 1)),
        };
        nodes.push(node);
    }
    validate(&nodes)?;
    Ok(nodes)
}

/// Structural validation: unique names, bottoms defined before use.
fn validate(nodes: &[NodeSpec]) -> Result<(), String> {
    let mut seen = std::collections::HashSet::new();
    for n in nodes {
        for b in n.bottoms() {
            if !seen.contains(b) {
                return Err(format!("node '{}' reads undefined blob '{b}'", n.name()));
            }
        }
        if !seen.insert(n.name().to_string()) {
            return Err(format!("duplicate node name '{}'", n.name()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_small_net() {
        let nl = parse_topology(
            "# comment\n\
             input name=data c=3 h=32 w=32\n\
             conv name=c1 bottom=data k=16 r=3 s=3 stride=1 pad=1 bias=1 relu=1\n\
             pool name=p1 bottom=c1 kind=max size=2 stride=2\n\
             gap name=g bottom=p1\n\
             fc name=logits bottom=g k=16\n\
             softmaxloss name=loss bottom=logits\n",
        )
        .unwrap();
        assert_eq!(nl.len(), 6);
        assert_eq!(nl[1].name(), "c1");
        assert_eq!(nl[1].bottoms(), vec!["data"]);
        assert!(nl[1].has_params());
    }

    #[test]
    fn conv_defaults() {
        let nl = parse_topology("input name=d c=16 h=8 w=8\nconv name=c bottom=d k=16\n").unwrap();
        match &nl[1] {
            NodeSpec::Conv { r, s, stride, pad, bias, relu, eltwise, .. } => {
                assert_eq!((*r, *s, *stride, *pad), (1, 1, 1, 0));
                assert!(!bias && !relu && eltwise.is_none());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_undefined_bottom() {
        let e =
            parse_topology("input name=d c=3 h=4 w=4\nconv name=c bottom=nope k=8\n").unwrap_err();
        assert!(e.contains("undefined blob"), "{e}");
    }

    #[test]
    fn rejects_duplicate_names() {
        let e = parse_topology("input name=d c=3 h=4 w=4\nconv name=d bottom=d k=8\n").unwrap_err();
        assert!(e.contains("duplicate"), "{e}");
    }

    #[test]
    fn concat_bottoms_split() {
        let nl = parse_topology(
            "input name=d c=16 h=8 w=8\n\
             conv name=a bottom=d k=16\n\
             conv name=b bottom=d k=16\n\
             concat name=m bottom=a,b\n",
        )
        .unwrap();
        assert_eq!(nl[3].bottoms(), vec!["a", "b"]);
    }
}
