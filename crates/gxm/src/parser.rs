//! Topology text parser (the protobuf substitution, DESIGN.md §2).
//!
//! One node per line, `type key=value ...`:
//!
//! ```text
//! seed value=42
//! input name=data c=3 h=224 w=224
//! conv name=conv1 bottom=data k=64 r=7 s=7 stride=2 pad=3 bias=1 relu=1
//! pool name=pool1 bottom=conv1 kind=max size=3 stride=2 pad=1
//! conv name=c2c bottom=c2b k=256 r=1 s=1 eltwise=short relu=1
//! bn name=bn1 bottom=conv1 relu=1
//! gap name=pool5 bottom=res5c
//! fc name=logits bottom=pool5 k=1000
//! softmaxloss name=loss bottom=logits
//! concat name=mix bottom=a,b,c
//! ```
//!
//! Lines starting with `#` and blank lines are ignored. Unspecified
//! conv fields default to `r=s=1, stride=1, pad=0, bias=0, relu=0`;
//! unknown keys and malformed flag values are errors (a typo must not
//! silently produce a different model).
//! The optional `seed` directive sets the weight-initialization seed
//! carried by the resulting [`crate::ModelSpec`].
//!
//! This module only tokenizes; [`crate::ModelSpec::parse`] is the
//! public entry point and runs the full structural + shape validation
//! on the token stream (with line numbers threaded through for the
//! graph diagnostics).

use crate::error::Error;
use crate::model::ModelSpec;
use crate::spec::{NodeSpec, PoolKind};
use std::collections::HashMap;

/// Raw parse result: nodes with their 1-based source lines, plus the
/// optional `seed` directive.
pub(crate) struct Parsed {
    pub nodes: Vec<NodeSpec>,
    pub lines: Vec<usize>,
    pub seed: Option<u64>,
}

/// Tokenize topology text into nodes (no graph validation here).
pub(crate) fn parse_text(text: &str) -> Result<Parsed, Error> {
    let mut nodes = Vec::new();
    let mut lines = Vec::new();
    let mut seed = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let err = |message: String| Error::Parse { line: lineno, message };
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let kind = it.next().unwrap();
        let mut kv: HashMap<&str, &str> = HashMap::new();
        for tok in it {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| err(format!("expected key=value, got '{tok}'")))?;
            if kv.insert(k, v).is_some() {
                return Err(err(format!("duplicate key '{k}'")));
            }
        }
        let name = |kv: &HashMap<&str, &str>| -> Result<String, Error> {
            kv.get("name").map(|s| s.to_string()).ok_or_else(|| err("missing name".to_string()))
        };
        let get_usize =
            |kv: &HashMap<&str, &str>, key: &str, default: Option<usize>| match kv.get(key) {
                Some(v) => v.parse::<usize>().map_err(|_| err(format!("bad {key}='{v}'"))),
                None => default.ok_or_else(|| err(format!("missing {key}"))),
            };
        let get_bool = |kv: &HashMap<&str, &str>, key: &str| -> Result<bool, Error> {
            match kv.get(key) {
                None | Some(&"0") | Some(&"false") => Ok(false),
                Some(&"1") | Some(&"true") => Ok(true),
                Some(other) => Err(err(format!("bad {key}='{other}' (use 0/1/true/false)"))),
            }
        };
        let bottom = |kv: &HashMap<&str, &str>| -> Result<String, Error> {
            kv.get("bottom").map(|s| s.to_string()).ok_or_else(|| err("missing bottom".to_string()))
        };
        // every key must belong to the node type — a misspelled key
        // silently producing a structurally different model is exactly
        // what the typed API exists to prevent
        let check_keys = |kv: &HashMap<&str, &str>, allowed: &[&str]| -> Result<(), Error> {
            match kv.keys().find(|k| !allowed.contains(*k)) {
                Some(stranger) => {
                    Err(err(format!("unknown key '{stranger}' for node type '{kind}'")))
                }
                None => Ok(()),
            }
        };
        let node = match kind {
            "seed" => {
                check_keys(&kv, &["value"])?;
                let v = kv.get("value").ok_or_else(|| err("missing value".to_string()))?;
                let v = v.parse::<u64>().map_err(|_| err(format!("bad value='{v}'")))?;
                if seed.replace(v).is_some() {
                    return Err(err("duplicate seed directive".to_string()));
                }
                continue;
            }
            "input" => {
                check_keys(&kv, &["name", "c", "h", "w"])?;
                NodeSpec::Input {
                    name: name(&kv)?,
                    c: get_usize(&kv, "c", None)?,
                    h: get_usize(&kv, "h", None)?,
                    w: get_usize(&kv, "w", None)?,
                }
            }
            "conv" => {
                check_keys(
                    &kv,
                    &["name", "bottom", "k", "r", "s", "stride", "pad", "bias", "relu", "eltwise"],
                )?;
                NodeSpec::Conv {
                    name: name(&kv)?,
                    bottom: bottom(&kv)?,
                    k: get_usize(&kv, "k", None)?,
                    r: get_usize(&kv, "r", Some(1))?,
                    s: get_usize(&kv, "s", Some(1))?,
                    stride: get_usize(&kv, "stride", Some(1))?,
                    pad: get_usize(&kv, "pad", Some(0))?,
                    bias: get_bool(&kv, "bias")?,
                    relu: get_bool(&kv, "relu")?,
                    eltwise: kv.get("eltwise").map(|s| s.to_string()),
                }
            }
            "bn" => {
                check_keys(&kv, &["name", "bottom", "relu", "eltwise"])?;
                NodeSpec::Bn {
                    name: name(&kv)?,
                    bottom: bottom(&kv)?,
                    relu: get_bool(&kv, "relu")?,
                    eltwise: kv.get("eltwise").map(|s| s.to_string()),
                }
            }
            "pool" => {
                check_keys(&kv, &["name", "bottom", "kind", "size", "stride", "pad"])?;
                NodeSpec::Pool {
                    name: name(&kv)?,
                    bottom: bottom(&kv)?,
                    kind: match kv.get("kind") {
                        Some(&"max") | None => PoolKind::Max,
                        Some(&"avg") => PoolKind::Avg,
                        Some(other) => return Err(err(format!("bad pool kind '{other}'"))),
                    },
                    size: get_usize(&kv, "size", None)?,
                    stride: get_usize(&kv, "stride", Some(1))?,
                    pad: get_usize(&kv, "pad", Some(0))?,
                }
            }
            "gap" => {
                check_keys(&kv, &["name", "bottom"])?;
                NodeSpec::GlobalAvgPool { name: name(&kv)?, bottom: bottom(&kv)? }
            }
            "fc" => {
                check_keys(&kv, &["name", "bottom", "k"])?;
                NodeSpec::Fc {
                    name: name(&kv)?,
                    bottom: bottom(&kv)?,
                    k: get_usize(&kv, "k", None)?,
                }
            }
            "softmaxloss" => {
                check_keys(&kv, &["name", "bottom"])?;
                NodeSpec::SoftmaxLoss { name: name(&kv)?, bottom: bottom(&kv)? }
            }
            "concat" => {
                check_keys(&kv, &["name", "bottom"])?;
                NodeSpec::Concat {
                    name: name(&kv)?,
                    bottoms: bottom(&kv)?.split(',').map(|s| s.to_string()).collect(),
                }
            }
            other => return Err(err(format!("unknown node type '{other}'"))),
        };
        nodes.push(node);
        lines.push(lineno);
    }
    Ok(Parsed { nodes, lines, seed })
}

/// Parse a topology description into a validated [`ModelSpec`].
///
/// Compatibility shim for the pre-typed API; new code should call
/// [`ModelSpec::parse`] directly.
///
/// # Errors
/// Returns a typed [`Error`] naming the offending line or node.
pub fn parse_topology(text: &str) -> Result<ModelSpec, Error> {
    ModelSpec::parse(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_small_net() {
        let spec = parse_topology(
            "# comment\n\
             input name=data c=3 h=32 w=32\n\
             conv name=c1 bottom=data k=16 r=3 s=3 stride=1 pad=1 bias=1 relu=1\n\
             pool name=p1 bottom=c1 kind=max size=2 stride=2\n\
             gap name=g bottom=p1\n\
             fc name=logits bottom=g k=16\n\
             softmaxloss name=loss bottom=logits\n",
        )
        .unwrap();
        let nl = spec.nodes();
        assert_eq!(nl.len(), 6);
        assert_eq!(nl[1].name(), "c1");
        assert_eq!(nl[1].bottoms(), vec!["data"]);
        assert!(nl[1].has_params());
    }

    #[test]
    fn conv_defaults() {
        let spec = parse_topology(
            "input name=d c=16 h=8 w=8\nconv name=c bottom=d k=16\ngap name=g bottom=c\n\
             fc name=f bottom=g k=4\nsoftmaxloss name=loss bottom=f\n",
        )
        .unwrap();
        match &spec.nodes()[1] {
            NodeSpec::Conv { r, s, stride, pad, bias, relu, eltwise, .. } => {
                assert_eq!((*r, *s, *stride, *pad), (1, 1, 1, 0));
                assert!(!bias && !relu && eltwise.is_none());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn seed_directive_is_carried() {
        let spec = parse_topology(
            "seed value=99\ninput name=d c=16 h=8 w=8\nconv name=c bottom=d k=16\n\
             gap name=g bottom=c\nfc name=f bottom=g k=4\nsoftmaxloss name=loss bottom=f\n",
        )
        .unwrap();
        assert_eq!(spec.seed(), 99);
    }

    #[test]
    fn rejects_undefined_bottom_with_line() {
        let e =
            parse_topology("input name=d c=3 h=4 w=4\nconv name=c bottom=nope k=8\n").unwrap_err();
        match &e {
            Error::Graph { node, line, message } => {
                assert_eq!(node, "c");
                assert_eq!(*line, Some(2));
                assert!(message.contains("undefined blob"), "{message}");
            }
            other => panic!("expected Graph error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_names_with_line() {
        let e = parse_topology(
            "input name=d c=3 h=4 w=4\n\n# padding comment\nconv name=d bottom=d k=8\n",
        )
        .unwrap_err();
        match &e {
            Error::Graph { line, message, .. } => {
                assert_eq!(*line, Some(4), "line numbers must skip blanks/comments");
                assert!(message.contains("duplicate"), "{message}");
            }
            other => panic!("expected Graph error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_keys_and_bad_flags() {
        // a misspelled key must not silently vanish
        let e = parse_topology("input name=d c=3 h=4 w=4\nconv name=c bottom=d k=8 strde=2\n")
            .unwrap_err();
        match &e {
            Error::Parse { line, message } => {
                assert_eq!(*line, 2);
                assert!(message.contains("unknown key 'strde'"), "{message}");
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
        // a flag value outside 0/1/true/false must not mean false
        let e = parse_topology("input name=d c=3 h=4 w=4\nconv name=c bottom=d k=8 bias=yes\n")
            .unwrap_err();
        assert!(e.to_string().contains("bias='yes'"), "{e}");
        // repeated keys must not silently last-win
        let e = parse_topology(
            "input name=d c=3 h=4 w=4\nconv name=c bottom=d k=8 stride=1 stride=2\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("duplicate key 'stride'"), "{e}");
    }

    #[test]
    fn rejects_bad_tokens_with_line() {
        let e = parse_topology("input name=d c=3 h=4 w=4\nconv name=c bottom=d k=banana\n")
            .unwrap_err();
        assert!(matches!(e, Error::Parse { line: 2, .. }), "{e:?}");
    }

    #[test]
    fn concat_bottoms_split() {
        let spec = parse_topology(
            "input name=d c=16 h=8 w=8\n\
             conv name=a bottom=d k=16\n\
             conv name=b bottom=d k=16\n\
             concat name=m bottom=a,b\n\
             gap name=g bottom=m\n\
             fc name=f bottom=g k=4\n\
             softmaxloss name=loss bottom=f\n",
        )
        .unwrap();
        assert_eq!(spec.nodes()[3].bottoms(), vec!["a", "b"]);
    }
}
