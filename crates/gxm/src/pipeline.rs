//! The ETG construction pipeline of Figure 3:
//! `NL → (NL Extender) → ENL → ENG → PETG → (binning) → UETG →
//! (dedup) → ETG`.
//!
//! * **NL Extender**: blobs consumed by more than one node get a Split
//!   node (tensor distribution forward, gradient reduction backward);
//! * **ENG**: the extended node graph with explicit edges;
//! * **PETG**: one task per (node, pass) with dependencies — forward
//!   tasks follow the topological order, backward tasks its reverse,
//!   weight-update tasks depend on the node's backward;
//! * **UETG**: tasks binned per pass into executable sequences;
//! * **ETG**: duplicate-eliminated final schedule.

use crate::spec::NodeSpec;
use std::collections::HashMap;

/// Task flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Forward propagation.
    Fwd,
    /// Backward propagation.
    Bwd,
    /// Weight-gradient update.
    Upd,
}

/// One ETG task: execute `pass` of node `node`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Task {
    /// Index into the extended node list.
    pub node: usize,
    /// Which pass.
    pub pass: PassKind,
}

/// The extended node graph.
#[derive(Debug)]
pub struct Eng {
    /// Extended node list (NL + Split nodes).
    pub nodes: Vec<NodeSpec>,
    /// For each node, the producer indices it reads from.
    pub preds: Vec<Vec<usize>>,
}

/// Final execution task graph: binned, deduplicated schedules.
#[derive(Debug)]
pub struct Etg {
    /// The extended node list the schedules index into.
    pub eng: Eng,
    /// Forward schedule (topological).
    pub fwd: Vec<Task>,
    /// Backward schedule (reverse topological, Bwd tasks).
    pub bwd: Vec<Task>,
    /// Weight-update schedule.
    pub upd: Vec<Task>,
}

/// NL Extender: rewrite fan-out blobs through Split nodes (ENL).
pub fn extend_nl(nl: &[NodeSpec]) -> Vec<NodeSpec> {
    // count consumers per blob
    let mut consumers: HashMap<String, usize> = HashMap::new();
    for n in nl {
        for b in n.bottoms() {
            *consumers.entry(b.to_string()).or_default() += 1;
        }
    }
    let mut enl = Vec::new();
    let mut rename: HashMap<String, String> = HashMap::new();
    for n in nl {
        // rewrite this node's bottoms through any existing splits
        let mut n2 = n.clone();
        rewrite_bottoms(&mut n2, &rename);
        let name = n2.name().to_string();
        enl.push(n2);
        // if this node's output fans out, append a Split and route
        // subsequent consumers through it
        if consumers.get(&name).copied().unwrap_or(0) > 1 {
            let split_name = format!("{name}__split");
            enl.push(NodeSpec::Split {
                name: split_name.clone(),
                bottom: name.clone(),
                consumers: consumers[&name],
            });
            rename.insert(name, split_name);
        }
    }
    enl
}

fn rewrite_bottoms(n: &mut NodeSpec, rename: &HashMap<String, String>) {
    let fix = |s: &mut String| {
        if let Some(new) = rename.get(s) {
            *s = new.clone();
        }
    };
    match n {
        NodeSpec::Conv { bottom, eltwise, .. } | NodeSpec::Bn { bottom, eltwise, .. } => {
            fix(bottom);
            if let Some(e) = eltwise {
                fix(e);
            }
        }
        NodeSpec::Pool { bottom, .. }
        | NodeSpec::GlobalAvgPool { bottom, .. }
        | NodeSpec::Fc { bottom, .. }
        | NodeSpec::SoftmaxLoss { bottom, .. }
        | NodeSpec::Split { bottom, .. } => fix(bottom),
        NodeSpec::Concat { bottoms, .. } => bottoms.iter_mut().for_each(fix),
        NodeSpec::Input { .. } => {}
    }
}

/// Build the extended node graph from the ENL.
pub fn build_eng(enl: Vec<NodeSpec>) -> Eng {
    let index: HashMap<String, usize> =
        enl.iter().enumerate().map(|(i, n)| (n.name().to_string(), i)).collect();
    let preds = enl.iter().map(|n| n.bottoms().iter().map(|b| index[*b]).collect()).collect();
    Eng { nodes: enl, preds }
}

/// PETG: emit (node, pass) tasks with dependency-implied ordering, then
/// bin (UETG) and deduplicate (ETG).
pub fn build_etg(eng: Eng) -> Etg {
    // topological order (the ENL is already topologically sorted by
    // construction — the parser enforces define-before-use — but we
    // verify instead of trusting)
    for (i, preds) in eng.preds.iter().enumerate() {
        for &p in preds {
            assert!(p < i, "ENL not topologically ordered");
        }
    }
    // PETG → UETG: bin per pass
    let mut fwd: Vec<Task> =
        (0..eng.nodes.len()).map(|node| Task { node, pass: PassKind::Fwd }).collect();
    let bwd: Vec<Task> =
        (0..eng.nodes.len()).rev().map(|node| Task { node, pass: PassKind::Bwd }).collect();
    let upd: Vec<Task> = (0..eng.nodes.len())
        .rev()
        .filter(|&node| eng.nodes[node].has_params())
        .map(|node| Task { node, pass: PassKind::Upd })
        .collect();
    // ETG: duplicate elimination (defensive — binning can't introduce
    // duplicates here, but the pipeline stage exists and is tested)
    let mut seen = std::collections::HashSet::new();
    fwd.retain(|t| seen.insert(*t));
    let mut seen = std::collections::HashSet::new();
    let bwd: Vec<Task> = bwd.into_iter().filter(|t| seen.insert(*t)).collect();
    Etg { eng, fwd, bwd, upd }
}

/// Convenience: full pipeline from NL to ETG.
pub fn compile(nl: &[NodeSpec]) -> Etg {
    build_etg(build_eng(extend_nl(nl)))
}

/// Forward-schedule liveness: for every blob-owning node, the last
/// position in `etg.fwd` at which its output blob is read (by a
/// consumer, through any Split alias) or written (by the node itself).
///
/// `alias[i]` maps node `i` to the node owning its output blob (Split
/// nodes alias their bottom; everything else owns itself). The result
/// is indexed by owner node and drives the inference executor's
/// buffer-reuse plan: after position `last_use[o]` the owner's
/// activation storage is dead and can back a later node's output.
pub fn fwd_last_use(etg: &Etg, alias: &[usize]) -> Vec<usize> {
    let mut last = vec![0usize; etg.eng.nodes.len()];
    for (pos, t) in etg.fwd.iter().enumerate() {
        last[alias[t.node]] = last[alias[t.node]].max(pos);
        for &p in &etg.eng.preds[t.node] {
            let o = alias[p];
            last[o] = last[o].max(pos);
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_topology;

    fn residual_nl() -> Vec<NodeSpec> {
        parse_topology(
            "input name=data c=16 h=8 w=8\n\
             conv name=a bottom=data k=16 r=3 s=3 pad=1\n\
             conv name=b bottom=a k=16\n\
             conv name=c bottom=b k=16 eltwise=a relu=1\n\
             gap name=g bottom=c\n\
             fc name=f bottom=g k=16\n\
             softmaxloss name=loss bottom=f\n",
        )
        .unwrap()
        .nodes()
        .to_vec()
    }

    #[test]
    fn extender_inserts_split_for_fanout() {
        // blob `a` feeds both `b` and the eltwise of `c`
        let enl = extend_nl(&residual_nl());
        let split: Vec<_> = enl.iter().filter(|n| matches!(n, NodeSpec::Split { .. })).collect();
        assert_eq!(split.len(), 1);
        match split[0] {
            NodeSpec::Split { bottom, consumers, .. } => {
                assert_eq!(bottom, "a");
                assert_eq!(*consumers, 2);
            }
            _ => unreachable!(),
        }
        // consumers of `a` now read the split's output
        let b = enl.iter().find(|n| n.name() == "b").unwrap();
        assert_eq!(b.bottoms(), vec!["a__split"]);
        let c = enl.iter().find(|n| n.name() == "c").unwrap();
        assert!(c.bottoms().contains(&"a__split"));
    }

    #[test]
    fn linear_chain_needs_no_split() {
        let nl = parse_topology(
            "input name=d c=16 h=4 w=4\nconv name=c bottom=d k=16\ngap name=g bottom=c\n\
             fc name=f bottom=g k=4\nsoftmaxloss name=loss bottom=f\n",
        )
        .unwrap()
        .nodes()
        .to_vec();
        let enl = extend_nl(&nl);
        assert_eq!(enl.len(), nl.len());
    }

    #[test]
    fn eng_edges_point_at_producers() {
        let eng = build_eng(extend_nl(&residual_nl()));
        for (i, preds) in eng.preds.iter().enumerate() {
            for &p in preds {
                assert!(p < i);
            }
        }
    }

    #[test]
    fn liveness_tracks_split_consumers() {
        let etg = compile(&residual_nl());
        let nodes = &etg.eng.nodes;
        // resolve aliases exactly as the executor does
        let index: HashMap<String, usize> =
            nodes.iter().enumerate().map(|(i, n)| (n.name().to_string(), i)).collect();
        let mut alias: Vec<usize> = (0..nodes.len()).collect();
        for (i, n) in nodes.iter().enumerate() {
            if let NodeSpec::Split { bottom, .. } = n {
                alias[i] = alias[index[bottom.as_str()]];
            }
        }
        let last = fwd_last_use(&etg, &alias);
        // conv `a` fans out through a split to `b` and the eltwise of
        // `c`: its blob must stay live until `c` executes
        let a = index["a"];
        let c_pos = etg.fwd.iter().position(|t| t.node == index["c"]).unwrap();
        assert_eq!(last[a], c_pos);
        // the final fc feeds only the loss (the schedule's last task)
        let f = index["f"];
        assert_eq!(last[f], etg.fwd.len() - 1);
    }

    #[test]
    fn etg_schedules_cover_all_passes() {
        let etg = compile(&residual_nl());
        let n = etg.eng.nodes.len();
        assert_eq!(etg.fwd.len(), n);
        assert_eq!(etg.bwd.len(), n);
        // bwd is the exact reverse of fwd
        for (f, b) in etg.fwd.iter().zip(etg.bwd.iter().rev()) {
            assert_eq!(f.node, b.node);
        }
        // upd tasks exist exactly for parameterized nodes
        let with_params = etg.eng.nodes.iter().filter(|nd| nd.has_params()).count();
        assert_eq!(etg.upd.len(), with_params);
    }
}
