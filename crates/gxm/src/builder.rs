//! `GraphBuilder` — the fluent, typed route to a [`ModelSpec`].
//!
//! The builder keeps an implicit cursor on the most recently added
//! node: each layer method consumes the cursor as its `bottom` and
//! moves the cursor to the new node, so a linear network reads as one
//! chain. Branching topologies re-anchor the cursor with
//! [`GraphBuilder::from`] and join branches with
//! [`GraphBuilder::concat`] (Inception) or the `eltwise` residual
//! joins on conv/bn nodes (ResNet).
//!
//! Nothing is validated until [`GraphBuilder::build`], which runs the
//! full [`ModelSpec`] validation — a builder chain can therefore be
//! assembled in any order that keeps `bottom`s defined before use.
//!
//! ```
//! use gxm::{ConvOpts, GraphBuilder};
//!
//! let spec = GraphBuilder::new()
//!     .input("data", 3, 32, 32)
//!     .conv("c1", ConvOpts::k(16).rs(3).pad(1).bias().relu())
//!     .max_pool("p1", 2, 2, 0)
//!     .conv("c2", ConvOpts::k(32).bias().relu())
//!     .gap("g")
//!     .fc("logits", 10)
//!     .softmax("loss")
//!     .build()
//!     .unwrap();
//! assert_eq!(spec.nodes().len(), 7);
//! assert_eq!(spec.classes(), 10);
//!
//! // a residual join: re-anchor with `.from`, join with `bn_join`
//! let block = GraphBuilder::new()
//!     .input("data", 16, 8, 8)
//!     .conv("c0", ConvOpts::k(16))
//!     .bn_relu("b0")
//!     .conv("c1", ConvOpts::k(16).rs(3).pad(1))
//!     .bn_relu("b1")
//!     .conv("c2", ConvOpts::k(16).rs(3).pad(1))
//!     .bn_join("b2", "b0", true)
//!     .gap("g")
//!     .fc("logits", 4)
//!     .softmax("loss")
//!     .build()
//!     .unwrap();
//! assert_eq!(block.input_dims(), (16, 8, 8));
//! ```

use crate::error::Error;
use crate::model::ModelSpec;
use crate::spec::{NodeSpec, PoolKind};

/// Convolution layer options for [`GraphBuilder::conv`], built
/// fluently from the output-channel count.
#[derive(Clone, Debug)]
pub struct ConvOpts {
    k: usize,
    r: usize,
    s: usize,
    stride: usize,
    pad: usize,
    bias: bool,
    relu: bool,
    eltwise: Option<String>,
}

impl ConvOpts {
    /// A `k`-output-channel 1×1 convolution, stride 1, no padding, no
    /// fused ops — extend fluently from here.
    pub fn k(k: usize) -> Self {
        Self { k, r: 1, s: 1, stride: 1, pad: 0, bias: false, relu: false, eltwise: None }
    }

    /// Square `rs`×`rs` filter.
    pub fn rs(mut self, rs: usize) -> Self {
        self.r = rs;
        self.s = rs;
        self
    }

    /// Rectangular `r`×`s` filter (factorized 1×7 / 7×1 taps).
    pub fn filter(mut self, r: usize, s: usize) -> Self {
        self.r = r;
        self.s = s;
        self
    }

    /// Stride in both spatial dimensions.
    pub fn stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Zero padding in both spatial dimensions.
    pub fn pad(mut self, pad: usize) -> Self {
        self.pad = pad;
        self
    }

    /// Fuse a learned bias into the convolution.
    pub fn bias(mut self) -> Self {
        self.bias = true;
        self
    }

    /// Fuse a ReLU into the convolution.
    pub fn relu(mut self) -> Self {
        self.relu = true;
        self
    }

    /// Fuse a residual eltwise-add of `blob` (before the ReLU).
    pub fn residual(mut self, blob: &str) -> Self {
        self.eltwise = Some(blob.to_string());
        self
    }
}

/// Fluent builder for [`ModelSpec`]s (see the [module docs](self) for
/// the cursor model and a full example).
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<NodeSpec>,
    seed: Option<u64>,
    cursor: String,
}

impl GraphBuilder {
    /// An empty builder; add an [`GraphBuilder::input`] first.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the weight-initialization seed of the built spec.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    fn push(mut self, node: NodeSpec) -> Self {
        self.cursor = node.name().to_string();
        self.nodes.push(node);
        self
    }

    /// Re-anchor the cursor on an earlier node, so the next layer
    /// reads `name` as its bottom (branch points).
    pub fn from(mut self, name: &str) -> Self {
        self.cursor = name.to_string();
        self
    }

    /// The network input (the data layer), `c`×`h`×`w` per sample.
    pub fn input(self, name: &str, c: usize, h: usize, w: usize) -> Self {
        self.push(NodeSpec::Input { name: name.to_string(), c, h, w })
    }

    /// A convolution reading the cursor, configured by [`ConvOpts`].
    pub fn conv(self, name: &str, opts: ConvOpts) -> Self {
        let bottom = self.cursor.clone();
        self.push(NodeSpec::Conv {
            name: name.to_string(),
            bottom,
            k: opts.k,
            r: opts.r,
            s: opts.s,
            stride: opts.stride,
            pad: opts.pad,
            bias: opts.bias,
            relu: opts.relu,
            eltwise: opts.eltwise,
        })
    }

    /// Batch normalization of the cursor.
    pub fn bn(self, name: &str) -> Self {
        let bottom = self.cursor.clone();
        self.push(NodeSpec::Bn { name: name.to_string(), bottom, relu: false, eltwise: None })
    }

    /// Batch normalization with a fused ReLU.
    pub fn bn_relu(self, name: &str) -> Self {
        let bottom = self.cursor.clone();
        self.push(NodeSpec::Bn { name: name.to_string(), bottom, relu: true, eltwise: None })
    }

    /// Batch normalization joining a residual branch:
    /// `y = [relu](bn(cursor) + residual)` — the ResNet shortcut.
    pub fn bn_join(self, name: &str, residual: &str, relu: bool) -> Self {
        let bottom = self.cursor.clone();
        self.push(NodeSpec::Bn {
            name: name.to_string(),
            bottom,
            relu,
            eltwise: Some(residual.to_string()),
        })
    }

    /// Max pooling of the cursor.
    pub fn max_pool(self, name: &str, size: usize, stride: usize, pad: usize) -> Self {
        let bottom = self.cursor.clone();
        self.push(NodeSpec::Pool {
            name: name.to_string(),
            bottom,
            kind: PoolKind::Max,
            size,
            stride,
            pad,
        })
    }

    /// Average pooling of the cursor.
    pub fn avg_pool(self, name: &str, size: usize, stride: usize, pad: usize) -> Self {
        let bottom = self.cursor.clone();
        self.push(NodeSpec::Pool {
            name: name.to_string(),
            bottom,
            kind: PoolKind::Avg,
            size,
            stride,
            pad,
        })
    }

    /// Global average pooling of the cursor to 1×1.
    pub fn gap(self, name: &str) -> Self {
        let bottom = self.cursor.clone();
        self.push(NodeSpec::GlobalAvgPool { name: name.to_string(), bottom })
    }

    /// Fully connected head over the (1×1-spatial) cursor.
    pub fn fc(self, name: &str, k: usize) -> Self {
        let bottom = self.cursor.clone();
        self.push(NodeSpec::Fc { name: name.to_string(), bottom, k })
    }

    /// Softmax + cross-entropy head over the cursor.
    pub fn softmax(self, name: &str) -> Self {
        let bottom = self.cursor.clone();
        self.push(NodeSpec::SoftmaxLoss { name: name.to_string(), bottom })
    }

    /// Channel concatenation of named branches (Inception joins); the
    /// cursor moves to the concat node.
    pub fn concat(self, name: &str, bottoms: &[&str]) -> Self {
        self.push(NodeSpec::Concat {
            name: name.to_string(),
            bottoms: bottoms.iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Validate into a [`ModelSpec`] (structure + shape inference).
    pub fn build(self) -> Result<ModelSpec, Error> {
        let spec = ModelSpec::from_nodes(self.nodes)?;
        Ok(match self.seed {
            Some(s) => spec.with_seed(s),
            None => spec,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_equals_parsed_text() {
        let built = GraphBuilder::new()
            .input("data", 3, 8, 8)
            .conv("c1", ConvOpts::k(16).rs(3).pad(1).bias().relu())
            .max_pool("p1", 2, 2, 0)
            .gap("g")
            .fc("logits", 4)
            .softmax("loss")
            .build()
            .unwrap();
        let parsed = ModelSpec::parse(
            "input name=data c=3 h=8 w=8\n\
             conv name=c1 bottom=data k=16 r=3 s=3 pad=1 bias=1 relu=1\n\
             pool name=p1 bottom=c1 kind=max size=2 stride=2\n\
             gap name=g bottom=p1\n\
             fc name=logits bottom=g k=4\n\
             softmaxloss name=loss bottom=logits\n",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn branches_concat_and_residuals() {
        let spec = GraphBuilder::new()
            .input("data", 16, 8, 8)
            .conv("a", ConvOpts::k(16))
            .from("data")
            .conv("b", ConvOpts::k(8))
            .from("data")
            .avg_pool("p", 3, 1, 1)
            .conv("pproj", ConvOpts::k(8))
            .concat("mix", &["a", "b", "pproj"])
            .conv("post", ConvOpts::k(32).relu())
            .gap("g")
            .fc("logits", 4)
            .softmax("loss")
            .build()
            .unwrap();
        // concat sums channels: 16 + 8 + 8
        let mix = spec.nodes().iter().position(|n| n.name() == "mix").unwrap();
        assert_eq!(spec.shapes()[mix], (32, 8, 8));
    }

    #[test]
    fn build_surfaces_validation_errors() {
        let e = GraphBuilder::new()
            .input("data", 3, 4, 4)
            .conv("c", ConvOpts::k(8).rs(9))
            .gap("g")
            .fc("f", 2)
            .softmax("loss")
            .build()
            .unwrap_err();
        assert!(matches!(e, Error::Shape { .. }), "{e}");
    }

    #[test]
    fn seed_is_carried() {
        let spec = GraphBuilder::new()
            .seed(123)
            .input("data", 3, 4, 4)
            .gap("g")
            .fc("f", 2)
            .softmax("loss")
            .build()
            .unwrap();
        assert_eq!(spec.seed(), 123);
    }
}
