//! Topology node specifications — the parsed Network List (NL).
//!
//! Every node produces exactly one output blob named after the node;
//! `bottom` references name the producing node. The paper's GxM parses
//! protobuf; our text format ([`crate::parser`]) is the dependency-free
//! substitution (DESIGN.md §2).

/// Pooling flavours.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolKind {
    /// Max pooling (stores argmax for the backward pass).
    Max,
    /// Average pooling.
    Avg,
}

/// One node of the Network List.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeSpec {
    /// Network input (the data layer).
    Input {
        /// Node/blob name.
        name: String,
        /// Channels, height, width of one sample.
        c: usize,
        /// Spatial height.
        h: usize,
        /// Spatial width.
        w: usize,
    },
    /// Convolution (optionally with fused bias/ReLU/residual add).
    Conv {
        /// Node/blob name.
        name: String,
        /// Input blob.
        bottom: String,
        /// Output feature maps.
        k: usize,
        /// Filter height/width.
        r: usize,
        /// Filter width.
        s: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Add a learned bias (fused).
        bias: bool,
        /// Apply ReLU (fused).
        relu: bool,
        /// Residual input fused as an eltwise add before the ReLU.
        eltwise: Option<String>,
    },
    /// Batch normalization (training statistics), optional fused
    /// residual add and ReLU: `y = relu(bn(x) + residual)`.
    Bn {
        /// Node/blob name.
        name: String,
        /// Input blob.
        bottom: String,
        /// Fused ReLU after normalization.
        relu: bool,
        /// Residual blob added before the ReLU (ResNet shortcut).
        eltwise: Option<String>,
    },
    /// Spatial pooling.
    Pool {
        /// Node/blob name.
        name: String,
        /// Input blob.
        bottom: String,
        /// Max or average.
        kind: PoolKind,
        /// Window size.
        size: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Global average pooling to 1×1.
    GlobalAvgPool {
        /// Node/blob name.
        name: String,
        /// Input blob.
        bottom: String,
    },
    /// Fully connected / inner product.
    Fc {
        /// Node/blob name.
        name: String,
        /// Input blob (1×1 spatial).
        bottom: String,
        /// Output units.
        k: usize,
    },
    /// Softmax + cross-entropy loss (training head).
    SoftmaxLoss {
        /// Node/blob name.
        name: String,
        /// Logits blob.
        bottom: String,
    },
    /// Channel concatenation (Inception blocks).
    Concat {
        /// Node/blob name.
        name: String,
        /// Input blobs, concatenated in order.
        bottoms: Vec<String>,
    },
    /// Tensor distribution node inserted by the NL Extender when a blob
    /// feeds several consumers; its backward sums the fan-out
    /// gradients (Section II-L: "Split nodes that perform tensor
    /// distribution and reduction").
    Split {
        /// Node/blob name.
        name: String,
        /// The distributed blob.
        bottom: String,
        /// Fan-out count.
        consumers: usize,
    },
}

impl NodeSpec {
    /// The node's (and its output blob's) name.
    pub fn name(&self) -> &str {
        match self {
            NodeSpec::Input { name, .. }
            | NodeSpec::Conv { name, .. }
            | NodeSpec::Bn { name, .. }
            | NodeSpec::Pool { name, .. }
            | NodeSpec::GlobalAvgPool { name, .. }
            | NodeSpec::Fc { name, .. }
            | NodeSpec::SoftmaxLoss { name, .. }
            | NodeSpec::Concat { name, .. }
            | NodeSpec::Split { name, .. } => name,
        }
    }

    /// All blobs this node reads.
    pub fn bottoms(&self) -> Vec<&str> {
        match self {
            NodeSpec::Input { .. } => vec![],
            NodeSpec::Conv { bottom, eltwise, .. } | NodeSpec::Bn { bottom, eltwise, .. } => {
                let mut v = vec![bottom.as_str()];
                if let Some(e) = eltwise {
                    v.push(e.as_str());
                }
                v
            }
            NodeSpec::Pool { bottom, .. }
            | NodeSpec::GlobalAvgPool { bottom, .. }
            | NodeSpec::Fc { bottom, .. }
            | NodeSpec::SoftmaxLoss { bottom, .. }
            | NodeSpec::Split { bottom, .. } => vec![bottom.as_str()],
            NodeSpec::Concat { bottoms, .. } => bottoms.iter().map(|s| s.as_str()).collect(),
        }
    }

    /// Whether the node owns trainable parameters.
    pub fn has_params(&self) -> bool {
        matches!(self, NodeSpec::Conv { .. } | NodeSpec::Bn { .. } | NodeSpec::Fc { .. })
    }
}
