//! GxM — the light-weight Graph execution Model (Section II-L).
//!
//! "GxM can be seen as a very light-weight sibling of Tensorflow": a
//! topology description is parsed into a Network List, extended with
//! Split nodes, turned into an Execution Task Graph through the
//! pipeline of Figure 3 (NL → ENL → ENG → PETG → UETG → ETG), and the
//! ETG's tasks execute the forward, backward and weight-update passes
//! on top of the `conv` crate's engines plus the non-convolution
//! operators in [`ops`].
//!
//! Multi-node training (Fig. 9) is modelled in [`multinode`]: data
//! parallelism with the gradient allreduce overlapped behind backward
//! compute, standing in for Intel MLSL over Omnipath (see DESIGN.md).
//!
//! The public model surface is typed (DESIGN.md §8): a [`ModelSpec`]
//! — built by the fluent [`GraphBuilder`] or parsed from topology
//! text via [`ModelSpec::parse`] — is a *validated* graph, every
//! failure is a structured [`Error`], and trained parameters move
//! through named [`StateDict`]s
//! ([`Network::state_dict`]/[`Network::load_state_dict`]) for the
//! train → save → load → serve round trip.

// The non-conv operators index accumulator tiles by (pixel, lane)
// coordinates like the kernel crates; iterator rewrites would obscure
// the addressing.
#![allow(clippy::needless_range_loop)]

pub mod builder;
pub mod data;
pub mod error;
pub mod model;
pub mod multinode;
pub mod net;
pub mod ops;
pub mod parser;
pub mod pipeline;
pub mod spec;
pub mod state;
pub mod swap;

pub use builder::{ConvOpts, GraphBuilder};
pub use conv::Precision;
pub use error::Error;
pub use model::{IntoModelSpec, ModelSpec};
pub use net::{ExecMode, Network, StepStats};
pub use parser::parse_topology;
pub use spec::NodeSpec;
pub use state::{StateDict, TensorEntry};
pub use swap::HotSwap;
