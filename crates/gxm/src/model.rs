//! `ModelSpec` — the validated, typed model description.
//!
//! A `ModelSpec` is a graph of [`NodeSpec`]s that has passed full
//! structural *and* shape validation: unique names, define-before-use
//! `bottom` references, exactly one input and one softmax head,
//! per-node shape inference (so kernel-vs-input mismatches surface
//! here, not as panics deep in the plan phase) and the executor's
//! fusion constraints. Because every constructor validates, a
//! `ModelSpec` in hand is proof the network can be built —
//! [`crate::Network::build`] no longer has a malformed-input panic
//! path.
//!
//! Construction routes:
//! * [`ModelSpec::parse`] — the topology text format (errors carry
//!   line numbers);
//! * [`crate::GraphBuilder`] — the fluent typed builder;
//! * [`ModelSpec::from_nodes`] — a raw node list from code.
//!
//! [`ModelSpec::to_text`] emits canonical topology text that reparses
//! to an equal spec (the round-trip property the proptests pin down).

use crate::error::Error;
use crate::spec::{NodeSpec, PoolKind};
use std::collections::HashMap;

/// The weight-init seed a spec carries when none is set explicitly.
/// Matches the historical hard-coded network seed, so existing
/// deterministic tests keep their initial weights.
pub const DEFAULT_SEED: u64 = 0x5eed;

/// A validated model description: the typed alternative to raw
/// topology strings (see the [module docs](self)).
#[derive(Clone, Debug, PartialEq)]
pub struct ModelSpec {
    nodes: Vec<NodeSpec>,
    seed: u64,
    /// Inferred (c, h, w) per node, aligned with `nodes`.
    shapes: Vec<(usize, usize, usize)>,
    input: usize,
    loss: usize,
}

impl ModelSpec {
    /// Parse topology text (see [`crate::parser`] for the format) into
    /// a validated spec. Errors carry 1-based line numbers.
    pub fn parse(text: &str) -> Result<Self, Error> {
        let parsed = crate::parser::parse_text(text)?;
        let mut spec = Self::validated(parsed.nodes, Some(&parsed.lines))?;
        if let Some(seed) = parsed.seed {
            spec.seed = seed;
        }
        Ok(spec)
    }

    /// Validate a raw node list into a spec (builder/programmatic
    /// route; errors carry node names but no line numbers).
    pub fn from_nodes(nodes: Vec<NodeSpec>) -> Result<Self, Error> {
        Self::validated(nodes, None)
    }

    fn validated(nodes: Vec<NodeSpec>, lines: Option<&[usize]>) -> Result<Self, Error> {
        let (shapes, input, loss) = validate(&nodes, lines)?;
        Ok(Self { nodes, seed: DEFAULT_SEED, shapes, input, loss })
    }

    /// The validated node list.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// The weight-initialization seed ([`DEFAULT_SEED`] unless set).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Set the weight-initialization seed. Every parameter is
    /// initialized from a stream derived from `(seed, node name)`, so
    /// two specs with equal seeds produce bit-identical initial
    /// weights node by node — independent of construction order.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Logical `(c, h, w)` of the input node.
    pub fn input_dims(&self) -> (usize, usize, usize) {
        self.shapes[self.input]
    }

    /// Class count of the softmax head.
    pub fn classes(&self) -> usize {
        self.shapes[self.loss].0
    }

    /// Inferred `(c, h, w)` of every node, aligned with [`Self::nodes`].
    pub fn shapes(&self) -> &[(usize, usize, usize)] {
        &self.shapes
    }

    /// Emit canonical topology text. Reparsing the result yields an
    /// equal spec (including the seed), and the emission is idempotent
    /// — `to_text` of the reparse equals this text.
    pub fn to_text(&self) -> String {
        let mut t = String::new();
        if self.seed != DEFAULT_SEED {
            t.push_str(&format!("seed value={}\n", self.seed));
        }
        for n in &self.nodes {
            match n {
                NodeSpec::Input { name, c, h, w } => {
                    t.push_str(&format!("input name={name} c={c} h={h} w={w}\n"));
                }
                NodeSpec::Conv { name, bottom, k, r, s, stride, pad, bias, relu, eltwise } => {
                    t.push_str(&format!(
                        "conv name={name} bottom={bottom} k={k} r={r} s={s} stride={stride} pad={pad}"
                    ));
                    if *bias {
                        t.push_str(" bias=1");
                    }
                    if *relu {
                        t.push_str(" relu=1");
                    }
                    if let Some(e) = eltwise {
                        t.push_str(&format!(" eltwise={e}"));
                    }
                    t.push('\n');
                }
                NodeSpec::Bn { name, bottom, relu, eltwise } => {
                    t.push_str(&format!("bn name={name} bottom={bottom}"));
                    if *relu {
                        t.push_str(" relu=1");
                    }
                    if let Some(e) = eltwise {
                        t.push_str(&format!(" eltwise={e}"));
                    }
                    t.push('\n');
                }
                NodeSpec::Pool { name, bottom, kind, size, stride, pad } => {
                    let kind = match kind {
                        PoolKind::Max => "max",
                        PoolKind::Avg => "avg",
                    };
                    t.push_str(&format!(
                        "pool name={name} bottom={bottom} kind={kind} size={size} stride={stride} pad={pad}\n"
                    ));
                }
                NodeSpec::GlobalAvgPool { name, bottom } => {
                    t.push_str(&format!("gap name={name} bottom={bottom}\n"));
                }
                NodeSpec::Fc { name, bottom, k } => {
                    t.push_str(&format!("fc name={name} bottom={bottom} k={k}\n"));
                }
                NodeSpec::SoftmaxLoss { name, bottom } => {
                    t.push_str(&format!("softmaxloss name={name} bottom={bottom}\n"));
                }
                NodeSpec::Concat { name, bottoms } => {
                    t.push_str(&format!("concat name={name} bottom={}\n", bottoms.join(",")));
                }
                // validation rejects executor-internal nodes
                NodeSpec::Split { .. } => unreachable!("Split never appears in a ModelSpec"),
            }
        }
        t
    }
}

impl std::str::FromStr for ModelSpec {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Error> {
        Self::parse(s)
    }
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Conversion into a validated [`ModelSpec`] — the bound the typed
/// session constructors take, so call sites can hand over a spec, a
/// builder, or legacy topology text interchangeably.
pub trait IntoModelSpec {
    /// Produce the validated spec (parsing/validating as needed).
    fn into_model_spec(self) -> Result<ModelSpec, Error>;
}

impl IntoModelSpec for ModelSpec {
    fn into_model_spec(self) -> Result<ModelSpec, Error> {
        Ok(self)
    }
}

impl IntoModelSpec for &ModelSpec {
    fn into_model_spec(self) -> Result<ModelSpec, Error> {
        Ok(self.clone())
    }
}

impl IntoModelSpec for &str {
    fn into_model_spec(self) -> Result<ModelSpec, Error> {
        ModelSpec::parse(self)
    }
}

impl IntoModelSpec for &String {
    fn into_model_spec(self) -> Result<ModelSpec, Error> {
        ModelSpec::parse(self)
    }
}

impl IntoModelSpec for String {
    fn into_model_spec(self) -> Result<ModelSpec, Error> {
        ModelSpec::parse(&self)
    }
}

impl IntoModelSpec for crate::GraphBuilder {
    fn into_model_spec(self) -> Result<ModelSpec, Error> {
        self.build()
    }
}

/// Why a node name cannot be represented in the topology text format
/// (`None` when it is legal). Bottoms need no separate check: they
/// must reference a defined (hence already-validated) name.
fn bad_name(name: &str) -> Option<&'static str> {
    if name.is_empty() {
        return Some("names must be non-empty");
    }
    if name.starts_with('#') {
        return Some("names must not start with '#' (comment marker)");
    }
    if name.chars().any(|c| c.is_whitespace() || c == '=' || c == ',') {
        return Some("names must not contain whitespace, '=' or ','");
    }
    None
}

/// Full structural + shape validation. Returns per-node inferred
/// shapes and the input/loss node indices.
#[allow(clippy::type_complexity)]
fn validate(
    nodes: &[NodeSpec],
    lines: Option<&[usize]>,
) -> Result<(Vec<(usize, usize, usize)>, usize, usize), Error> {
    let line_of = |i: usize| lines.map(|l| l[i]);
    let graph_err = |i: usize, msg: String| Error::Graph {
        node: nodes[i].name().to_string(),
        line: line_of(i),
        message: msg,
    };
    let shape_err =
        |i: usize, msg: String| Error::Shape { node: nodes[i].name().to_string(), message: msg };

    if nodes.is_empty() {
        return Err(Error::Graph {
            node: String::new(),
            line: None,
            message: "topology is empty".to_string(),
        });
    }

    // pass 1: structure — legal names, unique names, define-before-use
    // bottoms, no executor-internal node kinds
    let mut index: HashMap<&str, usize> = HashMap::new();
    for (i, n) in nodes.iter().enumerate() {
        if matches!(n, NodeSpec::Split { .. }) {
            return Err(graph_err(
                i,
                "'split' nodes are inserted by the executor and cannot appear in a model spec"
                    .to_string(),
            ));
        }
        // names must survive the text format (key=value tokens,
        // comma-joined concat bottoms, '#' comments) or the documented
        // to_text ↔ parse round trip would be lossy
        if let Some(why) = bad_name(n.name()) {
            return Err(graph_err(i, format!("illegal node name '{}': {why}", n.name())));
        }
        for b in n.bottoms() {
            if !index.contains_key(b) {
                return Err(graph_err(i, format!("reads undefined blob '{b}'")));
            }
        }
        if index.insert(n.name(), i).is_some() {
            return Err(graph_err(i, format!("duplicate node name '{}'", n.name())));
        }
    }

    // pass 2: shape inference with per-node diagnostics
    let mut shapes: Vec<(usize, usize, usize)> = Vec::with_capacity(nodes.len());
    let mut input = None;
    let mut loss = None;
    for (i, n) in nodes.iter().enumerate() {
        let dim_of = |name: &str| shapes[index[name]];
        let sh = match n {
            NodeSpec::Input { c, h, w, .. } => {
                if *c == 0 || *h == 0 || *w == 0 {
                    return Err(shape_err(i, format!("input dims must be >= 1, got {c}x{h}x{w}")));
                }
                if input.replace(i).is_some() {
                    return Err(graph_err(i, "topology has more than one input node".to_string()));
                }
                (*c, *h, *w)
            }
            NodeSpec::Conv { bottom, k, r, s, stride, pad, eltwise, .. } => {
                let (_, h, w) = dim_of(bottom);
                if *k == 0 || *r == 0 || *s == 0 || *stride == 0 {
                    return Err(shape_err(i, "k, r, s and stride must be >= 1".to_string()));
                }
                if h + 2 * pad < *r || w + 2 * pad < *s {
                    return Err(shape_err(
                        i,
                        format!("{r}x{s} filter does not fit {h}x{w} input with pad {pad}"),
                    ));
                }
                // physically padded blobs must not be produced by a
                // conv (conv outputs stay pad-0 in the executor)
                if *pad > 0 && matches!(nodes[index[bottom.as_str()]], NodeSpec::Conv { .. }) {
                    return Err(shape_err(
                        i,
                        format!(
                            "conv output '{bottom}' feeds this padded conv directly; \
                             insert a bn node between them"
                        ),
                    ));
                }
                let out = (*k, (h + 2 * pad - r) / stride + 1, (w + 2 * pad - s) / stride + 1);
                if let Some(e) = eltwise {
                    if dim_of(e) != out {
                        return Err(shape_err(
                            i,
                            format!(
                                "eltwise blob '{e}' has shape {:?}, output is {:?}",
                                dim_of(e),
                                out
                            ),
                        ));
                    }
                }
                out
            }
            NodeSpec::Bn { bottom, eltwise, .. } => {
                let out = dim_of(bottom);
                if let Some(e) = eltwise {
                    if dim_of(e) != out {
                        return Err(shape_err(
                            i,
                            format!(
                                "eltwise blob '{e}' has shape {:?}, output is {:?}",
                                dim_of(e),
                                out
                            ),
                        ));
                    }
                }
                out
            }
            NodeSpec::Pool { bottom, size, stride, pad, .. } => {
                let (c, h, w) = dim_of(bottom);
                if *size == 0 || *stride == 0 {
                    return Err(shape_err(i, "size and stride must be >= 1".to_string()));
                }
                if h + 2 * pad < *size || w + 2 * pad < *size {
                    return Err(shape_err(
                        i,
                        format!("{size}x{size} window does not fit {h}x{w} input with pad {pad}"),
                    ));
                }
                (c, (h + 2 * pad - size) / stride + 1, (w + 2 * pad - size) / stride + 1)
            }
            NodeSpec::GlobalAvgPool { bottom, .. } => {
                let (c, _, _) = dim_of(bottom);
                (c, 1, 1)
            }
            NodeSpec::Fc { bottom, k, .. } => {
                let (_, h, w) = dim_of(bottom);
                if (h, w) != (1, 1) {
                    return Err(shape_err(
                        i,
                        format!("fc bottom must be 1x1 spatial (insert gap), got {h}x{w}"),
                    ));
                }
                if *k == 0 {
                    return Err(shape_err(i, "fc k must be >= 1".to_string()));
                }
                (*k, 1, 1)
            }
            NodeSpec::SoftmaxLoss { bottom, .. } => {
                let (c, h, w) = dim_of(bottom);
                if (h, w) != (1, 1) {
                    return Err(shape_err(
                        i,
                        format!("softmaxloss bottom must be 1x1 spatial, got {h}x{w}"),
                    ));
                }
                if loss.replace(i).is_some() {
                    return Err(graph_err(
                        i,
                        "topology has more than one softmaxloss node".to_string(),
                    ));
                }
                (c, 1, 1)
            }
            NodeSpec::Concat { bottoms, .. } => {
                if bottoms.is_empty() {
                    return Err(graph_err(i, "concat needs at least one bottom".to_string()));
                }
                let (_, h0, w0) = dim_of(&bottoms[0]);
                let mut c = 0;
                for b in bottoms {
                    let (cc, hh, ww) = dim_of(b);
                    if (hh, ww) != (h0, w0) {
                        return Err(shape_err(
                            i,
                            format!("concat inputs disagree spatially: {h0}x{w0} vs {hh}x{ww}"),
                        ));
                    }
                    c += cc;
                }
                (c, h0, w0)
            }
            NodeSpec::Split { .. } => unreachable!("rejected in pass 1"),
        };
        shapes.push(sh);
    }

    let input = input.ok_or_else(|| Error::Graph {
        node: String::new(),
        line: None,
        message: "topology has no input node".to_string(),
    })?;
    let loss = loss.ok_or_else(|| Error::Graph {
        node: String::new(),
        line: None,
        message: "topology has no softmaxloss node".to_string(),
    })?;
    Ok((shapes, input, loss))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> &'static str {
        "input name=data c=3 h=8 w=8\n\
         conv name=c1 bottom=data k=16 r=3 s=3 pad=1 bias=1 relu=1\n\
         gap name=g bottom=c1\n\
         fc name=logits bottom=g k=4\n\
         softmaxloss name=loss bottom=logits\n"
    }

    #[test]
    fn parse_infers_shapes_and_endpoints() {
        let spec = ModelSpec::parse(small()).unwrap();
        assert_eq!(spec.input_dims(), (3, 8, 8));
        assert_eq!(spec.classes(), 4);
        assert_eq!(spec.shapes()[1], (16, 8, 8));
        assert_eq!(spec.seed(), DEFAULT_SEED);
    }

    #[test]
    fn text_round_trip_is_identity() {
        let spec = ModelSpec::parse(small()).unwrap().with_seed(7);
        let text = spec.to_text();
        let reparsed = ModelSpec::parse(&text).unwrap();
        assert_eq!(spec, reparsed);
        assert_eq!(text, reparsed.to_text(), "emission must be idempotent");
    }

    #[test]
    fn missing_endpoints_are_graph_errors() {
        let e = ModelSpec::parse("input name=d c=3 h=4 w=4\n").unwrap_err();
        assert!(matches!(e, Error::Graph { .. }), "{e}");
        assert!(e.to_string().contains("no softmaxloss"));
        let e = ModelSpec::parse(
            "input name=d c=3 h=4 w=4\ninput name=d2 c=3 h=4 w=4\n\
             gap name=g bottom=d\nfc name=f bottom=g k=2\nsoftmaxloss name=l bottom=f\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("more than one input"), "{e}");
    }

    #[test]
    fn names_unrepresentable_in_text_are_rejected() {
        // whitespace, '=', ',', '#'-prefix and empty names would all
        // break the to_text ↔ parse round trip — builder route
        for bad in ["my data", "a=b", "a,b", "#x", ""] {
            let e = crate::GraphBuilder::new()
                .input(bad, 3, 4, 4)
                .gap("g")
                .fc("f", 2)
                .softmax("loss")
                .build()
                .unwrap_err();
            assert!(e.to_string().contains("illegal node name"), "{bad:?}: {e}");
        }
    }

    #[test]
    fn oversized_filter_is_a_shape_error() {
        let e = ModelSpec::parse(
            "input name=d c=3 h=4 w=4\nconv name=c bottom=d k=8 r=7 s=7\n\
             gap name=g bottom=c\nfc name=f bottom=g k=2\nsoftmaxloss name=l bottom=f\n",
        )
        .unwrap_err();
        assert!(matches!(e, Error::Shape { .. }), "{e}");
        assert!(e.to_string().contains("does not fit"));
    }

    #[test]
    fn conv_feeding_padded_conv_is_rejected() {
        let e = ModelSpec::parse(
            "input name=d c=16 h=8 w=8\nconv name=a bottom=d k=16\n\
             conv name=b bottom=a k=16 r=3 s=3 pad=1\n\
             gap name=g bottom=b\nfc name=f bottom=g k=2\nsoftmaxloss name=l bottom=f\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("insert a bn node"), "{e}");
    }

    #[test]
    fn bias_plus_eltwise_is_accepted() {
        // the executor carries BiasEltwise/BiasEltwiseRelu fused-op
        // variants, so a conv may combine a learned bias with a
        // residual add (and a ReLU on top)
        let spec = ModelSpec::parse(
            "input name=d c=16 h=8 w=8\nconv name=a bottom=d k=16\n\
             conv name=b bottom=a k=16\nconv name=c bottom=b k=16 bias=1 eltwise=a relu=1\n\
             gap name=g bottom=c\nfc name=f bottom=g k=2\nsoftmaxloss name=l bottom=f\n",
        )
        .unwrap();
        assert!(spec
            .nodes()
            .iter()
            .any(|n| matches!(n, NodeSpec::Conv { bias: true, eltwise: Some(_), .. })));
    }

    #[test]
    fn fc_on_spatial_blob_is_rejected() {
        let e = ModelSpec::parse(
            "input name=d c=16 h=8 w=8\nfc name=f bottom=d k=2\nsoftmaxloss name=l bottom=f\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("insert gap"), "{e}");
    }

    #[test]
    fn eltwise_shape_mismatch_is_rejected() {
        let e = ModelSpec::parse(
            "input name=d c=16 h=8 w=8\nconv name=a bottom=d k=16\n\
             pool name=p bottom=a kind=max size=2 stride=2\n\
             conv name=b bottom=p k=16\nbn name=bb bottom=b eltwise=a\n\
             gap name=g bottom=bb\nfc name=f bottom=g k=2\nsoftmaxloss name=l bottom=f\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("eltwise"), "{e}");
    }
}
