//! Synthetic labeled image generator — the ImageNet/LMDB substitution
//! (DESIGN.md §2).
//!
//! Class-separable data: each class has a fixed random prototype
//! pattern; a sample is its class prototype plus noise. Kernel
//! benchmarks in the paper already auto-generate inputs (artifact
//! §V-B5); end-to-end training only needs correctly-shaped tensors and
//! a learnable signal, which this provides.

use tensor::rng::SplitMix64;
use tensor::BlockedActs;

/// Deterministic synthetic dataset.
pub struct SyntheticData {
    classes: usize,
    c: usize,
    h: usize,
    w: usize,
    prototypes: Vec<Vec<f32>>,
    rng: SplitMix64,
}

impl SyntheticData {
    /// New generator for `classes` classes of `c×h×w` images.
    pub fn new(classes: usize, c: usize, h: usize, w: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let prototypes = (0..classes)
            .map(|_| {
                let mut p = vec![0.0f32; c * h * w];
                rng.fill_f32(&mut p);
                p
            })
            .collect();
        Self { classes, c, h, w, prototypes, rng }
    }

    /// Fill a blocked batch tensor and return the labels.
    pub fn next_batch(&mut self, batch: &mut BlockedActs) -> Vec<usize> {
        assert_eq!((batch.c, batch.h, batch.w), (self.c, self.h, self.w));
        let mut labels = Vec::with_capacity(batch.n);
        for n in 0..batch.n {
            let label = (self.rng.next_u64() as usize) % self.classes;
            labels.push(label);
            let proto = &self.prototypes[label];
            for c in 0..self.c {
                for h in 0..self.h {
                    for w in 0..self.w {
                        let v = proto[(c * self.h + h) * self.w + w] + 0.1 * self.rng.next_f32();
                        batch.set(n, c, h, w, v);
                    }
                }
            }
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_labeled_and_deterministic() {
        let mut a = SyntheticData::new(4, 16, 8, 8, 9);
        let mut b = SyntheticData::new(4, 16, 8, 8, 9);
        let mut ta = BlockedActs::zeros(6, 16, 8, 8, 0);
        let mut tb = BlockedActs::zeros(6, 16, 8, 8, 0);
        let la = a.next_batch(&mut ta);
        let lb = b.next_batch(&mut tb);
        assert_eq!(la, lb);
        assert_eq!(ta.as_slice(), tb.as_slice());
        assert!(la.iter().all(|&l| l < 4));
    }

    #[test]
    fn same_class_samples_are_similar() {
        let mut d = SyntheticData::new(2, 16, 4, 4, 5);
        let mut t = BlockedActs::zeros(32, 16, 4, 4, 0);
        let labels = d.next_batch(&mut t);
        // find two samples of the same class and compare
        let mut by_class: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for (i, &l) in labels.iter().enumerate() {
            by_class.entry(l).or_default().push(i);
        }
        let group = by_class.values().find(|v| v.len() >= 2).unwrap();
        let (i, j) = (group[0], group[1]);
        let mut dist = 0.0f64;
        for c in 0..16 {
            for h in 0..4 {
                for w in 0..4 {
                    dist += ((t.get(i, c, h, w) - t.get(j, c, h, w)) as f64).powi(2);
                }
            }
        }
        // noise std 0.1/sqrt(12)*2 per element over 256 elements ≈ small
        assert!(dist < 3.0, "same-class distance too large: {dist}");
    }
}
