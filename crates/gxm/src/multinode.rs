//! Multi-node data-parallel training (Fig. 9) — the MLSL/Omnipath
//! substitution (DESIGN.md §2).
//!
//! Two components:
//!
//! * [`simulate_strong_scaling`] — the timing model: given a measured
//!   single-node step time, the gradient payload, and the fabric
//!   parameters, compute images/second for 1..=N nodes with the
//!   allreduce overlapped behind backward compute (MLSL's key
//!   property; the paper reports ≈90% parallel efficiency at 16
//!   nodes). Cores set aside to drive the fabric (8/72 on KNM, 4/56 on
//!   SKX) scale the compute time up by the core ratio.
//! * [`allreduce_gradients`] — the semantic check: data-parallel
//!   training is *equivalent* to large-batch training when gradients
//!   are averaged; this helper averages per-shard gradients so tests
//!   can verify the equivalence on real networks.

use machine::Fabric;

/// One point of the strong-scaling curve.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Node count.
    pub nodes: usize,
    /// Aggregate images/second.
    pub imgs_per_s: f64,
    /// Parallel efficiency vs. 1 node.
    pub efficiency: f64,
}

/// Strong-scaling model: `t_step_1node` is the measured step time of
/// one node on its *full* core count for `minibatch` images;
/// `comm_core_frac` is the fraction of cores surrendered to the fabric.
pub fn simulate_strong_scaling(
    fabric: &Fabric,
    t_step_1node: f64,
    minibatch: usize,
    grad_bytes: f64,
    comm_core_frac: f64,
    max_nodes: usize,
) -> Vec<ScalePoint> {
    // a single node uses every core; multi-node runs surrender
    // comm_core_frac of the cores to drive the fabric (8/72 on KNM,
    // 4/56 on SKX in the paper), which is the main efficiency cost —
    // the allreduce itself hides behind backward compute
    let t_step_comm = t_step_1node / (1.0 - comm_core_frac);
    let single_full = minibatch as f64 / t_step_1node;
    let mut out = Vec::new();
    let mut nodes = 1usize;
    while nodes <= max_nodes {
        let imgs = if nodes == 1 {
            single_full
        } else {
            fabric.strong_scale_imgs_per_s(nodes, t_step_comm, minibatch, grad_bytes)
        };
        out.push(ScalePoint {
            nodes,
            imgs_per_s: imgs,
            efficiency: imgs / (single_full * nodes as f64),
        });
        nodes *= 2;
    }
    out
}

/// Average `shards` gradient vectors element-wise into each shard
/// (an in-process allreduce).
pub fn allreduce_gradients(shards: &mut [Vec<f32>]) {
    if shards.len() <= 1 {
        return;
    }
    let len = shards[0].len();
    assert!(shards.iter().all(|s| s.len() == len));
    let inv = 1.0 / shards.len() as f32;
    for i in 0..len {
        let sum: f32 = shards.iter().map(|s| s[i]).sum();
        for s in shards.iter_mut() {
            s[i] = sum * inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_efficiency_matches_paper_band() {
        // ResNet-50-like: 102 MB gradients, 0.2 s steps, 4/56 cores
        let fabric = Fabric::omnipath(4);
        let pts = simulate_strong_scaling(&fabric, 0.2, 28, 102e6, 4.0 / 56.0, 16);
        assert_eq!(pts.len(), 5); // 1,2,4,8,16
        let last = pts.last().unwrap();
        assert_eq!(last.nodes, 16);
        assert!(last.efficiency > 0.85 && last.efficiency < 0.97, "efficiency {}", last.efficiency);
        // throughput grows monotonically
        for w in pts.windows(2) {
            assert!(w[1].imgs_per_s > w[0].imgs_per_s);
        }
    }

    #[test]
    fn tiny_steps_expose_the_allreduce() {
        // if compute is nearly free, communication dominates and
        // efficiency must drop well below 1
        let fabric = Fabric::omnipath(4);
        let pts = simulate_strong_scaling(&fabric, 0.001, 28, 500e6, 0.1, 16);
        let last = pts.last().unwrap();
        assert!(last.efficiency < 0.5, "efficiency {}", last.efficiency);
    }

    #[test]
    fn allreduce_averages() {
        let mut shards = vec![vec![1.0f32, 2.0], vec![3.0, 6.0]];
        allreduce_gradients(&mut shards);
        assert_eq!(shards[0], vec![2.0, 4.0]);
        assert_eq!(shards[1], vec![2.0, 4.0]);
    }
}
