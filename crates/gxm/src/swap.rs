//! Hot-swappable published weights: the cell behind zero-downtime
//! weight reload.
//!
//! A [`HotSwap`] is shared between one *publisher* (a control plane —
//! e.g. the `anatomy-serve` reload endpoint) and any number of
//! *replica* readers that each own a private [`crate::Network`]. The
//! publisher atomically swaps in a new `Arc<StateDict>`; each replica
//! polls [`HotSwap::generation`] (one `Acquire` load, no lock) at its
//! batch boundaries and, on a change, clones the published `Arc` and
//! applies it via [`crate::Network::load_state_dict`] — which refolds
//! the fused-BN weights — before the next batch. In-flight batches
//! always finish on the weights they started with, so a swap never
//! tears a batch and serving never pauses.
//!
//! Memory-ordering argument (DESIGN.md §9.3): `publish` writes the
//! `Arc` under the slot mutex *before* bumping the generation with a
//! `Release` store; a reader that observes the new generation with an
//! `Acquire` load therefore observes the new `Arc` when it locks the
//! slot (the mutex itself orders the slot contents; the atomic only
//! serves as a cheap "anything new?" check that replicas can issue
//! per batch without contending on the lock).

use crate::StateDict;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An atomically swappable published-weights cell (see the [module
/// docs](self)).
///
/// ```
/// use gxm::{HotSwap, StateDict};
/// use std::sync::Arc;
///
/// let swap = HotSwap::new();
/// assert_eq!(swap.generation(), 0); // nothing published yet
///
/// let mut sd = StateDict::new();
/// sd.insert("w", vec![2], vec![1.0, 2.0]).unwrap();
/// let gen = swap.publish(Arc::new(sd));
/// assert_eq!(gen, 1);
///
/// let (published, gen) = swap.snapshot();
/// assert_eq!(gen, 1);
/// assert_eq!(published.unwrap().get("w").unwrap().data, vec![1.0, 2.0]);
/// ```
#[derive(Debug, Default)]
pub struct HotSwap {
    slot: Mutex<Option<Arc<StateDict>>>,
    generation: AtomicU64,
}

impl HotSwap {
    /// An empty cell at generation 0 (no weights published yet —
    /// readers keep whatever they were built with).
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish `weights` as the new current version and return the new
    /// generation (monotonically increasing from 1).
    ///
    /// The `Arc` swap happens under the slot lock; the generation bump
    /// is a `Release` store *after* the swap, so any reader that sees
    /// the new generation sees the new weights.
    pub fn publish(&self, weights: Arc<StateDict>) -> u64 {
        let mut slot = self.slot.lock().unwrap();
        *slot = Some(weights);
        // still under the lock: a concurrent second publisher cannot
        // interleave its store between our slot write and our bump
        self.generation.fetch_add(1, Ordering::Release) + 1
    }

    /// The generation of the currently published weights (0 = none
    /// yet). One `Acquire` load — cheap enough to poll per batch.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Clone out the current weights and their generation in one
    /// locked read (`None` until the first [`Self::publish`]).
    pub fn snapshot(&self) -> (Option<Arc<StateDict>>, u64) {
        let slot = self.slot.lock().unwrap();
        // read the generation inside the lock so the pair is coherent
        (slot.clone(), self.generation.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict(v: f32) -> Arc<StateDict> {
        let mut sd = StateDict::new();
        sd.insert("w", vec![1], vec![v]).unwrap();
        Arc::new(sd)
    }

    #[test]
    fn generations_are_monotonic_and_paired_with_contents() {
        let swap = HotSwap::new();
        assert_eq!(swap.generation(), 0);
        assert!(swap.snapshot().0.is_none());
        assert_eq!(swap.publish(dict(1.0)), 1);
        assert_eq!(swap.publish(dict(2.0)), 2);
        let (sd, gen) = swap.snapshot();
        assert_eq!(gen, 2);
        assert_eq!(sd.unwrap().get("w").unwrap().data, vec![2.0]);
    }

    #[test]
    fn concurrent_publishers_never_lose_a_generation() {
        let swap = Arc::new(HotSwap::new());
        let publishers = 8;
        let per = 25;
        std::thread::scope(|s| {
            for t in 0..publishers {
                let swap = Arc::clone(&swap);
                s.spawn(move || {
                    for i in 0..per {
                        let gen = swap.publish(dict((t * per + i) as f32));
                        assert!(gen >= 1);
                    }
                });
            }
        });
        assert_eq!(swap.generation(), (publishers * per) as u64);
    }
}
