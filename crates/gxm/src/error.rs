//! The crate-wide error type of the typed model API.
//!
//! Every public construction path — topology text parsing,
//! [`crate::ModelSpec`] validation, [`crate::Network`] building, state
//! dict I/O and the `anatomy` serving facade — reports failures
//! through this enum instead of `Result<_, String>` or panics, so
//! callers can match on the failure class and tests can assert on
//! line/node context.

use std::fmt;

/// Errors of the model-description, build and serving surface.
#[derive(Debug)]
pub enum Error {
    /// Topology text failed to tokenize/parse.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The node graph is structurally invalid (duplicate names,
    /// dangling `bottom` references, missing input/loss head, …).
    Graph {
        /// Name of the offending node.
        node: String,
        /// 1-based source line when the graph came from text.
        line: Option<usize>,
        /// What went wrong.
        message: String,
    },
    /// Shape inference failed or an unsupported operator combination
    /// was requested at a node.
    Shape {
        /// Name of the offending node.
        node: String,
        /// What went wrong.
        message: String,
    },
    /// Caller-supplied runtime data (batches, sample counts, labels)
    /// has the wrong size or shape.
    BadInput(String),
    /// The serving pipeline failed (replica death, shutdown races).
    Serve(String),
    /// A serving queue was full and the request was load-shed by
    /// admission control — retry later, ideally with backoff.
    Busy {
        /// Samples queued when the request was shed.
        queued: usize,
        /// The configured admission cap (queued samples).
        capacity: usize,
    },
    /// A state-dict blob is malformed or does not match the network.
    StateDict(String),
    /// A bounded wait expired before the operation completed (a
    /// request-handle `wait_deadline`/`wait_timeout`, or a network
    /// client's read deadline). The operation was cancelled on the
    /// waiter's side; a late result is dropped, not delivered.
    Timeout {
        /// How long the caller waited before giving up.
        waited: std::time::Duration,
    },
    /// An underlying I/O failure (state-dict save/load).
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { line, message } => write!(f, "line {line}: {message}"),
            Error::Graph { node, line: Some(line), message } => {
                write!(f, "line {line}: node '{node}': {message}")
            }
            Error::Graph { node, line: None, message } => write!(f, "node '{node}': {message}"),
            Error::Shape { node, message } => write!(f, "node '{node}': {message}"),
            Error::BadInput(message) => write!(f, "bad input: {message}"),
            Error::Serve(message) => write!(f, "serving error: {message}"),
            Error::Busy { queued, capacity } => {
                write!(f, "busy: {queued} samples queued of a {capacity}-sample admission cap")
            }
            Error::StateDict(message) => write!(f, "state dict: {message}"),
            Error::Timeout { waited } => {
                write!(f, "timed out after {:.3}s", waited.as_secs_f64())
            }
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = Error::Parse { line: 3, message: "bad k='x'".into() };
        assert!(e.to_string().contains("line 3"));
        let e = Error::Graph { node: "c1".into(), line: Some(7), message: "duplicate".into() };
        let s = e.to_string();
        assert!(s.contains("line 7") && s.contains("c1") && s.contains("duplicate"));
        let e = Error::Shape { node: "p1".into(), message: "window larger than input".into() };
        assert!(e.to_string().contains("p1"));
    }

    #[test]
    fn io_source_is_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
