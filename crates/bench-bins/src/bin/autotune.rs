//! Autotuner benchmark: heuristic vs. tuned blocking on the ResNet-50
//! Table I and Inception-v3 layer populations (DESIGN.md §10).
//!
//! For every distinct shape the bin builds two forward plans through
//! one [`anatomy::conv::PlanCache`] — the Section II-B heuristic
//! blocking and the autotuned one — times both, and reports:
//!
//! * per-layer predicted vs. measured GFLOPS of the tuned plan (how
//!   well the traffic-model ranking anticipates the host), with the
//!   median relative model error;
//! * per-layer and aggregate heuristic→tuned speedup (a tuned plan
//!   losing to the heuristic beyond timing noise is the regression
//!   this bench exists to catch — apparent losses are re-measured
//!   best-of-two before they are reported);
//! * the cache's tuning counters (searches, micro-bench runs, tune
//!   wall-clock), demonstrating the tune-once-per-process contract.
//!
//! Output: one stdout row per layer plus `BENCH_autotune.json`.
//! `--tune model|measured` picks the level (default `measured`),
//! `--limit N` caps the layer count (0 = all).

use anatomy::conv::fuse::FuseCtx;
use anatomy::conv::{LayerOptions, PlanCache, TuneLevel};
use bench_bins::{arg_str, arg_usize, calibrate_host, gflops, time_it, HarnessConfig};
use parallel::ThreadPool;
use std::collections::HashSet;
use std::sync::Arc;
use tensor::{rng::SplitMix64, ConvShape};

/// One layer's complete comparison.
struct Row {
    label: String,
    shape: ConvShape,
    heuristic_gf: f64,
    tuned_gf: f64,
    predicted_gf: f64,
    tuned_blocking: String,
}

fn measure(
    layer: &anatomy::conv::ConvLayer,
    pool: &ThreadPool,
    cfg: &HarnessConfig,
    seed: u64,
) -> f64 {
    let mut input = layer.new_input();
    let mut weights = layer.new_filter();
    let mut output = layer.new_output();
    let mut rng = SplitMix64::new(seed);
    rng.fill_f32(input.as_mut_slice());
    rng.fill_f32(weights.as_mut_slice());
    let ctx = FuseCtx::default();
    let secs =
        time_it(|| layer.forward(pool, &input, &weights, &mut output, &ctx), cfg.warmup, cfg.iters);
    gflops(layer.shape(), secs)
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let tune = match arg_str("--tune") {
        Some(v) => TuneLevel::parse(&v).unwrap_or_else(|e| {
            eprintln!("autotune: --tune: {e}");
            std::process::exit(2);
        }),
        None => TuneLevel::Measured,
    };
    let limit = arg_usize("--limit", 0);

    let pool = Arc::new(ThreadPool::new(cfg.threads));
    let host = calibrate_host(&pool);

    // shape population: ResNet-50 Table I + the Inception-v3 layer
    // sweep, deduplicated (the two topologies share some geometries)
    let mut shapes: Vec<(String, ConvShape)> = Vec::new();
    let mut seen = HashSet::new();
    for (id, s) in topologies::resnet50_table1(cfg.minibatch) {
        if seen.insert(s) {
            shapes.push((format!("resnet50:{id}"), s));
        }
    }
    for (id, s) in topologies::inception_v3_layers(cfg.minibatch) {
        if seen.insert(s) {
            shapes.push((format!("inception:{id}"), s));
        }
    }
    if limit > 0 {
        let dropped = shapes.len().saturating_sub(limit);
        shapes.truncate(limit);
        if dropped > 0 {
            eprintln!("# --limit {limit}: skipping {dropped} layers");
        }
    }
    eprintln!(
        "# autotune: {} distinct layers, level {}, minibatch {}, {} threads",
        shapes.len(),
        tune.name(),
        cfg.minibatch,
        cfg.threads
    );

    // both variants plan through one cache: the tuned builds share its
    // tune store, so every (shape, machine, level) searches exactly once
    let cache = PlanCache::new();
    let base = LayerOptions::new(cfg.threads).with_machine(host.clone());
    let mut rows: Vec<Row> = Vec::new();
    for (i, (label, shape)) in shapes.iter().enumerate() {
        let heuristic = cache.get_or_build(*shape, base.clone());
        let tuned =
            cache.get_or_build(*shape, base.clone().with_tune(tune).with_pool(Arc::clone(&pool)));
        let seed = 0xA07u64 + i as u64;
        let mut heuristic_gf = measure(&heuristic, &pool, &cfg, seed);
        let mut tuned_gf = if tuned.blocking() == heuristic.blocking() {
            // the tuner kept the heuristic blocking: the two plans are
            // functionally identical, so timing them separately would
            // only report measurement noise as a phantom speedup/loss
            heuristic_gf
        } else {
            measure(&tuned, &pool, &cfg, seed)
        };
        // apparent loss: re-measure both sides in alternating rounds
        // and keep each side's best, so drift and one-off noise cannot
        // report a phantom regression
        for _ in 0..3 {
            if tuned_gf >= 0.98 * heuristic_gf {
                break;
            }
            heuristic_gf = heuristic_gf.max(measure(&heuristic, &pool, &cfg, seed));
            tuned_gf = tuned_gf.max(measure(&tuned, &pool, &cfg, seed));
        }
        let out = tuned.tune_outcome();
        let b = tuned.blocking();
        println!(
            "autotune\t{label}\t{shape}\theuristic={heuristic_gf:7.1}\ttuned={tuned_gf:7.1}\t\
             speedup={:.3}\tpredicted={:7.1}\tlevel={}",
            tuned_gf / heuristic_gf,
            out.predicted_gflops,
            out.level.name()
        );
        rows.push(Row {
            label: label.clone(),
            shape: *shape,
            heuristic_gf,
            tuned_gf,
            predicted_gf: out.predicted_gflops,
            tuned_blocking: format!("rbp{}xrbq{}xcb{}", b.rbp, b.rbq, b.cb_inner),
        });
    }

    let stats = cache.stats();
    assert_eq!(
        stats.tune_runs,
        rows.len(),
        "tune-once contract: one search per distinct (shape, machine, level)"
    );
    let mut errors: Vec<f64> =
        rows.iter().map(|r| (r.predicted_gf - r.tuned_gf).abs() / r.tuned_gf).collect();
    errors.sort_by(f64::total_cmp);
    let median_error = if errors.is_empty() { 0.0 } else { errors[errors.len() / 2] };
    let speedups: Vec<f64> = rows.iter().map(|r| r.tuned_gf / r.heuristic_gf).collect();
    let geomean =
        (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len().max(1) as f64).exp();
    let min_speedup = speedups.iter().copied().fold(f64::INFINITY, f64::min);

    println!(
        "autotune\tsummary\tlayers={}\tgeomean_speedup={geomean:.3}\tmin_speedup={min_speedup:.3}\t\
         median_model_error={median_error:.3}\ttune_runs={}\tmicro_runs={}\ttune_ms={:.0}",
        rows.len(),
        stats.tune_runs,
        stats.tune_micro_runs,
        stats.tune_time_ms
    );

    let mut layers_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        layers_json.push_str(&format!(
            "    {{\"layer\": \"{}\", \"shape\": \"{}\", \"predicted_gflops\": {:.2}, \
             \"measured_gflops\": {:.2}, \"model_error\": {:.4}, \"heuristic_gflops\": {:.2}, \
             \"speedup\": {:.4}, \"blocking\": \"{}\"}}{sep}\n",
            r.label,
            r.shape,
            r.predicted_gf,
            r.tuned_gf,
            (r.predicted_gf - r.tuned_gf).abs() / r.tuned_gf,
            r.heuristic_gf,
            r.tuned_gf / r.heuristic_gf,
            r.tuned_blocking,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"autotune\",\n  \"tune_level\": \"{}\",\n  \"minibatch\": {},\n  \
         \"threads\": {},\n  \"iters\": {},\n  \"layers\": {},\n  \
         \"predicted_vs_measured\": [\n{layers_json}  ],\n  \
         \"median_model_error\": {median_error:.4},\n  \
         \"tuned_speedup\": {geomean:.4},\n  \"min_speedup\": {min_speedup:.4},\n  \
         \"tune_runs\": {},\n  \"tune_micro_bench_runs\": {},\n  \"tune_time_ms\": {:.1}\n}}\n",
        tune.name(),
        cfg.minibatch,
        cfg.threads,
        cfg.iters,
        rows.len(),
        stats.tune_runs,
        stats.tune_micro_runs,
        stats.tune_time_ms,
    );
    std::fs::write("BENCH_autotune.json", json).expect("write BENCH_autotune.json");
    eprintln!("# wrote BENCH_autotune.json");
}
