//! Figure 7: ResNet-50 (a) backward and (b) weight-update on KNM.
//!
//! KNM-model series (Section III-B: upd drops to 20–55% because the
//! per-thread dW copies reduce through MCDRAM — no shared LLC — plus
//! the upfront dO transpose for 4FMA), alongside host measurements.

use bench_bins::{calibrate_host, gflops, time_it, HarnessConfig};
use conv::{ConvLayer, LayerOptions};
use machine::{predicted_efficiency, MachineModel, Pass};
use parallel::ThreadPool;
use tensor::{BlockedActs, BlockedFilter};
use topologies::resnet50_table1;

fn main() {
    let cfg = HarnessConfig::from_args();
    let pool = ThreadPool::new(cfg.threads);
    let host = calibrate_host(&pool);
    let knm = MachineModel::knm();
    println!("# Fig. 7: ResNet-50 bwd (a) / upd (b) on KNM (model) + host measurement");
    println!("layer\tknm_bwd%\tknm_upd%\thost_bwd_GF\thost_upd_GF");
    for (id, shape) in resnet50_table1(cfg.minibatch) {
        let knm_shape = shape.with_minibatch(70);
        let layer = ConvLayer::new(shape, LayerOptions::new(cfg.threads));
        let x = BlockedActs::random(shape.n, shape.c, shape.h, shape.w, shape.pad, 1);
        let w = BlockedFilter::random(shape.k, shape.c, shape.r, shape.s, 2);
        let dout = BlockedActs::random(shape.n, shape.k, shape.p(), shape.q(), layer.dout_pad(), 3);
        let mut dx = layer.new_input();
        let mut dw = layer.new_filter();
        let t_bwd = time_it(|| layer.backward(&pool, &dout, &w, &mut dx), cfg.warmup, cfg.iters);
        let t_upd = time_it(|| layer.update(&pool, &x, &dout, &mut dw), cfg.warmup, cfg.iters);
        let _ = host;
        println!(
            "{id}\t{:5.1}\t{:5.1}\t{:8.1}\t{:8.1}",
            100.0 * predicted_efficiency(&knm, &knm_shape, Pass::Backward),
            100.0 * predicted_efficiency(&knm, &knm_shape, Pass::Update),
            gflops(&shape, t_bwd),
            gflops(&shape, t_upd),
        );
    }
}
