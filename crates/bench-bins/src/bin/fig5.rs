//! Figure 5: ResNet-50 (a) backward and (b) weight-update propagation.
//!
//! Measured host GFLOPS for the optimized engine per layer, plus the
//! SKX-model efficiency series (the paper's testbed shape): backward ≈
//! forward except stride-2 layers; update 10–15 points lower.

use bench_bins::{calibrate_host, gflops, time_it, HarnessConfig};
use conv::{ConvLayer, LayerOptions};
use machine::{predicted_efficiency, MachineModel, Pass};
use parallel::ThreadPool;
use tensor::{BlockedActs, BlockedFilter};
use topologies::resnet50_table1;

fn main() {
    let cfg = HarnessConfig::from_args();
    let pool = ThreadPool::new(cfg.threads);
    let host = calibrate_host(&pool);
    let skx = MachineModel::skx();
    println!("# Fig. 5: ResNet-50 bwd (a) and upd (b) on the host + SKX model");
    println!("layer\tbwd_GFLOPS\tbwd_eff%\tbwd_skx%\tupd_GFLOPS\tupd_eff%\tupd_skx%\tcopies");
    for (id, shape) in resnet50_table1(cfg.minibatch) {
        let layer = ConvLayer::new(shape, LayerOptions::new(cfg.threads));
        let x = BlockedActs::random(shape.n, shape.c, shape.h, shape.w, shape.pad, 1);
        let w = BlockedFilter::random(shape.k, shape.c, shape.r, shape.s, 2);
        let dout = BlockedActs::random(shape.n, shape.k, shape.p(), shape.q(), layer.dout_pad(), 3);
        let mut dx = layer.new_input();
        let mut dw = layer.new_filter();

        let t_bwd = time_it(|| layer.backward(&pool, &dout, &w, &mut dx), cfg.warmup, cfg.iters);
        let t_upd = time_it(|| layer.update(&pool, &x, &dout, &mut dw), cfg.warmup, cfg.iters);
        let (g_bwd, g_upd) = (gflops(&shape, t_bwd), gflops(&shape, t_upd));
        println!(
            "{id}\t{:8.1}\t{:5.1}\t{:5.1}\t{:8.1}\t{:5.1}\t{:5.1}\t{}",
            g_bwd,
            100.0 * g_bwd / host.peak_gflops(),
            100.0 * predicted_efficiency(&skx, &shape, Pass::Backward),
            g_upd,
            100.0 * g_upd / host.peak_gflops(),
            100.0 * predicted_efficiency(&skx, &shape, Pass::Update),
            layer.upd_copies(),
        );
    }
}
