//! Regenerate Table I: the ResNet-50 layer specifications, plus each
//! layer's derived blocking and strategy decisions from our engines.

use conv::{ConvLayer, LayerOptions};
use topologies::resnet50_table1;

fn main() {
    let cfg = bench_bins::HarnessConfig::from_args();
    println!("# Table I: ResNet-50 layer specifications (minibatch {})", cfg.minibatch);
    println!("id\tC\tK\tH=W\tR=S\tstr\tP=Q\tGFLOP\trb(PxQ)\tcb_in\tbwd\tupd_copies");
    for (id, shape) in resnet50_table1(cfg.minibatch) {
        let layer = ConvLayer::new(shape, LayerOptions::new(cfg.threads));
        let b = layer.blocking();
        println!(
            "{id}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.2}\t{}x{}\t{}\t{:?}\t{}",
            shape.c,
            shape.k,
            shape.h,
            shape.r,
            shape.stride,
            shape.p(),
            shape.flops() as f64 / 1e9,
            b.rbp,
            b.rbq,
            b.cb_inner,
            layer.bwd_kind(),
            layer.upd_copies(),
        );
    }
}
