//! Figure 6: ResNet-50 forward propagation on Knights Mill.
//!
//! We do not own a KNM; this binary reports the KNM-model series
//! (paper parameters: 72 cores, 192 GFLOPS/core, 54.4/27 GB/s L2) with
//! its roofline diagnosis per layer — the 1×1 layers land in the
//! L2-bandwidth-bound regime at ≈55% while 3×3 layers stay compute
//! bound, exactly Section III-B's analysis — next to the measured host
//! numbers for the same shapes (minibatch 70 on KNM per Table I).

use bench_bins::{calibrate_host, gflops, time_it, HarnessConfig};
use conv::fuse::FuseCtx;
use conv::{ConvLayer, LayerOptions};
use machine::roofline::ridge_oi_read;
use machine::traffic::forward_traffic;
use machine::{predicted_efficiency, MachineModel, Pass};
use parallel::ThreadPool;
use tensor::{BlockedActs, BlockedFilter};
use topologies::resnet50_table1;

fn main() {
    let cfg = HarnessConfig::from_args();
    let pool = ThreadPool::new(cfg.threads);
    let host = calibrate_host(&pool);
    let knm = MachineModel::knm();
    println!(
        "# Fig. 6: ResNet-50 fwd on KNM (model, ridge OI {:.2} flops/B) + host measurement",
        ridge_oi_read(&knm)
    );
    println!("layer\tknm_model_GFLOPS\tknm_eff%\toi_read\tregime\thost_GFLOPS\thost_eff%");
    for (id, shape) in resnet50_table1(cfg.minibatch) {
        let knm_shape = shape.with_minibatch(70);
        let eff = predicted_efficiency(&knm, &knm_shape, Pass::Forward);
        let t = forward_traffic(&knm, &knm_shape);
        let regime = if t.oi_read() < ridge_oi_read(&knm) { "L2-bw-bound" } else { "compute" };

        let layer = ConvLayer::new(shape, LayerOptions::new(cfg.threads));
        let x = BlockedActs::random(shape.n, shape.c, shape.h, shape.w, shape.pad, 1);
        let w = BlockedFilter::random(shape.k, shape.c, shape.r, shape.s, 2);
        let mut y = layer.new_output();
        let tm = time_it(
            || layer.forward(&pool, &x, &w, &mut y, &FuseCtx::default()),
            cfg.warmup,
            cfg.iters,
        );
        let g = gflops(&shape, tm);
        println!(
            "{id}\t{:8.0}\t{:5.1}\t{:6.2}\t{}\t{:8.1}\t{:5.1}",
            eff * knm.peak_gflops(),
            100.0 * eff,
            t.oi_read(),
            regime,
            g,
            100.0 * g / host.peak_gflops(),
        );
    }
}
