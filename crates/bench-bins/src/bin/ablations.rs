//! Ablation study over the paper's individual optimizations, on two
//! representative ResNet-50 layers (a 3×3 and a deep 1×1):
//!
//! * JIT vs monomorphized-intrinsics vs scalar backends,
//! * software prefetch on/off (Section II-E),
//! * kernel streams replay vs runtime branchy loops (Section II-H),
//! * fused vs unfused post-ops (Section II-G),
//! * weight-update copy counts 1 / T/2 / T (Section II-J).

use baselines::{ConvBaseline, MkldnnConv};
use bench_bins::{gflops, time_it, HarnessConfig};
use conv::blocking;
use conv::fuse::{apply_unfused, FuseCtx, FusedOp};
use conv::upd::UpdPlan;
use conv::{Backend, ConvLayer, LayerOptions};
use machine::MachineModel;
use parallel::ThreadPool;
use tensor::{BlockedActs, BlockedFilter, ConvShape};

fn main() {
    let cfg = HarnessConfig::from_args();
    let pool = ThreadPool::new(cfg.threads);
    let layers = [
        ("3x3 (Table I #8)", ConvShape::new(cfg.minibatch, 128, 128, 28, 28, 3, 3, 1, 1)),
        ("1x1 deep (Table I #20)", ConvShape::new(cfg.minibatch, 2048, 512, 7, 7, 1, 1, 1, 0)),
    ];
    println!("# Ablations (minibatch {}, {} threads)", cfg.minibatch, cfg.threads);
    for (label, shape) in layers {
        println!("\n== {label}: {shape}");
        let x = BlockedActs::random(shape.n, shape.c, shape.h, shape.w, shape.pad, 1);
        let w = BlockedFilter::random(shape.k, shape.c, shape.r, shape.s, 2);

        // backends
        for backend in [Backend::Auto, Backend::Intrinsics, Backend::Scalar] {
            let iters = if backend == Backend::Scalar { 1 } else { cfg.iters };
            let layer = ConvLayer::new(shape, LayerOptions::new(cfg.threads).with_backend(backend));
            let mut y = layer.new_output();
            let t = time_it(|| layer.forward(&pool, &x, &w, &mut y, &FuseCtx::default()), 1, iters);
            println!("backend {:<12} {:8.1} GFLOPS", layer.backend_name(), gflops(&shape, t));
        }

        // prefetch on/off
        for pf in [true, false] {
            let layer = ConvLayer::new(shape, LayerOptions::new(cfg.threads).with_prefetch(pf));
            let mut y = layer.new_output();
            let t = time_it(
                || layer.forward(&pool, &x, &w, &mut y, &FuseCtx::default()),
                cfg.warmup,
                cfg.iters,
            );
            println!("prefetch={:<5} {:8.1} GFLOPS", pf, gflops(&shape, t));
        }

        // streams replay vs branchy loops
        {
            let layer = ConvLayer::new(shape, LayerOptions::new(cfg.threads));
            let branchy = MkldnnConv::new(shape, cfg.threads);
            let mut y = layer.new_output();
            let t_replay = time_it(
                || layer.forward(&pool, &x, &w, &mut y, &FuseCtx::default()),
                cfg.warmup,
                cfg.iters,
            );
            let t_branchy =
                time_it(|| branchy.forward(&pool, &x, &w, &mut y), cfg.warmup, cfg.iters);
            println!(
                "streams replay {:8.1} GFLOPS vs branchy loops {:8.1} GFLOPS",
                gflops(&shape, t_replay),
                gflops(&shape, t_branchy)
            );
        }

        // fusion
        {
            let bias: Vec<f32> = (0..shape.k).map(|i| i as f32 * 0.01).collect();
            let res = BlockedActs::random(shape.n, shape.k, shape.p(), shape.q(), 0, 9);
            let ctx = FuseCtx { bias: Some(&bias), eltwise: Some(&res) };
            let fused = ConvLayer::new(
                shape,
                LayerOptions::new(cfg.threads).with_fuse(FusedOp::EltwiseRelu),
            );
            let plain = ConvLayer::new(shape, LayerOptions::new(cfg.threads));
            let mut y = fused.new_output();
            let t_f = time_it(|| fused.forward(&pool, &x, &w, &mut y, &ctx), cfg.warmup, cfg.iters);
            let t_u = time_it(
                || {
                    plain.forward(&pool, &x, &w, &mut y, &FuseCtx::default());
                    apply_unfused(FusedOp::EltwiseRelu, &mut y, &ctx);
                },
                cfg.warmup,
                cfg.iters,
            );
            println!(
                "conv+eltwise+relu fused {:.3} ms vs unfused {:.3} ms ({:.2}x)",
                t_f * 1e3,
                t_u * 1e3,
                t_u / t_f
            );
        }

        // weight-update copy counts
        {
            let b = blocking::choose(&shape);
            let dout = BlockedActs::random(shape.n, shape.k, shape.p(), shape.q(), 0, 3);
            let mut dw = BlockedFilter::zeros(shape.k, shape.c, shape.r, shape.s);
            for g in [1usize, cfg.threads / 2, cfg.threads] {
                if g == 0 || !cfg.threads.is_multiple_of(g) {
                    continue;
                }
                let plan = UpdPlan::with_forced_copies(
                    shape,
                    b,
                    cfg.threads,
                    Backend::Auto,
                    true,
                    &MachineModel::skx(),
                    0,
                    shape.pad,
                    g,
                );
                let t = time_it(|| plan.run(&pool, &x, &dout, &mut dw), cfg.warmup, cfg.iters);
                println!("upd copies={:<3} {:8.1} GFLOPS", g, gflops(&shape, t));
            }
        }
    }
}
