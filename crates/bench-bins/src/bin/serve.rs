//! Serving benchmark: the micro-batching frontend over replicated
//! inference sessions (`anatomy::serve`, DESIGN.md §5).
//!
//! Sweeps replica layouts at a fixed total thread budget — `1 × T`
//! versus `2 × T/2` — under closed-loop single-image client traffic,
//! and reports images/second, batch occupancy and latency percentiles
//! per layout, plus a bit-exactness check of frontend-served outputs
//! against a direct `InferenceSession::run`. Results go to stdout and
//! `BENCH_serve.json`.
//!
//! `--hw N` sets the input resolution (default 32), `--threads` the
//! total thread budget (default 4), `--requests` the per-layout
//! request count, `--max-wait-ms` the deadline-flush window.

use anatomy::serve::{BatchingFrontend, ServeConfig};
use anatomy::InferenceSession;
use bench_bins::arg_usize as arg;
use conv::PlanCache;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

struct LayoutResult {
    replicas: usize,
    threads_per_replica: usize,
    images_per_second: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_occupancy: f64,
    batches: usize,
    deadline_flushes: usize,
}

/// Closed-loop load: `clients` threads each submit one image at a time
/// until `requests` single-image requests have been served.
fn drive(
    topology: &str,
    cache: &PlanCache,
    cfg: ServeConfig,
    clients: usize,
    requests: usize,
    warmup: usize,
) -> LayoutResult {
    let replicas = cfg.replicas;
    let threads_per_replica = cfg.threads_per_replica;
    let frontend =
        BatchingFrontend::with_cache(topology, cfg, cache.clone()).expect("topology parses");
    let sample = frontend.sample_elems();
    let mut rng = tensor::rng::SplitMix64::new(0x5e21e);
    let mut image = vec![0.0f32; sample];
    for _ in 0..warmup {
        rng.fill_f32(&mut image);
        frontend.infer(&image).expect("serving pipeline alive");
    }
    // warmup requests are serial lone samples (worst-case latency and
    // occupancy) — reset so the stats describe only measured traffic
    frontend.reset_stats();

    let remaining = AtomicUsize::new(requests);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for k in 0..clients {
            let frontend = &frontend;
            let remaining = &remaining;
            scope.spawn(move || {
                let mut rng = tensor::rng::SplitMix64::new(0xbeef + k as u64);
                let mut image = vec![0.0f32; sample];
                while remaining
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
                    .is_ok()
                {
                    rng.fill_f32(&mut image);
                    frontend.infer(&image).expect("serving pipeline alive");
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    let stats = frontend.shutdown();
    LayoutResult {
        replicas,
        threads_per_replica,
        images_per_second: requests as f64 / secs,
        p50_ms: stats.p50_latency.as_secs_f64() * 1e3,
        p99_ms: stats.p99_latency.as_secs_f64() * 1e3,
        mean_occupancy: stats.mean_occupancy,
        batches: stats.batches,
        deadline_flushes: stats.deadline_flushes,
    }
}

/// Frontend-vs-direct bit-exactness: one request carrying the whole
/// minibatch lands as one batch with identical composition, so even
/// batch-statistics operators (bn) must reproduce the direct run.
fn parity_check(topology: &str, minibatch: usize, threads: usize) -> bool {
    let mut direct = InferenceSession::new(topology, minibatch, threads).expect("parses");
    let frontend = BatchingFrontend::new(
        topology,
        ServeConfig::new(1, threads, minibatch).with_max_wait(Duration::from_millis(1)),
    )
    .expect("parses");
    let mut rng = tensor::rng::SplitMix64::new(0x9a21);
    let mut batch = vec![0.0f32; minibatch * frontend.sample_elems()];
    rng.fill_f32(&mut batch);
    let want = direct.run(&batch).expect("batch sized to the session");
    let got = frontend.infer(&batch).expect("serving pipeline alive");
    got.probs == want.probs && got.top1 == want.top1
}

fn main() {
    let hw = arg("--hw", 32);
    let minibatch = arg("--minibatch", 4);
    let total_threads = arg("--threads", 4).max(2);
    let clients = arg("--clients", 8);
    let requests = arg("--requests", 32);
    let warmup = arg("--warmup", 4);
    let max_wait_ms = arg("--max-wait-ms", 2);
    let classes = 100usize;

    let topology = topologies::resnet50_topology(hw, classes);
    eprintln!(
        "# serve: resnet50 @ {hw}x{hw}, minibatch {minibatch}, {total_threads} total threads, \
         {clients} clients, {requests} requests/layout, max_wait {max_wait_ms}ms"
    );

    eprintln!("# parity: frontend vs direct InferenceSession::run ...");
    let parity = parity_check(&topology, minibatch, 2);
    eprintln!("# parity bit-exact: {parity}");
    assert!(parity, "frontend-served outputs must be bit-identical to a direct run");

    // one plan cache across every layout: layouts with equal
    // threads-per-replica share plans, and the process-wide kernel
    // cache dedupes code buffers across the rest
    let cache = PlanCache::new();
    let max_wait = Duration::from_millis(max_wait_ms as u64);
    let layouts: Vec<(usize, usize)> = vec![
        (1, total_threads),     // one wide replica
        (2, total_threads / 2), // two half-width replicas
    ];
    let mut results = Vec::new();
    for (replicas, threads_per_replica) in layouts {
        eprintln!("# layout {replicas} × {threads_per_replica} ...");
        let cfg =
            ServeConfig::new(replicas, threads_per_replica, minibatch).with_max_wait(max_wait);
        let r = drive(&topology, &cache, cfg, clients, requests, warmup);
        println!(
            "serve\tresnet50\thw={hw}\treplicas={}\tthreads_per_replica={}\timgs_per_s={:8.1}\t\
             p50_ms={:7.2}\tp99_ms={:7.2}\toccupancy={:.2}\tdeadline_flushes={}",
            r.replicas,
            r.threads_per_replica,
            r.images_per_second,
            r.p50_ms,
            r.p99_ms,
            r.mean_occupancy,
            r.deadline_flushes,
        );
        results.push(r);
    }
    let scaling = results[1].images_per_second / results[0].images_per_second;
    println!("serve\tscaling_2x_vs_1x\t{scaling:.3}");

    let mut json = String::new();
    json.push_str(&format!(
        "{{\n  \"bench\": \"serve\",\n  \"topology\": \"resnet50\",\n  \"hw\": {hw},\n  \
         \"minibatch\": {minibatch},\n  \"total_threads\": {total_threads},\n  \
         \"clients\": {clients},\n  \"requests\": {requests},\n  \
         \"max_wait_ms\": {max_wait_ms},\n  \"parity_bitexact\": {parity},\n  \
         \"layouts\": [\n"
    ));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\n      \"replicas\": {},\n      \"threads_per_replica\": {},\n      \
             \"images_per_second\": {:.2},\n      \"p50_latency_ms\": {:.3},\n      \
             \"p99_latency_ms\": {:.3},\n      \"mean_occupancy\": {:.3},\n      \
             \"batches\": {},\n      \"deadline_flushes\": {}\n    }}{}\n",
            r.replicas,
            r.threads_per_replica,
            r.images_per_second,
            r.p50_ms,
            r.p99_ms,
            r.mean_occupancy,
            r.batches,
            r.deadline_flushes,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!("  ],\n  \"scaling_2_replicas_vs_1\": {scaling:.4}\n}}\n"));
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    eprintln!("# wrote BENCH_serve.json (2-replica vs 1-replica scaling: {scaling:.2}x)");
}
