//! verify-kernels: static-verification sweep over every JIT kernel the
//! plan layer can request for the paper's layer populations.
//!
//! For each distinct shape of ResNet-50 Table I plus the Inception-v3
//! layer sweep, and for *every* autotuner candidate blocking
//! (`conv::tune::candidates`), the bin enumerates the exact kernel
//! variants a dryrun would generate — main tiles, spatial remainders,
//! init/accumulate `cb` steps, prefetch on and off — assembles each
//! through all three emitters (f32 forward, f32 weight-update, int16
//! VNNI), and runs `kver::verify` on the raw bytes: decode, ABI
//! structure, register discipline, and symbolic memory bounds at every
//! loop iteration. No executable memory is mapped, so the sweep runs
//! identically on hosts without AVX-512.
//!
//! Output: one stdout row per layer, a `kernels-verified` summary row,
//! and `BENCH_verify_kernels.json`. Any violation is printed and the
//! process exits 1. `--limit N` caps the layer count (0 = all).

use bench_bins::arg_usize;
use conv::fwd::kernel_shape_variants;
use conv::tune;
use conv::upd::upd_shape_variants;
use jit::{assemble_fwd, assemble_quant, assemble_upd};
use kver::{verify, KernelSpec, Report};
use microkernel::{KernelShape, UpdShape};
use std::collections::HashSet;
use tensor::ConvShape;

/// Accumulated sweep counters.
#[derive(Default)]
struct Totals {
    kernels: usize,
    instructions: usize,
    steps: usize,
    code_bytes: usize,
    /// Verified kernels per class: f32 fwd, int16 quant, f32 upd.
    per_class: [usize; 3],
    violations: Vec<String>,
}

impl Totals {
    fn record(
        &mut self,
        class: usize,
        label: &str,
        what: &str,
        r: Result<Report, kver::Violation>,
    ) {
        match r {
            Ok(rep) => {
                self.kernels += 1;
                self.instructions += rep.instructions;
                self.steps += rep.steps;
                self.code_bytes += rep.code_bytes;
                self.per_class[class] += 1;
            }
            Err(v) => self.violations.push(format!("{label}: {what}: {v}")),
        }
    }
}

fn main() {
    let limit = arg_usize("--limit", 0);
    let minibatch = arg_usize("--minibatch", 4);

    // layer population: ResNet-50 Table I + Inception-v3, deduplicated
    let mut layers: Vec<(String, ConvShape)> = Vec::new();
    let mut seen = HashSet::new();
    for (id, s) in topologies::resnet50_table1(minibatch) {
        if seen.insert(s) {
            layers.push((format!("resnet50:{id}"), s));
        }
    }
    for (id, s) in topologies::inception_v3_layers(minibatch) {
        if seen.insert(s) {
            layers.push((format!("inception:{id}"), s));
        }
    }
    if limit > 0 {
        let dropped = layers.len().saturating_sub(limit);
        layers.truncate(limit);
        if dropped > 0 {
            eprintln!("# --limit {limit}: skipping {dropped} layers");
        }
    }
    eprintln!("# verify-kernels: {} distinct layers, all tune candidates", layers.len());

    let mut seen_fwd: HashSet<KernelShape> = HashSet::new();
    let mut seen_upd: HashSet<UpdShape> = HashSet::new();
    let mut totals = Totals::default();
    for (label, shape) in &layers {
        let before = totals.kernels;
        let candidates = tune::candidates(shape);
        for blocking in &candidates {
            for prefetch in [false, true] {
                for sh in kernel_shape_variants(shape, blocking, prefetch) {
                    if !seen_fwd.insert(sh) {
                        continue; // population overlap across layers/candidates
                    }
                    totals.record(
                        0,
                        label,
                        "fwd",
                        verify(&assemble_fwd(&sh), &KernelSpec::FwdF32(sh)),
                    );
                    totals.record(
                        1,
                        label,
                        "quant",
                        verify(&assemble_quant(&sh), &KernelSpec::QuantI16(sh)),
                    );
                }
                for sh in upd_shape_variants(shape, blocking, prefetch) {
                    if !seen_upd.insert(sh) {
                        continue;
                    }
                    totals.record(
                        2,
                        label,
                        "upd",
                        verify(&assemble_upd(&sh), &KernelSpec::UpdF32(sh)),
                    );
                }
            }
        }
        println!(
            "verify-kernels\t{label}\t{shape}\tcandidates={}\tkernels={}",
            candidates.len(),
            totals.kernels - before
        );
    }

    println!(
        "verify-kernels\tsummary\tlayers={}\tkernels-verified={}\tinstructions={}\tsteps={}\t\
         code_kb={}\tfwd={}\tquant={}\tupd={}\tviolations={}",
        layers.len(),
        totals.kernels,
        totals.instructions,
        totals.steps,
        totals.code_bytes / 1024,
        totals.per_class[0],
        totals.per_class[1],
        totals.per_class[2],
        totals.violations.len()
    );

    let json = format!(
        "{{\n  \"bench\": \"verify_kernels\",\n  \"layers\": {},\n  \
         \"kernels_verified\": {},\n  \"instructions_checked\": {},\n  \
         \"interpreted_steps\": {},\n  \"code_bytes\": {},\n  \
         \"fwd_kernels\": {},\n  \"quant_kernels\": {},\n  \"upd_kernels\": {},\n  \
         \"violations\": {}\n}}\n",
        layers.len(),
        totals.kernels,
        totals.instructions,
        totals.steps,
        totals.code_bytes,
        totals.per_class[0],
        totals.per_class[1],
        totals.per_class[2],
        totals.violations.len()
    );
    std::fs::write("BENCH_verify_kernels.json", json).expect("write BENCH_verify_kernels.json");
    eprintln!("# wrote BENCH_verify_kernels.json");

    if !totals.violations.is_empty() {
        for v in &totals.violations {
            eprintln!("VIOLATION {v}");
        }
        std::process::exit(1);
    }
}
