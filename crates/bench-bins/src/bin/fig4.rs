//! Figure 4: ResNet-50 forward propagation, per-layer GFLOPS for
//! {this work, mkldnn, im2col, libxsmm, blas, autovec} plus the
//! efficiency of this work.
//!
//! Measured on the host (real kernels), with the SKX-model predicted
//! efficiency series printed alongside for comparison with the paper's
//! absolute shape. `--full` uses minibatch = cores and more iterations.

use baselines::{all_baselines, random_problem};
use bench_bins::{calibrate_host, gflops, time_it, HarnessConfig};
use conv::fuse::FuseCtx;
use conv::{ConvLayer, LayerOptions};
use machine::{predicted_efficiency, MachineModel, Pass};
use parallel::ThreadPool;
use topologies::resnet50_table1;

fn main() {
    let cfg = HarnessConfig::from_args();
    let pool = ThreadPool::new(cfg.threads);
    let host = calibrate_host(&pool);
    let skx = MachineModel::skx();
    println!("# Fig. 4: ResNet-50 fwd — measured host GFLOPS per implementation");
    println!("layer\tthiswork\tmkldnn\tim2col\tlibxsmm\tblas\tautovec\teff_host%\teff_skx_model%");
    for (id, shape) in resnet50_table1(cfg.minibatch) {
        let (_x, _w, xb, wb, mut yb) = random_problem(&shape);
        // this work: the full engine (streams + prefetch)
        let layer = ConvLayer::new(shape, LayerOptions::new(cfg.threads));
        let t = time_it(
            || layer.forward(&pool, &xb, &wb, &mut yb, &FuseCtx::default()),
            cfg.warmup,
            cfg.iters,
        );
        let this_work = gflops(&shape, t);
        // baselines (autovec/blas get fewer iterations — they are slow)
        let mut results = Vec::new();
        for b in all_baselines(shape, cfg.threads) {
            let iters = if matches!(b.name(), "autovec" | "blas" | "im2col") {
                cfg.iters.min(2)
            } else {
                cfg.iters
            };
            let t = time_it(|| b.forward(&pool, &xb, &wb, &mut yb), 1, iters);
            results.push((b.name(), gflops(&shape, t)));
        }
        let get = |n: &str| results.iter().find(|(name, _)| *name == n).unwrap().1;
        println!(
            "{id}\t{:8.1}\t{:8.1}\t{:8.1}\t{:8.1}\t{:8.1}\t{:8.1}\t{:5.1}\t{:5.1}",
            this_work,
            get("mkldnn"),
            get("im2col"),
            get("libxsmm"),
            get("blas"),
            get("autovec"),
            100.0 * this_work / host.peak_gflops(),
            100.0 * predicted_efficiency(&skx, &shape, Pass::Forward),
        );
    }
}
