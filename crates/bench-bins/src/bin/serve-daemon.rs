//! `serve-daemon`: stand up the `anatomy-serve` TCP daemon from the
//! command line (DESIGN.md §9, operator guide in the README).
//!
//! Hosts one [`anatomy::daemon::Daemon`] with any number of named
//! models, each a small seeded CNN parametrized by input resolution
//! and class count — enough to exercise every wire path (inference,
//! stats, reload, load shed) without a training run. Weights can also
//! come from a `StateDict` file saved by a training job.
//!
//! Flags:
//!
//! * `--model NAME:HW:CLASSES` (repeatable) — host a model named
//!   `NAME` with `3×HW×HW` inputs and `CLASSES` output classes.
//!   Default when absent: `alpha:32:8` and `beta:24:5`.
//! * `--weights NAME=PATH` (repeatable) — serve the `StateDict` at
//!   `PATH` as `NAME`'s initial weights.
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:7433`;
//!   port `0` picks an ephemeral port).
//! * `--addr-file PATH` — write the bound address to `PATH` once
//!   listening (how scripts discover an ephemeral port).
//! * `--serve-for SECS` — exit after that many seconds (default `0`:
//!   serve until killed).
//! * `--replicas/--threads/--minibatch/--queue-cap/--max-wait-ms` —
//!   per-model serving shape (defaults `1`/`2`/`4`/derived/`2`).
//! * `--tune off|model|measured` — plan-time autotuning level of the
//!   hosted convolutions (default: the `ANATOMY_TUNE` env var, else
//!   `off`).
//! * `--precision f32|int8` — numeric execution mode of the hosted
//!   replicas (default: the `ANATOMY_PRECISION` env var, else `f32`).
//!   At `int8` every model calibrates on a small seeded sample batch
//!   so all its convolutions join the quantized path.
//! * `--tune-cache PATH` — persistent tuning cache: loaded before the
//!   models build (a restart replays tuned winners with zero
//!   micro-bench runs) and saved back once hosting finishes.
//!
//! Prints the final stats snapshot on orderly exit.

use anatomy::daemon::{Daemon, DaemonConfig, ModelConfig, ModelRegistry};
use anatomy::serve::ServeConfig;
use anatomy::{ConvOpts, GraphBuilder, ModelSpec, Precision, StateDict, TuneLevel};
use bench_bins::{arg_str, arg_usize};
use std::time::Duration;

/// The daemon's stock topology: two fused conv+ReLU stages around a
/// max-pool, then GAP → FC → softmax, on `3 × hw × hw` inputs.
fn stock_model(hw: usize, classes: usize, seed: u64) -> Result<ModelSpec, anatomy::Error> {
    GraphBuilder::new()
        .seed(seed)
        .input("data", 3, hw, hw)
        .conv("conv1", ConvOpts::k(16).rs(3).pad(1).bias().relu())
        .max_pool("pool1", 2, 2, 0)
        .conv("conv2", ConvOpts::k(16).rs(3).pad(1).bias().relu())
        .gap("gap")
        .fc("logits", classes)
        .softmax("loss")
        .build()
}

/// Deterministic pseudo-random calibration pixels in `[-0.5, 0.5)` —
/// representative of normalized inputs, reproducible across restarts.
fn calib_batch(elems: usize, seed: u64) -> Vec<f32> {
    let mut s = seed | 1;
    (0..elems)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        })
        .collect()
}

/// Collect every value of a repeatable `--key value` flag.
fn args_multi(key: &str) -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .enumerate()
        .filter(|(_, a)| a.as_str() == key)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

/// Parse one `NAME:HW:CLASSES` model spec triple.
fn parse_model(spec: &str) -> Result<(String, usize, usize), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [name, hw, classes] = parts.as_slice() else {
        return Err(format!("--model wants NAME:HW:CLASSES, got '{spec}'"));
    };
    let hw: usize = hw.parse().map_err(|_| format!("bad HW in --model '{spec}'"))?;
    let classes: usize = classes.parse().map_err(|_| format!("bad CLASSES in --model '{spec}'"))?;
    if hw < 4 || classes < 2 {
        return Err(format!("--model '{spec}': HW must be >= 4 and CLASSES >= 2"));
    }
    Ok((name.to_string(), hw, classes))
}

fn run() -> Result<(), String> {
    let addr = arg_str("--addr").unwrap_or_else(|| "127.0.0.1:7433".to_string());
    let addr_file = arg_str("--addr-file");
    let serve_for = arg_usize("--serve-for", 0);
    let replicas = arg_usize("--replicas", 1);
    let threads = arg_usize("--threads", 2);
    let minibatch = arg_usize("--minibatch", 4);
    let max_wait_ms = arg_usize("--max-wait-ms", 2);
    let queue_cap = arg_usize("--queue-cap", 0);
    let tune = match arg_str("--tune") {
        Some(v) => TuneLevel::parse(&v).map_err(|e| format!("--tune: {e}"))?,
        None => TuneLevel::from_env().unwrap_or_default(),
    };
    let precision = match arg_str("--precision") {
        Some(v) => Precision::parse(&v).map_err(|e| format!("--precision: {e}"))?,
        None => Precision::from_env().unwrap_or_default(),
    };
    let tune_cache = arg_str("--tune-cache");

    let mut specs = args_multi("--model");
    if specs.is_empty() {
        specs = vec!["alpha:32:8".to_string(), "beta:24:5".to_string()];
    }
    let mut weight_files: Vec<(String, String)> = Vec::new();
    for kv in args_multi("--weights") {
        let (name, path) =
            kv.split_once('=').ok_or_else(|| format!("--weights wants NAME=PATH, got '{kv}'"))?;
        weight_files.push((name.to_string(), path.to_string()));
    }

    let mut models = Vec::new();
    for (seed, spec) in specs.iter().enumerate() {
        let (name, hw, classes) = parse_model(spec)?;
        let model = stock_model(hw, classes, 0x5eed + seed as u64)
            .map_err(|e| format!("model '{name}': {e}"))?;
        let mut serve = ServeConfig::new(replicas, threads, minibatch)
            .with_max_wait(Duration::from_millis(max_wait_ms as u64))
            .with_tune(tune)
            .with_precision(precision);
        if precision == Precision::Int8 {
            // the stock models carry no batch norm, so the quantized
            // path needs measured activation ranges: calibrate every
            // replica on a reproducible seeded batch
            serve =
                serve.with_calibration(calib_batch(minibatch * 3 * hw * hw, 0xca11b + seed as u64));
        }
        if queue_cap > 0 {
            serve = serve.with_queue_cap(queue_cap);
        }
        let mut cfg =
            ModelConfig::new(&name, &model, serve).map_err(|e| format!("model '{name}': {e}"))?;
        if let Some((_, path)) = weight_files.iter().find(|(n, _)| *n == name) {
            let sd = StateDict::load(path).map_err(|e| format!("--weights {name}={path}: {e}"))?;
            cfg = cfg.with_weights(sd);
        }
        eprintln!("# hosting '{name}': 3x{hw}x{hw} -> {classes} classes ({})", precision.name());
        models.push(cfg);
    }

    // tuning cache first, models second: winners loaded from disk make
    // every tuned build below a pure replay (zero micro-bench runs)
    let mut registry = ModelRegistry::new();
    if let Some(path) = &tune_cache {
        if std::path::Path::new(path).exists() {
            let n = registry
                .cache()
                .load_tuning(path)
                .map_err(|e| format!("--tune-cache {path}: {e}"))?;
            eprintln!("# tuning cache: loaded {n} winners from {path}");
        }
    }
    for model in models {
        registry.host(model).map_err(|e| format!("host: {e}"))?;
    }
    if let Some(path) = &tune_cache {
        let n =
            registry.cache().save_tuning(path).map_err(|e| format!("--tune-cache {path}: {e}"))?;
        eprintln!("# tuning cache: saved {n} winners to {path}");
    }

    let daemon = Daemon::bind_registry(DaemonConfig::new(&addr), registry)
        .map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = daemon.local_addr();
    if let Some(path) = &addr_file {
        std::fs::write(path, bound.to_string()).map_err(|e| format!("--addr-file {path}: {e}"))?;
    }
    println!("anatomy-serve listening on {bound}");

    if serve_for == 0 {
        // serve until killed; the OS reclaims the threads on exit
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_secs(serve_for as u64));
    let stats = daemon.shutdown();
    println!("--- final stats ---\n{stats}");
    Ok(())
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("serve-daemon: {msg}");
        std::process::exit(2);
    }
}
