//! Figure 8: reduced-precision (int16) vs fp32 kernels for
//! (a) forward, (b) backward and (c) weight-update on ResNet-50
//! layers 2–20 (the paper's x-axis also skips the C=3 first conv).
//!
//! Measured: our real VNNI int16 engines vs the f32 engines on the
//! host (GOPS + speedup). Modeled: the KNM 4VNNIW speedup from
//! Section II-K's three limiters (averages ≈1.63×/1.58×/1.3×).

use bench_bins::{calibrate_host, gflops, time_it, HarnessConfig};
use conv::fuse::FuseCtx;
use conv::quant::{QuantBwdPlan, QuantFwdPlan, QuantOptions, QuantUpdPlan, DEFAULT_CHAIN_LIMIT};
use conv::{Backend, ConvLayer, LayerOptions};
use machine::{predicted_int16_speedup, MachineModel, Pass};
use parallel::ThreadPool;
use tensor::vnni::BlockedI32;
use tensor::{BlockedActs, BlockedFilter, VnniActs, VnniFilter, VLEN};
use topologies::resnet50_table1;

fn main() {
    let cfg = HarnessConfig::from_args();
    let pool = ThreadPool::new(cfg.threads);
    let _host = calibrate_host(&pool);
    let knm = MachineModel::knm();
    println!("# Fig. 8: int16 vs fp32, fwd (a) / bwd (b) / upd (c)");
    println!("layer\tfp32_GF\ti16_GOPS\thost_speedup\tknm_fwd_model\tknm_bwd_model\tknm_upd_model");
    let mut sums = [0.0f64; 3];
    let mut count = 0usize;
    for (id, shape) in resnet50_table1(cfg.minibatch) {
        if id == 1 {
            continue; // the paper's Fig. 8 skips the C=3 layer
        }
        // f32 forward
        let layer = ConvLayer::new(shape, LayerOptions::new(cfg.threads));
        let x = BlockedActs::random(shape.n, shape.c, shape.h, shape.w, shape.pad, 1);
        let w = BlockedFilter::random(shape.k, shape.c, shape.r, shape.s, 2);
        let mut y = layer.new_output();
        let t32 = time_it(
            || layer.forward(&pool, &x, &w, &mut y, &FuseCtx::default()),
            cfg.warmup,
            cfg.iters,
        );
        // int16 forward
        let qplan = QuantFwdPlan::new(
            shape,
            &QuantOptions::new(cfg.threads)
                .with_backend(Backend::Auto)
                .with_prefetch(true)
                .with_chain_limit(DEFAULT_CHAIN_LIMIT),
        );
        let xq = VnniActs::random(shape.n, shape.c, shape.h, shape.w, shape.pad, 3);
        let wq = VnniFilter::random(shape.k, shape.c, shape.r, shape.s, 4);
        let mut yq = BlockedI32::zeros(shape.n, shape.k, shape.p(), shape.q());
        let t16 = time_it(|| qplan.run(&pool, &xq, &wq, &mut yq), cfg.warmup, cfg.iters);

        let knm_shape = shape.with_minibatch(70);
        let m_f = predicted_int16_speedup(&knm, &knm_shape, Pass::Forward);
        let m_b = predicted_int16_speedup(&knm, &knm_shape, Pass::Backward);
        let m_u = predicted_int16_speedup(&knm, &knm_shape, Pass::Update);
        sums[0] += m_f;
        sums[1] += m_b;
        sums[2] += m_u;
        count += 1;
        println!(
            "{id}\t{:8.1}\t{:8.1}\t{:5.2}\t{:5.2}\t{:5.2}\t{:5.2}",
            gflops(&shape, t32),
            gflops(&shape, t16),
            t32 / t16,
            m_f,
            m_b,
            m_u,
        );
        // exercise the int16 bwd/upd engines on a couple of layers so
        // the figure's (b)/(c) panels run real code too
        if matches!(id, 4 | 5) {
            let qb = QuantBwdPlan::new(
                shape,
                &QuantOptions::new(cfg.threads)
                    .with_backend(Backend::Auto)
                    .with_prefetch(true)
                    .with_chain_limit(4),
            );
            let gyq = VnniActs::random(shape.n, shape.k, shape.p(), shape.q(), qb.dout_pad(), 5);
            let mut gxq = BlockedI32::zeros(shape.n, shape.c, shape.h, shape.w);
            qb.run(&pool, &gyq, &w, 1.0 / 64.0, &mut gxq);
            let qu = QuantUpdPlan::new(shape, cfg.threads);
            let gyq0 = VnniActs::random(shape.n, shape.k, shape.p(), shape.q(), 0, 6);
            let mut dwq = vec![0i32; shape.kb() * shape.cb() * shape.r * shape.s * VLEN * VLEN];
            let t_u16 = time_it(|| qu.run(&pool, &xq, &gyq0, &mut dwq), 1, cfg.iters.min(2));
            eprintln!("#   layer {id}: int16 upd ran at {:.1} GOPS", gflops(&shape, t_u16));
        }
    }
    println!(
        "# KNM-model averages: fwd {:.2}x  bwd {:.2}x  upd {:.2}x  (paper: 1.63/1.58/1.30)",
        sums[0] / count as f64,
        sums[1] / count as f64,
        sums[2] / count as f64
    );
}
