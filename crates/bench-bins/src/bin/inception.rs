//! Section III-A/B text numbers: Inception-v3 kernel averages —
//! average GFLOPS across all conv layers for fwd/bwd/upd, measured on
//! the host plus SKX/KNM model averages.

use bench_bins::{calibrate_host, gflops, time_it, HarnessConfig};
use conv::fuse::FuseCtx;
use conv::{ConvLayer, LayerOptions};
use machine::{predicted_efficiency, MachineModel, Pass};
use parallel::ThreadPool;
use tensor::{BlockedActs, BlockedFilter};
use topologies::inception_v3_layers;

fn main() {
    let cfg = HarnessConfig::from_args();
    let args: Vec<String> = std::env::args().collect();
    let knm_mode = args.iter().any(|a| a == "knm");
    let model = if knm_mode { MachineModel::knm() } else { MachineModel::skx() };
    let pool = ThreadPool::new(cfg.threads);
    let host = calibrate_host(&pool);

    println!(
        "# Inception-v3 kernel averages ({} model + host measurement), minibatch {}",
        model.name, cfg.minibatch
    );
    let mut meas = [0.0f64; 3];
    let mut modeled = [0.0f64; 3];
    let layers = inception_v3_layers(cfg.minibatch);
    let n_layers = layers.len() as f64;
    for (_id, shape) in &layers {
        let shape = *shape;
        let layer = ConvLayer::new(shape, LayerOptions::new(cfg.threads));
        let x = BlockedActs::random(shape.n, shape.c, shape.h, shape.w, shape.pad, 1);
        let w = BlockedFilter::random(shape.k, shape.c, shape.r, shape.s, 2);
        let mut y = layer.new_output();
        let dout = BlockedActs::random(shape.n, shape.k, shape.p(), shape.q(), layer.dout_pad(), 3);
        let mut dx = layer.new_input();
        let mut dw = layer.new_filter();
        let tf = time_it(
            || layer.forward(&pool, &x, &w, &mut y, &FuseCtx::default()),
            cfg.warmup,
            cfg.iters,
        );
        let tb = time_it(|| layer.backward(&pool, &dout, &w, &mut dx), cfg.warmup, cfg.iters);
        let tu = time_it(|| layer.update(&pool, &x, &dout, &mut dw), cfg.warmup, cfg.iters);
        meas[0] += gflops(&shape, tf);
        meas[1] += gflops(&shape, tb);
        meas[2] += gflops(&shape, tu);
        let m_shape = if knm_mode { shape.with_minibatch(70) } else { shape };
        modeled[0] += predicted_efficiency(&model, &m_shape, Pass::Forward) * model.peak_gflops();
        modeled[1] += predicted_efficiency(&model, &m_shape, Pass::Backward) * model.peak_gflops();
        modeled[2] += predicted_efficiency(&model, &m_shape, Pass::Update) * model.peak_gflops();
    }
    println!("pass\thost_avg_GFLOPS\thost_avg_eff%\t{}_model_avg_GFLOPS", model.name);
    for (i, pass) in ["fwd", "bwd", "upd"].iter().enumerate() {
        println!(
            "{pass}\t{:8.1}\t{:5.1}\t{:8.0}",
            meas[i] / n_layers,
            100.0 * meas[i] / n_layers / host.peak_gflops(),
            modeled[i] / n_layers
        );
    }
    if knm_mode {
        println!("# paper (KNM): this-work 6647/5666/4584 GFLOPS, MKL-DNN 7374/5953/4654");
    } else {
        println!("# paper (SKX): this-work 2833/2695/2621 GFLOPS, MKL-DNN 2758/2434/2301");
    }
}
