//! Figure 9: end-to-end ResNet-50 training throughput and strong
//! scaling to 16 nodes.
//!
//! * measured: real GxM training steps on the host (images/second),
//! * modeled: strong scaling through the α–β fabric with the allreduce
//!   overlapped behind backward compute (the MLSL mechanism) — the
//!   paper reports ≈90% parallel efficiency at 16 nodes,
//! * references: the paper's quoted P100/TensorFlow numbers.
//!
//! `--topology inception` runs the Inception graph instead;
//! `--hw N` sets the input resolution (default 64 for CI-speed runs;
//! use `--hw 224 --full` for the paper geometry).

use bench_bins::HarnessConfig;
use gxm::data::SyntheticData;
use gxm::multinode::simulate_strong_scaling;
use gxm::Network;
use machine::Fabric;
use std::time::Instant;

fn main() {
    let cfg = HarnessConfig::from_args();
    let args: Vec<String> = std::env::args().collect();
    let inception = args.iter().any(|a| a == "--topology") && args.iter().any(|a| a == "inception");
    let hw = args
        .iter()
        .position(|a| a == "--hw")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(64usize);
    let classes = 100usize;

    let (name, model) = if inception {
        ("Inception-v3(mixed-block)", topologies::inception_v3_model(classes))
    } else {
        ("ResNet-50", topologies::resnet50_model(hw, classes))
    };
    eprintln!("# building {name} at {hw}x{hw}, minibatch {}", cfg.minibatch);
    let t0 = Instant::now();
    let mut net = Network::build(&model, cfg.minibatch, cfg.threads).expect("valid model");
    eprintln!("# setup (JIT + dryrun): {:?}, params {}", t0.elapsed(), net.param_count());

    let (c, h, w) = if inception { (3, 147, 147) } else { (3, hw, hw) };
    let mut data = SyntheticData::new(classes, c, h, w, 7);
    // warmup + measure
    for _ in 0..cfg.warmup {
        let labels = data.next_batch(net.input_mut());
        net.train_step(&labels, 0.005, 0.9);
    }
    let t0 = Instant::now();
    let mut last = None;
    for _ in 0..cfg.iters {
        let labels = data.next_batch(net.input_mut());
        last = Some(net.train_step(&labels, 0.005, 0.9));
    }
    let t_step = t0.elapsed().as_secs_f64() / cfg.iters as f64;
    let imgs = cfg.minibatch as f64 / t_step;
    let s = last.unwrap();
    println!(
        "# single node (host, measured): {imgs:.1} img/s  ({t_step:.3}s/step, loss {:.3})",
        s.loss
    );

    // strong scaling model (4 comm cores of 56 as on the SKX testbed)
    let fabric = Fabric::omnipath(4);
    println!("nodes\timgs_per_s\tefficiency");
    for p in simulate_strong_scaling(
        &fabric,
        t_step,
        cfg.minibatch,
        net.gradient_bytes(),
        4.0 / 56.0,
        16,
    ) {
        println!("{}\t{:8.1}\t{:5.3}", p.nodes, p.imgs_per_s, p.efficiency);
    }
    println!("# paper references (Fig. 9): KNM+this-work 192 img/s, 2S-SKX+this-work 136 img/s,");
    println!("#   P100+TF 219 img/s, SKX+TF+MKL-DNN 90 img/s; 16-node: 2430 (KNM) / 1696 (SKX)");
}
