//! Serving benchmark: forward-only ResNet-50 (and optionally the
//! Inception mixed-block graph) through the `InferenceSession` facade.
//!
//! Reports images/second and the plan-cache hit rate — the two numbers
//! that characterize the serving path (replay throughput and how much
//! of the setup pipeline the cache amortized) — on stdout and as
//! `BENCH_inference.json` (see DESIGN.md §3 for the methodology).
//!
//! `--hw N` sets the input resolution (default 64; `--hw 224 --full`
//! for the paper geometry), `--topology inception` switches graphs.

use anatomy::InferenceSession;
use bench_bins::{arg_str, arg_usize, HarnessConfig};
use std::time::Instant;

fn main() {
    let cfg = HarnessConfig::from_args();
    let inception = arg_str("--topology").as_deref() == Some("inception");
    let hw = arg_usize("--hw", 64);
    let classes = 100usize;

    let (name, text, in_hw) = if inception {
        (
            "inception_mixed",
            topologies::inception_v3_topology_sized(hw.max(31), classes),
            hw.max(31),
        )
    } else {
        ("resnet50", topologies::resnet50_topology(hw, classes), hw)
    };
    eprintln!("# building {name} at {in_hw}x{in_hw}, minibatch {}", cfg.minibatch);
    let t0 = Instant::now();
    let mut session =
        InferenceSession::new(&text, cfg.minibatch, cfg.threads).expect("topology parses");
    let setup_s = t0.elapsed().as_secs_f64();
    let stats = session.cache_stats();
    let net = session.network();
    eprintln!(
        "# setup {:.2}s: {} plans for {} conv nodes (hit rate {:.0}%), {} activation slots, training state bytes = {}",
        setup_s,
        stats.entries,
        stats.hits + stats.misses,
        stats.hit_rate() * 100.0,
        net.activation_slot_count(),
        net.training_state_bytes()
    );

    let mut rng = tensor::rng::SplitMix64::new(2024);
    let mut batch = vec![0.0f32; cfg.minibatch * 3 * in_hw * in_hw];
    for _ in 0..cfg.warmup {
        rng.fill_f32(&mut batch);
        session.run(&batch).expect("batch sized to the session");
    }
    let t0 = Instant::now();
    for _ in 0..cfg.iters {
        rng.fill_f32(&mut batch);
        session.run(&batch).expect("batch sized to the session");
    }
    let secs = t0.elapsed().as_secs_f64();
    let imgs_per_s = (cfg.iters * cfg.minibatch) as f64 / secs;
    println!(
        "inference\t{name}\thw={in_hw}\tminibatch={}\timgs_per_s={imgs_per_s:8.1}\tcache_hit_rate={:.3}",
        cfg.minibatch,
        stats.hit_rate()
    );

    let json = format!(
        "{{\n  \"bench\": \"inference\",\n  \"topology\": \"{name}\",\n  \"hw\": {in_hw},\n  \
         \"minibatch\": {},\n  \"threads\": {},\n  \"iters\": {},\n  \"setup_seconds\": {setup_s:.4},\n  \
         \"images_per_second\": {imgs_per_s:.2},\n  \"plan_cache\": {{\n    \"hits\": {},\n    \
         \"misses\": {},\n    \"entries\": {},\n    \"hit_rate\": {:.4}\n  }},\n  \
         \"activation_slots\": {},\n  \"training_state_bytes\": {}\n}}\n",
        cfg.minibatch,
        cfg.threads,
        cfg.iters,
        stats.hits,
        stats.misses,
        stats.entries,
        stats.hit_rate(),
        session.network().activation_slot_count(),
        session.network().training_state_bytes(),
    );
    std::fs::write("BENCH_inference.json", &json).expect("write BENCH_inference.json");
    eprintln!("# wrote BENCH_inference.json");
}
