//! Serving benchmark: forward-only ResNet-50 (and optionally the
//! Inception mixed-block graph) through the `InferenceSession` facade.
//!
//! Three executors run the same bn-graph back to back:
//!
//! * **fused** — the inference fusion pass folds every eligible BN's
//!   frozen statistics into its producer convolution (Section II-G's
//!   cache-hot APPLY carries BN + residual + ReLU);
//! * **unfused** — every BN runs as a standalone frozen-stats
//!   full-tensor pass (the reference executor);
//! * **int8** — the fused executor at `Precision::Int8`: every
//!   range-derivable convolution quantizes its input per channel,
//!   runs the Section II-K int8/VNNI kernels and requantizes in the
//!   fused APPLY, after a one-batch calibration pass (DESIGN.md §11).
//!
//! Reports images/second for all paths, the fused-node coverage
//! (`folded_bn / bn_nodes`), the int8 conv coverage
//! (`quantized_convs / conv_nodes`), the int8-vs-f32 accuracy drift
//! (top-1 agreement and relative probability L2), and the plan-cache
//! hit rate, on stdout and as `BENCH_inference.json` (see DESIGN.md
//! §3 for the methodology) — so every PR's perf trajectory records
//! the fusion and quantization speedups.
//!
//! `--hw N` sets the input resolution (default 64; `--hw 224 --full`
//! for the paper geometry), `--topology inception` switches graphs.

use anatomy::{InferenceSession, Precision, TuneLevel};
use bench_bins::{arg_str, arg_usize, HarnessConfig};
use std::sync::Arc;
use std::time::Instant;

/// Measured throughput of one executor.
struct Measured {
    imgs_per_s: f64,
    setup_s: f64,
}

fn run_side(session: &mut InferenceSession, cfg: &HarnessConfig, in_hw: usize) -> f64 {
    let mut rng = tensor::rng::SplitMix64::new(2024);
    let mut batch = vec![0.0f32; cfg.minibatch * 3 * in_hw * in_hw];
    for _ in 0..cfg.warmup {
        rng.fill_f32(&mut batch);
        session.run(&batch).expect("batch sized to the session");
    }
    let t0 = Instant::now();
    for _ in 0..cfg.iters {
        rng.fill_f32(&mut batch);
        session.run(&batch).expect("batch sized to the session");
    }
    (cfg.iters * cfg.minibatch) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let inception = arg_str("--topology").as_deref() == Some("inception");
    let hw = arg_usize("--hw", 64);
    let classes = 100usize;

    let (name, text, in_hw) = if inception {
        (
            "inception_mixed",
            topologies::inception_v3_topology_sized(hw.max(31), classes),
            hw.max(31),
        )
    } else {
        ("resnet50", topologies::resnet50_topology(hw, classes), hw)
    };
    eprintln!("# building {name} at {in_hw}x{in_hw}, minibatch {}", cfg.minibatch);

    // fused executor: BN folded into the convolutions
    let t0 = Instant::now();
    let mut fused =
        InferenceSession::new(&text, cfg.minibatch, cfg.threads).expect("topology parses");
    let fused_setup = t0.elapsed().as_secs_f64();
    let stats = fused.cache_stats();
    let (bn_nodes, folded) = (fused.network().bn_node_count(), fused.network().folded_bn_count());
    eprintln!(
        "# fused setup {:.2}s: {} plans (hit rate {:.0}%), {} of {} bn nodes folded, {} activation slots",
        fused_setup,
        stats.entries,
        stats.hit_rate() * 100.0,
        folded,
        bn_nodes,
        fused.network().activation_slot_count(),
    );

    // unfused reference: standalone frozen-stats BN passes
    let t0 = Instant::now();
    let mut unfused =
        InferenceSession::new_unfused(&text, cfg.minibatch, cfg.threads).expect("topology parses");
    let unfused_setup = t0.elapsed().as_secs_f64();

    // int8 executor: the fused graph at reduced precision, sharing the
    // fused session's pool and plan cache (the precision-keyed cache
    // keeps both plan sets apart; f32 fallback plans hit)
    let t0 = Instant::now();
    let mut int8 = InferenceSession::with_shared_quantized(
        &text,
        cfg.minibatch,
        Arc::clone(fused.pool()),
        fused.cache().clone(),
        TuneLevel::Heuristic,
        Precision::Int8,
    )
    .expect("topology parses");
    let mut calib = vec![0.0f32; cfg.minibatch * 3 * in_hw * in_hw];
    tensor::rng::SplitMix64::new(7).fill_f32(&mut calib);
    int8.calibrate(&calib, cfg.minibatch).expect("int8 session calibrates");
    let int8_setup = t0.elapsed().as_secs_f64();
    let (conv_nodes, quant_convs) = (int8.conv_node_count(), int8.quantized_conv_count());
    let int8_coverage = if conv_nodes == 0 { 1.0 } else { quant_convs as f64 / conv_nodes as f64 };
    eprintln!(
        "# int8 setup {:.2}s: {} of {} convs quantized ({:.0}%)",
        int8_setup,
        quant_convs,
        conv_nodes,
        int8_coverage * 100.0
    );

    // accuracy drift on one fixed batch: how far int8 probabilities
    // move from the f32-fused oracle, and whether top-1 holds
    let mut probe = vec![0.0f32; cfg.minibatch * 3 * in_hw * in_hw];
    tensor::rng::SplitMix64::new(2024).fill_f32(&mut probe);
    let of = fused.run(&probe).expect("probe sized to the session");
    let oq = int8.run(&probe).expect("probe sized to the session");
    let agree =
        of.top1.iter().zip(&oq.top1).filter(|(a, b)| a == b).count() as f64 / of.top1.len() as f64;
    let (mut d2, mut n2) = (0.0f64, 0.0f64);
    for (a, b) in of.probs.iter().zip(&oq.probs) {
        d2 += ((a - b) as f64).powi(2);
        n2 += (*a as f64).powi(2);
    }
    let prob_l2 = if n2 == 0.0 { 0.0 } else { (d2 / n2).sqrt() };

    let f = Measured { imgs_per_s: run_side(&mut fused, &cfg, in_hw), setup_s: fused_setup };
    let u = Measured { imgs_per_s: run_side(&mut unfused, &cfg, in_hw), setup_s: unfused_setup };
    let q = Measured { imgs_per_s: run_side(&mut int8, &cfg, in_hw), setup_s: int8_setup };
    let speedup = f.imgs_per_s / u.imgs_per_s;
    let int8_speedup = q.imgs_per_s / f.imgs_per_s;
    let coverage = if bn_nodes == 0 { 1.0 } else { folded as f64 / bn_nodes as f64 };

    println!(
        "inference\t{name}\thw={in_hw}\tminibatch={}\tfused_imgs_per_s={:8.1}\tunfused_imgs_per_s={:8.1}\tint8_imgs_per_s={:8.1}\tspeedup={speedup:.3}\tint8_speedup={int8_speedup:.3}\tbn_coverage={coverage:.2}\tint8_coverage={int8_coverage:.2}\ttop1_agreement={agree:.2}\tcache_hit_rate={:.3}",
        cfg.minibatch,
        f.imgs_per_s,
        u.imgs_per_s,
        q.imgs_per_s,
        stats.hit_rate()
    );

    // refreshed after the int8 build so the per-precision plan counts
    // cover both executors sharing the cache
    let final_stats = fused.cache_stats();
    let json = format!(
        "{{\n  \"bench\": \"inference\",\n  \"topology\": \"{name}\",\n  \"hw\": {in_hw},\n  \
         \"minibatch\": {},\n  \"threads\": {},\n  \"iters\": {},\n  \"setup_seconds\": {:.4},\n  \
         \"images_per_second\": {:.2},\n  \"unfused\": {{\n    \"setup_seconds\": {:.4},\n    \
         \"images_per_second\": {:.2}\n  }},\n  \"int8\": {{\n    \"setup_seconds\": {:.4},\n    \
         \"images_per_second\": {:.2}\n  }},\n  \"fused_speedup\": {speedup:.4},\n  \
         \"int8_speedup\": {int8_speedup:.4},\n  \
         \"bn_nodes\": {bn_nodes},\n  \"folded_bn_nodes\": {folded},\n  \
         \"fused_bn_coverage\": {coverage:.4},\n  \
         \"conv_nodes\": {conv_nodes},\n  \"quantized_conv_nodes\": {quant_convs},\n  \
         \"int8_coverage\": {int8_coverage:.4},\n  \
         \"int8_top1_agreement\": {agree:.4},\n  \"int8_prob_l2\": {prob_l2:.6},\n  \
         \"plan_cache\": {{\n    \"hits\": {},\n    \
         \"misses\": {},\n    \"entries\": {},\n    \"hit_rate\": {:.4},\n    \
         \"f32_plans\": {},\n    \"int8_plans\": {}\n  }},\n  \
         \"activation_slots\": {},\n  \"training_state_bytes\": {}\n}}\n",
        cfg.minibatch,
        cfg.threads,
        cfg.iters,
        f.setup_s,
        f.imgs_per_s,
        u.setup_s,
        u.imgs_per_s,
        q.setup_s,
        q.imgs_per_s,
        final_stats.hits,
        final_stats.misses,
        final_stats.entries,
        final_stats.hit_rate(),
        final_stats.f32_plans,
        final_stats.int8_plans,
        fused.network().activation_slot_count(),
        fused.network().training_state_bytes(),
    );
    std::fs::write("BENCH_inference.json", &json).expect("write BENCH_inference.json");
    eprintln!("# wrote BENCH_inference.json");
}
