//! Shared harness for the per-figure benchmark binaries.
//!
//! Every binary regenerates one table/figure of the paper (see
//! DESIGN.md §3): it runs the real engines on the host, reports GFLOPS
//! and fraction-of-host-peak, and prints the machine-model predictions
//! for the paper's SKX/KNM testbeds next to them so the paper's shapes
//! can be compared directly (EXPERIMENTS.md records both).

use machine::MachineModel;
use parallel::ThreadPool;
use std::time::Instant;
use tensor::ConvShape;

/// Command-line-ish configuration shared by the binaries.
pub struct HarnessConfig {
    /// Minibatch for the layer benchmarks.
    pub minibatch: usize,
    /// Thread-team size.
    pub threads: usize,
    /// Timed iterations per measurement.
    pub iters: usize,
    /// Warmup iterations.
    pub warmup: usize,
}

impl HarnessConfig {
    /// Parse from `std::env::args`: `--minibatch N --iters I --full`.
    pub fn from_args() -> Self {
        let full = std::env::args().any(|a| a == "--full");
        let threads = arg_opt("--threads").unwrap_or_else(parallel::hardware_threads);
        Self {
            minibatch: arg_opt("--minibatch").unwrap_or(if full { threads } else { 4 }),
            threads,
            iters: arg_opt("--iters").unwrap_or(if full { 10 } else { 3 }),
            warmup: arg_opt("--warmup").unwrap_or(1),
        }
    }
}

/// Parse a `--key N` pair from `std::env::args`, if present.
pub fn arg_opt(key: &str) -> Option<usize> {
    arg_str(key).and_then(|v| v.parse().ok())
}

/// Parse a `--key value` pair from `std::env::args`, if present.
pub fn arg_str(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1)).cloned()
}

/// Parse a `--key N` pair from `std::env::args`, with a default — for
/// binary-specific flags outside [`HarnessConfig`]'s common set.
pub fn arg_usize(key: &str, default: usize) -> usize {
    arg_opt(key).unwrap_or(default)
}

/// Measure seconds/iteration of `f` (after warmup).
pub fn time_it<F: FnMut()>(mut f: F, warmup: usize, iters: usize) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// GFLOPS of a conv pass at `secs` per iteration.
pub fn gflops(shape: &ConvShape, secs: f64) -> f64 {
    shape.flops() as f64 / secs / 1e9
}

/// Calibrate the host once per binary (measured FMA peak + stream).
pub fn calibrate_host(pool: &ThreadPool) -> MachineModel {
    let m = machine::host::host_model(pool);
    eprintln!(
        "# host: {} threads, measured peak {:.0} GFLOPS, stream {:.0} GB/s{}",
        m.cores,
        m.peak_gflops(),
        m.mem_bw_gbs,
        if jit::jit_available() { ", JIT kernels" } else { ", intrinsics kernels" }
    );
    m
}

/// Print one series row: `label, layer id, GFLOPS, %peak`.
pub fn print_row(figure: &str, series: &str, layer: usize, gf: f64, peak_frac: f64) {
    println!(
        "{figure}\t{series}\tlayer={layer}\tGFLOPS={gf:8.1}\tpct_peak={:5.1}",
        peak_frac * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_is_positive() {
        let mut x = 0u64;
        let t = time_it(
            || {
                x = std::hint::black_box(x + 1);
            },
            1,
            10,
        );
        assert!(t >= 0.0);
    }

    #[test]
    fn gflops_formula() {
        let s = ConvShape::new(1, 16, 16, 8, 8, 1, 1, 1, 0);
        let g = gflops(&s, 1e-9);
        assert!((g - s.flops() as f64).abs() < 1e-6);
    }
}
