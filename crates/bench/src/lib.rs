//! Criterion micro-benchmarks live in `benches/`.
